(* The single alcotest entry point: every suite in test/ registers here.
   Individual files only export a [suite] value; shared helpers live in
   Testutil. *)
let () =
  Alcotest.run "repro"
    (Test_isa.suite @ Test_machine.suite @ Test_engine.suite @ Test_reorg.suite
    @ Test_compiler.suite @ Test_golden.suite @ Test_os.suite
    @ Test_analysis.suite @ Test_obs.suite @ Test_profile.suite
    @ Test_fault.suite @ Test_par.suite @ Test_resilience.suite
    @ Test_daemon.suite @ Test_chaos.suite)
