let () =
  Alcotest.run "repro"
    (Test_isa.suite @ Test_machine.suite @ Test_reorg.suite @ Test_compiler.suite
    @ Test_os.suite @ Test_analysis.suite @ Test_obs.suite @ Test_fault.suite)
