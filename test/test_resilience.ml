(* The resilience layer: snapshot codec totality and round-trips, hosted
   and kernel checkpoint/resume bit-identity, supervised jobs (retry,
   quarantine, deadline, circuit breaker), artifact-cache corruption
   detection, and labelled job failure propagation. *)

open Testutil
module Snapshot = Mips_resilience.Snapshot
module Supervise = Mips_resilience.Supervise
module Plan = Mips_fault.Plan
module Cpu = Mips_machine.Cpu
module Hosted = Mips_machine.Hosted

let machine_config =
  Mips_codegen.Compile.machine_config Mips_ir.Config.default

let compiled name = Mips_artifact.compiled (Mips_corpus.Corpus.find name).source

(* --- container codec ------------------------------------------------------- *)

let test_container_roundtrip () =
  let c =
    { Snapshot.kind = "soak";
      sections = [ ("params", "abc"); ("machine", String.make 1000 '\x00');
                   ("odd \xff\n", "") ] }
  in
  match Snapshot.decode (Snapshot.encode c) with
  | Ok c' -> check "container round-trips" true (c = c')
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let qcheck_container_roundtrip =
  QCheck.Test.make ~count:200 ~name:"container encode/decode round-trip"
    QCheck.(
      pair small_string (small_list (pair small_string small_string)))
    (fun (kind, sections) ->
      let c = { Snapshot.kind; sections } in
      Snapshot.decode (Snapshot.encode c) = Ok c)

let sample_encoding () =
  Snapshot.encode
    { Snapshot.kind = "run";
      sections = [ ("meta", "m"); ("host", String.make 64 'h') ] }

let test_decode_truncations () =
  let data = sample_encoding () in
  for len = 0 to String.length data - 1 do
    match Snapshot.decode (String.sub data 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
    | Error _ -> ()
  done

let test_decode_bit_flips () =
  let data = sample_encoding () in
  for i = 0 to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Snapshot.decode (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "bit flip at %d decoded" i
    | Error _ -> ()
  done

let test_decode_bad_magic () =
  let data = sample_encoding () in
  let b = Bytes.of_string data in
  Bytes.set b 0 'X';
  check "bad magic" true (Snapshot.decode (Bytes.to_string b) = Error Snapshot.Bad_magic)

let test_decode_bad_version () =
  let data = sample_encoding () in
  let b = Bytes.of_string data in
  (* version is the u16 right after the 8-byte magic; bumping it must
     report version skew, not a checksum failure *)
  Bytes.set b 8 (Char.chr (Snapshot.version + 1));
  check "bumped version" true
    (Snapshot.decode (Bytes.to_string b)
    = Error (Snapshot.Bad_version (Snapshot.version + 1)))

let qcheck_decode_total =
  QCheck.Test.make ~count:500 ~name:"decoder is total on junk"
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Snapshot.decode s with Ok _ | Error _ -> true)

let test_read_file_missing () =
  match Snapshot.read_file "/nonexistent/checkpoint.bin" with
  | Error (Snapshot.Io_error _) -> ()
  | _ -> Alcotest.fail "expected Io_error"

(* --- machine snapshot round-trip ------------------------------------------- *)

(* Partially execute a generated program, snapshot the machine, restore
   into a fresh machine with the same program loaded, and re-snapshot:
   the codec must be lossless on every state the simulator can reach. *)
let machine_roundtrip ~faults seed fuel =
  let program =
    Mips_reorg.Pipeline.compile (Mips_soak.Progen.generate ~segments:20 ~seed ())
  in
  let mk () =
    let cpu = Cpu.create ~config:machine_config () in
    if faults then
      Cpu.set_fault_plan cpu
        (Plan.make
           { Plan.quiet with Plan.seed = seed + 7; flaky_rate = 0.01;
             irq_rate = 0.005 });
    Cpu.load_program cpu program;
    cpu
  in
  let cpu = mk () in
  ignore (Hosted.run ~fuel cpu);
  let snap = Snapshot.machine_to_string cpu in
  let cpu' = mk () in
  match Snapshot.restore_machine cpu' snap with
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)
  | Ok () ->
      let snap' = Snapshot.machine_to_string cpu' in
      check_string "restored snapshot is byte-identical" snap snap'

let test_machine_roundtrip () =
  List.iter
    (fun (seed, fuel) ->
      machine_roundtrip ~faults:false seed fuel;
      machine_roundtrip ~faults:true seed fuel)
    [ (1, 17); (2, 100); (3, 999); (4, 5000) ]

let qcheck_machine_roundtrip =
  QCheck.Test.make ~count:25 ~name:"machine snapshot round-trip"
    QCheck.(pair (1 -- 50) (1 -- 2000))
    (fun (seed, fuel) ->
      machine_roundtrip ~faults:(seed mod 2 = 0) seed fuel;
      true)

let test_machine_snapshot_fuzz () =
  (* restoring from damaged payloads must fail typed, never raise *)
  let program = compiled "fib" in
  let cpu = Cpu.create ~config:machine_config () in
  Cpu.load_program cpu program;
  ignore (Hosted.run ~fuel:500 cpu);
  let snap = Snapshot.machine_to_string cpu in
  for len = 0 to min 300 (String.length snap - 1) do
    match Snapshot.restore_machine cpu (String.sub snap 0 len) with
    | Ok _ -> Alcotest.failf "truncated machine payload (%d) restored" len
    | Error (Snapshot.Truncated | Snapshot.Corrupt _) -> ()
    | Error e -> Alcotest.fail (Snapshot.error_to_string e)
  done

(* --- hosted checkpoint/resume ---------------------------------------------- *)

let test_hosted_resume_bit_identical () =
  let program = compiled "fib" in
  let fuel = 200_000 in
  let run_plain () =
    let cpu = Cpu.create ~config:machine_config () in
    Cpu.load_program cpu program;
    let result = Hosted.run ~fuel cpu in
    (result, Snapshot.machine_to_string cpu)
  in
  let reference, ref_snap = run_plain () in
  check "reference halted" true reference.Hosted.halted;
  (* checkpoint every 1000 steps, then restart from a mid-run snapshot *)
  let saved = ref [] in
  let cpu = Cpu.create ~config:machine_config () in
  Cpu.load_program cpu program;
  let checkpointed =
    Hosted.run ~fuel
      ~checkpoint:
        (1000, fun h -> saved := (h, Snapshot.machine_to_string cpu) :: !saved)
      cpu
  in
  check "checkpointing changes nothing" true (checkpointed = reference);
  check "checkpoints were taken" true (List.length !saved > 2);
  let h, machine = List.nth !saved (List.length !saved / 2) in
  let cpu' = Cpu.create ~config:machine_config () in
  Cpu.load_program cpu' program;
  (match Snapshot.restore_machine cpu' machine with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  let resumed =
    Hosted.run ~fuel:h.Hosted.h_fuel_left ~resume:h cpu'
  in
  check "resumed result equals uninterrupted" true (resumed = reference);
  check_string "resumed final machine state equals uninterrupted" ref_snap
    (Snapshot.machine_to_string cpu')

(* --- kernel soak kill/resume ----------------------------------------------- *)

let soak_plan =
  { Plan.seed = 23; flip_reg_rate = 0.002; flip_data_rate = 0.002;
    irq_rate = 0.002; page_drop_rate = 0.002; flaky_rate = 0.005;
    max_injections = 0 }

let run_ckpt ?checkpoint ?resume ?max_slices () =
  Mips_soak.Soak.run_checkpointed ~programs:4 ~segments:120 ~steps:100_000
    ~diff_count:3 ~diff_jobs:2 ?checkpoint ~checkpoint_every:400 ?resume
    ?max_slices ~plan:soak_plan ~seed:23 ()

let test_soak_kill_resume () =
  let path = Filename.temp_file "soak" ".ckpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let uninterrupted =
    match run_ckpt () with
    | Ok (Mips_soak.Soak.Complete (s, ds)) -> (s, ds)
    | _ -> Alcotest.fail "uninterrupted run did not complete"
  in
  (* the checkpointed runner with no interruption equals the plain one *)
  let plain =
    Mips_soak.Soak.run_soak ~programs:4 ~segments:120 ~steps:100_000
      ~plan:soak_plan ~seed:23 ()
  in
  check "checkpointed summary equals run_soak" true (fst uninterrupted = plain);
  (* kill after 2 slices (an in-process stand-in for SIGKILL) ... *)
  (match run_ckpt ~checkpoint:path ~max_slices:2 () with
  | Ok Mips_soak.Soak.Interrupted -> ()
  | Ok (Mips_soak.Soak.Complete _) ->
      Alcotest.fail "expected interruption (kernel quiesced too early?)"
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  (* ... and resume from its checkpoint: bit-identical end state *)
  (match run_ckpt ~checkpoint:path ~resume:path () with
  | Ok (Mips_soak.Soak.Complete (s, ds)) ->
      check "resumed run equals uninterrupted" true ((s, ds) = uninterrupted)
  | _ -> Alcotest.fail "resume did not complete");
  (* resuming the finished checkpoint returns the stored result *)
  match run_ckpt ~resume:path () with
  | Ok (Mips_soak.Soak.Complete (s, ds)) ->
      check "resume of a done checkpoint" true ((s, ds) = uninterrupted)
  | _ -> Alcotest.fail "done-phase resume failed"

let test_soak_resume_param_mismatch () =
  let path = Filename.temp_file "soak" ".ckpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match run_ckpt ~checkpoint:path ~max_slices:1 () with
  | Ok Mips_soak.Soak.Interrupted -> ()
  | _ -> Alcotest.fail "expected interruption");
  match
    Mips_soak.Soak.run_checkpointed ~programs:4 ~segments:120 ~steps:100_000
      ~diff_count:3 ~resume:path ~plan:soak_plan ~seed:24 (* wrong seed *) ()
  with
  | Error (Snapshot.Corrupt _) -> ()
  | _ -> Alcotest.fail "parameter mismatch accepted"

(* --- supervised jobs ------------------------------------------------------- *)

let test_supervise_fault_free_identity () =
  Supervise.reset_circuit ();
  let xs = List.init 20 Fun.id in
  let f n = n * n in
  let outs =
    Supervise.supervised_map ~jobs:3 ~label:string_of_int f xs
  in
  check "results equal Mips_par.map" true
    (Supervise.oks outs = Mips_par.map ~jobs:3 f xs);
  List.iter
    (fun (o : _ Supervise.outcome) ->
      check_int "one attempt" 1 o.Supervise.attempts;
      check "no quarantine" false o.Supervise.quarantined)
    outs

let test_supervise_retry_then_succeed () =
  Supervise.reset_circuit ();
  let attempts = Hashtbl.create 8 in
  let f n =
    let k = (Hashtbl.find_opt attempts n |> Option.value ~default:0) + 1 in
    Hashtbl.replace attempts n k;
    if n = 2 && k < 3 then failwith "flaky" else n
  in
  let outs =
    Supervise.supervised_map ~jobs:1 ~label:string_of_int f [ 1; 2; 3 ]
  in
  check "all succeed" true (Supervise.oks outs = [ 1; 2; 3 ]);
  let o2 = List.nth outs 1 in
  check_int "flaky job took 3 attempts" 3 o2.Supervise.attempts;
  check_int "two recorded backoffs" 2 (List.length o2.Supervise.backoffs);
  check "backoffs grow" true
    (match o2.Supervise.backoffs with
    | [ b1; b2 ] -> b1 > 0. && b2 > b1
    | _ -> false)

let test_supervise_quarantine () =
  Supervise.reset_circuit ();
  let f n = if n = 1 then failwith "poison" else n in
  let outs = Supervise.supervised_map ~jobs:2 ~label:string_of_int f [ 0; 1; 2 ] in
  let o1 = List.nth outs 1 in
  check "quarantined" true o1.Supervise.quarantined;
  check "error attributed" true
    (match o1.Supervise.result with
    | Error e -> String.length e > 0
    | Ok _ -> false);
  check_int "policy attempts exhausted" Supervise.default_policy.max_attempts
    o1.Supervise.attempts;
  check "rest of the map completed" true
    (Supervise.oks outs = [ 0; 2 ])

let test_supervise_deadline () =
  Supervise.reset_circuit ();
  let f n = if n = 0 then raise (Supervise.Deadline "cycle budget") else n in
  let outs = Supervise.supervised_map ~jobs:1 ~label:string_of_int f [ 0; 1 ] in
  let o0 = List.hd outs in
  check "deadline overrun" true o0.Supervise.deadline_overrun;
  check "no retries on a deterministic overrun" true (o0.Supervise.attempts = 1);
  check "quarantined" true o0.Supervise.quarantined

let test_supervise_circuit_breaker () =
  Supervise.reset_circuit ();
  let policy = { Supervise.default_policy with max_attempts = 1; quarantine_threshold = 2 } in
  let f n = if n < 2 then failwith "poison" else n in
  let before = Mips_obs.Metrics.count Supervise.metrics "supervise.degraded_maps" in
  let outs = Supervise.supervised_map ~policy ~jobs:2 ~label:string_of_int f [ 0; 1; 2 ] in
  check "two quarantines trip the breaker" true (Supervise.circuit_open ());
  check "map still completed" true (Supervise.oks outs = [ 2 ]);
  (* the next map degrades to serial but still runs *)
  let outs2 = Supervise.supervised_map ~policy ~jobs:4 ~label:string_of_int Fun.id [ 7; 8 ] in
  check "degraded map completes" true (Supervise.oks outs2 = [ 7; 8 ]);
  check "degradation counted" true
    (Mips_obs.Metrics.count Supervise.metrics "supervise.degraded_maps" > before);
  Supervise.reset_circuit ();
  check "breaker resets" false (Supervise.circuit_open ())

let test_supervise_events () =
  Supervise.reset_circuit ();
  let ring, sink = Mips_obs.Sink.ring ~capacity:64 in
  let policy = { Supervise.default_policy with max_attempts = 2 } in
  let f n = if n = 1 then failwith "poison" else n in
  ignore (Supervise.supervised_map ~policy ~jobs:1 ~obs:sink ~label:string_of_int f [ 0; 1 ]);
  let kinds =
    List.map Mips_obs.Event.kind_name (Mips_obs.Sink.ring_contents ring)
  in
  check "retry event emitted" true (List.mem "job_retry" kinds);
  check "quarantine event emitted" true (List.mem "job_quarantined" kinds)

(* --- report warm-up under the supervisor ----------------------------------- *)

let test_report_poison_attribution () =
  Supervise.reset_circuit ();
  let outs =
    Mips_analysis.Report.prepare_supervised ~jobs:2
      ~inject_poison:[ "bad:alpha" ] ()
  in
  let failed = Supervise.failures outs in
  check_int "exactly the poison job failed" 1 (List.length failed);
  check_string "failure attributed by label" "bad:alpha"
    (List.hd failed).Supervise.label;
  Supervise.reset_circuit ()

(* --- artifact cache corruption --------------------------------------------- *)

let test_artifact_corruption_detected () =
  let src = (Mips_corpus.Corpus.find "fib").source in
  (* a key private to this test so other suites' hits are undisturbed *)
  let sim = Mips_artifact.simulated ~fuel:123_457 src in
  let clean_cycles = sim.Mips_artifact.stats.Mips_machine.Stats.cycles in
  let before = (Mips_artifact.counters ()).Mips_artifact.corrupt in
  sim.Mips_artifact.stats.Mips_machine.Stats.cycles <- clean_cycles + 1;
  let sim' = Mips_artifact.simulated ~fuel:123_457 src in
  let after = (Mips_artifact.counters ()).Mips_artifact.corrupt in
  check_int "corruption counted" (before + 1) after;
  check "damaged entry evicted, fresh value served" true (sim' != sim);
  check_int "recomputed value is clean" clean_cycles
    sim'.Mips_artifact.stats.Mips_machine.Stats.cycles

(* --- labelled job failure -------------------------------------------------- *)

let test_job_failed_label () =
  match
    Mips_par.map ~jobs:2 ~label:(Printf.sprintf "item-%d")
      (fun n -> if n = 3 then failwith "boom" else n)
      [ 1; 2; 3; 4 ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Mips_par.Job_failed { label; error } ->
      check_string "failing job named" "item-3" label;
      check "original exception preserved" true
        (match error with Failure m -> String.equal m "boom" | _ -> false)
  | exception e -> raise e

let suite =
  [ ( "resilience.snapshot",
      [ tc "container round-trip" test_container_roundtrip;
        tc "decode truncations" test_decode_truncations;
        tc "decode bit flips" test_decode_bit_flips;
        tc "decode bad magic" test_decode_bad_magic;
        tc "decode bad version" test_decode_bad_version;
        tc "read_file missing" test_read_file_missing;
        tc "machine round-trip" test_machine_roundtrip;
        tc "machine payload fuzz" test_machine_snapshot_fuzz ]
      @ qsuite
          [ qcheck_container_roundtrip; qcheck_decode_total;
            qcheck_machine_roundtrip ] );
    ( "resilience.checkpoint",
      [ tc_slow "hosted resume bit-identical" test_hosted_resume_bit_identical;
        tc_slow "soak kill/resume bit-identical" test_soak_kill_resume;
        tc "soak resume parameter mismatch" test_soak_resume_param_mismatch ] );
    ( "resilience.supervise",
      [ tc "fault-free identity" test_supervise_fault_free_identity;
        tc "retry then succeed" test_supervise_retry_then_succeed;
        tc "quarantine" test_supervise_quarantine;
        tc "deadline" test_supervise_deadline;
        tc "circuit breaker" test_supervise_circuit_breaker;
        tc "events" test_supervise_events;
        tc_slow "report poison attribution" test_report_poison_attribution ] );
    ( "resilience.cache",
      [ tc_slow "artifact corruption detected" test_artifact_corruption_detected;
        tc "labelled job failure" test_job_failed_label ] ) ]
