(* Golden (expect) tests for the CLI JSON surfaces.

   Two snapshots guard against silent drift:

   - the full byte-for-byte text of `mipsc run NAME --stats-json -` for two
     corpus programs (any change to the statistics schema, the counters, or
     the JSON rendering fails here), and
   - a schema skeleton of `mipsc report --json` (object keys with value
     types; lists by their first element) so the report can keep evolving
     numerically while structural drift still fails the build.

   Regenerate intentionally with:
     GOLDEN_UPDATE=1 GOLDEN_DIR=$PWD/test/golden \
       dune exec test/test_main.exe -- test golden *)

open Testutil
module Json = Mips_obs.Json

let golden_dir =
  match Sys.getenv_opt "GOLDEN_DIR" with Some d -> d | None -> "golden"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let check_golden file actual =
  let path = Filename.concat golden_dir file in
  if Sys.getenv_opt "GOLDEN_UPDATE" = Some "1" then
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc actual)
  else if not (Sys.file_exists path) then
    Alcotest.failf "golden file %s missing (set GOLDEN_UPDATE=1 to create it)"
      path
  else check_string file (read_file path) actual

(* exactly the bytes `mipsc run NAME --stats-json -` writes *)
let stats_json_text name =
  let e = Mips_corpus.Corpus.find name in
  let _, cpu =
    Mips_codegen.Compile.run_with_machine ~fuel:500_000_000
      ~input:e.Mips_corpus.Corpus.input e.Mips_corpus.Corpus.source
  in
  Json.to_string (Mips_machine.Stats.to_json (Mips_machine.Cpu.stats cpu))
  ^ "\n"

let test_stats_golden name () =
  check_golden ("stats_" ^ name ^ ".json") (stats_json_text name)

(* both engines must reproduce the committed snapshot, not just each other *)
let test_stats_engine_agree name () =
  let e = Mips_corpus.Corpus.find name in
  let _, cpu =
    Mips_codegen.Compile.run_with_machine ~fuel:500_000_000
      ~input:e.Mips_corpus.Corpus.input ~engine:Mips_machine.Cpu.Fast
      e.Mips_corpus.Corpus.source
  in
  let fast =
    Json.to_string (Mips_machine.Stats.to_json (Mips_machine.Cpu.stats cpu))
    ^ "\n"
  in
  check_golden ("stats_" ^ name ^ ".json") fast

let rec schema = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ -> "int"
  | Json.Float _ -> "float"
  | Json.Str _ -> "str"
  | Json.List [] -> "[]"
  | Json.List (x :: _) -> "[" ^ schema x ^ "]"
  | Json.Obj kvs ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ ":" ^ schema v) kvs)
      ^ "}"

(* pretty-printed so the golden file diffs readably *)
let rec schema_lines indent = function
  | Json.Obj kvs ->
      List.concat_map
        (fun (k, v) ->
          match v with
          | Json.Obj _ ->
              (indent ^ k ^ ":") :: schema_lines (indent ^ "  ") v
          | Json.List (Json.Obj _ :: _ as l) ->
              (indent ^ k ^ ": list of") :: schema_lines (indent ^ "  ") (List.hd l)
          | other -> [ indent ^ k ^ ": " ^ schema other ])
        kvs
  | other -> [ indent ^ schema other ]

let test_report_schema () =
  let json = Mips_analysis.Report.json_all ~include_heavy:false () in
  let text = String.concat "\n" (schema_lines "" json) ^ "\n" in
  check_golden "report_schema.txt" text;
  (* the version field downstream consumers key on: present, first, and
     matching the library constant *)
  (match json with
  | Json.Obj (("schema_version", Json.Int v) :: _) ->
      Alcotest.(check int)
        "schema_version value" Mips_analysis.Report.report_schema_version v
  | _ -> Alcotest.fail "schema_version must be the first report key")

let suite =
  [ ( "golden:cli-json",
      [ tc_slow "run --stats-json fib" (test_stats_golden "fib");
        tc_slow "run --stats-json strops" (test_stats_golden "strops");
        tc_slow "fast engine matches fib snapshot"
          (test_stats_engine_agree "fib");
        tc_slow "fast engine matches strops snapshot"
          (test_stats_engine_agree "strops");
        tc_slow "report --json schema" test_report_schema ] ) ]
