(* The guest profiler: exact cycle attribution, engine agreement, Stats
   byte-identity, and the exporters' formats.

   The load-bearing invariant is that profiling is an exact decomposition,
   not an estimate: summing every block's issue/stall/shadow cycles plus
   the unattributed remainder reproduces the run's Stats totals to the
   cycle, on both engines and on both machine variants.  And it is
   passive: a profiled run's Stats and output are byte-identical to an
   unprofiled one's. *)

module Cpu = Mips_machine.Cpu
module Hosted = Mips_machine.Hosted
module Stats = Mips_machine.Stats
module Profile = Mips_profile
module Json = Mips_obs.Json

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let fuel = 200_000_000

(* representative corpus subset: recursion, loops, byte ops, backtracking *)
let programs = [ "fib"; "sieve"; "strops"; "queens" ]

let compiled name =
  let e = Mips_corpus.Corpus.find name in
  (Mips_codegen.Compile.compile e.Mips_corpus.Corpus.source,
   e.Mips_corpus.Corpus.input)

(* raw program-order code for the hardware-interlock machine, where stalls
   are real (the pairing [mipsc profile run --interlock] uses) *)
let compiled_raw name =
  let e = Mips_corpus.Corpus.find name in
  (Mips_reorg.Pipeline.compile_raw
     (Mips_codegen.Compile.to_asm e.Mips_corpus.Corpus.source),
   e.Mips_corpus.Corpus.input)

let run_profiled ?(config = Cpu.default_config) ~engine (program, input) =
  let cpu = Cpu.create ~config () in
  Cpu.set_profiling cpu true;
  let res = Hosted.run_program_on ~fuel ~input ~engine cpu program in
  checkb "halted" true res.Hosted.halted;
  (cpu, res)

let run_plain ?(config = Cpu.default_config) ~engine (program, input) =
  let cpu = Cpu.create ~config () in
  let res = Hosted.run_program_on ~fuel ~input ~engine cpu program in
  (cpu, res)

(* attribution sums back to Stats exactly: issue + shadow = words,
   stall = stall_cycles, everything together = cycles *)
let check_reconciles name cpu prof =
  let stats = Cpu.stats cpu in
  checki (name ^ ": total = cycles") stats.Stats.cycles
    (Profile.total_cycles prof);
  checki (name ^ ": issue+shadow = words") stats.Stats.words
    (prof.Profile.total_issue + prof.Profile.total_shadow);
  checki (name ^ ": stall = stall_cycles") stats.Stats.stall_cycles
    prof.Profile.total_stall;
  (* per-block sums equal the totals (capture keeps every executed word) *)
  let bi, bs, bsh =
    List.fold_left
      (fun (i, s, sh) b ->
        (i + b.Profile.b_issue, s + b.Profile.b_stall, sh + b.Profile.b_shadow))
      (0, 0, 0) prof.Profile.blocks
  in
  checki (name ^ ": blocks sum issue") prof.Profile.total_issue bi;
  checki (name ^ ": blocks sum stall") prof.Profile.total_stall bs;
  checki (name ^ ": blocks sum shadow") prof.Profile.total_shadow bsh

let test_reconciliation_delayed () =
  List.iter
    (fun name ->
      List.iter
        (fun engine ->
          let cpu, _ = run_profiled ~engine (compiled name) in
          let prof = Profile.capture ~program:name cpu in
          check_reconciles
            (Printf.sprintf "%s/%s" name (Cpu.engine_name engine))
            cpu prof;
          (* the delayed machine never stalls: attribution must agree *)
          checki (name ^ ": no stalls in delayed mode") 0
            prof.Profile.total_stall)
        [ Cpu.Ref; Cpu.Fast ])
    programs

let test_reconciliation_interlocked () =
  List.iter
    (fun name ->
      let cpu, _ =
        run_profiled ~config:Cpu.interlocked_config ~engine:Cpu.Ref
          (compiled_raw name)
      in
      let prof = Profile.capture ~program:name cpu in
      check_reconciles (name ^ "/interlocked") cpu prof;
      (* interlock mode has no delay shadows; raw schedules do stall *)
      checki (name ^ ": no shadow under interlock") 0
        prof.Profile.total_shadow;
      checkb (name ^ ": raw code stalls") true (prof.Profile.total_stall > 0))
    programs

let test_profiling_is_passive () =
  List.iter
    (fun name ->
      List.iter
        (fun engine ->
          let art = compiled name in
          let pcpu, pres = run_profiled ~engine art in
          let ucpu, ures = run_plain ~engine art in
          checks (name ^ ": stats byte-identical")
            (Json.to_string (Stats.to_json (Cpu.stats ucpu)))
            (Json.to_string (Stats.to_json (Cpu.stats pcpu)));
          checks (name ^ ": output identical") ures.Hosted.output
            pres.Hosted.output)
        [ Cpu.Ref; Cpu.Fast ])
    programs

let test_engines_agree () =
  (* the two engines walk the same semantics, so the whole profile —
     blocks, edges, pairs, attribution — must be identical *)
  List.iter
    (fun name ->
      let art = compiled name in
      let rcpu, _ = run_profiled ~engine:Cpu.Ref art in
      let fcpu, _ = run_profiled ~engine:Cpu.Fast art in
      checks name
        (Json.to_string (Profile.to_json (Profile.capture ~program:name rcpu)))
        (Json.to_string (Profile.to_json (Profile.capture ~program:name fcpu))))
    programs

let test_edges_land_on_leaders () =
  let cpu, _ = run_profiled ~engine:Cpu.Fast (compiled "fib") in
  let prof = Profile.capture ~program:"fib" cpu in
  checkb "has edges" true (prof.Profile.edges <> []);
  let leaders =
    List.map (fun b -> b.Profile.b_first) prof.Profile.blocks
  in
  List.iter
    (fun ((_, tgt), _) ->
      checkb (Printf.sprintf "edge target %d starts a block" tgt) true
        (List.mem tgt leaders))
    prof.Profile.edges

let test_interlocked_pairs () =
  (* back-to-back load-use is exactly what raw code on the interlocked
     machine exhibits — the fusion table must surface it *)
  let cpu, _ =
    run_profiled ~config:Cpu.interlocked_config ~engine:Cpu.Ref
      (compiled_raw "fib")
  in
  let prof = Profile.capture ~program:"fib" cpu in
  checkb "found load+use pairs" true
    (List.exists (fun p -> p.Profile.p_kind = Profile.Load_use)
       prof.Profile.pairs)

let test_folded_format () =
  let cpu, _ = run_profiled ~engine:Cpu.Fast (compiled "fib") in
  let prof = Profile.capture ~program:"fib" cpu in
  let folded = Profile.folded prof in
  let lines = String.split_on_char '\n' (String.trim folded) in
  checkb "non-empty" true (lines <> []);
  let re = Re.Pcre.re "^fib;(blk_\\d+_\\d+|other) (\\d+)$" |> Re.compile in
  let total =
    List.fold_left
      (fun acc line ->
        match Re.exec_opt re line with
        | Some g -> acc + int_of_string (Re.Group.get g 2)
        | None -> Alcotest.failf "bad folded line %S" line)
      0 lines
  in
  checki "folded weights sum to total cycles" (Profile.total_cycles prof) total

let test_speedscope_format () =
  let cpu, _ = run_profiled ~engine:Cpu.Fast (compiled "sieve") in
  let prof = Profile.capture ~program:"sieve" cpu in
  let j =
    Json.of_string_exn (Json.to_string (Profile.speedscope prof))
  in
  let frames =
    Json.(to_list_exn (member_exn "frames" (member_exn "shared" j)))
  in
  let p =
    match Json.(to_list_exn (member_exn "profiles" j)) with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected one profile"
  in
  let samples = Json.(to_list_exn (member_exn "samples" p)) in
  let weights = Json.(to_list_exn (member_exn "weights" p)) in
  checki "samples = frames" (List.length frames) (List.length samples);
  checki "weights = samples" (List.length samples) (List.length weights);
  let wsum =
    List.fold_left (fun acc w -> acc + Json.to_int_exn w) 0 weights
  in
  checki "weights sum = endValue" Json.(to_int_exn (member_exn "endValue" p))
    wsum;
  checki "endValue = total cycles" (Profile.total_cycles prof) wsum

let test_map_spans () =
  (* every job gets exactly one named span on the worker lane that ran it,
     and the tracer never perturbs the results *)
  let module Span = Mips_obs.Span in
  let xs = List.init 20 Fun.id in
  let f x = x * x in
  let tracer = Span.tracer ~lanes:2 () in
  let ys =
    Mips_par.map_spans ~jobs:2 ~tracer
      ~name:(fun x -> Printf.sprintf "job_%d" x)
      f xs
  in
  Alcotest.(check (list int)) "results in submission order" (List.map f xs) ys;
  let spans = Span.tracer_spans tracer in
  checki "one span per job" (List.length xs) (List.length spans);
  let names = List.sort compare (List.map (fun s -> s.Span.sp_name) spans) in
  Alcotest.(check (list string))
    "span names cover the jobs"
    (List.sort compare (List.map (fun x -> Printf.sprintf "job_%d" x) xs))
    names;
  List.iter
    (fun s -> checkb "lane in range" true (s.Span.sp_lane >= 0 && s.Span.sp_lane < 2))
    spans;
  (* disabled tracer degrades to the plain map *)
  let zs = Mips_par.map_spans ~jobs:2 ~tracer:Span.no_tracer ~name:string_of_int f xs in
  Alcotest.(check (list int)) "no_tracer path" (List.map f xs) zs

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "attribution reconciles (delayed)" `Quick
          test_reconciliation_delayed;
        Alcotest.test_case "attribution reconciles (interlocked)" `Quick
          test_reconciliation_interlocked;
        Alcotest.test_case "profiling is passive" `Quick
          test_profiling_is_passive;
        Alcotest.test_case "engines agree on the profile" `Quick
          test_engines_agree;
        Alcotest.test_case "edges land on block leaders" `Quick
          test_edges_land_on_leaders;
        Alcotest.test_case "interlocked load+use pairs" `Quick
          test_interlocked_pairs;
        Alcotest.test_case "folded flamegraph format" `Quick
          test_folded_format;
        Alcotest.test_case "speedscope format" `Quick test_speedscope_format;
        Alcotest.test_case "map_spans lanes" `Quick test_map_spans;
      ] );
  ]
