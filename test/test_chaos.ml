(* Chaos certification of the daemon stack: the idempotent retrying
   client against a wire-level fault-injection proxy (byte-identity under
   flips, truncations, stalls, duplicates and disconnects), the server's
   request-ID replay window (dedup, eviction), the exhaustive crash-point
   sweep over every journal write boundary, journal fsck repair and
   quarantine, descriptor-leak regression, and frame-stream order/
   duplication properties. *)

open Testutil
module Frame = Mips_daemon.Frame
module Protocol = Mips_daemon.Protocol
module Server = Mips_daemon.Server
module Client = Mips_daemon.Client
module Chaos = Mips_daemon.Chaos
module Journal = Mips_daemon.Journal
module Tenants = Mips_daemon.Tenants
module Snapshot = Mips_resilience.Snapshot
module Rng = Mips_fault.Rng

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mipsd-chaos-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let with_server ?(jobs = 2) ?(queue = 16) ?(quota = Tenants.default_quota)
    ?state_dir ?(checkpoint_every = 50_000) ?(replay_window = 128)
    ?crash_after ?crash_at_op f =
  let socket = Filename.concat (temp_dir ()) "d.sock" in
  let config =
    { (Server.default_config ~socket) with
      Server.jobs;
      queue;
      quota;
      state_dir;
      checkpoint_every;
      replay_window;
      drain_s = 2.;
      test_crash_after_checkpoints = crash_after;
      test_crash_at_op = crash_at_op }
  in
  let t = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop ~drain:false t) @@ fun () ->
  f socket t

let request socket req =
  match
    Client.with_connection socket (fun c ->
        match Client.request c req with
        | Ok resp -> Ok resp
        | Error e -> Error (Frame.error_to_string e))
  with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "request failed: %s" msg

let run_req ?session ?(tenant = "t0") ?(fuel = 500_000_000) source =
  Protocol.Run
    { tenant; session; source; cg = Protocol.default_codegen; input = "";
      fuel; engine = "ref" }

let kind_of = function
  | Protocol.Pong -> "pong"
  | Protocol.Listing _ -> "listing"
  | Protocol.Ran _ -> "ran"
  | Protocol.Soaked _ -> "soaked"
  | Protocol.Reported _ -> "reported"
  | Protocol.Status_r _ -> "status"
  | Protocol.Bye -> "bye"
  | Protocol.Err (r, m) -> Protocol.reject_to_string r ^ ": " ^ m

let same_bytes a b =
  String.equal (Protocol.encode_response a) (Protocol.encode_response b)

(* a halting program whose work scales with [bound]: the crash-point and
   recovery fixture (distinct bounds give distinct outputs, so a recovery
   answering with the wrong session's bytes cannot pass) *)
let sum_source bound =
  Printf.sprintf
    {|
program sum;
var i, acc : integer;
begin
  acc := 0;
  for i := 1 to %d do
    acc := acc + i;
  writeln(acc)
end.
|}
    bound

(* a program that never halts: fuel-quota fixture (its kill is recorded
   in the replay window, a re-execution would answer differently) *)
let spin_source =
  {|
program spin;
var i : integer;
begin
  i := 0;
  while i < 2 do begin
    i := i + 1;
    i := i - 1
  end
end.
|}

let fib_source = (Mips_corpus.Corpus.find "fib").Mips_corpus.Corpus.source

(* --- replay window ------------------------------------------------------------ *)

(* The proof of no-re-execution: resend the *same request ID* with a
   different body.  A replay answers with the first body's recorded
   response; a (wrong) re-execution would answer for the new body. *)
let test_replay_same_id_executes_once () =
  let quota = { Tenants.default_quota with Tenants.max_fuel = 200_000 } in
  with_server ~quota @@ fun socket _t ->
  let tag id req = Protocol.Tagged { id; req } in
  (match request socket (tag "dup1" (run_req ~fuel:1_000_000 spin_source)) with
  | Protocol.Err (Protocol.Quota "fuel", _) -> ()
  | resp -> Alcotest.failf "spinner got %s, wanted a fuel-quota kill" (kind_of resp));
  (* same id, different body: must be the recorded kill, not a fib run *)
  (match request socket (tag "dup1" (run_req fib_source)) with
  | Protocol.Err (Protocol.Quota "fuel", _) -> ()
  | resp ->
      Alcotest.failf "same id re-executed instead of replayed: %s" (kind_of resp));
  (* a fresh id executes for real *)
  match request socket (tag "dup2" (run_req fib_source)) with
  | Protocol.Ran _ -> ()
  | resp -> Alcotest.failf "fresh id got %s, wanted Ran" (kind_of resp)

let test_replay_window_eviction () =
  let quota = { Tenants.default_quota with Tenants.max_fuel = 200_000 } in
  with_server ~quota ~replay_window:1 @@ fun socket _t ->
  let tag id req = Protocol.Tagged { id; req } in
  let expect_ran id =
    match request socket (tag id (run_req fib_source)) with
    | Protocol.Ran _ -> ()
    | resp -> Alcotest.failf "%s: got %s, wanted Ran" id (kind_of resp)
  in
  expect_ran "a";
  expect_ran "b" (* window of one: recording b evicts a *);
  (* a was evicted: the same id now executes the new body for real *)
  (match request socket (tag "a" (run_req ~fuel:1_000_000 spin_source)) with
  | Protocol.Err (Protocol.Quota "fuel", _) -> ()
  | resp -> Alcotest.failf "evicted id replayed stale answer: %s" (kind_of resp));
  (* ...and b was evicted in turn by that recording *)
  match request socket (tag "b" (run_req ~fuel:1_000_000 spin_source)) with
  | Protocol.Err (Protocol.Quota "fuel", _) -> ()
  | resp -> Alcotest.failf "evicted id replayed stale answer: %s" (kind_of resp)

(* --- retrying client under chaos ---------------------------------------------- *)

let chaos_policy =
  { Client.attempts = 60;
    base_backoff_s = 0.005;
    max_backoff_s = 0.05;
    deadline_s = 60. }

let test_call_through_chaos_byte_identical () =
  with_server @@ fun socket _t ->
  let clean =
    match Client.call ~policy:chaos_policy socket (run_req fib_source) with
    | Ok resp -> resp
    | Error e -> Alcotest.failf "clean call: %s" (Client.call_error_to_string e)
  in
  (match clean with
  | Protocol.Ran r -> check "clean run halted" true r.Protocol.halted
  | resp -> Alcotest.failf "clean call answered %s" (kind_of resp));
  let dir = Filename.dirname socket in
  let injected = ref 0 in
  for seed = 1 to 8 do
    let listen = Filename.concat dir (Printf.sprintf "chaos-%d.sock" seed) in
    let proxy =
      Chaos.start
        { Chaos.listen; upstream = socket; seed; rate = 0.3; stall_s = 0.02 }
    in
    Fun.protect ~finally:(fun () -> Chaos.stop proxy) @@ fun () ->
    (match Client.call ~policy:chaos_policy listen (run_req fib_source) with
    | Ok resp ->
        check
          (Printf.sprintf "seed %d: chaos-proxied run is byte-identical" seed)
          true (same_bytes clean resp)
    | Error e ->
        Alcotest.failf "seed %d: call through chaos failed: %s" seed
          (Client.call_error_to_string e));
    injected := !injected + Chaos.injected (Chaos.counts proxy)
  done;
  check "the sweep actually injected faults" true (!injected > 0)

let test_call_connect_failure_is_typed () =
  let path = Filename.concat (temp_dir ()) "nobody.sock" in
  let policy =
    { Client.attempts = 3; base_backoff_s = 0.01; max_backoff_s = 0.05;
      deadline_s = 10. }
  in
  match Client.call ~policy path Protocol.Ping with
  | Ok resp -> Alcotest.failf "call with no daemon answered %s" (kind_of resp)
  | Error e ->
      (match e.Client.failure with
      | Client.Connect _ -> ()
      | f -> Alcotest.failf "wanted Connect, got %s" (Client.failure_to_string f));
      check_int "all attempts spent" 3 e.Client.call_attempts;
      check "gave up on attempts" true (e.Client.gave_up = `Attempts)

(* --- wait_ready ---------------------------------------------------------------- *)

let test_wait_ready_never_starting () =
  let path = Filename.concat (temp_dir ()) "never.sock" in
  let t0 = Unix.gettimeofday () in
  match Client.wait_ready ~timeout_s:0.5 path with
  | Ok () -> Alcotest.fail "ready without a daemon"
  | Error (`Timed_out elapsed) ->
      check "reported elapsed covers the budget" true (elapsed >= 0.4);
      check "returned promptly after the budget" true
        (Unix.gettimeofday () -. t0 < 5.)

(* a peer that accepts connections but never answers: each poll's receive
   deadline must fire, the overall wait must end typed, not hang *)
let test_wait_ready_unresponsive_listener () =
  let dir = temp_dir () in
  let path = Filename.concat dir "mute.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match Client.wait_ready ~timeout_s:1.0 path with
  | Ok () -> Alcotest.fail "a mute listener counted as ready"
  | Error (`Timed_out _) ->
      check "bounded despite the mute listener" true
        (Unix.gettimeofday () -. t0 < 10.)

let test_wait_ready_slow_start () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "slow.sock" in
  let started = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.6;
        started := Some (Server.start (Server.default_config ~socket)))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join starter;
      Option.iter (fun t -> Server.stop ~drain:false t) !started)
  @@ fun () ->
  match Client.wait_ready ~timeout_s:10. socket with
  | Ok () -> ()
  | Error (`Timed_out elapsed) ->
      Alcotest.failf "slow-starting daemon never seen ready (%.1fs)" elapsed

(* --- descriptor-leak regression ------------------------------------------------ *)

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let test_no_fd_leak_over_thousand_connections () =
  with_server @@ fun socket _t ->
  let missing = Filename.concat (Filename.dirname socket) "absent.sock" in
  let before = fd_count () in
  for i = 1 to 1000 do
    match i mod 3 with
    | 0 ->
        (* garbage connection: server answers typed and closes its side *)
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let junk = "XXXXJUNKJUNKJUNKJUNKJUNKJUNKJUNK" in
        ignore (Unix.write_substring fd junk 0 (String.length junk));
        ignore (Frame.read fd);
        Unix.close fd
    | 1 ->
        (* a full request/response cycle *)
        ignore (request socket Protocol.Ping)
    | _ -> (
        (* a failing connect must not leak the client-side socket *)
        match Client.with_connection missing (fun _ -> Ok ()) with
        | Ok () -> Alcotest.fail "connect to a missing socket succeeded"
        | Error _ -> ())
  done;
  (* let the server-side connection threads finish closing *)
  Thread.delay 0.5;
  let after = fd_count () in
  check
    (Printf.sprintf "fd count stable (%d before, %d after)" before after)
    true
    (after - before < 16)

(* --- frame order/duplication properties ---------------------------------------- *)

(* a concatenated stream of frames decodes back to exactly the payloads
   written, whatever their order or duplication — framing never desyncs *)
let qcheck_frame_stream_order =
  QCheck.Test.make ~count:200
    ~name:"frame streams decode independent of order and duplication"
    QCheck.(
      make
        ~print:(fun l -> String.concat "|" (List.map String.escaped l))
        Gen.(list_size (1 -- 12) (string_size ~gen:char (0 -- 60))))
    (fun payloads ->
      let stream = String.concat "" (List.map Frame.encode payloads) in
      let rec go off acc =
        if off >= String.length stream then Some (List.rev acc)
        else
          match
            Frame.decode (String.sub stream off (String.length stream - off))
          with
          | Ok (p, consumed) -> go (off + consumed) (p :: acc)
          | Error _ -> None
      in
      go 0 [] = Some payloads)

(* pipelined bursts of duplicated / arbitrarily ordered request frames:
   the server answers each one in order and never wedges *)
let test_server_duplicate_reordered_frames () =
  with_server @@ fun socket _t ->
  let pool =
    [| Protocol.encode_request Protocol.Ping;
       Protocol.encode_request Protocol.Status;
       Protocol.encode_request
         (Protocol.Tagged { id = "dup"; req = Protocol.Ping }) |]
  in
  let rng = Rng.create 42 in
  for _round = 1 to 20 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let n = 1 + Rng.int rng 8 in
    let seq = List.init n (fun _ -> pool.(Rng.int rng (Array.length pool))) in
    let burst = String.concat "" (List.map Frame.encode seq) in
    ignore (Unix.write_substring fd burst 0 (String.length burst));
    List.iteri
      (fun k _ ->
        match Frame.read fd with
        | Ok payload -> (
            match Protocol.decode_response payload with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "burst reply %d undecodable: %s" k
                  (Frame.error_to_string e))
        | Error e ->
            Alcotest.failf "burst reply %d: %s" k (Frame.error_to_string e))
      seq
  done;
  match request socket Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> Alcotest.failf "daemon wedged by bursts: %s" (kind_of resp)

(* a hostile length field is refused from the header alone: no payload
   bytes exist to read, yet [read] answers immediately — and without
   allocating anything near the declared size *)
let test_oversized_rejected_before_payload_allocation () =
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
  @@ fun () ->
  let declared = 64 * 1024 * 1024 in
  let header = Buffer.create Frame.header_bytes in
  Buffer.add_string header "MPSD";
  Buffer.add_char header (Char.chr (Frame.version land 0xFF));
  Buffer.add_char header (Char.chr ((Frame.version lsr 8) land 0xFF));
  for k = 0 to 3 do
    Buffer.add_char header (Char.chr ((declared lsr (8 * k)) land 0xFF))
  done;
  Buffer.add_string header (String.make 16 '\x00');
  let h = Buffer.contents header in
  ignore (Unix.write_substring w h 0 (String.length h));
  (* a regression that tries to read the payload would block here *)
  Unix.setsockopt_float r Unix.SO_RCVTIMEO 2.;
  let before = Gc.allocated_bytes () in
  (match Frame.read r with
  | Error (Frame.Oversized n) -> check_int "declared length reported" declared n
  | Error e ->
      Alcotest.failf "wanted Oversized, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "hostile length decoded");
  let allocated = Gc.allocated_bytes () -. before in
  check
    (Printf.sprintf "no payload-sized allocation (%.0f bytes)" allocated)
    true
    (allocated < 1_000_000.)

(* --- exhaustive crash-point sweep ---------------------------------------------- *)

(* One seed of the sweep: a clean reference run counts the journal
   operations; then every operation index in turn becomes a simulated
   kill, the daemon restarts on the surviving journal, and the resubmitted
   session must answer byte-identically to the reference. *)
let crash_sweep_run_session ~seed =
  let source = sum_source (200 + (97 * seed)) in
  let session = Printf.sprintf "cp%d" seed in
  let req = run_req ~session source in
  let reference, total_ops =
    with_server ~state_dir:(temp_dir ()) ~checkpoint_every:2_000
    @@ fun socket t ->
    let resp = request socket req in
    (resp, Server.journal_ops t)
  in
  (match reference with
  | Protocol.Ran r -> check "reference run halts" true r.Protocol.halted
  | resp -> Alcotest.failf "seed %d reference: %s" seed (kind_of resp));
  check (Printf.sprintf "seed %d journals" seed) true (total_ops >= 3);
  for n = 1 to total_ops do
    let dir = temp_dir () in
    let fired =
      with_server ~state_dir:dir ~checkpoint_every:2_000 ~crash_at_op:n
      @@ fun socket t ->
      (match request socket req with
      | Protocol.Err (Protocol.Internal, _) -> ()
      | resp ->
          Alcotest.failf "seed %d op %d: crash answered %s" seed n
            (kind_of resp));
      Server.crash_point_fired t
    in
    check (Printf.sprintf "seed %d op %d fired" seed n) true fired;
    (* a fresh daemon on the surviving journal must converge *)
    with_server ~state_dir:dir ~checkpoint_every:2_000 @@ fun socket _t ->
    let got = request socket req in
    check
      (Printf.sprintf "seed %d op %d: recovery is byte-identical" seed n)
      true (same_bytes reference got)
  done

let test_crash_point_sweep_runs () =
  for seed = 1 to 8 do
    crash_sweep_run_session ~seed
  done

let crash_sweep_soak_session ~seed =
  let session = Printf.sprintf "sc%d" seed in
  let req =
    Protocol.Soak
      { tenant = "t0"; session = Some session; seed; steps = 60_000;
        programs = 2; segments = 16; differential = 0; engine = "ref" }
  in
  let reference, total_ops =
    with_server ~state_dir:(temp_dir ()) ~checkpoint_every:20_000
    @@ fun socket t ->
    let resp = request socket req in
    (resp, Server.journal_ops t)
  in
  (match reference with
  | Protocol.Soaked _ -> ()
  | resp -> Alcotest.failf "soak seed %d reference: %s" seed (kind_of resp));
  check (Printf.sprintf "soak seed %d journals" seed) true (total_ops >= 3);
  for n = 1 to total_ops do
    let dir = temp_dir () in
    let fired =
      with_server ~state_dir:dir ~checkpoint_every:20_000 ~crash_at_op:n
      @@ fun socket t ->
      (match request socket req with
      | Protocol.Err (Protocol.Internal, _) -> ()
      | resp ->
          Alcotest.failf "soak seed %d op %d: crash answered %s" seed n
            (kind_of resp));
      Server.crash_point_fired t
    in
    check (Printf.sprintf "soak seed %d op %d fired" seed n) true fired;
    with_server ~state_dir:dir ~checkpoint_every:20_000 @@ fun socket _t ->
    let got = request socket req in
    check
      (Printf.sprintf "soak seed %d op %d: recovery is byte-identical" seed n)
      true (same_bytes reference got)
  done

let test_crash_point_sweep_soaks () =
  for seed = 1 to 2 do
    crash_sweep_soak_session ~seed
  done

(* --- journal fsck --------------------------------------------------------------- *)

let flip_byte path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let k = n / 2 in
  Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_fsck_repairs_and_quarantines () =
  let dir = temp_dir () in
  (* a finished session: .done on disk *)
  let fin_ref =
    with_server ~state_dir:dir @@ fun socket _t ->
    request socket (run_req ~session:"fin" (sum_source 300))
  in
  (match fin_ref with
  | Protocol.Ran _ -> ()
  | resp -> Alcotest.failf "finished fixture: %s" (kind_of resp));
  (* a recoverable session: the crash hook leaves .meta + .ckpt *)
  (with_server ~state_dir:dir ~checkpoint_every:1_000 ~crash_after:1
  @@ fun socket _t ->
  match request socket (run_req ~session:"rec" (sum_source 5_000)) with
  | Protocol.Err (Protocol.Internal, _) -> ()
  | resp -> Alcotest.failf "crash fixture: %s" (kind_of resp));
  let file id ext = Filename.concat dir ("session-" ^ id ^ ext) in
  check "crash left a meta" true (Sys.file_exists (file "rec" ".meta"));
  check "crash left a checkpoint" true (Sys.file_exists (file "rec" ".ckpt"));
  (* now the damage: a torn checkpoint on the recoverable session, a
     stale working file on the finished one, an unrecoverable session,
     and an atomic-write leftover *)
  flip_byte (file "rec" ".ckpt");
  write_raw (file "fin" ".meta")
    (Snapshot.encode
       { Snapshot.kind = "mipsd-meta";
         sections = [ ("request", Protocol.encode_request Protocol.Ping) ] });
  write_raw (file "bad" ".meta") "this is not a snapshot container";
  write_raw (file "bad" ".soak") "torn garbage";
  write_raw (file "tmpy" ".ckpt.tmp") "leftover";
  (match Journal.fsck dir with
  | Error msg -> Alcotest.failf "fsck refused: %s" msg
  | Ok r ->
      check_int "sessions scanned" 3 r.Journal.scanned;
      check_int "sessions repaired" 2 r.Journal.repaired;
      check_int "sessions quarantined" 1 r.Journal.quarantined;
      check_int "tmp files removed" 1 r.Journal.tmp_removed);
  check "corrupt checkpoint removed" false (Sys.file_exists (file "rec" ".ckpt"));
  check "recoverable meta kept" true (Sys.file_exists (file "rec" ".meta"));
  check "stale meta of finished session removed" false
    (Sys.file_exists (file "fin" ".meta"));
  check "finished result kept" true (Sys.file_exists (file "fin" ".done"));
  check "unrecoverable meta quarantined" true
    (Sys.file_exists (Filename.concat dir "quarantine/session-bad.meta"));
  check "unrecoverable soak quarantined" true
    (Sys.file_exists (Filename.concat dir "quarantine/session-bad.soak"));
  check "tmp leftover removed" false (Sys.file_exists (file "tmpy" ".ckpt.tmp"));
  (* a second pass finds a clean journal *)
  (match Journal.fsck dir with
  | Error msg -> Alcotest.failf "second fsck refused: %s" msg
  | Ok r ->
      check_int "second pass scans survivors" 2 r.Journal.scanned;
      check_int "second pass all intact" 2 r.Journal.intact;
      check_int "second pass repairs nothing" 0 r.Journal.repaired;
      check_int "second pass quarantines nothing" 0 r.Journal.quarantined);
  (* the daemon itself starts on a journal with fresh damage, recovers
     the recoverable session and serves *)
  write_raw (file "bad2" ".meta") "more torn garbage";
  with_server ~state_dir:dir @@ fun socket _t ->
  check "startup fsck quarantined the newcomer" true
    (Sys.file_exists (Filename.concat dir "quarantine/session-bad2.meta"));
  (match request socket (Protocol.Collect { tenant = "t0"; session = "rec" }) with
  | Protocol.Ran r ->
      check "recovered session halts" true r.Protocol.halted
  | resp -> Alcotest.failf "collect after fsck: %s" (kind_of resp));
  match request socket Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> Alcotest.failf "daemon unhealthy after fsck: %s" (kind_of resp)

let test_fsck_not_a_directory () =
  match Journal.fsck "/nonexistent/mipsd/state" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fsck of a missing directory succeeded"

let suite =
  [ ( "daemon.replay",
      [ tc_slow "same request id executes once" test_replay_same_id_executes_once;
        tc_slow "bounded window evicts oldest" test_replay_window_eviction ] );
    ( "daemon.chaos",
      [ tc_slow "chaos-proxied calls are byte-identical"
          test_call_through_chaos_byte_identical;
        tc "connect failure is typed" test_call_connect_failure_is_typed;
        tc "wait_ready: never-starting daemon" test_wait_ready_never_starting;
        tc "wait_ready: mute listener" test_wait_ready_unresponsive_listener;
        tc_slow "wait_ready: slow-starting daemon" test_wait_ready_slow_start;
        tc_slow "no fd leak over 1000 connections"
          test_no_fd_leak_over_thousand_connections;
        tc_slow "duplicate and reordered frame bursts"
          test_server_duplicate_reordered_frames;
        tc "oversized refused before payload allocation"
          test_oversized_rejected_before_payload_allocation ]
      @ qsuite [ qcheck_frame_stream_order ] );
    ( "daemon.crashpoints",
      [ tc_slow "every run journal boundary recovers byte-identically"
          test_crash_point_sweep_runs;
        tc_slow "every soak journal boundary recovers byte-identically"
          test_crash_point_sweep_soaks ] );
    ( "daemon.fsck",
      [ tc_slow "repairs, quarantines, daemon survives"
          test_fsck_repairs_and_quarantines;
        tc "missing directory is the only error" test_fsck_not_a_directory ] ) ]
