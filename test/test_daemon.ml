(* The daemon layer: frame codec totality (round-trip, truncation and
   bit-flip corpora), protocol codec round-trips, admission-control load
   shedding, per-tenant quotas and circuit breakers, and the server
   end-to-end over a real Unix socket — remote-vs-local byte identity,
   quota kills with undisturbed neighbors, typed overload within its
   deadline, crash recovery via the in-process kill hook, and clean
   shutdown refusals. *)

open Testutil
module Frame = Mips_daemon.Frame
module Protocol = Mips_daemon.Protocol
module Admission = Mips_daemon.Admission
module Tenants = Mips_daemon.Tenants
module Server = Mips_daemon.Server
module Client = Mips_daemon.Client

(* --- frame codec ------------------------------------------------------------ *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode (Frame.encode payload) with
      | Ok (p, consumed) ->
          check "payload round-trips" true (String.equal p payload);
          check_int "whole frame consumed" (Frame.header_bytes + String.length payload)
            consumed
      | Error e -> Alcotest.failf "frame decode: %s" (Frame.error_to_string e))
    [ ""; "x"; "hello"; String.make 4096 '\x00'; String.init 256 Char.chr ]

let qcheck_frame_roundtrip =
  QCheck.Test.make ~count:300 ~name:"frame encode/decode round-trip"
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun payload ->
      match Frame.decode (Frame.encode payload) with
      | Ok (p, _) -> String.equal p payload
      | Error _ -> false)

(* every strict prefix of a valid frame is Truncated — never Ok, never an
   escaped exception *)
let test_frame_truncations () =
  let frame = Frame.encode "the payload under truncation" in
  for len = 0 to String.length frame - 1 do
    match Frame.decode (String.sub frame 0 len) with
    | Error Frame.Truncated -> ()
    | Error e ->
        Alcotest.failf "truncation to %d: expected Truncated, got %s" len
          (Frame.error_to_string e)
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done

(* a flipped bit anywhere in the frame yields a typed error: magic flips
   are Bad_magic, version flips Bad_version, length flips Truncated /
   Oversized / Corrupt, digest and payload flips Corrupt *)
let test_frame_bit_flips () =
  let frame = Frame.encode "bit flip corpus" in
  for i = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code frame.[i] lxor (1 lsl bit)));
      match Frame.decode (Bytes.unsafe_to_string b) with
      | Error
          ( Frame.Bad_magic | Frame.Bad_version _ | Frame.Oversized _
          | Frame.Corrupt _ | Frame.Truncated ) ->
          ()
      | Error e ->
          Alcotest.failf "flip %d.%d: unexpected error %s" i bit
            (Frame.error_to_string e)
      | Ok _ -> Alcotest.failf "flip %d.%d decoded" i bit
      | exception e ->
          Alcotest.failf "flip %d.%d raised %s" i bit (Printexc.to_string e)
    done
  done

let test_frame_oversized () =
  match Frame.decode ~limit:16 (Frame.encode (String.make 64 'a')) with
  | Error (Frame.Oversized 64) -> ()
  | Error e -> Alcotest.failf "expected Oversized, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame decoded"

let qcheck_frame_total_on_junk =
  QCheck.Test.make ~count:500 ~name:"frame decoder is total on junk"
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun junk ->
      match Frame.decode junk with Ok _ | Error _ -> true)

(* --- protocol codec ---------------------------------------------------------- *)

let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 12))
let gen_blob = QCheck.Gen.(string_size ~gen:char (0 -- 120))

let gen_codegen =
  QCheck.Gen.(
    map3
      (fun byte early_out level -> { Protocol.byte; early_out; level })
      bool bool (0 -- 3))

let gen_plain_request =
  QCheck.Gen.(
    oneof
      [ return Protocol.Ping;
        return Protocol.Status;
        return Protocol.Shutdown;
        map Protocol.(fun tenant -> Report { tenant }) gen_name;
        map2 Protocol.(fun tenant session -> Collect { tenant; session })
          gen_name gen_name;
        map3 Protocol.(fun tenant source cg -> Compile { tenant; source; cg })
          gen_name gen_blob gen_codegen;
        (let* tenant = gen_name in
         let* session = opt gen_name in
         let* source = gen_blob in
         let* cg = gen_codegen in
         let* input = gen_blob in
         let* fuel = 1 -- 1_000_000_000 in
         let* engine = oneofl [ "ref"; "fast"; "weird" ] in
         return
           (Protocol.Run { tenant; session; source; cg; input; fuel; engine }));
        (let* tenant = gen_name in
         let* session = opt gen_name in
         let* seed = 0 -- 10_000 in
         let* steps = 1 -- 10_000_000 in
         let* programs = 1 -- 32 in
         let* segments = 1 -- 256 in
         let* differential = 0 -- 64 in
         let* engine = oneofl [ "ref"; "fast"; "jit" ] in
         return
           (Protocol.Soak
              { tenant; session; seed; steps; programs; segments; differential;
                engine }))
      ])

(* at most one Tagged envelope deep: the codec rejects nesting *)
let gen_request =
  QCheck.Gen.(
    oneof
      [ gen_plain_request;
        map2
          (fun id req -> Protocol.Tagged { id; req })
          gen_name gen_plain_request ])

let gen_reject =
  QCheck.Gen.(
    oneof
      [ return Protocol.Bad_request;
        return Protocol.Garbled;
        return Protocol.Overloaded;
        map (fun s -> Protocol.Quota s) gen_name;
        return Protocol.Quarantined;
        return Protocol.Too_many_tenants;
        return Protocol.Unknown_session;
        return Protocol.Shutting_down;
        return Protocol.Internal ])

let gen_response =
  QCheck.Gen.(
    oneof
      [ return Protocol.Pong;
        return Protocol.Bye;
        map (fun s -> Protocol.Listing s) gen_blob;
        map (fun s -> Protocol.Soaked s) gen_blob;
        map (fun s -> Protocol.Reported s) gen_blob;
        map (fun s -> Protocol.Status_r s) gen_blob;
        map2 (fun r d -> Protocol.Err (r, d)) gen_reject gen_blob;
        (let* output = gen_blob in
         let* exit_status = opt (0 -- 255) in
         let* halted = bool in
         let* fault = opt gen_name in
         let* cycles = 0 -- 1_000_000_000 in
         let* retries = 0 -- 100 in
         return
           (Protocol.Ran
              { output; exit_status; halted; fault; cycles; retries })) ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request encode/decode round-trip"
    (QCheck.make ~print:Protocol.request_kind gen_request)
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response encode/decode round-trip"
    (QCheck.make gen_response)
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok resp' -> resp = resp'
      | Error _ -> false)

(* truncating any encoded request yields a typed error, never an escape *)
let test_request_truncations () =
  let reqs =
    [ Protocol.Ping;
      Protocol.Run
        { tenant = "t"; session = Some "s"; source = "program p; begin end.";
          cg = Protocol.default_codegen; input = "x"; fuel = 1000;
          engine = "ref" };
      Protocol.Soak
        { tenant = "t"; session = None; seed = 1; steps = 100; programs = 2;
          segments = 8; differential = 2; engine = "ref" } ]
  in
  List.iter
    (fun req ->
      let data = Protocol.encode_request req in
      for len = 0 to String.length data - 1 do
        match Protocol.decode_request (String.sub data 0 len) with
        | Error (Frame.Truncated | Frame.Corrupt _) -> ()
        | Error e ->
            Alcotest.failf "prefix %d: unexpected %s" len
              (Frame.error_to_string e)
        | Ok _ -> Alcotest.failf "prefix %d of a request decoded" len
        | exception e ->
            Alcotest.failf "prefix %d raised %s" len (Printexc.to_string e)
      done)
    reqs

let qcheck_request_total_on_junk =
  QCheck.Test.make ~count:500 ~name:"request decoder is total on junk"
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun junk ->
      match Protocol.decode_request junk with Ok _ | Error _ -> true)

let qcheck_response_total_on_junk =
  QCheck.Test.make ~count:500 ~name:"response decoder is total on junk"
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun junk ->
      match Protocol.decode_response junk with Ok _ | Error _ -> true)

(* --- admission control ------------------------------------------------------- *)

let wait_running a n =
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (Admission.stats a).Admission.running < n
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  check_int "worker occupancy" n (Admission.stats a).Admission.running

let test_admission_overload () =
  let a = Admission.create ~jobs:1 ~queue:1 in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let blocker =
    match
      Admission.submit a (fun () ->
          Mutex.lock gate;
          Mutex.unlock gate;
          "ran")
    with
    | Ok t -> t
    | Error _ -> Alcotest.fail "first submission shed"
  in
  wait_running a 1;
  (* queue capacity 1: one more may wait ... *)
  let queued =
    match Admission.submit a (fun () -> "queued") with
    | Ok t -> t
    | Error _ -> Alcotest.fail "queued submission shed"
  in
  (* ... and the next is shed immediately, not parked *)
  let t0 = Unix.gettimeofday () in
  (match Admission.submit a (fun () -> "shed") with
  | Error `Overloaded -> ()
  | Ok _ -> Alcotest.fail "overload submission admitted"
  | Error `Shutting_down -> Alcotest.fail "executor not shutting down");
  check "shed decision is immediate" true (Unix.gettimeofday () -. t0 < 1.);
  check_int "one rejection counted" 1 (Admission.stats a).Admission.rejected;
  Mutex.unlock gate;
  check "blocker result" true (Admission.wait blocker = Ok "ran");
  check "queued result" true (Admission.wait queued = Ok "queued");
  Admission.shutdown a

let test_admission_exception () =
  let a = Admission.create ~jobs:1 ~queue:4 in
  (match Admission.submit a (fun () -> failwith "boom") with
  | Ok t -> (
      match Admission.wait t with
      | Error (Failure msg) -> check_string "original payload" "boom" msg
      | Error e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "failing job succeeded")
  | Error _ -> Alcotest.fail "submission shed");
  Admission.shutdown a

let test_admission_shutdown_refuses () =
  let a = Admission.create ~jobs:1 ~queue:4 in
  Admission.shutdown a;
  match Admission.submit a (fun () -> ()) with
  | Error `Shutting_down -> ()
  | Ok _ -> Alcotest.fail "shut-down executor admitted work"
  | Error `Overloaded -> Alcotest.fail "shut-down executor shed as overload"

(* --- tenants: quotas and circuit breakers ------------------------------------ *)

let quota_1 =
  { Tenants.default_quota with
    Tenants.max_concurrent = 1;
    breaker_threshold = 2;
    breaker_cooldown_s = 10. }

let test_tenant_concurrency () =
  let t = Tenants.create ~quota:quota_1 ~max_tenants:4 () in
  check "first admit" true (Tenants.admit t ~now:0. "a" = Ok ());
  (match Tenants.admit t ~now:0. "a" with
  | Error (Protocol.Quota "concurrency", _) -> ()
  | _ -> Alcotest.fail "second in-flight request admitted");
  (* a different tenant is unaffected *)
  check "neighbor admit" true (Tenants.admit t ~now:0. "b" = Ok ());
  Tenants.release t ~now:0. ~failed:false "a";
  check "slot returned" true (Tenants.admit t ~now:0. "a" = Ok ())

let test_tenant_registry_bound () =
  let t = Tenants.create ~quota:quota_1 ~max_tenants:2 () in
  check "a" true (Tenants.admit t ~now:0. "a" = Ok ());
  check "b" true (Tenants.admit t ~now:0. "b" = Ok ());
  match Tenants.admit t ~now:0. "c" with
  | Error (Protocol.Too_many_tenants, _) -> ()
  | _ -> Alcotest.fail "registry bound not enforced"

let test_tenant_breaker () =
  let t = Tenants.create ~quota:quota_1 ~max_tenants:4 () in
  let fail_once now =
    check "admit before failure" true (Tenants.admit t ~now "p" = Ok ());
    Tenants.release t ~now ~failed:true "p"
  in
  fail_once 0.;
  fail_once 1.;
  (* threshold 2 reached: the breaker is open for cooldown_s = 10 *)
  (match Tenants.admit t ~now:2. "p" with
  | Error (Protocol.Quarantined, _) -> ()
  | _ -> Alcotest.fail "poison tenant not quarantined");
  (* neighbors keep full service while p is quarantined *)
  check "neighbor unaffected" true (Tenants.admit t ~now:2. "q" = Ok ());
  Tenants.release t ~now:2. ~failed:false "q";
  (* cooldown over: exactly one probe goes through (half-open) *)
  check "probe admitted" true (Tenants.admit t ~now:20. "p" = Ok ());
  (match Tenants.admit t ~now:20. "p" with
  | Error (Protocol.Quarantined, _) -> ()
  | _ -> Alcotest.fail "second request during half-open admitted");
  (* probe success closes the breaker *)
  Tenants.release t ~now:20. ~failed:false "p";
  check "breaker closed after probe" true (Tenants.admit t ~now:21. "p" = Ok ());
  Tenants.release t ~now:21. ~failed:false "p";
  (* and a failing probe re-opens it for another full cooldown *)
  fail_once 22.;
  fail_once 23.;
  check "probe admitted again" true (Tenants.admit t ~now:40. "p" = Ok ());
  Tenants.release t ~now:40. ~failed:true "p";
  match Tenants.admit t ~now:45. "p" with
  | Error (Protocol.Quarantined, _) -> ()
  | _ -> Alcotest.fail "failed probe did not re-open the breaker"

(* --- server end-to-end -------------------------------------------------------- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mipsd-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let with_server ?(jobs = 2) ?(queue = 16) ?(max_tenants = 8)
    ?(quota = Tenants.default_quota) ?state_dir ?(checkpoint_every = 50_000)
    ?crash_after f =
  let socket = Filename.concat (temp_dir ()) "d.sock" in
  let config =
    { (Server.default_config ~socket) with
      Server.jobs;
      queue;
      max_tenants;
      quota;
      state_dir;
      checkpoint_every;
      drain_s = 2.;
      test_crash_after_checkpoints = crash_after }
  in
  let t = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop ~drain:false t) @@ fun () ->
  f socket t

let request socket req =
  match Client.with_connection socket (fun c ->
      match Client.request c req with
      | Ok resp -> Ok resp
      | Error e -> Error (Frame.error_to_string e))
  with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "request failed: %s" msg

let run_req ?session ?(tenant = "t0") ?(fuel = 500_000_000) source =
  Protocol.Run
    { tenant; session; source; cg = Protocol.default_codegen; input = "";
      fuel; engine = "ref" }

(* a program that never halts: the quota and overload fixtures *)
let spin_source =
  {|
program spin;
var i : integer;
begin
  i := 0;
  while i < 2 do begin
    i := i + 1;
    i := i - 1
  end
end.
|}

(* a long (tens of thousands of steps) but halting program: the
   crash-recovery fixture *)
let slow_sum_source =
  {|
program slowsum;
var i, acc : integer;
begin
  acc := 0;
  for i := 1 to 5000 do
    acc := acc + i;
  writeln(acc)
end.
|}

let kind_of = function
  | Protocol.Pong -> "pong"
  | Protocol.Listing _ -> "listing"
  | Protocol.Ran _ -> "ran"
  | Protocol.Soaked _ -> "soaked"
  | Protocol.Reported _ -> "reported"
  | Protocol.Status_r _ -> "status"
  | Protocol.Bye -> "bye"
  | Protocol.Err (r, m) -> Protocol.reject_to_string r ^ ": " ^ m

let test_server_run_matches_local () =
  with_server @@ fun socket _t ->
  let e = Mips_corpus.Corpus.find "fib" in
  let local =
    Mips_machine.Hosted.run_program ~input:e.Mips_corpus.Corpus.input
      (Mips_codegen.Compile.compile e.Mips_corpus.Corpus.source)
  in
  match
    request socket
      (Protocol.Run
         { tenant = "t0"; session = None; source = e.Mips_corpus.Corpus.source;
           cg = Protocol.default_codegen; input = e.Mips_corpus.Corpus.input;
           fuel = 500_000_000; engine = "ref" })
  with
  | Protocol.Ran r ->
      check_string "remote output equals local run"
        local.Mips_machine.Hosted.output r.Protocol.output;
      check "remote halted" true r.Protocol.halted;
      check "remote exit status" true
        (r.Protocol.exit_status = local.Mips_machine.Hosted.exit_status)
  | resp -> Alcotest.failf "unexpected response %s" (kind_of resp)

let test_server_fuel_quota_with_neighbor () =
  (* tight fuel quota; the spinner asks for more than the quota and must be
     killed with a typed reason, while a well-behaved neighbor running
     concurrently gets a response byte-identical to its solo run *)
  let quota =
    { Tenants.default_quota with Tenants.max_fuel = 200_000 }
  in
  let fib = (Mips_corpus.Corpus.find "fib").Mips_corpus.Corpus.source in
  let solo = with_server ~quota @@ fun socket _t ->
    request socket (run_req ~tenant:"good" fib)
  in
  with_server ~quota @@ fun socket _t ->
  let bad_resp = ref Protocol.Pong and good_resp = ref Protocol.Pong in
  let bad =
    Thread.create
      (fun () ->
        bad_resp := request socket (run_req ~tenant:"bad" ~fuel:1_000_000 spin_source))
      ()
  in
  let good =
    Thread.create
      (fun () -> good_resp := request socket (run_req ~tenant:"good" fib))
      ()
  in
  Thread.join bad;
  Thread.join good;
  (match !bad_resp with
  | Protocol.Err (Protocol.Quota "fuel", _) -> ()
  | resp -> Alcotest.failf "spinner got %s, wanted a fuel-quota kill" (kind_of resp));
  check "neighbor response is byte-identical to its solo run" true
    (String.equal
       (Protocol.encode_response solo)
       (Protocol.encode_response !good_resp))

let test_server_wall_quota () =
  (* a zero wall budget trips the deadline watchdog on the first
     checkpoint slice *)
  let quota = { Tenants.default_quota with Tenants.max_wall_s = 0. } in
  with_server ~quota ~checkpoint_every:1_000 @@ fun socket _t ->
  match request socket (run_req ~fuel:100_000 spin_source) with
  | Protocol.Err (Protocol.Quota "deadline", _) -> ()
  | resp -> Alcotest.failf "got %s, wanted a deadline kill" (kind_of resp)

let test_server_output_quota () =
  (* the output budget is enforced mid-run by the same watchdog *)
  let chatty =
    {|
program chatty;
var i : integer;
begin
  for i := 1 to 2000 do
    writeln(i)
end.
|}
  in
  let quota = { Tenants.default_quota with Tenants.max_output = 500 } in
  with_server ~quota ~checkpoint_every:1_000 @@ fun socket _t ->
  match request socket (run_req chatty) with
  | Protocol.Err (Protocol.Quota "memory", _) -> ()
  | resp -> Alcotest.failf "got %s, wanted a memory kill" (kind_of resp)

let test_server_overload_within_deadline () =
  (* one worker, no queue: while the spinner occupies the worker, the next
     request is shed with a typed Overloaded answer in bounded time *)
  with_server ~jobs:1 ~queue:0 @@ fun socket _t ->
  let fib = (Mips_corpus.Corpus.find "fib").Mips_corpus.Corpus.source in
  let spinner =
    Thread.create
      (fun () ->
        ignore (request socket (run_req ~tenant:"hog" ~fuel:60_000_000 spin_source)))
      ()
  in
  Thread.delay 0.4;
  let t0 = Unix.gettimeofday () in
  (match request socket (run_req ~tenant:"victim" fib) with
  | Protocol.Err (Protocol.Overloaded, _) -> ()
  | resp -> Alcotest.failf "got %s, wanted Overloaded" (kind_of resp));
  check "shed within its deadline" true (Unix.gettimeofday () -. t0 < 5.);
  Thread.join spinner

let test_server_bad_frames_do_not_kill () =
  with_server @@ fun socket _t ->
  (* raw garbage: the server answers with a typed refusal and closes *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let junk = "XXXXJUNKJUNKJUNKJUNKJUNKJUNKJUNK" in
  ignore (Unix.write_substring fd junk 0 (String.length junk));
  (match Frame.read fd with
  | Ok payload -> (
      match Protocol.decode_response payload with
      | Ok (Protocol.Err (Protocol.Garbled, _)) -> ()
      | _ -> Alcotest.fail "garbage not answered with Garbled")
  | Error e ->
      Alcotest.failf "no typed answer to garbage: %s" (Frame.error_to_string e));
  Unix.close fd;
  (* a truncated frame: write half a valid frame and hang up *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let frame = Frame.encode (Protocol.encode_request Protocol.Ping) in
  ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
  Unix.close fd;
  (* a frame with a corrupted payload *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let b = Bytes.of_string frame in
  Bytes.set b (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
  ignore (Unix.write fd b 0 (Bytes.length b));
  (match Frame.read fd with
  | Ok payload -> (
      match Protocol.decode_response payload with
      | Ok (Protocol.Err (Protocol.Garbled, _)) -> ()
      | _ -> Alcotest.fail "corrupt frame not answered with Garbled")
  | Error _ -> ());
  Unix.close fd;
  (* after all of that the daemon still serves *)
  match request socket Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> Alcotest.failf "daemon damaged by malformed input: %s" (kind_of resp)

let test_server_session_crash_recovery () =
  (* the in-process stand-in for SIGKILL: the job aborts after two
     checkpoint writes, the session's journal and checkpoint survive, and
     a fresh server on the same state directory finishes the session
     bit-identically to an uninterrupted solo run *)
  let state_dir = temp_dir () in
  let solo = with_server @@ fun socket _t ->
    request socket (run_req slow_sum_source)
  in
  (match solo with
  | Protocol.Ran r -> check "solo run halts" true r.Protocol.halted
  | resp -> Alcotest.failf "solo run: %s" (kind_of resp));
  (* first life: crash mid-session *)
  (with_server ~state_dir ~checkpoint_every:2_000 ~crash_after:2
  @@ fun socket _t ->
  match request socket (run_req ~session:"cr1" slow_sum_source) with
  | Protocol.Err (Protocol.Internal, _) -> ()
  | resp -> Alcotest.failf "crash hook: %s" (kind_of resp));
  check "checkpoint survives the crash" true
    (Sys.file_exists (Filename.concat state_dir "session-cr1.ckpt"));
  check "journal survives the crash" true
    (Sys.file_exists (Filename.concat state_dir "session-cr1.meta"));
  (* second life: recovery resumes the session; collect returns the result *)
  with_server ~state_dir ~checkpoint_every:2_000 @@ fun socket _t ->
  let resp =
    request socket (Protocol.Collect { tenant = "t0"; session = "cr1" })
  in
  check "recovered result is byte-identical to the solo run" true
    (String.equal
       (Protocol.encode_response solo)
       (Protocol.encode_response resp));
  (* the finished session is idempotent: re-submitting replays the result *)
  let again = request socket (run_req ~session:"cr1" slow_sum_source) in
  check "resubmitted session replays the result" true
    (String.equal
       (Protocol.encode_response solo)
       (Protocol.encode_response again))

let test_server_unknown_session_and_ownership () =
  let state_dir = temp_dir () in
  with_server ~state_dir @@ fun socket _t ->
  (match request socket (Protocol.Collect { tenant = "t0"; session = "nope" })
   with
  | Protocol.Err (Protocol.Unknown_session, _) -> ()
  | resp -> Alcotest.failf "got %s, wanted Unknown_session" (kind_of resp));
  (match request socket (run_req ~session:"owned" slow_sum_source) with
  | Protocol.Ran _ -> ()
  | resp -> Alcotest.failf "session run: %s" (kind_of resp));
  match request socket (Protocol.Collect { tenant = "thief"; session = "owned" })
  with
  | Protocol.Err (Protocol.Bad_request, _) -> ()
  | resp -> Alcotest.failf "foreign collect got %s" (kind_of resp)

let test_server_soak_matches_local () =
  (* a daemon soak is byte-identical to the local `mipsc soak --json`
     pipeline at equal parameters: both print Soak.result_json *)
  let seed = 5 and steps = 150_000 and programs = 4 and segments = 24 in
  let differential = 2 in
  let plan =
    { Mips_fault.Plan.seed; flip_reg_rate = 0.002; flip_data_rate = 0.002;
      irq_rate = 0.002; page_drop_rate = 0.002; flaky_rate = 0.005;
      max_injections = 0 }
  in
  let expected =
    match
      Mips_soak.Soak.run_checkpointed ~programs ~segments ~quantum:500 ~steps
        ~diff_count:differential ~diff_jobs:1 ~plan ~seed ()
    with
    | Ok (Mips_soak.Soak.Complete (s, diffs)) ->
        Mips_obs.Json.to_string (Mips_soak.Soak.result_json s diffs)
    | Ok Mips_soak.Soak.Interrupted -> Alcotest.fail "local soak interrupted"
    | Error e -> Alcotest.failf "local soak: %s" (Mips_resilience.Snapshot.error_to_string e)
  in
  with_server @@ fun socket _t ->
  match
    request socket
      (Protocol.Soak
         { tenant = "t0"; session = None; seed; steps; programs; segments;
           differential; engine = "ref" })
  with
  | Protocol.Soaked json ->
      check "daemon soak equals local soak JSON" true (String.equal expected json)
  | resp -> Alcotest.failf "soak: %s" (kind_of resp)

let test_server_soak_jit_matches_local () =
  (* the engine choice travels the wire: a remote jit soak is byte-identical
     to the same soak run in-process with [~engine:Cpu.Jit] — trace
     compilation on the daemon side must not perturb a single byte of the
     differential/soak summary *)
  let seed = 11 and steps = 150_000 and programs = 4 and segments = 24 in
  let differential = 2 in
  let plan =
    { Mips_fault.Plan.seed; flip_reg_rate = 0.002; flip_data_rate = 0.002;
      irq_rate = 0.002; page_drop_rate = 0.002; flaky_rate = 0.005;
      max_injections = 0 }
  in
  let expected =
    match
      Mips_soak.Soak.run_checkpointed ~programs ~segments ~quantum:500 ~steps
        ~diff_count:differential ~diff_jobs:1
        ~engine:Mips_machine.Cpu.Jit ~plan ~seed ()
    with
    | Ok (Mips_soak.Soak.Complete (s, diffs)) ->
        Mips_obs.Json.to_string (Mips_soak.Soak.result_json s diffs)
    | Ok Mips_soak.Soak.Interrupted -> Alcotest.fail "local soak interrupted"
    | Error e -> Alcotest.failf "local soak: %s" (Mips_resilience.Snapshot.error_to_string e)
  in
  with_server @@ fun socket _t ->
  match
    request socket
      (Protocol.Soak
         { tenant = "t0"; session = None; seed; steps; programs; segments;
           differential; engine = "jit" })
  with
  | Protocol.Soaked json ->
      check "daemon jit soak equals local jit soak JSON" true
        (String.equal expected json)
  | resp -> Alcotest.failf "soak: %s" (kind_of resp)

let test_server_validation_and_status () =
  with_server @@ fun socket _t ->
  (match request socket (run_req ~tenant:"bad tenant!" "x") with
  | Protocol.Err (Protocol.Bad_request, _) -> ()
  | resp -> Alcotest.failf "invalid tenant admitted: %s" (kind_of resp));
  (match request socket (run_req ~fuel:0 "x") with
  | Protocol.Err (Protocol.Bad_request, _) -> ()
  | resp -> Alcotest.failf "zero fuel admitted: %s" (kind_of resp));
  (* sessions are refused when no state dir is configured... via run *)
  (match request socket Protocol.Status with
  | Protocol.Status_r json ->
      check "status is the documented schema" true
        (Mips_obs.Json.of_string json
        |> function
        | Ok j -> (
            match Mips_obs.Json.member "schema" j with
            | Some (Mips_obs.Json.Str "mipsd-status/1") -> true
            | _ -> false)
        | Error _ -> false)
  | resp -> Alcotest.failf "status: %s" (kind_of resp));
  match request socket Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> Alcotest.failf "ping: %s" (kind_of resp)

let test_server_shutdown_refusal () =
  with_server @@ fun socket t ->
  Server.request_stop t;
  let fib = (Mips_corpus.Corpus.find "fib").Mips_corpus.Corpus.source in
  match request socket (run_req fib) with
  | Protocol.Err (Protocol.Shutting_down, _) -> ()
  | resp -> Alcotest.failf "draining daemon answered %s" (kind_of resp)

let suite =
  [ ( "daemon.frame",
      [ tc "round-trip samples" test_frame_roundtrip;
        tc "decode truncations" test_frame_truncations;
        tc "decode bit flips" test_frame_bit_flips;
        tc "oversized rejected before allocation" test_frame_oversized ]
      @ qsuite [ qcheck_frame_roundtrip; qcheck_frame_total_on_junk ] );
    ( "daemon.protocol",
      [ tc "request truncations" test_request_truncations ]
      @ qsuite
          [ qcheck_request_roundtrip;
            qcheck_response_roundtrip;
            qcheck_request_total_on_junk;
            qcheck_response_total_on_junk ] );
    ( "daemon.admission",
      [ tc "bounded queue sheds immediately" test_admission_overload;
        tc "job exception propagates" test_admission_exception;
        tc "shutdown refuses new work" test_admission_shutdown_refuses ] );
    ( "daemon.tenants",
      [ tc "concurrency quota" test_tenant_concurrency;
        tc "registry bound" test_tenant_registry_bound;
        tc "circuit breaker lifecycle" test_tenant_breaker ] );
    ( "daemon.server",
      [ tc_slow "remote run matches local" test_server_run_matches_local;
        tc_slow "fuel quota kill, neighbor byte-identical"
          test_server_fuel_quota_with_neighbor;
        tc_slow "wall-clock quota kill" test_server_wall_quota;
        tc_slow "output quota kill" test_server_output_quota;
        tc_slow "overload shed within deadline"
          test_server_overload_within_deadline;
        tc_slow "malformed frames never crash the daemon"
          test_server_bad_frames_do_not_kill;
        tc_slow "crash recovery is bit-identical"
          test_server_session_crash_recovery;
        tc_slow "unknown session and ownership"
          test_server_unknown_session_and_ownership;
        tc_slow "daemon soak equals local soak" test_server_soak_matches_local;
        tc_slow "daemon jit soak equals local jit soak"
          test_server_soak_jit_matches_local;
        tc_slow "validation and status" test_server_validation_and_status;
        tc_slow "shutdown refuses with a typed answer"
          test_server_shutdown_refusal ] ) ]
