(* Unit and property tests for the ISA library. *)

open Mips_isa
open Testutil

(* --- Word32 ------------------------------------------------------------ *)

let test_norm_range () =
  List.iter
    (fun x ->
      let w = Word32.norm x in
      check "in range" true (w >= -0x80000000 && w < 0x80000000))
    [ 0; 1; -1; max_int; min_int; 0x7FFFFFFF; 0x80000000; -0x80000001 ]

let test_wraparound () =
  check_int "max+1 wraps" (-0x80000000) (Word32.add 0x7FFFFFFF 1);
  check_int "min-1 wraps" 0x7FFFFFFF (Word32.sub (-0x80000000) 1);
  check "overflow detected" true (Word32.add_overflows 0x7FFFFFFF 1);
  check "no overflow" false (Word32.add_overflows 5 7);
  check "sub overflow" true (Word32.sub_overflows (-0x80000000) 1);
  check "mul overflow" true (Word32.mul_overflows 0x10000 0x10000)

let test_bytes () =
  let w = Word32.norm 0x12345678 in
  check_int "byte 0" 0x78 (Word32.get_byte w 0);
  check_int "byte 3" 0x12 (Word32.get_byte w 3);
  check_int "set byte" 0x12AB5678 (Word32.set_byte w 2 0xAB);
  check_int "unsigned" 0xFFFFFFFF (Word32.to_unsigned (-1))

let test_shifts () =
  check_int "sll" 16 (Word32.shift_left 1 4);
  check_int "srl of -1" 0x7FFFFFFF (Word32.shift_right_logical (-1) 1);
  check_int "sra of -2" (-1) (Word32.shift_right_arith (-2) 1);
  check_int "shift masks to 5 bits" 2 (Word32.shift_left 1 33)

(* --- Cond -------------------------------------------------------------- *)

let prop_negate_complements =
  QCheck2.Test.make ~name:"cond: negate complements eval" ~count:500
    QCheck2.Gen.(triple Gen.cond Gen.word32 Gen.word32)
    (fun (c, a, b) -> Cond.eval c a b = not (Cond.eval (Cond.negate c) a b))

let prop_negate_involutive =
  QCheck2.Test.make ~name:"cond: negate involutive" ~count:100 Gen.cond (fun c ->
      Cond.equal c (Cond.negate (Cond.negate c)))

let prop_swap =
  QCheck2.Test.make ~name:"cond: swap exchanges operands" ~count:500
    QCheck2.Gen.(triple (oneofl Cond.[ Eq; Ne; Lt; Le; Gt; Ge; Ltu; Leu; Gtu; Geu ])
                   Gen.word32 Gen.word32)
    (fun (c, a, b) -> Cond.eval c a b = Cond.eval (Cond.swap c) b a)

let prop_cond_code_roundtrip =
  QCheck2.Test.make ~name:"cond: code roundtrip" ~count:100 Gen.cond (fun c ->
      Cond.equal c (Cond.of_code (Cond.to_code c)))

let test_sixteen_conds () = check_int "16 comparisons" 16 (List.length Cond.all)

(* --- Operand / Reg ------------------------------------------------------ *)

let test_imm4_bounds () =
  check "15 ok" true (Operand.fits_imm4 15);
  check "16 rejected" false (Operand.fits_imm4 16);
  Alcotest.check_raises "imm4 16 raises" (Invalid_argument "Operand.imm4: constant out of range")
    (fun () -> ignore (Operand.imm4 16));
  Alcotest.check_raises "reg 16 raises" (Invalid_argument "Reg.of_int: register out of range")
    (fun () -> ignore (Reg.of_int 16))

let test_reg_conventions () =
  check_int "sp is r15" 15 (Reg.to_int Reg.sp);
  check_int "ten allocatable" 10 (List.length Reg.allocatable);
  Alcotest.(check string) "sp name" "sp" (Reg.name Reg.sp);
  Alcotest.(check string) "plain name" "r3" (Reg.name (Reg.r 3))

(* --- Word packing ------------------------------------------------------- *)

let ld r a = Piece.Mem (Mem.Load (Mem.W32, Mem.Disp (Reg.r a, 0), Reg.r r))
let add d = Piece.Alu (Alu.Binop (Alu.Add, Operand.reg (Reg.r 1), Operand.imm4 1, Reg.r d))

let test_pack_alu_mem () =
  match Word.pack (add 2) (ld 3 4) with
  | Some (Word.AM _) -> ()
  | _ -> Alcotest.fail "expected AM packing"

let test_pack_swapped_order () =
  match Word.pack (ld 3 4) (add 2) with
  | Some (Word.AM _) -> ()
  | _ -> Alcotest.fail "pack should try both orders"

let test_pack_same_dest_rejected () =
  check "same dest" true (Word.pack (add 2) (ld 2 4) = None)

let test_pack_whole_word_rejected () =
  let limm = Piece.Mem (Mem.Limm (123456, Reg.r 5)) in
  check "limm unpackable" true (Word.pack (add 2) limm = None);
  let abs = Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 100, Reg.r 5)) in
  check "abs unpackable" true (Word.pack (add 2) abs = None)

let test_pack_indirect_rejected () =
  let jind = Piece.Branch (Branch.Jind (Reg.r 7)) in
  check "jind unpackable" true (Word.pack (add 2) jind = None);
  let cbr =
    Piece.Branch (Branch.Cbr (Cond.Eq, Operand.reg (Reg.r 0), Operand.imm4 0, "L"))
  in
  (match Word.pack (add 2) cbr with
  | Some (Word.AB _) -> ()
  | _ -> Alcotest.fail "expected AB packing");
  check "two alus unpackable" true (Word.pack (add 2) (add 3) = None)

let test_word_reads_writes () =
  match Word.pack (add 2) (ld 3 4) with
  | Some w ->
      check "reads r1,r4" true
        (Reg.Set.equal (Word.reads w) (Reg.Set.of_list [ Reg.r 1; Reg.r 4 ]));
      check "writes r2,r3" true
        (Reg.Set.equal (Word.writes w) (Reg.Set.of_list [ Reg.r 2; Reg.r 3 ]));
      check "load_writes r3" true
        (Reg.Set.equal (Word.load_writes w) (Reg.Set.singleton (Reg.r 3)))
  | None -> Alcotest.fail "pack failed"

(* --- Hazard ------------------------------------------------------------- *)

let test_load_use_hazard () =
  let load = Word.M (Mem.Load (Mem.W32, Mem.Disp (Reg.r 4, 0), Reg.r 3)) in
  let use = Word.A (Alu.Mov (Operand.reg (Reg.r 3), Reg.r 5)) in
  let other = Word.A (Alu.Mov (Operand.reg (Reg.r 6), Reg.r 5)) in
  check "conflict" true (Hazard.load_use_conflict ~earlier:load ~later:use);
  check "no conflict" false (Hazard.load_use_conflict ~earlier:load ~later:other);
  check_int "one hazard found" 1 (List.length (Hazard.sequence_hazards [| load; use |]));
  check_int "gap removes hazard" 0
    (List.length (Hazard.sequence_hazards [| load; other; use |]))

let test_independent () =
  let a = add 2 and b = Piece.Alu (Alu.Mov (Operand.imm4 3, Reg.r 5)) in
  check "independent alus" true (Hazard.independent a b);
  check "dep via write-read" false
    (Hazard.independent a (Piece.Alu (Alu.Mov (Operand.reg (Reg.r 2), Reg.r 6))));
  let st1 = Piece.Mem (Mem.Store (Mem.W32, Reg.r 1, Mem.Abs 10)) in
  let st2 = Piece.Mem (Mem.Store (Mem.W32, Reg.r 2, Mem.Abs 11)) in
  let st_unknown = Piece.Mem (Mem.Store (Mem.W32, Reg.r 2, Mem.Disp (Reg.r 3, 0))) in
  let ld_abs = Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 10, Reg.r 4)) in
  check "distinct abs stores commute" true (Hazard.independent st1 st2);
  check "aliasing store blocks" false (Hazard.independent st1 st_unknown);
  check "load vs same-abs store" false (Hazard.independent st1 ld_abs);
  check "branches never move" false
    (Hazard.independent a (Piece.Branch (Branch.Jump "L")))

let prop_independent_symmetric =
  let piece =
    QCheck2.Gen.oneof
      [ QCheck2.Gen.map (fun a -> Piece.Alu a) Gen.alu;
        QCheck2.Gen.map (fun m -> Piece.Mem m) Gen.mem;
        QCheck2.Gen.return Piece.Nop ]
  in
  QCheck2.Test.make ~name:"hazard: independence symmetric" ~count:1000
    QCheck2.Gen.(pair piece piece)
    (fun (p, q) -> Hazard.independent p q = Hazard.independent q p)

(* --- Predecode (fast-engine lowering) ------------------------------------ *)

module Predecode = Mips_machine.Predecode

let word_of_piece = function
  | Piece.Nop -> Word.Nop
  | Piece.Alu a -> Word.A a
  | Piece.Mem m -> Word.M m
  | Piece.Branch b -> Word.B b

let prop_predecode_sets =
  QCheck2.Test.make ~name:"predecode: register sets match Word" ~count:2000
    Gen.word (fun w ->
      let e = Predecode.lower w in
      Reg.Set.equal e.Predecode.reads (Word.reads w)
      && Reg.Set.equal e.Predecode.writes (Word.writes w)
      && Reg.Set.equal e.Predecode.load_writes (Word.load_writes w))

(* the fast engine executes from predecoded entries of *decoded* words, so
   the contract must survive the encode/decode roundtrip too *)
let prop_predecode_roundtrip =
  QCheck2.Test.make ~name:"predecode: encode-decode-predecode roundtrip"
    ~count:2000 Gen.word (fun w ->
      let e = Predecode.lower (Encode.decode (Encode.encode w)) in
      Reg.Set.equal e.Predecode.reads (Word.reads w)
      && Reg.Set.equal e.Predecode.writes (Word.writes w)
      && e.Predecode.alu = Word.alu w
      && e.Predecode.mem = Word.mem w
      && e.Predecode.branch = Word.branch w)

let prop_predecode_piece_counts =
  QCheck2.Test.make ~name:"predecode: piece counts and classification"
    ~count:1000 Gen.piece (fun p ->
      let w = word_of_piece p in
      let e = Predecode.lower w in
      let count f = List.length (List.filter f (Word.pieces w)) in
      e.Predecode.alu_pieces
        = count (function Piece.Alu _ -> true | _ -> false)
      && e.Predecode.mem_pieces
         = count (function Piece.Mem _ -> true | _ -> false)
      && e.Predecode.branch_pieces
         = count (function Piece.Branch _ -> true | _ -> false)
      && e.Predecode.is_nop = (match Word.pieces w with [] -> true | _ -> false)
      && e.Predecode.refs_memory = Word.references_memory w)

let prop_predecode_hazard_flags =
  QCheck2.Test.make ~name:"predecode: hazard flags" ~count:2000 Gen.word
    (fun w ->
      let e = Predecode.lower w in
      e.Predecode.may_stall = not (Reg.Set.is_empty (Word.reads w))
      && e.Predecode.is_trap
         = (match Word.branch w with Some (Branch.Trap _) -> true | _ -> false)
      && e.Predecode.packed
         = (match w with Word.AM _ | Word.AB _ -> true | _ -> false)
      (* every memory reference, trap, privileged or overflow-capable op
         must be in the guarded (may_fault) class *)
      && ((not (e.Predecode.mem <> None || e.Predecode.is_trap
                || e.Predecode.privileged))
         || e.Predecode.may_fault))

(* --- Encode ------------------------------------------------------------- *)

let prop_encode_roundtrip =
  QCheck2.Test.make ~name:"encode: decode inverts encode" ~count:2000 Gen.word
    (fun w -> Word.equal ( = ) w (Encode.decode (Encode.encode w)))

let test_unencodable () =
  let bad = Word.B (Branch.Jump (Encode.code_address_max + 1)) in
  check "code address too large" true
    (try
       ignore (Encode.encode bad);
       false
     with Encode.Unencodable _ -> true)

let suite =
  [ ( "isa:word32",
      [ Alcotest.test_case "norm range" `Quick test_norm_range;
        Alcotest.test_case "wraparound + overflow" `Quick test_wraparound;
        Alcotest.test_case "byte access" `Quick test_bytes;
        Alcotest.test_case "shifts" `Quick test_shifts ] );
    ( "isa:cond",
      Alcotest.test_case "sixteen comparisons" `Quick test_sixteen_conds
      :: qsuite
           [ prop_negate_complements; prop_negate_involutive; prop_swap;
             prop_cond_code_roundtrip ] );
    ( "isa:operand",
      [ Alcotest.test_case "imm4 bounds" `Quick test_imm4_bounds;
        Alcotest.test_case "reg conventions" `Quick test_reg_conventions ] );
    ( "isa:word",
      [ Alcotest.test_case "pack alu+mem" `Quick test_pack_alu_mem;
        Alcotest.test_case "pack order-insensitive" `Quick test_pack_swapped_order;
        Alcotest.test_case "same dest rejected" `Quick test_pack_same_dest_rejected;
        Alcotest.test_case "whole-word mem rejected" `Quick test_pack_whole_word_rejected;
        Alcotest.test_case "indirect branch rejected" `Quick test_pack_indirect_rejected;
        Alcotest.test_case "reads/writes" `Quick test_word_reads_writes ] );
    ( "isa:hazard",
      [ Alcotest.test_case "load-use" `Quick test_load_use_hazard;
        Alcotest.test_case "independence" `Quick test_independent ]
      @ qsuite [ prop_independent_symmetric ] );
    ( "isa:encode",
      Alcotest.test_case "unencodable rejected" `Quick test_unencodable
      :: qsuite [ prop_encode_roundtrip ] );
    ( "isa:predecode",
      qsuite
        [ prop_predecode_sets; prop_predecode_roundtrip;
          prop_predecode_piece_counts; prop_predecode_hazard_flags ] ) ]
