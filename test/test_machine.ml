(* Tests for the architectural simulator: delayed loads and branches,
   exceptions, paging, interlock mode, and the byte-addressed variant. *)

open Mips_isa
open Mips_machine

open Testutil
let rr i = Operand.reg (Reg.r i)
let i4 = Operand.imm4
let movi8 c d = Word.A (Alu.Movi8 (c, Reg.r d))
let mov src d = Word.A (Alu.Mov (src, Reg.r d))
let add a b d = Word.A (Alu.Binop (Alu.Add, a, b, Reg.r d))
let ld a d = Word.M (Mem.Load (Mem.W32, a, Reg.r d))
let st s a = Word.M (Mem.Store (Mem.W32, Reg.r s, a))
let jmp t = Word.B (Branch.Jump t)
let trap c = Word.B (Branch.Trap c)
let halt = [ movi8 0 10; trap Monitor.exit_ ]

let prog ?data words = Program.make ?data (Array.of_list words)

let fresh ?config ?data words =
  let cpu = Cpu.create ?config () in
  Cpu.load_program cpu (prog ?data words);
  cpu

let run_halt ?config ?data words =
  let cpu = fresh ?config ?data words in
  let res = Hosted.run cpu in
  check "halted cleanly" true (res.Hosted.halted && res.Hosted.fault = None);
  cpu

(* --- basic execution ---------------------------------------------------- *)

let test_alu_basics () =
  let cpu = run_halt ([ movi8 7 1; add (rr 1) (i4 5) 2; mov (rr 2) 3 ] @ halt) in
  check_int "r1" 7 (Cpu.get_reg cpu (Reg.r 1));
  check_int "r2" 12 (Cpu.get_reg cpu (Reg.r 2));
  check_int "r3" 12 (Cpu.get_reg cpu (Reg.r 3))

let test_rsub_negative_constant () =
  (* rsub #1, r1 -> r2 computes r1 - 1: the paper's reverse-operator trick. *)
  let cpu =
    run_halt ([ movi8 10 1; Word.A (Alu.Binop (Alu.Rsub, i4 1, rr 1, Reg.r 2)) ] @ halt)
  in
  check_int "r2 = r1 - 1" 9 (Cpu.get_reg cpu (Reg.r 2))

let test_setc () =
  let cpu =
    run_halt
      ([ movi8 5 1;
         Word.A (Alu.Setc (Cond.Eq, rr 1, i4 5, Reg.r 2));
         Word.A (Alu.Setc (Cond.Lt, rr 1, i4 3, Reg.r 3)) ]
      @ halt)
  in
  check_int "eq true" 1 (Cpu.get_reg cpu (Reg.r 2));
  check_int "lt false" 0 (Cpu.get_reg cpu (Reg.r 3))

let test_limm_immediate_commit () =
  (* A long immediate is not a memory load: no load delay. *)
  let cpu =
    run_halt ([ Word.M (Mem.Limm (123456, Reg.r 1)); mov (rr 1) 2 ] @ halt)
  in
  check_int "limm visible immediately" 123456 (Cpu.get_reg cpu (Reg.r 2))

(* --- load delay --------------------------------------------------------- *)

let load_delay_words =
  [ ld (Mem.Abs 5) 1;  (* r1 <- mem[5] = 42 *)
    mov (rr 1) 2;  (* delay slot: reads the STALE r1 (0) *)
    mov (rr 1) 3 ]  (* reads 42 *)
  @ halt

let test_load_delay_stale () =
  let cpu = run_halt ~data:[ (5, 42) ] load_delay_words in
  check_int "delay slot saw stale value" 0 (Cpu.get_reg cpu (Reg.r 2));
  check_int "next word saw loaded value" 42 (Cpu.get_reg cpu (Reg.r 3))

let test_load_delay_interlocked () =
  let cpu =
    run_halt ~config:Cpu.interlocked_config ~data:[ (5, 42) ] load_delay_words
  in
  check_int "interlock hides the delay" 42 (Cpu.get_reg cpu (Reg.r 2));
  check "stall charged" true ((Cpu.stats cpu).Stats.stall_cycles >= 1)

let test_back_to_back_loads_same_reg () =
  let cpu =
    run_halt
      ~data:[ (5, 11); (6, 22) ]
      ([ ld (Mem.Abs 5) 1; ld (Mem.Abs 6) 1; mov (rr 1) 2; mov (rr 1) 3 ] @ halt)
  in
  check_int "first load visible after one slot" 11 (Cpu.get_reg cpu (Reg.r 2));
  check_int "second load visible after" 22 (Cpu.get_reg cpu (Reg.r 3))

(* --- branch delay ------------------------------------------------------- *)

let test_branch_delay_slot_executes () =
  let cpu =
    run_halt
      [ movi8 1 1;
        jmp 4;  (* to the halt sequence *)
        movi8 2 2;  (* delay slot: executes *)
        movi8 3 3;  (* skipped *)
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "delay slot ran" 2 (Cpu.get_reg cpu (Reg.r 2));
  check_int "post-slot word skipped" 0 (Cpu.get_reg cpu (Reg.r 3))

let test_branch_delay_interlocked () =
  let cpu =
    let words =
      [ movi8 1 1; jmp 4; movi8 2 2; movi8 3 3; movi8 0 10; trap Monitor.exit_ ]
    in
    run_halt ~config:Cpu.interlocked_config words
  in
  check_int "delay slot squashed" 0 (Cpu.get_reg cpu (Reg.r 2));
  check_int "one stall" 1 (Cpu.stats cpu).Stats.stall_cycles

let test_indirect_jump_two_slots () =
  let cpu =
    run_halt
      [ movi8 6 1;
        Word.B (Branch.Jind (Reg.r 1));
        movi8 2 2;  (* slot 1: executes *)
        movi8 3 3;  (* slot 2: executes *)
        movi8 4 4;  (* skipped *)
        movi8 5 5;  (* skipped *)
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "slot1" 2 (Cpu.get_reg cpu (Reg.r 2));
  check_int "slot2" 3 (Cpu.get_reg cpu (Reg.r 3));
  check_int "skipped a" 0 (Cpu.get_reg cpu (Reg.r 4));
  check_int "skipped b" 0 (Cpu.get_reg cpu (Reg.r 5))

let test_cbr_taken_and_not () =
  let cpu =
    run_halt
      [ movi8 5 1;
        Word.B (Branch.Cbr (Cond.Eq, rr 1, i4 5, 4));  (* taken *)
        movi8 1 2;  (* delay slot *)
        movi8 9 3;  (* skipped *)
        Word.B (Branch.Cbr (Cond.Lt, rr 1, i4 2, 0));  (* not taken *)
        movi8 7 4;  (* delay slot (executes either way) *)
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "taken delay slot" 1 (Cpu.get_reg cpu (Reg.r 2));
  check_int "skipped" 0 (Cpu.get_reg cpu (Reg.r 3));
  check_int "fallthrough" 7 (Cpu.get_reg cpu (Reg.r 4))

let test_jal_link_value () =
  let cpu =
    run_halt
      [ Word.B (Branch.Jal (3, Reg.link));  (* at 0: link = 2 *)
        Word.Nop;  (* delay slot at 1 *)
        jmp 5;  (* return lands at 2 *)
        mov (Operand.reg Reg.link) 1;  (* callee at 3: r1 <- 2 *)
        Word.B (Branch.Jind Reg.link);
        Word.Nop;
        Word.Nop;
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "link register" 2 (Cpu.get_reg cpu (Reg.r 1))

(* Return via jind lr: two slots execute after the jind, then control is at
   the link address.  The jmp at 2 (with its own delay slot) reaches halt. *)

(* --- packed-word semantics ---------------------------------------------- *)

let test_packed_parallel_read () =
  (* AM word: the ALU piece uses r1's OLD value while the load replaces it. *)
  let w = Word.AM (Alu.Binop (Alu.Add, rr 1, i4 1, Reg.r 2), Mem.Load (Mem.W32, Mem.Disp (Reg.r 3, 5), Reg.r 1)) in
  let cpu = run_halt ~data:[ (5, 99) ] ([ movi8 10 1; w; Word.Nop; mov (rr 1) 4 ] @ halt) in
  check_int "alu saw old r1" 11 (Cpu.get_reg cpu (Reg.r 2));
  check_int "load landed" 99 (Cpu.get_reg cpu (Reg.r 4))

let test_packed_ab_branch_compares_old () =
  (* AB word: the compare reads r1's pre-word value even though the ALU piece
     overwrites it. *)
  let w =
    Word.AB
      ( Alu.Movi8 (0, Reg.r 1),
        Branch.Cbr (Cond.Eq, rr 1, i4 5, 4) )
  in
  let cpu =
    run_halt
      [ movi8 5 1; w; Word.Nop; movi8 9 3; movi8 0 10; trap Monitor.exit_ ]
  in
  check_int "branch taken on old value; r3 skipped" 0 (Cpu.get_reg cpu (Reg.r 3));
  check_int "alu write committed" 0 (Cpu.get_reg cpu (Reg.r 1))

(* --- byte support ------------------------------------------------------- *)

let test_xbyte_ibyte () =
  let cpu =
    run_halt
      ~data:[ (8, 0x44332211) ]
      ([ ld (Mem.Abs 8) 1;
         Word.Nop;
         mov (i4 2) 2;  (* byte pointer: lane 2 *)
         Word.A (Alu.Xbyte (rr 2, rr 1, Reg.r 3));  (* r3 <- 0x33 *)
         Word.A (Alu.Wr_special (Alu.Byte_select, i4 1));
         movi8 0xAB 4;
         Word.A (Alu.Ibyte (rr 4, Reg.r 1));  (* lane 1 of r1 <- 0xAB *)
         st 1 (Mem.Abs 9) ]
      @ halt)
  in
  check_int "extracted byte" 0x33 (Cpu.get_reg cpu (Reg.r 3));
  check_int "inserted byte" 0x4433AB11 (Cpu.read_data cpu 9)

let test_w8_illegal_on_word_machine () =
  let cpu = fresh [ Word.M (Mem.Load (Mem.W8, Mem.Abs 0, Reg.r 1)) ] in
  let res = Hosted.run cpu in
  check "aborted" true (res.Hosted.fault <> None);
  (match res.Hosted.fault with
  | Some (Cause.Illegal, _) -> ()
  | _ -> Alcotest.fail "expected Illegal");
  check_int "counted" 1 (Stats.exception_count (Cpu.stats cpu) Cause.Illegal)

let test_byte_machine_native_bytes () =
  (* On the byte-addressed machine, addresses are byte addresses. *)
  let cpu =
    run_halt ~config:Cpu.byte_addressed_config
      ~data:[ (2, 0x00C0FFEE) ]  (* word index 2 = byte address 8 *)
      ([ Word.M (Mem.Load (Mem.W8, Mem.Abs 9, Reg.r 1));  (* byte 1: 0xFF *)
         Word.Nop;
         movi8 0x5A 2;
         Word.M (Mem.Store (Mem.W8, Reg.r 2, Mem.Abs 10));
         Word.M (Mem.Load (Mem.W32, Mem.Abs 8, Reg.r 3));
         Word.Nop;
         mov (rr 3) 4 ]
      @ halt)
  in
  check_int "byte load" 0xFF (Cpu.get_reg cpu (Reg.r 1));
  check_int "byte store merged" 0x005AFFEE (Cpu.get_reg cpu (Reg.r 4))

let test_byte_machine_weighted_cycles () =
  let cpu =
    run_halt ~config:Cpu.byte_addressed_config
      ([ Word.M (Mem.Load (Mem.W32, Mem.Abs 0, Reg.r 1)); Word.Nop ] @ halt)
  in
  let s = Cpu.stats cpu in
  check "weighted > cycles" true (Stats.weighted_cycles s > float_of_int s.Stats.cycles -. 0.001 +. 0.1)

let test_misaligned_word_on_byte_machine () =
  let cpu =
    fresh ~config:Cpu.byte_addressed_config
      [ Word.M (Mem.Load (Mem.W32, Mem.Abs 2, Reg.r 1)) ]
  in
  let res = Hosted.run cpu in
  match res.Hosted.fault with
  | Some (Cause.Illegal, _) -> ()
  | _ -> Alcotest.fail "expected alignment fault"

(* --- exceptions --------------------------------------------------------- *)

let test_trap_resumes_after () =
  let cpu =
    run_halt
      [ movi8 65 10;  (* 'A' *)
        trap Monitor.putchar;
        movi8 1 1;  (* must execute after resume *)
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "resumed after trap" 1 (Cpu.get_reg cpu (Reg.r 1))

let test_hosted_output () =
  let words =
    [ movi8 72 10; trap Monitor.putchar;  (* H *)
      movi8 105 10; trap Monitor.putchar;  (* i *)
      movi8 33 10; trap Monitor.putint;  (* 33 *)
      movi8 7 10; trap Monitor.exit_ ]
  in
  let res = Hosted.run_program (prog words) in
  Alcotest.(check string) "output" "Hi33" res.Hosted.output;
  Alcotest.(check (option int)) "status" (Some 7) res.Hosted.exit_status

let test_getchar () =
  let words =
    [ trap Monitor.getchar;
      mov (Operand.reg Reg.result) 10;
      trap Monitor.putchar;
      trap Monitor.getchar;
      mov (Operand.reg Reg.result) 1;  (* EOF -> 255 *)
      movi8 0 10;
      trap Monitor.exit_ ]
  in
  let res = Hosted.run_program ~input:"x" (prog words) in
  Alcotest.(check string) "echo" "x" res.Hosted.output

let test_overflow_trap_enabled () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu
    (prog
       [ Word.M (Mem.Limm (0x7FFFFFFF, Reg.r 1));
         add (rr 1) (i4 1) 2;
         movi8 0 10;
         trap Monitor.exit_ ]);
  Cpu.set_surprise cpu { (Cpu.surprise cpu) with Surprise.ovf_enable = true };
  let res = Hosted.run cpu in
  (match res.Hosted.fault with
  | Some (Cause.Overflow, _) -> ()
  | _ -> Alcotest.fail "expected overflow abort");
  check_int "r2 write inhibited" 0 (Cpu.get_reg cpu (Reg.r 2))

let test_overflow_silent_when_disabled () =
  let cpu =
    run_halt
      [ Word.M (Mem.Limm (0x7FFFFFFF, Reg.r 1));
        add (rr 1) (i4 1) 2;
        movi8 0 10;
        trap Monitor.exit_ ]
  in
  check_int "wrapped" (-0x80000000) (Cpu.get_reg cpu (Reg.r 2))

let test_privilege_fault () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu
    (prog [ Word.A (Alu.Wr_special (Alu.Surprise, i4 0)); Word.Nop ]);
  (* drop to user mode, keep mapping off: memory refs fault too, but the
     first fault must be the privileged instruction *)
  Cpu.set_surprise cpu Surprise.user_initial;
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Privilege -> ()
  | _ -> Alcotest.fail "expected privilege dispatch");
  check "back in kernel" true
    (Surprise.equal_privilege (Cpu.surprise cpu).Surprise.priv Surprise.Kernel)

let test_dispatch_saves_epcs_and_cause () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (prog [ Word.Nop; Word.Nop; trap 99; Word.Nop; Word.Nop ]);
  ignore (Cpu.step cpu);
  ignore (Cpu.step cpu);
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Trap -> ()
  | _ -> Alcotest.fail "expected trap dispatch");
  check_int "cause detail" 99 (Cpu.surprise cpu).Surprise.cause_detail;
  check_int "epc0 resumes after trap" 3 (Cpu.epc cpu 0);
  check_int "pc is 0" 0 (Cpu.pc cpu);
  check "kernel mode" true
    (Surprise.equal_privilege (Cpu.surprise cpu).Surprise.priv Surprise.Kernel);
  check "interrupts masked" true (not (Cpu.surprise cpu).Surprise.int_enable)

let test_interrupt_line () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (prog ([ movi8 1 1; movi8 2 2 ] @ halt));
  Cpu.set_surprise cpu { (Cpu.surprise cpu) with Surprise.int_enable = true };
  ignore (Cpu.step cpu);
  Cpu.set_interrupt cpu true;
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Interrupt -> ()
  | _ -> Alcotest.fail "expected interrupt dispatch");
  check_int "epc0 = interrupted pc" 1 (Cpu.epc cpu 0);
  (* the interrupted instruction did not execute *)
  check_int "r2 untouched" 0 (Cpu.get_reg cpu (Reg.r 2));
  (* return from exception and finish *)
  Cpu.set_interrupt cpu false;
  Cpu.set_surprise cpu (Surprise.pop (Cpu.surprise cpu));
  Cpu.set_pc_chain cpu (Cpu.epc cpu 0, Cpu.epc cpu 1, Cpu.epc cpu 2);
  let res = Hosted.run cpu in
  check "finished" true res.Hosted.halted;
  check_int "r2 executed on resume" 2 (Cpu.get_reg cpu (Reg.r 2))

let test_fault_in_delay_slot_restarts () =
  (* a fault in a branch's delay slot: the three-deep chain must capture
     (slot, target, target+1) so the branch decision survives the exception *)
  let cpu = Cpu.create () in
  Cpu.load_program cpu
    (prog
       ([ Word.M (Mem.Limm (0x7FFFFFFF, Reg.r 1));
          jmp 4;
          add (rr 1) (i4 1) 2;  (* delay slot: overflows *)
          movi8 9 9 ]           (* fall-through word the branch skips *)
        @ halt));
  Cpu.set_surprise cpu { (Cpu.surprise cpu) with Surprise.ovf_enable = true };
  ignore (Cpu.step cpu);
  ignore (Cpu.step cpu);
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Overflow -> ()
  | _ -> Alcotest.fail "expected an overflow in the delay slot");
  check_int "epc0 = delay slot" 2 (Cpu.epc cpu 0);
  check_int "epc1 = branch target" 4 (Cpu.epc cpu 1);
  check_int "epc2 = target + 1" 5 (Cpu.epc cpu 2);
  check_int "dispatch through physical 0" 0 (Cpu.pc cpu);
  check "write inhibited" true (Cpu.get_reg cpu (Reg.r 2) = 0);
  (* handler: repair the operand and return through the saved chain *)
  Cpu.set_reg cpu (Reg.r 1) 5;
  Cpu.set_surprise cpu (Surprise.pop (Cpu.surprise cpu));
  Cpu.set_pc_chain cpu (Cpu.epc cpu 0, Cpu.epc cpu 1, Cpu.epc cpu 2);
  let res = Hosted.run cpu in
  check "finished" true (res.Hosted.halted && res.Hosted.fault = None);
  check_int "slot re-executed exactly once" 6 (Cpu.get_reg cpu (Reg.r 2));
  check_int "skipped word stays skipped" 0 (Cpu.get_reg cpu (Reg.r 9))

let test_double_fault_overwrites_chain () =
  (* a second fault during handler entry reuses the EPC chain and the
     surprise register — the first exception's state survives only if the
     kernel saved it, and restoring that saved state round-trips exactly *)
  let cpu = Cpu.create () in
  Cpu.load_program cpu
    (prog
       ([ Word.A (Alu.Binop (Alu.Div, rr 1, rr 0, Reg.r 3));
          (* handler entry: r0 = 0, so this faults unconditionally *)
          Word.Nop;
          Word.Nop;
          trap 42 ]
        @ halt));
  Cpu.set_pc cpu 3;
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Trap -> ()
  | _ -> Alcotest.fail "expected trap dispatch");
  let sr1 = Cpu.surprise cpu in
  let saved_sr = Surprise.to_word sr1 in
  let saved_epcs = (Cpu.epc cpu 0, Cpu.epc cpu 1, Cpu.epc cpu 2) in
  check_int "epc0 past the trap" 4 (Cpu.epc cpu 0);
  check_int "trap code in cause detail" 42 sr1.Surprise.cause_detail;
  (* the handler's first instruction faults before anything was saved *)
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Overflow -> ()
  | _ -> Alcotest.fail "expected the handler-entry fault");
  check_int "epc0 overwritten" 0 (Cpu.epc cpu 0);
  check_int "epc1 overwritten" 1 (Cpu.epc cpu 1);
  check_int "epc2 overwritten" 2 (Cpu.epc cpu 2);
  check_int "dispatched through 0 again" 0 (Cpu.pc cpu);
  let sr2 = Cpu.surprise cpu in
  check "cause is the second fault" true (sr2.Surprise.cause = Cause.Overflow);
  check "pushed from kernel mode" true
    (Surprise.equal_privilege sr2.Surprise.prev_priv Surprise.Kernel);
  (* a kernel that saved the first exception's state can still unwind it *)
  Cpu.set_surprise cpu (Surprise.of_word saved_sr);
  check "surprise word round-trips exactly" true
    (Surprise.equal (Cpu.surprise cpu) sr1);
  Cpu.set_pc_chain cpu saved_epcs;
  let res = Hosted.run cpu in
  check "resumed past the first trap" true
    (res.Hosted.halted && res.Hosted.fault = None);
  check "clean exit" true (res.Hosted.exit_status = Some 0)

(* --- paging ------------------------------------------------------------- *)

let map_identity cpu ~pages =
  for vp = 0 to pages - 1 do
    Pagemap.map (Cpu.pagemap cpu) Pagemap.Ispace ~vpage:vp ~frame:vp ~writable:false;
    Pagemap.map (Cpu.pagemap cpu) Pagemap.Dspace ~vpage:vp ~frame:vp ~writable:true
  done

let test_page_fault_and_restart () =
  let target = Pagemap.page_words + 7 in
  let cpu = Cpu.create () in
  Cpu.load_program cpu
    (prog
       ([ Word.M (Mem.Limm (target, Reg.r 1));
          Word.AM
            ( Alu.Binop (Alu.Add, i4 1, i4 2, Reg.r 4),
              Mem.Load (Mem.W32, Mem.Disp (Reg.r 1, 0), Reg.r 2) );
          Word.Nop;
          mov (rr 2) 3 ]
       @ halt));
  Cpu.write_data cpu target 77;
  (* user-style setup: mapping on, but data page 1 missing *)
  map_identity cpu ~pages:1;
  Cpu.set_surprise cpu { Surprise.user_initial with Surprise.map_enable = true };
  let faults = ref 0 in
  let handler c cause =
    match cause with
    | Cause.Trap -> `Halt
    | Cause.Page_fault ->
        incr faults;
        (* the faulting word's ALU piece must not have committed *)
        check_int "alu write inhibited" 0 (Cpu.get_reg c (Reg.r 4));
        (match Cpu.faulted_addr c with
        | Some (Pagemap.Dspace, ga) ->
            Pagemap.map (Cpu.pagemap c) Pagemap.Dspace
              ~vpage:(ga / Pagemap.page_words)
              ~frame:(ga / Pagemap.page_words)
              ~writable:true
        | _ -> Alcotest.fail "expected a data-space fault address");
        `Resume
    | _ -> Alcotest.fail "unexpected cause"
  in
  check "ran to halt" true (Cpu.run cpu handler);
  check_int "one fault" 1 !faults;
  check_int "loaded after restart" 77 (Cpu.get_reg cpu (Reg.r 3));
  check_int "alu committed on restart" 3 (Cpu.get_reg cpu (Reg.r 4))

let test_ispace_page_fault () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (prog (halt @ halt));
  map_identity cpu ~pages:0;
  Cpu.set_surprise cpu { Surprise.user_initial with Surprise.map_enable = true };
  (match Cpu.step cpu with
  | Cpu.Dispatched Cause.Page_fault -> ()
  | _ -> Alcotest.fail "expected ifetch fault");
  match Cpu.faulted_addr cpu with
  | Some (Pagemap.Ispace, 0) -> ()
  | _ -> Alcotest.fail "expected ispace address 0"

(* --- segmentation ------------------------------------------------------- *)

let test_segmap_two_halves () =
  let seg = Segmap.make ~pid:3 ~mask_bits:8 in
  let size = Segmap.segment_words seg in
  check_int "segment words" (1 lsl 16) size;
  check_int "low half maps to pid base" (3 * size) (Segmap.translate seg 0);
  check_int "top of low half" ((3 * size) + (size / 2) - 1)
    (Segmap.translate seg ((size / 2) - 1));
  let top = (1 lsl 24) - 1 in
  check_int "top half maps to segment end" ((3 * size) + size - 1)
    (Segmap.translate seg top);
  check "middle invalid" true (not (Segmap.valid seg (size / 2)));
  check "just below top valid" true (Segmap.valid seg (top - (size / 2) + 1))

let prop_segmap_disjoint_pids =
  QCheck2.Test.make ~name:"segmap: distinct pids get disjoint global ranges"
    ~count:500
    QCheck2.Gen.(triple (int_range 0 255) (int_range 0 255) (int_range 0 ((1 lsl 16) - 1)))
    (fun (pid1, pid2, addr) ->
      let seg1 = Segmap.make ~pid:pid1 ~mask_bits:8 in
      let seg2 = Segmap.make ~pid:pid2 ~mask_bits:8 in
      let a = addr mod (Segmap.segment_words seg1 / 2) in
      pid1 = pid2 || Segmap.translate seg1 a <> Segmap.translate seg2 a)

let prop_surprise_roundtrip =
  let open QCheck2.Gen in
  let sr_gen =
    let priv = map (fun b -> if b then Surprise.Kernel else Surprise.User) bool in
    let cause = oneofl Cause.[ Reset; Interrupt; Overflow; Page_fault; Privilege; Trap; Illegal ] in
    map
      (fun ((p, pp', i, pi), (o, m, pm, c, d)) ->
        {
          Surprise.priv = p;
          prev_priv = pp';
          int_enable = i;
          prev_int_enable = pi;
          ovf_enable = o;
          map_enable = m;
          prev_map_enable = pm;
          cause = c;
          cause_detail = d;
        })
      (pair (quad priv priv bool bool) (tup5 bool bool bool cause (int_range 0 4095)))
  in
  QCheck2.Test.make ~name:"surprise: word roundtrip" ~count:500 sr_gen (fun sr ->
      Surprise.equal sr (Surprise.of_word (Surprise.to_word sr)))

let test_segmap_word_roundtrip () =
  let seg = Segmap.make ~pid:5 ~mask_bits:4 in
  check "roundtrip" true (Segmap.equal seg (Segmap.of_word (Segmap.to_word seg)))

(* --- statistics --------------------------------------------------------- *)

let test_free_cycles () =
  let cpu =
    run_halt ~data:[ (0, 1) ]
      [ ld (Mem.Abs 0) 1; Word.Nop; Word.Nop; Word.Nop; movi8 0 10; trap Monitor.exit_ ]
  in
  let s = Cpu.stats cpu in
  check_int "one busy slot" 1 s.Stats.mem_busy_cycles;
  check "mostly free" true (Stats.free_cycle_fraction s > 0.5)

let test_ref_pattern_counting () =
  let note = Note.make ~char_data:true ~byte_sized:false () in
  let cpu = Cpu.create () in
  let p =
    Program.make
      ~notes:[| note; Note.plain; Note.plain; Note.plain |]
      [| ld (Mem.Abs 0) 1; st 1 (Mem.Abs 1); movi8 0 10; trap Monitor.exit_ |]
  in
  Cpu.load_program cpu p;
  let res = Hosted.run cpu in
  check "ok" true res.Hosted.halted;
  let s = Cpu.stats cpu in
  check_int "char word load" 1 s.Stats.word_char_refs.Stats.loads;
  check_int "plain word store" 1 s.Stats.word_refs.Stats.stores;
  check_int "loads" 1 (Stats.total_loads s);
  check_int "stores" 1 (Stats.total_stores s)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
let tc n f = Alcotest.test_case n `Quick f

let suite =
  [ ( "machine:exec",
      [ tc "alu basics" test_alu_basics;
        tc "rsub negative constants" test_rsub_negative_constant;
        tc "set conditionally" test_setc;
        tc "limm commits immediately" test_limm_immediate_commit ] );
    ( "machine:load-delay",
      [ tc "stale value in delay slot" test_load_delay_stale;
        tc "interlock mode hides delay" test_load_delay_interlocked;
        tc "back-to-back loads" test_back_to_back_loads_same_reg ] );
    ( "machine:branch-delay",
      [ tc "delay slot executes" test_branch_delay_slot_executes;
        tc "interlock squashes slot" test_branch_delay_interlocked;
        tc "indirect jump: two slots" test_indirect_jump_two_slots;
        tc "cbr taken / not taken" test_cbr_taken_and_not;
        tc "jal link value" test_jal_link_value ] );
    ( "machine:packing",
      [ tc "AM parallel read" test_packed_parallel_read;
        tc "AB compares pre-state" test_packed_ab_branch_compares_old ] );
    ( "machine:bytes",
      [ tc "xbyte/ibyte" test_xbyte_ibyte;
        tc "W8 illegal on word machine" test_w8_illegal_on_word_machine;
        tc "byte machine native bytes" test_byte_machine_native_bytes;
        tc "byte machine overhead" test_byte_machine_weighted_cycles;
        tc "alignment fault" test_misaligned_word_on_byte_machine ] );
    ( "machine:exceptions",
      [ tc "trap resumes after" test_trap_resumes_after;
        tc "hosted output" test_hosted_output;
        tc "getchar" test_getchar;
        tc "overflow trap" test_overflow_trap_enabled;
        tc "overflow silent when disabled" test_overflow_silent_when_disabled;
        tc "privilege fault" test_privilege_fault;
        tc "dispatch saves state" test_dispatch_saves_epcs_and_cause;
        tc "interrupt line" test_interrupt_line;
        tc "fault in a delay slot restarts" test_fault_in_delay_slot_restarts;
        tc "double fault overwrites the chain" test_double_fault_overwrites_chain ] );
    ( "machine:paging",
      [ tc "page fault and restart" test_page_fault_and_restart;
        tc "ifetch fault" test_ispace_page_fault ] );
    ( "machine:segmentation",
      [ tc "two halves" test_segmap_two_halves;
        tc "segmap word roundtrip" test_segmap_word_roundtrip ]
      @ qsuite [ prop_segmap_disjoint_pids; prop_surprise_roundtrip ] );
    ( "machine:stats",
      [ tc "free cycles" test_free_cycles; tc "ref patterns" test_ref_pattern_counting ] ) ]
