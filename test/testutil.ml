(* Shared helpers for the test suites — the per-file boilerplate
   (bool/int checks, QCheck-to-alcotest adaptation, test-case wrapping)
   lives here once. *)

(* The jit engine's runner is process-global (Cpu.set_jit_runner):
   installed once here so every suite can select Cpu.Jit. *)
let () = Mips_jit.install ()

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
