(* Tests for the OS layer: demand paging, scheduling, context switches,
   protection. *)

open Mips_isa
open Mips_machine
open Mips_os

open Testutil
let check_str = Alcotest.(check string)

(* compile for the OS: the stack lives in the high half of the process
   address space *)
let os_config =
  { Mips_ir.Config.default with Mips_ir.Config.stack_top = Kernel.user_stack_top }

let compile_user src = Mips_codegen.Compile.compile ~config:os_config src

let hosted_output name =
  let e = Mips_corpus.Corpus.find name in
  let res =
    Mips_codegen.Compile.run ~fuel:120_000_000 ~input:e.Mips_corpus.Corpus.input
      e.Mips_corpus.Corpus.source
  in
  res.Hosted.output

let spawn_corpus k name =
  let e = Mips_corpus.Corpus.find name in
  Kernel.spawn k ~input:e.Mips_corpus.Corpus.input ~name
    (compile_user e.Mips_corpus.Corpus.source)

let find_proc (r : Kernel.report) name =
  List.find (fun (p : Kernel.proc_report) -> String.equal p.Kernel.pname name)
    r.Kernel.procs

let test_two_processes () =
  let k = Kernel.create ~quantum:500 () in
  spawn_corpus k "fib";
  spawn_corpus k "sieve";
  let r = Kernel.run k in
  let fib = find_proc r "fib" and sieve = find_proc r "sieve" in
  check_str "fib output" (hosted_output "fib") fib.Kernel.output;
  check_str "sieve output" (hosted_output "sieve") sieve.Kernel.output;
  Alcotest.(check (option int)) "fib exit" (Some 0) fib.Kernel.exit_status;
  check "interleaved" true (r.Kernel.switches > 2);
  check "timer fired" true (r.Kernel.interrupts > 0);
  check "pages faulted in" true (r.Kernel.page_faults > 0);
  check_int "switches never touch the map" 0 r.Kernel.map_changes_during_switches

let test_eviction_pressure () =
  (* sieve's flags array spans multiple pages; starve the data pool *)
  let k = Kernel.create ~data_frames:2 ~code_frames:2 ~quantum:1000 () in
  spawn_corpus k "sieve";
  spawn_corpus k "strops";
  let r = Kernel.run k in
  check_str "sieve survives thrashing" (hosted_output "sieve")
    (find_proc r "sieve").Kernel.output;
  check_str "strops survives thrashing" (hosted_output "strops")
    (find_proc r "strops").Kernel.output;
  check "evictions happened" true (r.Kernel.evictions > 0)

let test_segment_violation_kills () =
  (* hand-built program that dereferences an address between the two valid
     segment regions *)
  let asm =
    Mips_reorg.Asm.make ~entry:"main"
      [ Mips_reorg.Asm.label "main";
        Mips_reorg.Asm.ins (Piece.Mem (Mem.Limm (40000, Reg.r 1)));
        Mips_reorg.Asm.ins
          (Piece.Mem (Mem.Load (Mem.W32, Mem.Disp (Reg.r 1, 0), Reg.r 2)));
        Mips_reorg.Asm.ins (Piece.Alu (Alu.Mov (Operand.imm4 0, Reg.scratch0)));
        Mips_reorg.Asm.ins (Piece.Branch (Branch.Trap Monitor.exit_)) ]
  in
  let k = Kernel.create () in
  Kernel.spawn k ~name:"wild" (Mips_reorg.Pipeline.compile asm);
  let r = Kernel.run k in
  let p = find_proc r "wild" in
  (match p.Kernel.killed with
  | Some (Kernel.Arch_fault (Cause.Page_fault, _)) -> ()
  | _ -> Alcotest.fail "expected the wild process to be killed");
  Alcotest.(check (option int)) "no exit status" None p.Kernel.exit_status

let test_yield_round_robin () =
  let src which =
    Printf.sprintf
      "program p%d; var i : integer; begin for i := 1 to 3 do begin write(%d); \
       yield end; writeln end."
      which which
  in
  (* yield is not part of the source language; approximate with tiny quantum
     instead *)
  ignore src;
  let k = Kernel.create ~quantum:60 () in
  spawn_corpus k "hanoi";
  spawn_corpus k "ackermann";
  let r = Kernel.run k in
  check_str "hanoi" (hosted_output "hanoi") (find_proc r "hanoi").Kernel.output;
  check_str "ackermann" (hosted_output "ackermann")
    (find_proc r "ackermann").Kernel.output;
  check "many switches with tiny quantum" true (r.Kernel.switches > 50)

let test_kernel_cost_accounting () =
  let k = Kernel.create ~quantum:200 () in
  spawn_corpus k "fib";
  let r = Kernel.run k in
  check_int "switch cost model" 40 r.Kernel.switch_cycle_cost;
  check "kernel cycles accounted" true
    (r.Kernel.kernel_cycles
    >= (r.Kernel.switches * r.Kernel.switch_cycle_cost));
  check "total includes kernel" true (r.Kernel.total_cycles > r.Kernel.kernel_cycles)

let tc n f = Alcotest.test_case n `Quick f

let suite =
  [ ( "os:kernel",
      [ tc "two processes, demand paged" test_two_processes;
        tc "eviction under pressure" test_eviction_pressure;
        tc "segment violation kills" test_segment_violation_kills;
        tc "tiny quantum round robin" test_yield_round_robin;
        tc "kernel cost accounting" test_kernel_cost_accounting ] ) ]
