(* Tests for the reorganizer: scheduling, packing, branch-delay schemes, and
   semantic equivalence of all optimization levels on the simulator. *)

open Mips_isa
open Mips_machine
open Mips_reorg

open Testutil
let rr i = Operand.reg (Reg.r i)
let i4 = Operand.imm4

(* terse Asm line builders *)
let a x = Asm.ins (Piece.Alu x)
let m x = Asm.ins (Piece.Mem x)
let b x = Asm.ins (Piece.Branch x)
let lbl = Asm.label
let movi8 c d = a (Alu.Movi8 (c, Reg.r d))
let add x y d = a (Alu.Binop (Alu.Add, x, y, Reg.r d))
let ld addr d = m (Mem.Load (Mem.W32, addr, Reg.r d))
let st s addr = m (Mem.Store (Mem.W32, Reg.r s, addr))
let trap c = b (Branch.Trap c)
let halt = [ movi8 0 10; trap Monitor.exit_ ]

let compile_all prog =
  List.map (fun l -> (l, Pipeline.compile ~level:l prog)) Pipeline.all_levels

let run p = Hosted.run_program p

let machine_state p =
  let cpu = Cpu.create () in
  Cpu.load_program cpu p;
  let res = Hosted.run cpu in
  check "halted" true res.Hosted.halted;
  check "no fault" true (res.Hosted.fault = None);
  ( List.map (fun r -> Cpu.get_reg cpu (Reg.r r)) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ],
    List.init 16 (Cpu.read_data cpu),
    res.Hosted.output )

let assert_equivalent prog =
  let compiled = compile_all prog in
  let reference = machine_state (List.assoc Pipeline.Naive compiled) in
  List.iter
    (fun (level, p) ->
      let state = machine_state p in
      if state <> reference then
        Alcotest.failf "level %s diverges from naive" (Pipeline.level_name level);
      let residual = Assemble.verify_hazard_free p in
      if residual <> [] then
        Alcotest.failf "level %s leaves %d straight-line hazards"
          (Pipeline.level_name level) (List.length residual))
    compiled

(* --- unit: block partitioning ------------------------------------------- *)

let test_partition () =
  let lines =
    [ lbl "main"; movi8 1 0; b (Branch.Jump "l2"); lbl "l2"; movi8 2 1 ] @ halt
  in
  let blocks = Block.partition lines in
  check_int "two blocks" 2 (List.length blocks);
  (match blocks with
  | [ b1; b2 ] ->
      check "b1 label" true (b1.Block.labels = [ "main" ]);
      check "b1 has term" true (b1.Block.term <> None);
      check "b2 label" true (b2.Block.labels = [ "l2" ]);
      check_int "b2 body" 2 (List.length b2.Block.body);
      check "b2 trap-terminated" true (b2.Block.term <> None)
  | _ -> Alcotest.fail "partition shape");
  (* flatten inverts *)
  let lines' = Block.flatten blocks in
  check_int "flatten preserves length" (List.length lines) (List.length lines')

(* --- unit: dag latencies ------------------------------------------------- *)

let item p = { Asm.piece = p; note = Note.plain; fixed = false }

let test_dag_latencies () =
  let load = item (Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 0, Reg.r 1))) in
  let use = item (Piece.Alu (Alu.Mov (rr 1, Reg.r 2))) in
  let alu = item (Piece.Alu (Alu.Movi8 (5, Reg.r 3))) in
  let war = item (Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 1, Reg.r 4))) in
  let reads_r4 = item (Piece.Alu (Alu.Mov (rr 4, Reg.r 5))) in
  Alcotest.(check (option int)) "load->use = 2" (Some 2) (Dag.latency load use);
  Alcotest.(check (option int)) "alu->use independent" None (Dag.latency alu use);
  Alcotest.(check (option int)) "war = 0" (Some 0) (Dag.latency reads_r4 war);
  let alu_raw = item (Piece.Alu (Alu.Binop (Alu.Add, rr 3, i4 1, Reg.r 6))) in
  Alcotest.(check (option int)) "alu raw = 1" (Some 1) (Dag.latency alu alu_raw);
  let st1 = item (Piece.Mem (Mem.Store (Mem.W32, Reg.r 1, Mem.Disp (Reg.r 2, 0)))) in
  let ld2 = item (Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 3, Reg.r 5))) in
  Alcotest.(check (option int)) "aliasing mem = 1" (Some 1) (Dag.latency st1 ld2)

(* --- unit: naive no-op insertion ----------------------------------------- *)

let test_naive_inserts_noop () =
  let items =
    [ { Asm.piece = Piece.Mem (Mem.Load (Mem.W32, Mem.Abs 0, Reg.r 1)); note = Note.plain; fixed = false };
      { Asm.piece = Piece.Alu (Alu.Mov (rr 1, Reg.r 2)); note = Note.plain; fixed = false } ]
  in
  let words = Sched.naive items in
  check_int "noop inserted" 3 (List.length words);
  (match List.nth words 1 with
  | { Sblock.word = Word.Nop; _ } -> ()
  | _ -> Alcotest.fail "expected nop in slot 1");
  (* scheduling fills the slot with an independent instruction instead *)
  let items2 =
    items
    @ [ { Asm.piece = Piece.Alu (Alu.Movi8 (9, Reg.r 3)); note = Note.plain; fixed = false } ]
  in
  let scheduled = Sched.schedule ~pack:false items2 in
  check_int "no noop needed" 3 (List.length scheduled);
  check "no nops in schedule" true
    (List.for_all (fun w -> w.Sblock.word <> Word.Nop) scheduled)

let test_packing_merges () =
  let items =
    [ item (Piece.Alu (Alu.Movi8 (1, Reg.r 1)));
      item (Piece.Mem (Mem.Load (Mem.W32, Mem.Disp (Reg.r 6, 0), Reg.r 2))) ]
  in
  let packed = Sched.schedule ~pack:true items in
  check_int "packed into one word" 1 (List.length packed);
  match (List.hd packed).Sblock.word with
  | Word.AM _ -> ()
  | _ -> Alcotest.fail "expected AM word"

let test_fixed_not_packed () =
  let items =
    [ { Asm.piece = Piece.Alu (Alu.Movi8 (1, Reg.r 1)); note = Note.plain; fixed = true };
      { Asm.piece = Piece.Mem (Mem.Load (Mem.W32, Mem.Disp (Reg.r 6, 0), Reg.r 2)); note = Note.plain; fixed = false } ]
  in
  let packed = Sched.schedule ~pack:true items in
  check_int "fixed piece stays alone" 2 (List.length packed)

(* --- delay slot schemes --------------------------------------------------- *)

(* Scheme 1: the add before the jump can move into the delay slot. *)
let scheme1_prog =
  Asm.make ~entry:"main"
    ([ lbl "main"; movi8 3 0; add (rr 0) (i4 2) 1; b (Branch.Jump "out"); lbl "out" ]
    @ [ a (Alu.Mov (rr 1, Reg.r 2)) ]
    @ halt)

let test_scheme1 () =
  let _, stats = Pipeline.compile_with_stats ~level:Pipeline.Delay_filled scheme1_prog in
  match stats with
  | Some s -> check "scheme1 used" true (s.Delay.scheme1 >= 1)
  | None -> Alcotest.fail "expected delay stats"

(* Scheme 2: a backward unconditional loop jump duplicates the loop head. *)
let scheme2_prog =
  (* while true do r0++ until trap-exit via overflow of counter check *)
  Asm.make ~entry:"main"
    ([ lbl "main"; movi8 0 0; movi8 20 1; lbl "loop";
       add (rr 0) (i4 1) 0;
       b (Branch.Cbr (Cond.Ge, rr 0, rr 1, "done"));
       b (Branch.Jump "loop"); lbl "done" ]
    @ [ a (Alu.Mov (rr 0, Reg.scratch0)); trap Monitor.putint ]
    @ halt)

let test_scheme2 () =
  let p, stats = Pipeline.compile_with_stats ~level:Pipeline.Delay_filled scheme2_prog in
  (match stats with
  | Some s -> check "scheme2 used" true (s.Delay.scheme2 >= 1)
  | None -> Alcotest.fail "expected delay stats");
  let res = run p in
  Alcotest.(check string) "loop result" "20" res.Hosted.output

(* Scheme 3: conditional branch over a dead-on-taken-path computation. *)
let scheme3_prog =
  Asm.make ~entry:"main"
    ([ lbl "main"; movi8 5 0;
       b (Branch.Cbr (Cond.Eq, rr 0, i4 5, "skip"));
       (* fall-through work, r1 dead at "skip" because it is re-written *)
       add (rr 0) (i4 1) 1;
       add (rr 1) (i4 1) 1;
       lbl "skip"; movi8 9 1 ]
    @ [ a (Alu.Mov (rr 1, Reg.scratch0)); trap Monitor.putint ]
    @ halt)

let test_scheme3 () =
  let p, stats = Pipeline.compile_with_stats ~level:Pipeline.Delay_filled scheme3_prog in
  (match stats with
  | Some s -> check "scheme3 used" true (s.Delay.scheme3 >= 1)
  | None -> Alcotest.fail "expected delay stats");
  let res = run p in
  Alcotest.(check string) "result" "9" res.Hosted.output

(* --- integration: loops and calls at all levels --------------------------- *)

let sum_loop_prog =
  Asm.make ~entry:"main"
    ([ lbl "main"; movi8 0 0; movi8 1 1; movi8 10 2; lbl "loop";
       add (rr 0) (rr 1) 0;
       add (rr 1) (i4 1) 1;
       b (Branch.Cbr (Cond.Le, rr 1, rr 2, "loop"));
       a (Alu.Mov (rr 0, Reg.scratch0)); trap Monitor.putint ]
    @ halt)

let test_sum_loop_all_levels () =
  List.iter
    (fun (level, p) ->
      let res = run p in
      if res.Hosted.output <> "55" then
        Alcotest.failf "level %s: expected 55, got %s" (Pipeline.level_name level)
          res.Hosted.output)
    (compile_all sum_loop_prog)

let call_prog =
  Asm.make ~entry:"main"
    ([ lbl "main"; movi8 7 10;
       b (Branch.Jal ("double", Reg.link));
       a (Alu.Mov (Operand.reg Reg.result, Reg.scratch0));
       trap Monitor.putint ]
    @ halt
    @ [ lbl "double";
        a (Alu.Binop (Alu.Add, Operand.reg Reg.scratch0, Operand.reg Reg.scratch0, Reg.result));
        b (Branch.Jind Reg.link) ])

let test_call_all_levels () =
  List.iter
    (fun (level, p) ->
      let res = run p in
      if res.Hosted.output <> "14" then
        Alcotest.failf "level %s: expected 14, got %s" (Pipeline.level_name level)
          res.Hosted.output)
    (compile_all call_prog)

let test_static_counts_improve () =
  let counts =
    List.map (fun (_, p) -> Program.static_count p) (compile_all sum_loop_prog)
  in
  match counts with
  | [ naive; reorg; packed; delay ] ->
      check "reorg <= naive" true (reorg <= naive);
      check "packed <= reorg" true (packed <= reorg);
      check "delay <= packed" true (delay <= packed);
      check "delay < naive" true (delay < naive)
  | _ -> Alcotest.fail "level count"

(* --- assembler ------------------------------------------------------------ *)

let test_undefined_label () =
  let p = Asm.make ~entry:"main" [ lbl "main"; b (Branch.Jump "nowhere") ] in
  check "raises" true
    (try
       ignore (Pipeline.compile p);
       false
     with Assemble.Undefined_label "nowhere" -> true)

let test_cross_block_hazard_noop () =
  (* a fall-through block boundary with a load-use hazard across it *)
  let p =
    Asm.make ~entry:"main"
      ([ lbl "main"; ld (Mem.Abs 0) 1; lbl "next"; a (Alu.Mov (rr 1, Reg.r 2)) ]
      @ halt)
  in
  let img = Pipeline.compile ~level:Pipeline.Naive p in
  check "no residual hazards" true (Assemble.verify_hazard_free img = []);
  let res = Hosted.run_program img in
  check "clean run" true (res.Hosted.fault = None)

(* --- property: random straight-line programs are level-invariant ---------- *)

let gen_item : Asm.line QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg05 = map Reg.r (int_range 0 5) in
  let op05 = oneof [ map Operand.reg reg05; map Operand.imm4 (int_range 0 15) ] in
  let binop = oneofl Alu.[ Add; Sub; And; Or; Xor; Sll ] in
  oneof
    [ map (fun (op, x, y, d) -> a (Alu.Binop (op, x, y, d))) (quad binop op05 op05 reg05);
      map (fun (c, d) -> a (Alu.Movi8 (c, d))) (pair (int_range 0 255) reg05);
      map (fun (c, x, y, d) -> a (Alu.Setc (c, x, y, d)))
        (quad (oneofl Cond.[ Eq; Ne; Lt; Gtu ]) op05 op05 reg05);
      map (fun (x, w, d) -> a (Alu.Xbyte (x, w, d))) (triple op05 op05 reg05);
      map (fun (addr, d) -> ld (Mem.Abs addr) d) (pair (int_range 0 15) (int_range 0 5));
      map (fun (s, addr) -> st s (Mem.Abs addr)) (pair (int_range 0 5) (int_range 0 15));
      map (fun (d, off, dst) -> ld (Mem.Disp (Reg.r 6, off)) dst |> fun l -> ignore d; l)
        (triple unit (int_range 0 7) (int_range 0 5)) ]

let gen_straightline =
  let open QCheck2.Gen in
  let* n = int_range 1 25 in
  let* items = list_repeat n gen_item in
  return
    (Asm.make
       ~data:(List.init 16 (fun i -> (i, (i * 3) + 1)))
       ~data_words:16 ~entry:"main"
       ((lbl "main" :: movi8 4 6 :: items) @ halt))

let prop_levels_equivalent =
  QCheck2.Test.make ~name:"reorg: all levels semantically equivalent" ~count:300
    gen_straightline (fun prog ->
      let compiled = compile_all prog in
      let reference = machine_state (List.assoc Pipeline.Naive compiled) in
      List.for_all
        (fun (_, p) ->
          machine_state p = reference && Assemble.verify_hazard_free p = [])
        compiled)

let prop_interlock_agrees =
  QCheck2.Test.make ~name:"reorg: interlocked machine agrees on scheduled code"
    ~count:150 gen_straightline (fun prog ->
      let p = Pipeline.compile ~level:Pipeline.Delay_filled prog in
      let state cfg =
        let cpu = Cpu.create ~config:cfg () in
        Cpu.load_program cpu p;
        let res = Hosted.run cpu in
        assert res.Hosted.halted;
        ( List.map (fun r -> Cpu.get_reg cpu (Reg.r r)) [ 0; 1; 2; 3; 4; 5 ],
          List.init 16 (Cpu.read_data cpu) )
      in
      state Cpu.default_config = state Cpu.interlocked_config)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
let tc n f = Alcotest.test_case n `Quick f

let suite =
  [ ( "reorg:blocks",
      [ tc "partition/flatten" test_partition; tc "dag latencies" test_dag_latencies ] );
    ( "reorg:schedule",
      [ tc "naive inserts noop" test_naive_inserts_noop;
        tc "packing merges" test_packing_merges;
        tc "fixed never packed" test_fixed_not_packed ] );
    ( "reorg:delay",
      [ tc "scheme1: move before branch" test_scheme1;
        tc "scheme2: loop duplication" test_scheme2;
        tc "scheme3: fall-through move" test_scheme3 ] );
    ( "reorg:integration",
      [ tc "sum loop at all levels" test_sum_loop_all_levels;
        tc "call at all levels" test_call_all_levels;
        tc "static counts improve" test_static_counts_improve;
        tc "undefined label" test_undefined_label;
        tc "cross-block hazard" test_cross_block_hazard_noop ] );
    ("reorg:properties", qsuite [ prop_levels_equivalent; prop_interlock_agrees ]) ]
