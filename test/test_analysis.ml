(* Tests for the analysis layer: each experiment must reproduce the paper's
   qualitative result (who wins, direction of effects, rough magnitudes). *)

open Mips_analysis

open Testutil

(* --- Table 1 ------------------------------------------------------------- *)

let test_constants () =
  let d = Constants.of_corpus () in
  check "buckets sum to total" true
    (d.Constants.zero + d.Constants.one + d.Constants.two + d.Constants.three_to_15
     + d.Constants.sixteen_to_255 + d.Constants.above_255
    = d.Constants.total);
  check "plenty of constants" true (d.Constants.total > 500);
  let c4 = Constants.coverage_imm4 d and c8 = Constants.coverage_imm8 d in
  check "imm4 covers most constants (paper ~70%)" true (c4 > 0.55 && c4 < 0.98);
  check "imm8 catches all but a few percent (paper ~95%)" true (c8 > 0.9);
  check "imm8 >= imm4" true (c8 >= c4);
  check "small constants dominate" true
    (d.Constants.zero + d.Constants.one + d.Constants.two > d.Constants.above_255)

let test_constant_bucketing () =
  let d = Constants.of_constants [ 0; 1; 2; 3; 15; 16; 255; 256; -7; -300 ] in
  Alcotest.(check int) "zero" 1 d.Constants.zero;
  Alcotest.(check int) "one" 1 d.Constants.one;
  Alcotest.(check int) "two" 1 d.Constants.two;
  Alcotest.(check int) "3-15 (incl. -7)" 3 d.Constants.three_to_15;
  Alcotest.(check int) "16-255" 2 d.Constants.sixteen_to_255;
  Alcotest.(check int) "above (incl. -300)" 2 d.Constants.above_255

(* --- Table 3 ------------------------------------------------------------- *)

let test_cc_savings () =
  let s = Mips_cc.Ccstats.of_corpus Mips_cc.Cc.vax_style in
  check "some compares" true (s.Mips_cc.Ccstats.compares > 50);
  check "ops-saved <= ops+moves-saved" true
    (s.Mips_cc.Ccstats.saved_by_ops <= s.Mips_cc.Ccstats.saved_by_ops_and_moves);
  check "dead moves bounded" true
    (s.Mips_cc.Ccstats.moves_only_for_cc <= s.Mips_cc.Ccstats.saved_by_ops_and_moves);
  let pct =
    float_of_int s.Mips_cc.Ccstats.genuinely_saved
    /. float_of_int s.Mips_cc.Ccstats.compares
  in
  check "savings essentially useless (paper: ~2%)" true (pct < 0.10)

(* --- Table 4 ------------------------------------------------------------- *)

let test_bool_stats () =
  let b = Bool_stats.of_corpus () in
  check "expressions found" true (b.Bool_stats.expressions > 20);
  let avg = Bool_stats.avg_operators b in
  check "avg operators near paper's 1.66" true (avg > 1.0 && avg < 3.0);
  check "jumps dominate (paper 80.9%)" true (Bool_stats.jump_fraction b > 0.5);
  check "fractions sum to 1" true
    (abs_float (Bool_stats.jump_fraction b +. Bool_stats.store_fraction b -. 1.0)
    < 1e-9)

(* --- Tables 5 and 6 -------------------------------------------------------- *)

let test_table5_shapes () =
  let t = Bool_cost.table5 () in
  let find s = List.assoc s t in
  let mips = (find Bool_cost.Mips_setcond).Bool_cost.static_classes in
  check "MIPS: two compares, one reg op, no branches (paper 2/1/0)" true
    (mips.Snippets.compares = 2 && mips.Snippets.regs = 1 && mips.Snippets.branches = 0);
  let condset = (find Bool_cost.Cc_condset).Bool_cost.static_classes in
  check "cond-set branch-free" true (condset.Snippets.branches = 0);
  check "cond-set needs more register ops than MIPS" true
    (condset.Snippets.regs > mips.Snippets.regs);
  let full = (find Bool_cost.Cc_branch_full).Bool_cost.static_classes in
  check "branch-only full evaluation branches" true (full.Snippets.branches >= 2);
  let early_dyn = (find Bool_cost.Cc_branch_early).Bool_cost.dynamic_classes in
  let full_dyn = (find Bool_cost.Cc_branch_full).Bool_cost.dynamic_classes in
  check "early-out executes fewer compares than full" true
    (early_dyn.Snippets.compares <= full_dyn.Snippets.compares)

let test_table6_ordering () =
  let stats = Bool_stats.of_corpus () in
  let rows = Bool_cost.table6 ~stats () in
  let cost s =
    (List.find (fun (r : Bool_cost.cost_row) -> r.Bool_cost.support = s) rows)
      .Bool_cost.total_cost
  in
  check "set-conditionally wins overall" true
    (cost Bool_cost.Mips_setcond < cost Bool_cost.Cc_condset);
  check "conditional set beats branch-only full" true
    (cost Bool_cost.Cc_condset < cost Bool_cost.Cc_branch_full);
  check "early-out beats full evaluation" true
    (cost Bool_cost.Cc_branch_early < cost Bool_cost.Cc_branch_full);
  let imp = Bool_cost.improvement rows Bool_cost.Mips_setcond Bool_cost.Cc_branch_full in
  check "headline improvement near paper's 53.5%" true (imp > 30. && imp < 75.)

(* --- Tables 7/8/10 ----------------------------------------------------------- *)

let test_refpatterns_and_penalty () =
  let wp, wfails = Refpatterns.word_allocated ~include_heavy:false () in
  let bp, bfails = Refpatterns.byte_allocated ~include_heavy:false () in
  check "no corpus program diverges" true (wfails = [] && bfails = []);
  let load_frac p =
    float_of_int p.Refpatterns.loads /. float_of_int (Refpatterns.total p)
  in
  check "loads dominate stores (paper 71/29)" true
    (load_frac wp > 0.55 && load_frac wp < 0.95);
  let byte_frac p =
    float_of_int (p.Refpatterns.byte_loads + p.Refpatterns.byte_stores)
    /. float_of_int (Refpatterns.total p)
  in
  check "byte allocation increases byte references" true
    (byte_frac bp >= byte_frac wp);
  check "word refs dominate both (the paper's key observation)" true
    (byte_frac wp < 0.5 && byte_frac bp < 0.5);
  check "free cycles substantial (paper ~40%)" true
    (wp.Refpatterns.free_cycle_fraction > 0.25
    && wp.Refpatterns.free_cycle_fraction < 0.85);
  let t = Byte_cost.table10 ~word_pattern:wp ~byte_pattern:bp in
  check "byte addressing penalized on word-allocated mix (paper 9-11.8%)" true
    (t.Byte_cost.penalty_word_alloc_pct > 0.
    && t.Byte_cost.penalty_word_alloc_pct < 30.);
  (* the paper's byte machine charged byte-pointer accesses 6 cycles where
     ours pays 4 (it has true scaled/indexed byte addressing), so our
     byte-allocated mix lands near break-even rather than 7.7-14.6%; see
     EXPERIMENTS.md.  The direction claim that survives is: byte addressing
     never helps the word-allocated mix and is at best marginal overall. *)
  check "byte-allocated mix near break-even or penalized" true
    (t.Byte_cost.penalty_byte_alloc_pct > -10.
    && t.Byte_cost.penalty_byte_alloc_pct < 30.)

(* --- Table 9 ------------------------------------------------------------------ *)

let test_byte_op_costs () =
  let t = Byte_cost.table9 () in
  let c op = List.assoc op t in
  check "word load equal on both machines" true
    ((c Byte_cost.Load_word).Byte_cost.word_machine
    = (c Byte_cost.Load_word).Byte_cost.byte_machine);
  check "byte load cheaper natively" true
    ((c Byte_cost.Load_byte).Byte_cost.byte_machine
    < (c Byte_cost.Load_byte).Byte_cost.word_machine);
  check "byte store dearest on the word machine (read-modify-write)" true
    ((c Byte_cost.Store_byte).Byte_cost.word_machine
    > (c Byte_cost.Load_byte).Byte_cost.word_machine);
  check "overhead column larger" true
    (List.for_all
       (fun (_, (oc : Byte_cost.op_cost)) ->
         oc.Byte_cost.byte_machine_overhead > oc.Byte_cost.byte_machine -. 1e-9)
       t)

(* --- Table 11 ------------------------------------------------------------------ *)

let test_table11 () =
  let rows = Table11.run () in
  Alcotest.(check int) "three programs" 3 (List.length rows);
  List.iter
    (fun (r : Table11.row) ->
      check
        (r.Table11.program ^ ": improvement in the paper's band (20.6-35.1%)")
        true
        (r.Table11.improvement_pct > 5. && r.Table11.improvement_pct < 50.);
      let counts = List.map snd r.Table11.counts in
      check "monotone" true
        (match counts with
        | [ a; b; c; d ] -> a >= b && b >= c && c >= d
        | _ -> false))
    rows

(* --- figures ---------------------------------------------------------------------- *)

let test_figures () =
  let f1 = Figures.figure1_full () in
  let f1e = Figures.figure1_early_out () in
  let f2 = Figures.figure2_cond_set () in
  let f3 = Figures.figure3_mips () in
  check "full eval executes two branches always (paper)" true
    (f1.Figures.avg_branches = 2.0);
  check "early-out executes fewer instructions" true
    (f1e.Figures.avg_dynamic < f1.Figures.avg_dynamic);
  check "conditional set is branch-free" true (f2.Figures.static_branches = 0);
  check "MIPS set-conditionally is branch-free" true (f3.Figures.static_branches = 0);
  check "MIPS shortest (paper: 3 vs 5 vs 6 vs 8)" true
    (f3.Figures.static_instructions < f2.Figures.static_instructions
    && f2.Figures.static_instructions < f1.Figures.static_instructions);
  let f4 = Figures.figure4 () in
  check "figure 4 reorganization shrinks the fragment" true
    (f4.Figures.after_words < f4.Figures.before_words)

let tc n f = Alcotest.test_case n `Quick f

let suite =
  [ ( "analysis:table1",
      [ tc "corpus constants" test_constants; tc "bucketing" test_constant_bucketing ] );
    ("analysis:table3", [ tc "cc savings" test_cc_savings ]);
    ("analysis:table4", [ tc "boolean shapes" test_bool_stats ]);
    ( "analysis:tables5-6",
      [ tc "per-operator shapes" test_table5_shapes;
        tc "cost ordering" test_table6_ordering ] );
    ( "analysis:tables7-10",
      [ tc "reference patterns and penalty" test_refpatterns_and_penalty;
        tc "byte op costs" test_byte_op_costs ] );
    ("analysis:table11", [ tc "postpass improvements" test_table11 ]);
    ("analysis:figures", [ tc "figures 1-4" test_figures ]) ]
