(* Tests for the compiler: frontend, IR generation, register allocation,
   emission, and whole-corpus integration across machine variants,
   optimization levels, and boolean strategies. *)

open Mips_frontend
open Mips_ir
open Mips_codegen

open Testutil
let check_str = Alcotest.(check string)

(* --- lexer --------------------------------------------------------------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  check "keywords fold case" true
    (toks "BEGIN End" = [ Token.Begin; Token.End; Token.Eof ]);
  check "symbols" true
    (toks ":= <= <> .." = [ Token.Assign; Token.Le; Token.Ne; Token.Dotdot; Token.Eof ]);
  check "char vs string" true
    (toks "'x' 'xy'" = [ Token.CharLit 'x'; Token.StrLit "xy"; Token.Eof ]);
  check "quote escape" true (toks "'don''t'" = [ Token.StrLit "don't"; Token.Eof ]);
  check "comments" true
    (toks "a { skip } b (* also * skip *) c"
    = [ Token.Ident "a"; Token.Ident "b"; Token.Ident "c"; Token.Eof ])

let test_lexer_errors () =
  check "unterminated comment" true
    (try
       ignore (Lexer.tokenize "{ never closed");
       false
     with Lexer.Error _ -> true);
  check "bad char" true
    (try
       ignore (Lexer.tokenize "a ? b");
       false
     with Lexer.Error _ -> true)

(* --- parser -------------------------------------------------------------- *)

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  match e.Ast.e with
  | Ast.Ebin (Ast.Add, { Ast.e = Ast.Enum 1; _ }, { Ast.e = Ast.Ebin (Ast.Mul, _, _); _ })
    ->
      ()
  | _ -> Alcotest.fail "expected 1 + (2 * 3)"

let test_parser_relation_binds_loosest () =
  let e = Parser.parse_expr "a + 1 = b * 2" in
  match e.Ast.e with
  | Ast.Erel (Ast.Req, { Ast.e = Ast.Ebin (Ast.Add, _, _); _ }, { Ast.e = Ast.Ebin (Ast.Mul, _, _); _ })
    ->
      ()
  | _ -> Alcotest.fail "expected (a+1) = (b*2)"

let test_parser_program_shape () =
  let p =
    Parser.parse
      "program t; var x : integer; procedure q; begin x := 1 end; begin q end."
  in
  check_str "name" "t" p.Ast.pname;
  check_int "decls" 2 (List.length p.Ast.decls);
  check_int "main stmts" 1 (List.length p.Ast.main)

let test_parser_error () =
  check "missing then" true
    (try
       ignore (Parser.parse "program t; begin if x begin end end.");
       false
     with Parser.Error _ -> true)

(* --- semantic analysis ---------------------------------------------------- *)

let expect_semantic_error src =
  try
    ignore (Semant.check_string src);
    false
  with Semant.Error _ -> true

let test_semant_errors () =
  check "type mismatch" true
    (expect_semantic_error "program t; var x : integer; begin x := 'a' end.");
  check "unknown variable" true
    (expect_semantic_error "program t; begin y := 1 end.");
  check "array by value rejected" true
    (expect_semantic_error
       "program t; type v = array [0..3] of integer; var a : v; \
        procedure q(x : v); begin end; begin q(a) end.");
  check "procedure as function" true
    (expect_semantic_error
       "program t; var x : integer; procedure q; begin end; begin x := q end.");
  check "arity" true
    (expect_semantic_error
       "program t; function f(a : integer) : integer; begin f := a end; \
        var x : integer; begin x := f(1, 2) end.");
  check "bad index type" true
    (expect_semantic_error
       "program t; var a : array [0..3] of integer; b : boolean; begin a[b] := 1 end.");
  check "nested procedures rejected" true
    (expect_semantic_error
       "program t; procedure outer; procedure inner; begin end; begin end; begin end.")

let test_semant_accepts_forward_call () =
  let p =
    Semant.check_string
      "program t; var x : integer; \
       function g(n : integer) : integer; begin g := f(n) end; \
       function f(n : integer) : integer; begin f := n + 1 end; \
       begin x := g(1) end."
  in
  check_int "two functions" 2 (List.length p.Tast.funcs)

let test_semant_const_folding () =
  let p =
    Semant.check_string
      "program t; const n = 4; m = n * 2 + 1; var a : array [1..m] of integer; \
       begin a[m] := n end."
  in
  let v = List.hd p.Tast.globals in
  match (Tast.var p v).Tast.ty with
  | Types.Array { lo = 1; hi = 9; _ } -> ()
  | _ -> Alcotest.fail "const-folded array bound"

(* --- trap-code agreement --------------------------------------------------- *)

let test_trap_codes_agree () =
  List.iter
    (fun (name, code) ->
      let machine_code =
        match name with
        | "exit" -> Mips_machine.Monitor.exit_
        | "putchar" -> Mips_machine.Monitor.putchar
        | "putint" -> Mips_machine.Monitor.putint
        | "getchar" -> Mips_machine.Monitor.getchar
        | "putstr" -> Mips_machine.Monitor.putstr
        | other -> Alcotest.failf "unknown trap name %s" other
      in
      check_int name machine_code code)
    Irgen.trap_codes

(* --- layout ---------------------------------------------------------------- *)

let test_layout_word_machine () =
  let l = Layout.create Config.default in
  check_int "int" 1 (Layout.size_of l Types.Int);
  check_int "char takes a word" 1 (Layout.size_of l Types.Char);
  let unpacked = { Types.lo = 0; hi = 9; elem = Types.Char; packed = false } in
  let packed = { unpacked with Types.packed = true } in
  check_int "unpacked char array" 10 (Layout.size_of l (Types.Array unpacked));
  check_int "packed char array: 4 per word" 3 (Layout.size_of l (Types.Array packed));
  check "packed is byte" true (Layout.is_packed_byte l packed);
  check "unpacked is not" false (Layout.is_packed_byte l unpacked)

let test_layout_byte_machine () =
  let l = Layout.create Config.byte_machine in
  check_int "int is 4 bytes" 4 (Layout.size_of l Types.Int);
  check_int "char is 1 byte" 1 (Layout.size_of l Types.Char);
  let arr = { Types.lo = 0; hi = 9; elem = Types.Char; packed = false } in
  check_int "char array is 10 bytes" 10 (Layout.size_of l (Types.Array arr));
  check "all char arrays byte-packed" true (Layout.is_packed_byte l arr);
  let rcd = Types.Record [ ("c", Types.Char); ("n", Types.Int) ] in
  check_int "record with padding" 8 (Layout.size_of l rcd);
  check_int "aligned field offset" 4
    (Layout.field_offset l [ ("c", Types.Char); ("n", Types.Int) ] 1)

(* --- register allocation ---------------------------------------------------- *)

let funcs_of src =
  let tast = Semant.check_string src in
  (Irgen.lower Config.default tast).Irgen.funcs

let test_regalloc_valid_on_corpus () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      let tast = Semant.check_string e.Mips_corpus.Corpus.source in
      List.iter
        (fun f ->
          let alloc = Regalloc.allocate f in
          if not (Regalloc.check alloc) then
            Alcotest.failf "invalid coloring in %s of %s" f.Ir.name
              e.Mips_corpus.Corpus.name)
        (Irgen.lower Config.default tast).Irgen.funcs)
    Mips_corpus.Corpus.all

let test_regalloc_spills_under_pressure () =
  (* an expression wide enough to exceed ten registers *)
  let src =
    "program t; var a,b,c,d,e,f,g,h,i,j,k,l,m : integer; x : integer; begin \
     a:=1; b:=2; c:=3; d:=4; e:=5; f:=6; g:=7; h:=8; i:=9; j:=10; k:=11; l:=12; m:=13; \
     x := (a*b + c*d) * (e*f + g*h) * (i*j + k*l) * m + a + b + c + d + e + f + g + h + i + j + k + l; \
     writeln(x) end."
  in
  List.iter
    (fun f ->
      let alloc = Regalloc.allocate f in
      check "coloring valid" true (Regalloc.check alloc))
    (funcs_of src);
  let res = Compile.run src in
  (* (1*2+3*4)*(5*6+7*8)*(9*10+11*12)*13 + 78 = 14*86*222*13 + 78 *)
  check_str "spilled program still correct" "3474822\n" res.Mips_machine.Hosted.output

let test_call_crossing_values_survive () =
  let src =
    "program t; var r : integer; \
     function id(x : integer) : integer; begin id := x end; \
     function sum3(a, b, c : integer) : integer; \
     var t1, t2, t3 : integer; \
     begin t1 := id(a); t2 := id(b); t3 := id(c); sum3 := t1 + t2 + t3 end; \
     begin r := sum3(100, 20, 3); writeln(r) end."
  in
  let res = Compile.run src in
  check_str "values live across calls" "123\n" res.Mips_machine.Hosted.output

(* --- whole-corpus integration ----------------------------------------------- *)

let heavy name = String.length name >= 6 && String.sub name 0 6 = "puzzle"

let run_config (e : Mips_corpus.Corpus.entry) config level =
  let res =
    Compile.run ~config ~level ~fuel:120_000_000 ~input:e.Mips_corpus.Corpus.input
      e.Mips_corpus.Corpus.source
  in
  if not res.Mips_machine.Hosted.halted then
    Alcotest.failf "%s did not halt" e.Mips_corpus.Corpus.name;
  (match res.Mips_machine.Hosted.fault with
  | Some (c, d) ->
      Alcotest.failf "%s faulted: %s/%d" e.Mips_corpus.Corpus.name
        (Mips_machine.Cause.show c) d
  | None -> ());
  res.Mips_machine.Hosted.output

let test_corpus_level_invariance () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      if not (heavy e.Mips_corpus.Corpus.name) then begin
        let reference = run_config e Config.default Mips_reorg.Pipeline.Naive in
        check "nonempty output" true (String.length reference > 0);
        List.iter
          (fun level ->
            let out = run_config e Config.default level in
            if out <> reference then
              Alcotest.failf "%s diverges at %s" e.Mips_corpus.Corpus.name
                (Mips_reorg.Pipeline.level_name level))
          Mips_reorg.Pipeline.all_levels
      end)
    Mips_corpus.Corpus.all

let test_corpus_machine_invariance () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      if not (heavy e.Mips_corpus.Corpus.name) then begin
        let word = run_config e Config.default Mips_reorg.Pipeline.Delay_filled in
        let byte = run_config e Config.byte_machine Mips_reorg.Pipeline.Delay_filled in
        if word <> byte then
          Alcotest.failf "%s: word and byte machines disagree"
            e.Mips_corpus.Corpus.name
      end)
    Mips_corpus.Corpus.all

let test_corpus_strategy_invariance () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      if not (heavy e.Mips_corpus.Corpus.name) then begin
        let setc = run_config e Config.default Mips_reorg.Pipeline.Delay_filled in
        let eo =
          run_config e
            { Config.default with Config.bool_strategy = Config.Early_out }
            Mips_reorg.Pipeline.Delay_filled
        in
        if setc <> eo then
          Alcotest.failf "%s: boolean strategies disagree" e.Mips_corpus.Corpus.name
      end)
    Mips_corpus.Corpus.all

let test_corpus_hazard_free () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      List.iter
        (fun level ->
          let p = Compile.compile ~level e.Mips_corpus.Corpus.source in
          if Mips_reorg.Assemble.verify_hazard_free p <> [] then
            Alcotest.failf "%s has hazards at %s" e.Mips_corpus.Corpus.name
              (Mips_reorg.Pipeline.level_name level))
        Mips_reorg.Pipeline.all_levels)
    Mips_corpus.Corpus.all

let test_known_outputs () =
  let cases =
    [ ("fib", "0 1 1 2 3 5 8 13 21 34 55 89 144 233 377 610 \n");
      ("sieve", "primes below 1000: 168\n");
      ("hanoi", "moves=4095\n");
      ("queens", "solutions=92\n");
      ("ackermann", "ack(2,6)=15\n");
      ("wordcount", "1155 240 45\n") ]
  in
  List.iter
    (fun (name, expected) ->
      let e = Mips_corpus.Corpus.find name in
      let out = run_config e Config.default Mips_reorg.Pipeline.Delay_filled in
      check_str name expected out)
    cases

let test_puzzles () =
  (* the heavy Table 11 pair, once each: the exhaustive search ends in
     failure (see the corpus comment) with identical behaviour in both
     variants *)
  List.iter
    (fun name ->
      let e = Mips_corpus.Corpus.find name in
      let out = run_config e Config.default Mips_reorg.Pipeline.Delay_filled in
      check_str name "failure\n" out)
    [ "puzzle0"; "puzzle1" ]

let test_static_improvement_on_corpus () =
  List.iter
    (fun (e : Mips_corpus.Corpus.entry) ->
      let count level =
        Mips_machine.Program.static_count (Compile.compile ~level e.Mips_corpus.Corpus.source)
      in
      let naive = count Mips_reorg.Pipeline.Naive in
      let best = count Mips_reorg.Pipeline.Delay_filled in
      if best >= naive then
        Alcotest.failf "%s: no static improvement (%d -> %d)"
          e.Mips_corpus.Corpus.name naive best)
    Mips_corpus.Corpus.all

let tc n f = Alcotest.test_case n `Quick f
let tc_slow n f = Alcotest.test_case n `Slow f

let suite =
  [ ( "compiler:lexer",
      [ tc "basics" test_lexer_basics; tc "errors" test_lexer_errors ] );
    ( "compiler:parser",
      [ tc "precedence" test_parser_precedence;
        tc "relations" test_parser_relation_binds_loosest;
        tc "program shape" test_parser_program_shape;
        tc "errors" test_parser_error ] );
    ( "compiler:semant",
      [ tc "rejections" test_semant_errors;
        tc "forward calls" test_semant_accepts_forward_call;
        tc "const folding" test_semant_const_folding;
        tc "trap codes agree" test_trap_codes_agree ] );
    ( "compiler:layout",
      [ tc "word machine" test_layout_word_machine;
        tc "byte machine" test_layout_byte_machine ] );
    ( "compiler:regalloc",
      [ tc "corpus colorings valid" test_regalloc_valid_on_corpus;
        tc "spills under pressure" test_regalloc_spills_under_pressure;
        tc "values survive calls" test_call_crossing_values_survive ] );
    ( "compiler:integration",
      [ tc "known outputs" test_known_outputs;
        tc "levels agree" test_corpus_level_invariance;
        tc "machines agree" test_corpus_machine_invariance;
        tc "strategies agree" test_corpus_strategy_invariance;
        tc "hazard free" test_corpus_hazard_free;
        tc "static counts improve" test_static_improvement_on_corpus;
        tc_slow "puzzle pair" test_puzzles ] ) ]
