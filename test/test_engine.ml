(* Differential tests for the predecoded fast execution engine.

   The equivalence contract (see Cpu's interface): under any machine
   configuration, any program and any fault plan, the fast engine must
   leave every architecturally visible artifact — registers, data memory,
   the PC chain, EPCs, monitor output, exit status, and the complete
   Stats record including stall-pair attribution and exception tallies —
   bit-identical to the reference interpreter.  Here the seeded soak
   generator is the oracle: every fixed seed is run through both engines,
   raw and reorganized, clean and faulted, and the whole final state is
   diffed. *)

open Mips_machine
open Testutil
module Plan = Mips_fault.Plan
module Progen = Mips_soak.Progen
module Json = Mips_obs.Json

(* Everything one engine run leaves behind, flattened to comparable data.
   Stats goes through its (total) JSON rendering, which includes the
   stall-pair table and the exception tallies. *)
type snapshot = {
  regs : int list;
  dmem_hash : int;
  dmem_head : int list;  (* the generated programs' static data window *)
  pc_chain : int * int * int;
  epcs : int list;
  pending : string;
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;
  retries : int;
  stats : string;
}

let hash_dmem cpu words =
  let h = ref 0 in
  for i = 0 to words - 1 do
    h := (!h * 31) + Cpu.read_data cpu i
  done;
  !h land max_int

let snapshot (cpu : Cpu.t) (res : Hosted.result) =
  {
    regs = List.init 16 (fun i -> Cpu.get_reg cpu (Mips_isa.Reg.of_int i));
    dmem_hash = hash_dmem cpu (Cpu.config cpu).Cpu.dmem_words;
    dmem_head = List.init Progen.data_words (Cpu.read_data cpu);
    pc_chain = Cpu.pc_chain cpu;
    epcs = List.init 3 (Cpu.epc cpu);
    pending = "";
    output = res.Hosted.output;
    exit_status = res.Hosted.exit_status;
    halted = res.Hosted.halted;
    fault =
      (match res.Hosted.fault with
      | Some (c, d) -> Some (Printf.sprintf "%s/%d" (Cause.name c) d)
      | None -> None);
    retries = res.Hosted.retries;
    stats = Json.to_string (Stats.to_json (Cpu.stats cpu));
  }

let run_one ~config ~plan ~engine program =
  let cpu = Cpu.create ~config () in
  (match plan with
  | Some cfg -> Cpu.set_fault_plan cpu (Plan.make cfg)
  | None -> ());
  let res = Hosted.run_program_on ~fuel:500_000 ~engine cpu program in
  snapshot cpu res

let explain_diff name seed a b =
  let fail fmt = Alcotest.failf ("seed %d, %s: " ^^ fmt) seed name in
  if a.output <> b.output then fail "output %S vs fast %S" a.output b.output;
  if a.exit_status <> b.exit_status then fail "exit status differs";
  if a.halted <> b.halted then fail "halted %b vs fast %b" a.halted b.halted;
  if a.fault <> b.fault then fail "fault attribution differs";
  if a.retries <> b.retries then fail "retries %d vs fast %d" a.retries b.retries;
  if a.regs <> b.regs then fail "register file differs";
  if a.pc_chain <> b.pc_chain then fail "pc chain differs";
  if a.epcs <> b.epcs then fail "EPCs differ";
  if a.dmem_head <> b.dmem_head then fail "static data window differs";
  if a.dmem_hash <> b.dmem_hash then fail "data memory differs";
  if a.stats <> b.stats then fail "stats differ:\n  ref  %s\n  fast %s" a.stats b.stats

(* 50+ fixed seeds: deterministic, so a failure names its seed *)
let seeds = List.init 56 (fun i -> (i * 37) + 1)

let variants seed =
  let plan_cfg =
    { Plan.quiet with Plan.seed = seed + 0x5011; flaky_rate = 0.01; irq_rate = 0.005 }
  in
  [ ("reorganized", Cpu.default_config, None);
    ("raw-interlocked", Cpu.interlocked_config, None);
    ("reorganized-byte", Cpu.byte_addressed_config, None);
    ("reorganized-faulted", Cpu.default_config, Some plan_cfg) ]

let test_differential () =
  List.iter
    (fun seed ->
      let asm = Progen.generate ~seed () in
      let reorganized = Mips_reorg.Pipeline.compile asm in
      let raw = Mips_reorg.Pipeline.compile_raw asm in
      List.iter
        (fun (vname, config, plan) ->
          let program =
            if config.Cpu.interlock then raw else reorganized
          in
          let r = run_one ~config ~plan ~engine:Cpu.Ref program in
          let f = run_one ~config ~plan ~engine:Cpu.Fast program in
          explain_diff vname seed r f;
          (* the jit engine under the same oracle: compiled traces where
             eligible, fallback everywhere else (interlocked and byte
             configs, armed fault plans), same bit-exact contract *)
          let j = run_one ~config ~plan ~engine:Cpu.Jit program in
          explain_diff (vname ^ "-jit") seed r j)
        (variants seed))
    seeds

(* Engines must also agree when steps interleave arbitrarily: alternate
   step/step_fast within one run and the result must match an all-reference
   run (the fallback conditions make this the kernel's actual regime). *)
let test_interleaved_steps () =
  List.iter
    (fun seed ->
      let program = Mips_reorg.Pipeline.compile (Progen.generate ~seed ()) in
      let exec stepf =
        let cpu = Cpu.create () in
        Cpu.load_program cpu program;
        let exited = ref None in
        let i = ref 0 in
        while !exited = None && !i < 200_000 do
          (match stepf !i cpu with
          | Cpu.Stepped -> ()
          | Cpu.Dispatched Cause.Trap ->
              let code = (Cpu.surprise cpu).Surprise.cause_detail in
              if code = Monitor.exit_ then
                exited := Some (Cpu.get_reg cpu Mips_isa.Reg.scratch0)
              else begin
                (* monitor calls other than exit: skip output, resume *)
                Cpu.set_surprise cpu (Surprise.pop (Cpu.surprise cpu));
                Cpu.set_pc_chain cpu (Cpu.epc cpu 0, Cpu.epc cpu 1, Cpu.epc cpu 2)
              end
          | Cpu.Dispatched _ -> Alcotest.failf "seed %d: unexpected fault" seed);
          incr i
        done;
        ( !exited,
          List.init 16 (fun r -> Cpu.get_reg cpu (Mips_isa.Reg.of_int r)),
          Json.to_string (Stats.to_json (Cpu.stats cpu)) )
      in
      let ref_out = exec (fun _ cpu -> Cpu.step cpu) in
      let mixed =
        exec (fun i cpu -> if i land 7 < 3 then Cpu.step cpu else Cpu.step_fast cpu)
      in
      if ref_out <> mixed then
        Alcotest.failf "seed %d: interleaved stepping diverged" seed)
    [ 3; 11; 29 ]

(* Self-modifying code: write_code must invalidate the compiled slot. *)
let test_write_code_invalidation () =
  let open Mips_isa in
  let cpu = Cpu.create () in
  let movi c d = Word.A (Alu.Movi8 (c, Reg.r d)) in
  Cpu.write_code cpu 0 (movi 1 1);
  Cpu.write_code cpu 1 (movi 2 2);
  Cpu.write_code cpu 2 (movi 3 3);
  Cpu.set_pc cpu 0;
  ignore (Cpu.step_fast cpu);
  ignore (Cpu.step_fast cpu);
  ignore (Cpu.step_fast cpu);
  check_int "r2 first pass" 2 (Cpu.get_reg cpu (Reg.r 2));
  (* patch the already-executed (hence already-compiled) slot 1 *)
  Cpu.write_code cpu 1 (movi 9 2);
  Cpu.set_pc cpu 0;
  ignore (Cpu.step_fast cpu);
  ignore (Cpu.step_fast cpu);
  check_int "r2 after patch" 9 (Cpu.get_reg cpu (Reg.r 2))

(* The kernel under the fast engine: quantum interrupts, demand paging and
   monitor traps all force reference-path cycles mid-run; scheduling and
   per-process outcomes must not change. *)
let kernel_report engine seeds =
  let k = Mips_os.Kernel.create ~quantum:300 ~engine () in
  List.iter
    (fun seed ->
      let program = Mips_reorg.Pipeline.compile (Progen.generate ~seed ()) in
      Mips_os.Kernel.spawn k ~name:(Progen.name ~seed) program)
    seeds;
  let r = Mips_os.Kernel.run ~fuel:2_000_000 k in
  ( Json.to_string (Mips_os.Kernel.report_json r),
    Json.to_string (Stats.to_json (Cpu.stats (Mips_os.Kernel.cpu k))) )

let test_kernel_differential () =
  let seeds = [ 5; 17; 23 ] in
  let ref_report, ref_stats = kernel_report Cpu.Ref seeds in
  let fast_report, fast_stats = kernel_report Cpu.Fast seeds in
  check_string "kernel report identical" ref_report fast_report;
  check_string "kernel machine stats identical" ref_stats fast_stats;
  let jit_report, jit_stats = kernel_report Cpu.Jit seeds in
  check_string "kernel report identical (jit)" ref_report jit_report;
  check_string "kernel machine stats identical (jit)" ref_stats jit_stats

(* --- trace-JIT specific tests ---------------------------------------------- *)

(* A hot loop compiled into a trace, then patched — once in the middle of
   the compiled body, once at its entry.  The write must invalidate the
   trace ([Cpu.write_code] consults the coverage map), so the machine
   behaves as if the trace never existed.  The oracle is a reference
   machine driven through the identical heat/patch/rerun sequence; the
   expected accumulator values are also asserted directly. *)
let test_jit_smc_hot_block () =
  let open Mips_isa in
  let movi8 c d = Word.A (Alu.Movi8 (c, Reg.r d)) in
  let rr i = Operand.reg (Reg.r i) in
  let i4 = Operand.imm4 in
  let add a b d = Word.A (Alu.Binop (Alu.Add, a, b, Reg.r d)) in
  let code =
    [| movi8 0 1; (* 0: i := 0 *)
       movi8 0 2; (* 1: acc := 0 *)
       movi8 200 3; (* 2: bound *)
       add (rr 2) (i4 1) 2; (* 3: loop entry: acc += 1 *)
       add (rr 2) (i4 2) 2; (* 4: acc += 2  (mid-trace patch point) *)
       add (rr 1) (i4 1) 1; (* 5: i += 1 *)
       Word.B (Branch.Cbr (Cond.Lt, rr 1, rr 3, 3)); (* 6 *)
       Word.Nop; (* 7: delay slot *)
       movi8 0 10; (* 8: exit status *)
       Word.B (Branch.Trap Monitor.exit_) (* 9 *) |]
  in
  let drive engine =
    let cpu = Cpu.create () in
    Cpu.load_program cpu (Program.make code);
    let go () =
      Cpu.set_pc cpu 0;
      let res = Hosted.run ~engine cpu in
      check "smc run halted" true res.Hosted.halted;
      ( Cpu.get_reg cpu (Mips_isa.Reg.r 2),
        Json.to_string (Stats.to_json (Cpu.stats cpu)) )
    in
    let heat = go () in
    let steady = go () in
    (* patch inside the compiled body, not at its entry *)
    Cpu.write_code cpu 4 (add (rr 2) (i4 5) 2);
    let mid = go () in
    (* patch the trace entry itself *)
    Cpu.write_code cpu 3 (movi8 9 2);
    let entry = go () in
    [ heat; steady; mid; entry ]
  in
  let ref_runs = drive Cpu.Ref and jit_runs = drive Cpu.Jit in
  (match jit_runs with
  | [ (a, _); (b, _); (c, _); (d, _) ] ->
      check_int "acc after heat" 600 a;
      check_int "acc steady-state" 600 b;
      check_int "acc after mid-trace patch" 1200 c;
      check_int "acc after entry patch" 14 d
  | _ -> assert false);
  List.iteri
    (fun i ((racc, rstats), (jacc, jstats)) ->
      check_int (Printf.sprintf "smc run %d acc" i) racc jacc;
      check_string (Printf.sprintf "smc run %d stats" i) rstats jstats)
    (List.combine ref_runs jit_runs)

(* Checkpoint/resume under the jit engine: interrupt a run mid-flight,
   restore the snapshot on a fresh machine (empty trace cache), resume
   under jit, and the completed run must be bit-identical to an
   uninterrupted reference run. *)
let test_jit_checkpoint_resume () =
  let module Snapshot = Mips_resilience.Snapshot in
  List.iter
    (fun seed ->
      let program = Mips_reorg.Pipeline.compile (Progen.generate ~seed ()) in
      let uninterrupted =
        let cpu = Cpu.create () in
        let res = Hosted.run_program_on ~fuel:200_000 ~engine:Cpu.Ref cpu program in
        (snapshot cpu res, Snapshot.machine_to_string cpu)
      in
      let saved = ref None in
      let cpu = Cpu.create () in
      Cpu.load_program cpu program;
      let _first =
        Hosted.run ~fuel:200_000 ~engine:Cpu.Jit
          ~checkpoint:
            ( 5_000,
              fun h ->
                if !saved = None then
                  saved := Some (h, Snapshot.machine_to_string cpu) )
          cpu
      in
      match !saved with
      | None -> ()  (* program finished before the first boundary *)
      | Some (h, machine) -> (
          let cpu' = Cpu.create () in
          match Snapshot.restore_machine cpu' machine with
          | Error e -> Alcotest.fail (Snapshot.error_to_string e)
          | Ok () ->
              let res =
                Hosted.run ~fuel:h.Hosted.h_fuel_left ~resume:h ~engine:Cpu.Jit
                  cpu'
              in
              let got = (snapshot cpu' res, Snapshot.machine_to_string cpu') in
              if got <> uninterrupted then
                Alcotest.failf "seed %d: jit resume diverged from reference" seed))
    [ 7; 19; 41 ]

let suite =
  [ ( "engine:differential",
      [ tc_slow "56 seeds x 4 variants, all engines" test_differential;
        tc "interleaved step/step_fast" test_interleaved_steps;
        tc "write_code invalidates compiled slot" test_write_code_invalidation;
        tc "kernel scheduling identical" test_kernel_differential;
        tc "jit: SMC patch of hot compiled block" test_jit_smc_hot_block;
        tc "jit: checkpoint/resume bit-identical" test_jit_checkpoint_resume ] ) ]
