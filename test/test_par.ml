(* The parallel evaluation harness: the Domain pool's determinism contract
   (ordered results, jobs-independent output, lowest-failing-index
   exceptions, race-free metrics), the associative-merge algebra it leans
   on (Stats.merge), the artifact cache's physical sharing, and the
   end-to-end claim: `report --json` is byte-identical for any --jobs. *)

open Testutil
module G = QCheck2.Gen

let ( let* ) x f = G.bind x f

(* --- Mips_par ------------------------------------------------------------- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  (* uneven per-item cost, so items finish out of order on purpose *)
  let f i = if i mod 7 = 0 then (Sys.opaque_identity (ignore (List.init (10_000 * (i mod 3 + 1)) Fun.id)); i * i) else i * i in
  Alcotest.(check (list int)) "jobs=4 equals serial map" (List.map f xs)
    (Mips_par.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1 equals serial map" (List.map f xs)
    (Mips_par.map ~jobs:1 f xs)

let test_map_edges () =
  Alcotest.(check (list int)) "empty list" [] (Mips_par.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Mips_par.map ~jobs:4 succ [ 1 ]);
  Alcotest.(check (list int)) "more jobs than items" [ 2; 3 ]
    (Mips_par.map ~jobs:16 succ [ 1; 2 ])

let test_exception_lowest_index () =
  (* whatever the scheduling, the caller sees the failure of the lowest
     failing index *)
  for _ = 1 to 10 do
    match
      Mips_par.map ~jobs:4
        (fun i -> if i >= 3 then failwith (string_of_int i) else i)
        (List.init 10 Fun.id)
    with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure msg -> check_string "lowest failing index" "3" msg
  done

let test_map_reduce_ordered () =
  (* a non-commutative merge: order of the fold is observable *)
  let xs = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let serial = String.concat "" xs in
  check_string "non-commutative merge folds in submission order" serial
    (Mips_par.map_reduce ~jobs:4 ~map:Fun.id ~merge:( ^ ) ~zero:"" xs);
  check_int "sum via map_reduce" 4950
    (Mips_par.map_reduce ~jobs:3 ~map:Fun.id ~merge:( + ) ~zero:0
       (List.init 100 Fun.id))

let test_map_obs_merges_sinks () =
  let obs = Mips_obs.Metrics.create () in
  let results =
    Mips_par.map_obs ~jobs:4 ~obs
      (fun ~obs i ->
        Mips_obs.Metrics.incr obs "par.work";
        Mips_obs.Metrics.add obs "par.total" i;
        i * 2)
      (List.init 50 Fun.id)
  in
  Alcotest.(check (list int)) "results ordered"
    (List.init 50 (fun i -> i * 2))
    results;
  check_int "every item counted once" 50 (Mips_obs.Metrics.count obs "par.work");
  check_int "adds survive the merge" 1225
    (Mips_obs.Metrics.count obs "par.total")

(* --- Stats.merge algebra --------------------------------------------------- *)

(* Random statistics records.  Weighted cycles are dyadic rationals
   (quarters), so float addition is exact and associativity testable
   bit-for-bit. *)
let gen_stats : Mips_machine.Stats.t G.t =
  let open Mips_machine in
  let small = G.int_bound 30 in
  let* ints = G.list_size (G.return 17) small in
  let* quarters = G.int_bound 64 in
  let* fuel = G.bool in
  let* exns = G.list_size (G.int_bound 4) (G.pair (G.int_bound 6) (G.int_range 1 5)) in
  let* pairs =
    G.list_size (G.int_bound 4) (G.pair (G.int_bound 8) (G.int_bound 8))
  in
  G.return
    (match ints with
    | [ cy; st; lu; br; wo; no; al; me; bp; pw; bt; mb; fc; wl; ws; bl; bs ] ->
        let t = Stats.create () in
        t.Stats.cycles <- cy;
        t.Stats.stall_cycles <- st;
        t.Stats.load_use_stall_cycles <- lu;
        t.Stats.branch_stall_cycles <- br;
        t.Stats.words <- wo;
        t.Stats.nops <- no;
        t.Stats.alu_pieces <- al;
        t.Stats.mem_pieces <- me;
        t.Stats.branch_pieces <- bp;
        t.Stats.packed_words <- pw;
        t.Stats.branches_taken <- bt;
        t.Stats.mem_busy_cycles <- mb;
        t.Stats.free_cycles <- fc;
        t.Stats.synthetic_refs <- cy mod 7;
        t.Stats.fuel_exhausted <- fuel;
        t.Stats.word_refs.Stats.loads <- wl;
        t.Stats.word_refs.Stats.stores <- ws;
        t.Stats.byte_refs.Stats.loads <- bl;
        t.Stats.byte_refs.Stats.stores <- bs;
        t.Stats.word_char_refs.Stats.loads <- wl mod 5;
        t.Stats.byte_char_refs.Stats.stores <- bs mod 3;
        t.Stats.weighted.(0) <- float_of_int quarters /. 4.;
        List.iter
          (fun (code, n) ->
            for _ = 1 to n do
              Stats.count_exception t (Cause.of_code code)
            done)
          exns;
        List.iter
          (fun (p, c) -> Stats.record_stall_pair t ~producer_pc:p ~consumer_pc:c)
          pairs;
        t
    | _ -> assert false)

(* every observable view, canonically rendered *)
let stats_repr s = Mips_obs.Json.to_string (Mips_machine.Stats.to_json s)

let merge_associative =
  QCheck2.Test.make ~count:200 ~name:"Stats.merge is associative"
    (G.triple gen_stats gen_stats gen_stats)
    (fun (a, b, c) ->
      let open Mips_machine.Stats in
      String.equal (stats_repr (merge (merge a b) c)) (stats_repr (merge a (merge b c))))

let merge_identity =
  QCheck2.Test.make ~count:200 ~name:"Stats.zero is merge's identity"
    gen_stats
    (fun a ->
      let open Mips_machine.Stats in
      String.equal (stats_repr (merge (zero ()) a)) (stats_repr a)
      && String.equal (stats_repr (merge a (zero ()))) (stats_repr a))

let merge_preserves_operands =
  QCheck2.Test.make ~count:50 ~name:"Stats.merge leaves its operands alone"
    (G.pair gen_stats gen_stats)
    (fun (a, b) ->
      let ra = stats_repr a and rb = stats_repr b in
      ignore (Mips_machine.Stats.merge a b);
      String.equal ra (stats_repr a) && String.equal rb (stats_repr b))

(* --- Mips_artifact --------------------------------------------------------- *)

let fib = Mips_corpus.Corpus.find "fib"

let test_artifact_sharing () =
  Mips_artifact.clear ();
  let p1 = Mips_artifact.compiled fib.Mips_corpus.Corpus.source in
  let p2 = Mips_artifact.compiled fib.Mips_corpus.Corpus.source in
  check "same physical program" true (p1 == p2);
  let s1 = Mips_artifact.entry_sim fib in
  let s2 = Mips_artifact.entry_sim fib in
  check "same physical simulation" true (s1 == s2);
  check "simulation reuses the compiled program" true
    (s1.Mips_artifact.program == p1);
  let before = Mips_artifact.counters () in
  ignore (Mips_artifact.entry_sim fib);
  let after = Mips_artifact.counters () in
  check_int "a repeat lookup is a hit"
    (before.Mips_artifact.hits + 1)
    after.Mips_artifact.hits;
  check_int "and not a miss" before.Mips_artifact.misses
    after.Mips_artifact.misses

let test_artifact_parallel_sharing () =
  Mips_artifact.clear ();
  (* concurrent misses on one key: everyone must end up with the winner *)
  match Mips_par.map ~jobs:4 (fun _ -> Mips_artifact.entry_sim fib) (List.init 8 Fun.id) with
  | [] -> Alcotest.fail "no results"
  | first :: rest ->
      check "all callers share one artifact" true
        (List.for_all (fun s -> s == first) rest)

let test_artifact_distinct_keys () =
  Mips_artifact.clear ();
  let word = Mips_artifact.compiled fib.Mips_corpus.Corpus.source in
  let byte =
    Mips_artifact.compiled ~config:Mips_ir.Config.byte_machine
      fib.Mips_corpus.Corpus.source
  in
  let naive =
    Mips_artifact.compiled ~level:Mips_reorg.Pipeline.Naive
      fib.Mips_corpus.Corpus.source
  in
  check "configs do not alias" true (word != byte);
  check "levels do not alias" true (word != naive)

(* --- Refpatterns typed failures -------------------------------------------- *)

let test_refpatterns_failure_keeps_rows () =
  let bad =
    { Mips_corpus.Corpus.name = "broken";
      description = "references a variable it never declared";
      source = "program broken; begin x := 1 end.";
      input = "";
      text_heavy = false }
  in
  let with_bad, failures =
    Mips_analysis.Refpatterns.run Mips_ir.Config.default [ fib; bad ]
  in
  (match failures with
  | [ f ] ->
      check_string "the failure names the entry" "broken"
        f.Mips_analysis.Refpatterns.program;
      check "and says why" true
        (String.length f.Mips_analysis.Refpatterns.reason > 0)
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs));
  let alone, none =
    Mips_analysis.Refpatterns.run Mips_ir.Config.default [ fib ]
  in
  check "no failures without the broken entry" true (none = []);
  check "surviving rows unchanged by the failure" true (with_bad = alone);
  check "and they carry real work" true
    (Mips_analysis.Refpatterns.total with_bad > 0)

(* --- the end-to-end determinism claim --------------------------------------- *)

let render_report jobs =
  (* fully cold: memo and artifact cache dropped, so the run genuinely
     recomputes everything under the given pool size *)
  Mips_artifact.clear ();
  Mips_analysis.Refpatterns.clear_memo ();
  Mips_obs.Json.to_string (Mips_analysis.Report.json_all ~jobs ())

let test_report_jobs_identical () =
  check_string "report --json byte-identical for --jobs 1 vs --jobs 4"
    (render_report 1) (render_report 4)

let suite =
  [ ( "par:pool",
      [ tc "ordered results" test_map_order;
        tc "edge cases" test_map_edges;
        tc "lowest failing index" test_exception_lowest_index;
        tc "ordered map_reduce" test_map_reduce_ordered;
        tc "metrics sinks merge" test_map_obs_merges_sinks ] );
    ( "par:stats-merge",
      qsuite [ merge_associative; merge_identity; merge_preserves_operands ] );
    ( "par:artifact",
      [ tc "physical sharing" test_artifact_sharing;
        tc "parallel sharing" test_artifact_parallel_sharing;
        tc "distinct keys" test_artifact_distinct_keys ] );
    ( "par:analysis",
      [ tc "typed failures keep rows" test_refpatterns_failure_keeps_rows;
        tc_slow "report byte-identical across jobs" test_report_jobs_identical ] ) ]
