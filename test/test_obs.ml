(* The observability layer: JSON round-trips, sink semantics, and the
   instrumented simulator/kernel actually telling the truth. *)

open Mips_obs

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let event = Alcotest.testable Event.pp Event.equal

(* ---------- Json ---------- *)

let roundtrip j = Json.of_string_exn (Json.to_string j)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float (-1.5e300);
      Json.Float 3.0;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \r \x00 \x1f";
      Json.Str "unicode: \xc3\xa9 \xe2\x86\x92";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      checkb (Json.to_string j) true (roundtrip j = j))
    cases

let test_json_nonfinite () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    bad

(* ---------- Event ---------- *)

let test_event_samples_cover () =
  (* every constructor appears in [samples] — guards the round-trip test
     against silently losing coverage when a constructor is added *)
  let kinds =
    List.sort_uniq compare (List.map Event.kind_name Event.samples)
  in
  checki "distinct kinds" 23 (List.length kinds)

let test_event_jsonl_roundtrip () =
  List.iter
    (fun e ->
      let line = Json.to_string (Event.to_json e) in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "%s: unparseable %s" msg line
      | Ok j -> (
          match Event.of_json j with
          | Error msg -> Alcotest.failf "%s: undecodable %s" msg line
          | Ok e' -> check event line e e'))
    Event.samples

let test_event_text_one_line () =
  List.iter
    (fun e ->
      let s = Event.to_text e in
      checkb (Printf.sprintf "no newline in %S" s) false
        (String.contains s '\n'))
    Event.samples

(* ---------- Sink ---------- *)

let ev i = Event.Fetch { pc = i }

let test_null_sink () =
  checkb "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null (ev 0);
  Sink.flush Sink.null

let test_ring_overflow () =
  let ring, sink = Sink.ring ~capacity:4 in
  for i = 0 to 9 do
    Sink.emit sink (ev i)
  done;
  checki "capacity" 4 (Sink.ring_capacity ring);
  checki "seen" 10 (Sink.ring_seen ring);
  checki "dropped" 6 (Sink.ring_dropped ring);
  Alcotest.(check (list event))
    "last four, oldest first"
    [ ev 6; ev 7; ev 8; ev 9 ]
    (Sink.ring_contents ring)

let test_ring_underfill () =
  let ring, sink = Sink.ring ~capacity:8 in
  Sink.emit sink (ev 1);
  Sink.emit sink (ev 2);
  checki "dropped" 0 (Sink.ring_dropped ring);
  Alcotest.(check (list event)) "in order" [ ev 1; ev 2 ]
    (Sink.ring_contents ring);
  Alcotest.check_raises "capacity 0" (Invalid_argument "Sink.ring: capacity must be positive")
    (fun () -> ignore (Sink.ring ~capacity:0))

let test_tee () =
  let r1, s1 = Sink.ring ~capacity:4 in
  let r2, s2 = Sink.ring ~capacity:4 in
  let both = Sink.tee s1 s2 in
  checkb "enabled" true (Sink.enabled both);
  Sink.emit both (ev 7);
  checki "left" 1 (Sink.ring_seen r1);
  checki "right" 1 (Sink.ring_seen r2);
  (* a disabled side collapses away *)
  checkb "null+null" false (Sink.enabled (Sink.tee Sink.null Sink.null))

let test_jsonl_buffer_sink () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl_buffer buf in
  List.iter (Sink.emit sink) Event.samples;
  Sink.flush sink;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  checki "one line per event" (List.length Event.samples) (List.length lines);
  List.iter2
    (fun e line ->
      match Event.of_json (Json.of_string_exn line) with
      | Ok e' -> check event line e e'
      | Error msg -> Alcotest.failf "%s: %s" msg line)
    Event.samples lines

(* ---------- Metrics ---------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 2;
  Metrics.set m "b" 7;
  checki "a" 3 (Metrics.count m "a");
  checki "b" 7 (Metrics.count m "b");
  checki "absent" 0 (Metrics.count m "zzz");
  let x = Metrics.time m "t" (fun () -> 41 + 1) in
  checki "thunk result" 42 x;
  checki "calls" 1 (Metrics.calls m "t");
  Metrics.add_seconds m "t" 0.25;
  checkb "accumulates" true (Metrics.seconds m "t" >= 0.25);
  checki "add_seconds counts a call" 2 (Metrics.calls m "t");
  Alcotest.(check (list string))
    "sorted counters" [ "a"; "b" ]
    (List.map fst (Metrics.counters m));
  (* JSON shape round-trips through the parser *)
  let j = roundtrip (Metrics.to_json m) in
  checki "counter via json" 3
    Json.(to_int_exn (member_exn "a" (member_exn "counters" j)));
  checki "timer calls via json" 2
    Json.(
      to_int_exn (member_exn "calls" (member_exn "t" (member_exn "timers" j))))

(* ---------- the instrumented simulator ---------- *)

let run_traced ?(config = Mips_ir.Config.default) name =
  let entry = Mips_corpus.Corpus.find name in
  let buf = Buffer.create (1 lsl 16) in
  let sink = Sink.jsonl_buffer buf in
  let res, cpu =
    Mips_codegen.Compile.run_with_machine ~config
      ~input:entry.Mips_corpus.Corpus.input ~trace:sink
      entry.Mips_corpus.Corpus.source
  in
  Sink.flush sink;
  checkb (name ^ " halted") true res.Mips_machine.Hosted.halted;
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Event.of_json (Json.of_string_exn l) with
           | Ok e -> e
           | Error msg -> Alcotest.failf "bad trace line (%s): %s" msg l)
  in
  (res, cpu, events)

let test_fib_trace_golden () =
  let res, cpu, events = run_traced "fib" in
  let stats = Mips_machine.Cpu.stats cpu in
  let count p = List.length (List.filter p events) in
  (* one Fetch and one Issue per executed instruction word *)
  checki "issues = words" stats.Mips_machine.Stats.words
    (count (function Event.Issue _ -> true | _ -> false));
  checki "fetches = words" stats.Mips_machine.Stats.words
    (count (function Event.Fetch _ -> true | _ -> false));
  checki "branch events = branches taken"
    stats.Mips_machine.Stats.branches_taken
    (count (function Event.Branch_taken _ -> true | _ -> false));
  (* fib writes its output through the monitor *)
  checkb "monitor calls traced" true
    (count (function Event.Monitor_call _ -> true | _ -> false) > 0);
  checkb "memory references traced" true
    (count (function Event.Mem_ref _ -> true | _ -> false) > 0);
  (* traps reach the trace as architectural dispatches *)
  checki "trap dispatches"
    (Mips_machine.Stats.exception_count stats Mips_machine.Cause.Trap)
    (count (function
      | Event.Exception_dispatch { cause = "Trap"; _ } -> true
      | _ -> false));
  checkb "output unchanged by tracing" true
    (String.length res.Mips_machine.Hosted.output > 0)

let test_trace_does_not_change_execution () =
  let entry = Mips_corpus.Corpus.find "qsort" in
  let plain =
    Mips_codegen.Compile.run ~input:entry.Mips_corpus.Corpus.input
      entry.Mips_corpus.Corpus.source
  in
  let traced, cpu, _ = run_traced "qsort" in
  check Alcotest.string "same output" plain.Mips_machine.Hosted.output
    traced.Mips_machine.Hosted.output;
  checkb "cycles tallied" true
    ((Mips_machine.Cpu.stats cpu).Mips_machine.Stats.cycles > 0)

let test_stats_json_valid () =
  let _, cpu, _ = run_traced "fib" in
  let stats = Mips_machine.Cpu.stats cpu in
  let j = roundtrip (Mips_machine.Stats.to_json stats) in
  checki "cycles" stats.Mips_machine.Stats.cycles
    Json.(to_int_exn (member_exn "cycles" j));
  checki "words" stats.Mips_machine.Stats.words
    Json.(to_int_exn (member_exn "words" j));
  checkb "free fraction in [0,1]" true
    (let f = Json.(to_float_exn (member_exn "free_cycle_fraction" j)) in
     f >= 0. && f <= 1.)

(* ---------- raw code on the interlocked machine ---------- *)

let test_raw_interlocked_equivalence () =
  (* the conventional-machine baseline must compute the same results: the
     hardware stalls stand in for the software no-ops *)
  List.iter
    (fun name ->
      let entry = Mips_corpus.Corpus.find name in
      let expected =
        Mips_codegen.Compile.run ~input:entry.Mips_corpus.Corpus.input
          entry.Mips_corpus.Corpus.source
      in
      let raw =
        Mips_reorg.Pipeline.compile_raw
          (Mips_codegen.Compile.to_asm entry.Mips_corpus.Corpus.source)
      in
      let cpu =
        Mips_machine.Cpu.create ~config:Mips_machine.Cpu.interlocked_config ()
      in
      let res =
        Mips_machine.Hosted.run_program_on
          ~input:entry.Mips_corpus.Corpus.input cpu raw
      in
      checkb (name ^ " halted") true res.Mips_machine.Hosted.halted;
      check Alcotest.string (name ^ " output")
        expected.Mips_machine.Hosted.output res.Mips_machine.Hosted.output)
    [ "fib"; "qsort"; "sieve"; "strops" ]

let test_raw_interlocked_stall_pairs () =
  let entry = Mips_corpus.Corpus.find "fib" in
  let raw =
    Mips_reorg.Pipeline.compile_raw
      (Mips_codegen.Compile.to_asm entry.Mips_corpus.Corpus.source)
  in
  let cpu =
    Mips_machine.Cpu.create ~config:Mips_machine.Cpu.interlocked_config ()
  in
  let _ =
    Mips_machine.Hosted.run_program_on ~input:entry.Mips_corpus.Corpus.input
      cpu raw
  in
  let stats = Mips_machine.Cpu.stats cpu in
  checkb "raw code stalls" true (stats.Mips_machine.Stats.load_use_stall_cycles > 0);
  let pairs = Mips_machine.Stats.stall_pairs stats in
  checkb "pairs attributed" true (pairs <> []);
  (* the pair table accounts for every load-use stall *)
  checki "pair totals"
    stats.Mips_machine.Stats.load_use_stall_cycles
    (List.fold_left (fun acc (_, n) -> acc + n) 0 pairs);
  (* sorted most-stalls-first *)
  let counts = List.map snd pairs in
  checkb "sorted desc" true (List.sort (fun a b -> compare b a) counts = counts)

(* ---------- the instrumented kernel ---------- *)

let test_kernel_trace () =
  (* an unbounded collector: the per-word machine events would overflow any
     reasonable ring and take the early Spawn events with them *)
  let collected = ref [] in
  let sink = Sink.of_fun (fun e -> collected := e :: !collected) in
  let k = Mips_os.Kernel.create ~quantum:500 ~trace:sink () in
  let compile name =
    let e = Mips_corpus.Corpus.find name in
    ( Mips_codegen.Compile.compile
        ~config:
          {
            Mips_ir.Config.default with
            Mips_ir.Config.stack_top = Mips_os.Kernel.user_stack_top;
          }
        e.Mips_corpus.Corpus.source,
      e.Mips_corpus.Corpus.input )
  in
  let p1, i1 = compile "fib" in
  let p2, i2 = compile "sieve" in
  Mips_os.Kernel.spawn k ~input:i1 ~name:"fib" p1;
  Mips_os.Kernel.spawn k ~input:i2 ~name:"sieve" p2;
  let report = Mips_os.Kernel.run k in
  let events = List.rev !collected in
  let count p = List.length (List.filter p events) in
  checki "spawns" 2 (count (function Event.Spawn _ -> true | _ -> false));
  checki "exits" 2 (count (function Event.Proc_exit _ -> true | _ -> false));
  checki "switch events" report.Mips_os.Kernel.switches
    (count (function Event.Context_switch _ -> true | _ -> false));
  checki "fault events" report.Mips_os.Kernel.page_faults
    (count (function Event.Page_fault _ -> true | _ -> false));
  (* report JSON parses and agrees *)
  let j = roundtrip (Mips_os.Kernel.report_json report) in
  checki "switches via json" report.Mips_os.Kernel.switches
    Json.(to_int_exn (member_exn "switches" j));
  checki "procs via json" 2
    (List.length Json.(to_list_exn (member_exn "procs" j)))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite;
        Alcotest.test_case "json parse errors" `Quick test_json_errors;
        Alcotest.test_case "event samples cover" `Quick test_event_samples_cover;
        Alcotest.test_case "event jsonl round-trip" `Quick
          test_event_jsonl_roundtrip;
        Alcotest.test_case "event text one-line" `Quick test_event_text_one_line;
        Alcotest.test_case "null sink" `Quick test_null_sink;
        Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
        Alcotest.test_case "ring underfill" `Quick test_ring_underfill;
        Alcotest.test_case "tee" `Quick test_tee;
        Alcotest.test_case "jsonl buffer sink" `Quick test_jsonl_buffer_sink;
        Alcotest.test_case "metrics registry" `Quick test_metrics;
        Alcotest.test_case "fib trace golden" `Quick test_fib_trace_golden;
        Alcotest.test_case "tracing is passive" `Quick
          test_trace_does_not_change_execution;
        Alcotest.test_case "stats json valid" `Quick test_stats_json_valid;
        Alcotest.test_case "raw interlocked equivalence" `Quick
          test_raw_interlocked_equivalence;
        Alcotest.test_case "raw interlocked stall pairs" `Quick
          test_raw_interlocked_stall_pairs;
        Alcotest.test_case "kernel trace" `Quick test_kernel_trace;
      ] );
  ]
