(* The observability layer: JSON round-trips, sink semantics, and the
   instrumented simulator/kernel actually telling the truth. *)

open Mips_obs

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let event = Alcotest.testable Event.pp Event.equal

(* ---------- Json ---------- *)

let roundtrip j = Json.of_string_exn (Json.to_string j)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float (-1.5e300);
      Json.Float 3.0;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \r \x00 \x1f";
      Json.Str "unicode: \xc3\xa9 \xe2\x86\x92";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      checkb (Json.to_string j) true (roundtrip j = j))
    cases

let test_json_nonfinite () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    bad

(* ---------- Event ---------- *)

let test_event_samples_cover () =
  (* every constructor appears in [samples] — guards the round-trip test
     against silently losing coverage when a constructor is added *)
  let kinds =
    List.sort_uniq compare (List.map Event.kind_name Event.samples)
  in
  checki "distinct kinds" 23 (List.length kinds)

let test_event_jsonl_roundtrip () =
  List.iter
    (fun e ->
      let line = Json.to_string (Event.to_json e) in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "%s: unparseable %s" msg line
      | Ok j -> (
          match Event.of_json j with
          | Error msg -> Alcotest.failf "%s: undecodable %s" msg line
          | Ok e' -> check event line e e'))
    Event.samples

let test_event_text_one_line () =
  List.iter
    (fun e ->
      let s = Event.to_text e in
      checkb (Printf.sprintf "no newline in %S" s) false
        (String.contains s '\n'))
    Event.samples

(* ---------- Sink ---------- *)

let ev i = Event.Fetch { pc = i }

let test_null_sink () =
  checkb "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null (ev 0);
  Sink.flush Sink.null

let test_ring_overflow () =
  let ring, sink = Sink.ring ~capacity:4 in
  for i = 0 to 9 do
    Sink.emit sink (ev i)
  done;
  checki "capacity" 4 (Sink.ring_capacity ring);
  checki "seen" 10 (Sink.ring_seen ring);
  checki "dropped" 6 (Sink.ring_dropped ring);
  Alcotest.(check (list event))
    "last four, oldest first"
    [ ev 6; ev 7; ev 8; ev 9 ]
    (Sink.ring_contents ring)

let test_ring_underfill () =
  let ring, sink = Sink.ring ~capacity:8 in
  Sink.emit sink (ev 1);
  Sink.emit sink (ev 2);
  checki "dropped" 0 (Sink.ring_dropped ring);
  Alcotest.(check (list event)) "in order" [ ev 1; ev 2 ]
    (Sink.ring_contents ring);
  Alcotest.check_raises "capacity 0" (Invalid_argument "Sink.ring: capacity must be positive")
    (fun () -> ignore (Sink.ring ~capacity:0))

let test_tee () =
  let r1, s1 = Sink.ring ~capacity:4 in
  let r2, s2 = Sink.ring ~capacity:4 in
  let both = Sink.tee s1 s2 in
  checkb "enabled" true (Sink.enabled both);
  Sink.emit both (ev 7);
  checki "left" 1 (Sink.ring_seen r1);
  checki "right" 1 (Sink.ring_seen r2);
  (* a disabled side collapses away *)
  checkb "null+null" false (Sink.enabled (Sink.tee Sink.null Sink.null))

let test_jsonl_buffer_sink () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl_buffer buf in
  List.iter (Sink.emit sink) Event.samples;
  Sink.flush sink;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  checki "one line per event" (List.length Event.samples) (List.length lines);
  List.iter2
    (fun e line ->
      match Event.of_json (Json.of_string_exn line) with
      | Ok e' -> check event line e e'
      | Error msg -> Alcotest.failf "%s: %s" msg line)
    Event.samples lines

(* ---------- Metrics ---------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 2;
  Metrics.set m "b" 7;
  checki "a" 3 (Metrics.count m "a");
  checki "b" 7 (Metrics.count m "b");
  checki "absent" 0 (Metrics.count m "zzz");
  let x = Metrics.time m "t" (fun () -> 41 + 1) in
  checki "thunk result" 42 x;
  checki "calls" 1 (Metrics.calls m "t");
  Metrics.add_seconds m "t" 0.25;
  checkb "accumulates" true (Metrics.seconds m "t" >= 0.25);
  checki "add_seconds counts a call" 2 (Metrics.calls m "t");
  Alcotest.(check (list string))
    "sorted counters" [ "a"; "b" ]
    (List.map fst (Metrics.counters m));
  (* JSON shape round-trips through the parser *)
  let j = roundtrip (Metrics.to_json m) in
  checki "counter via json" 3
    Json.(to_int_exn (member_exn "a" (member_exn "counters" j)));
  checki "timer calls via json" 2
    Json.(
      to_int_exn (member_exn "calls" (member_exn "t" (member_exn "timers" j))))

(* ---------- the instrumented simulator ---------- *)

let run_traced ?(config = Mips_ir.Config.default) name =
  let entry = Mips_corpus.Corpus.find name in
  let buf = Buffer.create (1 lsl 16) in
  let sink = Sink.jsonl_buffer buf in
  let res, cpu =
    Mips_codegen.Compile.run_with_machine ~config
      ~input:entry.Mips_corpus.Corpus.input ~trace:sink
      entry.Mips_corpus.Corpus.source
  in
  Sink.flush sink;
  checkb (name ^ " halted") true res.Mips_machine.Hosted.halted;
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Event.of_json (Json.of_string_exn l) with
           | Ok e -> e
           | Error msg -> Alcotest.failf "bad trace line (%s): %s" msg l)
  in
  (res, cpu, events)

let test_fib_trace_golden () =
  let res, cpu, events = run_traced "fib" in
  let stats = Mips_machine.Cpu.stats cpu in
  let count p = List.length (List.filter p events) in
  (* one Fetch and one Issue per executed instruction word *)
  checki "issues = words" stats.Mips_machine.Stats.words
    (count (function Event.Issue _ -> true | _ -> false));
  checki "fetches = words" stats.Mips_machine.Stats.words
    (count (function Event.Fetch _ -> true | _ -> false));
  checki "branch events = branches taken"
    stats.Mips_machine.Stats.branches_taken
    (count (function Event.Branch_taken _ -> true | _ -> false));
  (* fib writes its output through the monitor *)
  checkb "monitor calls traced" true
    (count (function Event.Monitor_call _ -> true | _ -> false) > 0);
  checkb "memory references traced" true
    (count (function Event.Mem_ref _ -> true | _ -> false) > 0);
  (* traps reach the trace as architectural dispatches *)
  checki "trap dispatches"
    (Mips_machine.Stats.exception_count stats Mips_machine.Cause.Trap)
    (count (function
      | Event.Exception_dispatch { cause = "Trap"; _ } -> true
      | _ -> false));
  checkb "output unchanged by tracing" true
    (String.length res.Mips_machine.Hosted.output > 0)

let test_trace_does_not_change_execution () =
  let entry = Mips_corpus.Corpus.find "qsort" in
  let plain =
    Mips_codegen.Compile.run ~input:entry.Mips_corpus.Corpus.input
      entry.Mips_corpus.Corpus.source
  in
  let traced, cpu, _ = run_traced "qsort" in
  check Alcotest.string "same output" plain.Mips_machine.Hosted.output
    traced.Mips_machine.Hosted.output;
  checkb "cycles tallied" true
    ((Mips_machine.Cpu.stats cpu).Mips_machine.Stats.cycles > 0)

let test_stats_json_valid () =
  let _, cpu, _ = run_traced "fib" in
  let stats = Mips_machine.Cpu.stats cpu in
  let j = roundtrip (Mips_machine.Stats.to_json stats) in
  checki "cycles" stats.Mips_machine.Stats.cycles
    Json.(to_int_exn (member_exn "cycles" j));
  checki "words" stats.Mips_machine.Stats.words
    Json.(to_int_exn (member_exn "words" j));
  checkb "free fraction in [0,1]" true
    (let f = Json.(to_float_exn (member_exn "free_cycle_fraction" j)) in
     f >= 0. && f <= 1.)

(* ---------- raw code on the interlocked machine ---------- *)

let test_raw_interlocked_equivalence () =
  (* the conventional-machine baseline must compute the same results: the
     hardware stalls stand in for the software no-ops *)
  List.iter
    (fun name ->
      let entry = Mips_corpus.Corpus.find name in
      let expected =
        Mips_codegen.Compile.run ~input:entry.Mips_corpus.Corpus.input
          entry.Mips_corpus.Corpus.source
      in
      let raw =
        Mips_reorg.Pipeline.compile_raw
          (Mips_codegen.Compile.to_asm entry.Mips_corpus.Corpus.source)
      in
      let cpu =
        Mips_machine.Cpu.create ~config:Mips_machine.Cpu.interlocked_config ()
      in
      let res =
        Mips_machine.Hosted.run_program_on
          ~input:entry.Mips_corpus.Corpus.input cpu raw
      in
      checkb (name ^ " halted") true res.Mips_machine.Hosted.halted;
      check Alcotest.string (name ^ " output")
        expected.Mips_machine.Hosted.output res.Mips_machine.Hosted.output)
    [ "fib"; "qsort"; "sieve"; "strops" ]

let test_raw_interlocked_stall_pairs () =
  let entry = Mips_corpus.Corpus.find "fib" in
  let raw =
    Mips_reorg.Pipeline.compile_raw
      (Mips_codegen.Compile.to_asm entry.Mips_corpus.Corpus.source)
  in
  let cpu =
    Mips_machine.Cpu.create ~config:Mips_machine.Cpu.interlocked_config ()
  in
  let _ =
    Mips_machine.Hosted.run_program_on ~input:entry.Mips_corpus.Corpus.input
      cpu raw
  in
  let stats = Mips_machine.Cpu.stats cpu in
  checkb "raw code stalls" true (stats.Mips_machine.Stats.load_use_stall_cycles > 0);
  let pairs = Mips_machine.Stats.stall_pairs stats in
  checkb "pairs attributed" true (pairs <> []);
  (* the pair table accounts for every load-use stall *)
  checki "pair totals"
    stats.Mips_machine.Stats.load_use_stall_cycles
    (List.fold_left (fun acc (_, n) -> acc + n) 0 pairs);
  (* sorted most-stalls-first *)
  let counts = List.map snd pairs in
  checkb "sorted desc" true (List.sort (fun a b -> compare b a) counts = counts)

(* ---------- the instrumented kernel ---------- *)

let test_kernel_trace () =
  (* an unbounded collector: the per-word machine events would overflow any
     reasonable ring and take the early Spawn events with them *)
  let collected = ref [] in
  let sink = Sink.of_fun (fun e -> collected := e :: !collected) in
  let k = Mips_os.Kernel.create ~quantum:500 ~trace:sink () in
  let compile name =
    let e = Mips_corpus.Corpus.find name in
    ( Mips_codegen.Compile.compile
        ~config:
          {
            Mips_ir.Config.default with
            Mips_ir.Config.stack_top = Mips_os.Kernel.user_stack_top;
          }
        e.Mips_corpus.Corpus.source,
      e.Mips_corpus.Corpus.input )
  in
  let p1, i1 = compile "fib" in
  let p2, i2 = compile "sieve" in
  Mips_os.Kernel.spawn k ~input:i1 ~name:"fib" p1;
  Mips_os.Kernel.spawn k ~input:i2 ~name:"sieve" p2;
  let report = Mips_os.Kernel.run k in
  let events = List.rev !collected in
  let count p = List.length (List.filter p events) in
  checki "spawns" 2 (count (function Event.Spawn _ -> true | _ -> false));
  checki "exits" 2 (count (function Event.Proc_exit _ -> true | _ -> false));
  checki "switch events" report.Mips_os.Kernel.switches
    (count (function Event.Context_switch _ -> true | _ -> false));
  checki "fault events" report.Mips_os.Kernel.page_faults
    (count (function Event.Page_fault _ -> true | _ -> false));
  (* report JSON parses and agrees *)
  let j = roundtrip (Mips_os.Kernel.report_json report) in
  checki "switches via json" report.Mips_os.Kernel.switches
    Json.(to_int_exn (member_exn "switches" j));
  checki "procs via json" 2
    (List.length Json.(to_list_exn (member_exn "procs" j)))

(* ---------- Histograms ---------- *)

let test_hist_single_value () =
  let m = Metrics.create () in
  Metrics.observe m "h" 0.125;
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      checki "count" 1 v.Metrics.count;
      (* single-valued histograms are exact: the bucket midpoint clamps
         into [min, max], which here is a point *)
      check (Alcotest.float 0.) "sum" 0.125 v.Metrics.sum;
      check (Alcotest.float 0.) "p50" 0.125 v.Metrics.p50;
      check (Alcotest.float 0.) "p90" 0.125 v.Metrics.p90;
      check (Alcotest.float 0.) "p99" 0.125 v.Metrics.p99

let test_hist_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 1000 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      checki "count" 1000 v.Metrics.count;
      check (Alcotest.float 0.) "min" 1. v.Metrics.min_v;
      check (Alcotest.float 0.) "max" 1000. v.Metrics.max_v;
      (* base-2 buckets: every quantile within ~sqrt 2 relative error *)
      let near q est = est >= q /. 1.5 && est <= q *. 1.5 in
      checkb "p50 near 500" true (near 500. v.Metrics.p50);
      checkb "p90 near 900" true (near 900. v.Metrics.p90);
      checkb "p99 near 990" true (near 990. v.Metrics.p99);
      checkb "quantiles monotone" true
        (v.Metrics.p50 <= v.Metrics.p90 && v.Metrics.p90 <= v.Metrics.p99)

let test_hist_odd_values () =
  (* non-positive and non-finite samples land in the lowest bucket but
     keep count and min/max truthful, and quantiles stay finite *)
  let m = Metrics.create () in
  List.iter (Metrics.observe m "odd") [ 0.; -3.; Float.nan; 4. ];
  match Metrics.histogram m "odd" with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      checki "count" 4 v.Metrics.count;
      check (Alcotest.float 0.) "min" (-3.) v.Metrics.min_v;
      check (Alcotest.float 0.) "max" 4. v.Metrics.max_v;
      checkb "p50 finite" true (Float.is_finite v.Metrics.p50);
      checkb "p99 finite" true (Float.is_finite v.Metrics.p99)

let test_hist_json_shape () =
  let m = Metrics.create () in
  Metrics.observe m "h" 2.;
  let j = roundtrip (Metrics.to_json m) in
  let h = Json.(member_exn "h" (member_exn "histograms" j)) in
  checki "count" 1 Json.(to_int_exn (member_exn "count" h));
  List.iter
    (fun k -> checkb k true (Json.member k h <> None))
    [ "sum"; "min"; "max"; "p50"; "p90"; "p99" ]

(* dyadic rationals k/16: sums are exact in binary floating point, so
   histogram equality after differently-associated merges is exact too *)
let dyadic_list =
  QCheck2.Gen.(list_size (int_bound 40) (map (fun k -> float_of_int k /. 16.) (int_range 1 64)))

let mk_hist samples =
  let m = Mips_obs.Metrics.create () in
  List.iter (Mips_obs.Metrics.observe m "h") samples;
  m

let qcheck_hist_merge_assoc =
  QCheck2.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck2.Gen.(triple dyadic_list dyadic_list dyadic_list)
    (fun (l1, l2, l3) ->
      let left = mk_hist l1 in
      Mips_obs.Metrics.merge ~into:left (mk_hist l2);
      Mips_obs.Metrics.merge ~into:left (mk_hist l3);
      let bc = mk_hist l2 in
      Mips_obs.Metrics.merge ~into:bc (mk_hist l3);
      let right = mk_hist l1 in
      Mips_obs.Metrics.merge ~into:right bc;
      Mips_obs.Metrics.histograms left = Mips_obs.Metrics.histograms right
      && Json.to_string (Mips_obs.Metrics.to_json left)
         = Json.to_string (Mips_obs.Metrics.to_json right))

let qcheck_json_float_roundtrip =
  QCheck2.Test.make ~name:"json float round-trip" ~count:500 QCheck2.Gen.float
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      match Json.of_string_exn s with
      | Json.Null -> Float.is_nan f || Float.abs f = Float.infinity
      | j ->
          let f' = Json.to_float_exn j in
          (* %.17g fallback makes the repr lossless for finite floats *)
          Float.equal f f' || (Float.is_nan f && Float.is_nan f'))

(* ---------- Spans ---------- *)

(* a deterministic fake clock: each read advances one second *)
let ticking () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

let test_span_nesting () =
  let sp = Span.create ~clock:(ticking ()) () in
  Span.with_ sp "outer" (fun () -> Span.with_ sp "inner" (fun () -> ()));
  Span.with_ sp "after" (fun () -> ());
  match Span.spans sp with
  | [ outer; inner; after ] ->
      check Alcotest.string "outer name" "outer" outer.Span.sp_name;
      checki "outer depth" 0 outer.Span.sp_depth;
      check Alcotest.string "inner name" "inner" inner.Span.sp_name;
      checki "inner depth" 1 inner.Span.sp_depth;
      checki "after depth" 0 after.Span.sp_depth;
      (* clock ticks once per enter/leave: outer spans reads 0..3 *)
      check (Alcotest.float 0.) "outer start" 0. outer.Span.sp_start;
      check (Alcotest.float 0.) "outer dur" 3. outer.Span.sp_dur;
      check (Alcotest.float 0.) "inner start" 1. inner.Span.sp_start;
      check (Alcotest.float 0.) "inner dur" 1. inner.Span.sp_dur;
      checkb "inner inside outer" true
        (inner.Span.sp_start >= outer.Span.sp_start
        && inner.Span.sp_start +. inner.Span.sp_dur
           <= outer.Span.sp_start +. outer.Span.sp_dur)
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_exception_safe () =
  let sp = Span.create ~clock:(ticking ()) () in
  (try Span.with_ sp "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Span.spans sp with
  | [ s ] -> check Alcotest.string "closed on raise" "boom" s.Span.sp_name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_span_null_records_nothing () =
  Span.with_ Span.null "ignored" (fun () -> ());
  checki "null stays empty" 0 (List.length (Span.spans Span.null));
  checkb "no_tracer disabled" false (Span.tracer_enabled Span.no_tracer)

let test_tracer_chrome () =
  let tracer = Span.tracer ~clock:(ticking ()) ~lanes:2 () in
  Span.with_ (Span.lane tracer 0) "a" (fun () -> ());
  Span.with_ (Span.lane tracer 1) "b" (fun () -> ());
  let spans = Span.tracer_spans tracer in
  checki "two spans" 2 (List.length spans);
  let j = roundtrip (Span.to_chrome ~process:"test" spans) in
  let events = Json.(to_list_exn (member_exn "traceEvents" j)) in
  let xs =
    List.filter
      (fun e -> Json.member_exn "ph" e = Json.Str "X")
      events
  in
  checki "one X event per span" 2 (List.length xs);
  let tids =
    List.sort_uniq compare
      (List.map (fun e -> Json.(to_int_exn (member_exn "tid" e))) xs)
  in
  checki "one lane per collector" 2 (List.length tids);
  List.iter
    (fun e ->
      checkb "ts rebased non-negative" true
        (Json.to_float_exn (Json.member_exn "ts" e) >= 0.);
      checkb "dur non-negative" true
        (Json.to_float_exn (Json.member_exn "dur" e) >= 0.))
    xs;
  (* metadata names the process and each lane *)
  let metas =
    List.filter (fun e -> Json.member_exn "ph" e = Json.Str "M") events
  in
  checkb "has metadata events" true (List.length metas >= 3)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite;
        Alcotest.test_case "json parse errors" `Quick test_json_errors;
        Alcotest.test_case "event samples cover" `Quick test_event_samples_cover;
        Alcotest.test_case "event jsonl round-trip" `Quick
          test_event_jsonl_roundtrip;
        Alcotest.test_case "event text one-line" `Quick test_event_text_one_line;
        Alcotest.test_case "null sink" `Quick test_null_sink;
        Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
        Alcotest.test_case "ring underfill" `Quick test_ring_underfill;
        Alcotest.test_case "tee" `Quick test_tee;
        Alcotest.test_case "jsonl buffer sink" `Quick test_jsonl_buffer_sink;
        Alcotest.test_case "metrics registry" `Quick test_metrics;
        Alcotest.test_case "fib trace golden" `Quick test_fib_trace_golden;
        Alcotest.test_case "tracing is passive" `Quick
          test_trace_does_not_change_execution;
        Alcotest.test_case "stats json valid" `Quick test_stats_json_valid;
        Alcotest.test_case "raw interlocked equivalence" `Quick
          test_raw_interlocked_equivalence;
        Alcotest.test_case "raw interlocked stall pairs" `Quick
          test_raw_interlocked_stall_pairs;
        Alcotest.test_case "kernel trace" `Quick test_kernel_trace;
        Alcotest.test_case "histogram single value exact" `Quick
          test_hist_single_value;
        Alcotest.test_case "histogram percentiles" `Quick test_hist_percentiles;
        Alcotest.test_case "histogram odd values" `Quick test_hist_odd_values;
        Alcotest.test_case "histogram json shape" `Quick test_hist_json_shape;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick
          test_span_exception_safe;
        Alcotest.test_case "null span collector" `Quick
          test_span_null_records_nothing;
        Alcotest.test_case "tracer chrome export" `Quick test_tracer_chrome;
      ]
      @ Testutil.qsuite [ qcheck_hist_merge_assoc; qcheck_json_float_roundtrip ]
    );
  ]
