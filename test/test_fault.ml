(* Fault-injection subsystem tests: deterministic plans, transient restart
   through the architectural dispatch path, hardened-kernel behavior under
   injected faults, and the differential soak property over generated
   programs. *)

open Mips_isa
open Mips_machine
module Plan = Mips_fault.Plan
module Rng = Mips_fault.Rng
module Soak = Mips_soak.Soak
module Progen = Mips_soak.Progen

open Testutil

(* --- rng + plan determinism ---------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 1000 do
    check "same stream" true (Rng.next64 a = Rng.next64 b)
  done;
  let c = Rng.create 43 in
  check "different seed diverges" true (Rng.next64 a <> Rng.next64 c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let n = Rng.int r 13 in
    check "int in range" true (n >= 0 && n < 13);
    let f = Rng.float r in
    check "float in range" true (f >= 0. && f < 1.)
  done

let test_plan_deterministic () =
  let cfg =
    { Plan.quiet with Plan.seed = 11; flip_reg_rate = 0.05; flaky_rate = 0.05 }
  in
  let a = Plan.make cfg and b = Plan.make cfg in
  for _ = 1 to 2000 do
    check "same decisions" true (Plan.decide a = Plan.decide b)
  done;
  check "same counters" true (Plan.counts a = Plan.counts b)

let test_plan_max_injections () =
  let cfg =
    { Plan.quiet with Plan.seed = 3; flip_reg_rate = 1.0; max_injections = 5 }
  in
  let p = Plan.make cfg in
  for _ = 1 to 100 do
    ignore (Plan.decide p)
  done;
  check_int "stops at the cap" 5 (Plan.injected p)

let test_none_plan_never_injects () =
  let p = Plan.none in
  for _ = 1 to 100 do
    check "none decides nothing" true (Plan.decide p = None)
  done

(* --- machine-level injection ---------------------------------------------- *)

let movi8 c d = Word.A (Alu.Movi8 (c, Reg.r d))
let trap c = Word.B (Branch.Trap c)
let halt = [ movi8 0 10; trap Monitor.exit_ ]

(* enough nops that a per-step plan with rate 1 fires before the halt *)
let idle n = List.init n (fun _ -> Word.Nop)

let test_flip_reg_applied () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (Program.make (Array.of_list (idle 3 @ halt)));
  (* a plan that injects exactly one register flip on the first step *)
  let cfg =
    { Plan.quiet with Plan.seed = 0; flip_reg_rate = 1.0; max_injections = 1 }
  in
  Cpu.set_fault_plan cpu (Plan.make cfg);
  let res = Hosted.run cpu in
  check "still halts" true res.Hosted.halted;
  check_int "one injection" 1 (Plan.injected (Cpu.fault_plan cpu));
  (* exactly one register differs from zero by a single bit — unless the
     flip hit r10 and was then overwritten by the halt sequence, so just
     assert the plan accounting *)
  check "reg_flip counted" true
    (List.assoc "reg_flip" (Plan.counts (Cpu.fault_plan cpu)) = 1)

let test_flaky_restart_transparent () =
  (* a load under a flaky-memory arming must restart and produce the same
     architectural result *)
  let data = [ (5, 1234) ] in
  let words =
    [ Word.M (Mem.Load (Mem.W32, Mem.Abs 5, Reg.r 1)); Word.Nop ] @ halt
  in
  let clean = Cpu.create () in
  Cpu.load_program clean (Program.make ~data (Array.of_list words));
  let clean_res = Hosted.run clean in
  let faulty = Cpu.create () in
  Cpu.load_program faulty (Program.make ~data (Array.of_list words));
  let cfg =
    { Plan.quiet with Plan.seed = 1; flaky_rate = 1.0; max_injections = 1 }
  in
  Cpu.set_fault_plan faulty (Plan.make cfg);
  let res = Hosted.run faulty in
  check "clean halted" true (clean_res.Hosted.halted && clean_res.Hosted.fault = None);
  check "faulty halted" true (res.Hosted.halted && res.Hosted.fault = None);
  check_int "one restart" 1 res.Hosted.retries;
  check_int "same loaded value" (Cpu.get_reg clean (Reg.r 1))
    (Cpu.get_reg faulty (Reg.r 1));
  check_int "flaky fired" 1
    (List.assoc "flaky_fired" (Plan.counts (Cpu.fault_plan faulty)));
  check "transient dispatch counted" true
    (Stats.exception_count (Cpu.stats faulty) Cause.Page_fault = 1)

let test_fuel_exhaustion_recorded () =
  let cpu = Cpu.create () in
  (* spin forever: jump to self *)
  Cpu.load_program cpu (Program.make (Array.of_list [ Word.B (Branch.Jump 0); Word.Nop ]));
  let res = Hosted.run ~fuel:1000 cpu in
  check "did not halt" true (not res.Hosted.halted);
  check "stats flag set" true (Cpu.stats cpu).Stats.fuel_exhausted

let test_drop_clean_only () =
  let pm = Pagemap.create () in
  Pagemap.map pm Pagemap.Dspace ~vpage:1 ~frame:0 ~writable:true;
  Pagemap.map pm Pagemap.Dspace ~vpage:2 ~frame:1 ~writable:true;
  (* dirty page 1 *)
  ignore (Pagemap.translate pm Pagemap.Dspace ~write:true (1 * Pagemap.page_words));
  (match Pagemap.drop_clean pm ~pick:0 with
  | Some (Pagemap.Dspace, 2) -> ()
  | Some _ -> Alcotest.fail "dropped the wrong page"
  | None -> Alcotest.fail "expected a clean page to drop");
  (* only the dirty page remains: nothing clean to drop *)
  check "dirty page survives" true
    (Pagemap.find pm Pagemap.Dspace ~vpage:1 <> None);
  check "no clean candidates left" true (Pagemap.drop_clean pm ~pick:3 = None)

(* --- hardened kernel ------------------------------------------------------ *)

let compile_src src =
  Mips_codegen.Compile.compile
    ~config:{ Mips_ir.Config.default with Mips_ir.Config.stack_top = Mips_os.Kernel.user_stack_top }
    src

let spin_src = "program spin; var i : integer; begin while 0 = 0 do i := i + 1 end."
let quick_src = "program quick; begin write(7) end."

let test_watchdog_kills_runaway () =
  let k = Mips_os.Kernel.create ~watchdog:20_000 () in
  Mips_os.Kernel.spawn k ~name:"spin" (compile_src spin_src);
  Mips_os.Kernel.spawn k ~name:"quick" (compile_src quick_src);
  let r = Mips_os.Kernel.run k in
  check_int "one watchdog kill" 1 r.Mips_os.Kernel.watchdog_kills;
  let spin =
    List.find (fun (p : Mips_os.Kernel.proc_report) -> p.pname = "spin")
      r.Mips_os.Kernel.procs
  in
  (match spin.Mips_os.Kernel.killed with
  | Some (Mips_os.Kernel.Watchdog cycles) ->
      check "cycles recorded" true (cycles > 20_000)
  | _ -> Alcotest.fail "expected a watchdog kill");
  let quick =
    List.find (fun (p : Mips_os.Kernel.proc_report) -> p.pname = "quick")
      r.Mips_os.Kernel.procs
  in
  check "other process unaffected" true (quick.Mips_os.Kernel.exit_status = Some 0);
  check "its output intact" true (quick.Mips_os.Kernel.output = "7")

let test_spawn_limit_enforced () =
  let k = Mips_os.Kernel.create () in
  let p = compile_src quick_src in
  for i = 0 to Mips_os.Kernel.max_procs - 1 do
    Mips_os.Kernel.spawn k ~name:(Printf.sprintf "p%d" i) p
  done;
  check "table is at capacity" true
    (match Mips_os.Kernel.spawn k ~name:"overflow" p with
    | () -> false
    | exception Invalid_argument _ -> true)

let touch_src = "program touch; var i : integer; begin i := 3; write(i) end."

let test_oom_kill_graceful () =
  (* zero data frames: the very first data reference cannot be serviced *)
  let k = Mips_os.Kernel.create ~data_frames:0 () in
  Mips_os.Kernel.spawn k ~name:"touch" (compile_src touch_src);
  let r = Mips_os.Kernel.run k in
  check_int "one oom kill" 1 r.Mips_os.Kernel.oom_kills;
  let p = List.hd r.Mips_os.Kernel.procs in
  match p.Mips_os.Kernel.killed with
  | Some (Mips_os.Kernel.Out_of_memory _) -> ()
  | _ -> Alcotest.fail "expected an out-of-memory kill"

let test_kernel_retry_under_flaky () =
  (* heavy flaky injection: processes must still finish, with retries *)
  let plan =
    { Plan.quiet with Plan.seed = 77; flaky_rate = 0.05 }
  in
  let s = Soak.run_soak ~programs:3 ~plan ~seed:9 () in
  check_int "all accounted" s.Soak.programs (s.Soak.exited + s.Soak.killed + s.Soak.live);
  check "not fuel-bound" true (not s.Soak.fuel_exhausted);
  check "every process exited" true (s.Soak.exited = s.Soak.programs);
  check "retries happened" true (s.Soak.transient_retries > 0);
  check "all transient faults retried" true
    (s.Soak.transient_faults = s.Soak.transient_retries)

let test_kernel_soak_survives_bit_flips () =
  (* the aggressive plan: every fault kind at once.  The property is
     survival and accounting, not equivalence. *)
  let plan =
    {
      Plan.seed = 1234;
      flip_reg_rate = 0.0005;
      flip_data_rate = 0.0005;
      irq_rate = 0.0005;
      page_drop_rate = 0.0005;
      flaky_rate = 0.001;
      max_injections = 0;
    }
  in
  let s = Soak.run_soak ~programs:4 ~watchdog:2_000_000 ~plan ~seed:5 () in
  check_int "all accounted" s.Soak.programs (s.Soak.exited + s.Soak.killed + s.Soak.live);
  check "faults were injected" true
    (List.fold_left (fun a (_, n) -> a + n) 0 s.Soak.injected > 0)

let test_kernel_soak_deterministic () =
  let plan =
    {
      Plan.seed = 99;
      flip_reg_rate = 0.001;
      flip_data_rate = 0.001;
      irq_rate = 0.001;
      page_drop_rate = 0.001;
      flaky_rate = 0.001;
      max_injections = 0;
    }
  in
  let a = Soak.run_soak ~programs:3 ~watchdog:2_000_000 ~plan ~seed:21 () in
  let b = Soak.run_soak ~programs:3 ~watchdog:2_000_000 ~plan ~seed:21 () in
  check "bit-for-bit reproducible" true (a = b);
  let j1 = Mips_obs.Json.to_string (Soak.summary_json a) in
  let j2 = Mips_obs.Json.to_string (Soak.summary_json b) in
  Alcotest.(check string) "same JSON" j1 j2

(* --- differential soak ---------------------------------------------------- *)

let test_generated_programs_terminate () =
  for seed = 0 to 19 do
    let asm = Progen.generate ~seed () in
    let program = Mips_reorg.Pipeline.compile asm in
    let res = Hosted.run_program ~fuel:500_000 program in
    check (Printf.sprintf "seed %d halts" seed) true res.Hosted.halted;
    check (Printf.sprintf "seed %d exits cleanly" seed) true
      (res.Hosted.exit_status = Some 0 && res.Hosted.fault = None)
  done

let test_differential_clean_and_faulted () =
  (* the acceptance property: >= 100 generated programs, raw-vs-reorganized,
     clean and under transparent fault injection, all equivalent *)
  let failures = ref [] in
  for seed = 0 to 119 do
    let d = Soak.differential ~seed () in
    if not d.Soak.ok then failures := d :: !failures
  done;
  (match !failures with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "seed %d diverged: %s" d.Soak.seed
        (String.concat "; "
           (List.map (fun (v, m) -> v ^ ": " ^ m) d.Soak.mismatches)));
  (* and the injection machinery must actually have been exercised *)
  let total_injected =
    List.fold_left
      (fun acc seed -> acc + (Soak.differential ~seed ()).Soak.injected)
      0 [ 0; 1; 2; 3; 4 ]
  in
  check "faults actually injected" true (total_injected > 0)

let test_differential_deterministic () =
  let a = Soak.differential ~seed:17 () in
  let b = Soak.differential ~seed:17 () in
  check "same result" true (a = b)

(* --- qcheck: the differential property over arbitrary seeds --------------- *)

let named_qsuite name tests = (name, Testutil.qsuite tests)

let prop_differential =
  QCheck.Test.make ~count:30 ~name:"differential equivalence on random seeds"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let d = Soak.differential ~seed () in
      d.Soak.ok)

let prop_whole_program_halts =
  QCheck2.Test.make ~count:40
    ~name:"whole-program generator: every draw halts cleanly reorganized"
    Gen.whole_program
    (fun asm ->
      let p = Mips_reorg.Pipeline.compile asm in
      let res = Hosted.run_program ~fuel:500_000 p in
      res.Hosted.halted
      && res.Hosted.exit_status = Some 0
      && res.Hosted.fault = None)

let prop_plan_decide_pure =
  QCheck.Test.make ~count:50 ~name:"plan decisions depend only on seed"
    QCheck.(pair (int_bound 10_000) (int_bound 500))
    (fun (seed, n) ->
      let cfg =
        { Plan.quiet with Plan.seed; flip_data_rate = 0.03; flaky_rate = 0.03 }
      in
      let a = Plan.make cfg and b = Plan.make cfg in
      let da = List.init (n + 1) (fun _ -> Plan.decide a) in
      let db = List.init (n + 1) (fun _ -> Plan.decide b) in
      da = db)

let suite =
  [ ( "fault",
      [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
        Alcotest.test_case "plan max injections" `Quick test_plan_max_injections;
        Alcotest.test_case "none plan inert" `Quick test_none_plan_never_injects;
        Alcotest.test_case "reg flip applied" `Quick test_flip_reg_applied;
        Alcotest.test_case "flaky restart transparent" `Quick
          test_flaky_restart_transparent;
        Alcotest.test_case "fuel exhaustion recorded" `Quick
          test_fuel_exhaustion_recorded;
        Alcotest.test_case "page drop spares dirty pages" `Quick
          test_drop_clean_only ] );
    ( "fault.kernel",
      [ Alcotest.test_case "watchdog kills runaway" `Quick
          test_watchdog_kills_runaway;
        Alcotest.test_case "spawn limit enforced" `Slow test_spawn_limit_enforced;
        Alcotest.test_case "oom kill graceful" `Quick test_oom_kill_graceful;
        Alcotest.test_case "retry under flaky injection" `Quick
          test_kernel_retry_under_flaky;
        Alcotest.test_case "soak survives bit flips" `Quick
          test_kernel_soak_survives_bit_flips;
        Alcotest.test_case "soak deterministic" `Quick
          test_kernel_soak_deterministic ] );
    ( "fault.differential",
      [ Alcotest.test_case "generated programs terminate" `Quick
          test_generated_programs_terminate;
        Alcotest.test_case "differential over 120 seeds" `Slow
          test_differential_clean_and_faulted;
        Alcotest.test_case "differential deterministic" `Quick
          test_differential_deterministic ] );
    named_qsuite "fault.qcheck"
      [ prop_differential; prop_whole_program_halts; prop_plan_decide_pure ] ]
