(* QCheck generators for ISA values, shared by the property tests. *)

open Mips_isa
module G = QCheck2.Gen

let reg : Reg.t G.t = G.map Reg.of_int (G.int_range 0 15)
let operand : Operand.t G.t =
  G.oneof [ G.map Operand.reg reg; G.map Operand.imm4 (G.int_range 0 15) ]

let cond : Cond.t G.t = G.oneofl Cond.all

let binop : Alu.binop G.t =
  G.oneofl
    [ Alu.Add; Alu.Sub; Alu.Rsub; Alu.And; Alu.Or; Alu.Xor; Alu.Sll; Alu.Srl;
      Alu.Sra; Alu.Mul; Alu.Div; Alu.Rem ]

let special : Alu.special G.t =
  G.oneofl
    [ Alu.Surprise; Alu.Segment; Alu.Byte_select; Alu.Epc 0; Alu.Epc 1; Alu.Epc 2 ]

let alu : Alu.t G.t =
  G.oneof
    [ G.map (fun (op, a, b, d) -> Alu.Binop (op, a, b, d))
        (G.quad binop operand operand reg);
      G.map (fun (a, d) -> Alu.Mov (a, d)) (G.pair operand reg);
      G.map (fun (c, d) -> Alu.Movi8 (c, d)) (G.pair (G.int_range 0 255) reg);
      G.map (fun (c, a, b, d) -> Alu.Setc (c, a, b, d))
        (G.quad cond operand operand reg);
      G.map (fun (p, v, d) -> Alu.Xbyte (p, v, d)) (G.triple operand operand reg);
      G.map (fun (s, d) -> Alu.Ibyte (s, d)) (G.pair operand reg);
      G.map (fun (s, d) -> Alu.Rd_special (s, d)) (G.pair special reg);
      G.map (fun (s, a) -> Alu.Wr_special (s, a)) (G.pair special operand);
      G.return Alu.Rfe ]

let addr : Mem.addr G.t =
  G.oneof
    [ G.map (fun a -> Mem.Abs a) (G.int_range 0 0xFFFFFF);
      G.map (fun (b, d) -> Mem.Disp (b, d)) (G.pair reg (G.int_range (-32768) 32767));
      G.map (fun (b, i) -> Mem.Idx (b, i)) (G.pair reg reg);
      G.map (fun (b, i, n) -> Mem.Shifted (b, i, n))
        (G.triple reg reg (G.int_range 0 7));
      G.map (fun (b, i, n) -> Mem.Scaled (b, i, n))
        (G.triple reg reg (G.int_range 0 3)) ]

let width : Mem.width G.t = G.oneofl [ Mem.W32; Mem.W8 ]

let word32 : Word32.t G.t =
  G.map Word32.norm (G.oneof [ G.int_range (-70000) 70000; G.int ])

let mem : Mem.t G.t =
  G.oneof
    [ G.map (fun (w, a, d) -> Mem.Load (w, a, d)) (G.triple width addr reg);
      G.map (fun (w, s, a) -> Mem.Store (w, s, a)) (G.triple width reg addr);
      G.map (fun (c, d) -> Mem.Limm (c, d)) (G.pair word32 reg) ]

let target : int G.t = G.int_range 0 Encode.code_address_max

let branch : int Branch.t G.t =
  G.oneof
    [ G.map (fun (c, a, b, t) -> Branch.Cbr (c, a, b, t))
        (G.quad cond operand operand target);
      G.map (fun t -> Branch.Jump t) target;
      G.map (fun (t, l) -> Branch.Jal (t, l)) (G.pair target reg);
      G.map (fun r -> Branch.Jind r) reg;
      G.map (fun (r, l) -> Branch.Jalind (r, l)) (G.pair reg reg);
      G.map (fun c -> Branch.Trap c) (G.int_range 0 Branch.trap_code_max) ]

let piece : int Piece.t G.t =
  G.oneof
    [ G.return Piece.Nop;
      G.map (fun a -> Piece.Alu a) alu;
      G.map (fun m -> Piece.Mem m) mem;
      G.map (fun b -> Piece.Branch b) branch ]

let ( let* ) x f = G.bind x f
let ( and* ) a b = G.pair a b

(* Only structurally valid packings are generated (same side conditions as
   Word.pack). *)
let word : int Word.t G.t =
  let am =
    let* a, m = G.pair alu mem in
    match Word.pack (Piece.Alu a) (Piece.Mem m) with
    | Some w -> G.return w
    | None -> G.return (Word.A a)
  and ab =
    let* a, b = G.pair alu branch in
    match Word.pack (Piece.Alu a) (Piece.Branch b) with
    | Some w -> G.return w
    | None -> G.return (Word.B b)
  in
  G.oneof
    [ G.return Word.Nop; G.map (fun a -> Word.A a) alu; G.map (fun m -> Word.M m) mem;
      G.map (fun b -> Word.B b) branch; am; ab ]

let _ = ( and* )

(* --- whole programs ------------------------------------------------------ *)

(* Closed, terminating whole programs in symbolic assembly, via the seeded
   soak generator (Mips_soak.Progen): every draw is a program that assembles
   both raw and reorganized and exits through the monitor.  The generator is
   deterministic in the drawn seed, so failures shrink to a seed. *)
let program_seed : int G.t = G.int_range 0 1_000_000

let whole_program : Mips_reorg.Asm.program G.t =
  G.map (fun seed -> Mips_soak.Progen.generate ~seed ()) program_seed
