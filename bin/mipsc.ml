(* mipsc — the command-line driver.

   mipsc run FILE            compile and execute on the simulator
   mipsc compile FILE        compile and print the final listing
   mipsc asm FILE            print the symbolic assembly (before the postpass)
   mipsc levels FILE         static counts at each postpass level (Table 11 view)
   mipsc profile FILE        per-phase compile times and top stall-causing pairs
   mipsc profile run FILE    execute with guest profiling: hot blocks, edges,
                             fusion-candidate pairs, flamegraph/speedscope
   mipsc corpus [NAME]       run corpus programs
   mipsc soak --seed N       seeded fault-injection soak (kernel + differential)
   mipsc report              regenerate every table and figure of the paper

   FILE may also name a corpus program (e.g. `mipsc run fib`).

   Observability: `run` takes --trace[=FILE] (events to stderr, a file, or
   `-` for stdout) with --trace-format=text|jsonl, and --stats-json FILE to
   dump the execution counters as JSON.  `report --json` emits the whole
   evaluation machine-readably (with a schema_version field), and
   `report --hotspots` appends guest hot-block tables.  `run`, `report`,
   `soak` and `profile run` take --host-trace FILE to write a Chrome
   trace-event JSON of the host-side phases (compile, simulate, worker-lane
   jobs) — load it in Perfetto or chrome://tracing.

   Robustness: `run` takes --fault-seed/--fault-rate to subject a single
   program to transparent transient faults (flaky-memory restarts and
   spurious interrupts); `soak` drives the full hardened-kernel and
   raw-vs-reorganized differential harnesses.  Both are bit-for-bit
   deterministic for a given seed.

   Parallelism: report, soak, corpus and run take --jobs N to size the
   Domain worker pool (default: the runtime's recommended domain count).
   Output is byte-identical for any N — workers populate the shared
   artifact cache, the deterministic aggregation stays on one domain.

   Resilience: `run` and `soak` take --checkpoint FILE (with
   --checkpoint-every N) to write versioned, checksummed snapshots as they
   go, and --resume FILE to continue a killed run — the completed run is
   bit-identical to one that was never interrupted.  `report` runs its
   warm-up under a supervisor (retry, quarantine, circuit breaker) and
   takes --stats-json for the resilience counters plus --inject-poison
   LABEL to exercise the degraded path.  Exit codes are standardized in
   Exit_code and listed in every subcommand's --help. *)

open Cmdliner

let read_source path =
  if Sys.file_exists path then In_channel.with_open_text path In_channel.input_all
  else
    match Mips_corpus.Corpus.find path with
    | e -> e.Mips_corpus.Corpus.source
    | exception Not_found ->
        Printf.eprintf "mipsc: no such file or corpus program: %s\n" path;
        exit Exit_code.usage

let config_of ~byte ~early_out =
  let base =
    if byte then Mips_ir.Config.byte_machine else Mips_ir.Config.default
  in
  if early_out then
    { base with Mips_ir.Config.bool_strategy = Mips_ir.Config.Early_out }
  else base

let level_of = function
  | 0 -> Mips_reorg.Pipeline.Naive
  | 1 -> Mips_reorg.Pipeline.Reorganized
  | 2 -> Mips_reorg.Pipeline.Packed
  | _ -> Mips_reorg.Pipeline.Delay_filled

(* common flags *)
let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Source file or corpus program name.")

let byte_flag =
  Arg.(value & flag & info [ "byte-addressed" ] ~doc:"Target the byte-addressed comparison machine.")

let early_flag =
  Arg.(value & flag & info [ "early-out" ] ~doc:"Early-out boolean evaluation instead of set-conditionally.")

let level_flag =
  Arg.(value & opt int 3 & info [ "O" ] ~docv:"N" ~doc:"Postpass level 0-3 (none/reorganize/pack/branch-delay).")

let input_flag =
  Arg.(value & opt string "" & info [ "input" ] ~docv:"TEXT" ~doc:"Input stream for the getchar monitor call.")

let stats_flag = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")

(* worker-pool size for the commands that fan work out (report, soak,
   corpus); the value becomes the harness-wide default so library-level
   parallel maps pick it up too.  Output is byte-identical for any value —
   the pool only reorders when work happens, never results. *)
let jobs_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel evaluation (default: the runtime's \
           recommended domain count).  Results are byte-identical for any \
           $(docv).")

let apply_jobs = function
  | Some n -> Mips_par.set_default_jobs n
  | None -> ()

(* observability flags *)
let trace_flag =
  Arg.(
    value
    & opt ~vopt:(Some "stderr") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Emit an execution event trace.  Without a value events go to \
           standard error; with $(docv) they go to that file ($(b,-) for \
           standard output).")

let trace_format_flag =
  Arg.(
    value
    & opt (enum [ ("text", Mips_obs.Sink.Text); ("jsonl", Mips_obs.Sink.Jsonl) ])
        Mips_obs.Sink.Text
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:"Trace encoding: $(b,text) (one readable line per event) or \
              $(b,jsonl) (one JSON object per line).")

let stats_json_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write execution statistics as JSON to $(docv) ($(b,-) for \
           standard output).")

(* an out_channel destination plus the cleanup it needs *)
let open_dest = function
  | "-" -> (stdout, fun () -> flush stdout)
  | "stderr" -> (stderr, fun () -> flush stderr)
  | path -> (
      match open_out path with
      | oc -> (oc, fun () -> close_out oc)
      | exception Sys_error msg ->
          Printf.eprintf "mipsc: cannot open %s: %s\n" path msg;
          exit Exit_code.usage)

let write_json dest json =
  let oc, close = open_dest dest in
  output_string oc (Mips_obs.Json.to_string json);
  output_char oc '\n';
  close ()

(* host-side tracing: a span tracer over wall time, one lane per worker
   domain, exported as Chrome trace-event JSON *)
let host_trace_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "host-trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the host-side phases (compile, \
           simulate, per-worker jobs) to $(docv) ($(b,-) for standard \
           output) — load it in Perfetto or chrome://tracing.")

let make_tracer ~lanes = function
  | None -> Mips_obs.Span.no_tracer
  | Some _ -> Mips_obs.Span.tracer ~clock:Unix.gettimeofday ~lanes ()

let write_host_trace ~process tracer = function
  | None -> ()
  | Some dest ->
      write_json dest
        (Mips_obs.Span.to_chrome ~process (Mips_obs.Span.tracer_spans tracer))

let engine_flag =
  Arg.(
    value
    & opt
        (enum
           [ ("ref", Mips_machine.Cpu.Ref); ("fast", Mips_machine.Cpu.Fast);
             ("jit", Mips_machine.Cpu.Jit) ])
        Mips_machine.Cpu.Ref
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,ref) (the reference interpreter, default),            $(b,fast) (the predecoded closure engine — bit-identical            results, including statistics) or $(b,jit) (the trace \
           compiler: hot basic blocks become fused closures — bit-identical \
           results, fastest steady state).")

let fuel_flag =
  Arg.(
    value
    & opt int 500_000_000
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:
          "Maximum machine steps to execute; the run exits with the \
           out-of-fuel status when the budget is exhausted.")

(* checkpoint/restore flags for `run` and `soak` *)
let checkpoint_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a resumable checkpoint (versioned, checksummed) to $(docv) \
           as the run progresses; a crash mid-write never leaves a torn \
           file.")

let checkpoint_every_flag default =
  Arg.(
    value & opt int default
    & info [ "checkpoint-every" ] ~docv:"STEPS"
        ~doc:
          (Printf.sprintf
             "Machine steps between checkpoints under $(b,--checkpoint) \
              (default %d).  Slicing never changes results." default))

let resume_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by the $(i,same) invocation \
           (parameters are compared byte-for-byte).  The completed run is \
           bit-identical to one that was never interrupted.")

(* fault-injection flags for `run` *)
let fault_seed_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Subject the run to transient fault injection with this plan seed \
           (flaky-memory restarts and spurious interrupts — the transparent \
           kinds, so program output must be unchanged).")

let fault_rate_flag =
  Arg.(
    value
    & opt float 0.001
    & info [ "fault-rate" ] ~docv:"R"
        ~doc:
          "Per-step injection probability under $(b,--fault-seed) (default \
           0.001).")

(* `run --remote` ships the request to a mipsd daemon instead of executing
   locally.  Guest output, the fault line and the exit code behave exactly
   like a local run; daemon-side failures map to the standardized codes
   (6 connect, 7 shed, 8 protocol, 3 quota kill). *)
let remote_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SOCKET"
        ~doc:
          "Execute on the mipsd daemon listening on $(docv) instead of in \
           process.  Local-only flags (--trace, --stats, --checkpoint, \
           --resume, --fault-seed) do not combine with $(docv).")

let remote_tenant_flag =
  Arg.(
    value & opt string "mipsc"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:"Tenant to bill a $(b,--remote) run to (default $(b,mipsc)).")

let run_remote ~socket ~tenant ~src ~byte ~early_out ~level ~input ~fuel
    ~engine =
  let req =
    Mips_daemon.Protocol.Run
      {
        tenant;
        session = None;
        source = src;
        cg = { Mips_daemon.Protocol.byte; early_out; level };
        input;
        fuel;
        engine = Mips_machine.Cpu.engine_name engine;
      }
  in
  match Remote.request_or_die ~prog:"mipsc" socket req with
  | Mips_daemon.Protocol.Ran r -> Remote.finish_run ~prog:"mipsc" r
  | _ ->
      Printf.eprintf "mipsc: unexpected response to run\n";
      exit Exit_code.protocol

let run_cmd =
  let run file byte early_out level input stats trace trace_format stats_json
      fault_seed fault_rate engine fuel jobs checkpoint checkpoint_every
      resume host_trace remote tenant =
    apply_jobs jobs;
    let config = config_of ~byte ~early_out in
    let src = read_source file in
    (match remote with
    | Some socket ->
        if
          stats || trace <> None || stats_json <> None || fault_seed <> None
          || checkpoint <> None || resume <> None || host_trace <> None
        then begin
          Printf.eprintf
            "mipsc: --remote does not combine with --stats/--trace/\
             --stats-json/--fault-seed/--checkpoint/--resume/--host-trace\n";
          exit Exit_code.usage
        end;
        run_remote ~socket ~tenant ~src ~byte ~early_out ~level ~input ~fuel
          ~engine
    | None -> ());
    let input =
      if input = "" then
        match Mips_corpus.Corpus.find file with
        | e -> e.Mips_corpus.Corpus.input
        | exception Not_found -> ""
      else input
    in
    let trace_sink, trace_close =
      match trace with
      | None -> (Mips_obs.Sink.null, fun () -> ())
      | Some dest ->
          let oc, close = open_dest dest in
          (Mips_obs.Sink.to_channel trace_format oc, close)
    in
    let fault_plan =
      Option.map
        (fun seed ->
          Mips_fault.Plan.make
            { Mips_fault.Plan.quiet with
              Mips_fault.Plan.seed;
              flaky_rate = fault_rate;
              irq_rate = fault_rate /. 2. })
        fault_seed
    in
    let tracer = make_tracer ~lanes:1 host_trace in
    let sp = Mips_obs.Span.lane tracer 0 in
    let res, cpu =
      if checkpoint = None && resume = None && host_trace = None then
        Mips_codegen.Compile.run_with_machine ~config ~level:(level_of level)
          ~fuel ~input ~trace:trace_sink ?fault_plan ~engine src
      else if checkpoint = None && resume = None then begin
        (* host-traced twin of [Compile.run_with_machine]: identical phases,
           each timed as a span so the trace separates compile from
           simulate *)
        let program =
          Mips_obs.Span.with_ sp "compile" (fun () ->
              Mips_codegen.Compile.compile ~config ~level:(level_of level) src)
        in
        let cpu =
          Mips_machine.Cpu.create
            ~config:(Mips_codegen.Compile.machine_config config) ()
        in
        Mips_machine.Cpu.set_trace cpu trace_sink;
        (match fault_plan with
        | Some plan -> Mips_machine.Cpu.set_fault_plan cpu plan
        | None -> ());
        let res =
          Mips_obs.Span.with_ sp "simulate" (fun () ->
              Mips_machine.Hosted.run_program_on ~fuel ~input ~engine cpu
                program)
        in
        (res, cpu)
      end
      else begin
        (* the checkpointed twin of [Compile.run_with_machine]: same compile,
           same machine setup, but the hosted loop runs in slices and saves
           machine + host state at each boundary.  The meta section pins
           everything the run depends on; a resume against different
           arguments is refused rather than silently diverging. *)
        let module Snapshot = Mips_resilience.Snapshot in
        let meta =
          let open Snapshot.Io.W in
          let b = create () in
          str b (Digest.string src);
          bool b byte;
          bool b early_out;
          int b level;
          str b (Mips_machine.Cpu.engine_name engine);
          str b (Digest.string input);
          int b fuel;
          opt int b fault_seed;
          float b fault_rate;
          contents b
        in
        let program =
          Mips_obs.Span.with_ sp "compile" (fun () ->
              Mips_codegen.Compile.compile ~config ~level:(level_of level) src)
        in
        let cpu =
          Mips_machine.Cpu.create
            ~config:(Mips_codegen.Compile.machine_config config) ()
        in
        if Mips_obs.Sink.enabled trace_sink then
          Mips_machine.Cpu.set_trace cpu trace_sink;
        (match fault_plan with
        | Some plan -> Mips_machine.Cpu.set_fault_plan cpu plan
        | None -> ());
        Mips_machine.Cpu.load_program cpu program;
        let resume_state =
          match resume with
          | None -> None
          | Some path -> (
              let open Snapshot in
              match
                let* c = read_file path in
                let* () =
                  if String.equal c.kind "run" then Ok ()
                  else
                    Error
                      (Corrupt (Printf.sprintf "not a run checkpoint: %S" c.kind))
                in
                let* m = section c "meta" in
                let* () =
                  if String.equal m meta then Ok ()
                  else Error (Corrupt "checkpoint does not match this run")
                in
                let* h = section c "host" in
                let* h = host_of_string h in
                let* mach = section c "machine" in
                let* () = restore_machine cpu mach in
                Ok h
              with
              | Ok h ->
                  if Mips_obs.Sink.enabled trace_sink then
                    Mips_obs.Sink.emit trace_sink
                      (Mips_obs.Event.Checkpoint_restore
                         { path; phase = "run";
                           steps = fuel - h.Mips_machine.Hosted.h_fuel_left });
                  Some h
              | Error e ->
                  Printf.eprintf "mipsc: cannot resume from %s: %s\n" path
                    (error_to_string e);
                  exit Exit_code.checkpoint)
        in
        let ckpt =
          Option.map
            (fun path ->
              ( checkpoint_every,
                fun (h : Mips_machine.Hosted.host_state) ->
                  let data =
                    Snapshot.encode
                      { Snapshot.kind = "run";
                        sections =
                          [ ("meta", meta);
                            ("machine", Snapshot.machine_to_string cpu);
                            ("host", Snapshot.host_to_string h) ] }
                  in
                  (try Snapshot.write_file path data
                   with Sys_error msg ->
                     Printf.eprintf "mipsc: cannot write checkpoint %s: %s\n"
                       path msg;
                     exit Exit_code.checkpoint);
                  if Mips_obs.Sink.enabled trace_sink then
                    Mips_obs.Sink.emit trace_sink
                      (Mips_obs.Event.Checkpoint_write
                         { path; phase = "run";
                           steps = fuel - h.Mips_machine.Hosted.h_fuel_left;
                           bytes = String.length data }) ))
            checkpoint
        in
        let fuel =
          match resume_state with
          | Some h -> h.Mips_machine.Hosted.h_fuel_left
          | None -> fuel
        in
        let res =
          Mips_obs.Span.with_ sp "simulate" (fun () ->
              Mips_machine.Hosted.run ~fuel ~input ~engine ?resume:resume_state
                ?checkpoint:ckpt cpu)
        in
        (res, cpu)
      end
    in
    Mips_obs.Sink.flush trace_sink;
    trace_close ();
    write_host_trace ~process:"mipsc run" tracer host_trace;
    print_string res.Mips_machine.Hosted.output;
    (match res.Mips_machine.Hosted.fault with
    | Some (c, d) ->
        Printf.eprintf "fault: %s (%d)\n" (Mips_machine.Cause.name c) d
    | None -> ());
    (match fault_plan with
    | Some plan ->
        Printf.eprintf "faults: %d injected, %d transient restarts\n"
          (Mips_fault.Plan.injected plan) res.Mips_machine.Hosted.retries
    | None -> ());
    if stats then Format.eprintf "%a@." Mips_machine.Stats.pp (Mips_machine.Cpu.stats cpu);
    (match stats_json with
    | Some dest ->
        write_json dest (Mips_machine.Stats.to_json (Mips_machine.Cpu.stats cpu))
    | None -> ());
    if (Mips_machine.Cpu.stats cpu).Mips_machine.Stats.fuel_exhausted then begin
      prerr_endline "mipsc: out of fuel (execution did not complete)";
      exit Exit_code.out_of_fuel
    end;
    exit (Option.value ~default:0 res.Mips_machine.Hosted.exit_status)
  in
  Cmd.v
    (Cmd.info "run" ~exits:Exit_code.infos
       ~doc:"Compile and execute a program on the simulator.")
    Term.(
      const run $ file_arg $ byte_flag $ early_flag $ level_flag $ input_flag
      $ stats_flag $ trace_flag $ trace_format_flag $ stats_json_flag
      $ fault_seed_flag $ fault_rate_flag $ engine_flag $ fuel_flag
      $ jobs_flag
      $ checkpoint_flag $ checkpoint_every_flag 1_000_000 $ resume_flag
      $ host_trace_flag $ remote_flag $ remote_tenant_flag)

let compile_cmd =
  let compile file byte early_out level =
    let config = config_of ~byte ~early_out in
    let p =
      Mips_codegen.Compile.compile ~config ~level:(level_of level)
        (read_source file)
    in
    Format.printf "%a@." Mips_machine.Program.pp_listing p;
    Format.printf "; %d instruction words@." (Mips_machine.Program.static_count p)
  in
  Cmd.v (Cmd.info "compile" ~exits:Exit_code.infos ~doc:"Compile and print the final machine listing.")
    Term.(const compile $ file_arg $ byte_flag $ early_flag $ level_flag)

let asm_cmd =
  let asm file byte early_out =
    let config = config_of ~byte ~early_out in
    let a = Mips_codegen.Compile.to_asm ~config (read_source file) in
    Format.printf "%a@." Mips_reorg.Asm.pp a
  in
  Cmd.v (Cmd.info "asm" ~exits:Exit_code.infos ~doc:"Print the symbolic assembly before the reorganizer.")
    Term.(const asm $ file_arg $ byte_flag $ early_flag)

let levels_cmd =
  let levels file byte =
    let config = config_of ~byte ~early_out:false in
    let asm = Mips_codegen.Compile.to_asm ~config (read_source file) in
    List.iter
      (fun level ->
        let p = Mips_reorg.Pipeline.compile ~level asm in
        Format.printf "%-24s %6d words@."
          (Mips_reorg.Pipeline.level_name level)
          (Mips_machine.Program.static_count p))
      Mips_reorg.Pipeline.all_levels
  in
  Cmd.v
    (Cmd.info "levels" ~exits:Exit_code.infos ~doc:"Static instruction counts at each postpass level.")
    Term.(const levels $ file_arg $ byte_flag)

let profile_cmd =
  let profile file byte early_out level input top json =
    let config = config_of ~byte ~early_out in
    let src = read_source file in
    let input =
      if input = "" then
        match Mips_corpus.Corpus.find file with
        | e -> e.Mips_corpus.Corpus.input
        | exception Not_found -> ""
      else input
    in
    let obs = Mips_obs.Metrics.create () in
    let _program =
      Mips_codegen.Compile.compile_profiled ~config ~level:(level_of level) ~obs
        src
    in
    (* execute raw program-order code on the hardware-interlock comparison
       machine: there the stalls are real, so every load-use pair the
       compiler emitted back-to-back shows up with a cycle count attached —
       the hazards the reorganizer's scheduling is in business to remove *)
    let raw =
      Mips_reorg.Pipeline.compile_raw (Mips_codegen.Compile.to_asm ~config src)
    in
    let machine_config =
      { (Mips_codegen.Compile.machine_config config) with
        Mips_machine.Cpu.interlock = true }
    in
    let cpu = Mips_machine.Cpu.create ~config:machine_config () in
    let res = Mips_machine.Hosted.run_program_on ~fuel:500_000_000 ~input cpu raw in
    let stats = Mips_machine.Cpu.stats cpu in
    let pairs = Mips_machine.Stats.stall_pairs stats in
    let top_pairs =
      List.filteri (fun i _ -> i < top) pairs
      |> List.map (fun ((producer_pc, consumer_pc), stalls) ->
             let word_at pc =
               Format.asprintf "%a" Mips_isa.Word.pp_abs
                 (Mips_machine.Cpu.read_code cpu pc)
             in
             (producer_pc, word_at producer_pc, consumer_pc, word_at consumer_pc, stalls))
    in
    if json then
      print_endline
        (Mips_obs.Json.to_string
           (Mips_obs.Json.Obj
              [ ("program", Mips_obs.Json.Str file);
                ("compile", Mips_obs.Metrics.to_json obs);
                ("execution", Mips_machine.Stats.to_json stats);
                ( "top_stall_pairs",
                  Mips_obs.Json.List
                    (List.map
                       (fun (ppc, pw, cpc, cw, stalls) ->
                         Mips_obs.Json.Obj
                           [ ("producer_pc", Mips_obs.Json.Int ppc);
                             ("producer", Mips_obs.Json.Str pw);
                             ("consumer_pc", Mips_obs.Json.Int cpc);
                             ("consumer", Mips_obs.Json.Str cw);
                             ("stalls", Mips_obs.Json.Int stalls) ])
                       top_pairs) ) ]))
    else begin
      Format.printf "=== compile phases (%s) ===@." file;
      List.iter
        (fun (name, seconds, calls) ->
          Format.printf "%-32s %9.3f ms  (%d call%s)@." name (1000. *. seconds)
            calls
            (if calls = 1 then "" else "s"))
        (Mips_obs.Metrics.timers obs);
      Format.printf "@.=== reorganizer counters ===@.";
      List.iter
        (fun (name, v) -> Format.printf "%-32s %8d@." name v)
        (Mips_obs.Metrics.counters obs);
      Format.printf
        "@.=== raw code on the interlocked machine (%d cycles, %d stalls) ===@."
        stats.Mips_machine.Stats.cycles stats.Mips_machine.Stats.stall_cycles;
      Format.printf "load-use stalls %d, branch-latency stalls %d@."
        stats.Mips_machine.Stats.load_use_stall_cycles
        stats.Mips_machine.Stats.branch_stall_cycles;
      if pairs = [] then
        Format.printf "no load-use stall pairs: every load already sits apart \
                       from its consumer@."
      else begin
        Format.printf "@.top stall-causing instruction pairs:@.";
        List.iter
          (fun (ppc, pw, cpc, cw, stalls) ->
            Format.printf "%6d stalls  %6d: %-34s -> %6d: %s@." stalls ppc pw
              cpc cw)
          top_pairs
      end;
      if not res.Mips_machine.Hosted.halted then
        Format.printf "(program ran out of fuel)@."
    end
  in
  let compile_profile_term =
    Term.(
      const profile $ file_arg $ byte_flag $ early_flag $ level_flag
      $ input_flag
      $ Arg.(
          value & opt int 10
          & info [ "top" ] ~docv:"N" ~doc:"How many stall pairs to show.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the profile as JSON."))
  in
  (* `profile run`: execute with guest profiling armed and fold the per-PC
     counters into blocks, edges and fusion-candidate pairs.  The cycle
     attribution is exact — it sums back to the run's Stats totals — and
     profiling never perturbs the Stats themselves. *)
  let profile_run_cmd =
    let prun file byte early_out level interlock input engine fuel hot flame
        speedscope json host_trace =
      let config = config_of ~byte ~early_out in
      let src = read_source file in
      let input =
        if input = "" then
          match Mips_corpus.Corpus.find file with
          | e -> e.Mips_corpus.Corpus.input
          | exception Not_found -> ""
        else input
      in
      let tracer = make_tracer ~lanes:1 host_trace in
      let sp = Mips_obs.Span.lane tracer 0 in
      (* --interlock profiles raw program-order code on the hardware-interlock
         machine (the same pairing as the stall-pair table above): stalls are
         real there, so the attribution's stall column and the load+use pair
         table fill in, where delayed-mode schedules keep both empty. *)
      let program =
        Mips_obs.Span.with_ sp "compile" (fun () ->
            if interlock then
              Mips_reorg.Pipeline.compile_raw
                (Mips_codegen.Compile.to_asm ~config src)
            else Mips_codegen.Compile.compile ~config ~level:(level_of level) src)
      in
      let machine_config =
        let c = Mips_codegen.Compile.machine_config config in
        if interlock then { c with Mips_machine.Cpu.interlock = true } else c
      in
      let cpu = Mips_machine.Cpu.create ~config:machine_config () in
      Mips_machine.Cpu.set_profiling cpu true;
      let res =
        Mips_obs.Span.with_ sp "simulate" (fun () ->
            Mips_machine.Hosted.run_program_on ~fuel ~input ~engine cpu
              program)
      in
      let stats = Mips_machine.Cpu.stats cpu in
      let prof =
        Mips_obs.Span.with_ sp "capture" (fun () ->
            Mips_profile.capture ~program:file cpu)
      in
      (match flame with
      | Some dest ->
          let oc, close = open_dest dest in
          output_string oc (Mips_profile.folded prof);
          close ()
      | None -> ());
      (match speedscope with
      | Some dest -> write_json dest (Mips_profile.speedscope prof)
      | None -> ());
      write_host_trace ~process:"mipsc profile run" tracer host_trace;
      if json then
        print_endline
          (Mips_obs.Json.to_string
             (Mips_obs.Json.Obj
                [ ("program", Mips_obs.Json.Str file);
                  ("stats", Mips_machine.Stats.to_json stats);
                  ("profile", Mips_profile.to_json prof) ]))
      else begin
        Format.printf "%a@." (Mips_profile.pp_hotspots ~top:hot) prof;
        Format.printf "@.%a@." (Mips_profile.pp_edges ~top:hot) prof;
        Format.printf "@.%a@." (Mips_profile.pp_pairs ~top:hot) prof;
        Format.printf
          "@.attribution: %d cycles = %d issue + %d stall + %d shadow + %d \
           other@.stats:       %d cycles = %d words + %d stall@."
          (Mips_profile.total_cycles prof)
          prof.Mips_profile.total_issue prof.Mips_profile.total_stall
          prof.Mips_profile.total_shadow prof.Mips_profile.other_cycles
          stats.Mips_machine.Stats.cycles stats.Mips_machine.Stats.words
          stats.Mips_machine.Stats.stall_cycles;
        if not res.Mips_machine.Hosted.halted then
          Format.printf "(program ran out of fuel)@."
      end
    in
    Cmd.v
      (Cmd.info "run" ~exits:Exit_code.infos
         ~doc:
           "Execute a program with guest profiling armed: ranked hot blocks \
            with an exact issue/stall/shadow cycle attribution, taken edges, \
            fusion-candidate adjacent pairs, and flamegraph/speedscope \
            exports.")
      Term.(
        const prun $ file_arg $ byte_flag $ early_flag $ level_flag
        $ Arg.(
            value & flag
            & info [ "interlock" ]
                ~doc:
                  "Profile raw program-order code on the hardware-interlock \
                   machine: real stall cycles land in the attribution and \
                   load+use pairs appear in the fusion table.")
        $ input_flag $ engine_flag $ fuel_flag
        $ Arg.(
            value & opt int 10
            & info [ "hot" ] ~docv:"N"
                ~doc:"How many blocks/edges/pairs to show.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "flame" ] ~docv:"FILE"
                ~doc:
                  "Write folded-stack flamegraph text to $(docv) ($(b,-) for \
                   standard output).")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "speedscope" ] ~docv:"FILE"
                ~doc:
                  "Write a speedscope JSON profile to $(docv) ($(b,-) for \
                   standard output).")
        $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the profile as JSON.")
        $ host_trace_flag)
  in
  (* `profile compile FILE` is the explicit spelling of the default term;
     the legacy `profile FILE` spelling is kept working by the argv rewrite
     at the entry point (a cmdliner group treats a bare positional after
     the group name as a subcommand lookup). *)
  let profile_compile_cmd =
    Cmd.v
      (Cmd.info "compile" ~exits:Exit_code.infos
         ~doc:
           "Per-phase compile times, reorganizer pass statistics, and the \
            top stall-causing instruction pairs on the hardware-interlock \
            machine (the default when no subcommand is given).")
      compile_profile_term
  in
  Cmd.group ~default:compile_profile_term
    (Cmd.info "profile" ~exits:Exit_code.infos
       ~doc:
         "Per-phase compile times, reorganizer pass statistics, and the top \
          stall-causing instruction pairs on the hardware-interlock machine; \
          $(b,profile run) executes with guest profiling.")
    [ profile_run_cmd; profile_compile_cmd ]

let corpus_cmd =
  let corpus name jobs =
    apply_jobs jobs;
    let entries =
      match name with
      | Some n -> [ Mips_corpus.Corpus.find n ]
      | None -> Mips_corpus.Corpus.all
    in
    (* simulate in parallel (sharing the artifact cache with any later
       consumer), print in corpus order *)
    let outputs =
      Mips_par.map
        (fun (e : Mips_corpus.Corpus.entry) ->
          (Mips_artifact.entry_sim e).Mips_artifact.result
            .Mips_machine.Hosted.output)
        entries
    in
    List.iter2
      (fun (e : Mips_corpus.Corpus.entry) output ->
        Printf.printf "--- %s: %s\n%!" e.Mips_corpus.Corpus.name
          e.Mips_corpus.Corpus.description;
        print_string output)
      entries outputs
  in
  Cmd.v (Cmd.info "corpus" ~exits:Exit_code.infos ~doc:"Run corpus programs.")
    Term.(
      const corpus
      $ Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Corpus program (all when omitted).")
      $ jobs_flag)

let soak_cmd =
  let soak seed steps programs segments quantum watchdog flip_rate
      data_flip_rate irq_rate page_drop_rate flaky_rate differential engine
      json jobs checkpoint checkpoint_every resume stats_json host_trace =
    apply_jobs jobs;
    (* --engine=ref keeps the historical split: interpreted kernel phase,
       fast-engine differential variants (matching Soak.run_checkpointed) *)
    let diff_engine =
      match engine with
      | Mips_machine.Cpu.Ref -> Mips_machine.Cpu.Fast
      | e -> e
    in
    let tracer = make_tracer ~lanes:1 host_trace in
    let sp = Mips_obs.Span.lane tracer 0 in
    let plan =
      {
        Mips_fault.Plan.seed;
        flip_reg_rate = flip_rate;
        flip_data_rate = data_flip_rate;
        irq_rate;
        page_drop_rate;
        flaky_rate;
        max_injections = 0;
      }
    in
    (* with no resilience flags the original two-phase path runs untouched;
       with --checkpoint/--resume the checkpointed runner produces the same
       summary and diff list (both are pure functions of the parameters),
       so the JSON below is identical either way *)
    let s, diffs =
      if checkpoint = None && resume = None then
        ( Mips_obs.Span.with_ sp "kernel_soak" (fun () ->
              Mips_soak.Soak.run_soak ~programs ?segments ~quantum ?watchdog
                ~steps ~engine ~plan ~seed ()),
          Mips_obs.Span.with_ sp "differential" (fun () ->
              Mips_soak.Soak.differential_sweep ?segments ~seed
                ~engine:diff_engine ~count:differential ()) )
      else
        match
          Mips_obs.Span.with_ sp "soak_checkpointed" (fun () ->
              Mips_soak.Soak.run_checkpointed ~programs ?segments ~quantum
                ?watchdog ~steps ~diff_count:differential ?checkpoint
                ~checkpoint_every ?resume ~engine ~plan ~seed ())
        with
        | Ok (Mips_soak.Soak.Complete (s, diffs)) -> (s, diffs)
        | Ok Mips_soak.Soak.Interrupted ->
            (* unreachable without the in-process max_slices test hook *)
            assert false
        | Error e ->
            Printf.eprintf "mipsc: checkpoint error: %s\n"
              (Mips_resilience.Snapshot.error_to_string e);
            exit Exit_code.checkpoint
    in
    let diverged =
      List.filter (fun d -> not d.Mips_soak.Soak.ok) diffs
    in
    if json then
      print_endline
        (Mips_obs.Json.to_string (Mips_soak.Soak.result_json s diffs))
    else begin
      Printf.printf "=== kernel soak (seed %d, %d programs, %d steps) ===\n"
        seed s.Mips_soak.Soak.programs s.Mips_soak.Soak.steps;
      Printf.printf "exited %d, killed %d, live %d%s\n"
        s.Mips_soak.Soak.exited s.Mips_soak.Soak.killed s.Mips_soak.Soak.live
        (if s.Mips_soak.Soak.fuel_exhausted then " (out of fuel)" else "");
      List.iter
        (fun (reason, n) -> Printf.printf "  killed by %s: %d\n" reason n)
        s.Mips_soak.Soak.kill_reasons;
      Printf.printf "injected:";
      List.iter
        (fun (kind, n) -> if n > 0 then Printf.printf " %s %d" kind n)
        s.Mips_soak.Soak.injected;
      print_newline ();
      Printf.printf
        "transient faults %d (retried %d), watchdog kills %d, double faults \
         %d, oom kills %d\n"
        s.Mips_soak.Soak.transient_faults s.Mips_soak.Soak.transient_retries
        s.Mips_soak.Soak.watchdog_kills s.Mips_soak.Soak.double_faults
        s.Mips_soak.Soak.oom_kills;
      Printf.printf "page faults %d, switches %d, %d cycles\n"
        s.Mips_soak.Soak.page_faults s.Mips_soak.Soak.switches
        s.Mips_soak.Soak.total_cycles;
      if differential > 0 then begin
        Printf.printf
          "=== differential (%d programs, raw vs reorganized, faulted) ===\n"
          differential;
        Printf.printf "%d equivalent, %d diverged\n"
          (List.length diffs - List.length diverged)
          (List.length diverged);
        List.iter
          (fun (d : Mips_soak.Soak.diff) ->
            List.iter
              (fun (v, m) ->
                Printf.printf "  seed %d, %s: %s\n" d.Mips_soak.Soak.seed v m)
              d.Mips_soak.Soak.mismatches)
          diverged
      end
    end;
    (* resilience counters go to their own file, never into the soak JSON —
       kill/resume byte-identity is checked on the main output *)
    (match stats_json with
    | Some dest -> write_json dest (Mips_resilience.Supervise.stats_json ())
    | None -> ());
    write_host_trace ~process:"mipsc soak" tracer host_trace;
    if diverged <> [] then exit Exit_code.divergence
  in
  Cmd.v
    (Cmd.info "soak" ~exits:Exit_code.infos
       ~doc:
         "Seeded fault-injection soak: generated programs under a hardened \
          kernel with transient faults, plus a raw-vs-reorganized \
          differential check.  Bit-for-bit deterministic for a given seed; \
          exits 4 when a differential run diverges.")
    Term.(
      const soak
      $ Arg.(
          value & opt int 1
          & info [ "seed" ] ~docv:"N" ~doc:"Master seed for programs and fault plan.")
      $ Arg.(
          value & opt int 2_000_000
          & info [ "steps" ] ~docv:"K" ~doc:"Kernel-run fuel in machine steps.")
      $ Arg.(
          value & opt int 8
          & info [ "programs" ] ~docv:"N" ~doc:"Generated processes to spawn.")
      $ Arg.(
          value & opt (some int) (Some 48)
          & info [ "segments" ] ~docv:"N" ~doc:"Size of each generated program.")
      $ Arg.(
          value & opt int 500
          & info [ "quantum" ] ~docv:"CYCLES" ~doc:"Scheduler quantum.")
      $ Arg.(
          value & opt (some int) None
          & info [ "watchdog" ] ~docv:"CYCLES"
              ~doc:"Per-process cycle budget (unlimited when omitted).")
      $ Arg.(
          value & opt float 0.002
          & info [ "flip-rate" ] ~docv:"R" ~doc:"Register bit-flip rate per step.")
      $ Arg.(
          value & opt float 0.002
          & info [ "data-flip-rate" ] ~docv:"R" ~doc:"Data-word bit-flip rate per step.")
      $ Arg.(
          value & opt float 0.002
          & info [ "irq-rate" ] ~docv:"R" ~doc:"Spurious-interrupt rate per step.")
      $ Arg.(
          value & opt float 0.002
          & info [ "page-drop-rate" ] ~docv:"R"
              ~doc:"Clean page-mapping drop rate per step.")
      $ Arg.(
          value & opt float 0.005
          & info [ "flaky-rate" ] ~docv:"R"
              ~doc:"Flaky-memory (transient load/store fault) rate per step.")
      $ Arg.(
          value & opt int 8
          & info [ "differential" ] ~docv:"N"
              ~doc:
                "Also run $(docv) raw-vs-reorganized differential programs \
                 under transparent faults (0 to disable).")
      $ engine_flag
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
      $ jobs_flag $ checkpoint_flag $ checkpoint_every_flag 250_000
      $ resume_flag
      $ Arg.(
          value
          & opt (some string) None
          & info [ "stats-json" ] ~docv:"FILE"
              ~doc:
                "Write the resilience counters (supervision, checkpoints) as \
                 JSON to $(docv) ($(b,-) for standard output) — kept out of \
                 the main summary so checkpointed output stays comparable.")
      $ host_trace_flag)

let report_cmd =
  let report with_benchmarks json jobs inject_poison stats_json hotspots
      host_trace =
    apply_jobs jobs;
    (* one tracer lane per worker domain: the prepare span on lane 0 nests
       over the jobs worker 0 ran, and every spawned domain gets its own
       lane — the Perfetto view of the fan-out *)
    let tracer =
      make_tracer
        ~lanes:(match jobs with Some n -> max 1 n | None -> Mips_par.default_jobs ())
        host_trace
    in
    let sp = Mips_obs.Span.lane tracer 0 in
    (* the warm-up runs supervised: a failing artifact job is retried,
       quarantined and attributed, and the breaker degrades later maps to
       serial — the tables still render from whatever warmed.  On a healthy
       run this is byte-identical to the plain warm-up. *)
    let outcomes =
      Mips_obs.Span.with_ sp "prepare" (fun () ->
          Mips_analysis.Report.prepare_supervised
            ~include_heavy:with_benchmarks ~inject_poison ~tracer ())
    in
    let failed = Mips_resilience.Supervise.failures outcomes in
    Mips_obs.Span.with_ sp "render" (fun () ->
        if json then begin
          let j =
            Mips_analysis.Report.json_all ~include_heavy:with_benchmarks ()
          in
          let j =
            if hotspots then
              match j with
              | Mips_obs.Json.Obj kvs ->
                  Mips_obs.Json.Obj
                    (kvs
                    @ [ ("hotspots", Mips_analysis.Report.json_hotspots ()) ])
              | other -> other
            else j
          in
          Format.printf "%a@." Mips_obs.Json.pp j
        end
        else begin
          Mips_analysis.Report.print_all ~include_heavy:with_benchmarks
            Format.std_formatter;
          if hotspots then
            Mips_analysis.Report.hotspots Format.std_formatter
        end);
    write_host_trace ~process:"mipsc report" tracer host_trace;
    List.iter
      (fun (o : unit Mips_resilience.Supervise.outcome) ->
        Printf.eprintf "mipsc: job %s failed after %d attempt%s: %s\n"
          o.Mips_resilience.Supervise.label o.Mips_resilience.Supervise.attempts
          (if o.Mips_resilience.Supervise.attempts = 1 then "" else "s")
          (match o.Mips_resilience.Supervise.result with
          | Error e -> e
          | Ok () -> "ok"))
      failed;
    match stats_json with
    | None -> ()
    | Some dest ->
        let c = Mips_artifact.counters () in
        write_json dest
          (Mips_obs.Json.Obj
             [ ("supervision", Mips_resilience.Supervise.stats_json ());
               ( "failures",
                 Mips_obs.Json.List
                   (List.map
                      (fun (o : unit Mips_resilience.Supervise.outcome) ->
                        Mips_obs.Json.Obj
                          [ ( "label",
                              Mips_obs.Json.Str
                                o.Mips_resilience.Supervise.label );
                            ( "attempts",
                              Mips_obs.Json.Int
                                o.Mips_resilience.Supervise.attempts );
                            ( "error",
                              Mips_obs.Json.Str
                                (match o.Mips_resilience.Supervise.result with
                                | Error e -> e
                                | Ok () -> "ok") ) ])
                      failed) );
               ( "artifact_cache",
                 Mips_obs.Json.Obj
                   [ ("hits", Mips_obs.Json.Int c.Mips_artifact.hits);
                     ("misses", Mips_obs.Json.Int c.Mips_artifact.misses);
                     ("corrupt", Mips_obs.Json.Int c.Mips_artifact.corrupt) ]
               ) ])
  in
  Cmd.v
    (Cmd.info "report" ~exits:Exit_code.infos
       ~doc:"Regenerate every table and figure of the paper's evaluation.")
    Term.(
      const report
      $ Arg.(
          value & flag
          & info [ "with-benchmarks" ]
              ~doc:
                "Include the Table 11 benchmark trio in the dynamic                  reference-pattern corpus.")
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:
                "Emit every table as one JSON object (machine-readable twin \
                 of the text report).")
      $ jobs_flag
      $ Arg.(
          value & opt_all string []
          & info [ "inject-poison" ] ~docv:"LABEL"
              ~doc:
                "Prepend an always-failing warm-up job with this label \
                 (repeatable) — exercises retry, quarantine and the circuit \
                 breaker; the report still completes, degraded, with the \
                 failure attributed under $(b,--stats-json).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "stats-json" ] ~docv:"FILE"
              ~doc:
                "Write supervision outcomes, failures and artifact-cache \
                 counters as JSON to $(docv) ($(b,-) for standard output).")
      $ Arg.(
          value & flag
          & info [ "hotspots" ]
              ~doc:
                "Append guest hot-block tables (per-program profile on the \
                 fast engine) to the report; under $(b,--json) they join the \
                 object as a $(b,hotspots) key.")
      $ host_trace_flag)

let () =
  Mips_jit.install ();
  let doc = "compiler, reorganizer and simulator for the MIPS tradeoffs reproduction" in
  (* `profile FILE ...` predates `profile` growing subcommands; a cmdliner
     group resolves the token right after the group name as a subcommand,
     so route the legacy spelling through the explicit `compile` one. *)
  let argv =
    let a = Sys.argv in
    if
      Array.length a >= 3
      && a.(1) = "profile"
      && a.(2) <> "run" && a.(2) <> "compile"
      && String.length a.(2) > 0
      && a.(2).[0] <> '-'
    then
      Array.concat
        [ [| a.(0); "profile"; "compile" |]; Array.sub a 2 (Array.length a - 2) ]
    else a
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "mipsc" ~version:"1.0.0" ~exits:Exit_code.infos ~doc)
          [ run_cmd; compile_cmd; asm_cmd; levels_cmd; profile_cmd; corpus_cmd; soak_cmd;
            report_cmd ]))
