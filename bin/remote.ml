(* Client-side glue shared by the mipsd CLI and `mipsc run --remote`:
   request against a daemon socket through the idempotent retrying client,
   with every failure mode mapped to its standardized exit code
   (connect = 6, overloaded = 7, protocol = 8, timed out = 9; see
   Exit_code). *)

module Client = Mips_daemon.Client
module Frame = Mips_daemon.Frame
module Protocol = Mips_daemon.Protocol

let exit_of_reject = function
  | Protocol.Overloaded | Protocol.Quarantined | Protocol.Shutting_down ->
      Exit_code.overloaded
  | Protocol.Quota _ -> Exit_code.out_of_fuel
  | Protocol.Bad_request | Protocol.Unknown_session
  | Protocol.Too_many_tenants ->
      Exit_code.usage
  | Protocol.Garbled ->
      (* only reachable through raw Client.request: Client.call retries
         these until its budget runs out *)
      Exit_code.protocol
  | Protocol.Internal -> 1

(* One logical request under the retry policy; anything but a non-Err
   response exits the process with the matching code.  Mutating requests
   ride the Tagged envelope, so a retry after a lost response never
   double-executes. *)
let request_or_die ?policy ~prog socket req =
  match Client.call ?policy socket req with
  | Error e ->
      Printf.eprintf "%s: %s\n" prog (Client.call_error_to_string e);
      exit
        (match e.Client.failure with
        | Client.Connect _ ->
            (* the daemon was never reached: "is it running?" *)
            Exit_code.connect
        | Client.Transport _ | Client.Garbled _ -> Exit_code.timed_out)
  | Ok (Protocol.Err (reject, detail)) ->
      Printf.eprintf "%s: %s: %s\n" prog
        (Protocol.reject_to_string reject)
        detail;
      exit (exit_of_reject reject)
  | Ok resp -> resp

(* Print a remote run like a local one: guest output to stdout, the fault
   line to stderr, out-of-fuel as exit 3, otherwise the guest's own exit
   status. *)
let finish_run ~prog (r : Protocol.run_reply) =
  print_string r.Protocol.output;
  (match r.Protocol.fault with
  | Some f -> Printf.eprintf "fault: %s\n" f
  | None -> ());
  if not r.Protocol.halted then begin
    Printf.eprintf "%s: out of fuel (execution did not complete)\n" prog;
    exit Exit_code.out_of_fuel
  end;
  exit (Option.value ~default:0 r.Protocol.exit_status)
