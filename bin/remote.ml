(* Client-side glue shared by the mipsd CLI and `mipsc run --remote`:
   connect/request against a daemon socket with every failure mode mapped
   to its standardized exit code (connect = 6, overloaded = 7,
   protocol = 8; see Exit_code). *)

module Client = Mips_daemon.Client
module Frame = Mips_daemon.Frame
module Protocol = Mips_daemon.Protocol

let exit_of_reject = function
  | Protocol.Overloaded | Protocol.Quarantined | Protocol.Shutting_down ->
      Exit_code.overloaded
  | Protocol.Quota _ -> Exit_code.out_of_fuel
  | Protocol.Bad_request | Protocol.Unknown_session
  | Protocol.Too_many_tenants ->
      Exit_code.usage
  | Protocol.Internal -> 1

(* One synchronous round-trip; anything but a non-Err response exits the
   process with the matching code. *)
let request_or_die ~prog socket req =
  match Client.connect socket with
  | Error msg ->
      Printf.eprintf "%s: %s\n" prog msg;
      exit Exit_code.connect
  | Ok c -> (
      let resp =
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> Client.request c req)
      in
      match resp with
      | Error e ->
          Printf.eprintf "%s: protocol error: %s\n" prog
            (Frame.error_to_string e);
          exit Exit_code.protocol
      | Ok (Protocol.Err (reject, detail)) ->
          Printf.eprintf "%s: %s: %s\n" prog
            (Protocol.reject_to_string reject)
            detail;
          exit (exit_of_reject reject)
      | Ok resp -> resp)

(* Print a remote run like a local one: guest output to stdout, the fault
   line to stderr, out-of-fuel as exit 3, otherwise the guest's own exit
   status. *)
let finish_run ~prog (r : Protocol.run_reply) =
  print_string r.Protocol.output;
  (match r.Protocol.fault with
  | Some f -> Printf.eprintf "fault: %s\n" f
  | None -> ());
  if not r.Protocol.halted then begin
    Printf.eprintf "%s: out of fuel (execution did not complete)\n" prog;
    exit Exit_code.out_of_fuel
  end;
  exit (Option.value ~default:0 r.Protocol.exit_status)
