(* mipsd — the fault-tolerant multi-tenant simulation daemon.

   mipsd serve --socket PATH       run the daemon (SIGTERM drains cleanly)
   mipsd ping [--wait S]           liveness probe (the startup barrier)
   mipsd status                    daemon status as JSON
   mipsd run FILE                  compile + execute on the daemon
   mipsd compile FILE              compile and print the listing
   mipsd soak --session NAME       checkpointed kernel/differential soak
   mipsd report                    the full evaluation report as JSON
   mipsd collect SESSION           fetch a session's (possibly recovered) result
   mipsd load FILE                 concurrent load generator with latencies
   mipsd chaos --upstream PATH     wire-level fault-injection proxy
   mipsd fsck STATE_DIR            check and repair the session journal
   mipsd stop                      ask the daemon to shut down

   Client commands exit with the standardized codes (see --help): 6 when
   the socket cannot be reached, 7 when the daemon shed the request
   (overload, quarantine, drain), 8 on a broken frame, 3 on a quota kill
   or out-of-fuel run, 2 on a refused request.

   Sessions: `run --session`/`soak --session` checkpoint under the
   daemon's --state-dir; a daemon killed with SIGKILL mid-session and
   restarted on the same directory resumes the work and completes it
   bit-identically — `collect` then fetches the result. *)

open Cmdliner
module Server = Mips_daemon.Server
module Client = Mips_daemon.Client
module Tenants = Mips_daemon.Tenants
module Protocol = Mips_daemon.Protocol
module Frame = Mips_daemon.Frame

let read_source path =
  if Sys.file_exists path then
    In_channel.with_open_text path In_channel.input_all
  else
    match Mips_corpus.Corpus.find path with
    | e -> e.Mips_corpus.Corpus.source
    | exception Not_found ->
        Printf.eprintf "mipsd: no such file or corpus program: %s\n" path;
        exit Exit_code.usage

(* --- common flags ------------------------------------------------------------ *)

let socket_flag =
  Arg.(
    value & opt string "mipsd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket the daemon listens on (default $(b,mipsd.sock)).")

let tenant_flag =
  Arg.(
    value & opt string "default"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "Tenant to bill the request to — quotas, concurrency and the \
           circuit breaker are per tenant.")

let session_flag =
  Arg.(
    value & opt (some string) None
    & info [ "session" ] ~docv:"NAME"
        ~doc:
          "Name a resumable session: the daemon checkpoints the work under \
           its state directory and a killed-and-restarted daemon finishes \
           it bit-identically ($(b,mipsd collect) fetches the result).")

let file_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Source file or corpus program name.")

let byte_flag =
  Arg.(
    value & flag
    & info [ "byte-addressed" ]
        ~doc:"Target the byte-addressed comparison machine.")

let early_flag =
  Arg.(
    value & flag
    & info [ "early-out" ]
        ~doc:"Early-out boolean evaluation instead of set-conditionally.")

let level_flag =
  Arg.(
    value & opt int 3
    & info [ "O" ] ~docv:"N"
        ~doc:"Postpass level 0-3 (none/reorganize/pack/branch-delay).")

let input_flag =
  Arg.(
    value & opt string ""
    & info [ "input" ] ~docv:"TEXT"
        ~doc:"Input stream for the getchar monitor call.")

let engine_flag =
  Arg.(
    value
    & opt (enum [ ("ref", "ref"); ("fast", "fast"); ("jit", "jit") ]) "ref"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,ref) (default), $(b,fast) or $(b,jit) (the \
           trace compiler; bit-identical results).")

let cg_of ~byte ~early_out ~level =
  { Protocol.byte; early_out; level }

(* Retry policy for client commands: mutating requests ride the Tagged
   idempotency envelope, so resending after a wire fault (or across a
   daemon restart) is safe — the daemon answers retries from its replay
   window or its session journal instead of executing twice. *)
let policy_term =
  let make retries deadline =
    { Client.default_policy with Client.attempts = retries;
      deadline_s = deadline }
  in
  Term.(
    const make
    $ Arg.(
        value & opt int Client.default_policy.Client.attempts
        & info [ "retries" ] ~docv:"N"
            ~doc:
              "Connection/request attempts before giving up (default 10).  \
               Retries are idempotent: a request executed once is never \
               executed twice.")
    $ Arg.(
        value & opt float Client.default_policy.Client.deadline_s
        & info [ "deadline" ] ~docv:"S"
            ~doc:
              "Total wall-clock budget across all attempts (default 60).  \
               Exhaustion exits 9."))

(* --- serve ------------------------------------------------------------------- *)

let serve_cmd =
  let serve socket jobs queue max_tenants state_dir checkpoint_every
      idle_evict drain max_fuel max_output max_concurrent max_wall
      breaker_threshold breaker_cooldown replay_window test_crash
      test_crash_at_op =
    let quota =
      {
        Tenants.max_fuel;
        max_output;
        max_concurrent;
        max_wall_s = max_wall;
        breaker_threshold;
        breaker_cooldown_s = breaker_cooldown;
      }
    in
    let config =
      {
        (Server.default_config ~socket) with
        Server.jobs;
        queue;
        max_tenants;
        quota;
        state_dir;
        checkpoint_every;
        idle_evict_s = idle_evict;
        drain_s = drain;
        replay_window;
        test_crash_after_checkpoints = test_crash;
        test_crash_at_op;
      }
    in
    let t =
      try Server.start config
      with Sys_error msg ->
        Printf.eprintf "mipsd: %s\n" msg;
        exit Exit_code.usage
    in
    let stop_signal _ = Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
    Printf.eprintf "mipsd: listening on %s (%d jobs, queue %d, %d tenants%s)\n%!"
      socket jobs queue max_tenants
      (match state_dir with
      | Some d -> Printf.sprintf ", sessions in %s" d
      | None -> ", sessions disabled");
    Server.wait_stopped t;
    Printf.eprintf "mipsd: draining (deadline %.1fs)\n%!" drain;
    Server.stop ~drain:true t;
    Printf.eprintf "mipsd: stopped\n%!"
  in
  Cmd.v
    (Cmd.info "serve" ~exits:Exit_code.infos
       ~doc:
         "Run the daemon: accept concurrent compile/run/soak/report/status \
          requests over the socket, with per-tenant quotas, admission \
          control, circuit breakers and crash-recoverable sessions.  \
          SIGTERM (or $(b,mipsd stop)) drains in-flight work and exits.")
    Term.(
      const serve $ socket_flag
      $ Arg.(
          value & opt int 4
          & info [ "jobs" ; "j" ] ~docv:"N"
              ~doc:"Worker domains executing admitted requests (default 4).")
      $ Arg.(
          value & opt int 16
          & info [ "queue" ] ~docv:"N"
              ~doc:
                "Admitted requests that may wait for a worker (default 16); \
                 beyond this, load is shed with a typed $(i,overloaded) \
                 refusal, never queued into unbounded latency.")
      $ Arg.(
          value & opt int 64
          & info [ "max-tenants" ] ~docv:"K"
              ~doc:"Tenant registry bound (default 64).")
      $ Arg.(
          value & opt (some string) None
          & info [ "state-dir" ] ~docv:"DIR"
              ~doc:
                "Session journal and checkpoint directory.  A daemon killed \
                 (even with SIGKILL) and restarted on the same $(docv) \
                 resumes every in-flight session and completes it \
                 bit-identically.  Omitted: sessions are refused.")
      $ Arg.(
          value & opt int 50_000
          & info [ "checkpoint-every" ] ~docv:"STEPS"
              ~doc:
                "Machine steps between session checkpoints (default 50000). \
                 Slicing never changes results.")
      $ Arg.(
          value & opt float 300.
          & info [ "idle-evict" ] ~docv:"S"
              ~doc:
                "Seconds a finished session may sit uncollected in memory \
                 before eviction (default 300; journalled results remain \
                 collectable from disk).")
      $ Arg.(
          value & opt float 10.
          & info [ "drain" ] ~docv:"S"
              ~doc:"Shutdown drain deadline in seconds (default 10).")
      $ Arg.(
          value & opt int Tenants.default_quota.Tenants.max_fuel
          & info [ "max-fuel" ] ~docv:"STEPS"
              ~doc:
                "Per-request machine-step quota (default 500000000).  A \
                 request asking for more is clamped and killed with a typed \
                 $(i,quota) reason when the clamp binds.")
      $ Arg.(
          value & opt int Tenants.default_quota.Tenants.max_output
          & info [ "max-output" ] ~docv:"BYTES"
              ~doc:
                "Per-request output/memory quota in bytes (default 4000000), \
                 enforced during execution by a watchdog.")
      $ Arg.(
          value & opt int Tenants.default_quota.Tenants.max_concurrent
          & info [ "max-concurrent" ] ~docv:"N"
              ~doc:"In-flight requests per tenant (default 4).")
      $ Arg.(
          value & opt float Tenants.default_quota.Tenants.max_wall_s
          & info [ "max-wall" ] ~docv:"S"
              ~doc:"Wall-clock watchdog per request in seconds (default 120).")
      $ Arg.(
          value & opt int Tenants.default_quota.Tenants.breaker_threshold
          & info [ "breaker-threshold" ] ~docv:"N"
              ~doc:
                "Consecutive failures that open a tenant's circuit breaker \
                 (default 5) — the tenant is then quarantined without \
                 degrading its neighbors.")
      $ Arg.(
          value & opt float Tenants.default_quota.Tenants.breaker_cooldown_s
          & info [ "breaker-cooldown" ] ~docv:"S"
              ~doc:
                "Seconds an open breaker refuses before letting one probe \
                 through (default 30).")
      $ Arg.(
          value & opt int 128
          & info [ "replay-window" ] ~docv:"N"
              ~doc:
                "Recorded responses kept per tenant for request-ID \
                 deduplication (default 128) — what makes client retries \
                 idempotent.")
      $ Arg.(
          value & opt (some int) None
          & info [ "test-crash-after" ] ~docv:"N"
              ~doc:
                "Test hook: abort a session's job after $(docv) checkpoint \
                 writes — the in-process stand-in for SIGKILL used by the \
                 crash-recovery tests.")
      $ Arg.(
          value & opt (some int) None
          & info [ "test-crash-at-op" ] ~docv:"N"
              ~doc:
                "Test hook: simulate a kill immediately before journal \
                 operation $(docv) — the crash-point harness sweeps this \
                 to visit every journal write boundary.")
      )

(* --- client commands ---------------------------------------------------------- *)

let ping_cmd =
  let ping socket policy wait =
    match wait with
    | Some timeout_s -> (
        match Client.wait_ready ~timeout_s socket with
        | Ok () -> print_endline "pong"
        | Error (`Timed_out elapsed) ->
            Printf.eprintf "mipsd: no daemon on %s after %.1fs\n" socket
              elapsed;
            exit Exit_code.connect)
    | None -> (
        match
          Remote.request_or_die ~policy ~prog:"mipsd" socket Protocol.Ping
        with
        | Protocol.Pong -> print_endline "pong"
        | _ ->
            Printf.eprintf "mipsd: unexpected response to ping\n";
            exit Exit_code.protocol)
  in
  Cmd.v
    (Cmd.info "ping" ~exits:Exit_code.infos
       ~doc:
         "Probe the daemon; with $(b,--wait) poll until it answers or the \
          timeout expires (the startup barrier for scripts).")
    Term.(
      const ping $ socket_flag $ policy_term
      $ Arg.(
          value
          & opt ~vopt:(Some 10.) (some float) None
          & info [ "wait" ] ~docv:"S"
              ~doc:"Poll for up to $(docv) seconds (default 10)."))

let status_cmd =
  let status socket policy =
    match
      Remote.request_or_die ~policy ~prog:"mipsd" socket Protocol.Status
    with
    | Protocol.Status_r json -> print_endline json
    | _ ->
        Printf.eprintf "mipsd: unexpected response to status\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "status" ~exits:Exit_code.infos
       ~doc:
         "Print the daemon's status as JSON: admission counters, per-tenant \
          breaker states, session table and latency histograms.")
    Term.(const status $ socket_flag $ policy_term)

let run_cmd =
  let run socket policy tenant session file byte early_out level input engine
      fuel =
    let req =
      Protocol.Run
        {
          tenant;
          session;
          source = read_source file;
          cg = cg_of ~byte ~early_out ~level;
          input;
          fuel;
          engine;
        }
    in
    match Remote.request_or_die ~policy ~prog:"mipsd" socket req with
    | Protocol.Ran r -> Remote.finish_run ~prog:"mipsd" r
    | _ ->
        Printf.eprintf "mipsd: unexpected response to run\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "run" ~exits:Exit_code.infos
       ~doc:
         "Compile and execute a program on the daemon.  Guest output goes \
          to standard output and the guest's exit status becomes the exit \
          code, exactly like a local $(b,mipsc run).")
    Term.(
      const run $ socket_flag $ policy_term $ tenant_flag $ session_flag
      $ file_arg
      $ byte_flag $ early_flag $ level_flag $ input_flag $ engine_flag
      $ Arg.(
          value & opt int 500_000_000
          & info [ "fuel" ] ~docv:"STEPS"
              ~doc:
                "Requested step budget (default 500000000; clamped to the \
                 tenant's quota)."))

let compile_cmd =
  let compile socket policy tenant file byte early_out level =
    let req =
      Protocol.Compile
        { tenant; source = read_source file;
          cg = cg_of ~byte ~early_out ~level }
    in
    match Remote.request_or_die ~policy ~prog:"mipsd" socket req with
    | Protocol.Listing s -> print_string s
    | _ ->
        Printf.eprintf "mipsd: unexpected response to compile\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "compile" ~exits:Exit_code.infos
       ~doc:"Compile on the daemon and print the final machine listing.")
    Term.(
      const compile $ socket_flag $ policy_term $ tenant_flag $ file_arg
      $ byte_flag
      $ early_flag $ level_flag)

let soak_cmd =
  let soak socket policy tenant session seed steps programs segments
      differential engine =
    let req =
      Protocol.Soak
        { tenant; session; seed; steps; programs; segments; differential;
          engine }
    in
    match Remote.request_or_die ~policy ~prog:"mipsd" socket req with
    | Protocol.Soaked json -> print_endline json
    | _ ->
        Printf.eprintf "mipsd: unexpected response to soak\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "soak" ~exits:Exit_code.infos
       ~doc:
         "Run the seeded fault-injection soak on the daemon and print the \
          same JSON $(b,mipsc soak --json) prints (byte-identical at equal \
          parameters).  With $(b,--session) the run checkpoints and \
          survives a daemon kill.")
    Term.(
      const soak $ socket_flag $ policy_term $ tenant_flag $ session_flag
      $ Arg.(
          value & opt int 1
          & info [ "seed" ] ~docv:"N"
              ~doc:"Master seed for programs and fault plan.")
      $ Arg.(
          value & opt int 2_000_000
          & info [ "steps" ] ~docv:"K"
              ~doc:"Kernel-run fuel in machine steps.")
      $ Arg.(
          value & opt int 8
          & info [ "programs" ] ~docv:"N"
              ~doc:"Generated processes to spawn.")
      $ Arg.(
          value & opt int 48
          & info [ "segments" ] ~docv:"N"
              ~doc:"Size of each generated program.")
      $ Arg.(
          value & opt int 8
          & info [ "differential" ] ~docv:"N"
              ~doc:
                "Raw-vs-reorganized differential programs under transparent \
                 faults (0 to disable).")
      $ engine_flag)

let report_cmd =
  let report socket policy tenant =
    match
      Remote.request_or_die ~policy ~prog:"mipsd" socket
        (Protocol.Report { tenant })
    with
    | Protocol.Reported json -> print_string json
    | _ ->
        Printf.eprintf "mipsd: unexpected response to report\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "report" ~exits:Exit_code.infos
       ~doc:
         "Regenerate the paper evaluation on the daemon and print the same \
          JSON $(b,mipsc report --json) prints.")
    Term.(const report $ socket_flag $ policy_term $ tenant_flag)

let collect_cmd =
  let collect socket policy tenant session =
    let req = Protocol.Collect { tenant; session } in
    match Remote.request_or_die ~policy ~prog:"mipsd" socket req with
    | Protocol.Ran r -> Remote.finish_run ~prog:"mipsd" r
    | Protocol.Soaked json -> print_endline json
    | Protocol.Listing s | Protocol.Reported s -> print_string s
    | _ ->
        Printf.eprintf "mipsd: unexpected response to collect\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "collect" ~exits:Exit_code.infos
       ~doc:
         "Fetch a session's result, blocking while it is still running.  \
          Works across daemon restarts: a recovered session's result is \
          identical to an uninterrupted one.")
    Term.(
      const collect $ socket_flag $ policy_term $ tenant_flag
      $ Arg.(
          required & pos 0 (some string) None
          & info [] ~docv:"SESSION" ~doc:"Session name."))

let stop_cmd =
  let stop socket policy =
    match
      Remote.request_or_die ~policy ~prog:"mipsd" socket Protocol.Shutdown
    with
    | Protocol.Bye -> ()
    | _ ->
        Printf.eprintf "mipsd: unexpected response to shutdown\n";
        exit Exit_code.protocol
  in
  Cmd.v
    (Cmd.info "stop" ~exits:Exit_code.infos
       ~doc:
         "Ask the daemon to shut down: new work is refused with a typed \
          $(i,shutting-down) answer and in-flight work drains under the \
          deadline.")
    Term.(const stop $ socket_flag $ policy_term)

(* --- chaos proxy --------------------------------------------------------------- *)

let chaos_cmd =
  let chaos listen upstream seed rate stall =
    let t =
      try
        Mips_daemon.Chaos.start
          { Mips_daemon.Chaos.listen; upstream; seed; rate; stall_s = stall }
      with Sys_error msg ->
        Printf.eprintf "mipsd: %s\n" msg;
        exit Exit_code.usage
    in
    let stop = ref false in
    let stop_signal _ = stop := true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
    Printf.eprintf
      "mipsd: chaos proxy %s -> %s (seed %d, rate %.3f, stall %.2fs)\n%!"
      listen upstream seed rate stall;
    while not !stop do
      Thread.delay 0.1
    done;
    let c = Mips_daemon.Chaos.counts t in
    Mips_daemon.Chaos.stop t;
    print_endline (Mips_obs.Json.to_string (Mips_daemon.Chaos.counts_json c))
  in
  Cmd.v
    (Cmd.info "chaos" ~exits:Exit_code.infos
       ~doc:
         "Wire-level fault-injection proxy: relay frames between clients \
          and a daemon, damaging a seeded fraction in flight (bit flips, \
          truncations, mid-frame stalls, duplicate deliveries, abrupt \
          disconnects).  A client retrying through the proxy must finish \
          byte-identically to a clean run or fail typed — never hang, \
          never double-execute.  SIGTERM prints the injection counts as \
          JSON and exits.")
    Term.(
      const chaos
      $ Arg.(
          value & opt string "chaos.sock"
          & info [ "listen" ] ~docv:"PATH"
              ~doc:"Socket the proxy serves (default $(b,chaos.sock)).")
      $ Arg.(
          value & opt string "mipsd.sock"
          & info [ "upstream" ] ~docv:"PATH"
              ~doc:"The real daemon's socket (default $(b,mipsd.sock)).")
      $ Arg.(
          value & opt int 1
          & info [ "seed" ] ~docv:"N"
              ~doc:"Fault-schedule seed (default 1): same seed, same faults.")
      $ Arg.(
          value & opt float 0.01
          & info [ "rate" ] ~docv:"P"
              ~doc:"Per-frame fault probability in both directions \
                    (default 0.01).")
      $ Arg.(
          value & opt float 0.05
          & info [ "stall" ] ~docv:"S"
              ~doc:"Mid-frame stall duration in seconds (default 0.05)."))

(* --- journal fsck -------------------------------------------------------------- *)

let fsck_cmd =
  let fsck dir json =
    match Mips_daemon.Journal.fsck dir with
    | Error msg ->
        Printf.eprintf "mipsd: %s\n" msg;
        exit Exit_code.usage
    | Ok r ->
        if json then
          print_endline
            (Mips_obs.Json.to_string (Mips_daemon.Journal.report_json r))
        else Format.printf "%a@." Mips_daemon.Journal.pp_report r;
        if r.Mips_daemon.Journal.quarantined > 0 then
          exit Exit_code.quarantined
  in
  Cmd.v
    (Cmd.info "fsck" ~exits:Exit_code.infos
       ~doc:
         "Check and repair a daemon state directory after torn writes: \
          stale working files of finished sessions and corrupt \
          checkpoints of recoverable ones are removed, unrecoverable \
          sessions are moved into $(b,quarantine/).  Exits 10 when \
          anything was quarantined, 0 otherwise.  The daemon runs the \
          same repair on startup, so fsck is for inspection and scripted \
          health checks.")
    Term.(
      const fsck
      $ Arg.(
          required & pos 0 (some string) None
          & info [] ~docv:"STATE_DIR"
              ~doc:"The daemon's --state-dir to check.")
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Print the report as JSON."))

(* --- load generator ------------------------------------------------------------ *)

let load_cmd =
  let load socket file clients requests tenant_prefix fuel =
    let source = read_source file in
    let metrics = Mips_obs.Metrics.create () in
    let mlock = Mutex.create () in
    let ok = Atomic.make 0 and shed = Atomic.make 0 and failed = Atomic.make 0 in
    let client i () =
      let tenant = Printf.sprintf "%s-%d" tenant_prefix i in
      for _ = 1 to requests do
        let t0 = Unix.gettimeofday () in
        let outcome =
          match Client.connect socket with
          | Error _ -> `Failed
          | Ok c -> (
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              match
                Client.request c
                  (Protocol.Run
                     { tenant; session = None; source;
                       cg = Protocol.default_codegen; input = ""; fuel;
                       engine = "ref" })
              with
              | Ok (Protocol.Ran _) -> `Ok
              | Ok (Protocol.Err ((Protocol.Overloaded | Protocol.Quarantined
                                  | Protocol.Quota _ | Protocol.Shutting_down), _)) ->
                  `Shed
              | Ok _ | Error _ -> `Failed)
        in
        let dt = Unix.gettimeofday () -. t0 in
        (match outcome with
        | `Ok ->
            Atomic.incr ok;
            Mutex.lock mlock;
            Mips_obs.Metrics.observe metrics "latency" dt;
            Mutex.unlock mlock
        | `Shed -> Atomic.incr shed
        | `Failed -> Atomic.incr failed)
      done
    in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let h = Mips_obs.Metrics.histogram metrics "latency" in
    let ms f = Mips_obs.Json.Float (f *. 1000.) in
    print_endline
      (Mips_obs.Json.to_string
         (Mips_obs.Json.Obj
            [ ("clients", Mips_obs.Json.Int clients);
              ("requests_per_client", Mips_obs.Json.Int requests);
              ("ok", Mips_obs.Json.Int (Atomic.get ok));
              ("shed", Mips_obs.Json.Int (Atomic.get shed));
              ("failed", Mips_obs.Json.Int (Atomic.get failed));
              ( "latency_ms",
                match h with
                | None -> Mips_obs.Json.Null
                | Some h ->
                    Mips_obs.Json.Obj
                      [ ("p50", ms h.Mips_obs.Metrics.p50);
                        ("p90", ms h.Mips_obs.Metrics.p90);
                        ("p99", ms h.Mips_obs.Metrics.p99);
                        ("max", ms h.Mips_obs.Metrics.max_v) ] ) ]));
    if Atomic.get failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "load" ~exits:Exit_code.infos
       ~doc:
         "Concurrent load generator: $(b,--clients) threads each issue \
          $(b,--requests) run requests (one tenant per client) and the \
          latency distribution is printed as JSON.  Shed responses \
          (overload/quota/quarantine) are counted, not errors — exits \
          non-zero only on connection or protocol failures.")
    Term.(
      const load $ socket_flag $ file_arg
      $ Arg.(
          value & opt int 8
          & info [ "clients" ] ~docv:"N" ~doc:"Concurrent clients (default 8).")
      $ Arg.(
          value & opt int 20
          & info [ "requests" ] ~docv:"N"
              ~doc:"Requests per client (default 20).")
      $ Arg.(
          value & opt string "load"
          & info [ "tenant-prefix" ] ~docv:"NAME"
              ~doc:"Tenants are named $(docv)-0 .. $(docv)-(N-1).")
      $ Arg.(
          value & opt int 500_000_000
          & info [ "fuel" ] ~docv:"STEPS" ~doc:"Step budget per request."))

let () =
  let doc = "fault-tolerant multi-tenant simulation daemon" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "mipsd" ~version:"1.0.0" ~exits:Exit_code.infos ~doc)
          [ serve_cmd; ping_cmd; status_cmd; run_cmd; compile_cmd; soak_cmd;
            report_cmd; collect_cmd; stop_cmd; load_cmd; chaos_cmd;
            fsck_cmd ]))
