(* One place for every mipsc exit status, so scripts (and the CI harness)
   can tell failure modes apart.  [Cmdliner.Cmd.Exit.info] entries make the
   codes show up in every subcommand's --help. *)

let ok = Cmdliner.Cmd.Exit.ok (* 0 *)
let usage = 2 (* bad arguments, missing or unwritable file *)
let out_of_fuel = 3 (* the program did not halt within the fuel budget *)
let divergence = 4 (* a soak variant diverged from the reference *)
let checkpoint = 5 (* a checkpoint could not be read, or does not match *)
let connect = 6 (* the mipsd socket could not be reached *)
let overloaded = 7 (* the daemon shed the request (overload/quarantine/drain) *)
let protocol = 8 (* a malformed, truncated or version-skewed frame *)
let timed_out = 9 (* the retry budget (deadline or attempts) was exhausted *)
let quarantined = 10 (* fsck moved unrecoverable sessions into quarantine/ *)

let infos =
  let open Cmdliner.Cmd.Exit in
  [
    info ok ~doc:"on success.";
    info usage
      ~doc:"on a usage error: bad arguments, a missing input file, or an \
            unwritable output file.";
    info out_of_fuel ~doc:"when the program did not halt within the fuel \
                           budget.";
    info divergence
      ~doc:"when a soak variant diverged from the reference machine.";
    info checkpoint
      ~doc:"when a checkpoint file cannot be read (truncated, corrupt, \
            version skew) or does not match the requested run.";
    info connect
      ~doc:"when the mipsd daemon socket cannot be reached (daemon not \
            running, wrong path, or a dead socket file).";
    info overloaded
      ~doc:"when the daemon refused the request without running it: \
            admission queue full (load shed), the tenant's circuit breaker \
            open, or the daemon draining for shutdown.";
    info protocol
      ~doc:"when the daemon connection broke protocol: a malformed, \
            truncated, corrupt or version-skewed frame.";
    info timed_out
      ~doc:"when the retrying client exhausted its deadline or attempt \
            budget without ever receiving a response.";
    info quarantined
      ~doc:"when fsck found unrecoverable sessions and moved them into \
            the quarantine/ directory.";
  ]
