(* One place for every mipsc exit status, so scripts (and the CI harness)
   can tell failure modes apart.  [Cmdliner.Cmd.Exit.info] entries make the
   codes show up in every subcommand's --help. *)

let ok = Cmdliner.Cmd.Exit.ok (* 0 *)
let usage = 2 (* bad arguments, missing or unwritable file *)
let out_of_fuel = 3 (* the program did not halt within the fuel budget *)
let divergence = 4 (* a soak variant diverged from the reference *)
let checkpoint = 5 (* a checkpoint could not be read, or does not match *)

let infos =
  let open Cmdliner.Cmd.Exit in
  [
    info ok ~doc:"on success.";
    info usage
      ~doc:"on a usage error: bad arguments, a missing input file, or an \
            unwritable output file.";
    info out_of_fuel ~doc:"when the program did not halt within the fuel \
                           budget.";
    info divergence
      ~doc:"when a soak variant diverged from the reference machine.";
    info checkpoint
      ~doc:"when a checkpoint file cannot be read (truncated, corrupt, \
            version skew) or does not match the requested run.";
  ]
