(** Trace-JIT execution engine ([--engine=jit]).

    A third engine over the same machine state: per-PC hotness counters
    detect hot basic blocks; at {!hot_threshold} executions the
    straight-line superblock from that entry (through at most one
    terminating branch and its delay slots, up to {!max_trace_words} words)
    is compiled into a single fused closure.  PC and delayed-load latch
    bookkeeping are hoisted out of the block body, statistics are applied
    once per block from precomputed sums, cmp+branch and load+use pairs are
    fused into single fragments, and a conditional branch back to its own
    entry makes the loop spin inside the closure.

    Traces exist only for the default machine configuration (no interlocks,
    word-addressed) executing in kernel mode with mapping off; everything
    else — other configurations, user mode, tracing, profiling, fault
    injection, pending interrupts, traps, and cold code — runs through
    {!Mips_machine.Cpu.step_fast}, so the jit engine degrades to the fast
    engine rather than diverging.  The trace cache is invalidated through
    the {!Mips_machine.Cpu.write_code} path (self-modifying code) and reset
    on {!Mips_machine.Cpu.load_program}.

    The equivalence contract is the fast engine's, unchanged: bit-identical
    architectural state and {!Mips_machine.Stats} versus the reference
    interpreter, for any program, any fault plan, any fuel. *)

val hot_threshold : int
(** Executions of an entry pc before its block is compiled (32). *)

val max_trace_words : int
(** Upper bound on a trace's straight-line length in words (64). *)

val run :
  ?fuel:int ->
  Mips_machine.Cpu.t ->
  (Mips_machine.Cpu.t -> Mips_machine.Cause.t -> [ `Resume | `Halt ]) -> bool
(** The whole-run jit dispatch loop; same contract and fuel semantics as
    {!Mips_machine.Cpu.run} (each simulated word costs 1 fuel, a
    dispatching step costs 1).  The steady-state loop and the compiled
    trace closures allocate no minor words per simulated instruction. *)

val install : unit -> unit
(** Register {!run} as the [Cpu.Jit] engine
    ({!Mips_machine.Cpu.set_jit_runner}).  Idempotent; call once at
    program start before requesting [--engine=jit]. *)
