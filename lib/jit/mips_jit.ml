(* Trace-JIT execution engine: hot straight-line superblocks compiled into
   single fused closures.

   The fast engine (Cpu.step_fast) pays a fixed per-word toll: the run-loop
   match, the quiet-path flag tests, the fetch translation and bounds check,
   the closure-cache load, nine statistics stores and the three-deep PC
   chain update.  A trace hoists all of that out of the block body: per-PC
   hotness counters detect a hot entry, the straight-line word sequence from
   there (through at most one terminating branch and its delay slots) is
   compiled into one closure, and the dispatch loop runs whole blocks per
   iteration.  Inside the body only the semantic work remains — statistics
   are applied once per block from precomputed sums, the PC chain is written
   only at exits, the delayed-load latch travels through compile-time
   tracking instead of per-word option cells, and the two profitable
   adjacent pairs (cmp+branch, load+use) are fused into single fragments.
   Loop-back edges (a conditional branch targeting its own trace entry) are
   specialized so tight loops spin inside the closure without touching the
   dispatch loop at all.

   The reference interpreter remains the oracle: a trace must leave every
   architecturally visible artifact — registers, memory, PC chain, EPCs,
   and the full Stats record including the float weighted-cycle cell —
   bit-identical to the same words executed by Cpu.step.  Two consequences
   shape the design:

   - Traces exist only for the default machine (no interlocks, word
     addressed) running in kernel mode with mapping off.  There every word
     weighs exactly 1.0 cycle, so batched statistics stay bit-exact
     (integer-valued double sums are associative), and fetch translation is
     the identity, so straight-line execution is really straight-line.
     Every other configuration or machine state falls back to step_fast.
   - A fault inside a trace must dispatch exactly as if the words had run
     one by one.  Fragments record their body index in [jit_k] before any
     faultable compute; the recovery path then applies the statistics of
     the completed prefix, rebuilds the PC chain at the faulting word and
     rematerializes the in-flight delayed load before re-raising into the
     dispatch loop.

   The dispatch loop and the compiled closures allocate nothing per
   executed instruction: recursion replaces ref cells, scalar scratch
   fields replace tuples, and the only allocations happen at compile time
   (once per hot block) or on the fault path. *)

open Mips_isa
open Mips_machine
open Cpu

let hot_threshold = 32
let max_trace_words = 128
let min_trace_words = 3

(* ------------------------------------------------------------------ *)
(* Trace scanning *)

type tword = { tw_e : Predecode.entry; tw_note : Note.t }

(* A word the trace body may contain: no branch piece, no trap, nothing
   that could change privilege/mapping mid-trace (Wr_special, Rfe), and no
   byte-sized access (always-faulting on the word machine). *)
let pieces_ok (e : Predecode.entry) =
  (not e.Predecode.is_trap)
  && (match e.Predecode.alu with
     | Some (Alu.Wr_special _ | Alu.Rfe) -> false
     | Some _ | None -> true)
  && (match e.Predecode.mem with
     | Some (Mem.Load (Mem.W8, _, _) | Mem.Store (Mem.W8, _, _)) -> false
     | Some _ | None -> true)

let plain_ok (e : Predecode.entry) = e.Predecode.branch = None && pieces_ok e

(* Control role of a body word.  [CJump (tgt, link)] is an inlined
   unconditional direct jump (link register, -1 for plain [Jump]);
   [CGuard tgt] is a speculated conditional branch compiled into a guard
   (predicted not-taken, side-exits to [tgt] when taken); [CGSlot] is the
   delay slot carrying a guard's side-exit check. *)
type ctl = CNone | CJump of int * int | CGuard of int | CGSlot

(* A body word as scanned: its guest pc, the chain cells [p1]/[p2] live
   while it executes ([p0] is always its own pc), and its control role.
   Away from branch shadows the chain is sequential and [sw_c1]/[sw_c2]
   are just [pc+1]/[pc+2]; a guard's slot holds the *not-taken* chain and
   the recovery path substitutes the taken one from the live [sc_taken]. *)
type sword = {
  sw : tword;
  sw_pc : int;
  sw_c1 : int;
  sw_c2 : int;
  sw_ctl : ctl;
}

(* Raised by a guard's delay-slot check when the speculated branch was
   taken: unwinds out of the trace body into the side-exit path.  Carries
   no payload (the guard index travels in [jit_k]), so raising does not
   allocate. *)
exception Guard_exit

(* Superblock scan from [entry_pc].  Straight-line words accumulate as
   before, but an unconditional *direct* jump ([Jump]/[Jal]) whose target
   is static does not end the trace: the jump word and its delay slot are
   emitted into the body and scanning continues at the target — the trace
   crosses the control transfer at compile time, so calls and jump-stitched
   loops run as one block.  Conditional branches and indirect jumps still
   terminate (their successor is dynamic), as does a jump back to the entry
   itself, which is more profitable as the spin-loop terminator.

   Returns [(body, term, cont)]: the body words, the optional terminating
   branch with its delay slots, and — [term = Some] — the terminator's pc,
   or — [term = None] — the pc execution falls to when the trace ends
   without one (sequential context there by construction). *)
let scan t entry_pc =
  let imem = t.imem and notes = t.notes in
  let limit = t.cfg.imem_words in
  let rec go pc i acc =
    if i >= max_trace_words || pc >= limit then (List.rev acc, None, pc)
    else
      let e = Predecode.lower imem.(pc) in
      if Predecode.ends_block e then
        if e.Predecode.is_trap || not (pieces_ok e) then (List.rev acc, None, pc)
        else begin
          let delay =
            match Predecode.branch_delay e with Some d -> d | None -> 0
          in
          (* every delay slot must itself be a plain eligible word *)
          let rec slots j acc' =
            if j > delay then Some (List.rev acc')
            else
              let spc = pc + j in
              if spc >= limit then None
              else
                let se = Predecode.lower imem.(spc) in
                if plain_ok se then slots (j + 1) (spc :: acc') else None
          in
          match slots 1 [] with
          | None -> (List.rev acc, None, pc)
          | Some sl -> (
              let decision =
                match e.Predecode.branch with
                | Some (Branch.Jump tgt) -> `Jump (tgt, -1)
                | Some (Branch.Jal (tgt, link)) -> `Jump (tgt, Reg.to_int link)
                | Some (Branch.Cbr (c, _, _, tgt))
                  when Cond.equal c Cond.Always ->
                    `Jump (tgt, -1)
                | Some (Branch.Cbr (_, _, _, tgt))
                  when e.Predecode.alu = None && e.Predecode.mem = None
                       && delay = 1 && tgt >= 0 && tgt < limit && tgt > pc
                       && i + 2 < max_trace_words
                       && Bytes.unsafe_get t.jit_nospec pc = '\000' ->
                    (* forward conditional: speculate not-taken and keep
                       scanning the fall-through; backward conditionals
                       (loop edges) stay terminators so the spin-loop
                       specialization applies *)
                    `Guard tgt
                | _ -> `Term
              in
              match decision with
              | `Jump (tgt, link)
                when i + delay < max_trace_words
                     && tgt >= 0 && tgt < limit && tgt <> entry_pc ->
                  (* inline: jump word in sequential context, slots in the
                     taken shadow — [q s k] is chain cell [k] while slot
                     [s] executes (the next [delay - s] sequential pcs,
                     then the target). *)
                  let jw =
                    { sw = { tw_e = e; tw_note = notes.(pc) };
                      sw_pc = pc; sw_c1 = pc + 1; sw_c2 = pc + 2;
                      sw_ctl = CJump (tgt, link) }
                  in
                  let q s k =
                    if s + k <= delay then pc + s + k else tgt + (s + k - delay - 1)
                  in
                  let sws =
                    List.mapi
                      (fun idx spc ->
                        let s = idx + 1 in
                        { sw = { tw_e = Predecode.lower imem.(spc);
                                 tw_note = notes.(spc) };
                          sw_pc = spc; sw_c1 = q s 1; sw_c2 = q s 2;
                          sw_ctl = CNone })
                      sl
                  in
                  go tgt (i + 1 + delay) (List.rev_append (jw :: sws) acc)
              | `Guard tgt ->
                  (* guard word in sequential context; its single delay
                     slot carries the side-exit check and records the
                     not-taken chain (recovery substitutes the taken one
                     from the live [sc_taken]) *)
                  let gw =
                    { sw = { tw_e = e; tw_note = notes.(pc) };
                      sw_pc = pc; sw_c1 = pc + 1; sw_c2 = pc + 2;
                      sw_ctl = CGuard tgt }
                  in
                  let spc = List.hd sl in
                  let slw =
                    { sw = { tw_e = Predecode.lower imem.(spc);
                             tw_note = notes.(spc) };
                      sw_pc = spc; sw_c1 = spc + 1; sw_c2 = spc + 2;
                      sw_ctl = CGSlot }
                  in
                  go (pc + 2) (i + 2) (slw :: gw :: acc)
              | _ ->
                  let term_slots =
                    List.map
                      (fun spc ->
                        { tw_e = Predecode.lower imem.(spc);
                          tw_note = notes.(spc) })
                      sl
                  in
                  (List.rev acc, Some ({ tw_e = e; tw_note = notes.(pc) }, term_slots), pc))
        end
      else if plain_ok e then
        go (pc + 1) (i + 1)
          ({ sw = { tw_e = e; tw_note = notes.(pc) };
             sw_pc = pc; sw_c1 = pc + 1; sw_c2 = pc + 2; sw_ctl = CNone }
          :: acc)
      else (List.rev acc, None, pc)
  in
  go entry_pc 0 []

(* ------------------------------------------------------------------ *)
(* Flat compute closures.

   [Cpu.compile_alu] and [Cpu.compile_mem] assemble their closures out of
   nested operand closures — with the fragment's own call that is three or
   four indirect calls per word.  Inside a trace the machine state is
   pinned (kernel mode, mapping off, word addressing), so the common
   shapes flatten into a single closure over direct register-file reads:
   operands become a compile-time (is-register, payload) pair tested with
   one predictable conditional, address translation is the identity, and
   the bounds check inlines to one comparison.  The flattened closures are
   drop-in replacements for the [Cpu.ax]/[Cpu.mx]/[Cpu.bx] shapes, so the
   fragment generators below are oblivious to which compiler produced
   them.

   [fpure] additionally marks ALU computes that cannot raise under the
   pinned state; a word whose every piece is pure skips the [jit_k]
   recovery-bookkeeping store. *)

let ovf t = if t.sr.Surprise.ovf_enable then raise (Fault (Cause.Overflow, 0))
let op_rd = function
  | Operand.R r -> (true, Reg.to_int r)
  | Operand.I4 n -> (false, n)

(* Wrapping arithmetic can only trap through the overflow enable; division
   traps on a zero divisor regardless.  Everything else is total. *)
let binop_pure = function
  | Alu.Add | Alu.Sub | Alu.Rsub | Alu.Mul | Alu.Div | Alu.Rem -> false
  | Alu.And | Alu.Or | Alu.Xor | Alu.Sll | Alu.Srl | Alu.Sra -> true

let flat_binop op x y =
  let xk, xv = op_rd x and yk, yv = op_rd y in
  let[@inline] rda t = if xk then Array.unsafe_get t.regs xv else xv in
  let[@inline] rdb t = if yk then Array.unsafe_get t.regs yv else yv in
  match op with
  | Alu.Add ->
      fun t ->
        let a = rda t and b = rdb t in
        if Word32.add_overflows a b then ovf t;
        Word32.add a b
  | Alu.Sub ->
      fun t ->
        let a = rda t and b = rdb t in
        if Word32.sub_overflows a b then ovf t;
        Word32.sub a b
  | Alu.Rsub ->
      fun t ->
        let a = rda t and b = rdb t in
        if Word32.sub_overflows b a then ovf t;
        Word32.sub b a
  | Alu.And -> fun t -> Word32.logand (rda t) (rdb t)
  | Alu.Or -> fun t -> Word32.logor (rda t) (rdb t)
  | Alu.Xor -> fun t -> Word32.logxor (rda t) (rdb t)
  | Alu.Sll -> fun t -> Word32.shift_left (rda t) (rdb t)
  | Alu.Srl -> fun t -> Word32.shift_right_logical (rda t) (rdb t)
  | Alu.Sra -> fun t -> Word32.shift_right_arith (rda t) (rdb t)
  | Alu.Mul ->
      fun t ->
        let a = rda t and b = rdb t in
        if Word32.mul_overflows a b then ovf t;
        Word32.mul a b
  | Alu.Div ->
      fun t ->
        let a = rda t and b = rdb t in
        if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.sdiv a b
  | Alu.Rem ->
      fun t ->
        let a = rda t and b = rdb t in
        if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.srem a b

(* flat ALU piece: the [Cpu.ax] shape plus the purity bit *)
let flat_alu a =
  match a with
  | Alu.Binop (op, x, y, d) ->
      (AXreg (Reg.to_int d, flat_binop op x y), binop_pure op)
  | Alu.Setc (c, x, y, d) ->
      let xk, xv = op_rd x and yk, yv = op_rd y in
      ( AXreg
          ( Reg.to_int d,
            fun t ->
              let a = if xk then Array.unsafe_get t.regs xv else xv
              and b = if yk then Array.unsafe_get t.regs yv else yv in
              if Cond.eval c a b then 1 else 0 ),
        true )
  | Alu.Mov (Operand.R x, d) ->
      let x = Reg.to_int x in
      (AXreg (Reg.to_int d, fun t -> Array.unsafe_get t.regs x), true)
  | Alu.Mov (Operand.I4 n, d) -> (AXreg (Reg.to_int d, fun _ -> n), true)
  | Alu.Movi8 (c, d) -> (AXreg (Reg.to_int d, fun _ -> c), true)
  | Alu.Xbyte (p, w, d) ->
      let pk, pv = op_rd p and wk, wv = op_rd w in
      ( AXreg
          ( Reg.to_int d,
            fun t ->
              let p = if pk then Array.unsafe_get t.regs pv else pv
              and w = if wk then Array.unsafe_get t.regs wv else wv in
              Word32.get_byte w (p land 3) ),
        true )
  | Alu.Ibyte (s, d) ->
      let sk, sv = op_rd s and d = Reg.to_int d in
      ( AXreg
          ( d,
            fun t ->
              let s = if sk then Array.unsafe_get t.regs sv else sv in
              Word32.set_byte (Array.unsafe_get t.regs d) (t.byte_select land 3) s ),
        true )
  | Alu.Rd_special _ | Alu.Wr_special _ | Alu.Rfe ->
      (* Rd_special reads live machine state the flat layer does not model;
         Wr_special/Rfe never reach here ([pieces_ok]). *)
      (compile_alu a, false)

let flat_ax e =
  match e.Predecode.alu with
  | None -> (AXnone, true)
  | Some a -> flat_alu a

(* flat effective address for the pinned state: translation is the
   identity, the bounds check is one comparison raising the reference
   engine's exact fault (Illegal detail 1).  The returned physical index is
   in range by construction, which is what lets the fragment generators
   use unsafe data-memory accesses. *)
let flat_addr_w ~dmem_words a =
  let bounds t p =
    ignore t;
    if p < 0 || p >= dmem_words then raise (Fault (Cause.Illegal, 1));
    p
  in
  match a with
  | Mem.Abs c -> fun t -> bounds t c
  | Mem.Disp (b, d) ->
      let b = Reg.to_int b in
      fun t -> bounds t (Word32.add (Array.unsafe_get t.regs b) d)
  | Mem.Idx (b, i) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t ->
        bounds t
          (Word32.add (Array.unsafe_get t.regs b) (Array.unsafe_get t.regs i))
  | Mem.Shifted (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t ->
        bounds t
          (Word32.add (Array.unsafe_get t.regs b)
             (Word32.shift_right_logical (Array.unsafe_get t.regs i) n))
  | Mem.Scaled (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t ->
        bounds t
          (Word32.add (Array.unsafe_get t.regs b)
             (Word32.shift_left (Array.unsafe_get t.regs i) n))

(* Whole-word direct fragments.  When a word has no incoming latch to
   commit ([PNone]) and a single piece, the compute, the fault
   bookkeeping and the commit collapse into ONE closure — no inner
   operand calls, no latch stub.  [DDrop] marks words with no runtime
   work at all (nops, bare inlined jumps): they are simply not emitted,
   their statistics living purely in the batch. *)
type dfrag = DFrag of (Cpu.t -> unit) | DDrop | DNo

let flat_alu_frag ~k a =
  match a with
  | Alu.Binop (op, x, y, d) ->
      let d = Reg.to_int d in
      let xk, xv = op_rd x and yk, yv = op_rd y in
      let[@inline] rda t = if xk then Array.unsafe_get t.regs xv else xv in
      let[@inline] rdb t = if yk then Array.unsafe_get t.regs yv else yv in
      DFrag
        (match op with
        | Alu.Add ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if Word32.add_overflows a b then ovf t;
              Array.unsafe_set t.regs d (Word32.add a b)
        | Alu.Sub ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if Word32.sub_overflows a b then ovf t;
              Array.unsafe_set t.regs d (Word32.sub a b)
        | Alu.Rsub ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if Word32.sub_overflows b a then ovf t;
              Array.unsafe_set t.regs d (Word32.sub b a)
        | Alu.And ->
            fun t -> Array.unsafe_set t.regs d (Word32.logand (rda t) (rdb t))
        | Alu.Or ->
            fun t -> Array.unsafe_set t.regs d (Word32.logor (rda t) (rdb t))
        | Alu.Xor ->
            fun t -> Array.unsafe_set t.regs d (Word32.logxor (rda t) (rdb t))
        | Alu.Sll ->
            fun t ->
              Array.unsafe_set t.regs d (Word32.shift_left (rda t) (rdb t))
        | Alu.Srl ->
            fun t ->
              Array.unsafe_set t.regs d
                (Word32.shift_right_logical (rda t) (rdb t))
        | Alu.Sra ->
            fun t ->
              Array.unsafe_set t.regs d
                (Word32.shift_right_arith (rda t) (rdb t))
        | Alu.Mul ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if Word32.mul_overflows a b then ovf t;
              Array.unsafe_set t.regs d (Word32.mul a b)
        | Alu.Div ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if b = 0 then raise (Fault (Cause.Overflow, 1))
              else Array.unsafe_set t.regs d (Word32.sdiv a b)
        | Alu.Rem ->
            fun t ->
              t.jit_k <- k;
              let a = rda t and b = rdb t in
              if b = 0 then raise (Fault (Cause.Overflow, 1))
              else Array.unsafe_set t.regs d (Word32.srem a b))
  | Alu.Setc (c, x, y, d) ->
      let d = Reg.to_int d in
      let xk, xv = op_rd x and yk, yv = op_rd y in
      DFrag
        (fun t ->
          let a = if xk then Array.unsafe_get t.regs xv else xv
          and b = if yk then Array.unsafe_get t.regs yv else yv in
          Array.unsafe_set t.regs d (if Cond.eval c a b then 1 else 0))
  | Alu.Mov (Operand.R x, d) ->
      let x = Reg.to_int x and d = Reg.to_int d in
      DFrag (fun t -> Array.unsafe_set t.regs d (Array.unsafe_get t.regs x))
  | Alu.Mov (Operand.I4 n, d) ->
      let d = Reg.to_int d in
      DFrag (fun t -> Array.unsafe_set t.regs d n)
  | Alu.Movi8 (c, d) ->
      let d = Reg.to_int d in
      DFrag (fun t -> Array.unsafe_set t.regs d c)
  | Alu.Xbyte (p, w, d) ->
      let d = Reg.to_int d in
      let pk, pv = op_rd p and wk, wv = op_rd w in
      DFrag
        (fun t ->
          let p = if pk then Array.unsafe_get t.regs pv else pv
          and w = if wk then Array.unsafe_get t.regs wv else wv in
          Array.unsafe_set t.regs d (Word32.get_byte w (p land 3)))
  | Alu.Ibyte (s, d) ->
      let sk, sv = op_rd s and d = Reg.to_int d in
      DFrag
        (fun t ->
          let s = if sk then Array.unsafe_get t.regs sv else sv in
          Array.unsafe_set t.regs d
            (Word32.set_byte (Array.unsafe_get t.regs d) (t.byte_select land 3) s))
  | Alu.Rd_special _ | Alu.Wr_special _ | Alu.Rfe -> DNo

let flat_load_frag ~k ~dmem_words addr =
  let[@inline] ld t p =
    if p < 0 || p >= dmem_words then raise (Fault (Cause.Illegal, 1));
    t.jit_pv <- Array.unsafe_get t.dmem p
  in
  match addr with
  | Mem.Abs c ->
      DFrag
        (fun t ->
          t.jit_k <- k;
          ld t c)
  | Mem.Disp (b, d) ->
      let b = Reg.to_int b in
      DFrag
        (fun t ->
          t.jit_k <- k;
          ld t (Word32.add (Array.unsafe_get t.regs b) d))
  | Mem.Idx (b, i) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          ld t
            (Word32.add (Array.unsafe_get t.regs b) (Array.unsafe_get t.regs i)))
  | Mem.Shifted (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          ld t
            (Word32.add (Array.unsafe_get t.regs b)
               (Word32.shift_right_logical (Array.unsafe_get t.regs i) n)))
  | Mem.Scaled (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          ld t
            (Word32.add (Array.unsafe_get t.regs b)
               (Word32.shift_left (Array.unsafe_get t.regs i) n)))

let flat_store_frag ~k ~dmem_words src addr =
  let s = Reg.to_int src in
  let[@inline] st t p =
    if p < 0 || p >= dmem_words then raise (Fault (Cause.Illegal, 1));
    Array.unsafe_set t.dmem p (Array.unsafe_get t.regs s)
  in
  match addr with
  | Mem.Abs c ->
      DFrag
        (fun t ->
          t.jit_k <- k;
          st t c)
  | Mem.Disp (b, d) ->
      let b = Reg.to_int b in
      DFrag
        (fun t ->
          t.jit_k <- k;
          st t (Word32.add (Array.unsafe_get t.regs b) d))
  | Mem.Idx (b, i) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          st t
            (Word32.add (Array.unsafe_get t.regs b) (Array.unsafe_get t.regs i)))
  | Mem.Shifted (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          st t
            (Word32.add (Array.unsafe_get t.regs b)
               (Word32.shift_right_logical (Array.unsafe_get t.regs i) n)))
  | Mem.Scaled (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      DFrag
        (fun t ->
          t.jit_k <- k;
          st t
            (Word32.add (Array.unsafe_get t.regs b)
               (Word32.shift_left (Array.unsafe_get t.regs i) n)))

let flat_mx cfg e =
  match e.Predecode.mem with
  | None -> MXnone
  | Some (Mem.Limm (c, d)) -> MXlimm (Reg.to_int d, c)
  | Some (Mem.Load (Mem.W32, a, d)) when not cfg.byte_addressed ->
      MXload_w (Reg.to_int d, flat_addr_w ~dmem_words:cfg.dmem_words a)
  | Some (Mem.Store (Mem.W32, s, a)) when not cfg.byte_addressed ->
      MXstore_w (Reg.to_int s, flat_addr_w ~dmem_words:cfg.dmem_words a)
  | m -> compile_mem cfg m

let flat_bx e =
  match e.Predecode.branch with
  | Some (Branch.Cbr (c, x, y, tgt)) ->
      let xk, xv = op_rd x and yk, yv = op_rd y in
      BXcbr
        ( (fun t ->
            let a = if xk then Array.unsafe_get t.regs xv else xv
            and b = if yk then Array.unsafe_get t.regs yv else yv in
            Cond.eval c a b),
          tgt )
  | b -> compile_branch b

(* ------------------------------------------------------------------ *)
(* Compile-time tracking of the delayed-load latch.

   Entering the trace the latch state is unknown ([PDyn]: test pend_r at
   run time).  After the first word it is statically known: [PNone], or
   [PKnown d] with the in-flight value parked in the scalar [jit_pv] —
   no option cell, no per-word test, and the commit into [regs.(d)]
   disappears entirely when the very same word overwrites [d] anyway. *)

type pend = PDyn | PNone | PKnown of int

let pend_code = function PDyn -> -2 | PNone -> -1 | PKnown d -> d
let ignore_t (_ : Cpu.t) = ()

(* The fragment committing the incoming latch at this word's commit point.
   [mx]/[ax] are the word's own pieces, used for the dead-write elision:
   a pending commit into a register this word's ALU or load-immediate
   overwrites later in the same commit phase is unobservable. *)
let pend_frag pend_in mx ax =
  match pend_in with
  | PNone -> ignore_t
  | PDyn ->
      fun t ->
        let pr = t.pend_r in
        if pr >= 0 then begin
          t.regs.(pr) <- t.pend_v;
          t.pend_r <- -1
        end
  | PKnown d ->
      let dead =
        (match ax with AXreg (da, _) -> da = d | _ -> false)
        || (match mx with MXlimm (dm, _) -> dm = d | _ -> false)
      in
      if dead then ignore_t else fun t -> t.regs.(d) <- t.jit_pv

(* ------------------------------------------------------------------ *)
(* Fragment generation.  Each fragment replays one word's quiet-path
   effects minus everything hoisted to the block level: no statistics, no
   PC update, no fetch.  The order within a fragment mirrors the reference
   step exactly — compute (mem address, store value, ALU, branch decision,
   all reading pre-commit state; faults raise here), then commit (store,
   pending latch, ALU result, load capture, branch link).  [t.jit_k <- k]
   first, so the recovery path knows how far the body got. *)

let gen_plain ~k ~pend_in ~pure mx ax =
  let pf = pend_frag pend_in mx ax in
  let pend_out = match mx with MXload_w (d, _) -> PKnown d | _ -> PNone in
  let frag =
    match (mx, ax) with
    | MXnone, AXnone -> pf (* a nop's only work is the incoming latch *)
    | MXnone, AXreg (d, f) when pure ->
        fun t ->
          let v = f t in
          pf t;
          Array.unsafe_set t.regs d v
    | MXnone, AXreg (d, f) ->
        fun t ->
          t.jit_k <- k;
          let v = f t in
          pf t;
          Array.unsafe_set t.regs d v
    | MXlimm (dm, c), AXnone ->
        fun t ->
          pf t;
          Array.unsafe_set t.regs dm c
    | MXlimm (dm, c), AXreg (da, f) when pure ->
        fun t ->
          let v = f t in
          pf t;
          Array.unsafe_set t.regs da v;
          Array.unsafe_set t.regs dm c
    | MXlimm (dm, c), AXreg (da, f) ->
        fun t ->
          t.jit_k <- k;
          let v = f t in
          pf t;
          Array.unsafe_set t.regs da v;
          Array.unsafe_set t.regs dm c
    | MXload_w (_, fp), AXnone ->
        fun t ->
          t.jit_k <- k;
          let a = fp t in
          pf t;
          t.jit_pv <- Array.unsafe_get t.dmem a
    | MXload_w (_, fp), AXreg (da, f) ->
        fun t ->
          t.jit_k <- k;
          let a = fp t in
          let v = f t in
          pf t;
          Array.unsafe_set t.regs da v;
          t.jit_pv <- Array.unsafe_get t.dmem a
    | MXstore_w (src, fp), AXnone ->
        fun t ->
          t.jit_k <- k;
          let a = fp t in
          let sv = Array.unsafe_get t.regs src in
          Array.unsafe_set t.dmem a sv;
          pf t
    | MXstore_w (src, fp), AXreg (da, f) ->
        fun t ->
          t.jit_k <- k;
          let a = fp t in
          let sv = Array.unsafe_get t.regs src in
          let v = f t in
          Array.unsafe_set t.dmem a sv;
          pf t;
          Array.unsafe_set t.regs da v
    | _ -> assert false (* byte/special shapes excluded by [pieces_ok] *)
  in
  (frag, pend_out)

(* Terminator fragment: the branch word.  It does not redirect the chain —
   the decision and target are parked in [sc_taken]/[sc_target] for the
   exit code (and the fault-recovery path of the delay slots).  Link
   registers are written with their static values: at the branch word the
   chain is sequential from the entry, so [p2 = pc + 2]. *)
let gen_term ~pc ~k ~pend_in mx ax bx =
  let pf = pend_frag pend_in mx ax in
  match (mx, ax, bx) with
  | MXnone, AXnone, BXcbr (f, tgt) ->
      ( (fun t ->
          let tk = f t in
          pf t;
          t.sc_taken <- tk;
          t.sc_target <- tgt),
        PNone )
  | MXnone, AXreg (d, fa), BXcbr (fb, tgt) ->
      ( (fun t ->
          t.jit_k <- k;
          let v = fa t in
          let tk = fb t in
          pf t;
          t.regs.(d) <- v;
          t.sc_taken <- tk;
          t.sc_target <- tgt),
        PNone )
  | MXnone, AXnone, BXjump tgt ->
      ( (fun t ->
          pf t;
          t.sc_taken <- true;
          t.sc_target <- tgt),
        PNone )
  | _ ->
      let pend_out = match mx with MXload_w (d, _) -> PKnown d | _ -> PNone in
      ( (fun t ->
          t.jit_k <- k;
          (match mx with
          | MXnone | MXlimm _ -> ()
          | MXload_w (_, fp) -> t.sc_a <- fp t
          | MXstore_w (s, fp) ->
              t.sc_a <- fp t;
              t.sc_b <- t.regs.(s)
          | MXload_b _ | MXstore_b _ -> assert false);
          (match ax with
          | AXnone -> ()
          | AXreg (_, f) -> t.sc_v <- f t
          | AXspecial _ | AXrfe -> assert false);
          (match bx with
          | BXcbr (f, tgt) ->
              t.sc_taken <- f t;
              t.sc_target <- tgt
          | BXjump tgt | BXjal (tgt, _) ->
              t.sc_taken <- true;
              t.sc_target <- tgt
          | BXjind r | BXjalind (r, _) ->
              t.sc_taken <- true;
              t.sc_target <- t.regs.(r)
          | BXnone | BXtrap _ -> assert false);
          (match mx with
          | MXstore_w _ -> t.dmem.(t.sc_a) <- t.sc_b
          | _ -> ());
          pf t;
          (match ax with AXreg (d, _) -> t.regs.(d) <- t.sc_v | _ -> ());
          (match mx with
          | MXlimm (d, c) -> t.regs.(d) <- c
          | MXload_w (_, _) -> t.jit_pv <- t.dmem.(t.sc_a)
          | _ -> ());
          (match bx with
          | BXjal (_, link) -> t.regs.(link) <- pc + 2
          | BXjalind (_, link) -> t.regs.(link) <- pc + 3
          | _ -> ())),
        pend_out )

(* ------------------------------------------------------------------ *)
(* Macro-op fusion peepholes.  Both fold two adjacent words into a single
   fragment, eliminating one dispatch and the register round-trip between
   producer and consumer.  The architecturally visible writes still happen
   (a fused Setc still lands its boolean), only the re-read is gone. *)

(* cmp+branch: a Setc-only word whose result the immediately following
   conditional branch tests against an immediate. *)
let cbr_test_of d (e : Predecode.entry) =
  match e.Predecode.branch with
  | Some (Branch.Cbr (c, Operand.R r, Operand.I4 imm, tgt))
    when Reg.to_int r = d ->
      Some ((fun v -> Cond.eval c v imm), tgt)
  | Some (Branch.Cbr (c, Operand.I4 imm, Operand.R r, tgt))
    when Reg.to_int r = d ->
      Some ((fun v -> Cond.eval c imm v), tgt)
  | _ -> None

let gen_cmp_branch ~pend_in d f test tgt mx ax =
  let pf = pend_frag pend_in mx ax in
  fun t ->
    let v = f t in
    pf t;
    t.regs.(d) <- v;
    t.sc_taken <- test v;
    t.sc_target <- tgt

(* load+use: a load-only word followed by an ALU-only word.  The loaded
   value flows through an OCaml local into the consumer's commit point;
   [jit_pv] is still written for the recovery path, and the consumer's
   operands are read before the commit so it still sees the architecturally
   stale register, exactly as the delayed-load machine specifies. *)
let gen_load_use ~k ~pend_in d fp da f mx ax =
  let pf = pend_frag pend_in mx ax in
  let dead = da = d in
  fun t ->
    t.jit_k <- k;
    let a = fp t in
    pf t;
    let v = t.dmem.(a) in
    t.jit_pv <- v;
    t.jit_k <- k + 1;
    let v2 = f t in
    if not dead then t.regs.(d) <- v;
    t.regs.(da) <- v2

(* ------------------------------------------------------------------ *)
(* Block-level statistics, applied once per trace execution (or per loop
   iteration).  All sums are over integer-valued doubles far below 2^53,
   so the batched float add is bit-identical to the word-by-word one. *)

type batch = {
  b_len : int;
  b_w : float;  (* = float b_len; every eligible word weighs exactly 1. *)
  b_taken : int;  (* inlined unconditional jumps taken per execution *)
  b_busy : int;
  b_free : int;
  b_nops : int;
  b_packed : int;
  b_alu : int;
  b_mem : int;
  b_br : int;
  b_syn : int;
  b_wr_l : int;
  b_wr_s : int;
  b_wc_l : int;
  b_wc_s : int;
  b_by_l : int;
  b_by_s : int;
  b_bc_l : int;
  b_bc_s : int;
}

let make_batch (words : tword array) ~taken =
  let len = ref 0
  and busy = ref 0
  and free = ref 0
  and nops = ref 0
  and packed = ref 0
  and alu = ref 0
  and mem = ref 0
  and br = ref 0
  and syn = ref 0 in
  let cls = Array.make 8 0 in
  Array.iter
    (fun { tw_e = e; tw_note = note } ->
      incr len;
      if e.Predecode.refs_memory then incr busy else incr free;
      if e.Predecode.is_nop then incr nops;
      if e.Predecode.packed then incr packed;
      alu := !alu + e.Predecode.alu_pieces;
      mem := !mem + e.Predecode.mem_pieces;
      br := !br + e.Predecode.branch_pieces;
      let count_ref load =
        if note.Note.synthetic then incr syn
        else
          let c =
            (match (note.Note.char_data, note.Note.byte_sized) with
            | false, false -> 0
            | true, false -> 2
            | false, true -> 4
            | true, true -> 6)
            + (if load then 0 else 1)
          in
          cls.(c) <- cls.(c) + 1
      in
      match e.Predecode.mem with
      | Some (Mem.Load _) -> count_ref true
      | Some (Mem.Store _) -> count_ref false
      | Some (Mem.Limm _) | None -> ())
    words;
  {
    b_len = !len;
    b_w = float_of_int !len;
    b_taken = taken;
    b_busy = !busy;
    b_free = !free;
    b_nops = !nops;
    b_packed = !packed;
    b_alu = !alu;
    b_mem = !mem;
    b_br = !br;
    b_syn = !syn;
    b_wr_l = cls.(0);
    b_wr_s = cls.(1);
    b_wc_l = cls.(2);
    b_wc_s = cls.(3);
    b_by_l = cls.(4);
    b_by_s = cls.(5);
    b_bc_l = cls.(6);
    b_bc_s = cls.(7);
  }

(* [apply_batch_n] applies [n] executions of the block in one pass.  The
   only float cell sums integer-valued doubles far below 2^53, so adding
   [float (n * b_len)] once is bit-identical to [n] separate additions. *)
let apply_batch_n t b n =
  let s = t.stats in
  s.Stats.cycles <- s.Stats.cycles + (n * b.b_len);
  s.Stats.words <- s.Stats.words + (n * b.b_len);
  s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + (n * b.b_busy);
  s.Stats.free_cycles <- s.Stats.free_cycles + (n * b.b_free);
  s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. float_of_int (n * b.b_len);
  if b.b_taken > 0 then
    s.Stats.branches_taken <- s.Stats.branches_taken + (n * b.b_taken);
  s.Stats.nops <- s.Stats.nops + (n * b.b_nops);
  s.Stats.packed_words <- s.Stats.packed_words + (n * b.b_packed);
  s.Stats.alu_pieces <- s.Stats.alu_pieces + (n * b.b_alu);
  s.Stats.mem_pieces <- s.Stats.mem_pieces + (n * b.b_mem);
  s.Stats.branch_pieces <- s.Stats.branch_pieces + (n * b.b_br);
  if b.b_syn > 0 then
    s.Stats.synthetic_refs <- s.Stats.synthetic_refs + (n * b.b_syn);
  let w = s.Stats.word_refs in
  w.Stats.loads <- w.Stats.loads + (n * b.b_wr_l);
  w.Stats.stores <- w.Stats.stores + (n * b.b_wr_s);
  let wc = s.Stats.word_char_refs in
  wc.Stats.loads <- wc.Stats.loads + (n * b.b_wc_l);
  wc.Stats.stores <- wc.Stats.stores + (n * b.b_wc_s);
  let by = s.Stats.byte_refs in
  by.Stats.loads <- by.Stats.loads + (n * b.b_by_l);
  by.Stats.stores <- by.Stats.stores + (n * b.b_by_s);
  let bc = s.Stats.byte_char_refs in
  bc.Stats.loads <- bc.Stats.loads + (n * b.b_bc_l);
  bc.Stats.stores <- bc.Stats.stores + (n * b.b_bc_s)

(* Specialized batch applier: most traces have no nops, no packed words,
   no synthetic refs and no char/byte-classed refs, so the common case
   touches nine statistics cells instead of twenty-two.  Decided once at
   compile time per batch. *)
let batch_applier b =
  if
    b.b_nops = 0 && b.b_packed = 0 && b.b_syn = 0 && b.b_taken = 0
    && b.b_wc_l = 0 && b.b_wc_s = 0 && b.b_by_l = 0 && b.b_by_s = 0
    && b.b_bc_l = 0 && b.b_bc_s = 0
  then (
    fun t n ->
      let s = t.stats in
      s.Stats.cycles <- s.Stats.cycles + (n * b.b_len);
      s.Stats.words <- s.Stats.words + (n * b.b_len);
      s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + (n * b.b_busy);
      s.Stats.free_cycles <- s.Stats.free_cycles + (n * b.b_free);
      s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. float_of_int (n * b.b_len);
      s.Stats.alu_pieces <- s.Stats.alu_pieces + (n * b.b_alu);
      s.Stats.mem_pieces <- s.Stats.mem_pieces + (n * b.b_mem);
      s.Stats.branch_pieces <- s.Stats.branch_pieces + (n * b.b_br);
      if b.b_wr_l > 0 || b.b_wr_s > 0 then begin
        let w = s.Stats.word_refs in
        w.Stats.loads <- w.Stats.loads + (n * b.b_wr_l);
        w.Stats.stores <- w.Stats.stores + (n * b.b_wr_s)
      end)
  else fun t n -> apply_batch_n t b n

(* Per-word statistics of a completed word, for the fault-recovery prefix.
   Totals only, so the intra-word ordering differences vs the reference
   (cycle counted before commits, refs at commit) cannot show. *)
let count_word t { tw_e = e; tw_note = note } =
  let s = t.stats in
  s.Stats.cycles <- s.Stats.cycles + 1;
  s.Stats.words <- s.Stats.words + 1;
  if e.Predecode.refs_memory then
    s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + 1
  else s.Stats.free_cycles <- s.Stats.free_cycles + 1;
  s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
  if e.Predecode.is_nop then s.Stats.nops <- s.Stats.nops + 1;
  if e.Predecode.packed then s.Stats.packed_words <- s.Stats.packed_words + 1;
  s.Stats.alu_pieces <- s.Stats.alu_pieces + e.Predecode.alu_pieces;
  s.Stats.mem_pieces <- s.Stats.mem_pieces + e.Predecode.mem_pieces;
  s.Stats.branch_pieces <- s.Stats.branch_pieces + e.Predecode.branch_pieces;
  match e.Predecode.mem with
  | Some (Mem.Load _) -> Stats.count_ref s ~load:true note
  | Some (Mem.Store _) -> Stats.count_ref s ~load:false note
  | Some (Mem.Limm _) | None -> ()

(* ------------------------------------------------------------------ *)
(* Trace compilation *)

let compile t entry_pc =
  let body, term, cont = scan t entry_pc in
  let swords = Array.of_list body in
  let nb = Array.length swords in
  let term_words =
    match term with None -> [] | Some (tw, slots) -> tw :: slots
  in
  let words = Array.of_list (List.map (fun s -> s.sw) body @ term_words) in
  let len = Array.length words in
  if len < min_trace_words then false
  else begin
    let n = match term with None -> -1 | Some _ -> nb in
    let delay =
      match term with
      | None -> 0
      | Some (tw, _) -> (
          match Predecode.branch_delay tw.tw_e with Some d -> d | None -> 0)
    in
    let p_term = cont in
    (* Per-word recovery tables: the guest pc of body word [j], the chain
       cells live while it executes, and the inlined jumps completed
       before it.  Indices past [n] (the terminator's delay slots) recover
       through the [sc_taken] path instead; their entries are sequential
       placeholders. *)
    let wp = Array.make len 0
    and wc1 = Array.make len 0
    and wc2 = Array.make len 0 in
    let tb = Array.make (len + 1) 0 in
    for j = 0 to len - 1 do
      if j < nb then begin
        let s = swords.(j) in
        wp.(j) <- s.sw_pc;
        wc1.(j) <- s.sw_c1;
        wc2.(j) <- s.sw_c2;
        tb.(j + 1) <- tb.(j) + (match s.sw_ctl with CJump _ -> 1 | _ -> 0)
      end
      else begin
        let p = p_term + (j - nb) in
        wp.(j) <- p;
        wc1.(j) <- p + 1;
        wc2.(j) <- p + 2;
        tb.(j + 1) <- tb.(j)
      end
    done;
    (* where a completed trace resumes when it does not take the
       terminator: past the delay slots, or at the scan stop point *)
    let exit_seq =
      match term with Some _ -> p_term + 1 + delay | None -> cont
    in
    (* build fragments, threading the latch state and fusing pairs *)
    let pend_at = Array.make (len + 1) (-1) in
    let frag_list = ref [] in
    let pend = ref PDyn in
    let guard_of = Array.make len (-1) in
    let guards = ref [] in
    let gcount = ref 0 in
    let cur_gtgt = ref 0 in
    let k = ref 0 in
    while !k < len do
      pend_at.(!k) <- pend_code !pend;
      let e = words.(!k).tw_e in
      let mx = flat_mx t.cfg e in
      let ax, ax_pure = flat_ax e in
      if !k = n then begin
        let bx = flat_bx e in
        let frag, p' = gen_term ~pc:p_term ~k:!k ~pend_in:!pend mx ax bx in
        frag_list := frag :: !frag_list;
        pend := p';
        incr k
      end
      else begin
        let ctl = if !k < nb then swords.(!k).sw_ctl else CNone in
        let next_plain j = j >= nb || swords.(j).sw_ctl = CNone in
        match ctl with
        | CGuard gt ->
            (* speculated conditional: evaluate the condition and park it
               for the slot's check; predicted not-taken, so the in-line
               path does nothing else *)
            (match flat_bx e with
            | BXcbr (f, _) ->
                let pf = pend_frag !pend mx ax in
                frag_list :=
                  (fun t ->
                    let tk = f t in
                    pf t;
                    t.sc_taken <- tk)
                  :: !frag_list;
                pend := PNone;
                cur_gtgt := gt;
                incr k
            | _ -> assert false)
        | _ ->
        (* cmp+branch peephole: Setc-only word feeding the terminator *)
        let fused =
          if !k + 1 = n && mx = MXnone && ctl = CNone then
            match (e.Predecode.alu, ax) with
            | Some (Alu.Setc _), AXreg (d, f) -> (
                let te = words.(n).tw_e in
                if te.Predecode.mem = None && te.Predecode.alu = None then
                  match cbr_test_of d te with
                  | Some (test, tgt) ->
                      let frag = gen_cmp_branch ~pend_in:!pend d f test tgt mx ax in
                      pend_at.(n) <- pend_code PNone;
                      frag_list := frag :: !frag_list;
                      pend := PNone;
                      k := !k + 2;
                      true
                  | None -> false
                else false)
            | _ -> false
          else false
        in
        (* load+use peephole: load-only word feeding an ALU-only word *)
        let fused =
          fused
          ||
          if !k + 1 < len && !k + 1 <> n && ax = AXnone && ctl = CNone
             && next_plain (!k + 1)
          then
            match mx with
            | MXload_w (d, fp) -> (
                let ne = words.(!k + 1).tw_e in
                let nmx = flat_mx t.cfg ne in
                let nax, _ = flat_ax ne in
                match (nmx, nax) with
                | MXnone, AXreg (da, f) ->
                    let frag = gen_load_use ~k:!k ~pend_in:!pend d fp da f mx ax in
                    pend_at.(!k + 1) <- pend_code (PKnown d);
                    frag_list := frag :: !frag_list;
                    pend := PNone;
                    k := !k + 2;
                    true
                | _ -> false)
            | _ -> false
          else false
        in
        if not fused then begin
          (* With no incoming latch, single-piece words compile to one
             direct closure (or to nothing at all) instead of the generic
             compose-of-pieces shape. *)
          let direct =
            if !pend <> PNone then DNo
            else
              match (mx, e.Predecode.alu) with
              | MXnone, None -> DDrop
              | MXnone, Some a -> flat_alu_frag ~k:!k a
              | MXlimm (dm, c), None ->
                  DFrag (fun t -> Array.unsafe_set t.regs dm c)
              | MXload_w (_, _), None -> (
                  match e.Predecode.mem with
                  | Some (Mem.Load (Mem.W32, addr, _)) ->
                      flat_load_frag ~k:!k ~dmem_words:t.cfg.dmem_words addr
                  | _ -> DNo)
              | MXstore_w (_, _), None -> (
                  match e.Predecode.mem with
                  | Some (Mem.Store (Mem.W32, s, addr)) ->
                      flat_store_frag ~k:!k ~dmem_words:t.cfg.dmem_words s addr
                  | _ -> DNo)
              | _ -> DNo
          in
          let frag0, p' =
            match direct with
            | DFrag f ->
                (Some f,
                 match mx with MXload_w (d, _) -> PKnown d | _ -> PNone)
            | DDrop -> (None, PNone)
            | DNo ->
                let pure =
                  ax_pure
                  && match mx with MXnone | MXlimm _ -> true | _ -> false
                in
                let f, p' = gen_plain ~k:!k ~pend_in:!pend ~pure mx ax in
                (Some f, p')
          in
          (match ctl with
          | CJump (_, link) when link >= 0 ->
              (* inlined Jal: the link is the return address past the
                 delay slot — a static constant, since the jump sits in
                 sequential context (the reference writes [t.p2]).  The
                 link lands last, matching the reference commit order. *)
              let lv = wp.(!k) + 2 in
              let frag =
                match frag0 with
                | Some f ->
                    fun t ->
                      f t;
                      Array.unsafe_set t.regs link lv
                | None -> fun t -> Array.unsafe_set t.regs link lv
              in
              frag_list := frag :: !frag_list
          | CGSlot ->
              (* guard's delay slot: after its own work, divert to the
                 side exit when the guard's branch was taken.  The slot
                 has completed by then, so the exit's prefix statistics
                 cover words 0..k and the taken branch itself. *)
              let gid = !gcount in
              let gb =
                make_batch (Array.sub words 0 (!k + 1))
                  ~taken:(tb.(!k + 1) + 1)
              in
              guards :=
                (batch_applier gb, !cur_gtgt, !k + 1, pend_code p',
                 wp.(!k - 1))
                :: !guards;
              guard_of.(!k) <- gid;
              incr gcount;
              let frag =
                match frag0 with
                | Some f ->
                    fun t ->
                      f t;
                      if t.sc_taken then begin
                        t.jit_k <- gid;
                        raise Guard_exit
                      end
                | None ->
                    fun t ->
                      if t.sc_taken then begin
                        t.jit_k <- gid;
                        raise Guard_exit
                      end
              in
              frag_list := frag :: !frag_list
          | _ -> (
              match frag0 with
              | Some f -> frag_list := f :: !frag_list
              | None -> ()));
          pend := p';
          incr k
        end
      end
    done;
    let frags = Array.of_list (List.rev !frag_list) in
    let nf = Array.length frags in
    let batch = make_batch words ~taken:tb.(len) in
    let apply_main = batch_applier batch in
    let final_pend = !pend in
    let mat_pend =
      match final_pend with
      | PKnown d ->
          fun t ->
            t.pend_r <- d;
            t.pend_v <- t.jit_pv
      | PNone | PDyn -> ignore_t
    in
    let garr = Array.of_list (List.rev !guards) in
    let gexits = Array.make (max !gcount 1) 0 in
    let execs = ref 0 in
    (* Side exit: a guard's branch was taken.  Both the guard word and its
       delay slot completed, so the chain is sequential at the target;
       apply the prefix statistics (including the taken branch),
       rematerialize the latch as of the slot, and charge the consumed
       words against the fuel.  A guard whose exits dominate this trace's
       executions was a bad prediction: its branch pc is blacklisted and
       the trace retired, so the next hot dispatch recompiles with the
       branch as a terminator. *)
    let side_exit t fuel =
      let g = t.jit_k in
      let gb, tgt, consumed, pendc, gpc = garr.(g) in
      gb t 1;
      t.p0 <- tgt;
      t.p1 <- tgt + 1;
      t.p2 <- tgt + 2;
      if pendc >= 0 then begin
        t.pend_r <- pendc;
        t.pend_v <- t.jit_pv
      end;
      execs := !execs + 1;
      let ex = gexits.(g) + 1 in
      gexits.(g) <- ex;
      if ex >= 16 && ex * 2 >= !execs then begin
        Bytes.unsafe_set t.jit_nospec gpc '\001';
        t.jit_code.(entry_pc) <- jit_stale;
        t.jit_len.(entry_pc) <- 0;
        t.jit_counts.(entry_pc) <- hot_threshold - 1
      end;
      fuel - consumed
    in
    (* Fault recovery: [t.jit_k] holds the body index of the faulting word.
       Apply the completed prefix's statistics, rebuild the chain at the
       faulting word, rematerialize the in-flight load, and leave the total
       consumed word count in [jit_k] for the dispatch loop's fuel
       accounting. *)
    let recover t ~consumed_before =
      let kf = t.jit_k in
      for j = 0 to kf - 1 do
        count_word t words.(j)
      done;
      if tb.(kf) > 0 then
        t.stats.Stats.branches_taken <- t.stats.Stats.branches_taken + tb.(kf);
      if n >= 0 && kf > n then begin
        if t.sc_taken then
          t.stats.Stats.branches_taken <- t.stats.Stats.branches_taken + 1;
        let tgt = t.sc_target in
        if delay = 1 then
          if t.sc_taken then begin
            t.p0 <- p_term + 1;
            t.p1 <- tgt;
            t.p2 <- tgt + 1
          end
          else begin
            t.p0 <- p_term + 1;
            t.p1 <- p_term + 2;
            t.p2 <- p_term + 3
          end
        else if kf = n + 1 then begin
          t.p0 <- p_term + 1;
          t.p1 <- p_term + 2;
          t.p2 <- tgt
        end
        else begin
          t.p0 <- p_term + 2;
          t.p1 <- tgt;
          t.p2 <- tgt + 1
        end
      end
      else begin
        let g = guard_of.(kf) in
        if g >= 0 && t.sc_taken then begin
          (* fault in a guard's delay slot with the branch taken: the
             guard word completed so its branch counts, and the slot
             executes in the taken shadow *)
          t.stats.Stats.branches_taken <- t.stats.Stats.branches_taken + 1;
          let _, tgt, _, _, _ = garr.(g) in
          t.p0 <- wp.(kf);
          t.p1 <- tgt;
          t.p2 <- tgt + 1
        end
        else begin
          t.p0 <- wp.(kf);
          t.p1 <- wc1.(kf);
          t.p2 <- wc2.(kf)
        end
      end;
      (let p = pend_at.(kf) in
       if p >= 0 then begin
         t.pend_r <- p;
         t.pend_v <- t.jit_pv
       end);
      t.jit_k <- consumed_before + kf
    in
    (* The body driver: unrolled for short traces so the steady state
       pays only the indirect fragment calls, not the loop bookkeeping. *)
    let run_body =
      match frags with
      | [| f0 |] -> f0
      | [| f0; f1 |] ->
          fun t ->
            f0 t;
            f1 t
      | [| f0; f1; f2 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t
      | [| f0; f1; f2; f3 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t;
            f3 t
      | [| f0; f1; f2; f3; f4 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t;
            f3 t;
            f4 t
      | [| f0; f1; f2; f3; f4; f5 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t;
            f3 t;
            f4 t;
            f5 t
      | [| f0; f1; f2; f3; f4; f5; f6 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t;
            f3 t;
            f4 t;
            f5 t;
            f6 t
      | [| f0; f1; f2; f3; f4; f5; f6; f7 |] ->
          fun t ->
            f0 t;
            f1 t;
            f2 t;
            f3 t;
            f4 t;
            f5 t;
            f6 t;
            f7 t
      | _ ->
          fun t ->
            for i = 0 to nf - 1 do
              (Array.unsafe_get frags i) t
            done
    in
    let is_loop =
      n >= 0 && delay = 1
      && (match term with
         | Some (tw, _) -> (
             match tw.tw_e.Predecode.branch with
             | Some (Branch.Cbr (_, _, _, tgt) | Branch.Jump tgt) ->
                 tgt = entry_pc
             | _ -> false)
         | None -> false)
    in
    let code =
      if is_loop then
        (* Loop-back specialization: spin inside the closure while the
           terminator keeps taking back to the entry and fuel allows a
           whole iteration.  The chain is only written on the way out, and
           the statistics of all completed iterations are applied in one
           scaled batch at the exit (or before fault recovery) — a tight
           loop pays for its bookkeeping once, not per iteration. *)
        let flush t iters taken =
          execs := !execs + iters;
          if iters > 0 then begin
            apply_main t iters;
            t.stats.Stats.branches_taken <- t.stats.Stats.branches_taken + taken
          end
        in
        let rec spin t fuel iters =
          match run_body t with
          | exception (Fault _ as ex) ->
              flush t iters iters;
              recover t ~consumed_before:(iters * batch.b_len);
              raise ex
          | exception Guard_exit ->
              flush t iters iters;
              side_exit t fuel
          | () ->
          let fuel = fuel - batch.b_len in
          let iters = iters + 1 in
          if t.sc_taken then begin
            mat_pend t;
            if fuel >= batch.b_len then spin t fuel iters
            else begin
              flush t iters iters;
              t.p0 <- entry_pc;
              t.p1 <- entry_pc + 1;
              t.p2 <- entry_pc + 2;
              fuel
            end
          end
          else begin
            flush t iters (iters - 1);
            t.p0 <- exit_seq;
            t.p1 <- exit_seq + 1;
            t.p2 <- exit_seq + 2;
            mat_pend t;
            fuel
          end
        in
        fun t fuel -> spin t fuel 0
      else
        fun t fuel ->
          match run_body t with
          | exception (Fault _ as ex) ->
              recover t ~consumed_before:0;
              raise ex
          | exception Guard_exit -> side_exit t fuel
          | () ->
          execs := !execs + 1;
          apply_main t 1;
          (if n >= 0 && t.sc_taken then begin
             t.stats.Stats.branches_taken <- t.stats.Stats.branches_taken + 1;
             let tgt = t.sc_target in
             t.p0 <- tgt;
             t.p1 <- tgt + 1;
             t.p2 <- tgt + 2
           end
           else begin
             t.p0 <- exit_seq;
             t.p1 <- exit_seq + 1;
             t.p2 <- exit_seq + 2
           end);
          mat_pend t;
          fuel - batch.b_len
    in
    t.jit_code.(entry_pc) <- code;
    t.jit_len.(entry_pc) <- len;
    for j = 0 to len - 1 do
      let p = wp.(j) in
      t.jit_cover.(p) <- entry_pc :: t.jit_cover.(p)
    done;
    true
  end

(* ------------------------------------------------------------------ *)
(* The dispatch loop.  Mirrors [Cpu.run_with]'s fuel semantics exactly:
   each single step costs 1 fuel (including a dispatching one), a trace
   costs its word count, and a trace that faults after [k] completed words
   costs [k] plus 1 for the dispatch.  Written with recursion and scalar
   state only — the steady-state loop allocates nothing. *)

let run ?(fuel = 10_000_000) t handler =
  jit_arm t;
  let eligible = (not t.cfg.interlock) && not t.cfg.byte_addressed in
  let rec loop fuel =
    if fuel <= 0 then begin
      t.stats.Stats.fuel_exhausted <- true;
      false
    end
    else if
      eligible
      && not (t.trace_on || t.inject_on || t.flaky_armed || t.interrupt_line
             || t.prof_on)
      && (match (t.sr.Surprise.priv, t.sr.Surprise.map_enable) with
         | Surprise.Kernel, false -> true
         | _ -> false)
      && t.p0 >= 0
      && t.p0 < t.cfg.imem_words
    then begin
      let pc = t.p0 in
      if not (t.p1 = pc + 1 && t.p2 = pc + 2) then
        (* inside a taken branch's delay shadow the chain is not
           sequential: the words after [pc] in imem are not the words
           about to execute, so no straight-line trace applies *)
        step_once fuel
      else
      let f = t.jit_code.(pc) in
      if f != jit_stale then begin
        let len = t.jit_len.(pc) in
        if fuel >= len then
          match f t fuel with
          | fuel' -> chain fuel'
          | exception Fault (cause, detail) ->
              let consumed = t.jit_k in
              (match dispatch t cause detail ~epcs:(t.p0, t.p1, t.p2) with
              | Dispatched c -> dispatched c (fuel - consumed)
              | Stepped -> assert false)
        else step_once fuel
      end
      else begin
        let c = t.jit_counts.(pc) + 1 in
        if c >= hot_threshold then begin
          if compile t pc then t.jit_counts.(pc) <- 0
          else t.jit_counts.(pc) <- min_int (* ineligible: never retry *)
        end
        else t.jit_counts.(pc) <- c;
        step_once fuel
      end
    end
    else step_once fuel
  and chain fuel =
    (* Trace-to-trace fast path.  A trace cannot flip the mode flags or
       the privilege/mapping state ([pieces_ok] excludes Wr_special/Rfe,
       and faults leave through the dispatch path), and every trace exit
       writes a sequential chain — so after a successful trace execution
       only the cheap per-dispatch checks remain before entering the next
       compiled trace.  Anything else falls back to the full loop. *)
    if fuel <= 0 then loop fuel
    else begin
      let pc = t.p0 in
      if pc >= 0 && pc < t.cfg.imem_words && t.p1 = pc + 1 && t.p2 = pc + 2
      then begin
        let f = t.jit_code.(pc) in
        if f != jit_stale then begin
          let len = t.jit_len.(pc) in
          if fuel >= len then
            match f t fuel with
            | fuel' -> chain fuel'
            | exception Fault (cause, detail) ->
                let consumed = t.jit_k in
                (match dispatch t cause detail ~epcs:(t.p0, t.p1, t.p2) with
                | Dispatched c -> dispatched c (fuel - consumed)
                | Stepped -> assert false)
          else loop fuel
        end
        else loop fuel
      end
      else loop fuel
    end
  and step_once fuel =
    match Cpu.step_fast t with
    | Stepped -> loop (fuel - 1)
    | Dispatched cause -> dispatched cause fuel
  and dispatched cause fuel =
    match handler t cause with
    | `Halt -> true
    | `Resume ->
        t.sr <- Surprise.pop t.sr;
        t.p0 <- t.epcs.(0);
        t.p1 <- t.epcs.(1);
        t.p2 <- t.epcs.(2);
        loop (fuel - 1)
  in
  loop fuel

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Cpu.set_jit_runner run
  end
