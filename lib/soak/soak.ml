open Mips_machine
module Plan = Mips_fault.Plan
module Json = Mips_obs.Json

type outcome = {
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;
  mem : int list;
  retries : int;
}

let mem_window = Progen.data_words

let run_variant ?(fuel = 500_000) ?(engine = Cpu.Ref) ~interlocked ~plan
    program =
  let config = if interlocked then Cpu.interlocked_config else Cpu.default_config in
  let cpu = Cpu.create ~config () in
  (match plan with
  | Some cfg -> Cpu.set_fault_plan cpu (Plan.make cfg)
  | None -> ());
  let res = Hosted.run_program_on ~fuel ~engine cpu program in
  let injected = Plan.injected (Cpu.fault_plan cpu) in
  ( {
      output = res.Hosted.output;
      exit_status = res.Hosted.exit_status;
      halted = res.Hosted.halted;
      fault =
        (match res.Hosted.fault with
        | Some (c, d) -> Some (Printf.sprintf "%s/%d" (Cause.name c) d)
        | None -> None);
      mem = List.init mem_window (Cpu.read_data cpu);
      retries = res.Hosted.retries;
    },
    injected )

(* first observable divergence between a variant and the reference *)
let divergence ~reference o =
  let str_opt = function Some s -> s | None -> "-" in
  let int_opt = function Some n -> string_of_int n | None -> "-" in
  if o.output <> reference.output then
    Some
      (Printf.sprintf "output %S, reference %S" o.output reference.output)
  else if o.exit_status <> reference.exit_status then
    Some
      (Printf.sprintf "exit %s, reference %s" (int_opt o.exit_status)
         (int_opt reference.exit_status))
  else if o.halted <> reference.halted then
    Some (Printf.sprintf "halted %b, reference %b" o.halted reference.halted)
  else if o.fault <> reference.fault then
    Some
      (Printf.sprintf "fault %s, reference %s" (str_opt o.fault)
         (str_opt reference.fault))
  else
    let rec first_mem i a b =
      match (a, b) with
      | [], [] -> None
      | x :: a', y :: b' ->
          if x <> y then
            Some (Printf.sprintf "data[%d] = %d, reference %d" i x y)
          else first_mem (i + 1) a' b'
      | _ -> Some "data window length mismatch"
    in
    first_mem 0 o.mem reference.mem

type diff = {
  seed : int;
  ok : bool;
  mismatches : (string * string) list;
  retries : int;
  injected : int;
}

let differential ?segments ?fuel ?(flaky_rate = 0.01) ?(irq_rate = 0.005)
    ?(engine = Cpu.Fast) ~seed () =
  let asm = Progen.generate ?segments ~seed () in
  let reorganized = Mips_reorg.Pipeline.compile asm in
  let raw = Mips_reorg.Pipeline.compile_raw asm in
  (* the fault plan's own stream is seeded independently of the program *)
  let plan_cfg =
    { Plan.quiet with Plan.seed = seed + 0x5011; flaky_rate; irq_rate }
  in
  let reference, _ = run_variant ?fuel ~interlocked:false ~plan:None reorganized in
  let en = Cpu.engine_name engine in
  let variants =
    [ ("raw-interlocked", raw, true, None, Cpu.Ref);
      ("reorganized-faults", reorganized, false, Some plan_cfg, Cpu.Ref);
      ("raw-interlocked-faults", raw, true, Some plan_cfg, Cpu.Ref);
      (* the same schedules under the alternate engine (predecoded fast by
         default, trace-jit on request): anything a program can observe
         must be identical, fault plan or not *)
      ("reorganized-" ^ en, reorganized, false, None, engine);
      ("raw-interlocked-" ^ en, raw, true, None, engine);
      ("reorganized-" ^ en ^ "-faults", reorganized, false, Some plan_cfg,
       engine) ]
  in
  let mismatches, retries, injected =
    List.fold_left
      (fun (ms, rs, inj) (vname, program, interlocked, plan, engine) ->
        let o, injected = run_variant ?fuel ~engine ~interlocked ~plan program in
        let ms =
          match divergence ~reference o with
          | Some d -> (vname, d) :: ms
          | None -> ms
        in
        (ms, rs + o.retries, inj + injected))
      ([], 0, 0) variants
  in
  { seed; ok = mismatches = []; mismatches = List.rev mismatches; retries; injected }

(* Each seed's differential run is a pure function of its arguments (the
   generator and fault plan carry their own seeded streams), so a sweep is
   embarrassingly parallel; results come back in seed order regardless of
   the pool size. *)
let differential_sweep ?jobs ?segments ?fuel ?flaky_rate ?irq_rate ?engine
    ~seed ~count () =
  Mips_par.map ?jobs
    (fun s ->
      differential ?segments ?fuel ?flaky_rate ?irq_rate ?engine ~seed:s ())
    (List.init count (fun i -> seed + i))

let diff_json d =
  Json.Obj
    [ ("seed", Json.Int d.seed);
      ("ok", Json.Bool d.ok);
      ( "mismatches",
        Json.List
          (List.map
             (fun (v, m) ->
               Json.Obj [ ("variant", Json.Str v); ("divergence", Json.Str m) ])
             d.mismatches) );
      ("retries", Json.Int d.retries);
      ("injected", Json.Int d.injected) ]

(* --- kernel soak ---------------------------------------------------------- *)

type summary = {
  seed : int;
  programs : int;
  steps : int;
  exited : int;
  killed : int;
  live : int;
  kill_reasons : (string * int) list;
  injected : (string * int) list;
  transient_faults : int;
  transient_retries : int;
  watchdog_kills : int;
  double_faults : int;
  oom_kills : int;
  page_faults : int;
  switches : int;
  fuel_exhausted : bool;
  total_cycles : int;
}

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest -> if k = key then (k, n + 1) :: rest else (k, n) :: go rest
  in
  go assoc

let run_soak ?(programs = 4) ?segments ?(quantum = 500) ?watchdog
    ?(data_frames = 16) ?(code_frames = 16) ?backing_limit
    ?(steps = 2_000_000) ?engine ~plan ~seed () =
  let k =
    Mips_os.Kernel.create ~data_frames ~code_frames ~quantum ?watchdog
      ?backing_limit ~fault_plan:(Plan.make plan) ?engine ()
  in
  for i = 0 to programs - 1 do
    let pseed = (seed * 0x1000) + i in
    let program =
      Mips_reorg.Pipeline.compile (Progen.generate ?segments ~seed:pseed ())
    in
    Mips_os.Kernel.spawn k ~name:(Progen.name ~seed:pseed) program
  done;
  let r = Mips_os.Kernel.run ~fuel:steps k in
  let exited, killed, live, kill_reasons =
    List.fold_left
      (fun (e, ki, li, reasons) (p : Mips_os.Kernel.proc_report) ->
        match (p.Mips_os.Kernel.exit_status, p.Mips_os.Kernel.killed) with
        | Some _, _ -> (e + 1, ki, li, reasons)
        | None, Some reason ->
            (e, ki + 1, li, bump reasons (Mips_os.Kernel.kill_reason_name reason))
        | None, None -> (e, ki, li + 1, reasons))
      (0, 0, 0, []) r.Mips_os.Kernel.procs
  in
  {
    seed;
    programs;
    steps;
    exited;
    killed;
    live;
    kill_reasons;
    injected = Plan.counts (Cpu.fault_plan (Mips_os.Kernel.cpu k));
    transient_faults = r.Mips_os.Kernel.transient_faults;
    transient_retries = r.Mips_os.Kernel.transient_retries;
    watchdog_kills = r.Mips_os.Kernel.watchdog_kills;
    double_faults = r.Mips_os.Kernel.double_faults;
    oom_kills = r.Mips_os.Kernel.oom_kills;
    page_faults = r.Mips_os.Kernel.page_faults;
    switches = r.Mips_os.Kernel.switches;
    fuel_exhausted = r.Mips_os.Kernel.fuel_exhausted;
    total_cycles = r.Mips_os.Kernel.total_cycles;
  }

let summary_json s =
  Json.Obj
    [ ("seed", Json.Int s.seed);
      ("programs", Json.Int s.programs);
      ("steps", Json.Int s.steps);
      ("exited", Json.Int s.exited);
      ("killed", Json.Int s.killed);
      ("live", Json.Int s.live);
      ( "kill_reasons",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.kill_reasons) );
      ( "injected",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.injected) );
      ("transient_faults", Json.Int s.transient_faults);
      ("transient_retries", Json.Int s.transient_retries);
      ("watchdog_kills", Json.Int s.watchdog_kills);
      ("double_faults", Json.Int s.double_faults);
      ("oom_kills", Json.Int s.oom_kills);
      ("page_faults", Json.Int s.page_faults);
      ("switches", Json.Int s.switches);
      ("fuel_exhausted", Json.Bool s.fuel_exhausted);
      ("total_cycles", Json.Int s.total_cycles) ]

let result_json s diffs =
  Json.Obj
    [ ("kernel", summary_json s);
      ("differential", Json.List (List.map diff_json diffs)) ]

(* --- checkpointed soak ----------------------------------------------------- *)

(* A killed-and-resumed soak must be bit-identical to an uninterrupted one,
   so the checkpoint records everything the run depends on: the full
   parameter set (byte-compared on resume — a checkpoint only resumes the
   exact run that wrote it), then phase-specific state.  The kernel phase
   saves machine + scheduler snapshots and the step count; programs are
   *not* saved — resume regenerates and recompiles them from the same seeds
   and [Kernel.restore_sched] refills the owned code frames, so the restored
   machine is byte-identical by construction.  The differential phase saves
   the finished summary and the prefix of completed diffs.  A final "done"
   checkpoint is written at completion so a resume always succeeds no
   matter when the previous process died. *)

module Snapshot = Mips_resilience.Snapshot
module Supervise = Mips_resilience.Supervise

type params = {
  p_seed : int;
  p_programs : int;
  p_segments : int option;
  p_quantum : int;
  p_watchdog : int option;
  p_data_frames : int;
  p_code_frames : int;
  p_backing_limit : int option;
  p_steps : int;
  p_plan : Plan.config;
  p_diff_count : int;
  p_engine : Cpu.engine;
}

let params_to_string p =
  let open Snapshot.Io.W in
  let b = create () in
  int b p.p_seed;
  int b p.p_programs;
  opt int b p.p_segments;
  int b p.p_quantum;
  opt int b p.p_watchdog;
  int b p.p_data_frames;
  int b p.p_code_frames;
  opt int b p.p_backing_limit;
  int b p.p_steps;
  int b p.p_plan.Plan.seed;
  float b p.p_plan.Plan.flip_reg_rate;
  float b p.p_plan.Plan.flip_data_rate;
  float b p.p_plan.Plan.irq_rate;
  float b p.p_plan.Plan.page_drop_rate;
  float b p.p_plan.Plan.flaky_rate;
  int b p.p_plan.Plan.max_injections;
  int b p.p_diff_count;
  str b (Cpu.engine_name p.p_engine);
  contents b

let summary_to_string s =
  let open Snapshot.Io.W in
  let b = create () in
  let pair w b (k, n) = str b k; w b n in
  int b s.seed;
  int b s.programs;
  int b s.steps;
  int b s.exited;
  int b s.killed;
  int b s.live;
  list (pair int) b s.kill_reasons;
  list (pair int) b s.injected;
  int b s.transient_faults;
  int b s.transient_retries;
  int b s.watchdog_kills;
  int b s.double_faults;
  int b s.oom_kills;
  int b s.page_faults;
  int b s.switches;
  bool b s.fuel_exhausted;
  int b s.total_cycles;
  contents b

let summary_of_reader r =
  let open Snapshot.Io.R in
  let pair rd r = let k = str r in (k, rd r) in
  let seed = int r in
  let programs = int r in
  let steps = int r in
  let exited = int r in
  let killed = int r in
  let live = int r in
  let kill_reasons = list (pair int) r in
  let injected = list (pair int) r in
  let transient_faults = int r in
  let transient_retries = int r in
  let watchdog_kills = int r in
  let double_faults = int r in
  let oom_kills = int r in
  let page_faults = int r in
  let switches = int r in
  let fuel_exhausted = bool r in
  let total_cycles = int r in
  { seed; programs; steps; exited; killed; live; kill_reasons; injected;
    transient_faults; transient_retries; watchdog_kills; double_faults;
    oom_kills; page_faults; switches; fuel_exhausted; total_cycles }

let diffs_to_string ds =
  let open Snapshot.Io.W in
  let b = create () in
  list
    (fun b (d : diff) ->
      int b d.seed;
      bool b d.ok;
      list (fun b (v, m) -> str b v; str b m) b d.mismatches;
      int b d.retries;
      int b d.injected)
    b ds;
  contents b

let diffs_of_reader r =
  let open Snapshot.Io.R in
  list
    (fun r ->
      let seed = int r in
      let ok = bool r in
      let mismatches = list (fun r -> let v = str r in (v, str r)) r in
      let retries = int r in
      let injected = int r in
      ({ seed; ok; mismatches; retries; injected } : diff))
    r

(* run a section decoder totally: Underflow/Bad become typed errors *)
let decode_section payload read =
  match
    let r = Snapshot.Io.R.make payload in
    let v = read r in
    if Snapshot.Io.R.remaining r <> 0 then raise (Snapshot.Bad "trailing bytes");
    v
  with
  | v -> Ok v
  | exception Snapshot.Io.R.Underflow -> Error Snapshot.Truncated
  | exception Snapshot.Bad m -> Error (Snapshot.Corrupt m)

let int_payload n =
  let b = Snapshot.Io.W.create () in
  Snapshot.Io.W.int b n;
  Snapshot.Io.W.contents b

let summary_of_report ~seed ~programs ~steps k (r : Mips_os.Kernel.report) =
  let exited, killed, live, kill_reasons =
    List.fold_left
      (fun (e, ki, li, reasons) (p : Mips_os.Kernel.proc_report) ->
        match (p.Mips_os.Kernel.exit_status, p.Mips_os.Kernel.killed) with
        | Some _, _ -> (e + 1, ki, li, reasons)
        | None, Some reason ->
            (e, ki + 1, li, bump reasons (Mips_os.Kernel.kill_reason_name reason))
        | None, None -> (e, ki, li + 1, reasons))
      (0, 0, 0, []) r.Mips_os.Kernel.procs
  in
  {
    seed;
    programs;
    steps;
    exited;
    killed;
    live;
    kill_reasons;
    injected = Plan.counts (Cpu.fault_plan (Mips_os.Kernel.cpu k));
    transient_faults = r.Mips_os.Kernel.transient_faults;
    transient_retries = r.Mips_os.Kernel.transient_retries;
    watchdog_kills = r.Mips_os.Kernel.watchdog_kills;
    double_faults = r.Mips_os.Kernel.double_faults;
    oom_kills = r.Mips_os.Kernel.oom_kills;
    page_faults = r.Mips_os.Kernel.page_faults;
    switches = r.Mips_os.Kernel.switches;
    fuel_exhausted = r.Mips_os.Kernel.fuel_exhausted;
    total_cycles = r.Mips_os.Kernel.total_cycles;
  }

type resilient_result = Complete of summary * diff list | Interrupted

let run_checkpointed ?(programs = 4) ?segments ?(quantum = 500) ?watchdog
    ?(data_frames = 16) ?(code_frames = 16) ?backing_limit
    ?(steps = 2_000_000) ?(diff_count = 0) ?diff_jobs ?(diff_chunk = 4)
    ?checkpoint ?(checkpoint_every = 250_000) ?resume
    ?(obs = Mips_obs.Sink.null) ?max_slices ?(before_write = fun () -> ())
    ?(engine = Cpu.Ref) ~plan ~seed () =
  let open Snapshot in
  let checkpoint_every = max 1 checkpoint_every in
  let params =
    { p_seed = seed; p_programs = programs; p_segments = segments;
      p_quantum = quantum; p_watchdog = watchdog; p_data_frames = data_frames;
      p_code_frames = code_frames; p_backing_limit = backing_limit;
      p_steps = steps; p_plan = plan; p_diff_count = diff_count;
      p_engine = engine }
  in
  let params_str = params_to_string params in
  let write_ckpt ~phase ~progress sections =
    match checkpoint with
    | None -> ()
    | Some path ->
        let data =
          encode
            { kind = "soak";
              sections =
                ("params", params_str) :: ("phase", phase) :: sections }
        in
        before_write ();
        write_file path data;
        Mips_obs.Metrics.incr Supervise.metrics "checkpoint.writes";
        if Mips_obs.Sink.enabled obs then
          Mips_obs.Sink.emit obs
            (Mips_obs.Event.Checkpoint_write
               { path; phase; steps = progress; bytes = String.length data })
  in
  let make_kernel () =
    let k =
      Mips_os.Kernel.create ~data_frames ~code_frames ~quantum ?watchdog
        ?backing_limit ~fault_plan:(Plan.make plan) ~engine ()
    in
    for i = 0 to programs - 1 do
      let pseed = (seed * 0x1000) + i in
      let program =
        Mips_reorg.Pipeline.compile (Progen.generate ?segments ~seed:pseed ())
      in
      Mips_os.Kernel.spawn k ~name:(Progen.name ~seed:pseed) program
    done;
    k
  in
  (* entry state: a fresh kernel, or whatever the resumed checkpoint holds *)
  let start_state =
    match resume with
    | None -> Ok (`Kernel (make_kernel (), 0))
    | Some path ->
        let* c = read_file path in
        let* () =
          if String.equal c.kind "soak" then Ok ()
          else Error (Corrupt (Printf.sprintf "not a soak checkpoint: %S" c.kind))
        in
        let* stored = section c "params" in
        let* () =
          if String.equal stored params_str then Ok ()
          else Error (Corrupt "checkpoint parameters do not match this run")
        in
        let* phase = section c "phase" in
        let restored st progress =
          Mips_obs.Metrics.incr Supervise.metrics "checkpoint.restores";
          if Mips_obs.Sink.enabled obs then
            Mips_obs.Sink.emit obs
              (Mips_obs.Event.Checkpoint_restore
                 { path; phase; steps = progress });
          Ok st
        in
        (match phase with
        | "kernel" ->
            let* m = section c "machine" in
            let* sc = section c "sched" in
            let* pr = section c "progress" in
            let* steps_done = decode_section pr Io.R.int in
            let* sched = sched_of_string sc in
            let k = make_kernel () in
            let* () =
              match Mips_os.Kernel.restore_sched k sched with
              | () -> Ok ()
              | exception Invalid_argument msg -> Error (Corrupt msg)
            in
            let* () = restore_machine (Mips_os.Kernel.cpu k) m in
            restored (`Kernel (k, steps_done)) steps_done
        | "diffs" | "done" ->
            let* s = section c "summary" in
            let* s = decode_section s summary_of_reader in
            let* ds = section c "diffs" in
            let* ds = decode_section ds diffs_of_reader in
            restored
              (if String.equal phase "done" then `Finished (s, ds)
               else `Diffs (s, ds))
              (List.length ds)
        | other -> Error (Corrupt (Printf.sprintf "unknown phase %S" other)))
  in
  let kernel_sections k steps_done =
    [ ("machine", machine_to_string (Mips_os.Kernel.cpu k));
      ("sched", sched_to_string (Mips_os.Kernel.sched_snapshot k));
      ("progress", int_payload steps_done) ]
  in
  (* Run the kernel in [checkpoint_every]-step slices.  Slicing is
     semantics-neutral: [Kernel.run_for] keeps the scheduler loop state in
     the kernel itself, so N slices of M steps execute the same instruction
     sequence as one N*M-step run. *)
  let kernel_phase k steps_done0 =
    let steps_done = ref steps_done0 in
    let slices = ref 0 in
    let quiesced = ref (steps_done0 > 0 && steps_done0 >= steps) in
    let interrupted = ref false in
    (* [start] is idempotent, so calling it on a restored kernel is safe *)
    while (not !interrupted) && (not !quiesced) && !steps_done < steps do
      match max_slices with
      | Some m when !slices >= m -> interrupted := true
      | _ ->
          let chunk = min checkpoint_every (steps - !steps_done) in
          (match Mips_os.Kernel.run_for k ~steps:chunk with
          | `Done -> quiesced := true
          | `More -> ());
          steps_done := !steps_done + chunk;
          incr slices;
          if (not !quiesced) && !steps_done < steps then
            write_ckpt ~phase:"kernel" ~progress:!steps_done
              (kernel_sections k !steps_done)
    done;
    if !interrupted then Interrupted
    else
      Complete
        ( summary_of_report ~seed ~programs ~steps k (Mips_os.Kernel.report k),
          [] )
  in
  (* Differential seeds run in supervised chunks; a quarantined seed is
     attributed in place so one poisoned job cannot sink the sweep. *)
  let diff_phase s done_diffs =
    let sum_str = summary_to_string s in
    let rec go acc i =
      if i >= diff_count then List.rev acc
      else begin
        let n = min diff_chunk (diff_count - i) in
        let seeds = List.init n (fun j -> seed + i + j) in
        let outs =
          Supervise.supervised_map ?jobs:diff_jobs ~obs
            ~label:(fun s -> Printf.sprintf "diff:%d" s)
            (fun s ->
              (* Ref means "historical default": the kernel interprets, the
                 differential still exercises the fast engine — keeps the
                 checkpointed JSON byte-identical to the two-phase path. *)
              let engine = match engine with Cpu.Ref -> Cpu.Fast | e -> e in
              differential ?segments ~engine ~seed:s ())
            seeds
        in
        let ds =
          List.map2
            (fun sd (o : _ Supervise.outcome) ->
              match o.Supervise.result with
              | Ok d -> d
              | Error err ->
                  { seed = sd; ok = false;
                    mismatches = [ ("supervisor", err) ];
                    retries = 0; injected = 0 })
            seeds outs
        in
        let acc = List.rev_append ds acc in
        if i + n < diff_count then
          write_ckpt ~phase:"diffs" ~progress:(i + n)
            [ ("summary", sum_str);
              ("diffs", diffs_to_string (List.rev acc)) ];
        go acc (i + n)
      end
    in
    go (List.rev done_diffs) (List.length done_diffs)
  in
  match start_state with
  | Error e -> Error e
  | Ok st ->
      let result =
        match st with
        | `Kernel (k, steps_done) -> (
            match kernel_phase k steps_done with
            | Interrupted -> Interrupted
            | Complete (s, _) -> Complete (s, diff_phase s []))
        | `Diffs (s, ds) -> Complete (s, diff_phase s ds)
        | `Finished (s, ds) -> Complete (s, ds)
      in
      (match result with
      | Complete (s, ds) ->
          write_ckpt ~phase:"done" ~progress:steps
            [ ("summary", summary_to_string s); ("diffs", diffs_to_string ds) ]
      | Interrupted -> ());
      Ok result
