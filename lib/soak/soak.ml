open Mips_machine
module Plan = Mips_fault.Plan
module Json = Mips_obs.Json

type outcome = {
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;
  mem : int list;
  retries : int;
}

let mem_window = Progen.data_words

let run_variant ?(fuel = 500_000) ?(engine = Cpu.Ref) ~interlocked ~plan
    program =
  let config = if interlocked then Cpu.interlocked_config else Cpu.default_config in
  let cpu = Cpu.create ~config () in
  (match plan with
  | Some cfg -> Cpu.set_fault_plan cpu (Plan.make cfg)
  | None -> ());
  let res = Hosted.run_program_on ~fuel ~engine cpu program in
  let injected = Plan.injected (Cpu.fault_plan cpu) in
  ( {
      output = res.Hosted.output;
      exit_status = res.Hosted.exit_status;
      halted = res.Hosted.halted;
      fault =
        (match res.Hosted.fault with
        | Some (c, d) -> Some (Printf.sprintf "%s/%d" (Cause.name c) d)
        | None -> None);
      mem = List.init mem_window (Cpu.read_data cpu);
      retries = res.Hosted.retries;
    },
    injected )

(* first observable divergence between a variant and the reference *)
let divergence ~reference o =
  let str_opt = function Some s -> s | None -> "-" in
  let int_opt = function Some n -> string_of_int n | None -> "-" in
  if o.output <> reference.output then
    Some
      (Printf.sprintf "output %S, reference %S" o.output reference.output)
  else if o.exit_status <> reference.exit_status then
    Some
      (Printf.sprintf "exit %s, reference %s" (int_opt o.exit_status)
         (int_opt reference.exit_status))
  else if o.halted <> reference.halted then
    Some (Printf.sprintf "halted %b, reference %b" o.halted reference.halted)
  else if o.fault <> reference.fault then
    Some
      (Printf.sprintf "fault %s, reference %s" (str_opt o.fault)
         (str_opt reference.fault))
  else
    let rec first_mem i a b =
      match (a, b) with
      | [], [] -> None
      | x :: a', y :: b' ->
          if x <> y then
            Some (Printf.sprintf "data[%d] = %d, reference %d" i x y)
          else first_mem (i + 1) a' b'
      | _ -> Some "data window length mismatch"
    in
    first_mem 0 o.mem reference.mem

type diff = {
  seed : int;
  ok : bool;
  mismatches : (string * string) list;
  retries : int;
  injected : int;
}

let differential ?segments ?fuel ?(flaky_rate = 0.01) ?(irq_rate = 0.005)
    ~seed () =
  let asm = Progen.generate ?segments ~seed () in
  let reorganized = Mips_reorg.Pipeline.compile asm in
  let raw = Mips_reorg.Pipeline.compile_raw asm in
  (* the fault plan's own stream is seeded independently of the program *)
  let plan_cfg =
    { Plan.quiet with Plan.seed = seed + 0x5011; flaky_rate; irq_rate }
  in
  let reference, _ = run_variant ?fuel ~interlocked:false ~plan:None reorganized in
  let variants =
    [ ("raw-interlocked", raw, true, None, Cpu.Ref);
      ("reorganized-faults", reorganized, false, Some plan_cfg, Cpu.Ref);
      ("raw-interlocked-faults", raw, true, Some plan_cfg, Cpu.Ref);
      (* the same schedules under the predecoded fast engine: anything a
         program can observe must be identical, fault plan or not *)
      ("reorganized-fast", reorganized, false, None, Cpu.Fast);
      ("raw-interlocked-fast", raw, true, None, Cpu.Fast);
      ("reorganized-fast-faults", reorganized, false, Some plan_cfg, Cpu.Fast) ]
  in
  let mismatches, retries, injected =
    List.fold_left
      (fun (ms, rs, inj) (vname, program, interlocked, plan, engine) ->
        let o, injected = run_variant ?fuel ~engine ~interlocked ~plan program in
        let ms =
          match divergence ~reference o with
          | Some d -> (vname, d) :: ms
          | None -> ms
        in
        (ms, rs + o.retries, inj + injected))
      ([], 0, 0) variants
  in
  { seed; ok = mismatches = []; mismatches = List.rev mismatches; retries; injected }

(* Each seed's differential run is a pure function of its arguments (the
   generator and fault plan carry their own seeded streams), so a sweep is
   embarrassingly parallel; results come back in seed order regardless of
   the pool size. *)
let differential_sweep ?jobs ?segments ?fuel ?flaky_rate ?irq_rate ~seed ~count
    () =
  Mips_par.map ?jobs
    (fun s -> differential ?segments ?fuel ?flaky_rate ?irq_rate ~seed:s ())
    (List.init count (fun i -> seed + i))

let diff_json d =
  Json.Obj
    [ ("seed", Json.Int d.seed);
      ("ok", Json.Bool d.ok);
      ( "mismatches",
        Json.List
          (List.map
             (fun (v, m) ->
               Json.Obj [ ("variant", Json.Str v); ("divergence", Json.Str m) ])
             d.mismatches) );
      ("retries", Json.Int d.retries);
      ("injected", Json.Int d.injected) ]

(* --- kernel soak ---------------------------------------------------------- *)

type summary = {
  seed : int;
  programs : int;
  steps : int;
  exited : int;
  killed : int;
  live : int;
  kill_reasons : (string * int) list;
  injected : (string * int) list;
  transient_faults : int;
  transient_retries : int;
  watchdog_kills : int;
  double_faults : int;
  oom_kills : int;
  page_faults : int;
  switches : int;
  fuel_exhausted : bool;
  total_cycles : int;
}

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest -> if k = key then (k, n + 1) :: rest else (k, n) :: go rest
  in
  go assoc

let run_soak ?(programs = 4) ?segments ?(quantum = 500) ?watchdog
    ?(data_frames = 16) ?(code_frames = 16) ?backing_limit
    ?(steps = 2_000_000) ~plan ~seed () =
  let k =
    Mips_os.Kernel.create ~data_frames ~code_frames ~quantum ?watchdog
      ?backing_limit ~fault_plan:(Plan.make plan) ()
  in
  for i = 0 to programs - 1 do
    let pseed = (seed * 0x1000) + i in
    let program =
      Mips_reorg.Pipeline.compile (Progen.generate ?segments ~seed:pseed ())
    in
    Mips_os.Kernel.spawn k ~name:(Progen.name ~seed:pseed) program
  done;
  let r = Mips_os.Kernel.run ~fuel:steps k in
  let exited, killed, live, kill_reasons =
    List.fold_left
      (fun (e, ki, li, reasons) (p : Mips_os.Kernel.proc_report) ->
        match (p.Mips_os.Kernel.exit_status, p.Mips_os.Kernel.killed) with
        | Some _, _ -> (e + 1, ki, li, reasons)
        | None, Some reason ->
            (e, ki + 1, li, bump reasons (Mips_os.Kernel.kill_reason_name reason))
        | None, None -> (e, ki, li + 1, reasons))
      (0, 0, 0, []) r.Mips_os.Kernel.procs
  in
  {
    seed;
    programs;
    steps;
    exited;
    killed;
    live;
    kill_reasons;
    injected = Plan.counts (Cpu.fault_plan (Mips_os.Kernel.cpu k));
    transient_faults = r.Mips_os.Kernel.transient_faults;
    transient_retries = r.Mips_os.Kernel.transient_retries;
    watchdog_kills = r.Mips_os.Kernel.watchdog_kills;
    double_faults = r.Mips_os.Kernel.double_faults;
    oom_kills = r.Mips_os.Kernel.oom_kills;
    page_faults = r.Mips_os.Kernel.page_faults;
    switches = r.Mips_os.Kernel.switches;
    fuel_exhausted = r.Mips_os.Kernel.fuel_exhausted;
    total_cycles = r.Mips_os.Kernel.total_cycles;
  }

let summary_json s =
  Json.Obj
    [ ("seed", Json.Int s.seed);
      ("programs", Json.Int s.programs);
      ("steps", Json.Int s.steps);
      ("exited", Json.Int s.exited);
      ("killed", Json.Int s.killed);
      ("live", Json.Int s.live);
      ( "kill_reasons",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.kill_reasons) );
      ( "injected",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.injected) );
      ("transient_faults", Json.Int s.transient_faults);
      ("transient_retries", Json.Int s.transient_retries);
      ("watchdog_kills", Json.Int s.watchdog_kills);
      ("double_faults", Json.Int s.double_faults);
      ("oom_kills", Json.Int s.oom_kills);
      ("page_faults", Json.Int s.page_faults);
      ("switches", Json.Int s.switches);
      ("fuel_exhausted", Json.Bool s.fuel_exhausted);
      ("total_cycles", Json.Int s.total_cycles) ]
