(** Differential and kernel soak harnesses over generated programs.

    {b Differential soak}: one generated program is assembled two ways —
    raw program order (correct only on the hardware-interlock comparison
    machine) and fully reorganized (hazard-free on the no-interlock
    machine) — and executed on the matching machines, with and without a
    transient-fault plan.  Every execution must agree with the fault-free
    reorganized reference on everything a program can observe: monitor
    output, exit status, fault attribution, and the static data area.
    (Final register values are deliberately {e not} compared: delay-slot
    schemes 2 and 3 legitimately speculate dead ALU writes, so dead
    registers may differ between schedules.)

    Only {e semantically transparent} fault kinds are injected here —
    flaky-memory restarts and spurious interrupts — so equivalence must
    hold exactly.  Bit flips corrupt state by design and are exercised by
    the {b kernel soak} instead, whose property is survival and precise
    attribution: the kernel never globally halts on a process-local fault;
    every process ends exited, killed (with a {!Mips_os.Kernel.kill_reason})
    or still live at fuel exhaustion. *)

(** One executed variant of a generated program. *)
type outcome = {
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;  (** rendered cause/detail when aborted *)
  mem : int list;  (** the static data area after execution *)
  retries : int;  (** transient restarts performed *)
}

type diff = {
  seed : int;
  ok : bool;
  mismatches : (string * string) list;  (** (variant, first divergence) *)
  retries : int;  (** transient restarts across the faulted variants *)
  injected : int;  (** injections decided across the faulted variants *)
}

val differential :
  ?segments:int -> ?fuel:int -> ?flaky_rate:float -> ?irq_rate:float ->
  ?engine:Mips_machine.Cpu.engine -> seed:int -> unit -> diff
(** Generate program [seed]; run reorganized/no-interlock (fault-free
    reference), raw/interlocked, reorganized/no-interlock + faults, and
    raw/interlocked + faults — then the same schedules again under the
    predecoded fast engine ({!Mips_machine.Cpu.Fast}), clean and faulted —
    and compare every variant against the reference.  This makes the
    generator the differential oracle for the fast engine's equivalence
    contract.  [engine] substitutes another engine (e.g.
    {!Mips_machine.Cpu.Jit}) for the alternate-engine variants; the
    variant names carry the engine's {!Mips_machine.Cpu.engine_name}, so
    the default keeps the historical "reorganized-fast" names.
    Defaults: [flaky_rate = 0.01], [irq_rate = 0.005]. *)

val differential_sweep :
  ?jobs:int -> ?segments:int -> ?fuel:int -> ?flaky_rate:float ->
  ?irq_rate:float -> ?engine:Mips_machine.Cpu.engine -> seed:int ->
  count:int -> unit -> diff list
(** [count] differential runs at seeds [seed .. seed+count-1], fanned out
    over the {!Mips_par} worker pool and returned in seed order — each run
    is a pure function of its seed, so the list is identical for any pool
    size. *)

val diff_json : diff -> Mips_obs.Json.t

(** Aggregate result of a multi-process kernel soak run. *)
type summary = {
  seed : int;
  programs : int;
  steps : int;
  exited : int;
  killed : int;
  live : int;  (** still runnable when fuel ran out *)
  kill_reasons : (string * int) list;  (** reason name -> processes *)
  injected : (string * int) list;  (** fault-plan counters, fixed order *)
  transient_faults : int;
  transient_retries : int;
  watchdog_kills : int;
  double_faults : int;
  oom_kills : int;
  page_faults : int;
  switches : int;
  fuel_exhausted : bool;
  total_cycles : int;
}

val run_soak :
  ?programs:int -> ?segments:int -> ?quantum:int -> ?watchdog:int ->
  ?data_frames:int -> ?code_frames:int -> ?backing_limit:int ->
  ?steps:int -> ?engine:Mips_machine.Cpu.engine ->
  plan:Mips_fault.Plan.config -> seed:int -> unit -> summary
(** Spawn [programs] generated processes (seeds derived from [seed]) under
    a hardened kernel with the given fault plan and run for at most [steps]
    machine steps (default 2,000,000).  Deterministic: equal arguments give
    equal summaries, bit for bit.  The returned summary always satisfies
    [exited + killed + live = programs]. *)

val summary_json : summary -> Mips_obs.Json.t

val result_json : summary -> diff list -> Mips_obs.Json.t
(** The complete soak result as one object —
    [{"kernel": ..., "differential": [...]}] — exactly what
    [mipsc soak --json] prints and what a [mipsd] soak session returns, so
    the two outputs are byte-comparable. *)

(** {2 Checkpointed soak}

    The resilient variant of {!run_soak} + {!differential_sweep}: the run
    writes versioned, checksummed checkpoints as it goes, and a
    killed-and-resumed run is {e bit-identical} to an uninterrupted one —
    the kernel executes in slices whose loop state lives in the kernel
    itself, programs are regenerated from their seeds on resume, and
    {!Mips_os.Kernel.restore_sched} + {!Mips_resilience.Snapshot.restore_machine}
    reinstate the exact machine.  Differential seeds run in supervised
    chunks: a seed whose job is quarantined is attributed in place
    ([mismatches = [("supervisor", error)]]) instead of sinking the sweep. *)

type resilient_result =
  | Complete of summary * diff list
  | Interrupted
      (** only with [max_slices] — the in-process stand-in for a kill *)

val run_checkpointed :
  ?programs:int -> ?segments:int -> ?quantum:int -> ?watchdog:int ->
  ?data_frames:int -> ?code_frames:int -> ?backing_limit:int -> ?steps:int ->
  ?diff_count:int -> ?diff_jobs:int -> ?diff_chunk:int ->
  ?checkpoint:string -> ?checkpoint_every:int -> ?resume:string ->
  ?obs:Mips_obs.Sink.t -> ?max_slices:int ->
  ?before_write:(unit -> unit) ->
  ?engine:Mips_machine.Cpu.engine ->
  plan:Mips_fault.Plan.config -> seed:int -> unit ->
  (resilient_result, Mips_resilience.Snapshot.error) result
(** Run the soak, checkpointing to [checkpoint] every [checkpoint_every]
    kernel steps (default 250,000) and after each differential chunk
    (default [diff_chunk = 4] seeds); a final "done" checkpoint is written
    at completion, so resuming always works no matter when the previous
    process died.  [resume] restores from a checkpoint written by the
    {e same} parameters (byte-compared; mismatch is [Corrupt]).
    [max_slices] interrupts the kernel phase after that many slices —
    a deterministic in-process kill for tests.  [before_write] runs
    immediately before each checkpoint file write — the crash-point hook
    [mipsd]'s recovery harness uses to enumerate every journal write
    boundary (an exception raised there aborts the run {e before} the
    write lands).  With [diff_count = 0] the
    result's diff list is empty and [Complete (s, [])] carries the same
    summary {!run_soak} returns.  [engine] (default [Ref]) drives both the
    kernel phase and the differential phase's alternate-engine variants,
    and is part of the byte-compared checkpoint parameters. *)
