open Mips_isa
module Rng = Mips_fault.Rng
module Asm = Mips_reorg.Asm
module Monitor = Mips_machine.Monitor

let data_words = 32

(* Register discipline: values live in r0..r6; r7/r8 are loop counters (one
   per nesting depth); r9 holds the displacement base; r10 is the trap
   argument; r13 the link register.  The stack and frame registers are never
   touched, so images run hosted and under the kernel alike. *)
let n_temps = 7
let base_reg = Reg.r 9
let counter_reg depth = Reg.r (7 + depth)
let max_loop_depth = 2

let rtemp rng = Reg.r (Rng.int rng n_temps)

(* Every op here is total under disabled overflow traps (shifts are masked
   by the machine); Div/Rem are excluded because a zero divisor faults
   regardless of the enable — and a speculated divide would then fault on a
   path the raw schedule never executes. *)
let safe_ops =
  [| Alu.Add; Alu.Sub; Alu.Rsub; Alu.And; Alu.Or; Alu.Xor;
     Alu.Sll; Alu.Srl; Alu.Sra; Alu.Mul |]

let operand rng =
  if Rng.int rng 2 = 0 then Operand.R (rtemp rng)
  else Operand.I4 (Rng.int rng 16)

let alu_ins rng =
  let op = safe_ops.(Rng.int rng (Array.length safe_ops)) in
  Asm.ins (Piece.Alu (Alu.Binop (op, Operand.R (rtemp rng), operand rng, rtemp rng)))

(* Addresses stay inside the static data area: absolute [0, 32) or a
   displacement off [base_reg] (which holds 4) in [4, 4 + 24). *)
let address rng =
  if Rng.int rng 2 = 0 then Mem.Abs (Rng.int rng data_words)
  else Mem.Disp (base_reg, Rng.int rng (data_words - 8))

let load_ins rng =
  Asm.ins (Piece.Mem (Mem.Load (Mem.W32, address rng, rtemp rng)))

let store_ins rng =
  Asm.ins (Piece.Mem (Mem.Store (Mem.W32, rtemp rng, address rng)))

let output_ins rng =
  let call = if Rng.int rng 2 = 0 then Monitor.putint else Monitor.putchar in
  [ Asm.ins (Piece.Alu (Alu.Mov (Operand.R (rtemp rng), Reg.scratch0)));
    Asm.ins (Piece.Branch (Branch.Trap call)) ]

(* comparisons for forward skips: anything goes, the target is ahead *)
let conds =
  [| Cond.Eq; Cond.Ne; Cond.Lt; Cond.Le; Cond.Gt; Cond.Ge; Cond.Ltu;
     Cond.Geu; Cond.Neg; Cond.Nonneg; Cond.Even; Cond.Odd |]

type ctx = {
  rng : Rng.t;
  mutable label_counter : int;
  has_sub : bool;
}

let fresh_label ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf ".L%s%d" prefix ctx.label_counter

(* one straight-line instruction (no control flow) *)
let simple_ins ctx =
  match Rng.int ctx.rng 4 with
  | 0 | 1 -> [ alu_ins ctx.rng ]
  | 2 -> [ load_ins ctx.rng ]
  | _ -> [ store_ins ctx.rng ]

let rec segment ctx ~depth =
  let choices = if depth < max_loop_depth then 7 else 6 in
  match Rng.int ctx.rng choices with
  | 0 | 1 -> simple_ins ctx
  | 2 -> output_ins ctx.rng
  | 3 ->
      (* forward skip over a small body: taken or not, control rejoins *)
      let l = fresh_label ctx "skip" in
      let c = conds.(Rng.int ctx.rng (Array.length conds)) in
      let body =
        List.concat
          (List.init (1 + Rng.int ctx.rng 2) (fun _ -> simple_ins ctx))
      in
      (Asm.ins
         (Piece.Branch (Branch.Cbr (c, Operand.R (rtemp ctx.rng), operand ctx.rng, l)))
      :: body)
      @ [ Asm.label l ]
  | 4 when ctx.has_sub ->
      [ Asm.ins (Piece.Branch (Branch.Jal ("leaf", Reg.link))) ]
  | 4 | 5 -> simple_ins ctx @ [ alu_ins ctx.rng ]
  | _ ->
      (* bounded countdown loop on this depth's dedicated counter: the body
         only writes temps, so termination is structural *)
      let counter = counter_reg depth in
      let n = 2 + Rng.int ctx.rng 4 in
      let l = fresh_label ctx "loop" in
      let body =
        List.concat
          (List.init (1 + Rng.int ctx.rng 2) (fun _ ->
               segment ctx ~depth:(depth + 1)))
      in
      (Asm.ins (Piece.Alu (Alu.Movi8 (n, counter))) :: Asm.label l :: body)
      @ [ Asm.ins
            (Piece.Alu (Alu.Binop (Alu.Sub, Operand.R counter, Operand.I4 1, counter)));
          Asm.ins
            (Piece.Branch (Branch.Cbr (Cond.Gt, Operand.R counter, Operand.I4 0, l)))
        ]

(* a non-recursive leaf: a few register/memory operations, then return *)
let leaf_sub ctx =
  let body = List.concat (List.init (2 + Rng.int ctx.rng 3) (fun _ -> simple_ins ctx)) in
  (Asm.label "leaf" :: body)
  @ [ Asm.ins (Piece.Branch (Branch.Jind Reg.link)) ]

let generate ?(segments = 12) ~seed () =
  let rng = Rng.create seed in
  let ctx = { rng; label_counter = 0; has_sub = Rng.int rng 2 = 0 } in
  let preamble =
    Asm.label "main"
    :: Asm.ins (Piece.Alu (Alu.Movi8 (4, base_reg)))
    :: List.init n_temps (fun i ->
           Asm.ins (Piece.Alu (Alu.Movi8 (Rng.int rng 128, Reg.r i))))
  in
  let body =
    List.concat (List.init segments (fun _ -> segment ctx ~depth:0))
  in
  let finale =
    [ Asm.ins (Piece.Alu (Alu.Mov (Operand.R (Reg.r 0), Reg.scratch0)));
      Asm.ins (Piece.Branch (Branch.Trap Monitor.putint));
      Asm.ins (Piece.Alu (Alu.Movi8 (0, Reg.scratch0)));
      Asm.ins (Piece.Branch (Branch.Trap Monitor.exit_)) ]
  in
  let sub = if ctx.has_sub then leaf_sub ctx else [] in
  let data = List.init data_words (fun i -> (i, Rng.int rng 256)) in
  Asm.make ~data ~data_words ~entry:"main" (preamble @ body @ finale @ sub)

let name ~seed = Printf.sprintf "gen%d" seed
