(** Seeded random whole-program generator for soak testing.

    Generates closed, terminating programs directly as symbolic assembly
    ({!Mips_reorg.Asm.program}), so one generated program can be assembled
    both raw (program order — correct only on the hardware-interlock
    comparison machine) and fully reorganized (hazard-free on the
    no-interlock machine) and the two executions compared.

    Generation is deterministic: the same seed always yields the same
    program, on every platform.

    Generated programs stay inside the semantically deterministic subset:

    - ALU work on a fixed temporary pool (no divide/remainder — a zero
      divisor faults regardless of the overflow-trap enable);
    - word loads and stores confined to the static data area;
    - bounded countdown loops on dedicated counter registers, nested at
      most two deep; forward conditional skips;
    - an optional non-recursive leaf subroutine called via [jal]/[jind];
    - monitor output ([putint]/[putchar]) and a final [exit].

    They never touch the stack or frame registers, so the same image runs
    hosted (kernel mode, mapping off) and under the demand-paged kernel. *)

val data_words : int
(** Size of the generated programs' static data area, in words (32) — also
    the window the differential harness compares. *)

val generate : ?segments:int -> seed:int -> unit -> Mips_reorg.Asm.program
(** [generate ~seed ()] is a fresh program; [segments] scales its size
    (default 12 top-level segments). *)

val name : seed:int -> string
(** A display name for the generated program, ["gen<seed>"]. *)
