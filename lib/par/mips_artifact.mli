(** A content-keyed cache of the evaluation's build and simulation
    artifacts.

    Every table of the paper's evaluation consumes some mix of: the checked
    program, the symbolic assembly for a code-generation config, the
    reorganized machine program at a postpass level, and the statistics of
    a full simulation.  Each artifact is computed once per distinct key —
    (source digest, codegen config, postpass level, engine, fuel, input) —
    and shared by every consumer, including worker domains: lookups are
    mutex-protected, computes run outside the lock, and a compute that
    loses a publish race to an identical key adopts the winner's value, so
    callers always share one physical copy.  All cached values are
    deterministic functions of their key, which is what makes a parallel
    warm-up phase safe: workers only decide {e when} an artifact is built,
    never {e what} it contains. *)

type sim = {
  program : Mips_machine.Program.t;
  result : Mips_machine.Hosted.result;
  stats : Mips_machine.Stats.t;
      (** read-only by convention: shared across consumers *)
}

val default_fuel : int
(** 500,000,000 steps — the harness-wide budget corpus runs execute under. *)

val tast : string -> Mips_frontend.Tast.program
(** The checked program for a source text. *)

val asm : ?config:Mips_ir.Config.t -> string -> Mips_reorg.Asm.program
(** The symbolic assembly under a code-generation config (default
    {!Mips_ir.Config.default}). *)

val compiled :
  ?config:Mips_ir.Config.t -> ?level:Mips_reorg.Pipeline.level -> string ->
  Mips_machine.Program.t
(** The reorganized, assembled program at a postpass level (default
    [Delay_filled]). *)

val simulated :
  ?config:Mips_ir.Config.t -> ?level:Mips_reorg.Pipeline.level ->
  ?engine:Mips_machine.Cpu.engine -> ?fuel:int -> ?input:string -> string ->
  sim
(** A full simulation of the program: compiled as above, then run to
    completion (or the fuel budget) on a fresh machine matching the
    config's addressing mode. *)

val entry_sim :
  ?config:Mips_ir.Config.t -> ?level:Mips_reorg.Pipeline.level ->
  ?engine:Mips_machine.Cpu.engine -> ?fuel:int ->
  Mips_corpus.Corpus.entry -> sim
(** {!simulated} on a corpus entry's source with the entry's input. *)

type counters = { hits : int; misses : int; corrupt : int }

val counters : unit -> counters
(** Process-lifetime totals across all four tables (not reset by
    {!clear}).  Every entry is published with a fingerprint of its
    serialized form; a hit is re-fingerprinted before being served, and a
    mismatch — a consumer mutated a shared artifact, or memory was damaged
    — evicts the entry, counts in [corrupt], and recomputes instead of
    serving the damaged value. *)

val clear : unit -> unit
(** Empty every table — for benchmarks that need a cold harness. *)
