(* Mips_par — a fixed-size Domain worker pool with deterministic fan-out.

   The evaluation harness is a bag of independent per-program jobs (compile
   this source, simulate that one) whose costs differ by orders of
   magnitude, so work is claimed item-by-item off a shared atomic counter:
   a worker that draws a Puzzle run does not stall the rest of the corpus
   behind it.  Determinism is preserved by construction — every result is
   written to the slot of the item that produced it and reassembled in
   submission order, so the output of [map] is byte-identical for any
   [jobs], including 1 (which runs inline on the calling domain and spawns
   nothing).

   Exceptions raised by the worker function are captured per item and
   re-raised on the calling domain for the lowest failing index — again
   independent of scheduling. *)

let configured_jobs : int option Atomic.t = Atomic.make None

(* Harness-wide default pool size, as set by a --jobs flag.  The fallback is
   what the runtime believes the hardware supports. *)
let set_default_jobs n = Atomic.set configured_jobs (Some (max 1 n))

let default_jobs () =
  match Atomic.get configured_jobs with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

exception Job_failed of { label : string; error : exn }

let () =
  Printexc.register_printer (function
    | Job_failed { label; error } ->
        Some (Printf.sprintf "job %s failed: %s" label (Printexc.to_string error))
    | _ -> None)

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

(* Run [body 0 .. body (n-1)] on [jobs] domains (the caller counts as one). *)
let run_pool ~jobs ~n body =
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        body i;
        go ()
      end
    in
    go ()
  in
  let spawned = max 0 (min (jobs - 1) (n - 1)) in
  let domains = List.init spawned (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains

let collect results =
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)
       results)

let map ?jobs ?label f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n Pending in
    run_pool ~jobs ~n (fun i ->
        results.(i) <-
          (match f items.(i) with
          | v -> Done v
          | exception e ->
              (* capture the backtrace of the failing job itself; with
                 [label] the exception is wrapped so the re-raise on the
                 calling domain names which job died *)
              let bt = Printexc.get_raw_backtrace () in
              let e =
                match label with
                | Some name -> Job_failed { label = name items.(i); error = e }
                | None -> e
              in
              Failed (e, bt)));
    collect results
  end

(* Map each item, then fold the results in submission order.  The fold is
   sequential and ordered, so [merge] need not be commutative — and when it
   is associative the result is independent of how items were scheduled. *)
let map_reduce ?jobs ~map:f ~merge ~zero xs =
  List.fold_left merge zero (map ?jobs f xs)

(* Like [map], but each worker records into its own private metrics
   registry; the registries are folded into [obs] after the join, in worker
   order.  Counters and timers therefore see no cross-domain writes. *)
(* Like [map], but each job runs inside a span on its worker's lane, so a
   host trace shows what every domain was doing when.  Lanes are private to
   their worker (the [map_obs] discipline), and the caller reads the merged
   spans only after this returns — i.e. after the join. *)
let map_spans ?jobs ~tracer ~name f xs =
  if not (Mips_obs.Span.tracer_enabled tracer) then map ?jobs f xs
  else begin
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let workers = max 1 (min jobs n) in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let worker wid () =
        let sp = Mips_obs.Span.lane tracer wid in
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <-
              (match
                 Mips_obs.Span.with_ sp (name items.(i)) (fun () -> f items.(i))
               with
              | v -> Done v
              | exception e -> Failed (e, Printexc.get_raw_backtrace ()));
            go ()
          end
        in
        go ()
      in
      let domains =
        List.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain.join domains;
      collect results
    end
  end

let map_obs ?jobs ~obs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let workers = max 1 (min jobs n) in
    let sinks = Array.init workers (fun _ -> Mips_obs.Metrics.create ()) in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker wid () =
      let obs = sinks.(wid) in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            (match f ~obs items.(i) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ()));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Array.iter (fun sink -> Mips_obs.Metrics.merge ~into:obs sink) sinks;
    collect results
  end
