(** A fixed-size Domain worker pool with deterministic fan-out.

    The evaluation harness is a bag of independent per-program jobs whose
    costs differ by orders of magnitude, so workers claim items one at a
    time off a shared counter (a worker that draws a Puzzle run does not
    stall the rest of the corpus behind it).  Determinism is preserved by
    construction: every result is written to its item's slot and the list
    is reassembled in submission order, so {!map} output is byte-identical
    for any [jobs] — including 1, which runs inline and spawns nothing. *)

val set_default_jobs : int -> unit
(** Set the harness-wide default pool size (as a [--jobs] flag does);
    clamped to at least 1. *)

val default_jobs : unit -> int
(** The configured default, else [Domain.recommended_domain_count ()]. *)

exception Job_failed of { label : string; error : exn }
(** Wrapper for an exception escaping a labelled job (see {!map}'s [label]).
    A printer is registered, so an uncaught one reads
    ["job <label> failed: <error>"]. *)

val map : ?jobs:int -> ?label:('a -> string) -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] with the work spread over [jobs] domains (the caller counts
    as one).  Results come back in submission order.  If [f] raises, the
    exception of the {e lowest failing index} is re-raised on the calling
    domain with the failing job's backtrace — independent of scheduling.
    With [label], the re-raised exception is wrapped in {!Job_failed}
    carrying the failing item's label (the backtrace still points at the
    original failure); without it the original exception comes through
    untouched. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> merge:('c -> 'b -> 'c) -> zero:'c ->
  'a list -> 'c
(** Map each item on the pool, then fold the results in submission order on
    the calling domain.  The fold is sequential and ordered, so [merge]
    need not be commutative; when it is associative the result is
    independent of how items were scheduled. *)

val map_spans :
  ?jobs:int -> tracer:Mips_obs.Span.tracer -> name:('a -> string) ->
  ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, with each job timed as a span named [name item] on its
    worker's lane of [tracer] — a host trace then shows what every domain
    was doing when.  With {!Mips_obs.Span.no_tracer} this is exactly
    {!map}.  Read [Mips_obs.Span.tracer_spans] only after this returns
    (the workers have joined by then). *)

val map_obs :
  ?jobs:int -> obs:Mips_obs.Metrics.t -> (obs:Mips_obs.Metrics.t -> 'a -> 'b) ->
  'a list -> 'b list
(** Like {!map} for instrumented work: each worker records into its own
    private metrics registry, and the registries are folded into [obs]
    after the join (in worker order), so counters and timers see no
    cross-domain writes. *)
