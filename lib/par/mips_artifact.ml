(* Mips_artifact — a content-keyed cache of the evaluation's build and
   simulation artifacts.

   Every table of the paper's evaluation consumes some mix of: the checked
   program (TAST), the symbolic assembly for a code-generation config, the
   reorganized machine program at a postpass level, and the statistics of a
   full simulation.  Before this cache each analysis module recomputed the
   chain from source, so a report re-did the whole corpus several times
   over.  Here each artifact is computed once per distinct key

       (source digest, codegen config, postpass level, engine, fuel, input)

   and shared by every consumer — including worker domains: the tables are
   protected by one mutex, and a compute that loses a race to an identical
   key adopts the winner's value, so callers always share one copy.  All
   cached values are deterministic functions of their key, which is what
   makes the parallel warm-up phase of the report safe: workers only decide
   *when* an artifact is built, never *what* it contains. *)

open Mips_machine

type sim = {
  program : Program.t;
  result : Hosted.result;
  stats : Stats.t;  (* read-only by convention: shared across consumers *)
}

let default_fuel = 500_000_000

let digest src = Digest.to_hex (Digest.string src)

let config_key (c : Mips_ir.Config.t) =
  Printf.sprintf "%s/%s/%x"
    (match c.Mips_ir.Config.target with
    | Mips_ir.Config.Word_addressed -> "word"
    | Mips_ir.Config.Byte_addressed -> "byte")
    (match c.Mips_ir.Config.bool_strategy with
    | Mips_ir.Config.Setcond -> "setcond"
    | Mips_ir.Config.Early_out -> "earlyout")
    c.Mips_ir.Config.stack_top

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* each table stores (value, fingerprint at publication) *)
let tasts : (string, Mips_frontend.Tast.program * string) Hashtbl.t =
  Hashtbl.create 32

let asms : (string * string, Mips_reorg.Asm.program * string) Hashtbl.t =
  Hashtbl.create 32

let programs : (string * string * int, Program.t * string) Hashtbl.t =
  Hashtbl.create 32

let sims :
    (string * string * int * string * int * string, sim * string) Hashtbl.t =
  Hashtbl.create 32

let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let corrupt_count = Atomic.make 0

type counters = { hits : int; misses : int; corrupt : int }

let counters () =
  {
    hits = Atomic.get hit_count;
    misses = Atomic.get miss_count;
    corrupt = Atomic.get corrupt_count;
  }

let clear () =
  with_lock (fun () ->
      Hashtbl.reset tasts;
      Hashtbl.reset asms;
      Hashtbl.reset programs;
      Hashtbl.reset sims)

(* Every entry is published with a fingerprint of its serialized form.
   Cached values are shared physically across consumers who must treat them
   as read-only; re-checking the fingerprint on each hit catches a consumer
   that mutated a shared artifact (or damaged memory) before the corruption
   spreads into every later table built from it. *)
let fingerprint v = Digest.string (Marshal.to_string v [])

(* Look up, else compute outside the lock (so concurrent misses on distinct
   keys overlap) and publish.  If another domain published the same key
   first, its value wins and ours is dropped — both are identical by
   construction, and adopting the winner keeps all consumers sharing one
   physical artifact.  A hit whose fingerprint no longer matches is
   evicted, counted, and recomputed. *)
let cached tbl key compute =
  let compute_and_publish () =
    Atomic.incr miss_count;
    let v = compute () in
    with_lock (fun () ->
        match Hashtbl.find_opt tbl key with
        | Some (winner, _) -> winner
        | None ->
            Hashtbl.replace tbl key (v, fingerprint v);
            v)
  in
  match with_lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some (v, fp) ->
      if String.equal (fingerprint v) fp then begin
        Atomic.incr hit_count;
        v
      end
      else begin
        Atomic.incr corrupt_count;
        with_lock (fun () ->
            (* evict only if the table still holds the damaged entry *)
            match Hashtbl.find_opt tbl key with
            | Some (w, fp') when w == v && String.equal fp' fp ->
                Hashtbl.remove tbl key
            | _ -> ());
        compute_and_publish ()
      end
  | None -> compute_and_publish ()

let tast src =
  cached tasts (digest src) (fun () -> Mips_frontend.Semant.check_string src)

let asm ?(config = Mips_ir.Config.default) src =
  cached asms
    (digest src, config_key config)
    (fun () -> Mips_codegen.Compile.to_asm_checked ~config (tast src))

let compiled ?(config = Mips_ir.Config.default)
    ?(level = Mips_reorg.Pipeline.Delay_filled) src =
  cached programs
    (digest src, config_key config, Mips_reorg.Pipeline.rank level)
    (fun () -> Mips_reorg.Pipeline.compile ~level (asm ~config src))

let simulated ?(config = Mips_ir.Config.default)
    ?(level = Mips_reorg.Pipeline.Delay_filled) ?(engine = Cpu.Ref)
    ?(fuel = default_fuel) ?(input = "") src =
  cached sims
    ( digest src,
      config_key config,
      Mips_reorg.Pipeline.rank level,
      Cpu.engine_name engine,
      fuel,
      digest input )
    (fun () ->
      let program = compiled ~config ~level src in
      let cpu =
        Cpu.create ~config:(Mips_codegen.Compile.machine_config config) ()
      in
      let result = Hosted.run_program_on ~fuel ~input ~engine cpu program in
      { program; result; stats = Cpu.stats cpu })

let entry_sim ?config ?level ?engine ?fuel (e : Mips_corpus.Corpus.entry) =
  simulated ?config ?level ?engine ?fuel ~input:e.Mips_corpus.Corpus.input
    e.Mips_corpus.Corpus.source
