(* Mips_profile — basic-block and edge profiles over the per-PC counters
   the machine collects ([Cpu.set_profiling]).

   The machine's buffers are flat per-address arrays; this module folds
   them into structure: basic blocks (leaders from static branch shape via
   [Predecode], dynamic edge targets, and execution-count discontinuities —
   the last makes block entry counts exact even when exceptions cut a block
   short), taken edges, a cycle attribution per block split into
   issue/stall/shadow, and the hot adjacent-pair table (cmp+branch,
   load+use) that macro-op fusion studies use to pick candidates.

   The attribution is exact by construction, not estimated: summing every
   block's cycles plus [other_cycles] reproduces the run's [Stats.cycles],
   and the issue/stall splits likewise (the invariant the test suite checks
   on the corpus). *)

module Cpu = Mips_machine.Cpu
module Predecode = Mips_machine.Predecode
module Stats = Mips_machine.Stats
module Json = Mips_obs.Json
open Mips_isa

type block = {
  b_first : int;  (* physical word addresses, inclusive *)
  b_last : int;
  b_count : int;  (* executions of the block head *)
  b_issue : int;  (* issue cycles net of delay-shadow words *)
  b_stall : int;
  b_shadow : int;
}

let block_cycles b = b.b_issue + b.b_stall + b.b_shadow

type pair_kind = Cmp_branch | Load_use

let pair_kind_name = function
  | Cmp_branch -> "cmp+branch"
  | Load_use -> "load+use"

type pair = {
  p_at : int;  (* address of the first word of the pair *)
  p_kind : pair_kind;
  p_count : int;
  p_first : string;  (* rendered words *)
  p_second : string;
}

type t = {
  program : string;
  blocks : block list;  (* hottest first *)
  edges : ((int * int) * int) list;  (* ((from, to), taken), hottest first *)
  pairs : pair list;  (* hottest first *)
  other_cycles : int;
  total_issue : int;
  total_stall : int;
  total_shadow : int;
}

let total_cycles t =
  t.total_issue + t.total_stall + t.total_shadow + t.other_cycles

(* Adjacent-pair classification.  A load+use pair is a word whose loaded
   register the next word reads (the interlock/reorganization tension of
   the paper); a cmp+branch pair is a comparison whose result the next
   word's conditional branch tests (the classic fusion candidate). *)
let classify_pair (e1 : Predecode.entry) (e2 : Predecode.entry) =
  if not (Reg.Set.is_empty (Reg.Set.inter e1.Predecode.load_writes e2.Predecode.reads))
  then Some Load_use
  else
    match (e1.Predecode.alu, e2.Predecode.branch) with
    | Some (Alu.Setc (_, _, _, d)), Some (Branch.Cbr (_, a, b, _))
      when a = Operand.R d || b = Operand.R d ->
        Some Cmp_branch
    | _ -> None

let capture ?(program = "guest") cpu =
  match Cpu.profile cpu with
  | None -> invalid_arg "Mips_profile.capture: profiling is not armed"
  | Some p ->
      let counts = p.Cpu.pr_counts in
      let n = Array.length counts in
      let interlock = (Cpu.config cpu).Cpu.interlock in
      (* lower each executed word once; block shape and pair classification
         both read from here *)
      let entries = Array.make n Predecode.nop in
      for i = 0 to n - 1 do
        if counts.(i) > 0 then entries.(i) <- Predecode.lower (Cpu.read_code cpu i)
      done;
      (* leaders: run starts, count discontinuities, words after a branch's
         shadow, static direct targets, dynamic edge targets *)
      let leader = Array.make n false in
      for i = 0 to n - 1 do
        if counts.(i) > 0 then
          if i = 0 || counts.(i - 1) = 0 || counts.(i) <> counts.(i - 1) then
            leader.(i) <- true
      done;
      for i = 0 to n - 1 do
        if counts.(i) > 0 && Predecode.ends_block entries.(i) then begin
          let shadow =
            if interlock then 0
            else match Predecode.branch_delay entries.(i) with
              | Some d -> d
              | None -> 0
          in
          let next = i + shadow + 1 in
          if next < n then leader.(next) <- true;
          match Predecode.branch_target entries.(i) with
          | Some tgt when tgt >= 0 && tgt < n -> leader.(tgt) <- true
          | _ -> ()
        end
      done;
      Hashtbl.iter
        (fun (_, tgt) _ -> if tgt >= 0 && tgt < n then leader.(tgt) <- true)
        p.Cpu.pr_edges;
      (* cut the executed address space into blocks *)
      let blocks = ref [] in
      let i = ref 0 in
      while !i < n do
        if counts.(!i) = 0 then incr i
        else begin
          let first = !i in
          let j = ref (first + 1) in
          while !j < n && counts.(!j) > 0 && not leader.(!j) do
            incr j
          done;
          let last = !j - 1 in
          let issue = ref 0 and stalls = ref 0 and shadow = ref 0 in
          for k = first to last do
            issue := !issue + counts.(k) - p.Cpu.pr_shadow.(k);
            shadow := !shadow + p.Cpu.pr_shadow.(k);
            stalls := !stalls + p.Cpu.pr_stalls.(k)
          done;
          blocks :=
            { b_first = first;
              b_last = last;
              b_count = counts.(first);
              b_issue = !issue;
              b_stall = !stalls;
              b_shadow = !shadow }
            :: !blocks;
          i := !j
        end
      done;
      let blocks =
        List.sort
          (fun a b ->
            match compare (block_cycles b) (block_cycles a) with
            | 0 -> compare a.b_first b.b_first
            | c -> c)
          !blocks
      in
      let edges =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.Cpu.pr_edges []
        |> List.sort (fun ((ka : int * int), (va : int)) (kb, vb) ->
               match compare vb va with 0 -> compare ka kb | c -> c)
      in
      (* hot adjacent pairs, counted at the frequency of the less-executed
         member so an exception-split pair is not over-counted *)
      let pairs = ref [] in
      for k = 0 to n - 2 do
        if counts.(k) > 0 && counts.(k + 1) > 0 then
          match classify_pair entries.(k) entries.(k + 1) with
          | Some kind ->
              pairs :=
                { p_at = k;
                  p_kind = kind;
                  p_count = min counts.(k) counts.(k + 1);
                  p_first = Lazy.force entries.(k).Predecode.render;
                  p_second = Lazy.force entries.(k + 1).Predecode.render }
                :: !pairs
          | None -> ()
      done;
      let pairs =
        List.sort
          (fun a b ->
            match compare b.p_count a.p_count with
            | 0 -> compare a.p_at b.p_at
            | c -> c)
          !pairs
      in
      let ti = ref 0 and ts = ref 0 and tsh = ref 0 in
      List.iter
        (fun b ->
          ti := !ti + b.b_issue;
          ts := !ts + b.b_stall;
          tsh := !tsh + b.b_shadow)
        blocks;
      { program;
        blocks;
        edges;
        pairs;
        other_cycles = p.Cpu.pr_other_cycles;
        total_issue = !ti;
        total_stall = !ts;
        total_shadow = !tsh }

(* --- text exporters ----------------------------------------------------- *)

let block_label b = Printf.sprintf "blk_%d_%d" b.b_first b.b_last

let pp_hotspots ?(top = 10) ppf t =
  let total = max 1 (total_cycles t) in
  Format.fprintf ppf "@[<v>hot blocks of %s (total %d cycles)@ " t.program
    (total_cycles t);
  Format.fprintf ppf "%4s %13s %9s %9s %9s %8s %7s  %s@ " "#" "block" "count"
    "cycles" "issue" "stall" "shadow" "share";
  List.iteri
    (fun i b ->
      if i < top then
        Format.fprintf ppf "%4d %6d-%-6d %9d %9d %9d %8d %7d %5.1f%%@ " (i + 1)
          b.b_first b.b_last b.b_count (block_cycles b) b.b_issue b.b_stall
          b.b_shadow
          (100. *. float_of_int (block_cycles b) /. float_of_int total))
    t.blocks;
  if t.other_cycles > 0 then
    Format.fprintf ppf "%4s %13s %9s %9d (unattributed)@ " "" "other" ""
      t.other_cycles;
  Format.fprintf ppf "@]"

let pp_edges ?(top = 10) ppf t =
  Format.fprintf ppf "@[<v>hot taken edges@ ";
  List.iteri
    (fun i ((from, tgt), taken) ->
      if i < top then
        Format.fprintf ppf "%4d %6d -> %-6d %9d@ " (i + 1) from tgt taken)
    t.edges;
  Format.fprintf ppf "@]"

let pp_pairs ?(top = 10) ppf t =
  Format.fprintf ppf "@[<v>hot adjacent pairs (fusion candidates)@ ";
  List.iteri
    (fun i p ->
      if i < top then
        Format.fprintf ppf "%4d %-10s %9d  @[%6d: %s@ %6d: %s@]@ " (i + 1)
          (pair_kind_name p.p_kind) p.p_count p.p_at p.p_first (p.p_at + 1)
          p.p_second)
    t.pairs;
  Format.fprintf ppf "@]"

(* Folded-stack flamegraph text (Brendan Gregg's collapsed format): one
   "frame;frame value" line per stack.  Guest profiles are two frames deep
   — program, then block — which is all a flat PC profile can honestly
   claim. *)
let folded t =
  let buf = Buffer.create 256 in
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "%s;%s %d\n" t.program (block_label b) (block_cycles b)))
    (List.sort (fun a b -> compare a.b_first b.b_first) t.blocks);
  if t.other_cycles > 0 then
    Buffer.add_string buf (Printf.sprintf "%s;other %d\n" t.program t.other_cycles);
  Buffer.contents buf

(* speedscope's "sampled" profile: a frame table plus one single-frame
   stack per block, weighted by its cycles. *)
let speedscope t =
  let blocks = List.sort (fun a b -> compare a.b_first b.b_first) t.blocks in
  let frames =
    List.map (fun b -> Json.Obj [ ("name", Json.Str (block_label b)) ]) blocks
    @ (if t.other_cycles > 0 then [ Json.Obj [ ("name", Json.Str "other") ] ]
       else [])
  in
  let weights =
    List.map (fun b -> Json.Int (block_cycles b)) blocks
    @ (if t.other_cycles > 0 then [ Json.Int t.other_cycles ] else [])
  in
  let samples = List.mapi (fun i _ -> Json.List [ Json.Int i ]) frames in
  Json.Obj
    [ ( "$schema",
        Json.Str "https://www.speedscope.app/file-format-schema.json" );
      ("name", Json.Str t.program);
      ("activeProfileIndex", Json.Int 0);
      ("exporter", Json.Str "mipsc profile");
      ("shared", Json.Obj [ ("frames", Json.List frames) ]);
      ( "profiles",
        Json.List
          [ Json.Obj
              [ ("type", Json.Str "sampled");
                ("name", Json.Str t.program);
                ("unit", Json.Str "none");
                ("startValue", Json.Int 0);
                ("endValue", Json.Int (total_cycles t));
                ("samples", Json.List samples);
                ("weights", Json.List weights) ] ] ) ]

let to_json t =
  Json.Obj
    [ ("program", Json.Str t.program);
      ("total_cycles", Json.Int (total_cycles t));
      ("issue_cycles", Json.Int t.total_issue);
      ("stall_cycles", Json.Int t.total_stall);
      ("shadow_cycles", Json.Int t.total_shadow);
      ("other_cycles", Json.Int t.other_cycles);
      ( "blocks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [ ("first", Json.Int b.b_first);
                   ("last", Json.Int b.b_last);
                   ("count", Json.Int b.b_count);
                   ("cycles", Json.Int (block_cycles b));
                   ("issue", Json.Int b.b_issue);
                   ("stall", Json.Int b.b_stall);
                   ("shadow", Json.Int b.b_shadow) ])
             t.blocks) );
      ( "edges",
        Json.List
          (List.map
             (fun ((from, tgt), taken) ->
               Json.Obj
                 [ ("from", Json.Int from);
                   ("to", Json.Int tgt);
                   ("taken", Json.Int taken) ])
             t.edges) );
      ( "pairs",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [ ("kind", Json.Str (pair_kind_name p.p_kind));
                   ("at", Json.Int p.p_at);
                   ("count", Json.Int p.p_count);
                   ("first", Json.Str p.p_first);
                   ("second", Json.Str p.p_second) ])
             t.pairs) ) ]
