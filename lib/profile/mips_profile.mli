(** Basic-block and edge profiles over the machine's per-PC counters.

    Arm a machine with [Cpu.set_profiling], run it (either engine), then
    {!capture} the buffers into structure: basic blocks with an exact
    issue/stall/shadow cycle attribution, taken edges, and the hot
    adjacent-pair table (cmp+branch, load+use — macro-op fusion
    candidates).  Block boundaries come from the static branch shape
    ({!Mips_machine.Predecode}), dynamic edge targets, and execution-count
    discontinuities, so block entry counts stay exact under exceptions.

    The attribution reconciles with the run's statistics by construction:
    [total_issue + total_shadow = Stats.words],
    [total_stall = Stats.stall_cycles], and {!total_cycles} equals
    [Stats.cycles]. *)

type block = {
  b_first : int;  (** physical word addresses, inclusive *)
  b_last : int;
  b_count : int;  (** executions of the block head *)
  b_issue : int;  (** issue cycles net of delay-shadow words *)
  b_stall : int;
  b_shadow : int;
}

val block_cycles : block -> int

type pair_kind = Cmp_branch | Load_use

val pair_kind_name : pair_kind -> string

type pair = {
  p_at : int;  (** address of the first word of the pair *)
  p_kind : pair_kind;
  p_count : int;
  p_first : string;  (** rendered words *)
  p_second : string;
}

type t = {
  program : string;
  blocks : block list;  (** hottest first *)
  edges : ((int * int) * int) list;  (** ((from, to), taken), hottest first *)
  pairs : pair list;  (** hottest first *)
  other_cycles : int;  (** cycles charged without a resolved fetch pc *)
  total_issue : int;
  total_stall : int;
  total_shadow : int;
}

val capture : ?program:string -> Mips_machine.Cpu.t -> t
(** Fold the machine's profiling buffers into a profile.  [program] labels
    the exports.  @raise Invalid_argument if profiling is not armed. *)

val total_cycles : t -> int
(** [total_issue + total_stall + total_shadow + other_cycles]; equals the
    run's [Stats.cycles]. *)

(** {2 Exporters} *)

val pp_hotspots : ?top:int -> Format.formatter -> t -> unit
(** Ranked hot-block table with the cycle split and each block's share. *)

val pp_edges : ?top:int -> Format.formatter -> t -> unit
val pp_pairs : ?top:int -> Format.formatter -> t -> unit

val folded : t -> string
(** Folded-stack flamegraph text ([program;blk_f_l cycles] per line) —
    feed to any collapsed-stack flamegraph renderer. *)

val speedscope : t -> Mips_obs.Json.t
(** A speedscope "sampled" profile (one weighted single-frame sample per
    block); save as [NAME.speedscope.json] and load at speedscope.app. *)

val to_json : t -> Mips_obs.Json.t
(** Full machine-readable profile: totals, blocks, edges, pairs. *)
