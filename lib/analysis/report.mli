(** Paper-style printing of every reproduced table and figure.

    Each printer takes a formatter and draws its experiment from the
    {!Mips_artifact} cache (compilations and simulations computed once and
    shared between tables), so [print_all] is the one-stop reproduction of
    the paper's evaluation.  The bench harness and the [mipsc report]
    command both use these. *)

val prepare : ?jobs:int -> ?include_heavy:bool -> unit -> unit
(** Warm the artifact cache with every compilation and simulation the
    tables need, fanned out over [jobs] worker domains (default: the
    harness-wide {!Mips_par.default_jobs}).  The tables themselves always
    run serially against the warm cache, so report output is byte-identical
    for any [jobs] — the pool only decides {e when} an artifact is built.
    [print_all] and [json_all] call this themselves; exposed for harnesses
    that want to time or stage the warm-up separately. *)

val prepare_supervised :
  ?policy:Mips_resilience.Supervise.policy -> ?jobs:int ->
  ?include_heavy:bool -> ?inject_poison:string list -> ?obs:Mips_obs.Sink.t ->
  ?tracer:Mips_obs.Span.tracer ->
  unit -> unit Mips_resilience.Supervise.outcome list
(** {!prepare} under the {!Mips_resilience.Supervise} policy: failing jobs
    are retried, persistent failures quarantined and attributed in the
    returned outcomes (labelled ["sim:<config>:<entry>"], ["level:..."],
    ["os:..."], ["asm:..."]), and the breaker degrades later maps to serial
    execution instead of aborting — the cache still warms for every healthy
    artifact.  [inject_poison] prepends always-failing jobs with the given
    labels (tests and the CI smoke run).  On a fault-free run the warmed
    cache is identical to {!prepare}'s. *)

val table1 : Format.formatter -> unit
val table2 : Format.formatter -> unit
val table3 : Format.formatter -> unit
val table4 : Format.formatter -> unit
val table5 : Format.formatter -> unit
val table6 : Format.formatter -> unit

val table7 : ?include_heavy:bool -> Format.formatter -> unit
val table8 : ?include_heavy:bool -> Format.formatter -> unit

val table9 : Format.formatter -> unit
val table10 : ?include_heavy:bool -> Format.formatter -> unit
val table11 : Format.formatter -> unit

val figures1to3 : Format.formatter -> unit
val figure4 : Format.formatter -> unit

val free_cycles : ?include_heavy:bool -> Format.formatter -> unit
(** Section 3.1's free-memory-cycle measurement. *)

val context_switches : Format.formatter -> unit
(** Section 3.2: context-switch traffic and the map-untouched property,
    measured on a small multi-programmed OS run. *)

val hotspots : ?top:int -> Format.formatter -> unit
(** Ranked hot-block tables for the kernel-workload programs, profiled on
    the fast engine — what [mipsc report --hotspots] appends. *)

val json_hotspots : unit -> Mips_obs.Json.t
(** The same profiles as one object keyed by program name. *)

val report_schema_version : int
(** Version of {!json_all}'s object shape, emitted as its
    ["schema_version"] field; bumped on structural change so downstream
    consumers can detect format drift. *)

val print_all : ?jobs:int -> ?include_heavy:bool -> Format.formatter -> unit

val json_all : ?jobs:int -> ?include_heavy:bool -> unit -> Mips_obs.Json.t
(** The whole evaluation as one JSON object, keyed ["schema_version"],
    ["table1_constants"] ... ["table11_postpass_levels"], ["figures"],
    ["free_cycles"], ["context_switches"] — the machine-readable twin of
    {!print_all} that [mipsc report --json] emits so CI and the bench
    harness can diff reproduction numbers against the paper's tables. *)
