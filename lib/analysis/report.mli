(** Paper-style printing of every reproduced table and figure.

    Each printer takes a formatter and regenerates its experiment from
    scratch (corpus compilation and, for the dynamic tables, simulation), so
    [print_all] is the one-stop reproduction of the paper's evaluation.
    The bench harness and the [mipsc report] command both use these. *)

val table1 : Format.formatter -> unit
val table2 : Format.formatter -> unit
val table3 : Format.formatter -> unit
val table4 : Format.formatter -> unit
val table5 : Format.formatter -> unit
val table6 : Format.formatter -> unit

val table7 : ?include_heavy:bool -> Format.formatter -> unit
val table8 : ?include_heavy:bool -> Format.formatter -> unit

val table9 : Format.formatter -> unit
val table10 : ?include_heavy:bool -> Format.formatter -> unit
val table11 : Format.formatter -> unit

val figures1to3 : Format.formatter -> unit
val figure4 : Format.formatter -> unit

val free_cycles : ?include_heavy:bool -> Format.formatter -> unit
(** Section 3.1's free-memory-cycle measurement. *)

val context_switches : Format.formatter -> unit
(** Section 3.2: context-switch traffic and the map-untouched property,
    measured on a small multi-programmed OS run. *)

val print_all : ?include_heavy:bool -> Format.formatter -> unit

val json_all : ?include_heavy:bool -> unit -> Mips_obs.Json.t
(** The whole evaluation as one JSON object, keyed
    ["table1_constants"] ... ["table11_postpass_levels"], ["figures"],
    ["free_cycles"], ["context_switches"] — the machine-readable twin of
    {!print_all} that [mipsc report --json] emits so CI and the bench
    harness can diff reproduction numbers against the paper's tables. *)
