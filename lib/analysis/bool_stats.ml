open Mips_frontend

type t = {
  expressions : int;
  ending_in_jumps : int;
  ending_in_stores : int;
  operators : int;
  complex : int;
}

let zero =
  { expressions = 0; ending_in_jumps = 0; ending_in_stores = 0; operators = 0;
    complex = 0 }

let add a b =
  {
    expressions = a.expressions + b.expressions;
    ending_in_jumps = a.ending_in_jumps + b.ending_in_jumps;
    ending_in_stores = a.ending_in_stores + b.ending_in_stores;
    operators = a.operators + b.operators;
    complex = a.complex + b.complex;
  }

(* operators inside one boolean expression *)
let rec operator_count (e : Tast.expr) =
  match e.Tast.e with
  | Tast.Rel (_, a, b) -> 1 + subexpr_count a + subexpr_count b
  | Tast.Log (_, a, b) -> 1 + operator_count a + operator_count b
  | Tast.Not a -> 1 + operator_count a
  | Tast.Lval _ | Tast.Boolean _ -> 0
  | Tast.Call _ -> 0
  | _ -> 0

(* relations can nest boolean sub-expressions only via parenthesized
   booleans compared with =/<>; count those too *)
and subexpr_count (e : Tast.expr) =
  match e.Tast.ty with Types.Bool -> operator_count e | _ -> 0

let record acc ~jump e =
  let ops = operator_count e in
  if ops = 0 then acc  (* a bare variable/constant is not an expression to
                          evaluate *)
  else
    add acc
      {
        expressions = 1;
        ending_in_jumps = (if jump then 1 else 0);
        ending_in_stores = (if jump then 0 else 1);
        operators = ops;
        complex = (if ops > 1 then 1 else 0);
      }

(* stored boolean values inside arbitrary expressions (arguments, operands
   of comparisons, ...) *)
let rec scan_expr acc (e : Tast.expr) =
  match e.Tast.e with
  | Tast.Num _ | Tast.Chr _ | Tast.Boolean _ -> acc
  | Tast.Lval lv -> scan_lvalue acc lv
  | Tast.Bin (_, a, b) -> scan_expr (scan_expr acc a) b
  | Tast.Rel (_, a, b) -> scan_expr (scan_expr acc a) b
  | Tast.Log (_, a, b) -> scan_expr (scan_expr acc a) b
  | Tast.Not a | Tast.Neg a | Tast.Ord a | Tast.Chr_of a -> scan_expr acc a
  | Tast.Call (_, args) ->
      List.fold_left
        (fun acc arg ->
          match arg with
          | Tast.By_value e ->
              let acc =
                if Types.equal_ty e.Tast.ty Types.Bool then record acc ~jump:false e
                else acc
              in
              scan_expr acc e
          | Tast.By_reference lv -> scan_lvalue acc lv)
        acc args

and scan_lvalue acc (lv : Tast.lvalue) =
  List.fold_left
    (fun acc sel ->
      match sel with
      | Tast.Index (e, _) -> scan_expr acc e
      | Tast.Field _ -> acc)
    acc lv.Tast.path

let rec scan_stmt acc (s : Tast.stmt) =
  match s with
  | Tast.Assign (lv, e) ->
      let acc = scan_lvalue acc lv in
      let acc =
        if Types.equal_ty e.Tast.ty Types.Bool then record acc ~jump:false e else acc
      in
      scan_expr acc e
  | Tast.Assign_result e ->
      let acc =
        if Types.equal_ty e.Tast.ty Types.Bool then record acc ~jump:false e else acc
      in
      scan_expr acc e
  | Tast.Call_stmt (_, args) ->
      scan_expr acc
        { Tast.e = Tast.Call ("", args); ty = Types.Int }
  | Tast.If (c, a, b) ->
      let acc = record acc ~jump:true c in
      let acc = scan_expr acc c in
      scan_stmts (scan_stmts acc a) b
  | Tast.While (c, body) ->
      let acc = record acc ~jump:true c in
      let acc = scan_expr acc c in
      scan_stmts acc body
  | Tast.Repeat (body, c) ->
      let acc = scan_stmts acc body in
      let acc = record acc ~jump:true c in
      scan_expr acc c
  | Tast.For (_, lo, _, hi, body) ->
      scan_stmts (scan_expr (scan_expr acc lo) hi) body
  | Tast.Case (e, arms, default) ->
      let acc = scan_expr acc e in
      let acc = List.fold_left (fun a (_, b) -> scan_stmts a b) acc arms in
      (match default with Some b -> scan_stmts acc b | None -> acc)
  | Tast.Write (args, _) ->
      List.fold_left
        (fun acc arg ->
          match arg with
          | Tast.Wexpr e ->
              let acc =
                if Types.equal_ty e.Tast.ty Types.Bool then record acc ~jump:false e
                else acc
              in
              scan_expr acc e
          | Tast.Wstring _ -> acc)
        acc args
  | Tast.Read_char lv -> scan_lvalue acc lv
  | Tast.Halt (Some e) -> scan_expr acc e
  | Tast.Halt None -> acc

and scan_stmts acc stmts = List.fold_left scan_stmt acc stmts

let of_program (p : Tast.program) =
  let acc = scan_stmts zero p.Tast.main in
  List.fold_left (fun acc (f : Tast.func) -> scan_stmts acc f.Tast.body) acc p.Tast.funcs

(* [add] is associative with [zero] as identity, so this is a textbook
   map-reduce: per-program scans over shared TAST artifacts, folded in
   corpus order. *)
let of_corpus ?jobs () =
  Mips_par.map_reduce ?jobs
    ~map:(fun (e : Mips_corpus.Corpus.entry) ->
      of_program (Mips_artifact.tast e.Mips_corpus.Corpus.source))
    ~merge:add ~zero Mips_corpus.Corpus.reference

let avg_operators t =
  if t.expressions = 0 then 0.
  else float_of_int t.operators /. float_of_int t.expressions

let jump_fraction t =
  if t.expressions = 0 then 0.
  else float_of_int t.ending_in_jumps /. float_of_int t.expressions

let store_fraction t =
  if t.expressions = 0 then 0.
  else float_of_int t.ending_in_stores /. float_of_int t.expressions
