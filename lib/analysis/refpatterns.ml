open Mips_machine

type pattern = {
  loads : int;
  stores : int;
  byte_loads : int;
  byte_stores : int;
  word_loads : int;
  word_stores : int;
  char_loads : int;
  char_stores : int;
  char_byte_loads : int;
  char_byte_stores : int;
  free_cycle_fraction : float;
  cycles : int;
}

type failure = { program : string; reason : string }

let heavy (e : Mips_corpus.Corpus.entry) =
  List.exists
    (fun t -> String.equal t.Mips_corpus.Corpus.name e.Mips_corpus.Corpus.name)
    Mips_corpus.Corpus.table11

(* The whole pattern is a projection of merged execution statistics, so the
   aggregation over a corpus is just [Stats.merge] — associative, which is
   what lets the per-program simulations land in any order. *)
let pattern_of_stats (s : Stats.t) =
  {
    loads = Stats.total_loads s;
    stores = Stats.total_stores s;
    byte_loads = s.Stats.byte_refs.Stats.loads + s.Stats.byte_char_refs.Stats.loads;
    byte_stores = s.Stats.byte_refs.Stats.stores + s.Stats.byte_char_refs.Stats.stores;
    word_loads = s.Stats.word_refs.Stats.loads + s.Stats.word_char_refs.Stats.loads;
    word_stores = s.Stats.word_refs.Stats.stores + s.Stats.word_char_refs.Stats.stores;
    char_loads = s.Stats.word_char_refs.Stats.loads + s.Stats.byte_char_refs.Stats.loads;
    char_stores =
      s.Stats.word_char_refs.Stats.stores + s.Stats.byte_char_refs.Stats.stores;
    char_byte_loads = s.Stats.byte_char_refs.Stats.loads;
    char_byte_stores = s.Stats.byte_char_refs.Stats.stores;
    free_cycle_fraction = Stats.free_cycle_fraction s;
    cycles = s.Stats.cycles;
  }

let describe_result (r : Hosted.result) =
  match r.Hosted.fault with
  | Some (cause, detail) ->
      Printf.sprintf "faulted: %s (detail %d)" (Cause.name cause) detail
  | None ->
      if not r.Hosted.halted then "did not halt (fuel exhausted)"
      else "diverged"

(* One simulation per entry, fanned out over the worker pool and served from
   the artifact cache; a program that faults or runs out of fuel becomes a
   typed failure instead of aborting the whole table, so one bad entry costs
   one row, not the report. *)
let run ?jobs ?(include_heavy = true) config entries =
  let entries =
    List.filter
      (fun e -> include_heavy || not (heavy e))
      entries
  in
  let outcomes =
    Mips_par.map ?jobs
      (fun (e : Mips_corpus.Corpus.entry) ->
        match Mips_artifact.entry_sim ~config e with
        | sim ->
            if (not sim.Mips_artifact.result.Hosted.halted)
               || sim.Mips_artifact.result.Hosted.fault <> None
            then
              Error
                { program = e.Mips_corpus.Corpus.name;
                  reason = describe_result sim.Mips_artifact.result }
            else Ok sim.Mips_artifact.stats
        | exception exn ->
            Error
              { program = e.Mips_corpus.Corpus.name;
                reason = Printexc.to_string exn })
      entries
  in
  let stats, failures =
    List.fold_left
      (fun (ss, fs) -> function
        | Ok s -> (s :: ss, fs)
        | Error f -> (ss, f :: fs))
      ([], []) outcomes
  in
  let merged = List.fold_left Stats.merge (Stats.zero ()) (List.rev stats) in
  (pattern_of_stats merged, List.rev failures)

(* these dominate wall-clock time (the Puzzle runs), so memoize: the corpus
   is fixed and the simulator deterministic.  Main-domain only — parallel
   callers go through the artifact cache underneath. *)
let cache : (string * bool, pattern * failure list) Hashtbl.t = Hashtbl.create 4

let clear_memo () = Hashtbl.reset cache

let memo key thunk =
  match Hashtbl.find_opt cache key with
  | Some p -> p
  | None ->
      let p = thunk () in
      Hashtbl.replace cache key p;
      p

let word_allocated ?jobs ?(include_heavy = false) () =
  memo ("word", include_heavy) (fun () ->
      run ?jobs ~include_heavy Mips_ir.Config.default Mips_corpus.Corpus.all)

let byte_allocated ?jobs ?(include_heavy = false) () =
  memo ("byte", include_heavy) (fun () ->
      run ?jobs ~include_heavy Mips_ir.Config.byte_machine Mips_corpus.Corpus.all)

let total p = p.loads + p.stores

let pct p n =
  let t = total p in
  if t = 0 then 0. else 100. *. float_of_int n /. float_of_int t

let frequencies p =
  let t = float_of_int (total p) in
  ( float_of_int p.byte_loads /. t,
    float_of_int p.byte_stores /. t,
    float_of_int p.word_loads /. t,
    float_of_int p.word_stores /. t )
