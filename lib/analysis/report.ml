let line ppf fmt = Format.fprintf ppf (fmt ^^ "@,")
let header ppf title = Format.fprintf ppf "@,=== %s ===@," title
let vbox ppf f =
  Format.fprintf ppf "@[<v>";
  f ();
  Format.fprintf ppf "@]@."

(* --- parallel warm-up ------------------------------------------------------ *)

(* The kernel measurement compiles its workload with user stacks below the
   kernel's reserved region; one definition, shared by the text and JSON
   printers, keyed into the artifact cache like every other config. *)
let os_config =
  { Mips_ir.Config.default with
    Mips_ir.Config.stack_top = Mips_os.Kernel.user_stack_top }

let os_workload = [ "fib"; "sieve"; "strops" ]

(* Every expensive artifact the tables below will ask for, as one flat bag of
   jobs for the worker pool.  The tables then run serially on the calling
   domain against a warm cache, so the report is byte-for-byte identical
   whatever the pool size: workers only decide {e when} an artifact is
   built, never {e what} it contains.  Simulations go first — they dwarf the
   compile-only jobs, and the pool's work stealing fills the tail with the
   cheap ones. *)
let prepare_jobs ?(include_heavy = false) () =
  let sim_jobs cname config =
    List.filter_map
      (fun (e : Mips_corpus.Corpus.entry) ->
        if Refpatterns.heavy e && not include_heavy then None
        else
          Some
            ( Printf.sprintf "sim:%s:%s" cname e.Mips_corpus.Corpus.name,
              fun () ->
                (* compile failures re-surface as per-program table rows *)
                try ignore (Mips_artifact.entry_sim ~config e) with _ -> () ))
      Mips_corpus.Corpus.all
  in
  let level_jobs =
    List.concat_map
      (fun (e : Mips_corpus.Corpus.entry) ->
        List.map
          (fun level ->
            ( Printf.sprintf "level:%d:%s" (Mips_reorg.Pipeline.rank level)
                e.Mips_corpus.Corpus.name,
              fun () ->
                ignore
                  (Mips_artifact.compiled ~level e.Mips_corpus.Corpus.source) ))
          Mips_reorg.Pipeline.all_levels)
      Mips_corpus.Corpus.table11
  in
  let os_jobs =
    List.map
      (fun name ->
        ( "os:" ^ name,
          fun () ->
            let e = Mips_corpus.Corpus.find name in
            ignore
              (Mips_artifact.compiled ~config:os_config
                 e.Mips_corpus.Corpus.source) ))
      os_workload
  in
  let asm_jobs =
    List.map
      (fun (e : Mips_corpus.Corpus.entry) ->
        ( "asm:" ^ e.Mips_corpus.Corpus.name,
          fun () -> ignore (Mips_artifact.asm e.Mips_corpus.Corpus.source) ))
      Mips_corpus.Corpus.reference
  in
  sim_jobs "default" Mips_ir.Config.default
  @ sim_jobs "byte" Mips_ir.Config.byte_machine
  @ level_jobs @ os_jobs @ asm_jobs

let prepare ?jobs ?include_heavy () =
  ignore
    (Mips_par.map ?jobs ~label:fst
       (fun (_, job) -> job ())
       (prepare_jobs ?include_heavy ()))

(* The resilient warm-up: the same bag of jobs under the supervisor.  A
   poisoned job (injected by tests and the CI smoke run) is retried,
   quarantined and attributed in its outcome; the cache still ends up warm
   for every healthy artifact, so the tables render with at worst per-row
   failures instead of the report aborting.  Poison labels are listed
   first so a breaker trip degrades the bulk of the map — the interesting
   path to exercise. *)
let prepare_supervised ?policy ?jobs ?include_heavy ?(inject_poison = []) ?obs
    ?tracer () =
  let poison =
    List.map
      (fun lbl ->
        (lbl, fun () -> failwith (Printf.sprintf "injected poison job %s" lbl)))
      inject_poison
  in
  Mips_resilience.Supervise.supervised_map ?policy ?jobs ?obs ?tracer
    ~label:fst
    (fun (_, job) -> job ())
    (poison @ prepare_jobs ?include_heavy ())

(* --- Table 1 ----------------------------------------------------------- *)

let table1 ppf =
  vbox ppf (fun () ->
      header ppf "Table 1: Constant distribution in compiled programs";
      let d = Constants.of_corpus () in
      line ppf "%-12s %10s %10s" "magnitude" "count" "percent";
      List.iter
        (fun (label, n, p) -> line ppf "%-12s %10d %9.1f%%" label n p)
        (Constants.rows d);
      line ppf "total constants: %d" d.Constants.total;
      line ppf "4-bit inline immediate covers  %5.1f%%  (paper: ~70%%)"
        (100. *. Constants.coverage_imm4 d);
      line ppf "8-bit move immediate covers    %5.1f%%  (paper: ~95%%)"
        (100. *. Constants.coverage_imm8 d))

(* --- Table 2 ----------------------------------------------------------- *)

let table2 ppf =
  vbox ppf (fun () ->
      header ppf "Table 2: Condition code operations (taxonomy)";
      line ppf "%-10s %-30s %-20s" "machine" "condition code" "access";
      List.iter
        (fun m ->
          let name, cc, access = Mips_cc.Taxonomy.row m in
          line ppf "%-10s %-30s %-20s" name cc access)
        Mips_cc.Taxonomy.machines)

(* --- Table 3 ----------------------------------------------------------- *)

let table3 ppf =
  vbox ppf (fun () ->
      header ppf "Table 3: Use of condition codes (static, over the corpus)";
      let s = Mips_cc.Ccstats.of_corpus Mips_cc.Cc.vax_style in
      let pct n =
        100. *. float_of_int n /. float_of_int (max 1 s.Mips_cc.Ccstats.compares)
      in
      line ppf "compares without condition codes        %6d"
        s.Mips_cc.Ccstats.compares;
      line ppf "compares saved, CC set by operators     %6d  (%.1f%%; paper: 1.1%%)"
        s.Mips_cc.Ccstats.saved_by_ops
        (pct s.Mips_cc.Ccstats.saved_by_ops);
      line ppf "compares saved, CC set by ops and moves %6d"
        s.Mips_cc.Ccstats.saved_by_ops_and_moves;
      line ppf "moves used only to set condition code   %6d"
        s.Mips_cc.Ccstats.moves_only_for_cc;
      line ppf "total compares genuinely saved          %6d  (%.1f%%; paper: 2.1%%)"
        s.Mips_cc.Ccstats.genuinely_saved
        (pct s.Mips_cc.Ccstats.genuinely_saved))

(* --- Table 4 ----------------------------------------------------------- *)

let table4 ppf =
  vbox ppf (fun () ->
      header ppf "Table 4: Boolean expressions (corpus shape)";
      let b = Bool_stats.of_corpus () in
      line ppf "boolean expressions                     %6d" b.Bool_stats.expressions;
      line ppf "average operators/boolean expression    %6.2f  (paper: 1.66)"
        (Bool_stats.avg_operators b);
      line ppf "ending in jumps                         %5.1f%%  (paper: 80.9%%)"
        (100. *. Bool_stats.jump_fraction b);
      line ppf "ending in stores                        %5.1f%%  (paper: 19.1%%)"
        (100. *. Bool_stats.store_fraction b);
      line ppf "complex (more than one operator)        %6d" b.Bool_stats.complex)

(* --- Tables 5 and 6 ------------------------------------------------------ *)

let table5 ppf =
  vbox ppf (fun () ->
      header ppf "Table 5: Compare/Register/Branch instructions per boolean operator";
      line ppf "%-44s %-10s %-10s" "support" "static" "dynamic";
      List.iter
        (fun (s, p) ->
          let f (c : Snippets.classes) =
            Printf.sprintf "%d/%d/%d" c.Snippets.compares c.Snippets.regs
              c.Snippets.branches
          in
          line ppf "%-44s %-10s %-10s" (Bool_cost.support_name s)
            (f p.Bool_cost.static_classes)
            (f p.Bool_cost.dynamic_classes))
        (Bool_cost.table5 ()))

let table6 ppf =
  vbox ppf (fun () ->
      header ppf "Table 6: Cost of evaluating boolean expressions (reg=1 cmp=2 br=4)";
      let stats = Bool_stats.of_corpus () in
      let rows = Bool_cost.table6 ~stats () in
      line ppf "%-44s %8s %8s %8s" "support" "store" "jump" "total";
      List.iter
        (fun (r : Bool_cost.cost_row) ->
          line ppf "%-44s %8.1f %8.1f %8.1f"
            (Bool_cost.support_name r.Bool_cost.support)
            r.Bool_cost.store_cost r.Bool_cost.jump_cost r.Bool_cost.total_cost)
        rows;
      line ppf "improvement, conditional set over CC+branch:  %5.1f%%  (paper: 33.0%%)"
        (Bool_cost.improvement rows Bool_cost.Cc_condset Bool_cost.Cc_branch_full);
      line ppf "improvement, set conditionally over CC+branch: %5.1f%% (paper: 53.5%%)"
        (Bool_cost.improvement rows Bool_cost.Mips_setcond Bool_cost.Cc_branch_full);
      line ppf "improvement, set conditionally over early-out: %5.1f%% (paper: 36.5%%)"
        (Bool_cost.improvement rows Bool_cost.Mips_setcond Bool_cost.Cc_branch_early))

(* --- Tables 7 and 8 ------------------------------------------------------ *)

let pattern_table title paper_lines ppf (p : Refpatterns.pattern) =
  header ppf title;
  let pct = Refpatterns.pct p in
  line ppf "all data references: %.1f%% loads, %.1f%% stores  (paper: 71.2 / 28.7)"
    (pct p.Refpatterns.loads) (pct p.Refpatterns.stores);
  line ppf "  8-bit loads   %5.1f%%    32-bit loads   %5.1f%%"
    (pct p.Refpatterns.byte_loads) (pct p.Refpatterns.word_loads);
  line ppf "  8-bit stores  %5.1f%%    32-bit stores  %5.1f%%"
    (pct p.Refpatterns.byte_stores) (pct p.Refpatterns.word_stores);
  let creftotal = p.Refpatterns.char_loads + p.Refpatterns.char_stores in
  if creftotal > 0 then begin
    let cpct n = 100. *. float_of_int n /. float_of_int creftotal in
    line ppf "character references: %.1f%% loads, %.1f%% stores"
      (cpct p.Refpatterns.char_loads) (cpct p.Refpatterns.char_stores);
    line ppf "  8-bit char loads  %5.1f%%   32-bit char loads  %5.1f%% (of all refs)"
      (pct p.Refpatterns.char_byte_loads)
      (pct (p.Refpatterns.char_loads - p.Refpatterns.char_byte_loads));
    line ppf "  8-bit char stores %5.1f%%   32-bit char stores %5.1f%%"
      (pct p.Refpatterns.char_byte_stores)
      (pct (p.Refpatterns.char_stores - p.Refpatterns.char_byte_stores))
  end;
  line ppf "%s" paper_lines

let pattern_failures ppf failures =
  List.iter
    (fun (f : Refpatterns.failure) ->
      line ppf "!! %s excluded from the aggregate: %s" f.Refpatterns.program
        f.Refpatterns.reason)
    failures

let table7 ?include_heavy ppf =
  vbox ppf (fun () ->
      let p, failures = Refpatterns.word_allocated ?include_heavy () in
      pattern_table "Table 7: Data reference patterns, word-allocated programs"
        "(paper: 8-bit loads 2.6%, 32-bit loads 68.6%, 8-bit stores 2.6%, 32-bit stores 26.2%)"
        ppf p;
      pattern_failures ppf failures)

let table8 ?include_heavy ppf =
  vbox ppf (fun () ->
      let p, failures = Refpatterns.byte_allocated ?include_heavy () in
      pattern_table "Table 8: Data reference patterns, byte-allocated programs"
        "(paper: 8-bit loads 6.6%, 32-bit loads 64.6%, 8-bit stores 5.9%, 32-bit stores 22.9%)"
        ppf p;
      pattern_failures ppf failures)

(* --- Tables 9 and 10 ------------------------------------------------------ *)

let table9 ppf =
  vbox ppf (fun () ->
      header ppf "Table 9: Cost of byte operations (cycles; mem=4, alu=2)";
      line ppf "%-18s %12s %12s %12s" "operation" "byte machine" "byte +15%"
        "MIPS (word)";
      List.iter
        (fun (op, (c : Byte_cost.op_cost)) ->
          line ppf "%-18s %12.1f %12.1f %12.1f" (Byte_cost.op_name op)
            c.Byte_cost.byte_machine c.Byte_cost.byte_machine_overhead
            c.Byte_cost.word_machine)
        (Byte_cost.table9 ()))

let table10 ?include_heavy ppf =
  vbox ppf (fun () ->
      header ppf "Table 10: Cost per average data reference, word vs byte addressing";
      let wp, _ = Refpatterns.word_allocated ?include_heavy () in
      let bp, _ = Refpatterns.byte_allocated ?include_heavy () in
      let t = Byte_cost.table10 ~word_pattern:wp ~byte_pattern:bp in
      let row name (m : Byte_cost.machine_cost) =
        line ppf "%-34s %6.3f + %6.3f + %6.3f + %6.3f = %6.3f" name
          m.Byte_cost.m_byte_loads m.Byte_cost.m_byte_stores
          m.Byte_cost.m_word_loads m.Byte_cost.m_word_stores m.Byte_cost.m_total
      in
      line ppf "%-34s %s" ""
        "byte-lds  byte-sts  word-lds  word-sts   total";
      row "word-allocated mix on MIPS" t.Byte_cost.word_alloc_on_mips;
      row "byte-allocated mix on MIPS" t.Byte_cost.byte_alloc_on_mips;
      row "word-allocated mix on byte machine" t.Byte_cost.word_alloc_on_byte_machine;
      row "byte-allocated mix on byte machine" t.Byte_cost.byte_alloc_on_byte_machine;
      line ppf "byte-addressing penalty, word-allocated mix: %5.1f%%  (paper: 9 - 11.8%%)"
        t.Byte_cost.penalty_word_alloc_pct;
      line ppf "byte-addressing penalty, byte-allocated mix: %5.1f%%  (paper: 7.7 - 14.6%%)"
        t.Byte_cost.penalty_byte_alloc_pct)

(* --- Table 11 ------------------------------------------------------------- *)

let table11 ppf =
  vbox ppf (fun () ->
      header ppf "Table 11: Cumulative static improvements with postpass optimization";
      line ppf "%-12s %8s %8s %8s %8s %12s" "program" "none" "reorg" "pack"
        "delay" "improvement";
      List.iter
        (fun (r : Table11.row) ->
          match List.map snd r.Table11.counts with
          | [ a; b; c; d ] ->
              line ppf "%-12s %8d %8d %8d %8d %11.1f%%" r.Table11.program a b c d
                r.Table11.improvement_pct
          | _ -> ())
        (Table11.run ());
      line ppf "(paper: fib 20.6%%, puzzle-subscript 24.8%%, puzzle-pointer 35.1%%)")

(* --- figures ---------------------------------------------------------------- *)

let bool_fig ppf (f : Figures.bool_fig) =
  header ppf f.Figures.title;
  line ppf "%s" f.Figures.code;
  line ppf "%d static instructions, %d static branches" f.Figures.static_instructions
    f.Figures.static_branches;
  line ppf "average %.2f instructions, %.2f branches executed" f.Figures.avg_dynamic
    f.Figures.avg_branches

let figures1to3 ppf =
  vbox ppf (fun () ->
      bool_fig ppf (Figures.figure1_full ());
      line ppf "(paper: 8 static, 2 branches, average 7 executed)";
      bool_fig ppf (Figures.figure1_early_out ());
      line ppf "(paper: 6 static, average 4.25 executed, one branch on average)";
      bool_fig ppf (Figures.figure2_cond_set ());
      line ppf "(paper: 5 instructions, no branches)";
      bool_fig ppf (Figures.figure3_mips ());
      line ppf "(paper: 3 instructions, no branches)")

let figure4 ppf =
  vbox ppf (fun () ->
      header ppf "Figure 4: Reorganization, packing, and branch delay";
      let f = Figures.figure4 () in
      line ppf "-- legal code with no-ops (%d words):" f.Figures.before_words;
      line ppf "%s" f.Figures.before;
      line ppf "-- reorganized code (%d words):" f.Figures.after_words;
      line ppf "%s" f.Figures.after)

(* --- systems measurements ------------------------------------------------------ *)

let free_cycles ?include_heavy ppf =
  vbox ppf (fun () ->
      header ppf "Section 3.1: free memory cycles";
      let p, _ = Refpatterns.word_allocated ?include_heavy () in
      line ppf "fraction of issue slots with an idle data-memory port: %.1f%%"
        (100. *. p.Refpatterns.free_cycle_fraction);
      line ppf "(paper: \"the wasted bandwidth came close to 40%%\")")

let context_switches ppf =
  vbox ppf (fun () ->
      header ppf "Section 3.2: context switches";
      let k = Mips_os.Kernel.create ~quantum:400 () in
      List.iter
        (fun name ->
          let e = Mips_corpus.Corpus.find name in
          Mips_os.Kernel.spawn k ~input:e.Mips_corpus.Corpus.input ~name
            (Mips_artifact.compiled ~config:os_config e.Mips_corpus.Corpus.source))
        os_workload;
      let r = Mips_os.Kernel.run k in
      line ppf "processes run to completion: %d" (List.length r.Mips_os.Kernel.procs);
      line ppf "context switches: %d (timer interrupts %d)" r.Mips_os.Kernel.switches
        r.Mips_os.Kernel.interrupts;
      line ppf "page faults: %d, evictions: %d" r.Mips_os.Kernel.page_faults
        r.Mips_os.Kernel.evictions;
      line ppf "cycles per switch (16 saves + 16 restores at full bandwidth + dispatch): %d"
        r.Mips_os.Kernel.switch_cycle_cost;
      line ppf "page-map changes performed during switches: %d"
        r.Mips_os.Kernel.map_changes_during_switches;
      line ppf
        "(paper: \"the on-chip segmentation means that most context switches do \
         not require changes to the memory map\")")

(* --- machine-readable report ------------------------------------------------ *)

module J = Mips_obs.Json

let json_table1 () =
  let d = Constants.of_corpus () in
  J.Obj
    [ ( "rows",
        J.List
          (List.map
             (fun (label, n, p) ->
               J.Obj
                 [ ("magnitude", J.Str label);
                   ("count", J.Int n);
                   ("percent", J.Float p) ])
             (Constants.rows d)) );
      ("total_constants", J.Int d.Constants.total);
      ("coverage_imm4", J.Float (Constants.coverage_imm4 d));
      ("coverage_imm8", J.Float (Constants.coverage_imm8 d)) ]

let json_table2 () =
  J.List
    (List.map
       (fun m ->
         let name, cc, access = Mips_cc.Taxonomy.row m in
         J.Obj
           [ ("machine", J.Str name);
             ("condition_code", J.Str cc);
             ("access", J.Str access) ])
       Mips_cc.Taxonomy.machines)

let json_table3 () =
  let s = Mips_cc.Ccstats.of_corpus Mips_cc.Cc.vax_style in
  J.Obj
    [ ("compares", J.Int s.Mips_cc.Ccstats.compares);
      ("saved_by_ops", J.Int s.Mips_cc.Ccstats.saved_by_ops);
      ("saved_by_ops_and_moves", J.Int s.Mips_cc.Ccstats.saved_by_ops_and_moves);
      ("moves_only_for_cc", J.Int s.Mips_cc.Ccstats.moves_only_for_cc);
      ("genuinely_saved", J.Int s.Mips_cc.Ccstats.genuinely_saved) ]

let json_table4 () =
  let b = Bool_stats.of_corpus () in
  J.Obj
    [ ("expressions", J.Int b.Bool_stats.expressions);
      ("avg_operators", J.Float (Bool_stats.avg_operators b));
      ("jump_fraction", J.Float (Bool_stats.jump_fraction b));
      ("store_fraction", J.Float (Bool_stats.store_fraction b));
      ("complex", J.Int b.Bool_stats.complex) ]

let json_classes (c : Snippets.classes) =
  J.Obj
    [ ("compares", J.Int c.Snippets.compares);
      ("regs", J.Int c.Snippets.regs);
      ("branches", J.Int c.Snippets.branches) ]

let json_table5 () =
  J.List
    (List.map
       (fun (s, (p : Bool_cost.per_operator)) ->
         J.Obj
           [ ("support", J.Str (Bool_cost.support_name s));
             ("static", json_classes p.Bool_cost.static_classes);
             ("dynamic", json_classes p.Bool_cost.dynamic_classes) ])
       (Bool_cost.table5 ()))

let json_table6 () =
  let stats = Bool_stats.of_corpus () in
  let rows = Bool_cost.table6 ~stats () in
  J.Obj
    [ ( "rows",
        J.List
          (List.map
             (fun (r : Bool_cost.cost_row) ->
               J.Obj
                 [ ("support", J.Str (Bool_cost.support_name r.Bool_cost.support));
                   ("store_cost", J.Float r.Bool_cost.store_cost);
                   ("jump_cost", J.Float r.Bool_cost.jump_cost);
                   ("total_cost", J.Float r.Bool_cost.total_cost) ])
             rows) );
      ( "improvement_condset_over_cc_branch_pct",
        J.Float (Bool_cost.improvement rows Bool_cost.Cc_condset Bool_cost.Cc_branch_full) );
      ( "improvement_setcond_over_cc_branch_pct",
        J.Float (Bool_cost.improvement rows Bool_cost.Mips_setcond Bool_cost.Cc_branch_full) );
      ( "improvement_setcond_over_early_out_pct",
        J.Float (Bool_cost.improvement rows Bool_cost.Mips_setcond Bool_cost.Cc_branch_early) ) ]

let json_failures failures =
  J.List
    (List.map
       (fun (f : Refpatterns.failure) ->
         J.Obj
           [ ("program", J.Str f.Refpatterns.program);
             ("reason", J.Str f.Refpatterns.reason) ])
       failures)

let json_pattern ((p : Refpatterns.pattern), failures) =
  let pct = Refpatterns.pct p in
  J.Obj
    [ ("loads", J.Int p.Refpatterns.loads);
      ("stores", J.Int p.Refpatterns.stores);
      ("byte_loads", J.Int p.Refpatterns.byte_loads);
      ("byte_stores", J.Int p.Refpatterns.byte_stores);
      ("word_loads", J.Int p.Refpatterns.word_loads);
      ("word_stores", J.Int p.Refpatterns.word_stores);
      ("char_loads", J.Int p.Refpatterns.char_loads);
      ("char_stores", J.Int p.Refpatterns.char_stores);
      ("char_byte_loads", J.Int p.Refpatterns.char_byte_loads);
      ("char_byte_stores", J.Int p.Refpatterns.char_byte_stores);
      ("load_pct", J.Float (pct p.Refpatterns.loads));
      ("store_pct", J.Float (pct p.Refpatterns.stores));
      ("byte_load_pct", J.Float (pct p.Refpatterns.byte_loads));
      ("byte_store_pct", J.Float (pct p.Refpatterns.byte_stores));
      ("word_load_pct", J.Float (pct p.Refpatterns.word_loads));
      ("word_store_pct", J.Float (pct p.Refpatterns.word_stores));
      ("free_cycle_fraction", J.Float p.Refpatterns.free_cycle_fraction);
      ("cycles", J.Int p.Refpatterns.cycles);
      ("failures", json_failures failures) ]

let json_table9 () =
  J.List
    (List.map
       (fun (op, (c : Byte_cost.op_cost)) ->
         J.Obj
           [ ("operation", J.Str (Byte_cost.op_name op));
             ("byte_machine", J.Float c.Byte_cost.byte_machine);
             ("byte_machine_overhead", J.Float c.Byte_cost.byte_machine_overhead);
             ("word_machine", J.Float c.Byte_cost.word_machine) ])
       (Byte_cost.table9 ()))

let json_machine_cost (m : Byte_cost.machine_cost) =
  J.Obj
    [ ("byte_loads", J.Float m.Byte_cost.m_byte_loads);
      ("byte_stores", J.Float m.Byte_cost.m_byte_stores);
      ("word_loads", J.Float m.Byte_cost.m_word_loads);
      ("word_stores", J.Float m.Byte_cost.m_word_stores);
      ("total", J.Float m.Byte_cost.m_total) ]

let json_table10 ~word_pattern ~byte_pattern =
  let t = Byte_cost.table10 ~word_pattern ~byte_pattern in
  J.Obj
    [ ("word_alloc_on_mips", json_machine_cost t.Byte_cost.word_alloc_on_mips);
      ("byte_alloc_on_mips", json_machine_cost t.Byte_cost.byte_alloc_on_mips);
      ( "word_alloc_on_byte_machine",
        json_machine_cost t.Byte_cost.word_alloc_on_byte_machine );
      ( "byte_alloc_on_byte_machine",
        json_machine_cost t.Byte_cost.byte_alloc_on_byte_machine );
      ("penalty_word_alloc_pct", J.Float t.Byte_cost.penalty_word_alloc_pct);
      ("penalty_byte_alloc_pct", J.Float t.Byte_cost.penalty_byte_alloc_pct) ]

let json_table11 () =
  J.List
    (List.map
       (fun (r : Table11.row) ->
         J.Obj
           [ ("program", J.Str r.Table11.program);
             ( "static_words",
               J.Obj
                 (List.map
                    (fun (level, n) ->
                      (Mips_reorg.Pipeline.level_name level, J.Int n))
                    r.Table11.counts) );
             ("improvement_pct", J.Float r.Table11.improvement_pct) ])
       (Table11.run ()))

let json_bool_fig (f : Figures.bool_fig) =
  J.Obj
    [ ("title", J.Str f.Figures.title);
      ("static_instructions", J.Int f.Figures.static_instructions);
      ("static_branches", J.Int f.Figures.static_branches);
      ("avg_dynamic", J.Float f.Figures.avg_dynamic);
      ("avg_branches", J.Float f.Figures.avg_branches) ]

let json_figures () =
  let f4 = Figures.figure4 () in
  J.Obj
    [ ("figure1_full", json_bool_fig (Figures.figure1_full ()));
      ("figure1_early_out", json_bool_fig (Figures.figure1_early_out ()));
      ("figure2_cond_set", json_bool_fig (Figures.figure2_cond_set ()));
      ("figure3_mips", json_bool_fig (Figures.figure3_mips ()));
      ( "figure4",
        J.Obj
          [ ("before_words", J.Int f4.Figures.before_words);
            ("after_words", J.Int f4.Figures.after_words) ] ) ]

let json_context_switches () =
  let k = Mips_os.Kernel.create ~quantum:400 () in
  List.iter
    (fun name ->
      let e = Mips_corpus.Corpus.find name in
      Mips_os.Kernel.spawn k ~input:e.Mips_corpus.Corpus.input ~name
        (Mips_artifact.compiled ~config:os_config e.Mips_corpus.Corpus.source))
    os_workload;
  Mips_os.Kernel.report_json (Mips_os.Kernel.run k)

(* --- guest hotspots -------------------------------------------------------- *)

(* Bumped when the shape of [json_all]'s object changes, so downstream
   trace/metrics consumers can detect format drift.  Version 1 was the
   unversioned PR 3-5 object; 2 added this field. *)
let report_schema_version = 2

(* Profile one kernel-workload program on the fast engine: the report-level
   view of `mipsc profile run`, and the feedstock for trace-level fusion
   work.  The compile comes from the artifact cache; only the profiled run
   itself is redone (a profiled machine is private by construction). *)
let profile_of name =
  let e = Mips_corpus.Corpus.find name in
  let program = Mips_artifact.compiled e.Mips_corpus.Corpus.source in
  let cpu = Mips_machine.Cpu.create () in
  Mips_machine.Cpu.set_profiling cpu true;
  ignore
    (Mips_machine.Hosted.run_program_on ~fuel:Mips_artifact.default_fuel
       ~input:e.Mips_corpus.Corpus.input ~engine:Mips_machine.Cpu.Fast cpu
       program);
  Mips_profile.capture ~program:name cpu

let hotspots ?(top = 8) ppf =
  vbox ppf (fun () ->
      header ppf "Guest hot blocks (per-program profile, fast engine)";
      List.iter
        (fun name ->
          Format.fprintf ppf "@,";
          Mips_profile.pp_hotspots ~top ppf (profile_of name);
          Format.fprintf ppf "@,")
        os_workload)

let json_hotspots () =
  J.Obj
    (List.map
       (fun name -> (name, Mips_profile.to_json (profile_of name)))
       os_workload)

let json_all ?jobs ?include_heavy () =
  prepare ?jobs ?include_heavy ();
  let word_pattern = Refpatterns.word_allocated ?include_heavy () in
  let byte_pattern = Refpatterns.byte_allocated ?include_heavy () in
  J.Obj
    [ ("schema_version", J.Int report_schema_version);
      ("table1_constants", json_table1 ());
      ("table2_cc_taxonomy", json_table2 ());
      ("table3_cc_savings", json_table3 ());
      ("table4_bool_shapes", json_table4 ());
      ("table5_bool_operators", json_table5 ());
      ("table6_bool_costs", json_table6 ());
      ("table7_word_refpatterns", json_pattern word_pattern);
      ("table8_byte_refpatterns", json_pattern byte_pattern);
      ("table9_byte_op_costs", json_table9 ());
      ( "table10_addressing_penalty",
        json_table10 ~word_pattern:(fst word_pattern)
          ~byte_pattern:(fst byte_pattern) );
      ("table11_postpass_levels", json_table11 ());
      ("figures", json_figures ());
      ( "free_cycles",
        J.Obj
          [ ( "free_cycle_fraction",
              J.Float (fst word_pattern).Refpatterns.free_cycle_fraction ) ] );
      ("context_switches", json_context_switches ()) ]

let print_all ?jobs ?include_heavy ppf =
  prepare ?jobs ?include_heavy ();
  table1 ppf;
  table2 ppf;
  table3 ppf;
  table4 ppf;
  table5 ppf;
  table6 ppf;
  table7 ?include_heavy ppf;
  table8 ?include_heavy ppf;
  table9 ppf;
  table10 ?include_heavy ppf;
  table11 ppf;
  figures1to3 ppf;
  figure4 ppf;
  free_cycles ?include_heavy ppf;
  context_switches ppf
