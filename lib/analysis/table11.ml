(* Table 11 — cumulative static-instruction-count improvements from the
   postpass reorganizer, on the paper's three benchmarks.  Programs come
   from the artifact cache (one reorganizer run per program/level, shared
   with the simulating tables) and the per-program rows are independent, so
   they fan out over the worker pool. *)

type row = {
  program : string;
  counts : (Mips_reorg.Pipeline.level * int) list;  (* static words per level *)
  improvement_pct : float;  (* none -> branch delay *)
}

let analyze_program name source =
  let counts =
    List.map
      (fun level ->
        ( level,
          Mips_machine.Program.static_count (Mips_artifact.compiled ~level source) ))
      Mips_reorg.Pipeline.all_levels
  in
  let naive = List.assoc Mips_reorg.Pipeline.Naive counts in
  let final = List.assoc Mips_reorg.Pipeline.Delay_filled counts in
  {
    program = name;
    counts;
    improvement_pct = 100. *. float_of_int (naive - final) /. float_of_int naive;
  }

let analyze ?jobs entries =
  Mips_par.map ?jobs
    (fun (e : Mips_corpus.Corpus.entry) ->
      analyze_program e.Mips_corpus.Corpus.name e.Mips_corpus.Corpus.source)
    entries

let run ?jobs () = analyze ?jobs Mips_corpus.Corpus.table11
let run_full_corpus ?jobs () = analyze ?jobs Mips_corpus.Corpus.all
