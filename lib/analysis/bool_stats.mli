(** Table 4 — the shape of boolean expressions in the corpus.

    "Average operators/boolean expression 1.66; Boolean expressions ending
    in jumps 80.9%; ending in stores 19.1%."  An expression {e ends in a
    jump} when it controls an if/while/repeat; it {e ends in a store} when
    its 0/1 value is kept (assigned, passed, returned, written).  Operators
    are the relational and logical connectives inside the expression. *)

type t = {
  expressions : int;
  ending_in_jumps : int;
  ending_in_stores : int;
  operators : int;  (** relational + and/or/not, summed over expressions *)
  complex : int;  (** expressions with more than one operator — where the
                      conditional-set approach wins (Section 2.3.2) *)
}

val zero : t
(** Identity of {!add}. *)

val add : t -> t -> t
(** Field-wise sum — associative, so per-program scans fold in any
    grouping. *)

val of_program : Mips_frontend.Tast.program -> t

val of_corpus : ?jobs:int -> unit -> t
(** Scan the reference corpus over the {!Mips_par} pool, reusing checked
    programs from {!Mips_artifact}. *)

val avg_operators : t -> float
val jump_fraction : t -> float
val store_fraction : t -> float
