type distribution = {
  zero : int;
  one : int;
  two : int;
  three_to_15 : int;
  sixteen_to_255 : int;
  above_255 : int;
  total : int;
}

let of_constants cs =
  let d =
    ref { zero = 0; one = 0; two = 0; three_to_15 = 0; sixteen_to_255 = 0;
          above_255 = 0; total = 0 }
  in
  List.iter
    (fun c ->
      let c = abs c in
      let x = !d in
      d :=
        (if c = 0 then { x with zero = x.zero + 1 }
         else if c = 1 then { x with one = x.one + 1 }
         else if c = 2 then { x with two = x.two + 1 }
         else if c <= 15 then { x with three_to_15 = x.three_to_15 + 1 }
         else if c <= 255 then { x with sixteen_to_255 = x.sixteen_to_255 + 1 }
         else { x with above_255 = x.above_255 + 1 });
      d := { !d with total = !d.total + 1 })
    cs;
  !d

(* One constant scan per program, over shared assembly artifacts; the
   per-program lists concatenate in corpus order, so the distribution is the
   same for any pool size. *)
let of_corpus ?jobs () =
  let all =
    List.concat
      (Mips_par.map ?jobs
         (fun (e : Mips_corpus.Corpus.entry) ->
           Mips_codegen.Emit.collect_constants
             (Mips_artifact.asm e.Mips_corpus.Corpus.source))
         Mips_corpus.Corpus.reference)
  in
  of_constants all

let percent d n = if d.total = 0 then 0. else 100. *. float_of_int n /. float_of_int d.total

let coverage_imm4 d =
  percent d (d.zero + d.one + d.two + d.three_to_15) /. 100.

let coverage_imm8 d =
  percent d (d.zero + d.one + d.two + d.three_to_15 + d.sixteen_to_255) /. 100.

let rows d =
  [ ("0", d.zero, percent d d.zero);
    ("1", d.one, percent d d.one);
    ("2", d.two, percent d d.two);
    ("3 - 15", d.three_to_15, percent d d.three_to_15);
    ("16 - 255", d.sixteen_to_255, percent d d.sixteen_to_255);
    ("> 255", d.above_255, percent d d.above_255) ]
