(** Tables 7 and 8 — dynamic data-reference patterns.

    The corpus is executed to completion on the simulator and every data
    reference is classified by the compiler's annotations: load vs store,
    byte-sized vs word-sized object, character vs other data.  Table 7 is
    the word-allocated world (the word-addressed MIPS: characters take full
    words unless packed); Table 8 is the byte-allocated world (the
    byte-addressed machine: all characters and booleans are bytes).

    Simulations are served from {!Mips_artifact} (one run per distinct
    program/config, shared with every other table) and fanned out over the
    {!Mips_par} worker pool; per-program statistics are folded with
    [Stats.merge] in corpus order, so the aggregate is independent of the
    pool size. *)

type pattern = {
  loads : int;
  stores : int;
  byte_loads : int;
  byte_stores : int;
  word_loads : int;
  word_stores : int;
  char_loads : int;
  char_stores : int;
  char_byte_loads : int;
  char_byte_stores : int;
  free_cycle_fraction : float;  (** Section 3.1's measurement, as a bonus *)
  cycles : int;
}

type failure = {
  program : string;  (** corpus entry name *)
  reason : string;  (** what went wrong: fault, fuel exhaustion, compile error *)
}
(** A program that could not contribute to the table.  Failures no longer
    abort the aggregation: the remaining rows stand, and the report says
    which entries diverged. *)

val heavy : Mips_corpus.Corpus.entry -> bool
(** True for the Table 11 benchmark trio (fib and the Puzzles), which the
    paper kept out of its reference-pattern corpus. *)

val run :
  ?jobs:int ->
  ?include_heavy:bool ->
  Mips_ir.Config.t ->
  Mips_corpus.Corpus.entry list ->
  pattern * failure list
(** Execute the programs under the given code-generation configuration and
    aggregate; entries that fault or exhaust fuel are reported as failures
    and excluded from the pattern.  [include_heavy] (default true)
    additionally includes the Table 11 trio — their boolean-array scans
    dominate the mix when let in.  [jobs] sizes the worker pool (default:
    the harness-wide {!Mips_par.default_jobs}). *)

val word_allocated :
  ?jobs:int -> ?include_heavy:bool -> unit -> pattern * failure list
(** Table 7: the reference corpus on the word-addressed machine
    ([include_heavy] defaults to false).  Memoized. *)

val byte_allocated :
  ?jobs:int -> ?include_heavy:bool -> unit -> pattern * failure list
(** Table 8: the reference corpus on the byte-addressed machine.  Memoized. *)

val clear_memo : unit -> unit
(** Drop the memo table (the artifact cache underneath is separate — clear
    that through {!Mips_artifact.clear}).  For benchmarks that need a cold
    analysis layer. *)

val total : pattern -> int

val pct : pattern -> int -> float
(** Count as a percentage of all data references. *)

val frequencies : pattern -> float * float * float * float
(** (byte loads, byte stores, word loads, word stores) as fractions of all
    references — the inputs to Table 10. *)
