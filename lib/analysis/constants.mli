(** Table 1 — distribution of constants in compiled programs.

    "Table 1 contains the distribution of constants (in magnitudes) found in
    a collection of Pascal programs."  We regenerate it by scanning every
    immediate constant in the corpus's compiled code: inline 4-bit
    constants, 8-bit move immediates, long immediates, and displacement
    fields. *)

type distribution = {
  zero : int;
  one : int;
  two : int;
  three_to_15 : int;
  sixteen_to_255 : int;
  above_255 : int;
  total : int;
}

val of_constants : int list -> distribution
(** Bucket a list of constant magnitudes. *)

val of_corpus : ?jobs:int -> unit -> distribution
(** Scan the whole corpus (word-addressed machine, default strategy) over
    the {!Mips_par} pool, one program per work item, sharing assembly
    artifacts with every other table through {!Mips_artifact}. *)

val percent : distribution -> int -> float
(** A bucket count as a percentage of the total. *)

val coverage_imm4 : distribution -> float
(** Fraction of constants expressible as the 4-bit inline immediate
    (magnitude <= 15) — the paper: "a 4-bit constant should cover
    approximately 70% of the cases". *)

val coverage_imm8 : distribution -> float
(** Fraction expressible by the 8-bit move immediate (<= 255) — the paper:
    "the special 8-bit constant will catch all but 5%". *)

val rows : distribution -> (string * int * float) list
(** (bucket label, count, percentage) in the paper's order. *)
