(** Supervised parallel jobs over the {!Mips_par} pool.

    Each job runs under a {!policy}: a failing job is retried up to
    [max_attempts] times with jittered exponential backoff (recorded, not
    slept — the jobs themselves are deterministic, so the backoff models
    the re-issue delay a real harness would pay); a job that keeps failing
    is {e quarantined} — its error is reported in its {!outcome} and the
    rest of the map completes normally.  Once [quarantine_threshold] jobs
    have been quarantined, a process-wide circuit breaker opens and every
    subsequent supervised map degrades to serial single-job execution
    instead of fanning out — the harness finishes its work and attributes
    the failures rather than aborting.

    On a fault-free run the supervised path is byte-identical to
    {!Mips_par.map}: each job runs exactly once, in the same pool, and the
    results come back in submission order.

    The retry loop runs on the worker domains but records everything it
    does in the returned outcomes; metrics and trace events are folded on
    the calling domain after the join (the registry and sinks are not
    thread-safe). *)

type policy = {
  max_attempts : int;  (** total attempts per job (at least 1) *)
  base_backoff_s : float;  (** backoff before retry [k] is
                               [base * 2{^k-1} * (1 + jitter * u)] *)
  jitter : float;
  wall_deadline_s : float option;
      (** per-job wall-clock budget; a job still failing past it is
          quarantined without further retries (guards wedged jobs — the
          deterministic cycle budget is the {!Deadline} exception below) *)
  quarantine_threshold : int;
  seed : int;  (** jitter stream seed (each job derives its own stream) *)
}

val default_policy : policy
(** 3 attempts, 50 ms base backoff, 50 % jitter, no wall deadline,
    breaker at 4 quarantines, seed 0. *)

exception Deadline of string
(** Raised by a job that exhausted a {e deterministic} budget (cycle fuel).
    Retrying cannot help, so the job is quarantined immediately with
    [deadline_overrun] set. *)

type 'b outcome = {
  label : string;
  result : ('b, string) result;  (** [Error] carries the last attempt's error *)
  attempts : int;
  backoffs : float list;  (** simulated backoff seconds per retry, in order *)
  quarantined : bool;
  deadline_overrun : bool;
  duration_s : float;
}

val supervised_map :
  ?policy:policy ->
  ?jobs:int ->
  ?obs:Mips_obs.Sink.t ->
  ?tracer:Mips_obs.Span.tracer ->
  label:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list
(** Run [f] over [xs] on the pool under the policy.  Outcomes come back in
    submission order; [obs] receives [Job_retry], [Job_quarantined] and
    [Circuit_open] events (emitted post-join, in submission order).  With
    [tracer], each job (including its retries) is timed as a span on its
    worker's lane.  Every job's duration also lands in the
    ["supervise.job_seconds"] histogram of {!metrics}. *)

val oks : 'b outcome list -> 'b list
(** Successful results, in order. *)

val failures : 'b outcome list -> 'b outcome list
(** Outcomes whose result is an error. *)

val circuit_open : unit -> bool

val reset_circuit : unit -> unit
(** Close the breaker and zero the quarantine tally (tests, or a fresh
    top-level command). *)

val metrics : Mips_obs.Metrics.t
(** Process-wide supervision counters ([supervise.jobs], [.ok], [.failed],
    [.retries], [.quarantined], [.deadline_overruns], [.circuit_open],
    [.degraded_maps]).  Written only on the calling domain. *)

val stats_json : unit -> Mips_obs.Json.t
(** Breaker state, quarantine tally and the counters — what
    [--stats-json] emits. *)
