(* Supervised parallel jobs: bounded retry with jittered exponential
   backoff, poison-job quarantine, and a circuit breaker that degrades the
   whole harness to serial single-job execution once too many jobs have
   been quarantined.

   The attempt loop runs on the worker domains (inside Mips_par.map), but
   all bookkeeping — metrics, trace events, the breaker — is folded on the
   calling domain after the join, from the per-job outcome records.  The
   metrics registry and event sinks are not thread-safe; outcomes are. *)

type policy = {
  max_attempts : int;  (* total attempts per job, >= 1 *)
  base_backoff_s : float;
  jitter : float;  (* extra backoff fraction, drawn per retry *)
  wall_deadline_s : float option;  (* per-job wall-clock budget *)
  quarantine_threshold : int;  (* quarantined jobs before the breaker opens *)
  seed : int;  (* jitter stream seed *)
}

let default_policy =
  {
    max_attempts = 3;
    base_backoff_s = 0.05;
    jitter = 0.5;
    wall_deadline_s = None;
    quarantine_threshold = 4;
    seed = 0;
  }

exception Deadline of string
(* raised by a job that exhausted a deterministic budget (e.g. cycle fuel):
   retrying cannot help, so the job is quarantined immediately *)

type 'b outcome = {
  label : string;
  result : ('b, string) result;  (* Error carries the last attempt's error *)
  attempts : int;
  backoffs : float list;  (* simulated seconds per retry, in order *)
  quarantined : bool;
  deadline_overrun : bool;
  duration_s : float;
}

(* --- the breaker and the counters (calling domain only) ------------------- *)

let metrics = Mips_obs.Metrics.create ()
let quarantines = Atomic.make 0
let circuit = Atomic.make false

let circuit_open () = Atomic.get circuit

let reset_circuit () =
  Atomic.set circuit false;
  Atomic.set quarantines 0

(* --- one supervised job (worker domain) ------------------------------------ *)

let backoff_for policy rng attempt =
  let base = policy.base_backoff_s *. (2. ** float_of_int (attempt - 1)) in
  base *. (1. +. (policy.jitter *. Mips_fault.Rng.float rng))

let supervise_one policy ~label:lbl ~index f x =
  (* a private jitter stream per job, derived from (seed, index), so the
     backoff sequence is deterministic whatever the scheduling *)
  let rng = Mips_fault.Rng.create (policy.seed lxor (index * 0x9E3779B1)) in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun d -> t0 +. d) policy.wall_deadline_s in
  let overdue () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let finish result attempts backoffs ~quarantined ~overrun =
    {
      label = lbl;
      result;
      attempts;
      backoffs = List.rev backoffs;
      quarantined;
      deadline_overrun = overrun;
      duration_s = Unix.gettimeofday () -. t0;
    }
  in
  let rec go attempt backoffs =
    match f x with
    | v -> finish (Ok v) attempt backoffs ~quarantined:false ~overrun:false
    | exception Deadline msg ->
        finish (Error msg) attempt backoffs ~quarantined:true ~overrun:true
    | exception e ->
        let err = Printexc.to_string e in
        if overdue () then
          finish (Error err) attempt backoffs ~quarantined:true ~overrun:true
        else if attempt >= policy.max_attempts then
          finish (Error err) attempt backoffs ~quarantined:true ~overrun:false
        else go (attempt + 1) (backoff_for policy rng attempt :: backoffs)
  in
  go 1 []

(* --- post-join bookkeeping (calling domain) --------------------------------- *)

let note_outcomes policy obs outs =
  let emit ev =
    if obs.Mips_obs.Sink.enabled then Mips_obs.Sink.emit obs ev
  in
  List.iter
    (fun o ->
      Mips_obs.Metrics.incr metrics "supervise.jobs";
      Mips_obs.Metrics.observe metrics "supervise.job_seconds" o.duration_s;
      List.iteri
        (fun i b ->
          Mips_obs.Metrics.incr metrics "supervise.retries";
          emit
            (Mips_obs.Event.Job_retry
               { label = o.label; attempt = i + 2; backoff_s = b }))
        o.backoffs;
      if o.deadline_overrun then
        Mips_obs.Metrics.incr metrics "supervise.deadline_overruns";
      match o.result with
      | Ok _ -> Mips_obs.Metrics.incr metrics "supervise.ok"
      | Error err ->
          Mips_obs.Metrics.incr metrics "supervise.failed";
          if o.quarantined then begin
            Mips_obs.Metrics.incr metrics "supervise.quarantined";
            emit
              (Mips_obs.Event.Job_quarantined
                 { label = o.label; attempts = o.attempts; error = err });
            let n = Atomic.fetch_and_add quarantines 1 + 1 in
            if n >= policy.quarantine_threshold && not (Atomic.get circuit)
            then begin
              Atomic.set circuit true;
              Mips_obs.Metrics.incr metrics "supervise.circuit_open";
              emit (Mips_obs.Event.Circuit_open { failures = n })
            end
          end)
    outs

let supervised_map ?(policy = default_policy) ?jobs
    ?(obs = Mips_obs.Sink.null) ?(tracer = Mips_obs.Span.no_tracer) ~label f
    xs =
  (* breaker open: degrade to serial single-job execution instead of
     aborting — the remaining work still completes, just without fan-out *)
  let jobs = if circuit_open () then Some 1 else jobs in
  if circuit_open () then
    Mips_obs.Metrics.incr metrics "supervise.degraded_maps";
  let items = List.mapi (fun i x -> (i, x)) xs in
  let outs =
    Mips_par.map_spans ?jobs ~tracer
      ~name:(fun (_, x) -> label x)
      (fun (i, x) -> supervise_one policy ~label:(label x) ~index:i f x)
      items
  in
  note_outcomes policy obs outs;
  outs

let oks outs =
  List.filter_map
    (fun o -> match o.result with Ok v -> Some v | Error _ -> None)
    outs

let failures outs =
  List.filter (fun o -> Result.is_error o.result) outs

let stats_json () =
  let open Mips_obs.Json in
  Obj
    [
      ("circuit_open", Bool (circuit_open ()));
      ("quarantined_total", Int (Atomic.get quarantines));
      ("metrics", Mips_obs.Metrics.to_json metrics);
    ]
