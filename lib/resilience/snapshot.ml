open Mips_isa
open Mips_machine
open Mips_os

(* --- errors -------------------------------------------------------------- *)

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Checksum_mismatch
  | Corrupt of string
  | Io_error of string

let error_to_string = function
  | Truncated -> "checkpoint truncated"
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported checkpoint version %d" v
  | Checksum_mismatch -> "checkpoint checksum mismatch"
  | Corrupt m -> "corrupt checkpoint: " ^ m
  | Io_error m -> "checkpoint I/O error: " ^ m

(* structural failure inside a digest-valid body *)
exception Bad of string

(* --- primitive readers and writers --------------------------------------- *)

module Io = struct
  module W = struct
    type t = Buffer.t

    let create () = Buffer.create 256
    let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

    let u16 b v =
      u8 b v;
      u8 b (v lsr 8)

    let i64 b (v : int64) =
      for k = 0 to 7 do
        u8 b (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF)
      done

    let int b v = i64 b (Int64.of_int v)
    let bool b v = u8 b (if v then 1 else 0)
    let float b v = i64 b (Int64.bits_of_float v)

    let str b s =
      int b (String.length s);
      Buffer.add_string b s

    let opt f b = function
      | None -> u8 b 0
      | Some v ->
          u8 b 1;
          f b v

    let list f b xs =
      int b (List.length xs);
      List.iter (f b) xs

    let contents = Buffer.contents
  end

  module R = struct
    type t = { data : string; mutable pos : int }

    exception Underflow

    let make data = { data; pos = 0 }
    let remaining r = String.length r.data - r.pos

    let skip r n =
      if n < 0 || n > remaining r then raise Underflow;
      r.pos <- r.pos + n

    let u8 r =
      if r.pos >= String.length r.data then raise Underflow;
      let c = Char.code r.data.[r.pos] in
      r.pos <- r.pos + 1;
      c

    let u16 r =
      let lo = u8 r in
      lo lor (u8 r lsl 8)

    let i64 r =
      let v = ref 0L in
      for k = 0 to 7 do
        v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 r)) (8 * k))
      done;
      !v

    let int r = Int64.to_int (i64 r)

    let bool r =
      match u8 r with
      | 0 -> false
      | 1 -> true
      | n -> raise (Bad (Printf.sprintf "bad boolean byte %d" n))

    let float r = Int64.float_of_bits (i64 r)

    let str r =
      let n = int r in
      if n < 0 || n > remaining r then raise Underflow;
      let s = String.sub r.data r.pos n in
      r.pos <- r.pos + n;
      s

    let opt f r =
      match u8 r with
      | 0 -> None
      | 1 -> Some (f r)
      | n -> raise (Bad (Printf.sprintf "bad option byte %d" n))

    (* each element costs at least one byte, so a hostile length that
       survived the digest still cannot force a huge allocation *)
    let list f r =
      let n = int r in
      if n < 0 || n > remaining r then raise Underflow;
      let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
      go n []
  end
end

(* --- the container -------------------------------------------------------- *)

let magic = "MIPSCKPT"
let version = 1

type container = { kind : string; sections : (string * string) list }

let encode { kind; sections } =
  let b = Io.W.create () in
  Buffer.add_string b magic;
  Io.W.u16 b version;
  Io.W.str b kind;
  Io.W.u16 b (List.length sections);
  List.iter
    (fun (name, payload) ->
      Io.W.str b name;
      Io.W.str b payload)
    sections;
  let body = Io.W.contents b in
  body ^ Digest.string body

let decode data =
  let len = String.length data in
  if len < String.length magic then Error Truncated
  else if String.sub data 0 (String.length magic) <> magic then Error Bad_magic
  else if len < String.length magic + 2 then Error Truncated
  else
    let ver =
      Char.code data.[String.length magic]
      lor (Char.code data.[String.length magic + 1] lsl 8)
    in
    if ver <> version then Error (Bad_version ver)
    else if len < String.length magic + 2 + 16 then Error Truncated
    else
      let body = String.sub data 0 (len - 16) in
      let digest = String.sub data (len - 16) 16 in
      if not (String.equal (Digest.string body) digest) then
        Error Checksum_mismatch
      else
        match
          let r = Io.R.make body in
          Io.R.skip r (String.length magic + 2);
          let kind = Io.R.str r in
          let n = Io.R.u16 r in
          let rec go k acc =
            if k = 0 then List.rev acc
            else
              let name = Io.R.str r in
              let payload = Io.R.str r in
              go (k - 1) ((name, payload) :: acc)
          in
          let sections = go n [] in
          if Io.R.remaining r <> 0 then raise (Bad "trailing bytes");
          { kind; sections }
        with
        | c -> Ok c
        | exception Io.R.Underflow -> Error Truncated
        | exception Bad m -> Error (Corrupt m)

let section c name =
  match List.assoc_opt name c.sections with
  | Some payload -> Ok payload
  | None -> Error (Corrupt ("missing section " ^ name))

(* --- file I/O ------------------------------------------------------------- *)

(* write to a sibling temporary and rename, so a crash mid-write never
   leaves a half checkpoint under the real name *)
let write_file path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error (Io_error m)
  | ic -> (
      match really_input_string ic (in_channel_length ic) with
      | data ->
          close_in_noerr ic;
          decode data
      | exception _ ->
          close_in_noerr ic;
          Error (Io_error ("cannot read " ^ path)))

(* --- shared small codecs --------------------------------------------------- *)

let w_space b = function Pagemap.Ispace -> Io.W.u8 b 0 | Pagemap.Dspace -> Io.W.u8 b 1

let r_space r =
  match Io.R.u8 r with
  | 0 -> Pagemap.Ispace
  | 1 -> Pagemap.Dspace
  | n -> raise (Bad (Printf.sprintf "bad space tag %d" n))

let w_cause b c = Io.W.u8 b (Cause.to_code c)

let r_cause r =
  let code = Io.R.u8 r in
  match Cause.of_code code with
  | c -> c
  | exception Invalid_argument _ ->
      raise (Bad (Printf.sprintf "bad cause code %d" code))

let w_fault_kind b = function
  | Cpu.Missing_page (sp, addr) ->
      Io.W.u8 b 0;
      w_space b sp;
      Io.W.int b addr
  | Cpu.Segment_violation addr ->
      Io.W.u8 b 1;
      Io.W.int b addr
  | Cpu.Transient_ref -> Io.W.u8 b 2

let r_fault_kind r =
  match Io.R.u8 r with
  | 0 ->
      let sp = r_space r in
      Cpu.Missing_page (sp, Io.R.int r)
  | 1 -> Cpu.Segment_violation (Io.R.int r)
  | 2 -> Cpu.Transient_ref
  | n -> raise (Bad (Printf.sprintf "bad fault-kind tag %d" n))

(* --- fault-plan state ------------------------------------------------------ *)

let w_plan b (s : Mips_fault.Plan.snapshot) =
  let c = s.Mips_fault.Plan.s_config in
  Io.W.int b c.Mips_fault.Plan.seed;
  Io.W.float b c.flip_reg_rate;
  Io.W.float b c.flip_data_rate;
  Io.W.float b c.irq_rate;
  Io.W.float b c.page_drop_rate;
  Io.W.float b c.flaky_rate;
  Io.W.int b c.max_injections;
  Io.W.bool b s.s_enabled;
  Io.W.i64 b s.s_rng;
  Io.W.int b s.s_injected;
  Io.W.int b s.s_reg_flips;
  Io.W.int b s.s_data_flips;
  Io.W.int b s.s_irqs;
  Io.W.int b s.s_page_drops;
  Io.W.int b s.s_flaky_armed;
  Io.W.int b s.s_flaky_fired

let r_plan r : Mips_fault.Plan.snapshot =
  let seed = Io.R.int r in
  let flip_reg_rate = Io.R.float r in
  let flip_data_rate = Io.R.float r in
  let irq_rate = Io.R.float r in
  let page_drop_rate = Io.R.float r in
  let flaky_rate = Io.R.float r in
  let max_injections = Io.R.int r in
  let s_enabled = Io.R.bool r in
  let s_rng = Io.R.i64 r in
  let s_injected = Io.R.int r in
  let s_reg_flips = Io.R.int r in
  let s_data_flips = Io.R.int r in
  let s_irqs = Io.R.int r in
  let s_page_drops = Io.R.int r in
  let s_flaky_armed = Io.R.int r in
  let s_flaky_fired = Io.R.int r in
  {
    Mips_fault.Plan.s_config =
      {
        Mips_fault.Plan.seed;
        flip_reg_rate;
        flip_data_rate;
        irq_rate;
        page_drop_rate;
        flaky_rate;
        max_injections;
      };
    s_enabled;
    s_rng;
    s_injected;
    s_reg_flips;
    s_data_flips;
    s_irqs;
    s_page_drops;
    s_flaky_armed;
    s_flaky_fired;
  }

(* --- the machine ----------------------------------------------------------- *)

(* Instruction memory is deliberately not serialized: programs are
   re-derived deterministically (recompiled, or re-filled from the process
   image by the kernel), which keeps checkpoints small and makes version
   skew in the compiler visible instead of silently resurrecting stale
   code. *)

let w_stats b (st : Stats.t) =
  Io.W.int b st.Stats.cycles;
  Io.W.int b st.stall_cycles;
  Io.W.int b st.load_use_stall_cycles;
  Io.W.int b st.branch_stall_cycles;
  Io.W.int b st.words;
  Io.W.int b st.nops;
  Io.W.int b st.alu_pieces;
  Io.W.int b st.mem_pieces;
  Io.W.int b st.branch_pieces;
  Io.W.int b st.packed_words;
  Io.W.int b st.branches_taken;
  Io.W.int b st.mem_busy_cycles;
  Io.W.int b st.free_cycles;
  Io.W.float b st.weighted.(0);
  Io.W.list
    (fun b (c, n) ->
      w_cause b c;
      Io.W.int b n)
    b st.exceptions;
  Io.W.int b st.synthetic_refs;
  Io.W.bool b st.fuel_exhausted;
  List.iter
    (fun (rc : Stats.ref_class) ->
      Io.W.int b rc.Stats.loads;
      Io.W.int b rc.Stats.stores)
    [ st.word_refs; st.word_char_refs; st.byte_refs; st.byte_char_refs ];
  let pairs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.stall_pairs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Io.W.list
    (fun b ((p, c), n) ->
      Io.W.int b p;
      Io.W.int b c;
      Io.W.int b n)
    b pairs

let r_stats r (st : Stats.t) =
  st.Stats.cycles <- Io.R.int r;
  st.stall_cycles <- Io.R.int r;
  st.load_use_stall_cycles <- Io.R.int r;
  st.branch_stall_cycles <- Io.R.int r;
  st.words <- Io.R.int r;
  st.nops <- Io.R.int r;
  st.alu_pieces <- Io.R.int r;
  st.mem_pieces <- Io.R.int r;
  st.branch_pieces <- Io.R.int r;
  st.packed_words <- Io.R.int r;
  st.branches_taken <- Io.R.int r;
  st.mem_busy_cycles <- Io.R.int r;
  st.free_cycles <- Io.R.int r;
  st.weighted.(0) <- Io.R.float r;
  st.exceptions <-
    Io.R.list
      (fun r ->
        let c = r_cause r in
        (c, Io.R.int r))
      r;
  st.synthetic_refs <- Io.R.int r;
  st.fuel_exhausted <- Io.R.bool r;
  List.iter
    (fun (rc : Stats.ref_class) ->
      rc.Stats.loads <- Io.R.int r;
      rc.Stats.stores <- Io.R.int r)
    [ st.word_refs; st.word_char_refs; st.byte_refs; st.byte_char_refs ];
  Hashtbl.reset st.stall_pairs;
  let pairs =
    Io.R.list
      (fun r ->
        let p = Io.R.int r in
        let c = Io.R.int r in
        let n = Io.R.int r in
        ((p, c), n))
      r
  in
  List.iter (fun (k, n) -> Hashtbl.replace st.stall_pairs k n) pairs

(* data memory as runs of nonzero words: a fresh machine's memory is all
   zero, so only touched regions cost checkpoint bytes *)
let w_dmem b cpu =
  let n = (Cpu.config cpu).Cpu.dmem_words in
  Io.W.int b n;
  let runs = ref [] in
  let i = ref 0 in
  while !i < n do
    if Cpu.read_data cpu !i <> 0 then begin
      let start = !i in
      while !i < n && Cpu.read_data cpu !i <> 0 do
        incr i
      done;
      runs := (start, !i - start) :: !runs
    end
    else incr i
  done;
  let runs = List.rev !runs in
  Io.W.int b (List.length runs);
  List.iter
    (fun (start, len) ->
      Io.W.int b start;
      Io.W.int b len;
      for k = start to start + len - 1 do
        Io.W.int b (Cpu.read_data cpu k)
      done)
    runs

let r_dmem r cpu =
  let n = Io.R.int r in
  if n <> (Cpu.config cpu).Cpu.dmem_words then
    raise
      (Bad
         (Printf.sprintf "data-memory size mismatch (snapshot %d, machine %d)"
            n (Cpu.config cpu).Cpu.dmem_words));
  (* the runs only cover nonzero words, and the target machine has the
     program's pristine data image loaded — words the checkpointed run had
     zeroed must not survive, so clear everything first *)
  for k = 0 to n - 1 do
    Cpu.write_data cpu k 0
  done;
  let nruns = Io.R.int r in
  if nruns < 0 then raise Io.R.Underflow;
  for _ = 1 to nruns do
    let start = Io.R.int r in
    let len = Io.R.int r in
    if start < 0 || len < 0 || start + len > n then
      raise (Bad "data-memory run out of range");
    for k = start to start + len - 1 do
      Cpu.write_data cpu k (Io.R.int r)
    done
  done

let machine_to_string cpu =
  let b = Io.W.create () in
  for i = 0 to 15 do
    Io.W.int b (Cpu.get_reg cpu (Reg.r i))
  done;
  let c0, c1, c2 = Cpu.pc_chain cpu in
  Io.W.int b c0;
  Io.W.int b c1;
  Io.W.int b c2;
  for i = 0 to 2 do
    Io.W.int b (Cpu.epc cpu i)
  done;
  Io.W.int b (Surprise.to_word (Cpu.surprise cpu));
  Io.W.int b (Segmap.to_word (Cpu.segmap cpu));
  Io.W.bool b (Cpu.interrupt_pending cpu);
  let ps = Cpu.pipeline_state cpu in
  Io.W.int b ps.Cpu.ps_byte_select;
  Io.W.opt
    (fun b (reg, v) ->
      Io.W.int b reg;
      Io.W.int b v)
    b ps.ps_pending;
  Io.W.int b ps.ps_last_load_writes;
  Io.W.opt w_fault_kind b ps.ps_fault;
  Io.W.bool b ps.ps_flaky_armed;
  Io.W.int b ps.ps_prev_pc;
  Io.W.int b ps.ps_delay_pending;
  Io.W.list
    (fun b (sp, vpage, (e : Pagemap.entry)) ->
      w_space b sp;
      Io.W.int b vpage;
      Io.W.int b e.Pagemap.frame;
      Io.W.bool b e.writable;
      Io.W.bool b e.referenced;
      Io.W.bool b e.dirty)
    b
    (Pagemap.entries (Cpu.pagemap cpu));
  w_dmem b cpu;
  w_stats b (Cpu.stats cpu);
  w_plan b (Mips_fault.Plan.snapshot (Cpu.fault_plan cpu));
  Io.W.contents b

let restore_machine cpu data =
  match
    let r = Io.R.make data in
    for i = 0 to 15 do
      Cpu.set_reg cpu (Reg.r i) (Io.R.int r)
    done;
    let c0 = Io.R.int r in
    let c1 = Io.R.int r in
    let c2 = Io.R.int r in
    Cpu.set_pc_chain cpu (c0, c1, c2);
    for i = 0 to 2 do
      Cpu.set_epc cpu i (Io.R.int r)
    done;
    Cpu.set_surprise cpu (Surprise.of_word (Io.R.int r));
    Cpu.set_segmap cpu (Segmap.of_word (Io.R.int r));
    Cpu.set_interrupt cpu (Io.R.bool r);
    let ps_byte_select = Io.R.int r in
    let ps_pending =
      Io.R.opt
        (fun r ->
          let reg = Io.R.int r in
          (reg, Io.R.int r))
        r
    in
    let ps_last_load_writes = Io.R.int r in
    let ps_fault = Io.R.opt r_fault_kind r in
    let ps_flaky_armed = Io.R.bool r in
    let ps_prev_pc = Io.R.int r in
    let ps_delay_pending = Io.R.int r in
    let entries =
      Io.R.list
        (fun r ->
          let sp = r_space r in
          let vpage = Io.R.int r in
          let frame = Io.R.int r in
          let writable = Io.R.bool r in
          let referenced = Io.R.bool r in
          let dirty = Io.R.bool r in
          (sp, vpage, frame, writable, referenced, dirty))
        r
    in
    let pm = Cpu.pagemap cpu in
    List.iter
      (fun (sp, vpage, frame, writable, referenced, dirty) ->
        Pagemap.map pm sp ~vpage ~frame ~writable;
        match Pagemap.find pm sp ~vpage with
        | Some e ->
            e.Pagemap.referenced <- referenced;
            e.Pagemap.dirty <- dirty
        | None -> assert false)
      entries;
    r_dmem r cpu;
    r_stats r (Cpu.stats cpu);
    let plan = r_plan r in
    (* attaching a plan disarms the flaky flag, so the plan goes on before
       the pipeline state *)
    Cpu.set_fault_plan cpu (Mips_fault.Plan.of_snapshot plan);
    Cpu.set_pipeline_state cpu
      {
        Cpu.ps_byte_select;
        ps_pending;
        ps_last_load_writes;
        ps_fault;
        ps_flaky_armed;
        ps_prev_pc;
        ps_delay_pending;
      };
    if Io.R.remaining r <> 0 then raise (Bad "trailing machine bytes")
  with
  | () -> Ok ()
  | exception Io.R.Underflow -> Error Truncated
  | exception Bad m -> Error (Corrupt m)
  | exception Invalid_argument m -> Error (Corrupt m)

(* --- the hosted loop ------------------------------------------------------- *)

let host_to_string (h : Hosted.host_state) =
  let b = Io.W.create () in
  Io.W.str b h.Hosted.h_output;
  Io.W.int b h.h_in_pos;
  Io.W.int b h.h_retries;
  Io.W.int b h.h_fuel_left;
  Io.W.contents b

let host_of_string data =
  match
    let r = Io.R.make data in
    let h_output = Io.R.str r in
    let h_in_pos = Io.R.int r in
    let h_retries = Io.R.int r in
    let h_fuel_left = Io.R.int r in
    if Io.R.remaining r <> 0 then raise (Bad "trailing host bytes");
    { Hosted.h_output; h_in_pos; h_retries; h_fuel_left }
  with
  | h -> Ok h
  | exception Io.R.Underflow -> Error Truncated
  | exception Bad m -> Error (Corrupt m)

(* --- the kernel scheduler --------------------------------------------------- *)

let w_kill_reason b = function
  | Kernel.Arch_fault (c, d) ->
      Io.W.u8 b 0;
      w_cause b c;
      Io.W.int b d
  | Kernel.Watchdog n ->
      Io.W.u8 b 1;
      Io.W.int b n
  | Kernel.Retry_exhausted n ->
      Io.W.u8 b 2;
      Io.W.int b n
  | Kernel.Double_fault (c1, c2) ->
      Io.W.u8 b 3;
      w_cause b c1;
      w_cause b c2
  | Kernel.Out_of_memory sp ->
      Io.W.u8 b 4;
      w_space b sp

let r_kill_reason r =
  match Io.R.u8 r with
  | 0 ->
      let c = r_cause r in
      Kernel.Arch_fault (c, Io.R.int r)
  | 1 -> Kernel.Watchdog (Io.R.int r)
  | 2 -> Kernel.Retry_exhausted (Io.R.int r)
  | 3 ->
      let c1 = r_cause r in
      Kernel.Double_fault (c1, r_cause r)
  | 4 -> Kernel.Out_of_memory (r_space r)
  | n -> raise (Bad (Printf.sprintf "bad kill-reason tag %d" n))

let w_pcb b (p : Kernel.pcb_snapshot) =
  Io.W.int b p.Kernel.sn_pid;
  Io.W.str b p.sn_pname;
  Io.W.list Io.W.int b (Array.to_list p.sn_regs);
  let c0, c1, c2 = p.sn_chain in
  Io.W.int b c0;
  Io.W.int b c1;
  Io.W.int b c2;
  Io.W.int b (Surprise.to_word p.sn_usr);
  Io.W.int b p.sn_in_pos;
  Io.W.str b p.sn_out;
  (match p.sn_st with
  | `Ready -> Io.W.u8 b 0
  | `Exited s ->
      Io.W.u8 b 1;
      Io.W.int b s
  | `Killed reason ->
      Io.W.u8 b 2;
      w_kill_reason b reason);
  Io.W.int b p.sn_cycles_used;
  Io.W.int b p.sn_retries;
  Io.W.int b p.sn_total_retries;
  Io.W.int b p.sn_consec_faults;
  Io.W.opt w_cause b p.sn_first_fault

let r_pcb r : Kernel.pcb_snapshot =
  let sn_pid = Io.R.int r in
  let sn_pname = Io.R.str r in
  let sn_regs = Array.of_list (Io.R.list Io.R.int r) in
  let c0 = Io.R.int r in
  let c1 = Io.R.int r in
  let c2 = Io.R.int r in
  let sn_usr = Surprise.of_word (Io.R.int r) in
  let sn_in_pos = Io.R.int r in
  let sn_out = Io.R.str r in
  let sn_st =
    match Io.R.u8 r with
    | 0 -> `Ready
    | 1 -> `Exited (Io.R.int r)
    | 2 -> `Killed (r_kill_reason r)
    | n -> raise (Bad (Printf.sprintf "bad process-state tag %d" n))
  in
  let sn_cycles_used = Io.R.int r in
  let sn_retries = Io.R.int r in
  let sn_total_retries = Io.R.int r in
  let sn_consec_faults = Io.R.int r in
  let sn_first_fault = Io.R.opt r_cause r in
  {
    Kernel.sn_pid;
    sn_pname;
    sn_regs;
    sn_chain = (c0, c1, c2);
    sn_usr;
    sn_in_pos;
    sn_out;
    sn_st;
    sn_cycles_used;
    sn_retries;
    sn_total_retries;
    sn_consec_faults;
    sn_first_fault;
  }

let w_frame b (idx, pid, gpage) =
  Io.W.int b idx;
  Io.W.int b pid;
  Io.W.int b gpage

let r_frame r =
  let idx = Io.R.int r in
  let pid = Io.R.int r in
  let gpage = Io.R.int r in
  (idx, pid, gpage)

let sched_to_string (s : Kernel.sched_snapshot) =
  let b = Io.W.create () in
  Io.W.list w_pcb b s.Kernel.k_procs;
  Io.W.opt Io.W.int b s.k_current;
  Io.W.list w_frame b s.k_code_frames;
  Io.W.list w_frame b s.k_data_frames;
  Io.W.int b s.k_code_clock;
  Io.W.int b s.k_data_clock;
  Io.W.list
    (fun b ((pid, gpage), words) ->
      Io.W.int b pid;
      Io.W.int b gpage;
      Io.W.list Io.W.int b (Array.to_list words))
    b s.k_backing;
  Io.W.int b s.k_switches;
  Io.W.int b s.k_page_faults;
  Io.W.int b s.k_evictions;
  Io.W.int b s.k_interrupts;
  Io.W.int b s.k_map_changes;
  Io.W.int b s.k_kernel_cycles;
  Io.W.int b s.k_watchdog_kills;
  Io.W.int b s.k_transient_faults;
  Io.W.int b s.k_transient_retries;
  Io.W.int b s.k_double_faults;
  Io.W.int b s.k_oom_kills;
  Io.W.bool b s.k_out_of_fuel;
  Io.W.int b s.k_quantum_left;
  Io.W.bool b s.k_started;
  Io.W.bool b s.k_halted;
  Io.W.contents b

let sched_of_string data =
  match
    let r = Io.R.make data in
    let k_procs = Io.R.list r_pcb r in
    let k_current = Io.R.opt Io.R.int r in
    let k_code_frames = Io.R.list r_frame r in
    let k_data_frames = Io.R.list r_frame r in
    let k_code_clock = Io.R.int r in
    let k_data_clock = Io.R.int r in
    let k_backing =
      Io.R.list
        (fun r ->
          let pid = Io.R.int r in
          let gpage = Io.R.int r in
          let words = Array.of_list (Io.R.list Io.R.int r) in
          ((pid, gpage), words))
        r
    in
    let k_switches = Io.R.int r in
    let k_page_faults = Io.R.int r in
    let k_evictions = Io.R.int r in
    let k_interrupts = Io.R.int r in
    let k_map_changes = Io.R.int r in
    let k_kernel_cycles = Io.R.int r in
    let k_watchdog_kills = Io.R.int r in
    let k_transient_faults = Io.R.int r in
    let k_transient_retries = Io.R.int r in
    let k_double_faults = Io.R.int r in
    let k_oom_kills = Io.R.int r in
    let k_out_of_fuel = Io.R.bool r in
    let k_quantum_left = Io.R.int r in
    let k_started = Io.R.bool r in
    let k_halted = Io.R.bool r in
    if Io.R.remaining r <> 0 then raise (Bad "trailing scheduler bytes");
    {
      Kernel.k_procs;
      k_current;
      k_code_frames;
      k_data_frames;
      k_code_clock;
      k_data_clock;
      k_backing;
      k_switches;
      k_page_faults;
      k_evictions;
      k_interrupts;
      k_map_changes;
      k_kernel_cycles;
      k_watchdog_kills;
      k_transient_faults;
      k_transient_retries;
      k_double_faults;
      k_oom_kills;
      k_out_of_fuel;
      k_quantum_left;
      k_started;
      k_halted;
    }
  with
  | s -> Ok s
  | exception Io.R.Underflow -> Error Truncated
  | exception Bad m -> Error (Corrupt m)
  | exception Invalid_argument m -> Error (Corrupt m)

(* monadic helpers for callers assembling multi-section restores *)
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e
