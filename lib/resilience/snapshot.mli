(** Versioned, checksummed snapshots of execution state.

    A checkpoint is a {!container}: a magic tag, a format version, a kind
    string saying what the checkpoint is of ("soak", "run", ...), a list of
    named sections, and a trailing digest over everything before it.  The
    payload codecs below fill sections with machine state
    ({!machine_to_string}), hosted-loop state ({!host_to_string}) and kernel
    scheduler state ({!sched_to_string}); callers add their own sections
    (parameters, progress) with the {!Io} primitives and are responsible
    for checking them on restore.

    Decoding is {e total}: any byte string either decodes or returns a
    typed {!error} — truncation, a foreign file, version skew, corruption
    and I/O failures are all distinguishable, and nothing raises.

    Instruction memory is deliberately absent from machine snapshots:
    programs are re-derived deterministically on restore (recompiled, or
    refilled from process images by {!Mips_os.Kernel.restore_sched}), which
    keeps checkpoints small and surfaces compiler version skew instead of
    silently resurrecting stale code. *)

open Mips_machine
open Mips_os

type error =
  | Truncated  (** ran out of bytes (including an empty or cut-off file) *)
  | Bad_magic  (** not a checkpoint file at all *)
  | Bad_version of int  (** a checkpoint from an incompatible format *)
  | Checksum_mismatch  (** bytes damaged after writing *)
  | Corrupt of string  (** structurally invalid despite a good digest *)
  | Io_error of string  (** the file could not be read *)

val error_to_string : error -> string

val version : int
(** Current container format version. *)

type container = { kind : string; sections : (string * string) list }

val encode : container -> string

val decode : string -> (container, error) result
(** Total: never raises, whatever the input. *)

val section : container -> string -> (string, error) result
(** A named section's payload; [Corrupt] when absent. *)

val write_file : string -> string -> unit
(** [write_file path data] writes atomically (temporary sibling + rename),
    so a crash mid-write never leaves a torn checkpoint under [path].
    @raise Sys_error when the file cannot be written. *)

val read_file : string -> (container, error) result

(** {2 Payload codecs} *)

val machine_to_string : Cpu.t -> string
(** Registers, PC chain, EPCs, surprise, segment map, interrupt line,
    pipeline state, page map, data memory (zero-run compressed), full
    statistics and the fault plan's stream position. *)

val restore_machine : Cpu.t -> string -> (unit, error) result
(** Write a captured machine state into [cpu] — a fresh machine with the
    same configuration whose {e code} has already been loaded (the
    pipeline's previous-word text is re-derived from instruction memory). *)

val host_to_string : Hosted.host_state -> string
val host_of_string : string -> (Hosted.host_state, error) result
val sched_to_string : Kernel.sched_snapshot -> string
val sched_of_string : string -> (Kernel.sched_snapshot, error) result

(** {2 Primitives}

    The length-checked little-endian readers/writers the codecs are built
    from, exposed so callers can encode their own sections (parameters,
    progress counters) in the same idiom. *)

module Io : sig
  module W : sig
    type t = Buffer.t

    val create : unit -> t
    val u8 : t -> int -> unit
    val u16 : t -> int -> unit
    val i64 : t -> int64 -> unit
    val int : t -> int -> unit
    val bool : t -> bool -> unit
    val float : t -> float -> unit
    val str : t -> string -> unit
    val opt : (t -> 'a -> unit) -> t -> 'a option -> unit
    val list : (t -> 'a -> unit) -> t -> 'a list -> unit
    val contents : t -> string
  end

  module R : sig
    type t

    exception Underflow
    (** Caught by the [*_of_string] decoders and turned into {!Truncated};
        callers using these primitives directly must do the same. *)

    val make : string -> t
    val remaining : t -> int
    val skip : t -> int -> unit
    val u8 : t -> int
    val u16 : t -> int
    val i64 : t -> int64
    val int : t -> int
    val bool : t -> bool
    val float : t -> float
    val str : t -> string
    val opt : (t -> 'a) -> t -> 'a option
    val list : (t -> 'a) -> t -> 'a list
  end
end

exception Bad of string
(** Structural failure inside a digest-valid body — raised by the {!Io}
    readers on malformed tags, turned into {!Corrupt} by the decoders. *)

val ( let* ) :
  ('a, error) result -> ('a -> ('b, error) result) -> ('b, error) result
(** Result chaining for callers assembling multi-section restores. *)
