(** Seed-driven transient-fault plans.

    A plan is consulted by the simulator once per instruction word: with a
    given per-step probability it injects one transient fault — a single-bit
    flip in a register or data word (a parity-style soft error), a spurious
    assertion of the external interrupt line, a simulated TLB drop (a clean
    page silently unmapped), or a {e flaky-memory} arming under which the
    next data reference transiently faults and must be restarted through
    the architectural dispatch path.

    Plans are deterministic: the same configuration always produces the
    same injection sequence at the same step counts, so a soak run is
    reproducible bit-for-bit from its seed.  The {!none} plan is disabled
    and costs the simulator a single flag test per step. *)

type config = {
  seed : int;
  flip_reg_rate : float;  (** per-step probability of a register bit flip *)
  flip_data_rate : float;  (** per-step probability of a data-word bit flip *)
  irq_rate : float;  (** per-step probability of a spurious interrupt *)
  page_drop_rate : float;  (** per-step probability of a simulated TLB drop *)
  flaky_rate : float;  (** per-step probability of arming flaky memory *)
  max_injections : int;  (** stop injecting after this many; [0] = unlimited *)
}

val quiet : config
(** Seed 0, every rate 0, unlimited — the base to override. *)

(** One injected fault, decided by the plan.  Numeric payloads are {e hints}:
    the machine reduces them into its own ranges (register index modulo 16,
    data word modulo memory size, page pick modulo the mapped-page count). *)
type injection =
  | Flip_reg of { reg : int; bit : int }
  | Flip_data of { word : int; bit : int }
  | Spurious_interrupt
  | Drop_page of { pick : int }
  | Flaky_mem

type t

val none : t
(** The disabled plan: {!decide} always answers [None], nothing counts. *)

val make : config -> t
(** A fresh enabled plan.  Plans are stateful (stream position, counters);
    make a new one per machine and per run. *)

val enabled : t -> bool
val config : t -> config

(** {2 Checkpoint support}

    A plan's whole dynamic state is its stream position plus the injection
    counters; a restored plan continues the decision sequence exactly where
    the captured one left off. *)

type snapshot = {
  s_config : config;
  s_enabled : bool;
  s_rng : int64;  (** {!Rng.state} of the plan's stream *)
  s_injected : int;
  s_reg_flips : int;
  s_data_flips : int;
  s_irqs : int;
  s_page_drops : int;
  s_flaky_armed : int;
  s_flaky_fired : int;
}

val snapshot : t -> snapshot
val of_snapshot : snapshot -> t

val decide : t -> injection option
(** One per-step decision.  Advances the stream exactly once per call (plus
    payload draws when injecting), so decision [k] depends only on the seed
    and [k]. *)

val note_flaky_fired : t -> unit
(** Called by the machine when an armed flaky-memory fault actually fires
    on a data reference. *)

val injected : t -> int
(** Total injections decided so far. *)

val flaky_fired : t -> int
(** Armed flaky faults that actually fired (each is one transient
    dispatch the software must retry or attribute). *)

val counts : t -> (string * int) list
(** Per-kind injection counters, in a fixed order:
    [reg_flip, data_flip, irq, page_drop, flaky_armed, flaky_fired]. *)

val injection_kind : injection -> string
val injection_target : injection -> int
(** The primary numeric payload (register, word, pick; [0] for irq/flaky)
    — what the trace event reports. *)

val to_json : t -> Mips_obs.Json.t
(** Configuration (seed, rates) plus every counter. *)
