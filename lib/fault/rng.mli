(** Deterministic pseudo-random numbers for fault plans and program
    generation.

    A splitmix64 stream: the same seed always produces the same sequence,
    on every platform, independent of [Stdlib.Random] state.  Everything
    the fault subsystem randomises — injection timing, flipped bits,
    generated programs — draws from one of these so that a soak run is
    reproducible bit-for-bit from its seed. *)

type t

val create : int -> t
(** A fresh stream from a seed.  Equal seeds give equal streams. *)

val copy : t -> t
(** An independent stream continuing from the same state. *)

val next64 : t -> int64
(** The raw 64-bit output (advances the state). *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform-ish in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** A statistically independent stream derived from (and advancing) [t] —
    use to give each subsystem its own stream from one master seed. *)

(** {2 Checkpoint support}

    The stream position is exactly one 64-bit word; capturing and restoring
    it resumes the sequence with no drift. *)

val state : t -> int64
val set_state : t -> int64 -> unit

val of_state : int64 -> t
(** A stream continuing from a captured position (unlike {!create}, which
    mixes its argument as a seed). *)
