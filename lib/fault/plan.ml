type config = {
  seed : int;
  flip_reg_rate : float;
  flip_data_rate : float;
  irq_rate : float;
  page_drop_rate : float;
  flaky_rate : float;
  max_injections : int;
}

let quiet =
  {
    seed = 0;
    flip_reg_rate = 0.;
    flip_data_rate = 0.;
    irq_rate = 0.;
    page_drop_rate = 0.;
    flaky_rate = 0.;
    max_injections = 0;
  }

type injection =
  | Flip_reg of { reg : int; bit : int }
  | Flip_data of { word : int; bit : int }
  | Spurious_interrupt
  | Drop_page of { pick : int }
  | Flaky_mem

type t = {
  enabled : bool;
  cfg : config;
  rng : Rng.t;
  mutable injected : int;
  mutable reg_flips : int;
  mutable data_flips : int;
  mutable irqs : int;
  mutable page_drops : int;
  mutable flaky_armed : int;
  mutable flaky_fired : int;
}

let fresh ~enabled cfg =
  {
    enabled;
    cfg;
    rng = Rng.create cfg.seed;
    injected = 0;
    reg_flips = 0;
    data_flips = 0;
    irqs = 0;
    page_drops = 0;
    flaky_armed = 0;
    flaky_fired = 0;
  }

let none = fresh ~enabled:false quiet
let make cfg = fresh ~enabled:true cfg
let enabled t = t.enabled
let config t = t.cfg

type snapshot = {
  s_config : config;
  s_enabled : bool;
  s_rng : int64;
  s_injected : int;
  s_reg_flips : int;
  s_data_flips : int;
  s_irqs : int;
  s_page_drops : int;
  s_flaky_armed : int;
  s_flaky_fired : int;
}

let snapshot t =
  {
    s_config = t.cfg;
    s_enabled = t.enabled;
    s_rng = Rng.state t.rng;
    s_injected = t.injected;
    s_reg_flips = t.reg_flips;
    s_data_flips = t.data_flips;
    s_irqs = t.irqs;
    s_page_drops = t.page_drops;
    s_flaky_armed = t.flaky_armed;
    s_flaky_fired = t.flaky_fired;
  }

let of_snapshot s =
  {
    enabled = s.s_enabled;
    cfg = s.s_config;
    rng = Rng.of_state s.s_rng;
    injected = s.s_injected;
    reg_flips = s.s_reg_flips;
    data_flips = s.s_data_flips;
    irqs = s.s_irqs;
    page_drops = s.s_page_drops;
    flaky_armed = s.s_flaky_armed;
    flaky_fired = s.s_flaky_fired;
  }

let decide t =
  if
    (not t.enabled)
    || (t.cfg.max_injections > 0 && t.injected >= t.cfg.max_injections)
  then None
  else begin
    let c = t.cfg in
    (* one uniform draw per step: decision k depends only on seed and k *)
    let u = Rng.float t.rng in
    let t1 = c.flip_reg_rate in
    let t2 = t1 +. c.flip_data_rate in
    let t3 = t2 +. c.irq_rate in
    let t4 = t3 +. c.page_drop_rate in
    let t5 = t4 +. c.flaky_rate in
    if u >= t5 then None
    else begin
      t.injected <- t.injected + 1;
      if u < t1 then begin
        t.reg_flips <- t.reg_flips + 1;
        Some (Flip_reg { reg = Rng.int t.rng 16; bit = Rng.int t.rng 32 })
      end
      else if u < t2 then begin
        t.data_flips <- t.data_flips + 1;
        Some (Flip_data { word = Rng.bits30 t.rng; bit = Rng.int t.rng 32 })
      end
      else if u < t3 then begin
        t.irqs <- t.irqs + 1;
        Some Spurious_interrupt
      end
      else if u < t4 then begin
        t.page_drops <- t.page_drops + 1;
        Some (Drop_page { pick = Rng.bits30 t.rng })
      end
      else begin
        t.flaky_armed <- t.flaky_armed + 1;
        Some Flaky_mem
      end
    end
  end

let note_flaky_fired t = t.flaky_fired <- t.flaky_fired + 1
let injected t = t.injected
let flaky_fired t = t.flaky_fired

let counts t =
  [ ("reg_flip", t.reg_flips);
    ("data_flip", t.data_flips);
    ("irq", t.irqs);
    ("page_drop", t.page_drops);
    ("flaky_armed", t.flaky_armed);
    ("flaky_fired", t.flaky_fired) ]

let injection_kind = function
  | Flip_reg _ -> "reg_flip"
  | Flip_data _ -> "data_flip"
  | Spurious_interrupt -> "irq"
  | Drop_page _ -> "page_drop"
  | Flaky_mem -> "flaky"

let injection_target = function
  | Flip_reg { reg; _ } -> reg
  | Flip_data { word; _ } -> word
  | Drop_page { pick } -> pick
  | Spurious_interrupt | Flaky_mem -> 0

let to_json t =
  let open Mips_obs.Json in
  Obj
    [ ("enabled", Bool t.enabled);
      ("seed", Int t.cfg.seed);
      ( "rates",
        Obj
          [ ("flip_reg", Float t.cfg.flip_reg_rate);
            ("flip_data", Float t.cfg.flip_data_rate);
            ("irq", Float t.cfg.irq_rate);
            ("page_drop", Float t.cfg.page_drop_rate);
            ("flaky", Float t.cfg.flaky_rate) ] );
      ("max_injections", Int t.cfg.max_injections);
      ("injected", Int t.injected);
      ("counts", Obj (List.map (fun (k, v) -> (k, Int v)) (counts t))) ]
