type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits30 t = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFL)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits30 t mod n

let float t = float_of_int (bits30 t) /. 1073741824.0

let split t = { state = next64 t }

(* The whole stream position is the one 64-bit state word — what
   checkpoint/restore snapshots. *)
let state t = t.state
let set_state t s = t.state <- s
let of_state s = { state = s }
