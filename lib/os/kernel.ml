open Mips_isa
open Mips_machine

let mask_bits = 8  (* 256 possible processes, 64K-word segments *)
let max_procs = 1 lsl mask_bits
let seg_words = 1 lsl (Segmap.vspace_bits - mask_bits)
let half = seg_words / 2
let user_stack_top = (1 lsl Segmap.vspace_bits) - 8

(* cost model, in cycles, for kernel work (see DESIGN.md): a context switch
   saves and restores the sixteen general registers at one word per cycle
   through the dual memory interface, plus the dispatch bookkeeping *)
let switch_cost = (2 * 16) + 8
let fault_service_cost = 20  (* the page fill itself is DMA in free cycles *)

type kill_reason =
  | Arch_fault of Cause.t * int
  | Watchdog of int
  | Retry_exhausted of int
  | Double_fault of Cause.t * Cause.t
  | Out_of_memory of Pagemap.space

let kill_reason_name = function
  | Arch_fault (c, _) -> Cause.name c
  | Watchdog _ -> "Watchdog"
  | Retry_exhausted _ -> "Retry_exhausted"
  | Double_fault _ -> "Double_fault"
  | Out_of_memory _ -> "Out_of_memory"

let kill_reason_detail = function
  | Arch_fault (_, d) -> d
  | Watchdog cycles -> cycles
  | Retry_exhausted n -> n
  | Double_fault _ -> 0
  | Out_of_memory Pagemap.Ispace -> 0
  | Out_of_memory Pagemap.Dspace -> 1

type state = Ready | Exited of int | Killed of kill_reason

type pcb = {
  pid : int;
  pname : string;
  program : Program.t;
  data_image : int array;
  regs : int array;
  mutable chain : int * int * int;
  mutable usr : Surprise.t;  (* user-mode surprise register, popped form *)
  input : string;
  mutable in_pos : int;
  out : Buffer.t;
  mutable st : state;
  mutable cycles_used : int;  (* user instruction words, for the watchdog *)
  mutable retries : int;  (* consecutive transient retries, no step between *)
  mutable total_retries : int;
  mutable consec_faults : int;  (* faults with no successful step between *)
  mutable first_fault : Cause.t option;  (* oldest cause in that streak *)
}

type frame_owner = { fo_pid : int; fo_gpage : int }

type t = {
  cpu : Cpu.t;
  quantum : int;
  watchdog : int option;  (* per-process cycle budget *)
  max_retries : int;
  double_fault_limit : int;
  backing_limit : int option;  (* backing-store capacity, in pages *)
  mutable procs : pcb list;
  mutable current : pcb option;
  code_frames : frame_owner option array;
  data_frames : frame_owner option array;
  mutable code_clock : int;
  mutable data_clock : int;
  backing : (int * int, int array) Hashtbl.t;  (* (pid, data gpage) -> words *)
  mutable switches : int;
  mutable page_faults : int;
  mutable evictions : int;
  mutable interrupts : int;
  mutable map_changes_outside_fault : int;
  mutable in_switch : bool;
  mutable kernel_cycles : int;
  mutable watchdog_kills : int;
  mutable transient_faults : int;
  mutable transient_retries : int;
  mutable double_faults : int;
  mutable oom_kills : int;
  mutable out_of_fuel : bool;
  (* sliced-execution state: the run loop lives in [t] so a run can stop
     after any number of steps (checkpointing) and continue bit-identically *)
  mutable quantum_left : int;
  mutable started : bool;  (* first ready process installed *)
  mutable halted : bool;  (* no ready process left *)
  trace : Mips_obs.Sink.t;
  stepf : Cpu.t -> Cpu.event;  (* engine-selected step function *)
}

let cpu t = t.cpu

let create ?(data_frames = 32) ?(code_frames = 32) ?(quantum = 2000)
    ?watchdog ?(max_retries = 8) ?(double_fault_limit = 8) ?backing_limit
    ?(fault_plan = Mips_fault.Plan.none) ?(trace = Mips_obs.Sink.null)
    ?(engine = Cpu.Ref) () =
  let cfg = Cpu.default_config in
  let cpu = Cpu.create ~config:cfg () in
  (* machine-level events (issues, monitor calls, dispatches) flow into the
     same sink as the kernel's scheduling decisions *)
  Cpu.set_trace cpu trace;
  Cpu.set_fault_plan cpu fault_plan;
  {
    cpu;
    quantum;
    watchdog;
    max_retries;
    double_fault_limit;
    backing_limit;
    procs = [];
    current = None;
    code_frames = Array.make code_frames None;
    data_frames = Array.make data_frames None;
    code_clock = 0;
    data_clock = 0;
    backing = Hashtbl.create 64;
    switches = 0;
    page_faults = 0;
    evictions = 0;
    interrupts = 0;
    map_changes_outside_fault = 0;
    in_switch = false;
    kernel_cycles = 0;
    watchdog_kills = 0;
    transient_faults = 0;
    transient_retries = 0;
    double_faults = 0;
    oom_kills = 0;
    out_of_fuel = false;
    quantum_left = quantum;
    started = false;
    halted = false;
    trace;
    stepf = Cpu.stepper engine;
  }

let user_sr =
  (* user mode, mapping on, interrupts on, overflow traps off (the
     reorganizer may speculate ALU work into delay slots) *)
  {
    Surprise.user_initial with
    Surprise.map_enable = true;
    ovf_enable = false;
  }

let spawn t ?(input = "") ~name (program : Program.t) =
  let pid = List.length t.procs in
  if pid >= max_procs then
    invalid_arg
      (Printf.sprintf
         "Kernel.spawn: process table full (%d processes, the %d-bit pid \
          field's worth)"
         max_procs mask_bits);
  if Array.length program.Program.code > half then
    invalid_arg "Kernel.spawn: program too large for a segment half";
  let data_image = Array.make (max 1 program.Program.data_words) 0 in
  List.iter
    (fun (a, v) -> if a < Array.length data_image then data_image.(a) <- v)
    program.Program.data;
  let pcb =
    {
      pid;
      pname = name;
      program;
      data_image;
      regs = Array.make 16 0;
      chain =
        (program.Program.entry, program.Program.entry + 1, program.Program.entry + 2);
      usr = user_sr;
      input;
      in_pos = 0;
      out = Buffer.create 128;
      st = Ready;
      cycles_used = 0;
      retries = 0;
      total_retries = 0;
      consec_faults = 0;
      first_fault = None;
    }
  in
  t.procs <- t.procs @ [ pcb ];
  if t.trace.Mips_obs.Sink.enabled then
    Mips_obs.Sink.emit t.trace (Mips_obs.Event.Spawn { pid; name })

(* --- paging ---------------------------------------------------------------- *)

let page = Pagemap.page_words

(* fill the physical frame for (pid, space, global page) *)
let fill_frame t (p : pcb) space gpage frame =
  let seg_base = p.pid * seg_words in
  let offset0 = (gpage * page) - seg_base in
  match space with
  | Pagemap.Ispace ->
      let code = p.program.Program.code in
      let notes = p.program.Program.notes in
      for k = 0 to page - 1 do
        let o = offset0 + k in
        let w = if o >= 0 && o < Array.length code then code.(o) else Word.Nop in
        Cpu.write_code t.cpu ((frame * page) + k) w;
        let n = if o >= 0 && o < Array.length notes then notes.(o) else Note.plain in
        Cpu.write_note t.cpu ((frame * page) + k) n
      done
  | Pagemap.Dspace -> (
      match Hashtbl.find_opt t.backing (p.pid, gpage) with
      | Some saved ->
          Array.iteri (fun k v -> Cpu.write_data t.cpu ((frame * page) + k) v) saved
      | None ->
          for k = 0 to page - 1 do
            let o = offset0 + k in
            let v =
              if o >= 0 && o < Array.length p.data_image then p.data_image.(o)
              else 0
            in
            Cpu.write_data t.cpu ((frame * page) + k) v
          done)

(* Room in the backing store for one more page of (pid, gpage)?  Re-saving
   a page that is already backed never needs new room. *)
let backing_room t key =
  match t.backing_limit with
  | None -> true
  | Some limit -> Hashtbl.length t.backing < limit || Hashtbl.mem t.backing key

(* clock replacement over one frame pool; [None] when nothing is evictable
   (empty pool, or every candidate is dirty with the backing store full) *)
let evict_from t space frames clock =
  let n = Array.length frames in
  let pm = Cpu.pagemap t.cpu in
  let rec scan i guard =
    if n = 0 || i >= 4 * n then None
    else
      let idx = (clock + i) mod n in
      match frames.(idx) with
      | None -> Some idx  (* free after all *)
      | Some owner -> (
          match Pagemap.find pm space ~vpage:owner.fo_gpage with
          | None -> Some idx
          | Some e ->
              if e.Pagemap.referenced && guard < 2 * n then begin
                e.Pagemap.referenced <- false;
                scan (i + 1) (guard + 1)
              end
              else if
                space = Pagemap.Dspace && e.Pagemap.dirty
                && not (backing_room t (owner.fo_pid, owner.fo_gpage))
              then
                (* nowhere to write it back: pass over this victim *)
                scan (i + 1) guard
              else begin
                (* evict *)
                t.evictions <- t.evictions + 1;
                (match space with
                | Pagemap.Dspace when e.Pagemap.dirty ->
                    let saved = Array.init page (fun k ->
                        Cpu.read_data t.cpu ((e.Pagemap.frame * page) + k))
                    in
                    Hashtbl.replace t.backing (owner.fo_pid, owner.fo_gpage) saved
                | _ -> ());
                Pagemap.unmap pm space ~vpage:owner.fo_gpage;
                Some idx
              end)
  in
  scan 0 0

let grab_frame t space =
  let frames, clock =
    match space with
    | Pagemap.Ispace -> (t.code_frames, t.code_clock)
    | Pagemap.Dspace -> (t.data_frames, t.data_clock)
  in
  let rec free i =
    if i >= Array.length frames then None
    else if frames.(i) = None then Some i
    else free (i + 1)
  in
  let idx =
    match free 0 with Some i -> Some i | None -> evict_from t space frames clock
  in
  match idx with
  | None -> None
  | Some idx ->
      (match space with
      | Pagemap.Ispace -> t.code_clock <- (idx + 1) mod Array.length frames
      | Pagemap.Dspace -> t.data_clock <- (idx + 1) mod Array.length frames);
      Some (frames, idx)

let valid_offset offset = offset >= 0 && offset < seg_words

type fault_service = Serviced | Bad_address | Out_of_frames

let service_fault t (p : pcb) space gaddr =
  let gpage = gaddr / page in
  let seg_base = p.pid * seg_words in
  let offset = gaddr - seg_base in
  if not (valid_offset offset) then Bad_address
  else begin
    t.page_faults <- t.page_faults + 1;
    t.kernel_cycles <- t.kernel_cycles + fault_service_cost;
    if t.trace.Mips_obs.Sink.enabled then
      Mips_obs.Sink.emit t.trace
        (Mips_obs.Event.Page_fault
           { pid = p.pid; ispace = space = Pagemap.Ispace; gaddr });
    match grab_frame t space with
    | None -> Out_of_frames
    | Some (frames, frame) ->
        fill_frame t p space gpage frame;
        frames.(frame) <- Some { fo_pid = p.pid; fo_gpage = gpage };
        Pagemap.map (Cpu.pagemap t.cpu) space ~vpage:gpage ~frame
          ~writable:(space = Pagemap.Dspace);
        if t.in_switch then
          t.map_changes_outside_fault <- t.map_changes_outside_fault + 1;
        Serviced
  end

(* kernel access to a user virtual word (for putstr), paging as needed *)
let kernel_read_user_word t (p : pcb) vaddr =
  let seg = Segmap.make ~pid:p.pid ~mask_bits in
  let gaddr = Segmap.translate seg vaddr in
  let pm = Cpu.pagemap t.cpu in
  let rec attempt retries =
    match Pagemap.translate pm Pagemap.Dspace ~write:false gaddr with
    | phys -> Cpu.read_data t.cpu phys
    | exception Pagemap.Fault _ ->
        if retries > 0 && service_fault t p Pagemap.Dspace gaddr = Serviced then
          attempt (retries - 1)
        else 0
  in
  attempt 1

let read_user_string t p ~addr ~len =
  let buf = Buffer.create len in
  for i = 0 to len - 1 do
    let w = kernel_read_user_word t p (addr + (i / 4)) in
    Buffer.add_char buf (Char.chr (Word32.get_byte w (i mod 4)))
  done;
  Buffer.contents buf

(* --- context switching -------------------------------------------------------- *)

let save_current t =
  match t.current with
  | None -> ()
  | Some p ->
      for i = 0 to 15 do
        p.regs.(i) <- Cpu.get_reg t.cpu (Reg.r i)
      done;
      p.chain <- (Cpu.epc t.cpu 0, Cpu.epc t.cpu 1, Cpu.epc t.cpu 2);
      p.usr <- Surprise.pop (Cpu.surprise t.cpu)

let install t (p : pcb) =
  for i = 0 to 15 do
    Cpu.set_reg t.cpu (Reg.r i) p.regs.(i)
  done;
  Cpu.set_segmap t.cpu (Segmap.make ~pid:p.pid ~mask_bits);
  Cpu.set_surprise t.cpu p.usr;
  Cpu.set_pc_chain t.cpu p.chain;
  t.current <- Some p

let ready_procs t = List.filter (fun p -> p.st = Ready) t.procs

(* rotate to the ready process after the current one *)
let next_ready t =
  let ready = ready_procs t in
  match (ready, t.current) with
  | [], _ -> None
  | _, None -> Some (List.hd ready)
  | _, Some cur -> (
      let after = List.filter (fun p -> p.pid > cur.pid) ready in
      match after with p :: _ -> Some p | [] -> Some (List.hd ready))

let switch t =
  let from_pid = match t.current with Some p -> Some p.pid | None -> None in
  save_current t;
  t.in_switch <- true;
  let next = next_ready t in
  (match next with Some p -> install t p | None -> t.current <- None);
  t.in_switch <- false;
  t.switches <- t.switches + 1;
  t.kernel_cycles <- t.kernel_cycles + switch_cost;
  if t.trace.Mips_obs.Sink.enabled then
    Mips_obs.Sink.emit t.trace
      (Mips_obs.Event.Context_switch
         {
           from_pid;
           to_pid = (match next with Some p -> Some p.pid | None -> None);
         });
  next <> None

(* resume the current process exactly where the exception left it (the
   handler may have redirected the EPCs first) *)
let resume t =
  Cpu.set_surprise t.cpu (Surprise.pop (Cpu.surprise t.cpu));
  Cpu.set_pc_chain t.cpu (Cpu.epc t.cpu 0, Cpu.epc t.cpu 1, Cpu.epc t.cpu 2)

(* --- monitor calls -------------------------------------------------------------- *)

let service_trap t (p : pcb) code =
  let arg0 () = Cpu.get_reg t.cpu Reg.scratch0 in
  let arg1 () = Cpu.get_reg t.cpu Reg.scratch1 in
  if code = Monitor.exit_ then `Exit (arg0 ())
  else if code = Monitor.putchar then begin
    Buffer.add_char p.out (Char.chr (arg0 () land 0xFF));
    `Resume
  end
  else if code = Monitor.putint then begin
    Buffer.add_string p.out (string_of_int (arg0 ()));
    `Resume
  end
  else if code = Monitor.getchar then begin
    let v =
      if p.in_pos < String.length p.input then begin
        let c = Char.code p.input.[p.in_pos] in
        p.in_pos <- p.in_pos + 1;
        c
      end
      else Hosted.eof_char
    in
    Cpu.set_reg t.cpu Reg.result v;
    `Resume
  end
  else if code = Monitor.putstr then begin
    Buffer.add_string p.out (read_user_string t p ~addr:(arg0 ()) ~len:(arg1 ()));
    `Resume
  end
  else if code = Monitor.yield then `Yield
  else `Kill (Cause.Trap, code)

(* a process left the ready set: report how *)
let note_departure t (p : pcb) =
  if t.trace.Mips_obs.Sink.enabled then
    match p.st with
    | Exited status ->
        Mips_obs.Sink.emit t.trace
          (Mips_obs.Event.Proc_exit { pid = p.pid; name = p.pname; status })
    | Killed reason ->
        Mips_obs.Sink.emit t.trace
          (Mips_obs.Event.Proc_killed
             {
               pid = p.pid;
               name = p.pname;
               cause = kill_reason_name reason;
               detail = kill_reason_detail reason;
             })
    | Ready -> ()

(* --- the main loop ----------------------------------------------------------------- *)

type proc_report = {
  pname : string;
  output : string;
  exit_status : int option;
  killed : kill_reason option;
  live : bool;
  cycles_used : int;
  retries : int;
}

type report = {
  procs : proc_report list;
  switches : int;
  page_faults : int;
  evictions : int;
  interrupts : int;
  map_changes_during_switches : int;
  switch_cycle_cost : int;
  total_cycles : int;
  kernel_cycles : int;
  watchdog_kills : int;
  transient_faults : int;
  transient_retries : int;
  double_faults : int;
  oom_kills : int;
  fuel_exhausted : bool;
}

let make_report (t : t) =
  {
    procs =
      List.map
        (fun (p : pcb) ->
          {
            pname = p.pname;
            output = Buffer.contents p.out;
            exit_status = (match p.st with Exited s -> Some s | _ -> None);
            killed = (match p.st with Killed r -> Some r | _ -> None);
            live = p.st = Ready;
            cycles_used = p.cycles_used;
            retries = p.total_retries;
          })
        t.procs;
    switches = t.switches;
    page_faults = t.page_faults;
    evictions = t.evictions;
    interrupts = t.interrupts;
    map_changes_during_switches = t.map_changes_outside_fault;
    switch_cycle_cost = switch_cost;
    total_cycles = (Cpu.stats t.cpu).Stats.cycles + t.kernel_cycles;
    kernel_cycles = t.kernel_cycles;
    watchdog_kills = t.watchdog_kills;
    transient_faults = t.transient_faults;
    transient_retries = t.transient_retries;
    double_faults = t.double_faults;
    oom_kills = t.oom_kills;
    fuel_exhausted = t.out_of_fuel;
  }

let report_json (r : report) =
  let open Mips_obs.Json in
  Obj
    [ ( "procs",
        List
          (List.map
             (fun (p : proc_report) ->
               Obj
                 [ ("name", Str p.pname);
                   ("output_bytes", Int (String.length p.output));
                   ( "exit_status",
                     match p.exit_status with Some s -> Int s | None -> Null );
                   ( "killed",
                     match p.killed with
                     | Some reason ->
                         Obj
                           [ ("cause", Str (kill_reason_name reason));
                             ("detail", Int (kill_reason_detail reason)) ]
                     | None -> Null );
                   ("live", Bool p.live);
                   ("cycles_used", Int p.cycles_used);
                   ("retries", Int p.retries) ])
             r.procs) );
      ("switches", Int r.switches);
      ("page_faults", Int r.page_faults);
      ("evictions", Int r.evictions);
      ("interrupts", Int r.interrupts);
      ("map_changes_during_switches", Int r.map_changes_during_switches);
      ("switch_cycle_cost", Int r.switch_cycle_cost);
      ("total_cycles", Int r.total_cycles);
      ("kernel_cycles", Int r.kernel_cycles);
      ("watchdog_kills", Int r.watchdog_kills);
      ("transient_faults", Int r.transient_faults);
      ("transient_retries", Int r.transient_retries);
      ("double_faults", Int r.double_faults);
      ("oom_kills", Int r.oom_kills);
      ("fuel_exhausted", Bool r.fuel_exhausted) ]

(* one process dies; the machine (and everyone else) keeps going *)
let kill (t : t) (p : pcb) reason =
  (match reason with
  | Watchdog cycles ->
      t.watchdog_kills <- t.watchdog_kills + 1;
      if t.trace.Mips_obs.Sink.enabled then
        Mips_obs.Sink.emit t.trace
          (Mips_obs.Event.Watchdog_kill { pid = p.pid; name = p.pname; cycles })
  | Double_fault (first, second) ->
      t.double_faults <- t.double_faults + 1;
      if t.trace.Mips_obs.Sink.enabled then
        Mips_obs.Sink.emit t.trace
          (Mips_obs.Event.Double_fault
             {
               pid = p.pid;
               name = p.pname;
               first = Cause.name first;
               second = Cause.name second;
             })
  | Out_of_memory _ -> t.oom_kills <- t.oom_kills + 1
  | Arch_fault _ | Retry_exhausted _ -> ());
  p.st <- Killed reason;
  note_departure t p;
  t.current <- None;
  if not (switch t) then t.halted <- true

(* install the first ready process; idempotent, so a restored kernel (whose
   current process is already live in the machine) is not clobbered *)
let start (t : t) =
  if not t.started then begin
    (match next_ready t with Some p -> install t p | None -> ());
    t.started <- true;
    t.halted <- t.current = None
  end

(* exactly one iteration of the scheduling loop (one machine step or one
   dispatched exception) *)
let step_kernel (t : t) =
  match t.stepf t.cpu with
  | Cpu.Stepped ->
      (match t.current with
      | Some p ->
          p.cycles_used <- p.cycles_used + 1;
          (* forward progress: every no-progress streak ends here *)
          p.retries <- 0;
          p.consec_faults <- 0;
          p.first_fault <- None;
          (match t.watchdog with
          | Some budget when p.cycles_used > budget ->
              kill t p (Watchdog p.cycles_used)
          | _ -> ())
      | None -> ());
      t.quantum_left <- t.quantum_left - 1;
      if (not t.halted) && t.quantum_left <= 0 then begin
        Cpu.set_interrupt t.cpu true;
        t.quantum_left <- t.quantum
      end
  | Cpu.Dispatched cause -> (
      let p = match t.current with Some p -> p | None -> assert false in
      let transient =
        cause = Cause.Page_fault && Cpu.faulted t.cpu = Some Cpu.Transient_ref
      in
      let is_fault =
        (not transient)
        && match cause with Cause.Interrupt | Cause.Trap -> false | _ -> true
      in
      if is_fault then begin
        if p.first_fault = None then p.first_fault <- Some cause;
        p.consec_faults <- p.consec_faults + 1
      end;
      if is_fault && p.consec_faults >= t.double_fault_limit then
        (* faulting over and over with no successful step in between:
           looping through the dispatch path will not converge — kill *)
        let first = match p.first_fault with Some c -> c | None -> cause in
        kill t p (Double_fault (first, cause))
      else
        match cause with
        | Cause.Interrupt ->
            Cpu.set_interrupt t.cpu false;
            t.interrupts <- t.interrupts + 1;
            if not (switch t) then t.halted <- true;
            t.quantum_left <- t.quantum
        | Cause.Trap -> (
            let code = (Cpu.surprise t.cpu).Surprise.cause_detail in
            match service_trap t p code with
            | `Resume -> resume t
            | `Yield ->
                if not (switch t) then t.halted <- true;
                t.quantum_left <- t.quantum
            | `Exit status ->
                p.st <- Exited status;
                note_departure t p;
                t.current <- None;
                if not (switch t) then t.halted <- true
            | `Kill (c, d) -> kill t p (Arch_fault (c, d)))
        | Cause.Page_fault when transient ->
            t.transient_faults <- t.transient_faults + 1;
            p.retries <- p.retries + 1;
            p.total_retries <- p.total_retries + 1;
            if p.retries > t.max_retries then
              kill t p (Retry_exhausted p.retries)
            else begin
              (* bounded retry with exponential backoff, charged as kernel
                 work (the backoff models a widening re-issue delay) *)
              t.transient_retries <- t.transient_retries + 1;
              t.kernel_cycles <-
                t.kernel_cycles
                + (fault_service_cost * (1 lsl min (p.retries - 1) 6));
              if t.trace.Mips_obs.Sink.enabled then
                Mips_obs.Sink.emit t.trace
                  (Mips_obs.Event.Retry { pid = p.pid; attempt = p.retries });
              resume t
            end
        | Cause.Page_fault -> (
            match Cpu.faulted_addr t.cpu with
            | Some (space, gaddr) -> (
                match service_fault t p space gaddr with
                | Serviced -> resume t
                | Bad_address ->
                    (* a reference between the two valid regions, or outside
                       the segment entirely: terminate the offender *)
                    kill t p (Arch_fault (Cause.Page_fault, 0))
                | Out_of_frames -> kill t p (Out_of_memory space))
            | None -> kill t p (Arch_fault (Cause.Page_fault, 0)))
        | (Cause.Overflow | Cause.Privilege | Cause.Illegal | Cause.Reset) as c
          ->
            kill t p (Arch_fault (c, (Cpu.surprise t.cpu).Surprise.cause_detail)))

(* Run for at most [steps] loop iterations — the slice a checkpointing
   driver asks for.  The iteration sequence is identical to one [run] with
   the same total budget: all loop state lives in [t]. *)
let run_for (t : t) ~steps =
  start t;
  let n = ref steps in
  while (not t.halted) && !n > 0 do
    step_kernel t;
    decr n
  done;
  t.out_of_fuel <- not t.halted;
  if t.halted then `Done else `More

let report t = make_report t

let run ?(fuel = 50_000_000) t =
  ignore (run_for t ~steps:fuel);
  make_report t

(* --- checkpoint -------------------------------------------------------------- *)

(* Everything the scheduler knows that the machine state does not carry.
   The pcb snapshot for the *current* process holds its last-saved (stale)
   register copy, exactly as the live pcb does — the live values travel in
   the machine snapshot. *)
type pcb_snapshot = {
  sn_pid : int;
  sn_pname : string;
  sn_regs : int array;
  sn_chain : int * int * int;
  sn_usr : Surprise.t;
  sn_in_pos : int;
  sn_out : string;
  sn_st : [ `Ready | `Exited of int | `Killed of kill_reason ];
  sn_cycles_used : int;
  sn_retries : int;
  sn_total_retries : int;
  sn_consec_faults : int;
  sn_first_fault : Cause.t option;
}

type sched_snapshot = {
  k_procs : pcb_snapshot list;
  k_current : int option;  (* pid *)
  k_code_frames : (int * int * int) list;  (* frame index, owner pid, gpage *)
  k_data_frames : (int * int * int) list;
  k_code_clock : int;
  k_data_clock : int;
  k_backing : ((int * int) * int array) list;  (* sorted by (pid, gpage) *)
  k_switches : int;
  k_page_faults : int;
  k_evictions : int;
  k_interrupts : int;
  k_map_changes : int;
  k_kernel_cycles : int;
  k_watchdog_kills : int;
  k_transient_faults : int;
  k_transient_retries : int;
  k_double_faults : int;
  k_oom_kills : int;
  k_out_of_fuel : bool;
  k_quantum_left : int;
  k_started : bool;
  k_halted : bool;
}

let frames_snapshot frames =
  let acc = ref [] in
  Array.iteri
    (fun i o ->
      match o with
      | Some { fo_pid; fo_gpage } -> acc := (i, fo_pid, fo_gpage) :: !acc
      | None -> ())
    frames;
  List.rev !acc

let sched_snapshot (t : t) =
  {
    k_procs =
      List.map
        (fun (p : pcb) ->
          {
            sn_pid = p.pid;
            sn_pname = p.pname;
            sn_regs = Array.copy p.regs;
            sn_chain = p.chain;
            sn_usr = p.usr;
            sn_in_pos = p.in_pos;
            sn_out = Buffer.contents p.out;
            sn_st =
              (match p.st with
              | Ready -> `Ready
              | Exited s -> `Exited s
              | Killed r -> `Killed r);
            sn_cycles_used = p.cycles_used;
            sn_retries = p.retries;
            sn_total_retries = p.total_retries;
            sn_consec_faults = p.consec_faults;
            sn_first_fault = p.first_fault;
          })
        t.procs;
    k_current = (match t.current with Some p -> Some p.pid | None -> None);
    k_code_frames = frames_snapshot t.code_frames;
    k_data_frames = frames_snapshot t.data_frames;
    k_code_clock = t.code_clock;
    k_data_clock = t.data_clock;
    k_backing =
      Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) t.backing []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    k_switches = t.switches;
    k_page_faults = t.page_faults;
    k_evictions = t.evictions;
    k_interrupts = t.interrupts;
    k_map_changes = t.map_changes_outside_fault;
    k_kernel_cycles = t.kernel_cycles;
    k_watchdog_kills = t.watchdog_kills;
    k_transient_faults = t.transient_faults;
    k_transient_retries = t.transient_retries;
    k_double_faults = t.double_faults;
    k_oom_kills = t.oom_kills;
    k_out_of_fuel = t.out_of_fuel;
    k_quantum_left = t.quantum_left;
    k_started = t.started;
    k_halted = t.halted;
  }

let restore_sched (t : t) (s : sched_snapshot) =
  if List.length t.procs <> List.length s.k_procs then
    invalid_arg "Kernel.restore_sched: process count mismatch";
  List.iter2
    (fun (p : pcb) (sn : pcb_snapshot) ->
      if p.pid <> sn.sn_pid || p.pname <> sn.sn_pname then
        invalid_arg
          (Printf.sprintf
             "Kernel.restore_sched: process mismatch (snapshot %d:%s, live \
              %d:%s)"
             sn.sn_pid sn.sn_pname p.pid p.pname);
      if Array.length sn.sn_regs <> Array.length p.regs then
        invalid_arg "Kernel.restore_sched: register-file size mismatch";
      Array.blit sn.sn_regs 0 p.regs 0 (Array.length p.regs);
      p.chain <- sn.sn_chain;
      p.usr <- sn.sn_usr;
      p.in_pos <- sn.sn_in_pos;
      Buffer.clear p.out;
      Buffer.add_string p.out sn.sn_out;
      p.st <-
        (match sn.sn_st with
        | `Ready -> Ready
        | `Exited c -> Exited c
        | `Killed r -> Killed r);
      p.cycles_used <- sn.sn_cycles_used;
      p.retries <- sn.sn_retries;
      p.total_retries <- sn.sn_total_retries;
      p.consec_faults <- sn.sn_consec_faults;
      p.first_fault <- sn.sn_first_fault)
    t.procs s.k_procs;
  let proc pid =
    match List.find_opt (fun (p : pcb) -> p.pid = pid) t.procs with
    | Some p -> p
    | None -> invalid_arg "Kernel.restore_sched: unknown pid"
  in
  t.current <-
    (match s.k_current with Some pid -> Some (proc pid) | None -> None);
  let restore_frames frames lst =
    Array.fill frames 0 (Array.length frames) None;
    List.iter
      (fun (i, pid, gpage) ->
        if i < 0 || i >= Array.length frames then
          invalid_arg "Kernel.restore_sched: frame index out of range";
        frames.(i) <- Some { fo_pid = pid; fo_gpage = gpage })
      lst
  in
  restore_frames t.code_frames s.k_code_frames;
  restore_frames t.data_frames s.k_data_frames;
  t.code_clock <- s.k_code_clock;
  t.data_clock <- s.k_data_clock;
  Hashtbl.reset t.backing;
  List.iter (fun (k, v) -> Hashtbl.replace t.backing k (Array.copy v)) s.k_backing;
  t.switches <- s.k_switches;
  t.page_faults <- s.k_page_faults;
  t.evictions <- s.k_evictions;
  t.interrupts <- s.k_interrupts;
  t.map_changes_outside_fault <- s.k_map_changes;
  t.kernel_cycles <- s.k_kernel_cycles;
  t.watchdog_kills <- s.k_watchdog_kills;
  t.transient_faults <- s.k_transient_faults;
  t.transient_retries <- s.k_transient_retries;
  t.double_faults <- s.k_double_faults;
  t.oom_kills <- s.k_oom_kills;
  t.out_of_fuel <- s.k_out_of_fuel;
  t.quantum_left <- s.k_quantum_left;
  t.started <- s.k_started;
  t.halted <- s.k_halted;
  t.in_switch <- false;
  (* instruction memory is not serialized: every owned code frame is
     refilled from the (deterministic) program image.  Code pages are
     read-only, so the refill is bit-identical to the frame's content in
     the uninterrupted run.  Data frames are restored with the machine's
     data memory and left alone here. *)
  List.iter
    (fun (frame, pid, gpage) ->
      fill_frame t (proc pid) Pagemap.Ispace gpage frame)
    s.k_code_frames
