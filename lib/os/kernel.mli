(** A demand-paged, multi-programmed kernel over the simulator —
    the systems story of the paper's Section 3, made executable.

    - {b Segmentation}: each process gets a process id; the on-chip
      segmentation unit gives it a private 64K-word segment of the global
      virtual space.  Code and static data live in the low half of the
      process's address space, the stack grows in the high half — a
      reference between the two valid regions faults, exactly as
      Section 3.1 prescribes.  Because the pid travels in the address,
      {e context switches never touch the page map}; the kernel counts map
      changes during switches to demonstrate it.
    - {b Demand paging}: instruction and data pages fault in on first
      touch; a clock algorithm evicts when physical frames run out, writing
      dirty data pages to a backing store.
    - {b Exceptions}: every kernel entry goes through the architectural
      dispatch (surprise push, EPC save, PC chain to 0); the kernel reads
      the cause fields to decide, then performs the return-from-exception.
    - {b Scheduling}: round-robin.  Quantum expiry is signalled by raising
      the external interrupt line (the paper's single-line interface), so
      preemption exercises the interrupt dispatch path.
    - {b Context switches}: the kernel saves/restores the sixteen general
      registers through the dual instruction/data memory interface — the
      paper's observation that register-save sequences run at full memory
      bandwidth is charged as 32 memory cycles plus the dispatch overhead,
      and measured by the report. *)

open Mips_machine

type t

val create :
  ?data_frames:int ->
  ?code_frames:int ->
  ?quantum:int ->
  ?trace:Mips_obs.Sink.t ->
  unit ->
  t
(** [data_frames]/[code_frames]: physical frames available for paging
    (default 32 each); [quantum]: instructions between timer interrupts
    (default 2000).

    [trace] receives the kernel's scheduling story — [Spawn],
    [Context_switch], [Page_fault] (serviced demand page-ins), [Proc_exit]
    and [Proc_killed] — and is also attached to the underlying machine, so
    per-word events and monitor calls interleave in the same stream. *)

val user_stack_top : int
(** Virtual stack top for user programs (in the high half of the process
    address space).  Compile OS-hosted programs with a configuration whose
    [stack_top] is this value. *)

val spawn : t -> ?input:string -> name:string -> Program.t -> unit
(** Add a process (at most 8).  Nothing is loaded into memory until the
    process faults its first page in. *)

type proc_report = {
  pname : string;
  output : string;
  exit_status : int option;  (** None if killed or still running *)
  killed : (Cause.t * int) option;
}

type report = {
  procs : proc_report list;
  switches : int;
  page_faults : int;
  evictions : int;
  interrupts : int;
  map_changes_during_switches : int;  (** expected 0: the pid travels in the
                                          address, not in the map *)
  switch_cycle_cost : int;  (** cycles charged per context switch *)
  total_cycles : int;
  kernel_cycles : int;  (** cycles spent on kernel work (switches, fault
                            service), charged per the cost model *)
}

val run : ?fuel:int -> t -> report
(** Run until every process exits (or fuel runs out). *)

val report_json : report -> Mips_obs.Json.t
(** Machine-readable form of a run report (process outcomes by name plus
    every kernel counter). *)

val cpu : t -> Cpu.t
(** The underlying machine, for inspection. *)
