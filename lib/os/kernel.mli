(** A demand-paged, multi-programmed kernel over the simulator —
    the systems story of the paper's Section 3, made executable.

    - {b Segmentation}: each process gets a process id; the on-chip
      segmentation unit gives it a private 64K-word segment of the global
      virtual space.  Code and static data live in the low half of the
      process's address space, the stack grows in the high half — a
      reference between the two valid regions faults, exactly as
      Section 3.1 prescribes.  Because the pid travels in the address,
      {e context switches never touch the page map}; the kernel counts map
      changes during switches to demonstrate it.
    - {b Demand paging}: instruction and data pages fault in on first
      touch; a clock algorithm evicts when physical frames run out, writing
      dirty data pages to a backing store.
    - {b Exceptions}: every kernel entry goes through the architectural
      dispatch (surprise push, EPC save, PC chain to 0); the kernel reads
      the cause fields to decide, then performs the return-from-exception.
    - {b Scheduling}: round-robin.  Quantum expiry is signalled by raising
      the external interrupt line (the paper's single-line interface), so
      preemption exercises the interrupt dispatch path.
    - {b Context switches}: the kernel saves/restores the sixteen general
      registers through the dual instruction/data memory interface — the
      paper's observation that register-save sequences run at full memory
      bandwidth is charged as 32 memory cycles plus the dispatch overhead,
      and measured by the report.
    - {b Robustness}: faults are process-local.  A per-process cycle-budget
      watchdog, bounded retry with exponential backoff for injected
      transient memory faults, double-fault detection (a process that keeps
      faulting with no successful step in between is killed rather than
      looped through dispatch forever), and graceful out-of-frames /
      out-of-backing-store kills guarantee the kernel itself never hangs or
      crashes on a misbehaving (or fault-injected) process. *)

open Mips_machine

type t

(** Why the kernel terminated a process. *)
type kill_reason =
  | Arch_fault of Cause.t * int
      (** an unserviceable architectural exception (cause, cause-detail) —
          a wild reference, privilege violation, unknown trap code, ... *)
  | Watchdog of int
      (** exceeded its cycle budget; the payload is the cycles it had used *)
  | Retry_exhausted of int
      (** an injected transient memory fault kept firing on the same word
          past the retry bound; the payload is the attempts made *)
  | Double_fault of Cause.t * Cause.t
      (** kept faulting with no successful step in between (oldest and
          newest cause of the streak) *)
  | Out_of_memory of Mips_machine.Pagemap.space
      (** a page fault that could not be serviced: no evictable frame in
          this space's pool (or the backing store is full) *)

val kill_reason_name : kill_reason -> string
val kill_reason_detail : kill_reason -> int

val max_procs : int
(** Process-table capacity: [2^mask_bits = 256], the pid field's worth. *)

val create :
  ?data_frames:int ->
  ?code_frames:int ->
  ?quantum:int ->
  ?watchdog:int ->
  ?max_retries:int ->
  ?double_fault_limit:int ->
  ?backing_limit:int ->
  ?fault_plan:Mips_fault.Plan.t ->
  ?trace:Mips_obs.Sink.t ->
  ?engine:Mips_machine.Cpu.engine ->
  unit ->
  t
(** [data_frames]/[code_frames]: physical frames available for paging
    (default 32 each); [quantum]: instructions between timer interrupts
    (default 2000).

    Robustness knobs: [watchdog] is a per-process cycle budget (default
    none — processes may run forever); [max_retries] bounds consecutive
    transient-fault retries of one word (default 8); [double_fault_limit]
    bounds consecutive non-transient faults with no successful step between
    them (default 8); [backing_limit] caps the backing store, in pages
    (default unlimited).  [fault_plan] attaches a {!Mips_fault.Plan.t} to
    the underlying machine for seeded transient-fault injection.

    [trace] receives the kernel's scheduling story — [Spawn],
    [Context_switch], [Page_fault] (serviced demand page-ins), [Retry],
    [Watchdog_kill], [Double_fault], [Proc_exit] and [Proc_killed] — and is
    also attached to the underlying machine, so per-word events and monitor
    calls interleave in the same stream.

    [engine] selects the execution engine for the run loop (default
    {!Mips_machine.Cpu.Ref}).  With {!Mips_machine.Cpu.Fast} user code runs
    through the predecoded closure cache; every quantum-expiry interrupt,
    injected fault and traced cycle automatically drops back to the
    reference step, so scheduling behaviour is unchanged. *)

val user_stack_top : int
(** Virtual stack top for user programs (in the high half of the process
    address space).  Compile OS-hosted programs with a configuration whose
    [stack_top] is this value. *)

val spawn : t -> ?input:string -> name:string -> Program.t -> unit
(** Add a process (at most {!max_procs} = 256, the capacity of the pid
    field the segmentation unit folds into addresses).  Nothing is loaded
    into memory until the process faults its first page in.
    @raise Invalid_argument when the table is full or the program does not
    fit a segment half. *)

type proc_report = {
  pname : string;
  output : string;
  exit_status : int option;  (** None if killed or still running *)
  killed : kill_reason option;
  live : bool;  (** still runnable when the run stopped (fuel ran out) *)
  cycles_used : int;  (** user instruction words this process executed *)
  retries : int;  (** transient-fault retries performed on its behalf *)
}

type report = {
  procs : proc_report list;
  switches : int;
  page_faults : int;
  evictions : int;
  interrupts : int;
  map_changes_during_switches : int;  (** expected 0: the pid travels in the
                                          address, not in the map *)
  switch_cycle_cost : int;  (** cycles charged per context switch *)
  total_cycles : int;
  kernel_cycles : int;  (** cycles spent on kernel work (switches, fault
                            service), charged per the cost model *)
  watchdog_kills : int;
  transient_faults : int;  (** injected transient memory faults dispatched *)
  transient_retries : int;  (** of those, restarted through the EPC chain *)
  double_faults : int;
  oom_kills : int;
  fuel_exhausted : bool;  (** the run stopped on fuel, not quiescence *)
}

val run : ?fuel:int -> t -> report
(** Run until every process exits or is killed (or fuel runs out — then
    [fuel_exhausted] is set and still-runnable processes have [live]).
    A process-local fault never halts the kernel: the offender is killed
    (with a precise {!kill_reason}) and everyone else keeps running. *)

val run_for : t -> steps:int -> [ `Done | `More ]
(** Run at most [steps] iterations of the scheduling loop (each is one
    machine step or one dispatched exception).  All loop state lives in the
    kernel, so a run sliced into arbitrary [run_for] calls is bit-identical
    to a single {!run} with the same total budget — this is the hook the
    checkpointing driver uses.  [`Done] when every process has exited or
    been killed; [`More] when the budget ran out first. *)

val report : t -> report
(** The report for the work done so far (what {!run} returns). *)

val report_json : report -> Mips_obs.Json.t
(** Machine-readable form of a run report (process outcomes by name plus
    every kernel counter). *)

val cpu : t -> Cpu.t
(** The underlying machine, for inspection. *)

(** {2 Checkpoint support}

    A {!sched_snapshot} carries everything the scheduler knows that the
    machine state does not: process control blocks, frame ownership, clock
    hands, the backing store, counters and the run loop's own position.
    Restoring a run means: re-create the kernel with the same parameters,
    {!spawn} the same processes (their programs are re-derived
    deterministically — code is not serialized), {!restore_sched}, then
    restore the machine snapshot.  [restore_sched] refills every owned code
    frame from the program image (code pages are read-only, so the refill is
    bit-identical); data memory travels with the machine snapshot. *)

type pcb_snapshot = {
  sn_pid : int;
  sn_pname : string;
  sn_regs : int array;
  sn_chain : int * int * int;
  sn_usr : Surprise.t;
  sn_in_pos : int;
  sn_out : string;
  sn_st : [ `Ready | `Exited of int | `Killed of kill_reason ];
  sn_cycles_used : int;
  sn_retries : int;
  sn_total_retries : int;
  sn_consec_faults : int;
  sn_first_fault : Cause.t option;
}

type sched_snapshot = {
  k_procs : pcb_snapshot list;
  k_current : int option;  (** pid of the installed process *)
  k_code_frames : (int * int * int) list;
      (** (frame index, owner pid, global page) *)
  k_data_frames : (int * int * int) list;
  k_code_clock : int;
  k_data_clock : int;
  k_backing : ((int * int) * int array) list;  (** sorted by (pid, gpage) *)
  k_switches : int;
  k_page_faults : int;
  k_evictions : int;
  k_interrupts : int;
  k_map_changes : int;
  k_kernel_cycles : int;
  k_watchdog_kills : int;
  k_transient_faults : int;
  k_transient_retries : int;
  k_double_faults : int;
  k_oom_kills : int;
  k_out_of_fuel : bool;
  k_quantum_left : int;
  k_started : bool;
  k_halted : bool;
}

val sched_snapshot : t -> sched_snapshot
(** Capture the scheduler state.  Side-effect free: safe to call between
    {!run_for} slices without perturbing the run. *)

val restore_sched : t -> sched_snapshot -> unit
(** Restore scheduler state captured by {!sched_snapshot} into a freshly
    created kernel whose processes have been re-spawned in the same order.
    @raise Invalid_argument when the live process table does not match the
    snapshot (count, pids or names), or a frame index is out of range. *)
