(** The typed execution-event model.

    Every observable thing the reproduction does — a word issuing, an
    interlock stall, a branch committing, a kernel decision — is one
    constructor here.  The simulator, reorganizer and kernel construct
    events only when a sink is enabled, so the model can afford to be
    descriptive (records, rendered instruction text) without taxing the
    uninstrumented hot path.

    Machine-level causes travel as their rendered name (for example
    ["Page_fault"]) rather than as [Mips_machine.Cause.t]: this library
    sits {e below} the machine in the dependency order so that the machine,
    reorganizer and kernel can all emit into it. *)

type delay_slot_kind = [ `Filled | `Squashed | `Nop ]

type stall_reason =
  | Load_use of { producer_pc : int; producer : string }
      (** interlock mode: the previous word's load feeds this word *)
  | Branch_latency of { slots : int }
      (** interlock mode: a taken branch squashes its delay slots *)

type t =
  | Fetch of { pc : int }
  | Issue of { pc : int; word : string; pieces : int }
      (** one instruction word issued; [pieces > 1] means a packed word *)
  | Stall of { pc : int; word : string; cycles : int; reason : stall_reason }
  | Branch_taken of { pc : int; target : int }
  | Delay_slot of { pc : int; kind : delay_slot_kind }
      (** a word executing in a taken branch's shadow *)
  | Mem_ref of {
      pc : int;
      addr : int;  (** physical word address *)
      load : bool;
      byte : bool;
      char_data : bool;
    }
  | Exception_dispatch of { pc : int; cause : string; code : int; detail : int }
  | Monitor_call of { code : int; name : string }
  | Spawn of { pid : int; name : string }
  | Context_switch of { from_pid : int option; to_pid : int option }
  | Page_fault of { pid : int; ispace : bool; gaddr : int }
      (** a fault the kernel serviced (demand page-in) *)
  | Proc_exit of { pid : int; name : string; status : int }
  | Proc_killed of { pid : int; name : string; cause : string; detail : int }
  | Pass of { name : string; seconds : float }
      (** a compiler/reorganizer pass completed *)
  | Fault_injected of { cycle : int; kind : string; target : int }
      (** the fault plan injected a transient fault into the machine; [kind]
          is the plan's kind name ("reg_flip", "irq", ...) and [target] its
          primary payload (register index, word address, page pick) *)
  | Retry of { pid : int; attempt : int }
      (** the kernel restarted a process after a transient memory fault *)
  | Watchdog_kill of { pid : int; name : string; cycles : int }
      (** the kernel killed a process that exceeded its cycle budget *)
  | Double_fault of { pid : int; name : string; first : string; second : string }
      (** the kernel killed a process that kept faulting with no forward
          progress; [first]/[second] are the rendered cause names of the
          oldest and newest faults in the streak *)
  | Job_retry of { label : string; attempt : int; backoff_s : float }
      (** the supervisor re-ran a failed pool job; [backoff_s] is the
          simulated backoff delay charged (not slept) before the retry *)
  | Job_quarantined of { label : string; attempts : int; error : string }
      (** a job exhausted its retry budget and was poisoned — the pool keeps
          running without it; [error] is the rendered last exception *)
  | Circuit_open of { failures : int }
      (** the supervisor's circuit breaker tripped: subsequent fan-outs run
          serially on the calling domain until reset *)
  | Checkpoint_write of { path : string; phase : string; steps : int; bytes : int }
      (** a durable snapshot was committed (atomic rename); [steps] is the
          phase-local progress mark it captures *)
  | Checkpoint_restore of { path : string; phase : string; steps : int }
      (** a run resumed from a snapshot at the given phase and progress *)

val equal : t -> t -> bool

val kind_name : t -> string
(** The discriminator used in the JSON encoding ("issue", "stall", ...). *)

val delay_slot_name : delay_slot_kind -> string

val pp : Format.formatter -> t -> unit
(** One human-readable line per event (the [--trace-format=text] rendering). *)

val to_text : t -> string

val to_json : t -> Json.t
(** One-line JSON object with an ["ev"] discriminator — the JSONL encoding. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; every constructor round-trips. *)

val samples : t list
(** At least one value of every constructor (both stall reasons, all three
    delay-slot kinds) — what the round-trip tests iterate over. *)
