(** Pluggable event sinks.

    Instrumentation sites are written as
    [if Sink.enabled sink then Sink.emit sink (Event.Issue {...})] — with
    the {!null} sink the guard is a single load-and-branch and the event is
    never allocated, which is what keeps the uninstrumented simulator at
    its current speed. *)

type t = {
  enabled : bool;
  emit : Event.t -> unit;
  flush : unit -> unit;
}

val null : t
(** Drops everything; [enabled = false]. *)

val enabled : t -> bool

val emit : t -> Event.t -> unit
(** No-op when the sink is disabled.  Hot paths should test {!enabled}
    first so the event itself is only constructed when someone listens. *)

val flush : t -> unit

val make : ?flush:(unit -> unit) -> (Event.t -> unit) -> t
val of_fun : (Event.t -> unit) -> t

val tee : t -> t -> t
(** Emit into both sinks (collapses to {!null}/the live side when one or
    both are disabled). *)

(** {2 Bounded ring buffer}

    Keeps the last [capacity] events; older events are overwritten, and
    {!ring_dropped} reports how many were lost.  The flight-recorder shape:
    cheap enough to leave on, inspectable after the fact. *)

type ring

val ring : capacity:int -> ring * t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val ring_capacity : ring -> int
val ring_seen : ring -> int
(** Total events emitted into the ring, including overwritten ones. *)

val ring_dropped : ring -> int
(** [max 0 (seen - capacity)]. *)

val ring_contents : ring -> Event.t list
(** The retained events, oldest first. *)

(** {2 Textual sinks} *)

val formatter : Format.formatter -> t
(** One human-readable line per event. *)

val jsonl_channel : out_channel -> t
(** One JSON object per line. *)

val jsonl_buffer : Buffer.t -> t

type format = Text | Jsonl

val format_of_string : string -> format option
(** ["text"] / ["jsonl"] (accepts ["json"] as an alias). *)

val to_channel : format -> out_channel -> t
