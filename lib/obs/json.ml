type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* JSON has no NaN/infinity literals *)
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* pretty printer: two-space indentation, deterministic *)
let rec pp ?(indent = 0) ppf j =
  let pad n = String.make n ' ' in
  match j with
  | Null | Bool _ | Int _ | Float _ | Str _ ->
      Format.pp_print_string ppf (to_string j)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
      Format.pp_print_string ppf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Format.pp_print_string ppf ",\n";
          Format.pp_print_string ppf (pad (indent + 2));
          pp ~indent:(indent + 2) ppf x)
        xs;
      Format.fprintf ppf "\n%s]" (pad indent)
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      Format.pp_print_string ppf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.pp_print_string ppf ",\n";
          Format.fprintf ppf "%s\"%s\": " (pad (indent + 2)) k;
          pp ~indent:(indent + 2) ppf v)
        fields;
      Format.fprintf ppf "\n%s}" (pad indent)

let pp ppf j = pp ~indent:0 ppf j

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance c; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* we only emit \u for control characters; decode BMP as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c ("bad number " ^ s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (f :: acc)
          | Some '}' ->
              advance c;
              List.rev (f :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> invalid_arg ("Json: " ^ msg)

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let member_exn k j =
  match member k j with
  | Some v -> v
  | None -> invalid_arg ("Json: missing member " ^ k)

let to_int_exn = function
  | Int n -> n
  | _ -> invalid_arg "Json: expected an integer"

let to_float_exn = function
  | Float f -> f
  | Int n -> float_of_int n
  | _ -> invalid_arg "Json: expected a number"

let to_string_exn = function
  | Str s -> s
  | _ -> invalid_arg "Json: expected a string"

let to_bool_exn = function
  | Bool b -> b
  | _ -> invalid_arg "Json: expected a boolean"

let to_list_exn = function
  | List xs -> xs
  | _ -> invalid_arg "Json: expected a list"
