(** A registry of named counters and accumulating timers.

    The reorganizer charges per-pass wall time here, the kernel its
    bookkeeping counts; {!to_json} is the machine-readable form the bench
    harness diffs.  Names are free-form dotted paths
    (["reorg.schedule"], ["delay.scheme1"]); output is sorted by name so
    serializations are deterministic. *)

type t

val create : unit -> t

val null : t
(** A registry that records nothing: every operation is a no-op.  Default
    sink for instrumented paths that may run concurrently on worker domains
    — a disabled registry is never written, so it is safe to share. *)

(** {2 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set : t -> string -> int -> unit
val count : t -> string -> int
(** 0 for a counter never touched. *)

(** {2 Timers}

    A timer accumulates processor seconds ({!Sys.time}) across calls. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its duration (exceptions included). *)

val add_seconds : t -> string -> float -> unit
val seconds : t -> string -> float
val calls : t -> string -> int

(** {2 Histograms}

    A histogram records a distribution of values in 64 base-2 magnitude
    buckets with exact count/sum/min/max, giving ~1.4x-relative-error
    quantiles at O(1) cost per sample.  Because buckets hold integer
    counts, {!merge} combines histograms by bucketwise addition — exactly
    associative, so quantiles from a parallel fan-out do not depend on the
    merge order of per-worker registries. *)

type hist_view = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val observe : t -> string -> float -> unit
(** Record one sample.  Non-positive and non-finite values land in the
    lowest bucket (count/sum/min/max still see them exactly). *)

val quantile : t -> string -> float -> float
(** [quantile t name q] for [q] in [0, 1]: the representative value of the
    bucket holding the sample of rank [ceil (q * count)], clamped into
    [min, max].  0 for a histogram never observed. *)

val histogram : t -> string -> hist_view option

(** {2 Export} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val timers : t -> (string * float * int) list
(** (name, seconds, calls), sorted by name. *)

val histograms : t -> (string * hist_view) list
(** Sorted by name. *)

val merge : into:t -> t -> unit
(** Fold one registry into another: counters add, timers accumulate both
    seconds and calls, histograms add bucketwise.  Combines per-worker
    registries after a parallel fan-out has joined; no-op when [into] is
    {!null}. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "timers": {name: {"seconds": s, "calls": n}},
    "histograms": {name: {"count": n, "sum": s, "min": v, "max": v,
    "p50": v, "p90": v, "p99": v}}}]. *)

val pp : Format.formatter -> t -> unit
