(** A minimal, dependency-free JSON tree.

    The observability layer serializes events, counters and the paper's
    tables as JSON without pulling a JSON package into the build: the
    printer emits canonical one-line JSON (stable field order — whatever
    order the [Obj] list carries), and the parser accepts anything the
    printer produces (plus ordinary interchange JSON), which is what the
    round-trip tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical single-line rendering.  Floats print with enough digits to
    round-trip; NaN and infinities (which JSON cannot represent) print as
    [null]. *)

val to_buffer : Buffer.t -> t -> unit

val pp : Format.formatter -> t -> unit
(** Indented, human-oriented rendering (two-space indent). *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val member_exn : string -> t -> t
val to_int_exn : t -> int
val to_float_exn : t -> float
(** Accepts [Int] too (JSON does not distinguish). *)

val to_string_exn : t -> string
val to_bool_exn : t -> bool
val to_list_exn : t -> t list
