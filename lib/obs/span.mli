(** Wall-clock spans for host-side phase timing, with per-Domain lanes and
    a Chrome trace-event export.

    A collector records nested begin/end spans on one lane; a {!tracer}
    bundles one collector per worker lane so a parallel fan-out
    ([Mips_par.map_spans]) can time every job without cross-domain writes.
    {!to_chrome} renders the merged spans as a Chrome trace-event JSON
    object that chrome://tracing and Perfetto load directly.

    The clock is injected ([Sys.time] by default, so the module stays free
    of [unix]); pass [Unix.gettimeofday] for wall time. *)

type span = {
  sp_name : string;
  sp_lane : int;
  sp_start : float;  (** seconds, collector clock *)
  sp_dur : float;
  sp_depth : int;  (** nesting depth at entry; 0 = top level *)
}

type t

val null : t
(** A collector that records nothing; safe to share between domains. *)

val create : ?clock:(unit -> float) -> ?lane:int -> unit -> t

val enter : t -> string -> unit
val leave : t -> unit
(** Close the innermost open span (no-op when none is open). *)

val with_ : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (closed on exceptions too). *)

val spans : t -> span list
(** Closed spans, sorted by start time (then lane, then depth). *)

(** {2 Tracers: one lane per worker domain} *)

type tracer

val no_tracer : tracer
(** All lanes disabled; the zero-overhead default. *)

val tracer : ?clock:(unit -> float) -> lanes:int -> unit -> tracer

val tracer_enabled : tracer -> bool

val lane : tracer -> int -> t
(** The collector for worker lane [i]; out-of-range ids wrap. *)

val tracer_spans : tracer -> span list
(** All lanes' closed spans, sorted by start time.  Read only after worker
    domains have joined. *)

(** {2 Export} *)

val to_chrome : ?process:string -> span list -> Json.t
(** Chrome trace-event JSON ("X" complete events in microseconds, one tid
    per lane, metadata events naming process and lanes, timestamps rebased
    to the earliest span). *)
