type timer = { mutable seconds : float; mutable calls : int }

(* A histogram is 64 base-2 magnitude buckets plus exact count/sum/min/max.
   Buckets hold integers, so merging is bucketwise addition — exactly
   associative, unlike any scheme that stores samples or interpolates at
   record time.  Quantiles are resolved at read time from the bucket
   cumulative; the representative value is the bucket's geometric midpoint
   clamped into [min, max], which makes single-valued histograms exact. *)
let hist_buckets = 64

type hist = {
  mutable hn : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  hb : int array;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  enabled : bool;
}

let create () =
  { counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    enabled = true }

(* A registry that records nothing.  Instrumented code paths that default to
   this sink can run on any number of domains without sharing mutable state:
   every operation below is a no-op on a disabled registry. *)
let null =
  { counters = Hashtbl.create 1;
    timers = Hashtbl.create 1;
    hists = Hashtbl.create 1;
    enabled = false }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let add t name n =
  if t.enabled then begin
    let r = counter t name in
    r := !r + n
  end

let incr t name = add t name 1
let set t name n = if t.enabled then counter t name := n
let count t name = match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let find_timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some tm -> tm
  | None ->
      let tm = { seconds = 0.; calls = 0 } in
      Hashtbl.add t.timers name tm;
      tm

let add_seconds t name s =
  if t.enabled then begin
    let tm = find_timer t name in
    tm.seconds <- tm.seconds +. s;
    tm.calls <- tm.calls + 1
  end

let time t name f =
  if not t.enabled then f ()
  else
    let start = Sys.time () in
    let finally () = add_seconds t name (Sys.time () -. start) in
    Fun.protect ~finally f

let seconds t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.seconds | None -> 0.

let calls t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.calls | None -> 0

(* Bucket of a value: its binary exponent, offset so that seconds-scale
   data (1e-12 .. 8e6) stays in range.  frexp gives v = m * 2^e with
   m in [0.5, 1), i.e. v in [2^(e-1), 2^e). *)
let bucket_of v =
  if not (Float.is_finite v) || v <= 0. then 0
  else
    let _, e = Float.frexp v in
    min (hist_buckets - 1) (max 0 (e + 40))

(* Geometric midpoint of bucket [i]: sqrt(2^(e-1) * 2^e). *)
let bucket_mid i =
  let e = i - 40 in
  Float.ldexp (sqrt 2.) (e - 1)

let find_hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h =
        { hn = 0; hsum = 0.; hmin = infinity; hmax = neg_infinity;
          hb = Array.make hist_buckets 0 }
      in
      Hashtbl.add t.hists name h;
      h

let observe t name v =
  if t.enabled then begin
    let h = find_hist t name in
    h.hn <- h.hn + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    let b = bucket_of v in
    h.hb.(b) <- h.hb.(b) + 1
  end

let hist_quantile h q =
  if h.hn = 0 then 0.
  else begin
    let rank = max 1 (min h.hn (int_of_float (ceil (q *. float_of_int h.hn)))) in
    let b = ref 0 and cum = ref 0 in
    (try
       for i = 0 to hist_buckets - 1 do
         cum := !cum + h.hb.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    min h.hmax (max h.hmin (bucket_mid !b))
  end

type hist_view = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let view_of h =
  { count = h.hn;
    sum = h.hsum;
    min_v = (if h.hn = 0 then 0. else h.hmin);
    max_v = (if h.hn = 0 then 0. else h.hmax);
    p50 = hist_quantile h 0.50;
    p90 = hist_quantile h 0.90;
    p99 = hist_quantile h 0.99 }

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> Some (view_of h)
  | None -> None

let quantile t name q =
  match Hashtbl.find_opt t.hists name with
  | Some h -> hist_quantile h q
  | None -> 0.

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)

let timers t =
  List.map (fun (k, tm) -> (k, tm.seconds, tm.calls)) (sorted_bindings t.timers)

let histograms t =
  List.map (fun (k, h) -> (k, view_of h)) (sorted_bindings t.hists)

(* Fold [src] into [into]: counters add, timers accumulate seconds and
   calls.  This is how per-worker registries from a parallel fan-out are
   combined after the workers have joined — each domain records into its own
   registry while running, so no registry is ever shared between domains. *)
let merge ~into src =
  if into.enabled then begin
    Hashtbl.iter (fun k r -> add into k !r) src.counters;
    Hashtbl.iter
      (fun k (tm : timer) ->
        if tm.calls > 0 || tm.seconds <> 0. then begin
          let dst = find_timer into k in
          dst.seconds <- dst.seconds +. tm.seconds;
          dst.calls <- dst.calls + tm.calls
        end)
      src.timers;
    (* bucketwise addition: count, buckets, min and max merge exactly
       associatively, so a parallel fan-out's quantiles are independent of
       how per-worker registries were folded together *)
    Hashtbl.iter
      (fun k (h : hist) ->
        if h.hn > 0 then begin
          let dst = find_hist into k in
          dst.hn <- dst.hn + h.hn;
          dst.hsum <- dst.hsum +. h.hsum;
          if h.hmin < dst.hmin then dst.hmin <- h.hmin;
          if h.hmax > dst.hmax then dst.hmax <- h.hmax;
          Array.iteri (fun i n -> dst.hb.(i) <- dst.hb.(i) + n) h.hb
        end)
      src.hists
  end

let to_json t =
  Json.Obj
    [ ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (k, seconds, calls) ->
               ( k,
                 Json.Obj
                   [ ("seconds", Json.Float seconds); ("calls", Json.Int calls) ]
               ))
             (timers t)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, v) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int v.count);
                     ("sum", Json.Float v.sum);
                     ("min", Json.Float v.min_v);
                     ("max", Json.Float v.max_v);
                     ("p50", Json.Float v.p50);
                     ("p90", Json.Float v.p90);
                     ("p99", Json.Float v.p99) ] ))
             (histograms t)) ) ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-40s %12d@ " k v)
    (counters t);
  List.iter
    (fun (k, seconds, calls) ->
      Format.fprintf ppf "%-40s %9.3f ms  (%d call%s)@ " k (1000. *. seconds)
        calls
        (if calls = 1 then "" else "s"))
    (timers t);
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "%-40s p50 %9.3f ms  p90 %9.3f ms  p99 %9.3f ms  (%d sample%s)@ "
        k (1000. *. v.p50) (1000. *. v.p90) (1000. *. v.p99) v.count
        (if v.count = 1 then "" else "s"))
    (histograms t);
  Format.fprintf ppf "@]"
