type timer = { mutable seconds : float; mutable calls : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  enabled : bool;
}

let create () =
  { counters = Hashtbl.create 16; timers = Hashtbl.create 16; enabled = true }

(* A registry that records nothing.  Instrumented code paths that default to
   this sink can run on any number of domains without sharing mutable state:
   every operation below is a no-op on a disabled registry. *)
let null = { counters = Hashtbl.create 1; timers = Hashtbl.create 1; enabled = false }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let add t name n =
  if t.enabled then begin
    let r = counter t name in
    r := !r + n
  end

let incr t name = add t name 1
let set t name n = if t.enabled then counter t name := n
let count t name = match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let find_timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some tm -> tm
  | None ->
      let tm = { seconds = 0.; calls = 0 } in
      Hashtbl.add t.timers name tm;
      tm

let add_seconds t name s =
  if t.enabled then begin
    let tm = find_timer t name in
    tm.seconds <- tm.seconds +. s;
    tm.calls <- tm.calls + 1
  end

let time t name f =
  if not t.enabled then f ()
  else
    let start = Sys.time () in
    let finally () = add_seconds t name (Sys.time () -. start) in
    Fun.protect ~finally f

let seconds t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.seconds | None -> 0.

let calls t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.calls | None -> 0

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)

let timers t =
  List.map (fun (k, tm) -> (k, tm.seconds, tm.calls)) (sorted_bindings t.timers)

(* Fold [src] into [into]: counters add, timers accumulate seconds and
   calls.  This is how per-worker registries from a parallel fan-out are
   combined after the workers have joined — each domain records into its own
   registry while running, so no registry is ever shared between domains. *)
let merge ~into src =
  if into.enabled then begin
    Hashtbl.iter (fun k r -> add into k !r) src.counters;
    Hashtbl.iter
      (fun k (tm : timer) ->
        if tm.calls > 0 || tm.seconds <> 0. then begin
          let dst = find_timer into k in
          dst.seconds <- dst.seconds +. tm.seconds;
          dst.calls <- dst.calls + tm.calls
        end)
      src.timers
  end

let to_json t =
  Json.Obj
    [ ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (k, seconds, calls) ->
               ( k,
                 Json.Obj
                   [ ("seconds", Json.Float seconds); ("calls", Json.Int calls) ]
               ))
             (timers t)) ) ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-40s %12d@ " k v)
    (counters t);
  List.iter
    (fun (k, seconds, calls) ->
      Format.fprintf ppf "%-40s %9.3f ms  (%d call%s)@ " k (1000. *. seconds)
        calls
        (if calls = 1 then "" else "s"))
    (timers t);
  Format.fprintf ppf "@]"
