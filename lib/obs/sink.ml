type t = {
  enabled : bool;
  emit : Event.t -> unit;
  flush : unit -> unit;
}

let null = { enabled = false; emit = (fun _ -> ()); flush = (fun () -> ()) }
let enabled t = t.enabled
let emit t e = if t.enabled then t.emit e
let flush t = t.flush ()
let make ?(flush = fun () -> ()) emit = { enabled = true; emit; flush }

let of_fun f = make f

let tee a b =
  match (a.enabled, b.enabled) with
  | false, false -> null
  | true, false -> a
  | false, true -> b
  | true, true ->
      {
        enabled = true;
        emit =
          (fun e ->
            a.emit e;
            b.emit e);
        flush =
          (fun () ->
            a.flush ();
            b.flush ());
      }

(* --- bounded ring buffer -------------------------------------------------- *)

type ring = {
  slots : Event.t option array;
  mutable next : int;  (* next write position *)
  mutable seen : int;  (* total events ever emitted *)
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  let r = { slots = Array.make capacity None; next = 0; seen = 0 } in
  let sink =
    make (fun e ->
        r.slots.(r.next) <- Some e;
        r.next <- (r.next + 1) mod capacity;
        r.seen <- r.seen + 1)
  in
  (r, sink)

let ring_capacity r = Array.length r.slots
let ring_seen r = r.seen
let ring_dropped r = max 0 (r.seen - Array.length r.slots)

let ring_contents r =
  let cap = Array.length r.slots in
  let n = min r.seen cap in
  (* oldest first: when full the oldest lives at [next] *)
  let start = if r.seen < cap then 0 else r.next in
  List.init n (fun i ->
      match r.slots.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(* --- textual sinks -------------------------------------------------------- *)

let formatter ppf =
  make
    ~flush:(fun () -> Format.pp_print_flush ppf ())
    (fun e -> Format.fprintf ppf "%a@." Event.pp e)

let jsonl_channel oc =
  make
    ~flush:(fun () -> Stdlib.flush oc)
    (fun e ->
      output_string oc (Json.to_string (Event.to_json e));
      output_char oc '\n')

let jsonl_buffer buf =
  make (fun e ->
      Json.to_buffer buf (Event.to_json e);
      Buffer.add_char buf '\n')

type format = Text | Jsonl

let format_of_string = function
  | "text" -> Some Text
  | "jsonl" | "json" -> Some Jsonl
  | _ -> None

let to_channel format oc =
  match format with
  | Text -> formatter (Format.formatter_of_out_channel oc)
  | Jsonl -> jsonl_channel oc
