(* Wall-clock spans for host-side phase timing.

   A span collector is a per-lane (per-Domain) stack of open spans plus a
   list of closed ones.  Lanes never share mutable state: a tracer
   pre-allocates one collector per worker lane, each worker domain writes
   only its own, and the merged view is read after the workers have joined
   — the same discipline as {!Metrics} registries in [Mips_par.map_obs].

   The clock is injected so this module (like the rest of [Mips_obs]) has
   no dependency on [unix]; callers that want wall time pass
   [Unix.gettimeofday].  The default [Sys.time] still nests and exports
   correctly, it just measures processor seconds. *)

type span = {
  sp_name : string;
  sp_lane : int;
  sp_start : float;  (* seconds, collector clock *)
  sp_dur : float;
  sp_depth : int;  (* nesting depth at entry, 0 = top level *)
}

type t = {
  enabled : bool;
  clock : unit -> float;
  lane_id : int;
  mutable open_spans : (string * float) list;  (* innermost first *)
  mutable closed : span list;  (* reverse completion order *)
}

let null =
  { enabled = false;
    clock = (fun () -> 0.);
    lane_id = 0;
    open_spans = [];
    closed = [] }

let create ?(clock = Sys.time) ?(lane = 0) () =
  { enabled = true; clock; lane_id = lane; open_spans = []; closed = [] }

let enter t name =
  if t.enabled then t.open_spans <- (name, t.clock ()) :: t.open_spans

let leave t =
  if t.enabled then
    match t.open_spans with
    | [] -> ()
    | (name, start) :: rest ->
        t.open_spans <- rest;
        t.closed <-
          { sp_name = name;
            sp_lane = t.lane_id;
            sp_start = start;
            sp_dur = t.clock () -. start;
            sp_depth = List.length rest }
          :: t.closed

let with_ t name f =
  if not t.enabled then f ()
  else begin
    enter t name;
    Fun.protect ~finally:(fun () -> leave t) f
  end

let compare_spans a b =
  match compare a.sp_start b.sp_start with
  | 0 -> (
      match compare a.sp_lane b.sp_lane with
      | 0 -> compare a.sp_depth b.sp_depth
      | c -> c)
  | c -> c

let spans t = List.stable_sort compare_spans (List.rev t.closed)

(* --- tracers: one lane per worker domain -------------------------------- *)

type tracer = { tr_enabled : bool; tr_lanes : t array }

let no_tracer = { tr_enabled = false; tr_lanes = [| null |] }

let tracer ?clock ~lanes () =
  let lanes = max 1 lanes in
  { tr_enabled = true;
    tr_lanes = Array.init lanes (fun i -> create ?clock ~lane:i ()) }

let tracer_enabled tr = tr.tr_enabled

(* Out-of-range worker ids wrap rather than fail, so a caller sizing the
   tracer for [jobs] lanes is safe even if the pool spawns more workers. *)
let lane tr i =
  let n = Array.length tr.tr_lanes in
  tr.tr_lanes.(((i mod n) + n) mod n)

let tracer_spans tr =
  List.stable_sort compare_spans
    (List.concat_map (fun l -> List.rev l.closed) (Array.to_list tr.tr_lanes))

(* --- Chrome trace-event export ------------------------------------------ *)

(* The JSON object format chrome://tracing and Perfetto load: complete
   ("ph":"X") events with microsecond timestamps, one pid for the process
   and one tid per lane, plus metadata events naming them.  Timestamps are
   rebased to the earliest span so traces start at t=0 regardless of the
   clock's epoch. *)
let to_chrome ?(process = "mipsc") spans =
  let t0 = List.fold_left (fun acc s -> min acc s.sp_start) infinity spans in
  let t0 = if t0 = infinity then 0. else t0 in
  let us dt = Json.Float (1e6 *. dt) in
  let lanes =
    List.sort_uniq compare (List.map (fun s -> s.sp_lane) spans)
  in
  let meta name pairs =
    Json.Obj
      ([ ("name", Json.Str name);
         ("ph", Json.Str "M");
         ("pid", Json.Int 1) ]
      @ pairs)
  in
  let process_meta =
    meta "process_name"
      [ ("args", Json.Obj [ ("name", Json.Str process) ]) ]
  in
  let lane_meta l =
    meta "thread_name"
      [ ("tid", Json.Int l);
        ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "lane %d" l)) ])
      ]
  in
  let event s =
    Json.Obj
      [ ("name", Json.Str s.sp_name);
        ("cat", Json.Str "mipsc");
        ("ph", Json.Str "X");
        ("pid", Json.Int 1);
        ("tid", Json.Int s.sp_lane);
        ("ts", us (s.sp_start -. t0));
        ("dur", us s.sp_dur) ]
  in
  Json.Obj
    [ ( "traceEvents",
        Json.List
          ((process_meta :: List.map lane_meta lanes)
          @ List.map event spans) );
      ("displayTimeUnit", Json.Str "ms") ]
