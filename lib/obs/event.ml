type delay_slot_kind = [ `Filled | `Squashed | `Nop ]

type stall_reason =
  | Load_use of { producer_pc : int; producer : string }
  | Branch_latency of { slots : int }

type t =
  | Fetch of { pc : int }
  | Issue of { pc : int; word : string; pieces : int }
  | Stall of { pc : int; word : string; cycles : int; reason : stall_reason }
  | Branch_taken of { pc : int; target : int }
  | Delay_slot of { pc : int; kind : delay_slot_kind }
  | Mem_ref of {
      pc : int;
      addr : int;
      load : bool;
      byte : bool;
      char_data : bool;
    }
  | Exception_dispatch of { pc : int; cause : string; code : int; detail : int }
  | Monitor_call of { code : int; name : string }
  | Spawn of { pid : int; name : string }
  | Context_switch of { from_pid : int option; to_pid : int option }
  | Page_fault of { pid : int; ispace : bool; gaddr : int }
  | Proc_exit of { pid : int; name : string; status : int }
  | Proc_killed of { pid : int; name : string; cause : string; detail : int }
  | Pass of { name : string; seconds : float }
  | Fault_injected of { cycle : int; kind : string; target : int }
  | Retry of { pid : int; attempt : int }
  | Watchdog_kill of { pid : int; name : string; cycles : int }
  | Double_fault of { pid : int; name : string; first : string; second : string }
  | Job_retry of { label : string; attempt : int; backoff_s : float }
  | Job_quarantined of { label : string; attempts : int; error : string }
  | Circuit_open of { failures : int }
  | Checkpoint_write of { path : string; phase : string; steps : int; bytes : int }
  | Checkpoint_restore of { path : string; phase : string; steps : int }

let equal (a : t) (b : t) = a = b

let kind_name = function
  | Fetch _ -> "fetch"
  | Issue _ -> "issue"
  | Stall _ -> "stall"
  | Branch_taken _ -> "branch_taken"
  | Delay_slot _ -> "delay_slot"
  | Mem_ref _ -> "mem_ref"
  | Exception_dispatch _ -> "exception_dispatch"
  | Monitor_call _ -> "monitor_call"
  | Spawn _ -> "spawn"
  | Context_switch _ -> "context_switch"
  | Page_fault _ -> "page_fault"
  | Proc_exit _ -> "proc_exit"
  | Proc_killed _ -> "proc_killed"
  | Pass _ -> "pass"
  | Fault_injected _ -> "fault_injected"
  | Retry _ -> "retry"
  | Watchdog_kill _ -> "watchdog_kill"
  | Double_fault _ -> "double_fault"
  | Job_retry _ -> "job_retry"
  | Job_quarantined _ -> "job_quarantined"
  | Circuit_open _ -> "circuit_open"
  | Checkpoint_write _ -> "checkpoint_write"
  | Checkpoint_restore _ -> "checkpoint_restore"

let delay_slot_name = function
  | `Filled -> "filled"
  | `Squashed -> "squashed"
  | `Nop -> "nop"

let delay_slot_of_name = function
  | "filled" -> Ok `Filled
  | "squashed" -> Ok `Squashed
  | "nop" -> Ok `Nop
  | s -> Error ("unknown delay-slot kind " ^ s)

(* --- human-readable formatting ------------------------------------------- *)

let pp ppf e =
  match e with
  | Fetch { pc } -> Format.fprintf ppf "%08d  fetch" pc
  | Issue { pc; word; pieces } ->
      Format.fprintf ppf "%08d  issue  %s%s" pc word
        (if pieces > 1 then "  [packed]" else "")
  | Stall { pc; word; cycles; reason } -> (
      match reason with
      | Load_use { producer_pc; producer } ->
          Format.fprintf ppf
            "%08d  stall  %d cycle%s (load-use: %s @%d feeds %s)" pc cycles
            (if cycles = 1 then "" else "s")
            producer producer_pc word
      | Branch_latency { slots } ->
          Format.fprintf ppf "%08d  stall  %d cycle%s (branch latency, %d slot%s)"
            pc cycles
            (if cycles = 1 then "" else "s")
            slots
            (if slots = 1 then "" else "s"))
  | Branch_taken { pc; target } ->
      Format.fprintf ppf "%08d  branch-taken -> %d" pc target
  | Delay_slot { pc; kind } ->
      Format.fprintf ppf "%08d  delay-slot (%s)" pc (delay_slot_name kind)
  | Mem_ref { pc; addr; load; byte; char_data } ->
      Format.fprintf ppf "%08d  %s  @%d (%s%s)" pc
        (if load then "load " else "store")
        addr
        (if byte then "byte" else "word")
        (if char_data then ", char" else "")
  | Exception_dispatch { pc; cause; code; detail } ->
      Format.fprintf ppf "%08d  exception  %s (code %d, detail %d)" pc cause
        code detail
  | Monitor_call { code; name } ->
      Format.fprintf ppf "          monitor-call  %s (code %d)" name code
  | Spawn { pid; name } -> Format.fprintf ppf "          spawn  pid %d (%s)" pid name
  | Context_switch { from_pid; to_pid } ->
      let p = function None -> "-" | Some pid -> string_of_int pid in
      Format.fprintf ppf "          context-switch  %s -> %s" (p from_pid)
        (p to_pid)
  | Page_fault { pid; ispace; gaddr } ->
      Format.fprintf ppf "          page-fault  pid %d %s @%d" pid
        (if ispace then "I" else "D")
        gaddr
  | Proc_exit { pid; name; status } ->
      Format.fprintf ppf "          exit  pid %d (%s) status %d" pid name status
  | Proc_killed { pid; name; cause; detail } ->
      Format.fprintf ppf "          killed  pid %d (%s) %s (%d)" pid name cause
        detail
  | Pass { name; seconds } ->
      Format.fprintf ppf "          pass  %s  %.6fs" name seconds
  | Fault_injected { cycle; kind; target } ->
      Format.fprintf ppf "          fault-injected  %s (target %d) @cycle %d"
        kind target cycle
  | Retry { pid; attempt } ->
      Format.fprintf ppf "          retry  pid %d (attempt %d)" pid attempt
  | Watchdog_kill { pid; name; cycles } ->
      Format.fprintf ppf "          watchdog-kill  pid %d (%s) after %d cycles"
        pid name cycles
  | Double_fault { pid; name; first; second } ->
      Format.fprintf ppf "          double-fault  pid %d (%s) %s then %s" pid
        name first second
  | Job_retry { label; attempt; backoff_s } ->
      Format.fprintf ppf "          job-retry  %s (attempt %d, backoff %.3fs)"
        label attempt backoff_s
  | Job_quarantined { label; attempts; error } ->
      Format.fprintf ppf "          job-quarantined  %s after %d attempts: %s"
        label attempts error
  | Circuit_open { failures } ->
      Format.fprintf ppf
        "          circuit-open  %d failure%s; degrading to serial" failures
        (if failures = 1 then "" else "s")
  | Checkpoint_write { path; phase; steps; bytes } ->
      Format.fprintf ppf "          checkpoint-write  %s (%s, %d steps, %d bytes)"
        path phase steps bytes
  | Checkpoint_restore { path; phase; steps } ->
      Format.fprintf ppf "          checkpoint-restore  %s (%s, %d steps)" path
        phase steps

let to_text e = Format.asprintf "%a" pp e

(* --- JSON ----------------------------------------------------------------- *)

let opt_pid = function None -> Json.Null | Some pid -> Json.Int pid

let to_json e =
  let ev fields = Json.Obj (("ev", Json.Str (kind_name e)) :: fields) in
  match e with
  | Fetch { pc } -> ev [ ("pc", Json.Int pc) ]
  | Issue { pc; word; pieces } ->
      ev [ ("pc", Json.Int pc); ("word", Json.Str word); ("pieces", Json.Int pieces) ]
  | Stall { pc; word; cycles; reason } ->
      let reason_fields =
        match reason with
        | Load_use { producer_pc; producer } ->
            [ ("reason", Json.Str "load_use");
              ("producer_pc", Json.Int producer_pc);
              ("producer", Json.Str producer) ]
        | Branch_latency { slots } ->
            [ ("reason", Json.Str "branch_latency"); ("slots", Json.Int slots) ]
      in
      ev
        ([ ("pc", Json.Int pc); ("word", Json.Str word); ("cycles", Json.Int cycles) ]
        @ reason_fields)
  | Branch_taken { pc; target } ->
      ev [ ("pc", Json.Int pc); ("target", Json.Int target) ]
  | Delay_slot { pc; kind } ->
      ev [ ("pc", Json.Int pc); ("kind", Json.Str (delay_slot_name kind)) ]
  | Mem_ref { pc; addr; load; byte; char_data } ->
      ev
        [ ("pc", Json.Int pc);
          ("addr", Json.Int addr);
          ("load", Json.Bool load);
          ("byte", Json.Bool byte);
          ("char", Json.Bool char_data) ]
  | Exception_dispatch { pc; cause; code; detail } ->
      ev
        [ ("pc", Json.Int pc);
          ("cause", Json.Str cause);
          ("code", Json.Int code);
          ("detail", Json.Int detail) ]
  | Monitor_call { code; name } ->
      ev [ ("code", Json.Int code); ("name", Json.Str name) ]
  | Spawn { pid; name } -> ev [ ("pid", Json.Int pid); ("name", Json.Str name) ]
  | Context_switch { from_pid; to_pid } ->
      ev [ ("from", opt_pid from_pid); ("to", opt_pid to_pid) ]
  | Page_fault { pid; ispace; gaddr } ->
      ev
        [ ("pid", Json.Int pid);
          ("space", Json.Str (if ispace then "I" else "D"));
          ("gaddr", Json.Int gaddr) ]
  | Proc_exit { pid; name; status } ->
      ev
        [ ("pid", Json.Int pid);
          ("name", Json.Str name);
          ("status", Json.Int status) ]
  | Proc_killed { pid; name; cause; detail } ->
      ev
        [ ("pid", Json.Int pid);
          ("name", Json.Str name);
          ("cause", Json.Str cause);
          ("detail", Json.Int detail) ]
  | Pass { name; seconds } ->
      ev [ ("name", Json.Str name); ("seconds", Json.Float seconds) ]
  | Fault_injected { cycle; kind; target } ->
      ev
        [ ("cycle", Json.Int cycle);
          ("kind", Json.Str kind);
          ("target", Json.Int target) ]
  | Retry { pid; attempt } ->
      ev [ ("pid", Json.Int pid); ("attempt", Json.Int attempt) ]
  | Watchdog_kill { pid; name; cycles } ->
      ev
        [ ("pid", Json.Int pid);
          ("name", Json.Str name);
          ("cycles", Json.Int cycles) ]
  | Double_fault { pid; name; first; second } ->
      ev
        [ ("pid", Json.Int pid);
          ("name", Json.Str name);
          ("first", Json.Str first);
          ("second", Json.Str second) ]
  | Job_retry { label; attempt; backoff_s } ->
      ev
        [ ("label", Json.Str label);
          ("attempt", Json.Int attempt);
          ("backoff_s", Json.Float backoff_s) ]
  | Job_quarantined { label; attempts; error } ->
      ev
        [ ("label", Json.Str label);
          ("attempts", Json.Int attempts);
          ("error", Json.Str error) ]
  | Circuit_open { failures } -> ev [ ("failures", Json.Int failures) ]
  | Checkpoint_write { path; phase; steps; bytes } ->
      ev
        [ ("path", Json.Str path);
          ("phase", Json.Str phase);
          ("steps", Json.Int steps);
          ("bytes", Json.Int bytes) ]
  | Checkpoint_restore { path; phase; steps } ->
      ev
        [ ("path", Json.Str path);
          ("phase", Json.Str phase);
          ("steps", Json.Int steps) ]

let of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error ("missing string field " ^ k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error ("missing int field " ^ k)
  in
  let boolean k =
    match Json.member k j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error ("missing bool field " ^ k)
  in
  let float_ k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int n) -> Ok (float_of_int n)
    | _ -> Error ("missing float field " ^ k)
  in
  let pid_opt k =
    match Json.member k j with
    | Some Json.Null -> Ok None
    | Some (Json.Int n) -> Ok (Some n)
    | _ -> Error ("missing pid field " ^ k)
  in
  let* kind = str "ev" in
  match kind with
  | "fetch" ->
      let* pc = int "pc" in
      Ok (Fetch { pc })
  | "issue" ->
      let* pc = int "pc" in
      let* word = str "word" in
      let* pieces = int "pieces" in
      Ok (Issue { pc; word; pieces })
  | "stall" ->
      let* pc = int "pc" in
      let* word = str "word" in
      let* cycles = int "cycles" in
      let* reason_name = str "reason" in
      let* reason =
        match reason_name with
        | "load_use" ->
            let* producer_pc = int "producer_pc" in
            let* producer = str "producer" in
            Ok (Load_use { producer_pc; producer })
        | "branch_latency" ->
            let* slots = int "slots" in
            Ok (Branch_latency { slots })
        | s -> Error ("unknown stall reason " ^ s)
      in
      Ok (Stall { pc; word; cycles; reason })
  | "branch_taken" ->
      let* pc = int "pc" in
      let* target = int "target" in
      Ok (Branch_taken { pc; target })
  | "delay_slot" ->
      let* pc = int "pc" in
      let* kind_name = str "kind" in
      let* kind = delay_slot_of_name kind_name in
      Ok (Delay_slot { pc; kind })
  | "mem_ref" ->
      let* pc = int "pc" in
      let* addr = int "addr" in
      let* load = boolean "load" in
      let* byte = boolean "byte" in
      let* char_data = boolean "char" in
      Ok (Mem_ref { pc; addr; load; byte; char_data })
  | "exception_dispatch" ->
      let* pc = int "pc" in
      let* cause = str "cause" in
      let* code = int "code" in
      let* detail = int "detail" in
      Ok (Exception_dispatch { pc; cause; code; detail })
  | "monitor_call" ->
      let* code = int "code" in
      let* name = str "name" in
      Ok (Monitor_call { code; name })
  | "spawn" ->
      let* pid = int "pid" in
      let* name = str "name" in
      Ok (Spawn { pid; name })
  | "context_switch" ->
      let* from_pid = pid_opt "from" in
      let* to_pid = pid_opt "to" in
      Ok (Context_switch { from_pid; to_pid })
  | "page_fault" ->
      let* pid = int "pid" in
      let* space = str "space" in
      let* gaddr = int "gaddr" in
      Ok (Page_fault { pid; ispace = space = "I"; gaddr })
  | "proc_exit" ->
      let* pid = int "pid" in
      let* name = str "name" in
      let* status = int "status" in
      Ok (Proc_exit { pid; name; status })
  | "proc_killed" ->
      let* pid = int "pid" in
      let* name = str "name" in
      let* cause = str "cause" in
      let* detail = int "detail" in
      Ok (Proc_killed { pid; name; cause; detail })
  | "pass" ->
      let* name = str "name" in
      let* seconds = float_ "seconds" in
      Ok (Pass { name; seconds })
  | "fault_injected" ->
      let* cycle = int "cycle" in
      let* kind = str "kind" in
      let* target = int "target" in
      Ok (Fault_injected { cycle; kind; target })
  | "retry" ->
      let* pid = int "pid" in
      let* attempt = int "attempt" in
      Ok (Retry { pid; attempt })
  | "watchdog_kill" ->
      let* pid = int "pid" in
      let* name = str "name" in
      let* cycles = int "cycles" in
      Ok (Watchdog_kill { pid; name; cycles })
  | "double_fault" ->
      let* pid = int "pid" in
      let* name = str "name" in
      let* first = str "first" in
      let* second = str "second" in
      Ok (Double_fault { pid; name; first; second })
  | "job_retry" ->
      let* label = str "label" in
      let* attempt = int "attempt" in
      let* backoff_s = float_ "backoff_s" in
      Ok (Job_retry { label; attempt; backoff_s })
  | "job_quarantined" ->
      let* label = str "label" in
      let* attempts = int "attempts" in
      let* error = str "error" in
      Ok (Job_quarantined { label; attempts; error })
  | "circuit_open" ->
      let* failures = int "failures" in
      Ok (Circuit_open { failures })
  | "checkpoint_write" ->
      let* path = str "path" in
      let* phase = str "phase" in
      let* steps = int "steps" in
      let* bytes = int "bytes" in
      Ok (Checkpoint_write { path; phase; steps; bytes })
  | "checkpoint_restore" ->
      let* path = str "path" in
      let* phase = str "phase" in
      let* steps = int "steps" in
      Ok (Checkpoint_restore { path; phase; steps })
  | s -> Error ("unknown event kind " ^ s)

(* One of each constructor — the round-trip tests iterate over this, so a
   new constructor that is not added here still gets caught by the
   completeness check in the test (it compares lengths against kind_name's
   domain via samples). *)
let samples =
  [ Fetch { pc = 17 };
    Issue { pc = 17; word = "r3 := r1 + r2 ; store r4, 5(r6)"; pieces = 2 };
    Stall
      { pc = 18;
        word = "r5 := r3 + 1";
        cycles = 1;
        reason = Load_use { producer_pc = 17; producer = "r3 := load 0(r2)" } };
    Stall
      { pc = 19;
        word = "jump 40";
        cycles = 2;
        reason = Branch_latency { slots = 2 } };
    Branch_taken { pc = 19; target = 40 };
    Delay_slot { pc = 20; kind = `Filled };
    Delay_slot { pc = 21; kind = `Squashed };
    Delay_slot { pc = 22; kind = `Nop };
    Mem_ref { pc = 23; addr = 4096; load = true; byte = false; char_data = true };
    Exception_dispatch { pc = 24; cause = "Page_fault"; code = 3; detail = 0 };
    Monitor_call { code = 2; name = "putchar" };
    Spawn { pid = 1; name = "fib" };
    Context_switch { from_pid = Some 0; to_pid = Some 1 };
    Context_switch { from_pid = None; to_pid = Some 0 };
    Page_fault { pid = 1; ispace = true; gaddr = 65536 };
    Proc_exit { pid = 1; name = "fib"; status = 0 };
    Proc_killed { pid = 2; name = "wild"; cause = "Privilege"; detail = 1 };
    Pass { name = "reorg.schedule"; seconds = 0.015625 };
    Fault_injected { cycle = 120; kind = "reg_flip"; target = 5 };
    Retry { pid = 1; attempt = 2 };
    Watchdog_kill { pid = 3; name = "spin"; cycles = 50000 };
    Double_fault
      { pid = 2; name = "wild"; first = "Page_fault"; second = "Page_fault" };
    Job_retry { label = "sim:default:fib"; attempt = 2; backoff_s = 0.125 };
    Job_quarantined
      { label = "poison:demo"; attempts = 3; error = "Failure(\"injected\")" };
    Circuit_open { failures = 1 };
    Checkpoint_write
      { path = "soak.ckpt"; phase = "kernel"; steps = 100000; bytes = 65536 };
    Checkpoint_restore { path = "soak.ckpt"; phase = "diffs"; steps = 4 } ]
