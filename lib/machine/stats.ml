type ref_class = { mutable loads : int; mutable stores : int }

type t = {
  mutable cycles : int;
  mutable stall_cycles : int;
  mutable load_use_stall_cycles : int;
  mutable branch_stall_cycles : int;
  mutable words : int;
  mutable nops : int;
  mutable alu_pieces : int;
  mutable mem_pieces : int;
  mutable branch_pieces : int;
  mutable packed_words : int;
  mutable branches_taken : int;
  mutable mem_busy_cycles : int;
  mutable free_cycles : int;
  weighted : float array;  (* length 1; unboxed accumulation cell *)
  mutable exceptions : (Cause.t * int) list;
  mutable synthetic_refs : int;
  mutable fuel_exhausted : bool;
  word_refs : ref_class;
  word_char_refs : ref_class;
  byte_refs : ref_class;
  byte_char_refs : ref_class;
  stall_pairs : (int * int, int) Hashtbl.t;
}

let new_class () = { loads = 0; stores = 0 }

let create () =
  {
    cycles = 0;
    stall_cycles = 0;
    load_use_stall_cycles = 0;
    branch_stall_cycles = 0;
    words = 0;
    nops = 0;
    alu_pieces = 0;
    mem_pieces = 0;
    branch_pieces = 0;
    packed_words = 0;
    branches_taken = 0;
    mem_busy_cycles = 0;
    free_cycles = 0;
    weighted = [| 0. |];
    exceptions = [];
    synthetic_refs = 0;
    fuel_exhausted = false;
    word_refs = new_class ();
    word_char_refs = new_class ();
    byte_refs = new_class ();
    byte_char_refs = new_class ();
    stall_pairs = Hashtbl.create 16;
  }

(* the identity of [merge]: a fresh, empty record *)
let zero = create

(* Combine two statistics records into a fresh one, leaving both arguments
   untouched.  The operation is associative and has [zero ()] as identity on
   every observable view ([pp], [to_json], the accessors): integer and float
   fields add, [fuel_exhausted] ors, and the exception and stall-pair
   multisets union — their internal order is not canonical, but every
   reading goes through the sorted views below. *)
let merge a b =
  let t = create () in
  t.cycles <- a.cycles + b.cycles;
  t.stall_cycles <- a.stall_cycles + b.stall_cycles;
  t.load_use_stall_cycles <- a.load_use_stall_cycles + b.load_use_stall_cycles;
  t.branch_stall_cycles <- a.branch_stall_cycles + b.branch_stall_cycles;
  t.words <- a.words + b.words;
  t.nops <- a.nops + b.nops;
  t.alu_pieces <- a.alu_pieces + b.alu_pieces;
  t.mem_pieces <- a.mem_pieces + b.mem_pieces;
  t.branch_pieces <- a.branch_pieces + b.branch_pieces;
  t.packed_words <- a.packed_words + b.packed_words;
  t.branches_taken <- a.branches_taken + b.branches_taken;
  t.mem_busy_cycles <- a.mem_busy_cycles + b.mem_busy_cycles;
  t.free_cycles <- a.free_cycles + b.free_cycles;
  t.weighted.(0) <- a.weighted.(0) +. b.weighted.(0);
  t.synthetic_refs <- a.synthetic_refs + b.synthetic_refs;
  t.fuel_exhausted <- a.fuel_exhausted || b.fuel_exhausted;
  let add_exceptions exns =
    List.iter
      (fun (cause, n) ->
        let rec bump = function
          | [] -> [ (cause, n) ]
          | (c, m) :: rest ->
              if Cause.equal c cause then (c, m + n) :: rest
              else (c, m) :: bump rest
        in
        t.exceptions <- bump t.exceptions)
      exns
  in
  add_exceptions a.exceptions;
  add_exceptions b.exceptions;
  let add_class (dst : ref_class) (src : ref_class) =
    dst.loads <- dst.loads + src.loads;
    dst.stores <- dst.stores + src.stores
  in
  List.iter
    (fun (dst, x, y) -> add_class dst x; add_class dst y)
    [ (t.word_refs, a.word_refs, b.word_refs);
      (t.word_char_refs, a.word_char_refs, b.word_char_refs);
      (t.byte_refs, a.byte_refs, b.byte_refs);
      (t.byte_char_refs, a.byte_char_refs, b.byte_char_refs) ];
  let add_pairs src =
    Hashtbl.iter
      (fun key n ->
        let m =
          match Hashtbl.find_opt t.stall_pairs key with Some m -> m | None -> 0
        in
        Hashtbl.replace t.stall_pairs key (m + n))
      src
  in
  add_pairs a.stall_pairs;
  add_pairs b.stall_pairs;
  t

let count_exception t cause =
  let rec bump = function
    | [] -> [ (cause, 1) ]
    | (c, n) :: rest ->
        if Cause.equal c cause then (c, n + 1) :: rest else (c, n) :: bump rest
  in
  t.exceptions <- bump t.exceptions

let exception_count t cause =
  match List.assoc_opt cause t.exceptions with Some n -> n | None -> 0

let exceptions_sorted t =
  List.sort
    (fun (ca, na) (cb, nb) ->
      match compare nb na with 0 -> Cause.compare ca cb | c -> c)
    t.exceptions

let record_stall_pair t ~producer_pc ~consumer_pc =
  let key = (producer_pc, consumer_pc) in
  let n = match Hashtbl.find_opt t.stall_pairs key with Some n -> n | None -> 0 in
  Hashtbl.replace t.stall_pairs key (n + 1)

let stall_pairs t =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.stall_pairs []
  |> List.sort (fun ((pa, ca), na) ((pb, cb), nb) ->
         match compare nb na with
         | 0 -> compare (pa, ca) (pb, cb)
         | c -> c)

let class_for t (note : Mips_isa.Note.t) =
  match (note.char_data, note.byte_sized) with
  | false, false -> t.word_refs
  | true, false -> t.word_char_refs
  | false, true -> t.byte_refs
  | true, true -> t.byte_char_refs

let count_ref t ~load note =
  if note.Mips_isa.Note.synthetic then
    t.synthetic_refs <- t.synthetic_refs + 1
  else
    let c = class_for t note in
    if load then c.loads <- c.loads + 1 else c.stores <- c.stores + 1

let classes t = [ t.word_refs; t.word_char_refs; t.byte_refs; t.byte_char_refs ]
let total_loads t = List.fold_left (fun acc c -> acc + c.loads) 0 (classes t)
let total_stores t = List.fold_left (fun acc c -> acc + c.stores) 0 (classes t)

let weighted_cycles t = t.weighted.(0)

let free_cycle_fraction t =
  let slots = t.mem_busy_cycles + t.free_cycles in
  if slots = 0 then 0. else float_of_int t.free_cycles /. float_of_int slots

let packed_word_fraction t =
  if t.words = 0 then 0.
  else float_of_int t.packed_words /. float_of_int t.words

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles: %d (stalls %d, weighted %.1f)@ words: %d (nops %d, packed %d \
     = %.1f%%)@ pieces: %d alu, %d mem, %d branch (taken %d)@ memory: %d busy, \
     %d free@ free cycle fraction: %.3f (%.1f%% of issue slots)@ refs: %d \
     loads, %d stores (+%d synthetic)"
    t.cycles t.stall_cycles t.weighted.(0) t.words t.nops t.packed_words
    (100. *. packed_word_fraction t)
    t.alu_pieces t.mem_pieces t.branch_pieces t.branches_taken t.mem_busy_cycles
    t.free_cycles (free_cycle_fraction t)
    (100. *. free_cycle_fraction t)
    (total_loads t) (total_stores t) t.synthetic_refs;
  if t.stall_cycles > 0 then
    Format.fprintf ppf "@ stall breakdown: %d load-use, %d branch-latency"
      t.load_use_stall_cycles t.branch_stall_cycles;
  if t.fuel_exhausted then Format.fprintf ppf "@ fuel exhausted: yes";
  (match exceptions_sorted t with
  | [] -> ()
  | exns ->
      Format.fprintf ppf "@ exceptions:";
      List.iter
        (fun (c, n) -> Format.fprintf ppf "@   %-12s %8d" (Cause.name c) n)
        exns);
  Format.fprintf ppf "@]"

let ref_class_json (c : ref_class) =
  Mips_obs.Json.Obj
    [ ("loads", Mips_obs.Json.Int c.loads); ("stores", Mips_obs.Json.Int c.stores) ]

let to_json t =
  let open Mips_obs.Json in
  Obj
    [ ("cycles", Int t.cycles);
      ("stall_cycles", Int t.stall_cycles);
      ("load_use_stall_cycles", Int t.load_use_stall_cycles);
      ("branch_stall_cycles", Int t.branch_stall_cycles);
      ("weighted_cycles", Float t.weighted.(0));
      ("words", Int t.words);
      ("nops", Int t.nops);
      ("packed_words", Int t.packed_words);
      ("packed_word_fraction", Float (packed_word_fraction t));
      ("alu_pieces", Int t.alu_pieces);
      ("mem_pieces", Int t.mem_pieces);
      ("branch_pieces", Int t.branch_pieces);
      ("branches_taken", Int t.branches_taken);
      ("mem_busy_cycles", Int t.mem_busy_cycles);
      ("free_cycles", Int t.free_cycles);
      ("free_cycle_fraction", Float (free_cycle_fraction t));
      ("fuel_exhausted", Bool t.fuel_exhausted);
      ( "exceptions",
        Obj
          (List.map
             (fun (c, n) -> (Cause.name c, Int n))
             (exceptions_sorted t)) );
      ( "refs",
        Obj
          [ ("word", ref_class_json t.word_refs);
            ("word_char", ref_class_json t.word_char_refs);
            ("byte", ref_class_json t.byte_refs);
            ("byte_char", ref_class_json t.byte_char_refs);
            ("synthetic", Int t.synthetic_refs);
            ("total_loads", Int (total_loads t));
            ("total_stores", Int (total_stores t)) ] );
      ( "stall_pairs",
        List
          (List.map
             (fun ((producer_pc, consumer_pc), n) ->
               Obj
                 [ ("producer_pc", Int producer_pc);
                   ("consumer_pc", Int consumer_pc);
                   ("stalls", Int n) ])
             (stall_pairs t)) ) ]
