(** Exception causes.

    "By an exception we mean all synchronous and asynchronous events that
    disrupt the normal flow of control" (paper, Section 3.3).  The major
    cause occupies one of the two cause fields at the top of the surprise
    register; the second field carries the 12-bit software-trap code. *)

type t =
  | Reset
  | Interrupt  (** the single external interrupt line *)
  | Overflow  (** arithmetic overflow with the overflow-trap enable set *)
  | Page_fault  (** page-map miss, or a reference between the two valid
                    segment regions (treated as a page fault, Section 3.1) *)
  | Privilege  (** privileged instruction at user level, or a user-mode
                   physical (unmapped) reference *)
  | Trap  (** software trap / monitor call *)
  | Illegal  (** undecodable or architecturally illegal instruction, e.g. a
                 byte-width access on the word-addressed machine *)
[@@deriving eq, ord, show]

val to_code : t -> int
(** 3-bit encoding stored in the surprise register's first cause field. *)

val of_code : int -> t
(** @raise Invalid_argument outside the encoded range. *)

val name : t -> string
(** Bare constructor name (["Trap"], ["Page_fault"], ...) — the stable
    rendering events and JSON carry. *)

val pp : Format.formatter -> t -> unit
