open Mips_isa

type entry = {
  word : int Word.t;
  alu : Alu.t option;
  mem : Mem.t option;
  branch : int Branch.t option;
  reads : Reg.Set.t;
  writes : Reg.Set.t;
  load_writes : Reg.Set.t;
  refs_memory : bool;
  is_nop : bool;
  packed : bool;
  alu_pieces : int;
  mem_pieces : int;
  branch_pieces : int;
  may_stall : bool;
  is_trap : bool;
  privileged : bool;
  may_arith_fault : bool;
  may_fault : bool;
  render : string lazy_t;
}

(* Division faults on a zero divisor regardless of the overflow enable;
   the overflow-trappable ops fault only when the enable is up.  Either
   way the word can reach the dispatch path. *)
let arith_can_fault = function
  | Alu.Binop ((Alu.Add | Alu.Sub | Alu.Rsub | Alu.Mul | Alu.Div | Alu.Rem), _, _, _)
    ->
      true
  | Alu.Binop _ | Alu.Mov _ | Alu.Movi8 _ | Alu.Setc _ | Alu.Xbyte _
  | Alu.Ibyte _ | Alu.Rd_special _ | Alu.Wr_special _ | Alu.Rfe ->
      false

let lower (w : int Word.t) =
  let alu = Word.alu w in
  let mem = Word.mem w in
  let branch = Word.branch w in
  let reads = Word.reads w in
  let is_trap = match branch with Some (Branch.Trap _) -> true | _ -> false in
  let privileged =
    match alu with Some a -> Alu.is_privileged a | None -> false
  in
  let may_arith_fault =
    match alu with Some a -> arith_can_fault a | None -> false
  in
  let refs_memory = Word.references_memory w in
  {
    word = w;
    alu;
    mem;
    branch;
    reads;
    writes = Word.writes w;
    load_writes = Word.load_writes w;
    refs_memory;
    is_nop = (match w with Word.Nop -> true | _ -> false);
    packed = (match w with Word.AM _ | Word.AB _ -> true | _ -> false);
    alu_pieces = (match alu with Some _ -> 1 | None -> 0);
    mem_pieces = (match mem with Some _ -> 1 | None -> 0);
    branch_pieces = (match branch with Some _ -> 1 | None -> 0);
    may_stall = not (Reg.Set.is_empty reads);
    is_trap;
    privileged;
    may_arith_fault;
    may_fault =
      (mem <> None) || is_trap || privileged || may_arith_fault
      (* Rfe also redirects control through the EPCs, but it is privileged,
         so it is already in the guarded class *);
    render = lazy (Format.asprintf "%a" Word.pp_abs w);
  }

let nop = lower Word.Nop

let of_program (p : Program.t) =
  Array.map
    (fun w -> match w with Word.Nop -> nop | _ -> lower w)
    p.Program.code

(* Block-structure helpers for the profiler: a branch piece terminates a
   basic block; direct branches expose a static target, and the delay count
   tells how many shadow words follow the terminator in delayed mode. *)
let ends_block e = e.branch <> None
let branch_target e = Option.bind e.branch Branch.label
let branch_delay e = Option.map Branch.delay e.branch
