(** One-time instruction-word lowering for the fast execution engine.

    The paper's bet is that work moved out of the per-cycle hardware path
    into a one-time software pass is nearly free; the simulator makes the
    same bet about itself.  {!lower} flattens everything {!Cpu.step}
    recomputes on every cycle — the piece projections ([Word.alu] /
    [Word.mem] / [Word.branch]), the register read/write sets, the
    per-piece statistics increments, the static hazard classification —
    into one immutable record built once per instruction word.  The fast
    engine ({!Cpu.run_fast}) then executes from these records (further
    specialized into per-word closures) and the reference interpreter
    remains the oracle: both must produce bit-identical architectural
    state and {!Stats}.

    Entries are pure data and machine-independent: the same entry is valid
    for the word- and byte-addressed machines, interlocked or not (the
    engine applies the configuration-dependent parts itself). *)

open Mips_isa

type entry = {
  word : int Word.t;  (** the original instruction word *)
  alu : Alu.t option;  (** resolved piece variants, no re-projection *)
  mem : Mem.t option;
  branch : int Branch.t option;
  reads : Reg.Set.t;  (** = [Word.reads word] *)
  writes : Reg.Set.t;  (** = [Word.writes word] *)
  load_writes : Reg.Set.t;  (** = [Word.load_writes word] *)
  refs_memory : bool;  (** the word makes a data-memory reference *)
  is_nop : bool;
  packed : bool;  (** two pieces in one word *)
  alu_pieces : int;
  mem_pieces : int;
  branch_pieces : int;
  (* static hazard flags *)
  may_stall : bool;  (** reads at least one register, so an interlocked
                         machine may have to stall it after a load *)
  is_trap : bool;  (** enters the exception machinery on its own *)
  privileged : bool;  (** faults when executed at user level *)
  may_arith_fault : bool;  (** overflow-trappable op, or a division *)
  may_fault : bool;  (** any of the above, or a data-memory reference *)
  render : string lazy_t;  (** trace string, rendered on first use only *)
}

val nop : entry
(** The lowering of {!Mips_isa.Word.Nop} (shared, never rebuilt). *)

val lower : int Word.t -> entry

val of_program : Program.t -> entry array
(** The one-time pass: lower every word of a program image.  Element [i]
    describes [code.(i)]. *)

(** {2 Block structure}

    Helpers for basic-block construction (the profiler's block boundaries
    are derived here rather than re-projecting pieces per word). *)

val ends_block : entry -> bool
(** The word carries a branch piece (including traps) — a block
    terminator. *)

val branch_target : entry -> int option
(** Static target of a direct branch piece; [None] for indirect jumps,
    traps, and non-branching words. *)

val branch_delay : entry -> int option
(** {!Mips_isa.Branch.delay} of the word's branch piece: 1 direct, 2
    indirect, 0 for traps; [None] for a non-branching word. *)
