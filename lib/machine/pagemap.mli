(** The off-chip page-level mapping unit.

    Translates {e global} virtual addresses (as produced by the on-chip
    segmentation, {!Segmap}) to physical addresses.  Because the
    segmentation already folded the process id into the address, "an
    off-chip page map [can] simultaneously contain entries for many
    processes without a corresponding increase in the tag field size"
    (paper, Section 3.1).

    The machine has separate instruction and data spaces (the dual
    instruction/data memory interface), so each mapping is keyed by the
    space as well as the page number. *)

type space = Ispace | Dspace [@@deriving eq, ord, show]

type entry = {
  frame : int;  (** physical frame number *)
  writable : bool;
  mutable referenced : bool;
  mutable dirty : bool;
}

type t

exception Fault of space * int
(** Raised by {!translate} with the faulting global virtual address. *)

val page_words : int
(** Page size in words (1024 words = 4 KB). *)

val create : unit -> t
val map : t -> space -> vpage:int -> frame:int -> writable:bool -> unit
val unmap : t -> space -> vpage:int -> unit
val find : t -> space -> vpage:int -> entry option

val translate : t -> space -> write:bool -> int -> int
(** [translate t space ~write gaddr] is the physical word address.
    Sets the referenced bit, and the dirty bit when [write].
    @raise Fault on a missing entry or a write to a read-only page. *)

val drop_clean : t -> pick:int -> (space * int) option
(** Silently unmap one {e clean} (non-dirty) entry — a simulated TLB drop
    for fault injection.  The victim is chosen deterministically by [pick]
    (modulo the clean-entry count, in sorted key order).  Dirty pages are
    never dropped: this map is the only record of where their data lives, so
    dropping one would lose writes rather than model a transient.  [None]
    when every entry is dirty or the map is empty. *)

val entries : t -> (space * int * entry) list
(** All mappings, for inspection and page-replacement policies. *)

val clear_referenced : t -> unit
(** Clear every referenced bit (clock-algorithm support). *)
