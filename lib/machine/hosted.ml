open Mips_isa

let eof_char = 255

type result = {
  halted : bool;
  exit_status : int option;
  output : string;
  fault : (Cause.t * int) option;
  retries : int;
}

(* Read [len] characters of a packed byte array starting at word [addr]. *)
let read_packed_string cpu ~addr ~len =
  let buf = Buffer.create len in
  for i = 0 to len - 1 do
    let w = Cpu.read_data cpu (addr + (i / 4)) in
    Buffer.add_char buf (Char.chr (Word32.get_byte w (i mod 4)))
  done;
  Buffer.contents buf

let run ?fuel ?(input = "") ?(on_unhandled = `Abort) ?(engine = Cpu.Ref) cpu =
  let out = Buffer.create 256 in
  let exit_status = ref None in
  let fault = ref None in
  let retries = ref 0 in
  let in_pos = ref 0 in
  let arg0 () = Cpu.get_reg cpu Reg.scratch0 in
  let arg1 () = Cpu.get_reg cpu Reg.scratch1 in
  let handler c cause =
    match cause with
    | Cause.Trap -> (
        let code = (Cpu.surprise c).Surprise.cause_detail in
        if code = Monitor.exit_ then begin
          exit_status := Some (arg0 ());
          `Halt
        end
        else if code = Monitor.putchar then begin
          Buffer.add_char out (Char.chr (arg0 () land 0xFF));
          `Resume
        end
        else if code = Monitor.putint then begin
          Buffer.add_string out (string_of_int (arg0 ()));
          `Resume
        end
        else if code = Monitor.getchar then begin
          let v =
            if !in_pos < String.length input then begin
              let ch = Char.code input.[!in_pos] in
              incr in_pos;
              ch
            end
            else eof_char  (* end-of-input marker, the same value through a word
                         or byte-sized character variable *)
          in
          Cpu.set_reg c Reg.result v;
          `Resume
        end
        else if code = Monitor.yield then `Resume
        else if code = Monitor.putstr then begin
          Buffer.add_string out (read_packed_string c ~addr:(arg0 ()) ~len:(arg1 ()));
          `Resume
        end
        else begin
          fault := Some (Cause.Trap, code);
          `Halt
        end)
    | Cause.Page_fault when Cpu.faulted c = Some Cpu.Transient_ref ->
        (* injected flaky-memory fault: the reference never happened, so a
           plain return-from-exception restarts the word and retries it *)
        incr retries;
        `Resume
    | Cause.Interrupt ->
        (* no device model in hosted mode: acknowledge (drop the line) and
           resume exactly where the machine was interrupted *)
        Cpu.set_interrupt c false;
        `Resume
    | other -> (
        match on_unhandled with
        | `Abort ->
            fault := Some (other, (Cpu.surprise c).Surprise.cause_detail);
            `Halt
        | `Ignore ->
            (* skip the faulting instruction: resume at its successor *)
            Cpu.set_epc c 0 (Cpu.epc c 1);
            Cpu.set_epc c 1 (Cpu.epc c 2);
            Cpu.set_epc c 2 (Cpu.epc c 2 + 1);
            `Resume)
  in
  let halted = Cpu.run_engine ?fuel ~engine cpu handler in
  {
    halted;
    exit_status = !exit_status;
    output = Buffer.contents out;
    fault = !fault;
    retries = !retries;
  }

let run_program_on ?fuel ?input ?engine cpu program =
  Cpu.load_program cpu program;
  run ?fuel ?input ?engine cpu

let run_program ?fuel ?input ?config ?engine program =
  let cpu = Cpu.create ?config () in
  run_program_on ?fuel ?input ?engine cpu program
