open Mips_isa

let eof_char = 255

type result = {
  halted : bool;
  exit_status : int option;
  output : string;
  fault : (Cause.t * int) option;
  retries : int;
}

(* The hosted loop's own state (everything outside the machine) — what a
   checkpoint must carry besides the Cpu snapshot. *)
type host_state = {
  h_output : string;
  h_in_pos : int;
  h_retries : int;
  h_fuel_left : int;
}

(* Read [len] characters of a packed byte array starting at word [addr]. *)
let read_packed_string cpu ~addr ~len =
  let buf = Buffer.create len in
  for i = 0 to len - 1 do
    let w = Cpu.read_data cpu (addr + (i / 4)) in
    Buffer.add_char buf (Char.chr (Word32.get_byte w (i mod 4)))
  done;
  Buffer.contents buf

let run ?fuel ?(input = "") ?(on_unhandled = `Abort) ?(engine = Cpu.Ref)
    ?resume ?checkpoint cpu =
  let out = Buffer.create 256 in
  let exit_status = ref None in
  let fault = ref None in
  let retries = ref 0 in
  let in_pos = ref 0 in
  (match resume with
  | Some h ->
      Buffer.add_string out h.h_output;
      in_pos := h.h_in_pos;
      retries := h.h_retries
  | None -> ());
  let arg0 () = Cpu.get_reg cpu Reg.scratch0 in
  let arg1 () = Cpu.get_reg cpu Reg.scratch1 in
  let handler c cause =
    match cause with
    | Cause.Trap -> (
        let code = (Cpu.surprise c).Surprise.cause_detail in
        if code = Monitor.exit_ then begin
          exit_status := Some (arg0 ());
          `Halt
        end
        else if code = Monitor.putchar then begin
          Buffer.add_char out (Char.chr (arg0 () land 0xFF));
          `Resume
        end
        else if code = Monitor.putint then begin
          Buffer.add_string out (string_of_int (arg0 ()));
          `Resume
        end
        else if code = Monitor.getchar then begin
          let v =
            if !in_pos < String.length input then begin
              let ch = Char.code input.[!in_pos] in
              incr in_pos;
              ch
            end
            else eof_char  (* end-of-input marker, the same value through a word
                         or byte-sized character variable *)
          in
          Cpu.set_reg c Reg.result v;
          `Resume
        end
        else if code = Monitor.yield then `Resume
        else if code = Monitor.putstr then begin
          Buffer.add_string out (read_packed_string c ~addr:(arg0 ()) ~len:(arg1 ()));
          `Resume
        end
        else begin
          fault := Some (Cause.Trap, code);
          `Halt
        end)
    | Cause.Page_fault when Cpu.faulted c = Some Cpu.Transient_ref ->
        (* injected flaky-memory fault: the reference never happened, so a
           plain return-from-exception restarts the word and retries it *)
        incr retries;
        `Resume
    | Cause.Interrupt ->
        (* no device model in hosted mode: acknowledge (drop the line) and
           resume exactly where the machine was interrupted *)
        Cpu.set_interrupt c false;
        `Resume
    | other -> (
        match on_unhandled with
        | `Abort ->
            fault := Some (other, (Cpu.surprise c).Surprise.cause_detail);
            `Halt
        | `Ignore ->
            (* skip the faulting instruction: resume at its successor *)
            Cpu.set_epc c 0 (Cpu.epc c 1);
            Cpu.set_epc c 1 (Cpu.epc c 2);
            Cpu.set_epc c 2 (Cpu.epc c 2 + 1);
            `Resume)
  in
  let halted =
    match checkpoint with
    | None -> Cpu.run_engine ?fuel ~engine cpu handler
    | Some (every, save) ->
        (* Chunked execution with a durable save at every chunk boundary.
           The step sequence is identical to one call with the total fuel —
           machine state persists across chunks — but [Cpu.run_with] marks
           fuel exhaustion whenever its own argument reaches zero, so the
           flag is cleared at interior boundaries and only the final chunk's
           verdict survives. *)
        let every = max 1 every in
        let total = match fuel with Some f -> f | None -> 10_000_000 in
        let remaining = ref total in
        let halted =
          (* nonpositive fuel: defer to the engine for the exhaustion mark *)
          ref (total <= 0 && Cpu.run_engine ~fuel:total ~engine cpu handler)
        in
        while (not !halted) && !remaining > 0 do
          let chunk = min every !remaining in
          halted := Cpu.run_engine ~fuel:chunk ~engine cpu handler;
          remaining := !remaining - chunk;
          if (not !halted) && !remaining > 0 then begin
            (Cpu.stats cpu).Stats.fuel_exhausted <- false;
            save
              {
                h_output = Buffer.contents out;
                h_in_pos = !in_pos;
                h_retries = !retries;
                h_fuel_left = !remaining;
              }
          end
        done;
        !halted
  in
  {
    halted;
    exit_status = !exit_status;
    output = Buffer.contents out;
    fault = !fault;
    retries = !retries;
  }

let run_program_on ?fuel ?input ?engine cpu program =
  Cpu.load_program cpu program;
  run ?fuel ?input ?engine cpu

let run_program ?fuel ?input ?config ?engine program =
  let cpu = Cpu.create ?config () in
  run_program_on ?fuel ?input ?engine cpu program
