type t = Reset | Interrupt | Overflow | Page_fault | Privilege | Trap | Illegal
[@@deriving eq, ord, show]

let to_code = function
  | Reset -> 0
  | Interrupt -> 1
  | Overflow -> 2
  | Page_fault -> 3
  | Privilege -> 4
  | Trap -> 5
  | Illegal -> 6

let of_code = function
  | 0 -> Reset
  | 1 -> Interrupt
  | 2 -> Overflow
  | 3 -> Page_fault
  | 4 -> Privilege
  | 5 -> Trap
  | 6 -> Illegal
  | n -> invalid_arg ("Cause.of_code: " ^ string_of_int n)

let name = function
  | Reset -> "Reset"
  | Interrupt -> "Interrupt"
  | Overflow -> "Overflow"
  | Page_fault -> "Page_fault"
  | Privilege -> "Privilege"
  | Trap -> "Trap"
  | Illegal -> "Illegal"

let pp ppf t = Format.pp_print_string ppf (name t)
