open Mips_isa

type config = {
  interlock : bool;
  byte_addressed : bool;
  fetch_overhead_pct : float;
  imem_words : int;
  dmem_words : int;
}

let default_config =
  {
    interlock = false;
    byte_addressed = false;
    fetch_overhead_pct = 0.;
    imem_words = 1 lsl 16;
    dmem_words = 1 lsl 18;
  }

let byte_addressed_config =
  { default_config with byte_addressed = true; fetch_overhead_pct = 15. }

let interlocked_config = { default_config with interlock = true }

(* Guest-profiling buffers, armed by [set_profiling].  Indexed by physical
     word address; [pr_other_cycles] absorbs cycles a step charged without
     resolving a fetch (interrupt dispatch, fetch-translation faults) so the
     per-PC totals still reconcile exactly with [Stats].  The buffers are
     bumped after the step from [Stats] deltas — profiling never writes the
     statistics themselves, so a profiled run's [Stats] are byte-identical
     to an unprofiled one's. *)
type profile = {
  pr_counts : int array;  (* executed words per pc *)
  pr_stalls : int array;  (* stall cycles charged at pc *)
  pr_shadow : int array;  (* executions of pc inside a taken branch's shadow *)
  pr_edges : (int * int, int) Hashtbl.t;  (* (branch pc, target) -> taken *)
  mutable pr_shadow_pending : int;
  mutable pr_other_cycles : int;
}

type t = {
  cfg : config;
  regs : int array;
  mutable p0 : int;
  mutable p1 : int;
  mutable p2 : int;
  mutable sr : Surprise.t;
  mutable seg : Segmap.t;
  mutable byte_select : int;
  epcs : int array;
  (* load landing one word late, flattened to two scalar cells so neither
     engine allocates an option per load ([pend_r] = -1 means none) *)
  mutable pend_r : int;
  mutable pend_v : int;
  mutable last_load_writes : Reg.Set.t;  (* interlock-mode stall detection *)
  imem : int Word.t array;
  notes : Note.t array;
  dmem : int array;
  pagemap : Pagemap.t;
  mutable interrupt_line : bool;
  mutable fault : fault_kind option;
  stats : Stats.t;
  mutable trace : Mips_obs.Sink.t;
  mutable trace_on : bool;  (* = trace.enabled, flattened for the hot path *)
  mutable plan : Mips_fault.Plan.t;
  mutable inject_on : bool;  (* = Plan.enabled plan, flattened likewise *)
  mutable flaky_armed : bool;  (* next data reference transiently faults *)
  (* previous executed word, for load-use stall attribution by pair *)
  mutable prev_pc : int;
  mutable prev_word : int Word.t;
  (* taken-branch shadow countdown; maintained only while tracing *)
  mutable delay_pending : int;
  (* fast engine: per-word compiled closures, kept in sync with [imem]
     ([stale] marks a slot whose word changed since it was last compiled) *)
  xcode : (t -> unit) array;
  (* fast-engine scratch slots: compute-phase results parked here so the
     commit phase can pick them up without allocating effect records *)
  mutable sc_a : int;  (* resolved physical address (byte ops: phys*4+lane) *)
  mutable sc_b : int;  (* store value, read in the compute phase *)
  mutable sc_v : int;  (* ALU result *)
  mutable sc_taken : bool;  (* conditional-branch decision *)
  mutable sc_target : int;  (* indirect-branch target, read pre-commit *)
  (* guest profiling: [prof_on] is the single hot-path flag test; [prof]
     points at [no_profile] while disabled; [prof_fetch] is the physical
     fetch address the last step resolved (-1 when it never did) *)
  mutable prof_on : bool;
  mutable prof : profile;
  mutable prof_fetch : int;
  (* trace-JIT engine state, armed lazily by the jit run loop (lib/jit) and
     empty otherwise.  [jit_code] holds one compiled-trace closure per entry
     pc (fuel in, fuel remaining out); [jit_len] its straight-line length in
     words; [jit_counts] the per-PC hotness counters; [jit_cover] maps every
     imem address back to the trace entries whose compiled body includes it,
     so a code write can invalidate exactly the traces it affects.  [jit_k]
     and [jit_pv] are fault-recovery scratch: the body index reached and the
     in-flight delayed-load value of the trace being executed. *)
  mutable jit_on : bool;
  mutable jit_code : (t -> int -> int) array;
  mutable jit_len : int array;
  mutable jit_counts : int array;
  mutable jit_cover : int list array;
  mutable jit_nospec : Bytes.t;
  mutable jit_k : int;
  mutable jit_pv : int;
}

and fault_kind =
  | Missing_page of Pagemap.space * int
  | Segment_violation of int
  | Transient_ref

type event = Stepped | Dispatched of Cause.t

(* Fast-engine sentinel: marks an [xcode] slot whose word has not been
   compiled since it last changed.  Recognized with [==]; never called with
   the intent of executing an instruction. *)
let stale (_ : t) = ()

(* Jit-engine sentinel: marks a [jit_code] slot with no compiled trace.
   Recognized with [==]; returns its fuel untouched if ever called. *)
let jit_stale (_ : t) (fuel : int) = fuel

(* Shared placeholder for machines not being profiled: zero-length arrays,
   never written while [prof_on] is false. *)
let no_profile =
  { pr_counts = [||];
    pr_stalls = [||];
    pr_shadow = [||];
    pr_edges = Hashtbl.create 1;
    pr_shadow_pending = 0;
    pr_other_cycles = 0 }

let create ?(config = default_config) () =
  {
    cfg = config;
    regs = Array.make 16 0;
    p0 = 0;
    p1 = 1;
    p2 = 2;
    sr = Surprise.reset;
    seg = Segmap.make ~pid:0 ~mask_bits:0;
    byte_select = 0;
    epcs = Array.make 3 0;
    pend_r = -1;
    pend_v = 0;
    last_load_writes = Reg.Set.empty;
    imem = Array.make config.imem_words Word.Nop;
    notes = Array.make config.imem_words Note.plain;
    dmem = Array.make config.dmem_words 0;
    pagemap = Pagemap.create ();
    interrupt_line = false;
    fault = None;
    stats = Stats.create ();
    trace = Mips_obs.Sink.null;
    trace_on = false;
    plan = Mips_fault.Plan.none;
    inject_on = false;
    flaky_armed = false;
    prev_pc = -1;
    prev_word = Word.Nop;
    delay_pending = 0;
    xcode = Array.make config.imem_words stale;
    sc_a = 0;
    sc_b = 0;
    sc_v = 0;
    sc_taken = false;
    sc_target = 0;
    prof_on = false;
    prof = no_profile;
    prof_fetch = -1;
    jit_on = false;
    jit_code = [||];
    jit_len = [||];
    jit_counts = [||];
    jit_cover = [||];
    jit_nospec = Bytes.empty;
    jit_k = 0;
    jit_pv = 0;
  }

(* Arm/reset/invalidate the jit trace cache.  [jit_invalidate] is
   conservative by construction: every trace whose body covers address [a]
   is discarded and its entry's hotness counter cleared, so a recompile
   observes the new word.  Note writes invalidate too — traces bake the
   per-word [notes] into their batched reference accounting. *)
let jit_arm t =
  if not t.jit_on then begin
    t.jit_code <- Array.make t.cfg.imem_words jit_stale;
    t.jit_len <- Array.make t.cfg.imem_words 0;
    t.jit_counts <- Array.make t.cfg.imem_words 0;
    t.jit_cover <- Array.make t.cfg.imem_words [];
    t.jit_nospec <- Bytes.make t.cfg.imem_words '\000';
    t.jit_on <- true
  end

let jit_invalidate t a =
  match t.jit_cover.(a) with
  | [] -> ()
  | entries ->
      List.iter
        (fun e ->
          t.jit_code.(e) <- jit_stale;
          t.jit_len.(e) <- 0;
          t.jit_counts.(e) <- 0)
        entries;
      t.jit_cover.(a) <- []

let jit_reset t =
  if t.jit_on then begin
    Array.fill t.jit_code 0 (Array.length t.jit_code) jit_stale;
    Array.fill t.jit_len 0 (Array.length t.jit_len) 0;
    Array.fill t.jit_counts 0 (Array.length t.jit_counts) 0;
    Array.fill t.jit_cover 0 (Array.length t.jit_cover) [];
    Bytes.fill t.jit_nospec 0 (Bytes.length t.jit_nospec) '\000'
  end

let config t = t.cfg
let stats t = t.stats
let trace t = t.trace
let set_trace t sink =
  t.trace <- sink;
  t.trace_on <- sink.Mips_obs.Sink.enabled

let fault_plan t = t.plan

let set_profiling t on =
  if on then begin
    t.prof <-
      { pr_counts = Array.make t.cfg.imem_words 0;
        pr_stalls = Array.make t.cfg.imem_words 0;
        pr_shadow = Array.make t.cfg.imem_words 0;
        pr_edges = Hashtbl.create 64;
        pr_shadow_pending = 0;
        pr_other_cycles = 0 };
    t.prof_on <- true
  end
  else begin
    t.prof <- no_profile;
    t.prof_on <- false
  end

let profile t = if t.prof_on then Some t.prof else None

let set_fault_plan t plan =
  t.plan <- plan;
  t.inject_on <- Mips_fault.Plan.enabled plan;
  t.flaky_armed <- false
let render_word w = Format.asprintf "%a" Word.pp_abs w
let get_reg t r = t.regs.(Reg.to_int r)
let set_reg t r v = t.regs.(Reg.to_int r) <- Word32.norm v
let surprise t = t.sr
let set_surprise t sr = t.sr <- sr
let segmap t = t.seg
let set_segmap t seg = t.seg <- seg
let pagemap t = t.pagemap
let epc t i = t.epcs.(i)
let set_epc t i v = t.epcs.(i) <- v
let pc t = t.p0
let pc_chain t = (t.p0, t.p1, t.p2)

let set_pc_chain t (a, b, c) =
  t.p0 <- a;
  t.p1 <- b;
  t.p2 <- c

let set_pc t a = set_pc_chain t (a, a + 1, a + 2)
let set_interrupt t b = t.interrupt_line <- b
let interrupt_pending t = t.interrupt_line
let read_code t a = t.imem.(a)

let write_code t a w =
  t.imem.(a) <- w;
  t.xcode.(a) <- stale;
  if t.jit_on then jit_invalidate t a
let read_note t a = t.notes.(a)
let write_note t a n =
  t.notes.(a) <- n;
  if t.jit_on then jit_invalidate t a
let read_data t a = t.dmem.(a)
let write_data t a v = t.dmem.(a) <- Word32.norm v
let faulted t = t.fault

(* The mutable execution state that is not reachable through the public
   architectural accessors — what checkpoint/restore must carry to make a
   resumed run bit-identical.  [prev_word] is not captured: it is always
   the instruction word at [prev_pc], so restore re-derives it from [imem]
   (code is reloaded deterministically before state is restored). *)
type pipeline_state = {
  ps_byte_select : int;
  ps_pending : (int * int) option;
  ps_last_load_writes : int;  (* 16-bit register-set mask *)
  ps_fault : fault_kind option;
  ps_flaky_armed : bool;
  ps_prev_pc : int;
  ps_delay_pending : int;
}

let pipeline_state t =
  {
    ps_byte_select = t.byte_select;
    ps_pending = (if t.pend_r >= 0 then Some (t.pend_r, t.pend_v) else None);
    ps_last_load_writes =
      Reg.Set.fold (fun r m -> m lor (1 lsl Reg.to_int r)) t.last_load_writes 0;
    ps_fault = t.fault;
    ps_flaky_armed = t.flaky_armed;
    ps_prev_pc = t.prev_pc;
    ps_delay_pending = t.delay_pending;
  }

let set_pipeline_state t ps =
  t.byte_select <- ps.ps_byte_select;
  (match ps.ps_pending with
  | Some (r, v) ->
      t.pend_r <- r;
      t.pend_v <- v
  | None -> t.pend_r <- -1);
  t.last_load_writes <-
    (let s = ref Reg.Set.empty in
     for i = 0 to 15 do
       if ps.ps_last_load_writes land (1 lsl i) <> 0 then
         s := Reg.Set.add (Reg.r i) !s
     done;
     !s);
  t.fault <- ps.ps_fault;
  t.flaky_armed <- ps.ps_flaky_armed;
  t.prev_pc <- ps.ps_prev_pc;
  t.prev_word <-
    (if ps.ps_prev_pc >= 0 && ps.ps_prev_pc < Array.length t.imem then
       t.imem.(ps.ps_prev_pc)
     else Word.Nop);
  t.delay_pending <- ps.ps_delay_pending

let faulted_addr t =
  match t.fault with
  | Some (Missing_page (sp, ga)) -> Some (sp, ga)
  | Some (Segment_violation _ | Transient_ref) | None -> None

let load_program ?(at = 0) ?(data_at = 0) t (p : Program.t) =
  Array.blit p.code 0 t.imem at (Array.length p.code);
  Array.fill t.xcode at (Array.length p.code) stale;
  jit_reset t;
  Array.blit p.notes 0 t.notes at (Array.length p.notes);
  List.iter (fun (a, v) -> t.dmem.(data_at + a) <- Word32.norm v) p.data;
  set_pc t (at + p.entry)

(* ---------------------------------------------------------------------- *)

exception Fault of Cause.t * int
exception Trap_dispatch of int

(* Translate a word-granularity virtual address to a physical word address. *)
let translate_word t space ~write vaddr =
  match (t.sr.priv, t.sr.map_enable) with
  | Surprise.Kernel, false -> vaddr
  | Surprise.User, false -> raise (Fault (Cause.Privilege, 0))
  | _, true -> (
      let gaddr =
        try Segmap.translate t.seg vaddr
        with Segmap.Out_of_segment a ->
          t.fault <- Some (Segment_violation a);
          raise (Fault (Cause.Page_fault, 0))
      in
      try Pagemap.translate t.pagemap space ~write gaddr
      with Pagemap.Fault (sp, ga) ->
        t.fault <- Some (Missing_page (sp, ga));
        raise (Fault (Cause.Page_fault, 0)))

let operand_value t = function
  | Operand.R r -> t.regs.(Reg.to_int r)
  | Operand.I4 n -> n

let data_bounds_check t phys_word =
  if phys_word < 0 || phys_word >= t.cfg.dmem_words then
    raise (Fault (Cause.Illegal, 1))

(* Effective address of a memory piece, in the machine's native granularity
   (word addresses on the word machine, byte addresses on the byte machine). *)
let effective_addr t = function
  | Mem.Abs a -> a
  | Mem.Disp (b, d) -> Word32.add t.regs.(Reg.to_int b) d
  | Mem.Idx (b, i) -> Word32.add t.regs.(Reg.to_int b) t.regs.(Reg.to_int i)
  | Mem.Shifted (b, i, n) ->
      Word32.add t.regs.(Reg.to_int b)
        (Word32.shift_right_logical t.regs.(Reg.to_int i) n)
  | Mem.Scaled (b, i, n) ->
      Word32.add t.regs.(Reg.to_int b)
        (Word32.shift_left t.regs.(Reg.to_int i) n)

(* Resolve a native address to (physical word index, byte lane option). *)
let resolve t ~write ~width addr =
  if t.cfg.byte_addressed then begin
    let word_v = addr asr 2 and lane = addr land 3 in
    let phys = translate_word t Pagemap.Dspace ~write word_v in
    data_bounds_check t phys;
    match width with
    | Mem.W8 -> (phys, Some lane)
    | Mem.W32 ->
        if lane <> 0 then raise (Fault (Cause.Illegal, 2));
        (phys, None)
  end
  else begin
    (match width with
    | Mem.W8 -> raise (Fault (Cause.Illegal, 3))
    | Mem.W32 -> ());
    let phys = translate_word t Pagemap.Dspace ~write addr in
    data_bounds_check t phys;
    (phys, None)
  end

(* An armed flaky-memory fault fires on the next data reference, before any
   translation or access side effect — the reference simply never happens
   this time around and the word restarts through the dispatch path. *)
let check_flaky t =
  if t.flaky_armed then begin
    t.flaky_armed <- false;
    Mips_fault.Plan.note_flaky_fired t.plan;
    t.fault <- Some Transient_ref;
    raise (Fault (Cause.Page_fault, 0))
  end

type mem_effect =
  | Load_result of int * int * int * bool
      (* register, value, phys word, byte-sized: lands one word late *)
  | Store_commit of int * int option * int  (* phys word, lane, value *)
  | Imm_result of int * int  (* register, value: immediate commit *)

let compute_mem t note m =
  match m with
  | Mem.Limm (c, d) -> Imm_result (Reg.to_int d, c)
  | Mem.Load (width, a, d) ->
      check_flaky t;
      let addr = effective_addr t a in
      let phys, lane = resolve t ~write:false ~width addr in
      let v =
        match lane with
        | None -> t.dmem.(phys)
        | Some i -> Word32.get_byte t.dmem.(phys) i
      in
      ignore note;
      Load_result (Reg.to_int d, v, phys, lane <> None)
  | Mem.Store (width, s, a) ->
      check_flaky t;
      let addr = effective_addr t a in
      let phys, lane = resolve t ~write:true ~width addr in
      Store_commit (phys, lane, t.regs.(Reg.to_int s))

type alu_effect =
  | Reg_write of int * int
  | Special_write of Alu.special * int
  | Rfe_effect

let binop_eval t op a b =
  let overflow_trap () =
    if t.sr.ovf_enable then raise (Fault (Cause.Overflow, 0))
  in
  match op with
  | Alu.Add ->
      if Word32.add_overflows a b then overflow_trap ();
      Word32.add a b
  | Alu.Sub ->
      if Word32.sub_overflows a b then overflow_trap ();
      Word32.sub a b
  | Alu.Rsub ->
      if Word32.sub_overflows b a then overflow_trap ();
      Word32.sub b a
  | Alu.And -> Word32.logand a b
  | Alu.Or -> Word32.logor a b
  | Alu.Xor -> Word32.logxor a b
  | Alu.Sll -> Word32.shift_left a b
  | Alu.Srl -> Word32.shift_right_logical a b
  | Alu.Sra -> Word32.shift_right_arith a b
  | Alu.Mul ->
      if Word32.mul_overflows a b then overflow_trap ();
      Word32.mul a b
  | Alu.Div -> if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.sdiv a b
  | Alu.Rem -> if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.srem a b

let read_special t = function
  | Alu.Surprise -> Surprise.to_word t.sr
  | Alu.Segment -> Segmap.to_word t.seg
  | Alu.Byte_select -> t.byte_select
  | Alu.Epc i -> t.epcs.(i)

let compute_alu t a =
  if Surprise.equal_privilege t.sr.priv Surprise.User && Alu.is_privileged a then
    raise (Fault (Cause.Privilege, 1));
  match a with
  | Alu.Binop (op, x, y, d) ->
      Reg_write (Reg.to_int d, binop_eval t op (operand_value t x) (operand_value t y))
  | Alu.Mov (x, d) -> Reg_write (Reg.to_int d, operand_value t x)
  | Alu.Movi8 (c, d) -> Reg_write (Reg.to_int d, c)
  | Alu.Setc (c, x, y, d) ->
      let v = if Cond.eval c (operand_value t x) (operand_value t y) then 1 else 0 in
      Reg_write (Reg.to_int d, v)
  | Alu.Xbyte (p, w, d) ->
      let lane = operand_value t p land 3 in
      Reg_write (Reg.to_int d, Word32.get_byte (operand_value t w) lane)
  | Alu.Ibyte (s, d) ->
      let lane = t.byte_select land 3 in
      let cur = t.regs.(Reg.to_int d) in
      Reg_write (Reg.to_int d, Word32.set_byte cur lane (operand_value t s))
  | Alu.Rd_special (s, d) -> Reg_write (Reg.to_int d, read_special t s)
  | Alu.Wr_special (s, x) -> Special_write (s, operand_value t x)
  | Alu.Rfe -> Rfe_effect

let apply_special t s v =
  match s with
  | Alu.Surprise -> t.sr <- Surprise.of_word v
  | Alu.Segment -> t.seg <- Segmap.of_word v
  | Alu.Byte_select -> t.byte_select <- v land 3
  | Alu.Epc i -> t.epcs.(i) <- v

type branch_effect =
  | Taken of int * int  (* target, delay *)
  | Link_and_taken of int * int * int * int  (* link reg, return addr, target, delay *)
  | Not_taken

let compute_branch t b =
  match b with
  | Branch.Cbr (c, x, y, target) ->
      if Cond.eval c (operand_value t x) (operand_value t y) then Taken (target, 1)
      else Not_taken
  | Branch.Jump target -> Taken (target, 1)
  | Branch.Jal (target, link) -> Link_and_taken (Reg.to_int link, t.p2, target, 1)
  | Branch.Jind r -> Taken (t.regs.(Reg.to_int r), 2)
  | Branch.Jalind (r, link) ->
      Link_and_taken (Reg.to_int link, t.p2 + 1, t.regs.(Reg.to_int r), 2)
  | Branch.Trap code -> raise (Trap_dispatch code)

let commit_pending t =
  if t.pend_r >= 0 then begin
    t.regs.(t.pend_r) <- t.pend_v;
    t.pend_r <- -1
  end

let dispatch t cause detail ~epcs:(e0, e1, e2) =
  commit_pending t;
  t.epcs.(0) <- e0;
  t.epcs.(1) <- e1;
  t.epcs.(2) <- e2;
  t.sr <- Surprise.push t.sr cause detail;
  set_pc_chain t (0, 1, 2);
  t.last_load_writes <- Reg.Set.empty;
  Stats.count_exception t.stats cause;
  (* an exception squashes any outstanding branch shadow *)
  if t.prof_on then t.prof.pr_shadow_pending <- 0;
  if t.trace_on then begin
    t.delay_pending <- 0;
    Mips_obs.Sink.emit t.trace
      (Mips_obs.Event.Exception_dispatch
         { pc = e0; cause = Cause.name cause; code = Cause.to_code cause; detail })
  end;
  Dispatched cause

let count_cycle t word =
  let s = t.stats in
  s.cycles <- s.cycles + 1;
  s.words <- s.words + 1;
  let busy = Word.references_memory word in
  if busy then s.mem_busy_cycles <- s.mem_busy_cycles + 1
  else s.free_cycles <- s.free_cycles + 1;
  let weight =
    if t.cfg.byte_addressed && busy then 1. +. (t.cfg.fetch_overhead_pct /. 100.)
    else 1.
  in
  s.weighted.(0) <- s.weighted.(0) +. weight;
  let pieces = Word.pieces word in
  if pieces = [] then s.nops <- s.nops + 1;
  if List.length pieces > 1 then s.packed_words <- s.packed_words + 1;
  List.iter
    (fun p ->
      match p with
      | Piece.Alu _ -> s.alu_pieces <- s.alu_pieces + 1
      | Piece.Mem _ -> s.mem_pieces <- s.mem_pieces + 1
      | Piece.Branch _ -> s.branch_pieces <- s.branch_pieces + 1
      | Piece.Nop -> ())
    pieces

let stall t n =
  t.stats.cycles <- t.stats.cycles + n;
  t.stats.stall_cycles <- t.stats.stall_cycles + n;
  t.stats.free_cycles <- t.stats.free_cycles + n;
  t.stats.weighted.(0) <- t.stats.weighted.(0) +. float_of_int n

(* Apply one decided injection to the architectural state.  Payload values
   are reduced into the machine's own ranges here so the plan can stay
   machine-agnostic. *)
let apply_injection t inj =
  (match inj with
  | Mips_fault.Plan.Flip_reg { reg; bit } ->
      let r = reg land 15 in
      t.regs.(r) <- Word32.norm (t.regs.(r) lxor (1 lsl (bit land 31)))
  | Mips_fault.Plan.Flip_data { word; bit } ->
      let w = word mod t.cfg.dmem_words in
      t.dmem.(w) <- Word32.norm (t.dmem.(w) lxor (1 lsl (bit land 31)))
  | Mips_fault.Plan.Spurious_interrupt -> t.interrupt_line <- true
  | Mips_fault.Plan.Drop_page { pick } ->
      ignore (Pagemap.drop_clean t.pagemap ~pick)
  | Mips_fault.Plan.Flaky_mem -> t.flaky_armed <- true);
  if t.trace_on then
    Mips_obs.Sink.emit t.trace
      (Mips_obs.Event.Fault_injected
         {
           cycle = t.stats.Stats.cycles;
           kind = Mips_fault.Plan.injection_kind inj;
           target = Mips_fault.Plan.injection_target inj;
         })

(* Attribute what one step just charged to [Stats] at the physical fetch
   address it resolved ([prof_fetch]), using before/after deltas.  The
   invariant this preserves: [count_cycle] is the only path adding to both
   [cycles] and [words], [stall] the only one adding to both [cycles] and
   [stall_cycles] — so per-step, cycles delta = words delta + stall delta,
   and summing the buffers reproduces the run's totals exactly.  Steps that
   charge cycles without a fetch (none today; kept for safety) land in
   [pr_other_cycles]. *)
let prof_note t ~c0 ~w0 ~st0 ~bt0 =
  let p = t.prof in
  let s = t.stats in
  let phys = t.prof_fetch in
  if phys >= 0 && phys < Array.length p.pr_counts then begin
    if s.Stats.words > w0 then begin
      p.pr_counts.(phys) <- p.pr_counts.(phys) + 1;
      if p.pr_shadow_pending > 0 then begin
        p.pr_shadow.(phys) <- p.pr_shadow.(phys) + 1;
        p.pr_shadow_pending <- p.pr_shadow_pending - 1
      end
    end;
    let st = s.Stats.stall_cycles - st0 in
    if st > 0 then p.pr_stalls.(phys) <- p.pr_stalls.(phys) + st;
    if s.Stats.branches_taken > bt0 then begin
      (* post-step chain holds the target: interlock redirects immediately,
         a 1-slot branch lands in p1, a 2-slot one in p2 *)
      let delay =
        match Word.branch t.imem.(phys) with
        | Some (Branch.Jind _ | Branch.Jalind _) -> 2
        | _ -> 1
      in
      let target =
        if t.cfg.interlock then t.p0 else if delay = 1 then t.p1 else t.p2
      in
      let key = (phys, target) in
      (match Hashtbl.find_opt p.pr_edges key with
      | Some n -> Hashtbl.replace p.pr_edges key (n + 1)
      | None -> Hashtbl.add p.pr_edges key 1);
      if not t.cfg.interlock then p.pr_shadow_pending <- delay
    end
  end
  else begin
    let dc = s.Stats.cycles - c0 in
    if dc > 0 then p.pr_other_cycles <- p.pr_other_cycles + dc
  end

let step_core t =
  if t.inject_on then begin
    match Mips_fault.Plan.decide t.plan with
    | Some inj -> apply_injection t inj
    | None -> ()
  end;
  if t.interrupt_line && t.sr.int_enable then
    dispatch t Cause.Interrupt 0 ~epcs:(t.p0, t.p1, t.p2)
  else begin
    if t.trace_on then
      Mips_obs.Sink.emit t.trace (Mips_obs.Event.Fetch { pc = t.p0 });
    let seq_epcs = (t.p0, t.p1, t.p2) in
    match
      let fetch_phys = translate_word t Pagemap.Ispace ~write:false t.p0 in
      if fetch_phys < 0 || fetch_phys >= t.cfg.imem_words then
        raise (Fault (Cause.Illegal, 0));
      let word = t.imem.(fetch_phys) in
      let note = t.notes.(fetch_phys) in
      if t.prof_on then t.prof_fetch <- fetch_phys;
      (* interlock-mode stall detection: dependent word waits a cycle *)
      if
        t.cfg.interlock
        && not (Reg.Set.is_empty (Reg.Set.inter t.last_load_writes (Word.reads word)))
      then begin
        stall t 1;
        t.stats.load_use_stall_cycles <- t.stats.load_use_stall_cycles + 1;
        Stats.record_stall_pair t.stats ~producer_pc:t.prev_pc ~consumer_pc:t.p0;
        if t.trace_on then
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Stall
               {
                 pc = t.p0;
                 word = render_word word;
                 cycles = 1;
                 reason =
                   Mips_obs.Event.Load_use
                     {
                       producer_pc = t.prev_pc;
                       producer = render_word t.prev_word;
                     };
               })
      end;
      (* compute phase: all operands read from pre-instruction state *)
      let mem_eff = Option.map (compute_mem t note) (Word.mem word) in
      let alu_eff = Option.map (compute_alu t) (Word.alu word) in
      let br_eff = Option.map (compute_branch t) (Word.branch word) in
      (word, note, mem_eff, alu_eff, br_eff)
    with
    | exception Fault (cause, detail) -> dispatch t cause detail ~epcs:seq_epcs
    | exception Trap_dispatch code ->
        (* a trap commits nothing else in its word and resumes after itself *)
        let w =
          let phys = translate_word t Pagemap.Ispace ~write:false t.p0 in
          t.imem.(phys)
        in
        count_cycle t w;
        if t.trace_on then begin
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Issue
               {
                 pc = t.p0;
                 word = render_word w;
                 pieces = List.length (Word.pieces w);
               });
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Monitor_call
               {
                 code;
                 name = (match Monitor.name code with Some n -> n | None -> "?");
               })
        end;
        dispatch t Cause.Trap code ~epcs:(t.p1, t.p2, t.p2 + 1)
    | word, note, mem_eff, alu_eff, br_eff ->
        count_cycle t word;
        if t.trace_on then begin
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Issue
               {
                 pc = t.p0;
                 word = render_word word;
                 pieces = List.length (Word.pieces word);
               });
          if t.delay_pending > 0 then begin
            t.delay_pending <- t.delay_pending - 1;
            Mips_obs.Sink.emit t.trace
              (Mips_obs.Event.Delay_slot
                 {
                   pc = t.p0;
                   kind = (match word with Word.Nop -> `Nop | _ -> `Filled);
                 })
          end
        end;
        (* commit phase *)
        (match mem_eff with
        | Some (Store_commit (phys, lane, v)) ->
            (match lane with
            | None -> t.dmem.(phys) <- v
            | Some i -> t.dmem.(phys) <- Word32.set_byte t.dmem.(phys) i v);
            Stats.count_ref t.stats ~load:false note;
            if t.trace_on then
              Mips_obs.Sink.emit t.trace
                (Mips_obs.Event.Mem_ref
                   {
                     pc = t.p0;
                     addr = phys;
                     load = false;
                     byte = lane <> None;
                     char_data = note.Note.char_data;
                   })
        | Some (Load_result _ | Imm_result _) | None -> ());
        commit_pending t;
        (match alu_eff with
        | Some (Reg_write (r, v)) -> t.regs.(r) <- v
        | Some (Special_write (s, v)) -> apply_special t s v
        | Some Rfe_effect -> t.sr <- Surprise.pop t.sr
        | None -> ());
        let rfe = match alu_eff with Some Rfe_effect -> true | _ -> false in
        (match mem_eff with
        | Some (Imm_result (r, v)) -> t.regs.(r) <- v
        | Some (Load_result (r, v, phys, byte)) ->
            Stats.count_ref t.stats ~load:true note;
            if t.trace_on then
              Mips_obs.Sink.emit t.trace
                (Mips_obs.Event.Mem_ref
                   {
                     pc = t.p0;
                     addr = phys;
                     load = true;
                     byte;
                     char_data = note.Note.char_data;
                   });
            if t.cfg.interlock then t.regs.(r) <- v
            else begin
              t.pend_r <- r;
              t.pend_v <- v
            end
        | Some (Store_commit _) | None -> ());
        t.last_load_writes <-
          (if t.cfg.interlock then Word.load_writes word else Reg.Set.empty);
        if t.trace_on || t.cfg.interlock then begin
          t.prev_pc <- t.p0;
          t.prev_word <- word
        end;
        (* next-pc phase *)
        (if rfe then set_pc_chain t (t.epcs.(0), t.epcs.(1), t.epcs.(2))
         else
           let advance_seq () = set_pc_chain t (t.p1, t.p2, t.p2 + 1) in
           let take target delay =
             t.stats.branches_taken <- t.stats.branches_taken + 1;
             if t.trace_on then
               Mips_obs.Sink.emit t.trace
                 (Mips_obs.Event.Branch_taken { pc = t.p0; target });
             if t.cfg.interlock then begin
               stall t delay;
               t.stats.branch_stall_cycles <-
                 t.stats.branch_stall_cycles + delay;
               if t.trace_on then begin
                 Mips_obs.Sink.emit t.trace
                   (Mips_obs.Event.Stall
                      {
                        pc = t.p0;
                        word = render_word word;
                        cycles = delay;
                        reason = Mips_obs.Event.Branch_latency { slots = delay };
                      });
                 (* the would-be delay slots are squashed, not executed *)
                 Mips_obs.Sink.emit t.trace
                   (Mips_obs.Event.Delay_slot { pc = t.p1; kind = `Squashed });
                 if delay > 1 then
                   Mips_obs.Sink.emit t.trace
                     (Mips_obs.Event.Delay_slot { pc = t.p2; kind = `Squashed })
               end;
               set_pc_chain t (target, target + 1, target + 2)
             end
             else begin
               if t.trace_on then
                 t.delay_pending <- delay;
               if delay = 1 then set_pc_chain t (t.p1, target, target + 1)
               else set_pc_chain t (t.p1, t.p2, target)
             end
           in
           match br_eff with
           | None | Some Not_taken -> advance_seq ()
           | Some (Taken (target, delay)) -> take target delay
           | Some (Link_and_taken (link, ret, target, delay)) ->
               t.regs.(link) <- ret;
               take target delay);
        Stepped
  end

(* One reference-engine cycle, profiling-aware: the quiet path is a single
   flag test (the PR-2 fault-hook pattern); with profiling armed the step
   is bracketed by a [Stats] snapshot and the delta attributed to the
   fetched pc. *)
let step t =
  if not t.prof_on then step_core t
  else begin
    let s = t.stats in
    let c0 = s.Stats.cycles and w0 = s.Stats.words in
    let st0 = s.Stats.stall_cycles and bt0 = s.Stats.branches_taken in
    t.prof_fetch <- -1;
    let ev = step_core t in
    prof_note t ~c0 ~w0 ~st0 ~bt0;
    ev
  end

(* ---------------------------------------------------------------------- *)
(* Fast engine: per-word compiled closures over predecoded entries.

   [compile_word] specializes one instruction word — for one imem slot of
   one machine configuration — into a [t -> unit] closure that replays
   exactly the quiet-path effects of [step]: same compute order (mem, alu,
   branch, all reading pre-instruction state), same commit order (store,
   pending load, alu, load/limm), same statistics increments in the same
   order (so even [weighted_cycles], a float accumulation, stays
   bit-identical).  Everything [step] recomputes per cycle — piece
   projections, read/write sets, piece counts, memory-busy weights — is
   resolved here once, via {!Predecode.lower}.

   The closures are only ever run from [step_fast], which falls back to
   [step] for any cycle where tracing, fault injection, an armed flaky
   reference, or the interrupt line could observe or perturb the step.
   Faults still escape as exceptions and reach the shared [dispatch]. *)

let user_priv_check t =
  if Surprise.equal_privilege t.sr.priv Surprise.User then
    raise (Fault (Cause.Privilege, 1))

(* Resolved ALU piece: destination picked apart from the value computation
   so the compute phase can park the result in a scratch slot and the
   commit phase can land it after the pending load. *)
type alu_exec =
  | AXnone
  | AXreg of int * (t -> int)  (* destination register, value *)
  | AXspecial of Alu.special * (t -> int)
  | AXrfe

(* Resolved memory piece.  The [t -> int] computes the resolved physical
   address at compute time (byte variants encode [(phys lsl 2) lor lane]);
   faults raise from inside it, exactly where [compute_mem] would. *)
type mem_exec =
  | MXnone
  | MXlimm of int * int  (* destination register, constant *)
  | MXload_w of int * (t -> int)
  | MXload_b of int * (t -> int)
  | MXstore_w of int * (t -> int)  (* source register, address *)
  | MXstore_b of int * (t -> int)

(* Resolved branch piece.  Targets of indirect branches are register reads
   and must happen at compute time (pre-commit); direct targets are
   immediate. *)
type br_exec =
  | BXnone
  | BXcbr of (t -> bool) * int
  | BXjump of int
  | BXjal of int * int  (* target, link register *)
  | BXjind of int  (* target register *)
  | BXjalind of int * int  (* target register, link register *)
  | BXtrap of int

let compile_operand = function
  | Operand.R r ->
      let r = Reg.to_int r in
      fun t -> t.regs.(r)
  | Operand.I4 n -> fun _ -> n

let compile_binop op =
  let overflow_trap t =
    if t.sr.ovf_enable then raise (Fault (Cause.Overflow, 0))
  in
  match op with
  | Alu.Add ->
      fun t a b ->
        if Word32.add_overflows a b then overflow_trap t;
        Word32.add a b
  | Alu.Sub ->
      fun t a b ->
        if Word32.sub_overflows a b then overflow_trap t;
        Word32.sub a b
  | Alu.Rsub ->
      fun t a b ->
        if Word32.sub_overflows b a then overflow_trap t;
        Word32.sub b a
  | Alu.And -> fun _ a b -> Word32.logand a b
  | Alu.Or -> fun _ a b -> Word32.logor a b
  | Alu.Xor -> fun _ a b -> Word32.logxor a b
  | Alu.Sll -> fun _ a b -> Word32.shift_left a b
  | Alu.Srl -> fun _ a b -> Word32.shift_right_logical a b
  | Alu.Sra -> fun _ a b -> Word32.shift_right_arith a b
  | Alu.Mul ->
      fun t a b ->
        if Word32.mul_overflows a b then overflow_trap t;
        Word32.mul a b
  | Alu.Div ->
      fun _ a b ->
        if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.sdiv a b
  | Alu.Rem ->
      fun _ a b ->
        if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.srem a b

let compile_alu a =
  (* the privilege test guards the whole piece, as in [compute_alu] *)
  let wrap f =
    if Alu.is_privileged a then (fun t ->
      user_priv_check t;
      f t)
    else f
  in
  match a with
  | Alu.Binop (op, x, y, d) ->
      let f = compile_binop op
      and gx = compile_operand x
      and gy = compile_operand y in
      AXreg (Reg.to_int d, wrap (fun t -> f t (gx t) (gy t)))
  | Alu.Mov (x, d) -> AXreg (Reg.to_int d, wrap (compile_operand x))
  | Alu.Movi8 (c, d) -> AXreg (Reg.to_int d, wrap (fun _ -> c))
  | Alu.Setc (c, x, y, d) ->
      let gx = compile_operand x and gy = compile_operand y in
      AXreg
        (Reg.to_int d, wrap (fun t -> if Cond.eval c (gx t) (gy t) then 1 else 0))
  | Alu.Xbyte (p, w, d) ->
      let gp = compile_operand p and gw = compile_operand w in
      AXreg (Reg.to_int d, wrap (fun t -> Word32.get_byte (gw t) (gp t land 3)))
  | Alu.Ibyte (s, d) ->
      let gs = compile_operand s in
      let d = Reg.to_int d in
      AXreg
        ( d,
          wrap (fun t ->
              Word32.set_byte t.regs.(d) (t.byte_select land 3) (gs t)) )
  | Alu.Rd_special (s, d) ->
      AXreg (Reg.to_int d, wrap (fun t -> read_special t s))
  | Alu.Wr_special (s, x) -> AXspecial (s, wrap (compile_operand x))
  | Alu.Rfe -> AXrfe (* privilege checked by the engine at compute time *)

let compile_addr = function
  | Mem.Abs a -> fun _ -> a
  | Mem.Disp (b, d) ->
      let b = Reg.to_int b in
      fun t -> Word32.add t.regs.(b) d
  | Mem.Idx (b, i) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t -> Word32.add t.regs.(b) t.regs.(i)
  | Mem.Shifted (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t -> Word32.add t.regs.(b) (Word32.shift_right_logical t.regs.(i) n)
  | Mem.Scaled (b, i, n) ->
      let b = Reg.to_int b and i = Reg.to_int i in
      fun t -> Word32.add t.regs.(b) (Word32.shift_left t.regs.(i) n)

let compile_mem (cfg : config) m =
  match m with
  | None -> MXnone
  | Some (Mem.Limm (c, d)) -> MXlimm (Reg.to_int d, c)
  | Some (Mem.Load (width, a, d)) ->
      let ga = compile_addr a in
      let d = Reg.to_int d in
      if cfg.byte_addressed then
        let resolve lane_rule t =
          let addr = ga t in
          let word_v = addr asr 2 and lane = addr land 3 in
          let phys = translate_word t Pagemap.Dspace ~write:false word_v in
          data_bounds_check t phys;
          lane_rule phys lane
        in
        match width with
        | Mem.W8 -> MXload_b (d, resolve (fun phys lane -> (phys lsl 2) lor lane))
        | Mem.W32 ->
            MXload_w
              ( d,
                resolve (fun phys lane ->
                    if lane <> 0 then raise (Fault (Cause.Illegal, 2));
                    phys) )
      else (
        match width with
        | Mem.W8 -> MXload_w (d, fun _ -> raise (Fault (Cause.Illegal, 3)))
        | Mem.W32 ->
            MXload_w
              ( d,
                fun t ->
                  let phys = translate_word t Pagemap.Dspace ~write:false (ga t) in
                  data_bounds_check t phys;
                  phys ))
  | Some (Mem.Store (width, s, a)) ->
      let ga = compile_addr a in
      let s = Reg.to_int s in
      if cfg.byte_addressed then
        let resolve lane_rule t =
          let addr = ga t in
          let word_v = addr asr 2 and lane = addr land 3 in
          let phys = translate_word t Pagemap.Dspace ~write:true word_v in
          data_bounds_check t phys;
          lane_rule phys lane
        in
        match width with
        | Mem.W8 -> MXstore_b (s, resolve (fun phys lane -> (phys lsl 2) lor lane))
        | Mem.W32 ->
            MXstore_w
              ( s,
                resolve (fun phys lane ->
                    if lane <> 0 then raise (Fault (Cause.Illegal, 2));
                    phys) )
      else (
        match width with
        | Mem.W8 -> MXstore_w (s, fun _ -> raise (Fault (Cause.Illegal, 3)))
        | Mem.W32 ->
            MXstore_w
              ( s,
                fun t ->
                  let phys = translate_word t Pagemap.Dspace ~write:true (ga t) in
                  data_bounds_check t phys;
                  phys ))

let compile_branch = function
  | None -> BXnone
  | Some (Branch.Cbr (c, x, y, target)) ->
      let gx = compile_operand x and gy = compile_operand y in
      BXcbr ((fun t -> Cond.eval c (gx t) (gy t)), target)
  | Some (Branch.Jump target) -> BXjump target
  | Some (Branch.Jal (target, link)) -> BXjal (target, Reg.to_int link)
  | Some (Branch.Jind r) -> BXjind (Reg.to_int r)
  | Some (Branch.Jalind (r, link)) -> BXjalind (Reg.to_int r, Reg.to_int link)
  | Some (Branch.Trap code) -> BXtrap code

let compile_word (cfg : config) (at : int) (w : int Word.t) : t -> unit =
  let e = Predecode.lower w in
  let busy = e.Predecode.refs_memory in
  let weight =
    if cfg.byte_addressed && busy then 1. +. (cfg.fetch_overhead_pct /. 100.)
    else 1.
  in
  let is_nop = e.Predecode.is_nop and packed = e.Predecode.packed in
  let na = e.Predecode.alu_pieces
  and nm = e.Predecode.mem_pieces
  and nb = e.Predecode.branch_pieces in
  let interlock = cfg.interlock in
  let stall_check = interlock && e.Predecode.may_stall in
  let reads = e.Predecode.reads in
  let lw = if interlock then e.Predecode.load_writes else Reg.Set.empty in
  let mx = compile_mem cfg e.Predecode.mem in
  let ax = match e.Predecode.alu with None -> AXnone | Some a -> compile_alu a in
  let bx = compile_branch e.Predecode.branch in
  let is_rfe = match ax with AXrfe -> true | _ -> false in
  let count t =
    let s = t.stats in
    s.cycles <- s.cycles + 1;
    s.words <- s.words + 1;
    if busy then s.mem_busy_cycles <- s.mem_busy_cycles + 1
    else s.free_cycles <- s.free_cycles + 1;
    s.weighted.(0) <- s.weighted.(0) +. weight;
    if is_nop then s.nops <- s.nops + 1;
    if packed then s.packed_words <- s.packed_words + 1;
    s.alu_pieces <- s.alu_pieces + na;
    s.mem_pieces <- s.mem_pieces + nm;
    s.branch_pieces <- s.branch_pieces + nb
  in
  let take t target delay =
    t.stats.branches_taken <- t.stats.branches_taken + 1;
    if interlock then begin
      stall t delay;
      t.stats.branch_stall_cycles <- t.stats.branch_stall_cycles + delay;
      set_pc_chain t (target, target + 1, target + 2)
    end
    else if delay = 1 then set_pc_chain t (t.p1, target, target + 1)
    else set_pc_chain t (t.p1, t.p2, target)
  in
  let generic t =
    (* interlock-mode stall detection, as in [step] *)
    if
      stall_check
      && not (Reg.Set.is_empty (Reg.Set.inter t.last_load_writes reads))
    then begin
      stall t 1;
      t.stats.load_use_stall_cycles <- t.stats.load_use_stall_cycles + 1;
      Stats.record_stall_pair t.stats ~producer_pc:t.prev_pc ~consumer_pc:t.p0
    end;
    (* compute phase: all operands read from pre-instruction state, in the
       reference order mem / alu / branch so faults rank identically *)
    (match mx with
    | MXnone | MXlimm _ -> ()
    | MXload_w (_, fp) | MXload_b (_, fp) -> t.sc_a <- fp t
    | MXstore_w (s, fp) | MXstore_b (s, fp) ->
        t.sc_a <- fp t;
        t.sc_b <- t.regs.(s));
    (match ax with
    | AXnone -> ()
    | AXreg (_, f) | AXspecial (_, f) -> t.sc_v <- f t
    | AXrfe -> user_priv_check t);
    (match bx with
    | BXnone | BXjump _ | BXjal _ -> ()
    | BXcbr (f, _) -> t.sc_taken <- f t
    | BXjind r | BXjalind (r, _) -> t.sc_target <- t.regs.(r)
    | BXtrap code ->
        (* a trap commits nothing else in its word; its cycle is still
           counted before the dispatch, exactly as [step] does *)
        count t;
        raise (Trap_dispatch code));
    count t;
    (* commit phase: store, then the pending load, then alu, then load *)
    (match mx with
    | MXstore_w _ ->
        t.dmem.(t.sc_a) <- t.sc_b;
        Stats.count_ref t.stats ~load:false t.notes.(at)
    | MXstore_b _ ->
        let phys = t.sc_a lsr 2 and lane = t.sc_a land 3 in
        t.dmem.(phys) <- Word32.set_byte t.dmem.(phys) lane t.sc_b;
        Stats.count_ref t.stats ~load:false t.notes.(at)
    | MXnone | MXlimm _ | MXload_w _ | MXload_b _ -> ());
    commit_pending t;
    (match ax with
    | AXnone -> ()
    | AXreg (d, _) -> t.regs.(d) <- t.sc_v
    | AXspecial (s, _) -> apply_special t s t.sc_v
    | AXrfe -> t.sr <- Surprise.pop t.sr);
    (match mx with
    | MXlimm (d, c) -> t.regs.(d) <- c
    | MXload_w (d, _) ->
        Stats.count_ref t.stats ~load:true t.notes.(at);
        let v = t.dmem.(t.sc_a) in
        if interlock then t.regs.(d) <- v
        else begin
          t.pend_r <- d;
          t.pend_v <- v
        end
    | MXload_b (d, _) ->
        Stats.count_ref t.stats ~load:true t.notes.(at);
        let v = Word32.get_byte t.dmem.(t.sc_a lsr 2) (t.sc_a land 3) in
        if interlock then t.regs.(d) <- v
        else begin
          t.pend_r <- d;
          t.pend_v <- v
        end
    | MXnone | MXstore_w _ | MXstore_b _ -> ());
    (* [last_load_writes] / stall attribution state only matter on the
       interlocked machine; in delayed-load mode they are always empty *)
    if interlock then begin
      t.last_load_writes <- lw;
      t.prev_pc <- t.p0;
      t.prev_word <- w
    end;
    (* next-pc phase *)
    if is_rfe then set_pc_chain t (t.epcs.(0), t.epcs.(1), t.epcs.(2))
    else
      match bx with
      | BXnone -> set_pc_chain t (t.p1, t.p2, t.p2 + 1)
      | BXcbr (_, target) ->
          if t.sc_taken then take t target 1
          else set_pc_chain t (t.p1, t.p2, t.p2 + 1)
      | BXjump target -> take t target 1
      | BXjal (target, link) ->
          t.regs.(link) <- t.p2;
          take t target 1
      | BXjind _ -> take t t.sc_target 2
      | BXjalind (_, link) ->
          t.regs.(link) <- t.p2 + 1;
          take t t.sc_target 2
      | BXtrap _ -> assert false (* raised during the compute phase *)
  in
  (* Specialised straight-line bodies for the common shapes on the
     delayed-load word machine.  The [mx]/[ax]/[bx] matches in [generic]
     are constant per closure but share branch-predictor sites across every
     compiled word, so the hot shapes get dedicated closures with the
     statistics update, the pending-load commit and the PC advance inlined
     (no tuples, no out-of-line calls).  Interlock mode, the byte machine
     and the rare shapes (traps, rfe, specials, unusual packings) stay on
     [generic]; the commit ordering in each body mirrors it exactly. *)
  if interlock || cfg.byte_addressed then generic
  else
    match (mx, ax, bx) with
    | MXnone, AXnone, BXnone ->
        fun t ->
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.nops <- s.Stats.nops + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXnone, AXreg (d, f), BXnone ->
        fun t ->
          let v = f t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(d) <- v;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXlimm (d, c0), AXnone, BXnone ->
        fun t ->
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(d) <- c0;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXload_w (d, fp), AXnone, BXnone ->
        fun t ->
          let a = fp t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          Stats.count_ref s ~load:true t.notes.(at);
          t.pend_r <- d;
          t.pend_v <- t.dmem.(a);
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXstore_w (src, fp), AXnone, BXnone ->
        fun t ->
          let a = fp t in
          let v = t.regs.(src) in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          t.dmem.(a) <- v;
          Stats.count_ref s ~load:false t.notes.(at);
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXnone, AXnone, BXcbr (f, target) ->
        fun t ->
          let taken = f t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          if taken then begin
            s.Stats.branches_taken <- s.Stats.branches_taken + 1;
            let b = t.p1 in
            t.p0 <- b;
            t.p1 <- target;
            t.p2 <- target + 1
          end
          else begin
            let b = t.p1 and c = t.p2 in
            t.p0 <- b;
            t.p1 <- c;
            t.p2 <- c + 1
          end
    | MXnone, AXnone, BXjump target ->
        fun t ->
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          s.Stats.branches_taken <- s.Stats.branches_taken + 1;
          let b = t.p1 in
          t.p0 <- b;
          t.p1 <- target;
          t.p2 <- target + 1
    | MXnone, AXnone, BXjal (target, link) ->
        fun t ->
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(link) <- t.p2;
          s.Stats.branches_taken <- s.Stats.branches_taken + 1;
          let b = t.p1 in
          t.p0 <- b;
          t.p1 <- target;
          t.p2 <- target + 1
    | MXnone, AXnone, BXjind r ->
        fun t ->
          let target = t.regs.(r) in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          s.Stats.branches_taken <- s.Stats.branches_taken + 1;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- target
    | MXnone, AXnone, BXjalind (r, link) ->
        fun t ->
          let target = t.regs.(r) in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(link) <- t.p2 + 1;
          s.Stats.branches_taken <- s.Stats.branches_taken + 1;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- target
    | MXnone, AXreg (d, fa), BXcbr (fb, target) ->
        fun t ->
          let v = fa t in
          let taken = fb t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.packed_words <- s.Stats.packed_words + 1;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(d) <- v;
          if taken then begin
            s.Stats.branches_taken <- s.Stats.branches_taken + 1;
            let b = t.p1 in
            t.p0 <- b;
            t.p1 <- target;
            t.p2 <- target + 1
          end
          else begin
            let b = t.p1 and c = t.p2 in
            t.p0 <- b;
            t.p1 <- c;
            t.p2 <- c + 1
          end
    | MXnone, AXreg (d, fa), BXjump target ->
        fun t ->
          let v = fa t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.packed_words <- s.Stats.packed_words + 1;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          s.Stats.branch_pieces <- s.Stats.branch_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(d) <- v;
          s.Stats.branches_taken <- s.Stats.branches_taken + 1;
          let b = t.p1 in
          t.p0 <- b;
          t.p1 <- target;
          t.p2 <- target + 1
    | MXlimm (dm, c0), AXreg (da, fa), BXnone ->
        fun t ->
          let v = fa t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.free_cycles <- s.Stats.free_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.packed_words <- s.Stats.packed_words + 1;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(da) <- v;
          t.regs.(dm) <- c0;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXload_w (dm, fp), AXreg (da, fa), BXnone ->
        fun t ->
          let a = fp t in
          let v = fa t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.packed_words <- s.Stats.packed_words + 1;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(da) <- v;
          Stats.count_ref s ~load:true t.notes.(at);
          t.pend_r <- dm;
          t.pend_v <- t.dmem.(a);
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | MXstore_w (src, fp), AXreg (da, fa), BXnone ->
        fun t ->
          let a = fp t in
          let sv = t.regs.(src) in
          let v = fa t in
          let s = t.stats in
          s.Stats.cycles <- s.Stats.cycles + 1;
          s.Stats.words <- s.Stats.words + 1;
          s.Stats.mem_busy_cycles <- s.Stats.mem_busy_cycles + 1;
          s.Stats.weighted.(0) <- s.Stats.weighted.(0) +. 1.;
          s.Stats.packed_words <- s.Stats.packed_words + 1;
          s.Stats.alu_pieces <- s.Stats.alu_pieces + 1;
          s.Stats.mem_pieces <- s.Stats.mem_pieces + 1;
          t.dmem.(a) <- sv;
          Stats.count_ref s ~load:false t.notes.(at);
          (let pr = t.pend_r in
           if pr >= 0 then begin
             t.regs.(pr) <- t.pend_v;
             t.pend_r <- -1
           end);
          t.regs.(da) <- v;
          let b = t.p1 and c = t.p2 in
          t.p0 <- b;
          t.p1 <- c;
          t.p2 <- c + 1
    | _ -> generic

(* One fast-engine cycle.  Quiet-path preconditions: no tracing, no fault
   injection, no armed flaky reference, interrupt line low.  Any of them
   arming routes this cycle through the reference [step] — cycle-for-cycle,
   so the two engines can interleave freely mid-run. *)
let step_fast_quiet t =
  (* pre-step PC chain, kept in locals so the sequential-EPC tuple is
     only materialised on the (rare) fault-dispatch path *)
  let e0 = t.p0 and e1 = t.p1 and e2 = t.p2 in
  match
    let fetch_phys =
      (* inlined fast case of [translate_word]: kernel mode, mapping off *)
      match (t.sr.Surprise.priv, t.sr.Surprise.map_enable) with
      | Surprise.Kernel, false -> t.p0
      | _ -> translate_word t Pagemap.Ispace ~write:false t.p0
    in
    if fetch_phys < 0 || fetch_phys >= t.cfg.imem_words then
      raise (Fault (Cause.Illegal, 0));
    if t.prof_on then t.prof_fetch <- fetch_phys;
    let f = t.xcode.(fetch_phys) in
    let f =
      if f == stale then begin
        let g = compile_word t.cfg fetch_phys t.imem.(fetch_phys) in
        t.xcode.(fetch_phys) <- g;
        g
      end
      else f
    in
    f t
  with
  | () -> Stepped
  | exception Fault (cause, detail) ->
      dispatch t cause detail ~epcs:(e0, e1, e2)
  | exception Trap_dispatch code ->
      dispatch t Cause.Trap code ~epcs:(t.p1, t.p2, t.p2 + 1)

let step_fast t =
  if t.trace_on || t.inject_on || t.flaky_armed || t.interrupt_line then step t
  else if not t.prof_on then step_fast_quiet t
  else begin
    (* same bracketing as the profiled reference step: snapshot, run the
       quiet fast path (which stashes the fetch pc), attribute the delta *)
    let s = t.stats in
    let c0 = s.Stats.cycles and w0 = s.Stats.words in
    let st0 = s.Stats.stall_cycles and bt0 = s.Stats.branches_taken in
    t.prof_fetch <- -1;
    let ev = step_fast_quiet t in
    prof_note t ~c0 ~w0 ~st0 ~bt0;
    ev
  end

(* ---------------------------------------------------------------------- *)

type engine = Ref | Fast | Jit

let engine_name = function Ref -> "ref" | Fast -> "fast" | Jit -> "jit"
let engine_of_string = function
  | "ref" -> Some Ref
  | "fast" -> Some Fast
  | "jit" -> Some Jit
  | _ -> None

(* Per-step contexts (the kernel's scheduler loop, arbitrary interleaving)
   get the fast engine for [Jit]: trace dispatch only exists at whole-run
   granularity, and [step_fast] is the jit loop's own single-step fallback,
   so the state evolution is identical. *)
let stepper = function Ref -> step | Fast | Jit -> step_fast

let run_with stepf ?(fuel = 10_000_000) t handler =
  let rec loop fuel =
    if fuel <= 0 then begin
      t.stats.Stats.fuel_exhausted <- true;
      false
    end
    else
      match stepf t with
      | Stepped -> loop (fuel - 1)
      | Dispatched cause -> (
          match handler t cause with
          | `Halt -> true
          | `Resume ->
              t.sr <- Surprise.pop t.sr;
              set_pc_chain t (t.epcs.(0), t.epcs.(1), t.epcs.(2));
              loop (fuel - 1))
  in
  loop fuel

let run ?fuel t handler = run_with step ?fuel t handler
let run_fast ?fuel t handler = run_with step_fast ?fuel t handler

(* The jit run loop lives in [Mips_jit] (lib/jit), which depends on this
   module; it registers itself here at [install] time.  Requesting the jit
   engine without having linked it is a programming error, and failing loud
   beats silently falling back to a slower engine. *)
let jit_runner :
    (?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool) ref =
  ref (fun ?fuel:_ _ _ ->
      failwith "Cpu.run_engine: jit engine not installed (call Mips_jit.install)")

let set_jit_runner f = jit_runner := f

let run_engine ?fuel ~engine t handler =
  match engine with
  | Jit -> !jit_runner ?fuel t handler
  | Ref | Fast -> run_with (stepper engine) ?fuel t handler
