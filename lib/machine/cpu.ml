open Mips_isa

type config = {
  interlock : bool;
  byte_addressed : bool;
  fetch_overhead_pct : float;
  imem_words : int;
  dmem_words : int;
}

let default_config =
  {
    interlock = false;
    byte_addressed = false;
    fetch_overhead_pct = 0.;
    imem_words = 1 lsl 16;
    dmem_words = 1 lsl 18;
  }

let byte_addressed_config =
  { default_config with byte_addressed = true; fetch_overhead_pct = 15. }

let interlocked_config = { default_config with interlock = true }

type t = {
  cfg : config;
  regs : int array;
  mutable p0 : int;
  mutable p1 : int;
  mutable p2 : int;
  mutable sr : Surprise.t;
  mutable seg : Segmap.t;
  mutable byte_select : int;
  epcs : int array;
  mutable pending : (int * int) option;  (* load landing one word late *)
  mutable last_load_writes : Reg.Set.t;  (* interlock-mode stall detection *)
  imem : int Word.t array;
  notes : Note.t array;
  dmem : int array;
  pagemap : Pagemap.t;
  mutable interrupt_line : bool;
  mutable fault : fault_kind option;
  stats : Stats.t;
  mutable trace : Mips_obs.Sink.t;
  mutable trace_on : bool;  (* = trace.enabled, flattened for the hot path *)
  mutable plan : Mips_fault.Plan.t;
  mutable inject_on : bool;  (* = Plan.enabled plan, flattened likewise *)
  mutable flaky_armed : bool;  (* next data reference transiently faults *)
  (* previous executed word, for load-use stall attribution by pair *)
  mutable prev_pc : int;
  mutable prev_word : int Word.t;
  (* taken-branch shadow countdown; maintained only while tracing *)
  mutable delay_pending : int;
}

and fault_kind =
  | Missing_page of Pagemap.space * int
  | Segment_violation of int
  | Transient_ref

type event = Stepped | Dispatched of Cause.t

let create ?(config = default_config) () =
  {
    cfg = config;
    regs = Array.make 16 0;
    p0 = 0;
    p1 = 1;
    p2 = 2;
    sr = Surprise.reset;
    seg = Segmap.make ~pid:0 ~mask_bits:0;
    byte_select = 0;
    epcs = Array.make 3 0;
    pending = None;
    last_load_writes = Reg.Set.empty;
    imem = Array.make config.imem_words Word.Nop;
    notes = Array.make config.imem_words Note.plain;
    dmem = Array.make config.dmem_words 0;
    pagemap = Pagemap.create ();
    interrupt_line = false;
    fault = None;
    stats = Stats.create ();
    trace = Mips_obs.Sink.null;
    trace_on = false;
    plan = Mips_fault.Plan.none;
    inject_on = false;
    flaky_armed = false;
    prev_pc = -1;
    prev_word = Word.Nop;
    delay_pending = 0;
  }

let config t = t.cfg
let stats t = t.stats
let trace t = t.trace
let set_trace t sink =
  t.trace <- sink;
  t.trace_on <- sink.Mips_obs.Sink.enabled

let fault_plan t = t.plan

let set_fault_plan t plan =
  t.plan <- plan;
  t.inject_on <- Mips_fault.Plan.enabled plan;
  t.flaky_armed <- false
let render_word w = Format.asprintf "%a" Word.pp_abs w
let get_reg t r = t.regs.(Reg.to_int r)
let set_reg t r v = t.regs.(Reg.to_int r) <- Word32.norm v
let surprise t = t.sr
let set_surprise t sr = t.sr <- sr
let segmap t = t.seg
let set_segmap t seg = t.seg <- seg
let pagemap t = t.pagemap
let epc t i = t.epcs.(i)
let set_epc t i v = t.epcs.(i) <- v
let pc t = t.p0
let pc_chain t = (t.p0, t.p1, t.p2)

let set_pc_chain t (a, b, c) =
  t.p0 <- a;
  t.p1 <- b;
  t.p2 <- c

let set_pc t a = set_pc_chain t (a, a + 1, a + 2)
let set_interrupt t b = t.interrupt_line <- b
let interrupt_pending t = t.interrupt_line
let read_code t a = t.imem.(a)
let write_code t a w = t.imem.(a) <- w
let read_note t a = t.notes.(a)
let write_note t a n = t.notes.(a) <- n
let read_data t a = t.dmem.(a)
let write_data t a v = t.dmem.(a) <- Word32.norm v
let faulted t = t.fault

let faulted_addr t =
  match t.fault with
  | Some (Missing_page (sp, ga)) -> Some (sp, ga)
  | Some (Segment_violation _ | Transient_ref) | None -> None

let load_program ?(at = 0) ?(data_at = 0) t (p : Program.t) =
  Array.blit p.code 0 t.imem at (Array.length p.code);
  Array.blit p.notes 0 t.notes at (Array.length p.notes);
  List.iter (fun (a, v) -> t.dmem.(data_at + a) <- Word32.norm v) p.data;
  set_pc t (at + p.entry)

(* ---------------------------------------------------------------------- *)

exception Fault of Cause.t * int
exception Trap_dispatch of int

(* Translate a word-granularity virtual address to a physical word address. *)
let translate_word t space ~write vaddr =
  match (t.sr.priv, t.sr.map_enable) with
  | Surprise.Kernel, false -> vaddr
  | Surprise.User, false -> raise (Fault (Cause.Privilege, 0))
  | _, true -> (
      let gaddr =
        try Segmap.translate t.seg vaddr
        with Segmap.Out_of_segment a ->
          t.fault <- Some (Segment_violation a);
          raise (Fault (Cause.Page_fault, 0))
      in
      try Pagemap.translate t.pagemap space ~write gaddr
      with Pagemap.Fault (sp, ga) ->
        t.fault <- Some (Missing_page (sp, ga));
        raise (Fault (Cause.Page_fault, 0)))

let operand_value t = function
  | Operand.R r -> t.regs.(Reg.to_int r)
  | Operand.I4 n -> n

let data_bounds_check t phys_word =
  if phys_word < 0 || phys_word >= t.cfg.dmem_words then
    raise (Fault (Cause.Illegal, 1))

(* Effective address of a memory piece, in the machine's native granularity
   (word addresses on the word machine, byte addresses on the byte machine). *)
let effective_addr t = function
  | Mem.Abs a -> a
  | Mem.Disp (b, d) -> Word32.add t.regs.(Reg.to_int b) d
  | Mem.Idx (b, i) -> Word32.add t.regs.(Reg.to_int b) t.regs.(Reg.to_int i)
  | Mem.Shifted (b, i, n) ->
      Word32.add t.regs.(Reg.to_int b)
        (Word32.shift_right_logical t.regs.(Reg.to_int i) n)
  | Mem.Scaled (b, i, n) ->
      Word32.add t.regs.(Reg.to_int b)
        (Word32.shift_left t.regs.(Reg.to_int i) n)

(* Resolve a native address to (physical word index, byte lane option). *)
let resolve t ~write ~width addr =
  if t.cfg.byte_addressed then begin
    let word_v = addr asr 2 and lane = addr land 3 in
    let phys = translate_word t Pagemap.Dspace ~write word_v in
    data_bounds_check t phys;
    match width with
    | Mem.W8 -> (phys, Some lane)
    | Mem.W32 ->
        if lane <> 0 then raise (Fault (Cause.Illegal, 2));
        (phys, None)
  end
  else begin
    (match width with
    | Mem.W8 -> raise (Fault (Cause.Illegal, 3))
    | Mem.W32 -> ());
    let phys = translate_word t Pagemap.Dspace ~write addr in
    data_bounds_check t phys;
    (phys, None)
  end

(* An armed flaky-memory fault fires on the next data reference, before any
   translation or access side effect — the reference simply never happens
   this time around and the word restarts through the dispatch path. *)
let check_flaky t =
  if t.flaky_armed then begin
    t.flaky_armed <- false;
    Mips_fault.Plan.note_flaky_fired t.plan;
    t.fault <- Some Transient_ref;
    raise (Fault (Cause.Page_fault, 0))
  end

type mem_effect =
  | Load_result of int * int * int * bool
      (* register, value, phys word, byte-sized: lands one word late *)
  | Store_commit of int * int option * int  (* phys word, lane, value *)
  | Imm_result of int * int  (* register, value: immediate commit *)

let compute_mem t note m =
  match m with
  | Mem.Limm (c, d) -> Imm_result (Reg.to_int d, c)
  | Mem.Load (width, a, d) ->
      check_flaky t;
      let addr = effective_addr t a in
      let phys, lane = resolve t ~write:false ~width addr in
      let v =
        match lane with
        | None -> t.dmem.(phys)
        | Some i -> Word32.get_byte t.dmem.(phys) i
      in
      ignore note;
      Load_result (Reg.to_int d, v, phys, lane <> None)
  | Mem.Store (width, s, a) ->
      check_flaky t;
      let addr = effective_addr t a in
      let phys, lane = resolve t ~write:true ~width addr in
      Store_commit (phys, lane, t.regs.(Reg.to_int s))

type alu_effect =
  | Reg_write of int * int
  | Special_write of Alu.special * int
  | Rfe_effect

let binop_eval t op a b =
  let overflow_trap () =
    if t.sr.ovf_enable then raise (Fault (Cause.Overflow, 0))
  in
  match op with
  | Alu.Add ->
      if Word32.add_overflows a b then overflow_trap ();
      Word32.add a b
  | Alu.Sub ->
      if Word32.sub_overflows a b then overflow_trap ();
      Word32.sub a b
  | Alu.Rsub ->
      if Word32.sub_overflows b a then overflow_trap ();
      Word32.sub b a
  | Alu.And -> Word32.logand a b
  | Alu.Or -> Word32.logor a b
  | Alu.Xor -> Word32.logxor a b
  | Alu.Sll -> Word32.shift_left a b
  | Alu.Srl -> Word32.shift_right_logical a b
  | Alu.Sra -> Word32.shift_right_arith a b
  | Alu.Mul ->
      if Word32.mul_overflows a b then overflow_trap ();
      Word32.mul a b
  | Alu.Div -> if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.sdiv a b
  | Alu.Rem -> if b = 0 then raise (Fault (Cause.Overflow, 1)) else Word32.srem a b

let read_special t = function
  | Alu.Surprise -> Surprise.to_word t.sr
  | Alu.Segment -> Segmap.to_word t.seg
  | Alu.Byte_select -> t.byte_select
  | Alu.Epc i -> t.epcs.(i)

let compute_alu t a =
  if Surprise.equal_privilege t.sr.priv Surprise.User && Alu.is_privileged a then
    raise (Fault (Cause.Privilege, 1));
  match a with
  | Alu.Binop (op, x, y, d) ->
      Reg_write (Reg.to_int d, binop_eval t op (operand_value t x) (operand_value t y))
  | Alu.Mov (x, d) -> Reg_write (Reg.to_int d, operand_value t x)
  | Alu.Movi8 (c, d) -> Reg_write (Reg.to_int d, c)
  | Alu.Setc (c, x, y, d) ->
      let v = if Cond.eval c (operand_value t x) (operand_value t y) then 1 else 0 in
      Reg_write (Reg.to_int d, v)
  | Alu.Xbyte (p, w, d) ->
      let lane = operand_value t p land 3 in
      Reg_write (Reg.to_int d, Word32.get_byte (operand_value t w) lane)
  | Alu.Ibyte (s, d) ->
      let lane = t.byte_select land 3 in
      let cur = t.regs.(Reg.to_int d) in
      Reg_write (Reg.to_int d, Word32.set_byte cur lane (operand_value t s))
  | Alu.Rd_special (s, d) -> Reg_write (Reg.to_int d, read_special t s)
  | Alu.Wr_special (s, x) -> Special_write (s, operand_value t x)
  | Alu.Rfe -> Rfe_effect

let apply_special t s v =
  match s with
  | Alu.Surprise -> t.sr <- Surprise.of_word v
  | Alu.Segment -> t.seg <- Segmap.of_word v
  | Alu.Byte_select -> t.byte_select <- v land 3
  | Alu.Epc i -> t.epcs.(i) <- v

type branch_effect =
  | Taken of int * int  (* target, delay *)
  | Link_and_taken of int * int * int * int  (* link reg, return addr, target, delay *)
  | Not_taken

let compute_branch t b =
  match b with
  | Branch.Cbr (c, x, y, target) ->
      if Cond.eval c (operand_value t x) (operand_value t y) then Taken (target, 1)
      else Not_taken
  | Branch.Jump target -> Taken (target, 1)
  | Branch.Jal (target, link) -> Link_and_taken (Reg.to_int link, t.p2, target, 1)
  | Branch.Jind r -> Taken (t.regs.(Reg.to_int r), 2)
  | Branch.Jalind (r, link) ->
      Link_and_taken (Reg.to_int link, t.p2 + 1, t.regs.(Reg.to_int r), 2)
  | Branch.Trap code -> raise (Trap_dispatch code)

let commit_pending t =
  (match t.pending with
  | Some (r, v) -> t.regs.(r) <- v
  | None -> ());
  t.pending <- None

let dispatch t cause detail ~epcs:(e0, e1, e2) =
  commit_pending t;
  t.epcs.(0) <- e0;
  t.epcs.(1) <- e1;
  t.epcs.(2) <- e2;
  t.sr <- Surprise.push t.sr cause detail;
  set_pc_chain t (0, 1, 2);
  t.last_load_writes <- Reg.Set.empty;
  Stats.count_exception t.stats cause;
  if t.trace_on then begin
    t.delay_pending <- 0;
    Mips_obs.Sink.emit t.trace
      (Mips_obs.Event.Exception_dispatch
         { pc = e0; cause = Cause.name cause; code = Cause.to_code cause; detail })
  end;
  Dispatched cause

let count_cycle t word =
  let s = t.stats in
  s.cycles <- s.cycles + 1;
  s.words <- s.words + 1;
  let busy = Word.references_memory word in
  if busy then s.mem_busy_cycles <- s.mem_busy_cycles + 1
  else s.free_cycles <- s.free_cycles + 1;
  let weight =
    if t.cfg.byte_addressed && busy then 1. +. (t.cfg.fetch_overhead_pct /. 100.)
    else 1.
  in
  s.weighted_cycles <- s.weighted_cycles +. weight;
  let pieces = Word.pieces word in
  if pieces = [] then s.nops <- s.nops + 1;
  if List.length pieces > 1 then s.packed_words <- s.packed_words + 1;
  List.iter
    (fun p ->
      match p with
      | Piece.Alu _ -> s.alu_pieces <- s.alu_pieces + 1
      | Piece.Mem _ -> s.mem_pieces <- s.mem_pieces + 1
      | Piece.Branch _ -> s.branch_pieces <- s.branch_pieces + 1
      | Piece.Nop -> ())
    pieces

let stall t n =
  t.stats.cycles <- t.stats.cycles + n;
  t.stats.stall_cycles <- t.stats.stall_cycles + n;
  t.stats.free_cycles <- t.stats.free_cycles + n;
  t.stats.weighted_cycles <- t.stats.weighted_cycles +. float_of_int n

(* Apply one decided injection to the architectural state.  Payload values
   are reduced into the machine's own ranges here so the plan can stay
   machine-agnostic. *)
let apply_injection t inj =
  (match inj with
  | Mips_fault.Plan.Flip_reg { reg; bit } ->
      let r = reg land 15 in
      t.regs.(r) <- Word32.norm (t.regs.(r) lxor (1 lsl (bit land 31)))
  | Mips_fault.Plan.Flip_data { word; bit } ->
      let w = word mod t.cfg.dmem_words in
      t.dmem.(w) <- Word32.norm (t.dmem.(w) lxor (1 lsl (bit land 31)))
  | Mips_fault.Plan.Spurious_interrupt -> t.interrupt_line <- true
  | Mips_fault.Plan.Drop_page { pick } ->
      ignore (Pagemap.drop_clean t.pagemap ~pick)
  | Mips_fault.Plan.Flaky_mem -> t.flaky_armed <- true);
  if t.trace_on then
    Mips_obs.Sink.emit t.trace
      (Mips_obs.Event.Fault_injected
         {
           cycle = t.stats.Stats.cycles;
           kind = Mips_fault.Plan.injection_kind inj;
           target = Mips_fault.Plan.injection_target inj;
         })

let step t =
  if t.inject_on then begin
    match Mips_fault.Plan.decide t.plan with
    | Some inj -> apply_injection t inj
    | None -> ()
  end;
  if t.interrupt_line && t.sr.int_enable then
    dispatch t Cause.Interrupt 0 ~epcs:(t.p0, t.p1, t.p2)
  else begin
    if t.trace_on then
      Mips_obs.Sink.emit t.trace (Mips_obs.Event.Fetch { pc = t.p0 });
    let seq_epcs = (t.p0, t.p1, t.p2) in
    match
      let fetch_phys = translate_word t Pagemap.Ispace ~write:false t.p0 in
      if fetch_phys < 0 || fetch_phys >= t.cfg.imem_words then
        raise (Fault (Cause.Illegal, 0));
      let word = t.imem.(fetch_phys) in
      let note = t.notes.(fetch_phys) in
      (* interlock-mode stall detection: dependent word waits a cycle *)
      if
        t.cfg.interlock
        && not (Reg.Set.is_empty (Reg.Set.inter t.last_load_writes (Word.reads word)))
      then begin
        stall t 1;
        t.stats.load_use_stall_cycles <- t.stats.load_use_stall_cycles + 1;
        Stats.record_stall_pair t.stats ~producer_pc:t.prev_pc ~consumer_pc:t.p0;
        if t.trace_on then
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Stall
               {
                 pc = t.p0;
                 word = render_word word;
                 cycles = 1;
                 reason =
                   Mips_obs.Event.Load_use
                     {
                       producer_pc = t.prev_pc;
                       producer = render_word t.prev_word;
                     };
               })
      end;
      (* compute phase: all operands read from pre-instruction state *)
      let mem_eff = Option.map (compute_mem t note) (Word.mem word) in
      let alu_eff = Option.map (compute_alu t) (Word.alu word) in
      let br_eff = Option.map (compute_branch t) (Word.branch word) in
      (word, note, mem_eff, alu_eff, br_eff)
    with
    | exception Fault (cause, detail) -> dispatch t cause detail ~epcs:seq_epcs
    | exception Trap_dispatch code ->
        (* a trap commits nothing else in its word and resumes after itself *)
        let w =
          let phys = translate_word t Pagemap.Ispace ~write:false t.p0 in
          t.imem.(phys)
        in
        count_cycle t w;
        if t.trace_on then begin
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Issue
               {
                 pc = t.p0;
                 word = render_word w;
                 pieces = List.length (Word.pieces w);
               });
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Monitor_call
               {
                 code;
                 name = (match Monitor.name code with Some n -> n | None -> "?");
               })
        end;
        dispatch t Cause.Trap code ~epcs:(t.p1, t.p2, t.p2 + 1)
    | word, note, mem_eff, alu_eff, br_eff ->
        count_cycle t word;
        if t.trace_on then begin
          Mips_obs.Sink.emit t.trace
            (Mips_obs.Event.Issue
               {
                 pc = t.p0;
                 word = render_word word;
                 pieces = List.length (Word.pieces word);
               });
          if t.delay_pending > 0 then begin
            t.delay_pending <- t.delay_pending - 1;
            Mips_obs.Sink.emit t.trace
              (Mips_obs.Event.Delay_slot
                 {
                   pc = t.p0;
                   kind = (match word with Word.Nop -> `Nop | _ -> `Filled);
                 })
          end
        end;
        (* commit phase *)
        (match mem_eff with
        | Some (Store_commit (phys, lane, v)) ->
            (match lane with
            | None -> t.dmem.(phys) <- v
            | Some i -> t.dmem.(phys) <- Word32.set_byte t.dmem.(phys) i v);
            Stats.count_ref t.stats ~load:false note;
            if t.trace_on then
              Mips_obs.Sink.emit t.trace
                (Mips_obs.Event.Mem_ref
                   {
                     pc = t.p0;
                     addr = phys;
                     load = false;
                     byte = lane <> None;
                     char_data = note.Note.char_data;
                   })
        | Some (Load_result _ | Imm_result _) | None -> ());
        commit_pending t;
        (match alu_eff with
        | Some (Reg_write (r, v)) -> t.regs.(r) <- v
        | Some (Special_write (s, v)) -> apply_special t s v
        | Some Rfe_effect -> t.sr <- Surprise.pop t.sr
        | None -> ());
        let rfe = match alu_eff with Some Rfe_effect -> true | _ -> false in
        (match mem_eff with
        | Some (Imm_result (r, v)) -> t.regs.(r) <- v
        | Some (Load_result (r, v, phys, byte)) ->
            Stats.count_ref t.stats ~load:true note;
            if t.trace_on then
              Mips_obs.Sink.emit t.trace
                (Mips_obs.Event.Mem_ref
                   {
                     pc = t.p0;
                     addr = phys;
                     load = true;
                     byte;
                     char_data = note.Note.char_data;
                   });
            if t.cfg.interlock then t.regs.(r) <- v else t.pending <- Some (r, v)
        | Some (Store_commit _) | None -> ());
        t.last_load_writes <-
          (if t.cfg.interlock then Word.load_writes word else Reg.Set.empty);
        if t.trace_on || t.cfg.interlock then begin
          t.prev_pc <- t.p0;
          t.prev_word <- word
        end;
        (* next-pc phase *)
        (if rfe then set_pc_chain t (t.epcs.(0), t.epcs.(1), t.epcs.(2))
         else
           let advance_seq () = set_pc_chain t (t.p1, t.p2, t.p2 + 1) in
           let take target delay =
             t.stats.branches_taken <- t.stats.branches_taken + 1;
             if t.trace_on then
               Mips_obs.Sink.emit t.trace
                 (Mips_obs.Event.Branch_taken { pc = t.p0; target });
             if t.cfg.interlock then begin
               stall t delay;
               t.stats.branch_stall_cycles <-
                 t.stats.branch_stall_cycles + delay;
               if t.trace_on then begin
                 Mips_obs.Sink.emit t.trace
                   (Mips_obs.Event.Stall
                      {
                        pc = t.p0;
                        word = render_word word;
                        cycles = delay;
                        reason = Mips_obs.Event.Branch_latency { slots = delay };
                      });
                 (* the would-be delay slots are squashed, not executed *)
                 Mips_obs.Sink.emit t.trace
                   (Mips_obs.Event.Delay_slot { pc = t.p1; kind = `Squashed });
                 if delay > 1 then
                   Mips_obs.Sink.emit t.trace
                     (Mips_obs.Event.Delay_slot { pc = t.p2; kind = `Squashed })
               end;
               set_pc_chain t (target, target + 1, target + 2)
             end
             else begin
               if t.trace_on then
                 t.delay_pending <- delay;
               if delay = 1 then set_pc_chain t (t.p1, target, target + 1)
               else set_pc_chain t (t.p1, t.p2, target)
             end
           in
           match br_eff with
           | None | Some Not_taken -> advance_seq ()
           | Some (Taken (target, delay)) -> take target delay
           | Some (Link_and_taken (link, ret, target, delay)) ->
               t.regs.(link) <- ret;
               take target delay);
        Stepped
  end

let run ?(fuel = 10_000_000) t handler =
  let rec loop fuel =
    if fuel <= 0 then begin
      t.stats.Stats.fuel_exhausted <- true;
      false
    end
    else
      match step t with
      | Stepped -> loop (fuel - 1)
      | Dispatched cause -> (
          match handler t cause with
          | `Halt -> true
          | `Resume ->
              t.sr <- Surprise.pop t.sr;
              set_pc_chain t (t.epcs.(0), t.epcs.(1), t.epcs.(2));
              loop (fuel - 1))
  in
  loop fuel
