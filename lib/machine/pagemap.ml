type space = Ispace | Dspace [@@deriving eq, ord, show]

type entry = {
  frame : int;
  writable : bool;
  mutable referenced : bool;
  mutable dirty : bool;
}

type key = space * int

type t = (key, entry) Hashtbl.t

exception Fault of space * int

let page_words = 1024
let create () = Hashtbl.create 64

let map t space ~vpage ~frame ~writable =
  Hashtbl.replace t (space, vpage)
    { frame; writable; referenced = false; dirty = false }

let unmap t space ~vpage = Hashtbl.remove t (space, vpage)
let find t space ~vpage = Hashtbl.find_opt t (space, vpage)

let translate t space ~write gaddr =
  let vpage = gaddr / page_words in
  match Hashtbl.find_opt t (space, vpage) with
  | None -> raise (Fault (space, gaddr))
  | Some e ->
      if write && not e.writable then raise (Fault (space, gaddr));
      e.referenced <- true;
      if write then e.dirty <- true;
      (e.frame * page_words) + (gaddr mod page_words)

let drop_clean t ~pick =
  let clean =
    Hashtbl.fold
      (fun (space, vpage) e acc ->
        if e.dirty then acc else (space, vpage) :: acc)
      t []
    |> List.sort compare
  in
  match clean with
  | [] -> None
  | _ :: _ ->
      let ((space, vpage) as victim) =
        List.nth clean (pick mod List.length clean)
      in
      Hashtbl.remove t (space, vpage);
      Some victim

let entries t =
  Hashtbl.fold (fun (space, vpage) e acc -> (space, vpage, e) :: acc) t []

let clear_referenced t = Hashtbl.iter (fun _ e -> e.referenced <- false) t
