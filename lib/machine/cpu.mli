(** The architectural simulator.

    Models the user-visible consequences of the MIPS 5-stage pipeline at
    instruction-word granularity:

    - {b No hardware interlocks} (default).  A register written by a load is
      not visible to the immediately following word — that word reads the
      {e stale} value.  The instruction word(s) after a taken branch
      ({!Mips_isa.Branch.delay} of them) always execute.  Correctness is the
      reorganizer's job, exactly as in the paper.
    - {b Interlock mode} ([interlock = true]): the conventional comparison
      machine.  Loads commit immediately but a dependent next word stalls one
      cycle; taken branches squash their delay slots and pay them as stall
      cycles.
    - {b Byte-addressed mode} ([byte_addressed = true]): data addresses are
      byte addresses, [W8] accesses are legal, word accesses must be aligned,
      and every memory-referencing word costs an extra
      [fetch_overhead_pct] percent in {!Stats.t.weighted_cycles} — the
      paper's estimate of what byte addressability adds to the critical path.

    Exceptions follow Section 3.3: instructions logically before the fault
    complete; a faulting memory reference inhibits the register write of the
    ALU piece in the same word; the three-deep program-counter chain is saved
    in the EPC registers; the surprise register is pushed; control resumes at
    physical address 0 with mapping off. *)

open Mips_isa

type config = {
  interlock : bool;
  byte_addressed : bool;
  fetch_overhead_pct : float;  (** used only when [byte_addressed] *)
  imem_words : int;
  dmem_words : int;
}

val default_config : config
(** Word-addressed, no interlocks, 64K instruction words, 256K data words. *)

val byte_addressed_config : config
(** The Table 9/10 comparison machine with the paper's 15 % overhead. *)

val interlocked_config : config

type t

(** Why [step] or [run] stopped making forward progress. *)
type event =
  | Stepped  (** one word executed normally *)
  | Dispatched of Cause.t  (** an exception was accepted; the machine has
                               pushed state and now sits at physical 0 *)

val create : ?config:config -> unit -> t
val config : t -> config
val stats : t -> Stats.t

val trace : t -> Mips_obs.Sink.t
val set_trace : t -> Mips_obs.Sink.t -> unit
(** Attach an event sink.  With the default {!Mips_obs.Sink.null} the
    instrumentation in {!step} reduces to a handful of branch tests and no
    event is ever allocated; with a live sink every fetch, issue, stall,
    memory reference, taken branch, delay-slot execution and exception
    dispatch is reported. *)

val fault_plan : t -> Mips_fault.Plan.t
val set_fault_plan : t -> Mips_fault.Plan.t -> unit
(** Attach a transient-fault plan.  With the default {!Mips_fault.Plan.none}
    the hook in {!step} is a single flag test; with an enabled plan the plan
    is consulted once per step and any decided injection (register/data bit
    flip, spurious interrupt, clean-page drop, flaky-memory arming) is
    applied to the architectural state before the word executes.  An armed
    flaky fault fires on the next data reference: the reference raises a
    transient [Page_fault] ({!fault_kind.Transient_ref}) {e before} touching
    memory, so restarting the word through the EPC chain re-executes it
    exactly.  Attaching a plan disarms any pending flaky fault. *)

(** {2 Guest profiling}

    Per-PC execution profiling for both engines behind a single flag test
    (the same pattern as the trace and fault hooks).  The buffers are
    updated from {!Stats} deltas after each step — profiling never writes
    the statistics, so a profiled run's {!Stats} are byte-identical to an
    unprofiled one's, and the buffer totals reconcile exactly:
    sum(pr_counts) = words, sum(pr_stalls) = stall cycles, and
    sum(pr_counts) + sum(pr_stalls) + pr_other_cycles = cycles.  The
    buffers are not part of the architectural state: checkpoints do not
    carry them. *)

type profile = {
  pr_counts : int array;
      (** executed words per physical pc (indexed to [imem_words]) *)
  pr_stalls : int array;
      (** stall cycles charged at pc: load-use at the consumer, interlock
          branch latency at the branch *)
  pr_shadow : int array;
      (** executions of pc inside a taken branch's delay shadow *)
  pr_edges : (int * int, int) Hashtbl.t;
      (** (branch pc, target) -> times the branch was taken to target *)
  mutable pr_shadow_pending : int;
  mutable pr_other_cycles : int;
      (** cycles charged without a resolved fetch pc *)
}

val set_profiling : t -> bool -> unit
(** Arm (with fresh buffers) or disarm profiling. *)

val profile : t -> profile option
(** The live buffers while profiling is armed. *)

(** {2 Architectural state} *)

val get_reg : t -> Reg.t -> Word32.t
val set_reg : t -> Reg.t -> Word32.t -> unit
val surprise : t -> Surprise.t
val set_surprise : t -> Surprise.t -> unit
val segmap : t -> Segmap.t
val set_segmap : t -> Segmap.t -> unit
val pagemap : t -> Pagemap.t
val epc : t -> int -> int
val set_epc : t -> int -> int -> unit

val pc : t -> int
(** Current instruction address (head of the three-deep chain). *)

val pc_chain : t -> int * int * int
val set_pc_chain : t -> int * int * int -> unit

val set_pc : t -> int -> unit
(** Reset the chain to sequential flow from the given address. *)

val set_interrupt : t -> bool -> unit
(** Drive the single external interrupt line. *)

val interrupt_pending : t -> bool

(** {2 Physical memory} *)

val read_code : t -> int -> int Word.t
val write_code : t -> int -> int Word.t -> unit
val read_note : t -> int -> Note.t
val write_note : t -> int -> Note.t -> unit
val read_data : t -> int -> Word32.t
(** Physical word read (word index into data memory). *)

val write_data : t -> int -> Word32.t -> unit

val load_program : ?at:int -> ?data_at:int -> t -> Program.t -> unit
(** Copy a program image into physical memory ([at] = code origin,
    [data_at] = data origin, both default 0) and point the PC chain at its
    entry.  The caller chooses privilege/mapping via {!set_surprise}. *)

(** {2 Execution} *)

val step : t -> event
(** Execute one instruction word (or accept a pending interrupt). *)

val run : ?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool
(** [run t handler] steps until the handler (called on every dispatched
    exception) answers [`Halt], or [fuel] (default 10 million) words have
    executed.  On [`Resume] the machine performs the return-from-exception:
    restores the surprise register and the saved PC chain (the handler may
    have redirected the EPCs first).  Returns [true] when halted by the
    handler, [false] when out of fuel (which also sets
    {!Stats.t.fuel_exhausted}).

    This is the {e hosted} mode used by tests and analyses; the full machine
    -level dispatch path (kernel code at address 0) is exercised by the OS
    library instead. *)

(** {2 Fast engine}

    A second execution engine over the same machine state.  Each instruction
    word is lowered once ({!Predecode.lower}) and specialized into a closure
    the first time it executes; subsequent executions skip all per-cycle
    decode work (piece projection, read/write set construction, statistics
    classification).  Self-modifying code is handled by invalidation:
    {!write_code} and {!load_program} mark the touched slots for
    recompilation.

    {b Equivalence contract}: for any program and any machine configuration,
    running under the fast engine must leave registers, data memory, the PC
    chain, EPCs, the surprise register and every {!Stats.t} counter —
    including float [weighted_cycles], per-pair stall attribution and
    exception tallies — bit-identical to the reference {!step} loop.  The
    fast path only runs when tracing, fault injection, an armed flaky
    reference and the interrupt line are all quiet; any of them arming makes
    {!step_fast} delegate that cycle to {!step}, so the engines interleave
    cycle-for-cycle and observability never changes results. *)

val step_fast : t -> event
(** Execute one word via the predecoded closure cache, or — when any
    observer/injector is armed — via the reference {!step}. *)

val run_fast : ?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool
(** As {!run}, but stepping with {!step_fast}. *)

type engine = Ref | Fast

val engine_name : engine -> string
val engine_of_string : string -> engine option

val stepper : engine -> t -> event
(** The step function an engine uses: [stepper Ref == step]. *)

val run_engine :
  ?fuel:int -> engine:engine -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool

(** What the external mapping unit latched at the most recent [Page_fault]
    dispatch. *)
type fault_kind =
  | Missing_page of Pagemap.space * int
      (** page-map miss at this global virtual address *)
  | Segment_violation of int
      (** a reference between the two valid segment regions, at this
          process virtual address ("treated as a page fault" by the
          hardware; the OS decides to grow the segment or kill) *)
  | Transient_ref
      (** an injected flaky-memory fault: the data reference never happened
          and the word is restartable as-is — software should simply retry *)

val faulted : t -> fault_kind option

val faulted_addr : t -> (Pagemap.space * int) option
(** The page-miss address, when the latest fault was one. *)

(** {2 Checkpoint support}

    The execution state that the architectural accessors above do not
    reach: the delayed-load slot, the interlock stall-detection set, the
    byte-select register, the latched fault kind, the armed flaky-memory
    flag, the previous-word attribution state and the traced delay-slot
    countdown.  Together with registers, PC chain, EPCs, surprise, segment
    map, page map, data memory and {!Stats.t}, this makes a machine
    restorable bit-for-bit. *)

type pipeline_state = {
  ps_byte_select : int;
  ps_pending : (int * int) option;  (** load landing one word late *)
  ps_last_load_writes : int;  (** 16-bit register-set mask *)
  ps_fault : fault_kind option;
  ps_flaky_armed : bool;
  ps_prev_pc : int;
  ps_delay_pending : int;
}

val pipeline_state : t -> pipeline_state

val set_pipeline_state : t -> pipeline_state -> unit
(** Restore the hidden execution state.  The previous-word text is
    re-derived from instruction memory at [ps_prev_pc], so code must be
    reloaded before this is called.  {!set_fault_plan} disarms the flaky
    flag — attach the plan {e before} restoring pipeline state. *)
