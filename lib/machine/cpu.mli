(** The architectural simulator.

    Models the user-visible consequences of the MIPS 5-stage pipeline at
    instruction-word granularity:

    - {b No hardware interlocks} (default).  A register written by a load is
      not visible to the immediately following word — that word reads the
      {e stale} value.  The instruction word(s) after a taken branch
      ({!Mips_isa.Branch.delay} of them) always execute.  Correctness is the
      reorganizer's job, exactly as in the paper.
    - {b Interlock mode} ([interlock = true]): the conventional comparison
      machine.  Loads commit immediately but a dependent next word stalls one
      cycle; taken branches squash their delay slots and pay them as stall
      cycles.
    - {b Byte-addressed mode} ([byte_addressed = true]): data addresses are
      byte addresses, [W8] accesses are legal, word accesses must be aligned,
      and every memory-referencing word costs an extra
      [fetch_overhead_pct] percent in {!Stats.t.weighted_cycles} — the
      paper's estimate of what byte addressability adds to the critical path.

    Exceptions follow Section 3.3: instructions logically before the fault
    complete; a faulting memory reference inhibits the register write of the
    ALU piece in the same word; the three-deep program-counter chain is saved
    in the EPC registers; the surprise register is pushed; control resumes at
    physical address 0 with mapping off. *)

open Mips_isa

type config = {
  interlock : bool;
  byte_addressed : bool;
  fetch_overhead_pct : float;  (** used only when [byte_addressed] *)
  imem_words : int;
  dmem_words : int;
}

val default_config : config
(** Word-addressed, no interlocks, 64K instruction words, 256K data words. *)

val byte_addressed_config : config
(** The Table 9/10 comparison machine with the paper's 15 % overhead. *)

val interlocked_config : config

(** Guest-profiling buffers; see {!section-profiling} below. *)
type profile = {
  pr_counts : int array;
      (** executed words per physical pc (indexed to [imem_words]) *)
  pr_stalls : int array;
      (** stall cycles charged at pc: load-use at the consumer, interlock
          branch latency at the branch *)
  pr_shadow : int array;
      (** executions of pc inside a taken branch's delay shadow *)
  pr_edges : (int * int, int) Hashtbl.t;
      (** (branch pc, target) -> times the branch was taken to target *)
  mutable pr_shadow_pending : int;
  mutable pr_other_cycles : int;
      (** cycles charged without a resolved fetch pc *)
}

(** The machine state, exposed concretely so the compiled execution engines
    (the per-word closures below and the trace compiler in [lib/jit]) can
    read and write it without accessor calls on the hot path.  Everything
    here is reachable through the named accessors too; code outside the
    engines should prefer those. *)
type t = {
  cfg : config;
  regs : int array;
  mutable p0 : int;
  mutable p1 : int;
  mutable p2 : int;
  mutable sr : Surprise.t;
  mutable seg : Segmap.t;
  mutable byte_select : int;
  epcs : int array;
  (* load landing one word late, flattened to two scalar cells so neither
     engine allocates an option per load ([pend_r] = -1 means none) *)
  mutable pend_r : int;
  mutable pend_v : int;
  mutable last_load_writes : Reg.Set.t;  (* interlock-mode stall detection *)
  imem : int Word.t array;
  notes : Note.t array;
  dmem : int array;
  pagemap : Pagemap.t;
  mutable interrupt_line : bool;
  mutable fault : fault_kind option;
  stats : Stats.t;
  mutable trace : Mips_obs.Sink.t;
  mutable trace_on : bool;  (* = trace.enabled, flattened for the hot path *)
  mutable plan : Mips_fault.Plan.t;
  mutable inject_on : bool;  (* = Plan.enabled plan, flattened likewise *)
  mutable flaky_armed : bool;  (* next data reference transiently faults *)
  (* previous executed word, for load-use stall attribution by pair *)
  mutable prev_pc : int;
  mutable prev_word : int Word.t;
  (* taken-branch shadow countdown; maintained only while tracing *)
  mutable delay_pending : int;
  (* fast engine: per-word compiled closures, kept in sync with [imem]
     ([stale] marks a slot whose word changed since it was last compiled) *)
  xcode : (t -> unit) array;
  (* fast-engine scratch slots: compute-phase results parked here so the
     commit phase can pick them up without allocating effect records *)
  mutable sc_a : int;  (* resolved physical address (byte ops: phys*4+lane) *)
  mutable sc_b : int;  (* store value, read in the compute phase *)
  mutable sc_v : int;  (* ALU result *)
  mutable sc_taken : bool;  (* conditional-branch decision *)
  mutable sc_target : int;  (* indirect-branch target, read pre-commit *)
  (* guest profiling: [prof_on] is the single hot-path flag test; [prof]
     points at [no_profile] while disabled; [prof_fetch] is the physical
     fetch address the last step resolved (-1 when it never did) *)
  mutable prof_on : bool;
  mutable prof : profile;
  mutable prof_fetch : int;
  (* trace-JIT engine state, armed lazily by the jit run loop (lib/jit) and
     empty otherwise.  [jit_code] holds one compiled-trace closure per entry
     pc (fuel in, fuel remaining out); [jit_len] its straight-line length in
     words; [jit_counts] the per-PC hotness counters; [jit_cover] maps every
     imem address back to the trace entries whose compiled body includes it,
     so a code write can invalidate exactly the traces it affects.
     [jit_nospec] marks branch pcs whose speculation kept failing (one byte
     per imem word; traces recompiled after a blacklisting treat the branch
     as a trace terminator).  [jit_k] and [jit_pv] are fault-recovery
     scratch: the body index reached and the in-flight delayed-load value
     of the trace being executed. *)
  mutable jit_on : bool;
  mutable jit_code : (t -> int -> int) array;
  mutable jit_len : int array;
  mutable jit_counts : int array;
  mutable jit_cover : int list array;
  mutable jit_nospec : Bytes.t;
  mutable jit_k : int;
  mutable jit_pv : int;
}

(** What the external mapping unit latched at the most recent [Page_fault]
    dispatch. *)
and fault_kind =
  | Missing_page of Pagemap.space * int
      (** page-map miss at this global virtual address *)
  | Segment_violation of int
      (** a reference between the two valid segment regions, at this
          process virtual address ("treated as a page fault" by the
          hardware; the OS decides to grow the segment or kill) *)
  | Transient_ref
      (** an injected flaky-memory fault: the data reference never happened
          and the word is restartable as-is — software should simply retry *)

(** Why [step] or [run] stopped making forward progress. *)
type event =
  | Stepped  (** one word executed normally *)
  | Dispatched of Cause.t  (** an exception was accepted; the machine has
                               pushed state and now sits at physical 0 *)

val create : ?config:config -> unit -> t
val config : t -> config
val stats : t -> Stats.t

val trace : t -> Mips_obs.Sink.t
val set_trace : t -> Mips_obs.Sink.t -> unit
(** Attach an event sink.  With the default {!Mips_obs.Sink.null} the
    instrumentation in {!step} reduces to a handful of branch tests and no
    event is ever allocated; with a live sink every fetch, issue, stall,
    memory reference, taken branch, delay-slot execution and exception
    dispatch is reported. *)

val fault_plan : t -> Mips_fault.Plan.t
val set_fault_plan : t -> Mips_fault.Plan.t -> unit
(** Attach a transient-fault plan.  With the default {!Mips_fault.Plan.none}
    the hook in {!step} is a single flag test; with an enabled plan the plan
    is consulted once per step and any decided injection (register/data bit
    flip, spurious interrupt, clean-page drop, flaky-memory arming) is
    applied to the architectural state before the word executes.  An armed
    flaky fault fires on the next data reference: the reference raises a
    transient [Page_fault] ({!fault_kind.Transient_ref}) {e before} touching
    memory, so restarting the word through the EPC chain re-executes it
    exactly.  Attaching a plan disarms any pending flaky fault. *)

(** {2:profiling Guest profiling}

    Per-PC execution profiling for both engines behind a single flag test
    (the same pattern as the trace and fault hooks).  The buffers are
    updated from {!Stats} deltas after each step — profiling never writes
    the statistics, so a profiled run's {!Stats} are byte-identical to an
    unprofiled one's, and the buffer totals reconcile exactly:
    sum(pr_counts) = words, sum(pr_stalls) = stall cycles, and
    sum(pr_counts) + sum(pr_stalls) + pr_other_cycles = cycles.  The
    buffers are not part of the architectural state: checkpoints do not
    carry them. *)

val set_profiling : t -> bool -> unit
(** Arm (with fresh buffers) or disarm profiling. *)

val profile : t -> profile option
(** The live buffers while profiling is armed. *)

(** {2 Architectural state} *)

val get_reg : t -> Reg.t -> Word32.t
val set_reg : t -> Reg.t -> Word32.t -> unit
val surprise : t -> Surprise.t
val set_surprise : t -> Surprise.t -> unit
val segmap : t -> Segmap.t
val set_segmap : t -> Segmap.t -> unit
val pagemap : t -> Pagemap.t
val epc : t -> int -> int
val set_epc : t -> int -> int -> unit

val pc : t -> int
(** Current instruction address (head of the three-deep chain). *)

val pc_chain : t -> int * int * int
val set_pc_chain : t -> int * int * int -> unit

val set_pc : t -> int -> unit
(** Reset the chain to sequential flow from the given address. *)

val set_interrupt : t -> bool -> unit
(** Drive the single external interrupt line. *)

val interrupt_pending : t -> bool

(** {2 Physical memory} *)

val read_code : t -> int -> int Word.t
val write_code : t -> int -> int Word.t -> unit
val read_note : t -> int -> Note.t
val write_note : t -> int -> Note.t -> unit
val read_data : t -> int -> Word32.t
(** Physical word read (word index into data memory). *)

val write_data : t -> int -> Word32.t -> unit

val load_program : ?at:int -> ?data_at:int -> t -> Program.t -> unit
(** Copy a program image into physical memory ([at] = code origin,
    [data_at] = data origin, both default 0) and point the PC chain at its
    entry.  The caller chooses privilege/mapping via {!set_surprise}. *)

(** {2 Execution} *)

val step : t -> event
(** Execute one instruction word (or accept a pending interrupt). *)

val run : ?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool
(** [run t handler] steps until the handler (called on every dispatched
    exception) answers [`Halt], or [fuel] (default 10 million) words have
    executed.  On [`Resume] the machine performs the return-from-exception:
    restores the surprise register and the saved PC chain (the handler may
    have redirected the EPCs first).  Returns [true] when halted by the
    handler, [false] when out of fuel (which also sets
    {!Stats.t.fuel_exhausted}).

    This is the {e hosted} mode used by tests and analyses; the full machine
    -level dispatch path (kernel code at address 0) is exercised by the OS
    library instead. *)

(** {2 Fast engine}

    A second execution engine over the same machine state.  Each instruction
    word is lowered once ({!Predecode.lower}) and specialized into a closure
    the first time it executes; subsequent executions skip all per-cycle
    decode work (piece projection, read/write set construction, statistics
    classification).  Self-modifying code is handled by invalidation:
    {!write_code} and {!load_program} mark the touched slots for
    recompilation.

    {b Equivalence contract}: for any program and any machine configuration,
    running under the fast engine must leave registers, data memory, the PC
    chain, EPCs, the surprise register and every {!Stats.t} counter —
    including float [weighted_cycles], per-pair stall attribution and
    exception tallies — bit-identical to the reference {!step} loop.  The
    fast path only runs when tracing, fault injection, an armed flaky
    reference and the interrupt line are all quiet; any of them arming makes
    {!step_fast} delegate that cycle to {!step}, so the engines interleave
    cycle-for-cycle and observability never changes results. *)

val step_fast : t -> event
(** Execute one word via the predecoded closure cache, or — when any
    observer/injector is armed — via the reference {!step}. *)

val run_fast : ?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool
(** As {!run}, but stepping with {!step_fast}. *)

type engine = Ref | Fast | Jit

val engine_name : engine -> string
val engine_of_string : string -> engine option

val stepper : engine -> t -> event
(** The step function an engine uses at single-step granularity:
    [stepper Ref == step]; [Fast] and [Jit] both step with {!step_fast}
    (trace dispatch only exists at whole-run granularity, and the fast
    engine is the jit loop's own fallback, so the state evolution is
    identical). *)

val run_engine :
  ?fuel:int -> engine:engine -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool
(** Run under the named engine.  [Jit] requires the trace compiler to have
    been linked and installed ([Mips_jit.install]); requesting it without
    fails loudly rather than silently running a slower engine. *)

val faulted : t -> fault_kind option

val faulted_addr : t -> (Pagemap.space * int) option
(** The page-miss address, when the latest fault was one. *)

(** {2 Checkpoint support}

    The execution state that the architectural accessors above do not
    reach: the delayed-load slot, the interlock stall-detection set, the
    byte-select register, the latched fault kind, the armed flaky-memory
    flag, the previous-word attribution state and the traced delay-slot
    countdown.  Together with registers, PC chain, EPCs, surprise, segment
    map, page map, data memory and {!Stats.t}, this makes a machine
    restorable bit-for-bit. *)

type pipeline_state = {
  ps_byte_select : int;
  ps_pending : (int * int) option;  (** load landing one word late *)
  ps_last_load_writes : int;  (** 16-bit register-set mask *)
  ps_fault : fault_kind option;
  ps_flaky_armed : bool;
  ps_prev_pc : int;
  ps_delay_pending : int;
}

val pipeline_state : t -> pipeline_state

val set_pipeline_state : t -> pipeline_state -> unit
(** Restore the hidden execution state.  The previous-word text is
    re-derived from instruction memory at [ps_prev_pc], so code must be
    reloaded before this is called.  {!set_fault_plan} disarms the flaky
    flag — attach the plan {e before} restoring pipeline state.  The jit
    trace cache is {e not} part of the restorable state: it is a derived
    cache, rebuilt from hotness counters after a restore. *)

(** {2 Engine internals}

    Shared machinery between the predecoded fast engine (this module) and
    the trace compiler ([lib/jit]).  Nothing here is meant for ordinary
    clients. *)

exception Fault of Cause.t * int
(** A fault detected during the compute phase of a word.  The engines catch
    it and route it through {!dispatch}; the faulting word contributes no
    cycle. *)

exception Trap_dispatch of int
(** A [Trap] reached during the compute phase.  Unlike {!Fault}, the trap
    word's cycle has already been counted when this is raised. *)

val translate_word : t -> Pagemap.space -> write:bool -> int -> int
(** Virtual-to-physical word translation under the current privilege and
    mapping state; raises {!Fault} (latching {!fault_kind}) on misses. *)

val data_bounds_check : t -> int -> unit
(** Raises [Fault (Illegal, 1)] when the physical word is out of range. *)

val commit_pending : t -> unit
(** Land the delayed-load latch ([pend_r]/[pend_v]) into the register file. *)

val dispatch : t -> Cause.t -> int -> epcs:int * int * int -> event
(** Accept an exception: commit the pending load, save the given chain into
    the EPCs, push the surprise register, redirect to physical 0, count the
    exception and emit the trace event.  Always returns [Dispatched]. *)

(** Resolved ALU piece: destination picked apart from the value computation. *)
type alu_exec =
  | AXnone
  | AXreg of int * (t -> int)  (** destination register, value *)
  | AXspecial of Alu.special * (t -> int)
  | AXrfe

(** Resolved memory piece.  The [t -> int] computes the resolved physical
    address at compute time (byte variants encode [(phys lsl 2) lor lane]);
    faults raise from inside it. *)
type mem_exec =
  | MXnone
  | MXlimm of int * int  (** destination register, constant *)
  | MXload_w of int * (t -> int)
  | MXload_b of int * (t -> int)
  | MXstore_w of int * (t -> int)  (** source register, address *)
  | MXstore_b of int * (t -> int)

(** Resolved branch piece.  Targets of indirect branches are register reads
    and must happen at compute time (pre-commit); direct targets are
    immediate. *)
type br_exec =
  | BXnone
  | BXcbr of (t -> bool) * int
  | BXjump of int
  | BXjal of int * int  (** target, link register *)
  | BXjind of int  (** target register *)
  | BXjalind of int * int  (** target register, link register *)
  | BXtrap of int

val compile_alu : Alu.t -> alu_exec
val compile_mem : config -> Mem.t option -> mem_exec
val compile_branch : int Branch.t option -> br_exec

(** {2 Jit hooks}

    The trace compiler lives in [lib/jit] (which depends on this module);
    these are its attachment points. *)

val jit_arm : t -> unit
(** Allocate the per-machine trace-cache arrays ([jit_code] and friends)
    and set [jit_on], making {!write_code}/{!write_note} invalidate covered
    traces from then on.  Idempotent. *)

val jit_stale : t -> int -> int
(** The empty-slot sentinel for [jit_code]; recognized with [==]. *)

val jit_invalidate : t -> int -> unit
(** Discard every compiled trace whose body covers the given address. *)

val jit_reset : t -> unit
(** Discard all traces and hotness counters (program (re)load). *)

val set_jit_runner :
  (?fuel:int -> t -> (t -> Cause.t -> [ `Resume | `Halt ]) -> bool) -> unit
(** Register the whole-run jit loop that {!run_engine} dispatches [Jit] to. *)
