(** Execution statistics.

    The simulator tallies everything the paper's evaluation needs:
    cycle counts (with interlock stalls when the hardware-interlock variant
    runs), the memory-bandwidth utilisation behind the free-memory-cycle
    claim of Section 3.1, and the data-reference patterns by access size and
    data kind behind Tables 7 and 8.

    Interlock-mode stalls are additionally attributed to the
    (producer, consumer) instruction pair that caused them — the raw
    material of [mipsc profile]'s "top stall-causing pairs" table. *)

type ref_class = {
  mutable loads : int;
  mutable stores : int;
}

type t = {
  mutable cycles : int;  (** instruction issue slots, including stalls *)
  mutable stall_cycles : int;  (** interlock-mode stalls only *)
  mutable load_use_stall_cycles : int;
      (** stalls where a load's consumer waited a cycle *)
  mutable branch_stall_cycles : int;
      (** stalls paid for squashed branch-delay slots *)
  mutable words : int;  (** instruction words executed *)
  mutable nops : int;  (** words that were pure no-ops *)
  mutable alu_pieces : int;
  mutable mem_pieces : int;
  mutable branch_pieces : int;
  mutable packed_words : int;  (** words carrying two pieces *)
  mutable branches_taken : int;
  mutable mem_busy_cycles : int;  (** words that made a data-memory reference *)
  mutable free_cycles : int;  (** words that left the data port idle *)
  weighted : float array;
      (** single-cell accumulator for cycles weighted by the byte-addressed
          fetch-overhead factor (equals [cycles] on the word-addressed
          machine); a flat float array so the per-cycle accumulation does not
          box — read it through {!weighted_cycles} *)
  mutable exceptions : (Cause.t * int) list;  (** per-cause counters *)
  mutable synthetic_refs : int;
      (** machine-artifact references (the extra read in a byte store's
          read-modify-write), excluded from the logical classes below *)
  mutable fuel_exhausted : bool;
      (** set by {!Cpu.run} when it stopped because the fuel budget ran out
          rather than because the handler halted the machine *)
  word_refs : ref_class;  (** word-sized, non-character references *)
  word_char_refs : ref_class;  (** word-sized references to character data *)
  byte_refs : ref_class;  (** byte-sized, non-character references *)
  byte_char_refs : ref_class;  (** byte-sized references to character data *)
  stall_pairs : (int * int, int) Hashtbl.t;
      (** (producer pc, consumer pc) -> load-use stalls charged to the pair *)
}

val create : unit -> t

val zero : unit -> t
(** The identity of {!merge}: a fresh, empty record. *)

val merge : t -> t -> t
(** Combine two statistics records into a fresh one, leaving both arguments
    untouched: integer and float fields add, [fuel_exhausted] ors, and the
    exception and stall-pair tables union their counts.  Associative, with
    {!zero} as identity, on every observable view — which is what lets
    per-program statistics computed on worker domains be folded in corpus
    order into the same totals a serial sweep produces. *)

val count_exception : t -> Cause.t -> unit
val exception_count : t -> Cause.t -> int

val exceptions_sorted : t -> (Cause.t * int) list
(** Per-cause counts, most frequent first (ties by cause order). *)

val record_stall_pair : t -> producer_pc:int -> consumer_pc:int -> unit
(** Charge one load-use stall cycle to an instruction pair. *)

val stall_pairs : t -> ((int * int) * int) list
(** ((producer pc, consumer pc), stalls), most stalls first. *)

val count_ref : t -> load:bool -> Mips_isa.Note.t -> unit
(** Classify one data reference by the compiler's annotation. *)

val total_loads : t -> int
val total_stores : t -> int

val weighted_cycles : t -> float
(** [weighted.(0)], the weighted cycle count. *)

val free_cycle_fraction : t -> float
(** Fraction of issue slots with an idle data-memory port — the bandwidth
    available "for DMA, I/O or cache write-backs". *)

val packed_word_fraction : t -> float
(** Fraction of executed words that carried two pieces. *)

val to_json : t -> Mips_obs.Json.t
(** Machine-readable form of every counter above, including the sorted
    exception table, the reference classes, and the stall-pair table —
    what [mipsc run --stats-json] emits. *)

val pp : Format.formatter -> t -> unit
