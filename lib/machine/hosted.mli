(** Hosted execution: run a program with monitor calls served by the host.

    This is the light-weight way to execute compiled programs — the
    exception dispatch is still fully architectural (surprise push, EPC
    save), but the handler is an OCaml function standing in for the kernel.
    The full machine-resident kernel lives in the OS library. *)

type result = {
  halted : bool;  (** false when the fuel ran out *)
  exit_status : int option;  (** Some s after an [exit] monitor call *)
  output : string;  (** everything written via putchar/putint/putstr *)
  fault : (Cause.t * int) option;
      (** set when execution was aborted by a non-trap exception
          (cause, cause-detail) *)
  retries : int;
      (** injected transient memory faults that were restarted through the
          dispatch path (always 0 without a fault plan) *)
}

val eof_char : int
(** Value returned by the [getchar] monitor call at end of input (255 —
    chosen so the marker survives both word- and byte-sized character
    variables). *)

type host_state = {
  h_output : string;  (** output accumulated so far *)
  h_in_pos : int;  (** input cursor *)
  h_retries : int;
  h_fuel_left : int;
}
(** The hosted loop's own state, everything a checkpoint must carry beyond
    the machine itself.  Captured at chunk boundaries (see [checkpoint]
    below) and fed back through [resume]. *)

val run :
  ?fuel:int ->
  ?input:string ->
  ?on_unhandled:[ `Abort | `Ignore ] ->
  ?engine:Cpu.engine ->
  ?resume:host_state ->
  ?checkpoint:int * (host_state -> unit) ->
  Cpu.t ->
  result
(** Run the loaded program to completion.  Monitor calls are served from
    [input] (for [getchar]) and into the result's [output].  Injected
    transient memory faults are retried (counted in [retries]); interrupts
    are acknowledged and resumed.  Other non-trap exceptions abort the run
    and are reported in [fault] (with [`Abort], the default) or resumed
    past (with [`Ignore], which skips the offending instruction — for
    fault-injection tests).  [engine] selects the execution engine
    (default {!Cpu.Ref}); {!Cpu.Fast} must be observationally identical.

    [checkpoint = (every, save)] runs in chunks of [every] steps and calls
    [save] at each interior boundary with the live host state — the caller
    snapshots the machine in the same callback.  The step sequence, final
    result and statistics (including [fuel_exhausted]) are identical to an
    unchunked run with the same total fuel.  [resume] rewinds the loop
    state to a captured boundary: the caller restores the machine, passes
    the saved [host_state], and gives [fuel = h_fuel_left]; the completed
    run is then bit-identical to one that was never interrupted. *)

val run_program :
  ?fuel:int ->
  ?input:string ->
  ?config:Cpu.config ->
  ?engine:Cpu.engine ->
  Program.t ->
  result
(** Create a machine, load the image, and {!run} it in kernel mode with
    mapping off. *)

val run_program_on :
  ?fuel:int -> ?input:string -> ?engine:Cpu.engine -> Cpu.t -> Program.t -> result
(** Load the image into an existing machine (so the caller can inspect
    statistics afterwards) and {!run} it. *)
