open Mips_isa

exception Undefined_label of string
exception Duplicate_label of string

type slot = { labels : string list; sw : Sblock.sword }

let flatten ~pad_hazards (sblocks : Sblock.t array) =
  let out = ref [] in
  let pending = ref [] in
  let prev : Sblock.sword option ref = ref None in
  let push_word (sw : Sblock.sword) =
    (match !prev with
    | Some p
      when pad_hazards
           && Hazard.load_use_conflict ~earlier:p.Sblock.word
                ~later:sw.Sblock.word ->
        out := { labels = []; sw = Sblock.nop } :: !out
    | _ -> ());
    out := { labels = List.rev !pending; sw } :: !out;
    pending := [];
    prev := Some sw
  in
  let push_label l = pending := l :: !pending in
  Array.iter
    (fun (sb : Sblock.t) ->
      List.iter push_label sb.Sblock.labels;
      let mid = sb.Sblock.mid_labels in
      List.iteri
        (fun idx sw ->
          List.iter (fun (o, l) -> if o = idx then push_label l) mid;
          push_word sw)
        sb.Sblock.body;
      let body_len = List.length sb.Sblock.body in
      List.iter (fun (o, l) -> if o >= body_len then push_label l) mid;
      (match sb.Sblock.term with
      | None -> ()
      | Some (br, note) -> push_word (Sblock.of_word ~note (Word.B br)));
      List.iter push_word sb.Sblock.slots)
    sblocks;
  (* trailing labels (e.g. an end label) attach to a final no-op *)
  if !pending <> [] then
    out := { labels = List.rev !pending; sw = Sblock.nop } :: !out;
  List.rev !out

let assemble ?(pad_hazards = true) (p : Asm.program) sblocks =
  let slots = flatten ~pad_hazards sblocks in
  let table = Hashtbl.create 64 in
  List.iteri
    (fun addr s ->
      List.iter
        (fun l ->
          if Hashtbl.mem table l then raise (Duplicate_label l);
          Hashtbl.add table l addr)
        s.labels)
    slots;
  let resolve l =
    match Hashtbl.find_opt table l with
    | Some a -> a
    | None -> raise (Undefined_label l)
  in
  let code =
    Array.of_list (List.map (fun s -> Word.map resolve s.sw.Sblock.word) slots)
  in
  let notes = Array.of_list (List.map (fun s -> s.sw.Sblock.note) slots) in
  let symbols = Hashtbl.fold (fun l a acc -> (l, a) :: acc) table [] in
  Mips_machine.Program.make ~notes ~data:p.Asm.data ~data_words:p.Asm.data_words
    ~symbols ~entry:(resolve p.Asm.entry) code

let verify_hazard_free (p : Mips_machine.Program.t) =
  Hazard.sequence_hazards p.Mips_machine.Program.code
