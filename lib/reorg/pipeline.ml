open Mips_isa

type level = Naive | Reorganized | Packed | Delay_filled

let all_levels = [ Naive; Reorganized; Packed; Delay_filled ]

let level_name = function
  | Naive -> "none (no-ops inserted)"
  | Reorganized -> "reorganization"
  | Packed -> "packing"
  | Delay_filled -> "branch delay"

let rank = function Naive -> 0 | Reorganized -> 1 | Packed -> 2 | Delay_filled -> 3

let pack_terminator (sb : Sblock.t) =
  (* A synthetic mid-block label at or past the end of the body (created by
     the loop-duplication delay scheme) enters the block just before the
     terminator; absorbing the terminator into the last body word would move
     it before that entry point, so leave such blocks alone. *)
  let body_len = List.length sb.Sblock.body in
  let label_blocks_merge =
    List.exists (fun (o, _) -> o >= body_len) sb.Sblock.mid_labels
  in
  match sb.Sblock.term with
  | Some ((Branch.Cbr _ | Branch.Jump _ | Branch.Jal _) as br, note)
    when not label_blocks_merge ->
      let body, absorbed = Sched.try_pack_terminator sb.Sblock.body (br, note) in
      if absorbed then { sb with Sblock.body; term = None } else sb
  | Some _ | None -> sb

(* the default sink records nothing, so unobserved compiles are safe to run
   concurrently on worker domains *)
let no_metrics = Mips_obs.Metrics.null

let compile_with_stats ?(obs = no_metrics) ?(level = Delay_filled)
    (p : Asm.program) =
  let timed name f = Mips_obs.Metrics.time obs name f in
  let blocks =
    timed "reorg.partition" (fun () -> Array.of_list (Block.partition p.Asm.lines))
  in
  Mips_obs.Metrics.add obs "reorg.blocks" (Array.length blocks);
  let sched (b : Block.t) =
    match level with
    | Naive -> Sched.naive b.Block.body
    | Reorganized | Packed | Delay_filled ->
        Sched.schedule ~pack:(rank level >= rank Packed) b.Block.body
  in
  let sblocks =
    timed "reorg.schedule" (fun () ->
        Array.map
          (fun (b : Block.t) ->
            let slots =
              match b.Block.term with
              | None -> []
              | Some (br, _) -> List.init (Branch.delay br) (fun _ -> Sblock.nop)
            in
            {
              Sblock.labels = b.Block.labels;
              mid_labels = [];
              body = sched b;
              term = b.Block.term;
              slots;
            })
          blocks)
  in
  let sblocks, dstats =
    if rank level >= rank Delay_filled then begin
      let s, st = timed "reorg.delay_fill" (fun () -> Delay.fill ~blocks sblocks) in
      Mips_obs.Metrics.add obs "reorg.delay.scheme1_moved_before" st.Delay.scheme1;
      Mips_obs.Metrics.add obs "reorg.delay.scheme2_loop_dup" st.Delay.scheme2;
      Mips_obs.Metrics.add obs "reorg.delay.scheme3_fall_through" st.Delay.scheme3;
      Mips_obs.Metrics.add obs "reorg.delay.unfilled" st.Delay.unfilled;
      (s, Some st)
    end
    else (sblocks, None)
  in
  let sblocks =
    if rank level >= rank Packed then
      timed "reorg.pack_terminator" (fun () -> Array.map pack_terminator sblocks)
    else sblocks
  in
  let program = timed "reorg.assemble" (fun () -> Assemble.assemble p sblocks) in
  Mips_obs.Metrics.add obs "reorg.static_words"
    (Mips_machine.Program.static_count program);
  (program, dstats)

let compile ?level p = fst (compile_with_stats ?level p)

let compile_raw (p : Asm.program) =
  let sword_of_item (i : Asm.item) =
    Sblock.of_word ~note:i.Asm.note ~fixed:i.Asm.fixed (Word.of_piece i.Asm.piece)
  in
  let sblocks =
    Array.of_list (Block.partition p.Asm.lines)
    |> Array.map (fun (b : Block.t) ->
           (* delay-slot words must exist: link registers point past them
              (a jal at [a] returns to [a+2]).  The interlock hardware
              squashes them on every taken branch, so they are stall
              cycles, never executed work. *)
           let slots =
             match b.Block.term with
             | None -> []
             | Some (br, _) -> List.init (Branch.delay br) (fun _ -> Sblock.nop)
           in
           {
             Sblock.labels = b.Block.labels;
             mid_labels = [];
             body = List.map sword_of_item b.Block.body;
             term = b.Block.term;
             slots;
           })
  in
  Assemble.assemble ~pad_hazards:false p sblocks
