(** The reorganizer driver, with the cumulative optimization levels of the
    paper's Table 11.

    "This reorganizer performs several major functions: it takes the
    pipeline constraints into account and reorganizes the code to avoid
    interlocks when possible, and otherwise inserts no-ops; it packs
    instruction pieces into one 32-bit word; it assembles instructions." *)

type level =
  | Naive  (** Table 11 "None (no-ops inserted)": program order, one piece
               per word, no-ops wherever the pipeline rules demand *)
  | Reorganized  (** + basic-block scheduling to eliminate no-ops *)
  | Packed  (** + packing two pieces into one instruction word *)
  | Delay_filled  (** + the three branch-delay-slot schemes *)

val all_levels : level list
val level_name : level -> string

val rank : level -> int
(** Stable integer rank of a level (its position in {!all_levels}) — a
    compact cache-key component for callers that memoize per-level
    artifacts. *)

val compile : ?level:level -> Asm.program -> Mips_machine.Program.t
(** Run the postpass at the given level (default [Delay_filled]) and
    assemble.  The result is hazard-free by construction at every level. *)

val compile_with_stats :
  ?obs:Mips_obs.Metrics.t ->
  ?level:level ->
  Asm.program ->
  Mips_machine.Program.t * Delay.stats option
(** Like {!compile}; also returns delay-slot fill statistics when the level
    includes the branch-delay pass.

    When [obs] is given, every pass charges its wall time to a
    ["reorg.*"] timer (partition, schedule, delay_fill, pack_terminator,
    assemble) and the pass statistics land in counters
    (["reorg.blocks"], ["reorg.delay.scheme1_moved_before"], ...,
    ["reorg.static_words"]) — the raw material of [mipsc profile]. *)

val compile_raw : Asm.program -> Mips_machine.Program.t
(** Assemble in raw program order: one piece per word and {e no} load-delay
    no-op padding (delay-slot words are kept, as nops, because link
    registers point past them).  The result is only correct on the
    hardware-interlock comparison machine ({!Mips_machine.Cpu.interlocked_config}),
    where a load stalls its consumer and taken branches squash their slots —
    the conventional-machine baseline whose stall cycles [mipsc profile]
    attributes to instruction pairs. *)
