(** Final assembly: flatten scheduled blocks, insert the last required
    no-ops, resolve labels, and produce a loadable program image.

    A global straight-line peephole inserts a no-op wherever two adjacent
    words still violate the load-delay rule (this covers fall-through block
    boundaries, which the per-block passes cannot see).  Branch words never
    load, so the pass can never separate a branch from its delay slots. *)

exception Undefined_label of string
exception Duplicate_label of string

val assemble :
  ?pad_hazards:bool -> Asm.program -> Sblock.t array -> Mips_machine.Program.t
(** [pad_hazards] (default true) controls the global load-delay peephole.
    Pass [false] only for code bound for the hardware-interlock comparison
    machine, which stalls through hazards instead of executing no-ops. *)

val verify_hazard_free : Mips_machine.Program.t -> (int * Mips_isa.Reg.t) list
(** Residual straight-line load-use violations (should be empty for any
    assembled program) — used as a test oracle. *)
