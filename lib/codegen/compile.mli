(** The full compilation driver: source text to loadable program image.

    Pipeline: {!Mips_frontend.Parser} → {!Mips_frontend.Semant} →
    {!Mips_ir.Irgen} → {!Regalloc} → {!Emit} → {!Mips_reorg.Pipeline}
    (scheduling, packing, branch-delay filling, assembly). *)

open Mips_ir

val to_asm : ?config:Config.t -> string -> Mips_reorg.Asm.program
(** Compile source down to symbolic assembly (before the reorganizer). *)

val to_asm_checked :
  ?config:Config.t -> Mips_frontend.Tast.program -> Mips_reorg.Asm.program
(** Same, from an already-checked program. *)

val compile :
  ?config:Config.t ->
  ?level:Mips_reorg.Pipeline.level ->
  string ->
  Mips_machine.Program.t
(** Compile and assemble at the given postpass level (default: all
    optimizations). *)

val compile_profiled :
  ?config:Config.t ->
  ?level:Mips_reorg.Pipeline.level ->
  obs:Mips_obs.Metrics.t ->
  string ->
  Mips_machine.Program.t
(** Like {!compile}, charging per-phase wall time and pass statistics to
    the registry: ["compile.frontend"] (lex/parse/check),
    ["compile.codegen"] (lowering, register allocation, emission) and the
    reorganizer's ["reorg.*"] entries — what [mipsc profile] reports. *)

val run :
  ?config:Config.t ->
  ?level:Mips_reorg.Pipeline.level ->
  ?fuel:int ->
  ?input:string ->
  string ->
  Mips_machine.Hosted.result
(** Compile and execute on a fresh machine (word- or byte-addressed to
    match [config]). *)

val run_with_machine :
  ?config:Config.t ->
  ?level:Mips_reorg.Pipeline.level ->
  ?fuel:int ->
  ?input:string ->
  ?trace:Mips_obs.Sink.t ->
  ?fault_plan:Mips_fault.Plan.t ->
  ?engine:Mips_machine.Cpu.engine ->
  string ->
  Mips_machine.Hosted.result * Mips_machine.Cpu.t
(** Like {!run}, also returning the machine for statistics inspection.
    [trace] attaches an event sink, [fault_plan] a seeded transient-fault
    plan, to the machine before execution; [engine] selects the reference
    or the predecoded fast execution engine (default reference). *)

val machine_config : Config.t -> Mips_machine.Cpu.config
(** The simulator configuration matching a code-generation configuration. *)
