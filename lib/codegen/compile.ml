open Mips_ir

let to_asm_checked ?(config = Config.default) tast =
  Emit.emit_program config (Irgen.lower config tast)

let to_asm ?config src = to_asm_checked ?config (Mips_frontend.Semant.check_string src)

let compile ?config ?level src =
  Mips_reorg.Pipeline.compile ?level (to_asm ?config src)

let compile_profiled ?(config = Config.default) ?level ~obs src =
  let timed name f = Mips_obs.Metrics.time obs name f in
  let tast =
    timed "compile.frontend" (fun () -> Mips_frontend.Semant.check_string src)
  in
  let asm = timed "compile.codegen" (fun () -> to_asm_checked ~config tast) in
  let program, _ = Mips_reorg.Pipeline.compile_with_stats ~obs ?level asm in
  program

let machine_config (cfg : Config.t) =
  match cfg.Config.target with
  | Config.Word_addressed -> Mips_machine.Cpu.default_config
  | Config.Byte_addressed -> Mips_machine.Cpu.byte_addressed_config

let run_with_machine ?(config = Config.default) ?level ?fuel ?input ?trace
    ?fault_plan ?engine src =
  let program = compile ~config ?level src in
  let cpu = Mips_machine.Cpu.create ~config:(machine_config config) () in
  (match trace with
  | Some sink -> Mips_machine.Cpu.set_trace cpu sink
  | None -> ());
  (match fault_plan with
  | Some plan -> Mips_machine.Cpu.set_fault_plan cpu plan
  | None -> ());
  let res = Mips_machine.Hosted.run_program_on ?fuel ?input ?engine cpu program in
  (res, cpu)

let run ?config ?level ?fuel ?input src =
  fst (run_with_machine ?config ?level ?fuel ?input src)
