type t = { fd : Unix.file_descr; mutable closed : bool }

let connect path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot create socket: %s" (Unix.error_message e))
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { fd; closed = false }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s" path
               (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then Error (Frame.Io_error "connection is closed")
  else
    match Frame.write t.fd (Protocol.encode_request req) with
    | Error e -> Error e
    | Ok () -> (
        match Frame.read t.fd with
        | Error e -> Error e
        | Ok payload -> Protocol.decode_response payload)

let with_connection path f =
  match connect path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let wait_ready ?(timeout_s = 10.) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    let ok =
      match connect path with
      | Error _ -> false
      | Ok t ->
          Fun.protect ~finally:(fun () -> close t) @@ fun () ->
          (match request t Protocol.Ping with
          | Ok Protocol.Pong -> true
          | _ -> false)
    in
    if ok then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()
