type t = { fd : Unix.file_descr; mutable closed : bool }

let connect path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot create socket: %s" (Unix.error_message e))
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { fd; closed = false }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s" path
               (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Arm the kernel's socket timers: a peer that stalls mid-frame unblocks
   the read with EAGAIN, which Frame maps to the typed [Timed_out].  A
   non-positive budget still arms a (minimal) timer — "no time left" must
   fail fast, not hang. *)
let set_deadline t seconds =
  let s = Float.max 0.001 seconds in
  try
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO s;
    Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO s
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let request t req =
  if t.closed then Error (Frame.Io_error "connection is closed")
  else
    match Frame.write t.fd (Protocol.encode_request req) with
    | Error e -> Error e
    | Ok () -> (
        match Frame.read t.fd with
        | Error e -> Error e
        | Ok payload -> Protocol.decode_response payload)

let with_connection path f =
  match connect path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* --- idempotent retrying call ------------------------------------------------ *)

type policy = {
  attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  deadline_s : float;
}

let default_policy =
  { attempts = 10; base_backoff_s = 0.05; max_backoff_s = 2.0;
    deadline_s = 60. }

type failure =
  | Connect of string
  | Transport of Frame.error
  | Garbled of string

type call_error = {
  failure : failure;
  call_attempts : int;
  elapsed_s : float;
  gave_up : [ `Deadline | `Attempts ];
}

let failure_to_string = function
  | Connect m -> m
  | Transport e -> Frame.error_to_string e
  | Garbled detail -> "request garbled in flight: " ^ detail

let call_error_to_string e =
  Printf.sprintf "%s after %d attempt%s in %.2fs (%s)"
    (failure_to_string e.failure) e.call_attempts
    (if e.call_attempts = 1 then "" else "s")
    e.elapsed_s
    (match e.gave_up with
    | `Deadline -> "deadline exceeded"
    | `Attempts -> "attempt budget exhausted")

(* Request IDs are minted client-side: pid + monotonic counter + wall
   clock, digested to a 32-char hex name ([Protocol.valid_name]).  Two
   retries of one logical request share the ID; two logical requests never
   do. *)
let fresh_id =
  let counter = Atomic.make 0 in
  fun () ->
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%d.%d.%.9f" (Unix.getpid ())
            (Atomic.fetch_and_add counter 1)
            (Unix.gettimeofday ())))

let call ?(policy = default_policy) ?id ?(metrics = Mips_obs.Metrics.null)
    path req =
  let req =
    if Protocol.mutating req then
      let id = match id with Some id -> id | None -> fresh_id () in
      Protocol.Tagged { id; req }
    else req
  in
  (* jitter decorrelates concurrent clients retrying the same outage; the
     stream is seeded from the request bytes so a test with a pinned ID
     sees a reproducible backoff schedule *)
  let jitter =
    Mips_fault.Rng.create (Hashtbl.hash (Protocol.encode_request req))
  in
  let started = Unix.gettimeofday () in
  let deadline = started +. policy.deadline_s in
  let fail k failure gave_up =
    Mips_obs.Metrics.incr metrics "client.call_failed";
    Error
      { failure; call_attempts = k;
        elapsed_s = Unix.gettimeofday () -. started; gave_up }
  in
  let rec attempt k last_failure =
    if Unix.gettimeofday () >= deadline then
      fail (k - 1) last_failure `Deadline
    else
      let outcome =
        match connect path with
        | Error msg -> Error (Connect msg)
        | Ok t -> (
            Fun.protect ~finally:(fun () -> close t) @@ fun () ->
            set_deadline t (deadline -. Unix.gettimeofday ());
            match request t req with
            | Error e -> Error (Transport e)
            | Ok (Protocol.Err (Protocol.Garbled, detail)) ->
                (* the server's frame layer rejected what arrived: our
                   request was damaged in flight, never decoded — the one
                   typed rejection that is a wire fault, not an answer *)
                Error (Garbled detail)
            | Ok resp -> Ok resp)
      in
      match outcome with
      | Ok resp -> Ok resp
      | Error failure ->
          if k >= policy.attempts then fail k failure `Attempts
          else begin
            Mips_obs.Metrics.incr metrics "client.retries";
            let cap =
              Float.min policy.max_backoff_s
                (policy.base_backoff_s *. (2. ** float_of_int (k - 1)))
            in
            let b = cap *. (0.5 +. (Mips_fault.Rng.float jitter *. 0.5)) in
            let sleep =
              Float.min b (Float.max 0. (deadline -. Unix.gettimeofday ()))
            in
            Mips_obs.Metrics.observe metrics "client.backoff_seconds" sleep;
            if sleep > 0. then Unix.sleepf sleep;
            attempt (k + 1) failure
          end
  in
  attempt 1 (Transport Frame.Timed_out)

let wait_ready ?(timeout_s = 10.) path =
  let started = Unix.gettimeofday () in
  let deadline = started +. timeout_s in
  let rec poll () =
    let ok =
      match connect path with
      | Error _ -> false
      | Ok t ->
          Fun.protect ~finally:(fun () -> close t) @@ fun () ->
          (* a daemon that accepts but never answers must not park the
             poll past its deadline *)
          set_deadline t (Float.max 0.05 (deadline -. Unix.gettimeofday ()));
          (match request t Protocol.Ping with
          | Ok Protocol.Pong -> true
          | _ -> false)
    in
    if ok then Ok ()
    else if Unix.gettimeofday () >= deadline then
      Error (`Timed_out (Unix.gettimeofday () -. started))
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()
