(** Per-tenant bookkeeping: quotas, in-flight counts and circuit breakers.

    Every billable request passes {!admit} before touching the executor
    and {!release} after its response is built.  Admission enforces the
    tenant registry bound ([max_tenants]), the per-tenant concurrency
    quota, and the tenant's circuit breaker; the fuel/memory/deadline
    quotas in {!quota} are enforced {e during} execution by the server's
    watchdog callbacks and reported back here as failures.

    The breaker is per tenant, so one poison tenant is quarantined without
    degrading its neighbors: [breaker_threshold] consecutive failures open
    it and requests are refused with [Quarantined] for
    [breaker_cooldown_s]; after the cooldown one probe request is let
    through (half-open) — success closes the breaker, failure re-opens it.

    All entry points are safe from any thread or domain. *)

type quota = {
  max_fuel : int;  (** machine-step budget per run request *)
  max_output : int;  (** bytes of monitor output per run request *)
  max_concurrent : int;  (** in-flight requests per tenant *)
  max_wall_s : float;  (** wall-clock watchdog per request *)
  breaker_threshold : int;  (** consecutive failures that open the breaker *)
  breaker_cooldown_s : float;
}

val default_quota : quota
(** 500M steps, 4 MB output, 4 concurrent, 120 s wall, breaker at 5
    failures with a 30 s cooldown. *)

type t

val create : ?quota:quota -> max_tenants:int -> unit -> t

val quota : t -> quota

val admit :
  t -> now:float -> string -> (unit, Protocol.reject * string) result
(** Bill one in-flight request to the tenant, or refuse with a typed
    reject ([Too_many_tenants], [Quota "concurrency"], [Quarantined]). *)

val release : t -> now:float -> failed:bool -> string -> unit
(** Return the in-flight slot and feed the breaker: [failed] counts toward
    quarantine, success resets the failure run and closes a half-open
    breaker. *)

val json : t -> now:float -> Mips_obs.Json.t
(** Per-tenant counters and breaker states, sorted by name. *)
