(** Blocking client for the [mipsd] socket protocol.

    One connection, synchronous request/response: {!request} writes one
    frame and blocks until the reply frame arrives.  All failures are
    values — connect errors are strings, protocol failures are the typed
    {!Frame.error}s — so callers (the [mipsd] CLI, [mipsc --remote], the
    bench load generator) can map each one to its own exit code.

    {!call} is the production entry point: it wraps mutating requests in
    the {!Protocol.Tagged} idempotency envelope, arms kernel receive
    deadlines so a stalled peer cannot hang it, and retries transport
    failures with capped exponential backoff and jitter.  Together with
    the server's replay window this makes blind retry safe: a request
    whose response frame was lost to the wire is answered from the
    recorded first execution, never executed twice. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix socket. *)

val request : t -> Protocol.request -> (Protocol.response, Frame.error) result
(** Send one request and block for the response.  After an error the
    connection should be closed: frame sync may be lost. *)

val close : t -> unit
(** Idempotent. *)

val set_deadline : t -> float -> unit
(** Arm [SO_RCVTIMEO]/[SO_SNDTIMEO] on the connection: a read or write
    stalled past the budget fails with the typed {!Frame.Timed_out}
    instead of blocking forever.  Clamped to a minimal positive value so
    "no time left" fails fast rather than disarming the timer. *)

val with_connection :
  string -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, close (also on exception). *)

(** {2 Idempotent retrying calls} *)

type policy = {
  attempts : int;  (** maximum connect+request attempts *)
  base_backoff_s : float;  (** first retry delay *)
  max_backoff_s : float;  (** exponential backoff cap *)
  deadline_s : float;  (** total wall-clock budget across all attempts *)
}

val default_policy : policy
(** 10 attempts, 50 ms base doubling to a 2 s cap, 60 s deadline. *)

(** The last thing that went wrong on the wire.  [Garbled] is the
    server-reported flavour: the frame arrived but failed its digest or
    header checks ({!Protocol.Garbled}), so the request was never
    decoded. *)
type failure =
  | Connect of string
  | Transport of Frame.error
  | Garbled of string

(** Why {!call} gave up, with the evidence: the last {!failure}, how many
    attempts were made, and how long was spent. *)
type call_error = {
  failure : failure;
  call_attempts : int;
  elapsed_s : float;
  gave_up : [ `Deadline | `Attempts ];
}

val failure_to_string : failure -> string
val call_error_to_string : call_error -> string

val call :
  ?policy:policy ->
  ?id:string ->
  ?metrics:Mips_obs.Metrics.t ->
  string ->
  Protocol.request ->
  (Protocol.response, call_error) result
(** [call path req] sends [req] to the daemon at [path], retrying
    transport failures (connect refusals, torn/corrupt/stalled frames)
    under [policy] until a response frame arrives or the budget runs out.

    A {!Protocol.mutating} request is wrapped in {!Protocol.Tagged} with
    [id] (freshly minted when omitted) so every retry carries the same
    request ID and the server deduplicates re-execution.  Typed [Err]
    responses are {e answers}, not failures — shed load ([Overloaded]),
    quota kills and shutdown refusals come back as [Ok (Err _)] exactly as
    with {!request}; only the wire failing triggers a retry.

    [metrics] (default {!Mips_obs.Metrics.null}) receives
    ["client.retries"], ["client.call_failed"] counters and a
    ["client.backoff_seconds"] histogram. *)

val wait_ready :
  ?timeout_s:float -> string -> (unit, [ `Timed_out of float ]) result
(** Poll the socket with [Ping] until the daemon answers [Pong] or the
    timeout (default 10 s) expires — the startup barrier scripts use
    between launching [mipsd serve] and sending load.  Each poll carries a
    receive deadline, so a daemon that accepts connections but never
    answers still yields [`Timed_out elapsed] rather than a hang. *)
