(** Blocking client for the [mipsd] socket protocol.

    One connection, synchronous request/response: {!request} writes one
    frame and blocks until the reply frame arrives.  All failures are
    values — connect errors are strings, protocol failures are the typed
    {!Frame.error}s — so callers (the [mipsd] CLI, [mipsc --remote], the
    bench load generator) can map each one to its own exit code. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix socket. *)

val request : t -> Protocol.request -> (Protocol.response, Frame.error) result
(** Send one request and block for the response.  After an error the
    connection should be closed: frame sync may be lost. *)

val close : t -> unit
(** Idempotent. *)

val with_connection :
  string -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, close (also on exception). *)

val wait_ready : ?timeout_s:float -> string -> bool
(** Poll the socket with [Ping] until the daemon answers [Pong] or the
    timeout (default 10 s) expires — the startup barrier scripts use
    between launching [mipsd serve] and sending load. *)
