(** The [mipsd] server: a long-lived, fault-tolerant, multi-tenant
    simulation service on a Unix socket.

    Robustness is layered end to end:

    - {b Framing}: every connection speaks {!Frame}/{!Protocol}; malformed
      or truncated input yields a typed error response (or a clean close),
      never a crash — the decoder is total.
    - {b Admission control}: compute runs on a fixed pool of worker
      domains behind a bounded queue ({!Admission}); once the pool
      saturates, new work is shed immediately with a typed [Overloaded]
      response rather than queued into unbounded latency.
    - {b Quotas}: each tenant gets fuel/memory/concurrency/wall-clock
      budgets ({!Tenants.quota}).  Fuel and memory are enforced {e during}
      execution by a watchdog callback on the checkpoint-slice boundary —
      the {!Mips_resilience.Supervise.Deadline} discipline — and an
      offender is killed with a typed [Quota] reason; its neighbors'
      responses are byte-identical to solo runs.
    - {b Quarantine}: a per-tenant circuit breaker opens after repeated
      failures, refusing that tenant with [Quarantined] while everyone
      else proceeds at full service.
    - {b Crash recovery}: [run]/[soak] requests naming a session are
      checkpointed to the state directory ({!Mips_resilience.Snapshot}
      containers, written atomically).  A SIGKILL'd daemon restarted on
      the same directory resumes every in-flight checkpointed session and
      completes it {e bit-identically} to an uninterrupted run; finished
      results are journalled and survive restarts until collected.
    - {b Idempotent replay}: a {!Protocol.Tagged} request is deduplicated
      against a bounded per-tenant replay window — a retry of an executed
      request is answered from the recorded response, and a retry racing
      the first delivery coalesces onto it, so the {!Client.call} retry
      loop can resend blindly after any wire fault without double
      execution.
    - {b Journal fsck}: the session journal is checked and repaired
      ({!Journal.fsck}) before recovery reads it — torn writes are healed,
      unrecoverable sessions are quarantined, and the daemon always
      starts.
    - {b Eviction}: finished sessions idle past a deadline are dropped
      from memory (their journalled results remain collectable from disk).
    - {b Clean shutdown}: SIGTERM (or a [Shutdown] request) stops
      admission with typed [Shutting_down] refusals and drains in-flight
      work under a deadline. *)

type config = {
  socket : string;  (** Unix socket path (an existing file is replaced) *)
  jobs : int;  (** worker domains executing admitted requests *)
  queue : int;  (** admitted requests that may wait for a worker *)
  max_tenants : int;
  quota : Tenants.quota;
  state_dir : string option;
      (** session journal + checkpoint directory; [None] disables sessions *)
  checkpoint_every : int;  (** machine steps between session checkpoints *)
  idle_evict_s : float;  (** idle seconds before a finished session leaves
                             memory (journalled sessions only) *)
  drain_s : float;  (** shutdown drain deadline *)
  max_frame : int;  (** request frame payload limit *)
  replay_window : int;
      (** recorded responses kept per tenant for request-ID deduplication;
          the oldest is evicted first *)
  test_crash_after_checkpoints : int option;
      (** test hook: abort a session's job after N checkpoint writes — the
          in-process stand-in for SIGKILL (CI kills the real process) *)
  test_crash_at_op : int option;
      (** test hook: turn journal operation N (counting every journal
          write and removal, across all sessions) into a simulated kill
          just before it lands — the crash-point harness sweeps N to
          visit every write boundary *)
}

val default_config : socket:string -> config
(** 4 jobs, queue 16, 64 tenants, {!Tenants.default_quota}, no state dir,
    checkpoints every 50k steps, eviction after 300 s, 10 s drain,
    {!Frame.default_limit} frames, a 128-entry replay window. *)

type t

val journal_ops : t -> int
(** Journal operations (writes and removals) performed so far — a clean
    run's total bounds the crash-point sweep. *)

val crash_point_fired : t -> bool
(** Whether [test_crash_at_op] has triggered. *)

val start : config -> t
(** Bind the socket, recover journalled sessions from the state directory
    (resubmitting every session without a recorded result — resumed from
    its checkpoint when one exists, re-run from its journalled parameters
    when not), and spawn the accept loop.  Returns immediately.
    @raise Sys_error when the socket cannot be bound or the state
    directory cannot be used. *)

val request_stop : t -> unit
(** Begin shutdown: new billable requests are refused with
    [Shutting_down].  Idempotent; also triggered by a [Shutdown] frame. *)

val stop_requested : t -> bool

val wait_stopped : t -> unit
(** Block until {!request_stop} (or a [Shutdown] frame, or {!stop}). *)

val stop : ?drain:bool -> t -> unit
(** Drain in-flight work (up to [config.drain_s]; [~drain:false] skips the
    grace period), stop the workers, close and unlink the socket. *)

val status_json : t -> Mips_obs.Json.t
(** What a [Status] request returns: admission counters, tenant/breaker
    states, session table, request counters and latency histograms. *)
