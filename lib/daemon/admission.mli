(** Admission control: a fixed pool of worker domains behind a {e bounded}
    queue.

    The daemon's compute all funnels through here.  [jobs] domains execute
    admitted work in parallel; at most [queue] submissions may wait
    {e beyond} the ones already running (so [queue = 0] still admits work
    onto idle workers).  A submission that finds the system full is
    rejected {e immediately} with [`Overloaded] — load is shed with a typed
    answer in bounded time, never parked on an unbounded queue where its
    latency would grow without limit.  This is the service-level twin of the
    {!Mips_par} pool: same fixed fan-out, but long-lived and
    rejection-capable.

    [submit] and [wait] are safe from any thread or domain.  Recovery work
    resubmitted after a crash goes through [submit_unbounded]: it was
    admitted before the daemon died, so it must not be shed by the queue
    bound it already passed once. *)

type t

type stats = {
  running : int;  (** jobs executing right now *)
  waiting : int;  (** jobs admitted and queued *)
  executed : int;  (** jobs completed over the daemon's lifetime *)
  rejected : int;  (** submissions shed with [`Overloaded] *)
}

type 'a ticket
(** A claim on one submitted job's result. *)

val create : jobs:int -> queue:int -> t
(** Spawn [jobs] worker domains (clamped to at least 1) behind a queue of
    capacity [queue] (at least 0). *)

val submit :
  t -> (unit -> 'a) -> ('a ticket, [ `Overloaded | `Shutting_down ]) result
(** Admit a job, or shed it.  Never blocks. *)

val submit_unbounded : t -> (unit -> 'a) -> ('a ticket, [ `Shutting_down ]) result
(** Admit bypassing the queue bound (crash-recovery resubmissions only). *)

val wait : 'a ticket -> ('a, exn) result
(** Block until the job finishes; an exception the job raised comes back
    as [Error] with its original payload. *)

val stats : t -> stats

val drain : t -> deadline_s:float -> bool
(** Stop admitting, then wait up to [deadline_s] for running and queued
    jobs to finish; [false] when the deadline passed with work still in
    flight. *)

val shutdown : t -> unit
(** [drain] with no grace, then join the worker domains.  Queued jobs that
    never ran fail their tickets with [Failure]. *)
