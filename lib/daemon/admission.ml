(* One mutex + condition protect the whole executor: the queue, the
   counters and every ticket slot.  Workers are domains, so admitted jobs
   genuinely run in parallel; submitters are connection threads, and both
   sides share the same lock discipline.  Wake-ups are broadcast — there
   are few enough parties (jobs + waiters) that precision isn't worth a
   second condition variable. *)

type stats = { running : int; waiting : int; executed : int; rejected : int }

type job = Job : (unit -> 'a) * 'a slot -> job
and 'a slot = { mutable result : ('a, exn) result option }

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  jobs : int;
  queue_cap : int;
  mutable running : int;
  mutable executed : int;
  mutable rejected : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a ticket = { owner : t; slot : 'a slot }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.lock
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopping and nothing queued *)
        Mutex.unlock t.lock;
        ()
    | Some (Job (f, slot)) ->
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        let result = try Ok (f ()) with e -> Error e in
        Mutex.lock t.lock;
        slot.result <- Some result;
        t.running <- t.running - 1;
        t.executed <- t.executed + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

let create ~jobs ~queue =
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      jobs = max 1 jobs;
      queue_cap = max 0 queue;
      running = 0;
      executed = 0;
      rejected = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (max 1 jobs) (fun _ -> Domain.spawn (worker t));
  t

let enqueue t ~bounded f =
  locked t (fun () ->
      if t.stopping then Error `Shutting_down
      else if
        (* the bound is on waiting work: [queue_cap] submissions may park
           beyond the ones the workers are already running, so a zero
           capacity still admits onto idle workers *)
        bounded
        && Queue.length t.queue + t.running >= t.queue_cap + t.jobs
      then begin
        t.rejected <- t.rejected + 1;
        Error `Overloaded
      end
      else begin
        let slot = { result = None } in
        Queue.add (Job (f, slot)) t.queue;
        Condition.broadcast t.cond;
        Ok { owner = t; slot }
      end)

let submit t f = enqueue t ~bounded:true f

let submit_unbounded t f =
  match enqueue t ~bounded:false f with
  | Ok _ as ok -> ok
  | Error `Shutting_down -> Error `Shutting_down
  | Error `Overloaded -> assert false

let wait { owner = t; slot } =
  locked t (fun () ->
      let rec go () =
        match slot.result with
        | Some r -> r
        | None ->
            Condition.wait t.cond t.lock;
            go ()
      in
      go ())

let stats t =
  locked t (fun () ->
      {
        running = t.running;
        waiting = Queue.length t.queue;
        executed = t.executed;
        rejected = t.rejected;
      })

let drain t ~deadline_s =
  locked t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.cond);
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec poll () =
    let idle =
      locked t (fun () -> t.running = 0 && Queue.is_empty t.queue)
    in
    if idle then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ()

let shutdown t =
  locked t (fun () ->
      t.stopping <- true;
      (* fail the tickets of jobs that will never run *)
      Queue.iter
        (fun (Job (_, slot)) ->
          slot.result <- Some (Error (Failure "executor shut down")))
        t.queue;
      Queue.clear t.queue;
      Condition.broadcast t.cond);
  List.iter Domain.join t.workers
