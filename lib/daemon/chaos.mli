(** A wire-level fault-injection proxy for [mipsd].

    The proxy listens on its own Unix socket and relays whole frames to
    the real daemon, damaging a seeded fraction of them in flight: single
    bit flips (tripping the frame digest), truncations (a connection cut
    mid-frame), mid-frame stalls (exercising receive deadlines),
    duplicate deliveries (probing the server's replay window) and abrupt
    disconnects (losing a response after the work was done).

    Every fault is one the production stack claims to absorb: a client
    using {!Client.call} against a chaos socket must complete with
    byte-identical results to a clean run, or fail with a typed error —
    never hang, never double-execute.  Randomness is one splitmix64
    stream, so [seed] determines the fault schedule for a serial client.

    Run standalone as [mipsd chaos]. *)

type config = {
  listen : string;  (** socket the proxy serves (replaced if present) *)
  upstream : string;  (** the real daemon's socket *)
  seed : int;
  rate : float;  (** per-frame fault probability, both directions *)
  stall_s : float;  (** mid-frame stall duration *)
}

val default_config : listen:string -> upstream:string -> config
(** seed 1, 1% fault rate, 50 ms stalls. *)

type counts = {
  frames : int;  (** frames relayed (both directions) *)
  flipped : int;
  truncated : int;
  stalled : int;
  duplicated : int;
  disconnected : int;
}

val injected : counts -> int
(** Total faults injected. *)

val counts_json : counts -> Mips_obs.Json.t
(** Schema ["mipsd-chaos/1"]. *)

type t

val start : config -> t
(** Bind [config.listen] and start relaying.  Returns immediately.
    @raise Sys_error when the socket cannot be bound. *)

val counts : t -> counts

val stop : t -> unit
(** Stop accepting, close and unlink the listen socket.  In-flight
    relayed connections finish on their own threads. *)
