(* The session journal on disk is four file kinds per session id:

     session-<id>.meta   "mipsd-meta"   the request, journalled before work
     session-<id>.ckpt   "mipsd-run"    a run checkpoint (machine + host)
     session-<id>.soak   "soak"         a soak checkpoint
     session-<id>.done   "mipsd-done"   the recorded final response

   fsck restores the journal's one invariant after arbitrary torn writes:
   every session either has a valid .done (its result is the truth and any
   leftover working files are stale), or a valid .meta (the session is a
   pure function of its journalled request, so anything else about it may
   be deleted and recomputed), or it is unrecoverable and gets moved into
   quarantine/ rather than wedging daemon startup.  Snapshot containers
   are digest-checked, so "valid" detects truncation and bit damage, not
   just unparsable garbage. *)

module Snapshot = Mips_resilience.Snapshot
module Json = Mips_obs.Json

type verdict = Intact | Repaired of string list | Quarantined of string list

type report = {
  dir : string;
  scanned : int;
  intact : int;
  repaired : int;
  quarantined : int;
  tmp_removed : int;
  sessions : (string * verdict) list;
}

let exts = [ ".meta"; ".ckpt"; ".soak"; ".done" ]

let kind_of_ext = function
  | ".meta" -> "mipsd-meta"
  | ".ckpt" -> "mipsd-run"
  | ".soak" -> "soak"
  | _ -> "mipsd-done"

(* "session-<id><ext>" for a known ext *)
let classify file =
  List.find_map
    (fun ext ->
      match Filename.chop_suffix_opt ~suffix:ext file with
      | Some base
        when String.length base > 8 && String.sub base 0 8 = "session-" ->
          Some (String.sub base 8 (String.length base - 8), ext)
      | _ -> None)
    exts

let section_ok c name decode =
  match Snapshot.section c name with
  | Error _ -> false
  | Ok payload -> decode payload

let valid path ext =
  match Snapshot.read_file path with
  | Error _ -> false
  | Ok c -> (
      String.equal c.Snapshot.kind (kind_of_ext ext)
      &&
      (* checkpoint payloads are re-validated on resume (a damaged run
         checkpoint just restarts the run), so container validity is the
         bar there; .meta and .done are the recovery roots and must decode
         all the way down *)
      match ext with
      | ".meta" ->
          section_ok c "request" (fun r ->
              Result.is_ok (Protocol.decode_request r))
      | ".done" ->
          section_ok c "tenant" (fun _ -> true)
          && section_ok c "response" (fun r ->
                 Result.is_ok (Protocol.decode_response r))
      | _ -> true)

let fsck dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "not a directory: %s" dir)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list |> List.sort String.compare
    in
    (* leftovers of interrupted atomic writes: never the live copy *)
    let tmp_removed =
      List.fold_left
        (fun n f ->
          if Filename.check_suffix f ".tmp" then begin
            (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
            n + 1
          end
          else n)
        0 files
    in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun f ->
        match classify f with
        | Some (id, ext) ->
            Hashtbl.replace tbl id
              (ext :: Option.value ~default:[] (Hashtbl.find_opt tbl id))
        | None -> ())
      files;
    let ids =
      Hashtbl.fold (fun id _ acc -> id :: acc) tbl []
      |> List.sort String.compare
    in
    let quarantine_dir = Filename.concat dir "quarantine" in
    let quarantine id present =
      if not (Sys.file_exists quarantine_dir) then (
        try Unix.mkdir quarantine_dir 0o755 with Unix.Unix_error _ -> ());
      List.filter_map
        (fun ext ->
          let name = "session-" ^ id ^ ext in
          let src = Filename.concat dir name in
          if Sys.file_exists src then (
            try
              Sys.rename src (Filename.concat quarantine_dir name);
              Some name
            with Sys_error _ -> None)
          else None)
        present
    in
    let sessions =
      List.map
        (fun id ->
          let present = Hashtbl.find tbl id in
          let have ext = List.mem ext present in
          let path ext = Filename.concat dir ("session-" ^ id ^ ext) in
          let ok ext = have ext && valid (path ext) ext in
          let rm ext =
            try Sys.remove (path ext) with Sys_error _ -> ()
          in
          let verdict =
            if ok ".done" then begin
              (* the recorded result is the truth; working files are
                 leftovers of a crash after completion *)
              let stale = List.filter have [ ".meta"; ".ckpt"; ".soak" ] in
              if stale = [] then Intact
              else begin
                List.iter rm stale;
                Repaired
                  (List.map
                     (fun e -> Printf.sprintf "removed stale session-%s%s" id e)
                     stale)
              end
            end
            else if ok ".meta" then begin
              (* recoverable from the journalled request: drop anything
                 that would poison the resume *)
              let actions = ref [] in
              List.iter
                (fun ext ->
                  if have ext && not (ok ext) then begin
                    rm ext;
                    actions :=
                      Printf.sprintf "removed corrupt session-%s%s" id ext
                      :: !actions
                  end)
                [ ".done"; ".ckpt"; ".soak" ];
              if !actions = [] then Intact else Repaired (List.rev !actions)
            end
            else
              (* no valid result, no valid request: nothing to replay
                 from — move the wreckage aside so the daemon still
                 starts *)
              Quarantined (quarantine id present)
          in
          (id, verdict))
        ids
    in
    let count p = List.length (List.filter (fun (_, v) -> p v) sessions) in
    Ok
      {
        dir;
        scanned = List.length sessions;
        intact = count (function Intact -> true | _ -> false);
        repaired = count (function Repaired _ -> true | _ -> false);
        quarantined = count (function Quarantined _ -> true | _ -> false);
        tmp_removed;
        sessions;
      }
  end

let report_json r =
  let verdict_json = function
    | Intact -> Json.Obj [ ("verdict", Json.Str "intact") ]
    | Repaired actions ->
        Json.Obj
          [ ("verdict", Json.Str "repaired");
            ("actions", Json.List (List.map (fun a -> Json.Str a) actions)) ]
    | Quarantined files ->
        Json.Obj
          [ ("verdict", Json.Str "quarantined");
            ("files", Json.List (List.map (fun f -> Json.Str f) files)) ]
  in
  Json.Obj
    [ ("schema", Json.Str "mipsd-fsck/1");
      ("dir", Json.Str r.dir);
      ("scanned", Json.Int r.scanned);
      ("intact", Json.Int r.intact);
      ("repaired", Json.Int r.repaired);
      ("quarantined", Json.Int r.quarantined);
      ("tmp_removed", Json.Int r.tmp_removed);
      ( "sessions",
        Json.Obj
          (List.map (fun (id, v) -> (id, verdict_json v)) r.sessions) ) ]

let pp_report ppf r =
  Format.fprintf ppf
    "fsck %s: %d session%s scanned, %d intact, %d repaired, %d quarantined"
    r.dir r.scanned
    (if r.scanned = 1 then "" else "s")
    r.intact r.repaired r.quarantined;
  if r.tmp_removed > 0 then
    Format.fprintf ppf ", %d stale temp file%s removed" r.tmp_removed
      (if r.tmp_removed = 1 then "" else "s");
  List.iter
    (fun (id, v) ->
      match v with
      | Intact -> ()
      | Repaired actions ->
          List.iter
            (fun a -> Format.fprintf ppf "@.  repaired %s: %s" id a)
            actions
      | Quarantined files ->
          List.iter
            (fun f -> Format.fprintf ppf "@.  quarantined %s: %s" id f)
            files)
    r.sessions
