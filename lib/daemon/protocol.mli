(** Requests and responses of the [mipsd] wire protocol.

    One frame ({!Frame}) carries one encoded request or response; a
    connection is synchronous — the client writes a request and blocks on
    the response.  Payload codecs are built from the
    {!Mips_resilience.Snapshot.Io} primitives and decoding is total:
    malformed payloads come back as typed {!Frame.error}s ([Truncated] /
    [Corrupt]), never as an escaped exception.

    Failure is part of the vocabulary: a {!response} can be [Err] with a
    typed {!reject} — overload shedding, quota kills, tenant quarantine
    and shutdown refusals are all first-class, distinguishable answers
    rather than hangs or dropped connections. *)

type codegen = { byte : bool; early_out : bool; level : int  (** 0-3 *) }

val default_codegen : codegen
(** Word-addressed, set-conditionally booleans, postpass level 3. *)

type request =
  | Ping
  | Compile of { tenant : string; source : string; cg : codegen }
  | Run of {
      tenant : string;
      session : string option;
          (** names a resumable, checkpointed session (see {!Server}) *)
      source : string;
      cg : codegen;
      input : string;
      fuel : int;
      engine : string;  (** "ref", "fast" or "jit" *)
    }
  | Soak of {
      tenant : string;
      session : string option;
      seed : int;
      steps : int;
      programs : int;
      segments : int;
      differential : int;
      engine : string;  (** "ref", "fast" or "jit" *)
    }
  | Report of { tenant : string }
  | Collect of { tenant : string; session : string }
  | Status
  | Shutdown
  | Tagged of { id : string; req : request }
      (** the idempotency envelope: [id] is a client-generated request ID
          ({!valid_name}); the server answers a replayed [id] from its
          per-tenant replay window instead of executing the request twice,
          which is what makes blind retry after a wire fault safe.  One
          level deep only — a nested [Tagged] decodes as [Corrupt]. *)

type run_reply = {
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;
  cycles : int;
  retries : int;
}

(** Why a request was refused — the typed half of every failure path. *)
type reject =
  | Bad_request  (** malformed or unvalidatable request *)
  | Garbled
      (** what arrived was not a valid frame (bad magic, digest mismatch,
          hostile length): the request was never even decoded.  The one
          rejection a well-behaved sender may blindly retry — its request
          was damaged in flight, not refused *)
  | Overloaded  (** admission queue full: load was shed, not queued *)
  | Quota of string  (** killed with reason: "fuel", "memory", "deadline",
                         "concurrency" *)
  | Quarantined  (** the tenant's circuit breaker is open *)
  | Too_many_tenants  (** the [--max-tenants] registry is full *)
  | Unknown_session  (** collect of a session the daemon has no record of *)
  | Shutting_down  (** the daemon is draining and accepts no new work *)
  | Internal  (** an unexpected exception inside the handler *)

val reject_to_string : reject -> string

type response =
  | Pong
  | Listing of string  (** the final machine listing *)
  | Ran of run_reply
  | Soaked of string  (** the JSON text [mipsc soak --json] prints *)
  | Reported of string  (** the JSON text [mipsc report --json] prints *)
  | Status_r of string  (** daemon status as JSON text *)
  | Bye  (** shutdown acknowledged *)
  | Err of reject * string

val tenant_of : request -> string option
(** The tenant a request bills to; [None] for [Ping]/[Status]/[Shutdown]. *)

val request_kind : request -> string
(** Stable lowercase tag ("run", "soak", ...) for metrics and logs;
    [Tagged] reports its inner request's kind. *)

val mutating : request -> bool
(** Requests whose double execution would be observable (and billable):
    [Compile]/[Run]/[Soak]/[Report].  These are the ones the client tags
    with a request ID and the server deduplicates; the rest are idempotent
    reads a retry can simply re-issue. *)

val untag : request -> string option * request
(** Strip one [Tagged] envelope: [(Some id, inner)] for a tagged request,
    [(None, req)] otherwise. *)

val valid_name : string -> bool
(** Tenant and session names: 1-64 chars of [A-Za-z0-9._-] — safe as file
    name fragments in the session journal. *)

val encode_request : request -> string
val decode_request : string -> (request, Frame.error) result
val encode_response : response -> string
val decode_response : string -> (response, Frame.error) result
