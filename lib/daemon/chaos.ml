(* A frame-aware chaos proxy: it sits on its own Unix socket, speaks
   whole frames on both sides, and damages a seeded fraction of them in
   flight.  Because it re-frames rather than splicing bytes, every fault
   is a *wire* fault the real stack must absorb — a flipped bit trips the
   frame digest, a truncation looks like a cut connection, a stall
   exercises receive deadlines, a duplicate delivery probes the server's
   replay window, a disconnect loses the response after the work was done.

   Fault handling keeps the proxy itself hang-free: a stall resumes the
   relay afterwards (the frame still arrives intact), while every other
   injected fault ends the proxied connection once the damage is
   delivered — the retrying client reconnects anyway, and this way the
   proxy never waits on a server that (rightly) refused to answer a
   mangled frame.  All randomness comes from one splitmix64 stream under
   a mutex, so a seed fully determines the fault schedule for a serial
   client. *)

type config = {
  listen : string;
  upstream : string;
  seed : int;
  rate : float;
  stall_s : float;
}

let default_config ~listen ~upstream =
  { listen; upstream; seed = 1; rate = 0.01; stall_s = 0.05 }

type counts = {
  frames : int;
  flipped : int;
  truncated : int;
  stalled : int;
  duplicated : int;
  disconnected : int;
}

let injected c =
  c.flipped + c.truncated + c.stalled + c.duplicated + c.disconnected

type t = {
  config : config;
  rng : Mips_fault.Rng.t;
  lock : Mutex.t;
  mutable c : counts;
  mutable closing : bool;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
}

let counts t = Mutex.protect t.lock (fun () -> t.c)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd data =
  let n = Bytes.length data in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd data off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

type fault = Clean | Flip | Truncate | Stall | Duplicate | Disconnect

(* one decision per frame; [Duplicate] only makes sense client->server
   (a duplicated response would desynchronise the relay), so on the
   response path it degrades to a stall *)
let decide t ~to_server =
  Mutex.protect t.lock (fun () ->
      t.c <- { t.c with frames = t.c.frames + 1 };
      if Mips_fault.Rng.float t.rng >= t.config.rate then Clean
      else
        let bump f = t.c <- f t.c in
        match Mips_fault.Rng.int t.rng 5 with
        | 0 ->
            bump (fun c -> { c with flipped = c.flipped + 1 });
            Flip
        | 1 ->
            bump (fun c -> { c with truncated = c.truncated + 1 });
            Truncate
        | 2 ->
            bump (fun c -> { c with stalled = c.stalled + 1 });
            Stall
        | 3 when to_server ->
            bump (fun c -> { c with duplicated = c.duplicated + 1 });
            Duplicate
        | 3 ->
            bump (fun c -> { c with stalled = c.stalled + 1 });
            Stall
        | _ ->
            bump (fun c -> { c with disconnected = c.disconnected + 1 });
            Disconnect)

let rand_int t n = Mutex.protect t.lock (fun () -> Mips_fault.Rng.int t.rng n)

(* deliver one payload as a (possibly damaged) frame; [`Live] keeps the
   connection, [`Fault] means the damage was delivered and the proxied
   connection must now end, [`Dup] that an extra copy went out *)
let deliver t dst payload ~to_server =
  let raw = Bytes.of_string (Frame.encode payload) in
  match decide t ~to_server with
  | Clean -> if write_all dst raw then `Live else `Dead
  | Flip ->
      let bit = rand_int t (8 * Bytes.length raw) in
      let byte = bit / 8 in
      Bytes.set raw byte
        (Char.chr (Char.code (Bytes.get raw byte) lxor (1 lsl (bit mod 8))));
      ignore (write_all dst raw);
      `Fault
  | Truncate ->
      let keep = 1 + rand_int t (Bytes.length raw - 1) in
      ignore (write_all dst (Bytes.sub raw 0 keep));
      `Fault
  | Stall ->
      let half = max 1 (Bytes.length raw / 2) in
      if not (write_all dst (Bytes.sub raw 0 half)) then `Dead
      else begin
        Thread.delay t.config.stall_s;
        if
          write_all dst (Bytes.sub raw half (Bytes.length raw - half))
        then `Live
        else `Dead
      end
  | Duplicate ->
      if write_all dst raw && write_all dst raw then `Dup else `Dead
  | Disconnect ->
      (* nothing delivered: cut immediately, no refusal to wait for *)
      `Cut

(* wait briefly for the typed [Garbled] refusal (or the duplicate's
   replayed response) so it can reach the client before we cut; a server
   that will never answer a mangled frame only costs this bounded wait *)
let drain_response fd ~budget_s =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO budget_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let r = Frame.read fd in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  r

let connection t client upstream =
  let rec relay () =
    match Frame.read client with
    | Error _ -> ()
    | Ok req -> (
        match deliver t upstream req ~to_server:true with
        | `Dead | `Cut -> ()
        | `Fault -> (
            (* let the server's refusal (if any) through, then cut *)
            match drain_response upstream ~budget_s:2. with
            | Ok resp -> ignore (write_all client (Bytes.of_string (Frame.encode resp)))
            | Error _ -> ())
        | (`Live | `Dup) as sent -> (
            match Frame.read upstream with
            | Error _ -> ()
            | Ok resp -> (
                let fate = deliver t client resp ~to_server:false in
                (* the duplicate's own response is answered from the
                   replay window; discard it to restore alternation *)
                (if sent = `Dup then
                   match drain_response upstream ~budget_s:5. with
                   | Ok _ | Error _ -> ());
                match fate with
                | `Live | `Dup -> relay ()
                | `Fault | `Dead | `Cut -> ())))
  in
  Fun.protect
    ~finally:(fun () ->
      close_quiet client;
      close_quiet upstream)
    relay

let accept_loop t () =
  let rec loop () =
    if Mutex.protect t.lock (fun () -> t.closing) then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | client, _ -> (
              match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
              | exception Unix.Unix_error _ -> close_quiet client
              | up -> (
                  match Unix.connect up (Unix.ADDR_UNIX t.config.upstream) with
                  | () -> (
                      try ignore (Thread.create (fun () -> connection t client up) ())
                      with _ ->
                        close_quiet client;
                        close_quiet up)
                  | exception Unix.Unix_error _ ->
                      close_quiet up;
                      close_quiet client))
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start config =
  if Sys.file_exists config.listen then Sys.remove config.listen;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX config.listen);
     Unix.listen listen_fd 64
   with Unix.Unix_error (e, _, _) ->
     close_quiet listen_fd;
     raise
       (Sys_error
          (Printf.sprintf "cannot bind %s: %s" config.listen
             (Unix.error_message e))));
  let t =
    {
      config;
      rng = Mips_fault.Rng.create config.seed;
      lock = Mutex.create ();
      c =
        { frames = 0; flipped = 0; truncated = 0; stalled = 0;
          duplicated = 0; disconnected = 0 };
      closing = false;
      listen_fd;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let stop t =
  Mutex.protect t.lock (fun () -> t.closing <- true);
  Option.iter Thread.join t.accept_thread;
  close_quiet t.listen_fd;
  if Sys.file_exists t.config.listen then (
    try Sys.remove t.config.listen with Sys_error _ -> ())

let counts_json c =
  Mips_obs.Json.Obj
    [ ("schema", Mips_obs.Json.Str "mipsd-chaos/1");
      ("frames", Mips_obs.Json.Int c.frames);
      ("injected", Mips_obs.Json.Int (injected c));
      ("flipped", Mips_obs.Json.Int c.flipped);
      ("truncated", Mips_obs.Json.Int c.truncated);
      ("stalled", Mips_obs.Json.Int c.stalled);
      ("duplicated", Mips_obs.Json.Int c.duplicated);
      ("disconnected", Mips_obs.Json.Int c.disconnected) ]
