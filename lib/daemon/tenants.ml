type quota = {
  max_fuel : int;
  max_output : int;
  max_concurrent : int;
  max_wall_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let default_quota =
  {
    max_fuel = 500_000_000;
    max_output = 4_000_000;
    max_concurrent = 4;
    max_wall_s = 120.;
    breaker_threshold = 5;
    breaker_cooldown_s = 30.;
  }

(* Closed counts the current run of consecutive failures; Open refuses
   until its deadline; Half_open has let one probe through and is waiting
   to hear how it went. *)
type breaker = Closed of int | Open of float | Half_open

type entry = {
  mutable inflight : int;
  mutable breaker : breaker;
  mutable requests : int;
  mutable failures : int;
  mutable quarantine_refusals : int;
}

type t = {
  lock : Mutex.t;
  quota : quota;
  max_tenants : int;
  table : (string, entry) Hashtbl.t;
}

let create ?(quota = default_quota) ~max_tenants () =
  {
    lock = Mutex.create ();
    quota;
    max_tenants = max 1 max_tenants;
    table = Hashtbl.create 16;
  }

let quota t = t.quota

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let admit t ~now name =
  locked t @@ fun () ->
  let entry =
    match Hashtbl.find_opt t.table name with
    | Some e -> Ok e
    | None ->
        if Hashtbl.length t.table >= t.max_tenants then
          Error
            ( Protocol.Too_many_tenants,
              Printf.sprintf "tenant registry is full (%d tenants)"
                t.max_tenants )
        else begin
          let e =
            { inflight = 0; breaker = Closed 0; requests = 0; failures = 0;
              quarantine_refusals = 0 }
          in
          Hashtbl.add t.table name e;
          Ok e
        end
  in
  match entry with
  | Error _ as e -> e
  | Ok e -> (
      let quarantined () =
        e.quarantine_refusals <- e.quarantine_refusals + 1;
        Error
          ( Protocol.Quarantined,
            Printf.sprintf "circuit breaker open after %d consecutive failures"
              t.quota.breaker_threshold )
      in
      match e.breaker with
      | Open until when now < until -> quarantined ()
      | Open _ ->
          (* cooldown over: let exactly one probe through *)
          if e.inflight >= 1 then quarantined ()
          else begin
            e.breaker <- Half_open;
            e.inflight <- e.inflight + 1;
            e.requests <- e.requests + 1;
            Ok ()
          end
      | Half_open -> quarantined ()
      | Closed _ ->
          if e.inflight >= t.quota.max_concurrent then
            Error
              ( Protocol.Quota "concurrency",
                Printf.sprintf "%d requests already in flight (quota %d)"
                  e.inflight t.quota.max_concurrent )
          else begin
            e.inflight <- e.inflight + 1;
            e.requests <- e.requests + 1;
            Ok ()
          end)

let release t ~now ~failed name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table name with
  | None -> ()
  | Some e ->
      e.inflight <- max 0 (e.inflight - 1);
      if failed then begin
        e.failures <- e.failures + 1;
        match e.breaker with
        | Half_open -> e.breaker <- Open (now +. t.quota.breaker_cooldown_s)
        | Open _ -> ()
        | Closed k ->
            let k = k + 1 in
            if k >= t.quota.breaker_threshold then
              e.breaker <- Open (now +. t.quota.breaker_cooldown_s)
            else e.breaker <- Closed k
      end
      else
        match e.breaker with
        | Half_open | Closed _ -> e.breaker <- Closed 0
        | Open _ -> ()

let json t ~now =
  locked t @@ fun () ->
  let rows =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, e) ->
           Mips_obs.Json.Obj
             [ ("tenant", Mips_obs.Json.Str name);
               ("inflight", Mips_obs.Json.Int e.inflight);
               ("requests", Mips_obs.Json.Int e.requests);
               ("failures", Mips_obs.Json.Int e.failures);
               ( "quarantine_refusals",
                 Mips_obs.Json.Int e.quarantine_refusals );
               ( "breaker",
                 Mips_obs.Json.Str
                   (match e.breaker with
                   | Closed 0 -> "closed"
                   | Closed k -> Printf.sprintf "closed(%d failures)" k
                   | Half_open -> "half-open"
                   | Open until when now < until -> "open"
                   | Open _ -> "open(cooldown over)") ) ])
  in
  Mips_obs.Json.List rows
