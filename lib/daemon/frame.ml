(* Frame layout:

     magic   "MPSD"                       4 bytes
     version u16 little-endian            2 bytes
     length  u32 little-endian            4 bytes   (payload only)
     digest  MD5 of the payload          16 bytes
     payload length bytes

   The digest makes the decoder corruption-evident: a bit flipped anywhere
   in the length or payload is a typed Corrupt, never a silently reframed
   stream.  Header fields are validated strictly in order (magic, version,
   length bound) so each failure mode has its own error. *)

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Corrupt of string
  | Closed
  | Timed_out
  | Io_error of string

let error_to_string = function
  | Truncated -> "frame truncated"
  | Bad_magic -> "not a mipsd frame (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Oversized n -> Printf.sprintf "frame payload of %d bytes over the limit" n
  | Corrupt m -> "corrupt frame: " ^ m
  | Closed -> "connection closed"
  | Timed_out -> "frame read timed out"
  | Io_error m -> "frame I/O error: " ^ m

let magic = "MPSD"
let version = 1
let digest_bytes = 16
let header_bytes = String.length magic + 2 + 4 + digest_bytes
let default_limit = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  let b = Buffer.create (header_bytes + n) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (version land 0xFF));
  Buffer.add_char b (Char.chr ((version lsr 8) land 0xFF));
  for k = 0 to 3 do
    Buffer.add_char b (Char.chr ((n lsr (8 * k)) land 0xFF))
  done;
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* header validation shared by [decode] and [read]: the first
   [header_bytes] of a frame, already in hand.  Returns the payload
   length. *)
let check_header ?(limit = default_limit) h =
  if String.length h < header_bytes then Error Truncated
  else if String.sub h 0 (String.length magic) <> magic then Error Bad_magic
  else
    let at k = Char.code h.[String.length magic + k] in
    let ver = at 0 lor (at 1 lsl 8) in
    if ver <> version then Error (Bad_version ver)
    else
      let len =
        at 2 lor (at 3 lsl 8) lor (at 4 lsl 16) lor (at 5 lsl 24)
      in
      if len > limit then Error (Oversized len) else Ok len

let digest_of_header h = String.sub h (String.length magic + 6) digest_bytes

let decode ?limit data =
  if String.length data < header_bytes then Error Truncated
  else
    match check_header ?limit (String.sub data 0 header_bytes) with
    | Error e -> Error e
    | Ok len ->
        if String.length data < header_bytes + len then Error Truncated
        else
          let payload = String.sub data header_bytes len in
          if Digest.string payload <> digest_of_header data then
            Error (Corrupt "payload digest mismatch")
          else Ok (payload, header_bytes + len)

(* --- descriptor transport -------------------------------------------------- *)

(* Read exactly [n] bytes; [`Eof k] reports how many bytes arrived before
   the peer hung up, so the caller can tell a clean close (k = 0 at a
   frame boundary) from a mid-frame cut. *)
let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error (`Eof off)
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* a receive deadline (SO_RCVTIMEO) expired mid-read: the typed
             answer the retrying client turns into a backed-off reattempt
             instead of hanging on a stalled peer *)
          Error `Timeout
      | exception Unix.Unix_error (e, _, _) ->
          Error (`Unix (Unix.error_message e))
  in
  go 0

let read ?limit fd =
  match read_exactly fd header_bytes with
  | Error (`Eof 0) -> Error Closed
  | Error (`Eof _) -> Error Truncated
  | Error `Timeout -> Error Timed_out
  | Error (`Unix m) -> Error (Io_error m)
  | Ok header -> (
      match check_header ?limit header with
      | Error e -> Error e
      | Ok len -> (
          match read_exactly fd len with
          | Error (`Eof _) -> Error Truncated
          | Error `Timeout -> Error Timed_out
          | Error (`Unix m) -> Error (Io_error m)
          | Ok payload ->
              if Digest.string payload <> digest_of_header header then
                Error (Corrupt "payload digest mismatch")
              else Ok payload))

let write fd payload =
  let data = encode payload in
  let n = String.length data in
  let buf = Bytes.unsafe_of_string data in
  let rec go off =
    if off = n then Ok ()
    else
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Error (Io_error (Unix.error_message e))
  in
  go 0
