(** Length-prefixed, versioned, checksummed frames — the wire unit of the
    [mipsd] protocol.

    A frame is a fixed header (magic tag, format version, payload length,
    payload digest) followed by the payload bytes.  Decoding is {e total}
    in the style of {!Mips_resilience.Snapshot}: any byte string either
    yields a payload or a typed {!error} — a foreign stream, version skew,
    a hostile length, truncation and bit damage are all distinguishable,
    and nothing raises.  The digest over the payload means a flipped bit
    anywhere in a frame is reported as {!Corrupt} rather than silently
    reframing the stream.

    The [read]/[write] pair moves whole frames over a file descriptor
    (blocking), mapping transport failures into the same error type:
    {!Closed} is a clean peer hang-up at a frame boundary, {!Truncated} a
    connection cut mid-frame. *)

type error =
  | Truncated  (** ran out of bytes before the frame was complete *)
  | Bad_magic  (** not a mipsd stream at all *)
  | Bad_version of int  (** a peer speaking an incompatible version *)
  | Oversized of int  (** declared payload length beyond the limit *)
  | Corrupt of string  (** structurally damaged (digest mismatch, ...) *)
  | Closed  (** the peer hung up cleanly between frames *)
  | Timed_out
      (** a receive deadline (SO_RCVTIMEO) expired mid-frame — the peer
          stalled; distinguishable from {!Io_error} so the retrying client
          can back off instead of giving up *)
  | Io_error of string  (** the descriptor could not be read or written *)

val error_to_string : error -> string

val version : int
(** Current wire format version. *)

val header_bytes : int
(** Size of the fixed frame header. *)

val default_limit : int
(** Default maximum payload size (16 MiB) — a hostile length field is
    rejected as {!Oversized} before any allocation happens. *)

val encode : string -> string
(** [encode payload] is the full frame for [payload]. *)

val decode : ?limit:int -> string -> (string * int, error) result
(** [decode data] parses one frame from the head of [data], returning the
    payload and the number of bytes consumed.  Total: never raises. *)

val read : ?limit:int -> Unix.file_descr -> (string, error) result
(** Blocking read of exactly one frame. *)

val write : Unix.file_descr -> string -> (unit, error) result
(** Blocking write of [encode payload]; [Io_error] on a broken pipe. *)
