(* Concurrency layout: the accept loop and one thread per connection do
   only I/O and bookkeeping; all compute goes through the Admission
   executor's worker domains.  One server mutex + condition guard the
   session table, the metrics registry and the stop flag; Tenants and
   Admission carry their own locks.  The supervision machinery
   (Soak.run_checkpointed's supervised differential chunks, the report
   warm-up) folds into a process-global metrics registry that is not
   domain-safe, so soak and report job bodies are serialized by
   [heavy_lock] — runs and compiles, the latency-sensitive requests, stay
   fully parallel. *)

module Snapshot = Mips_resilience.Snapshot
module Supervise = Mips_resilience.Supervise
module Cpu = Mips_machine.Cpu
module Hosted = Mips_machine.Hosted
module Json = Mips_obs.Json

type config = {
  socket : string;
  jobs : int;
  queue : int;
  max_tenants : int;
  quota : Tenants.quota;
  state_dir : string option;
  checkpoint_every : int;
  idle_evict_s : float;
  drain_s : float;
  max_frame : int;
  replay_window : int;
  test_crash_after_checkpoints : int option;
  test_crash_at_op : int option;
}

let default_config ~socket =
  {
    socket;
    jobs = 4;
    queue = 16;
    max_tenants = 64;
    quota = Tenants.default_quota;
    state_dir = None;
    checkpoint_every = 50_000;
    idle_evict_s = 300.;
    drain_s = 10.;
    max_frame = Frame.default_limit;
    replay_window = 128;
    test_crash_after_checkpoints = None;
    test_crash_at_op = None;
  }

type session_state = Running | Finished of Protocol.response

type session = {
  s_tenant : string;
  mutable s_state : session_state;
  mutable s_touched : float;
}

(* One entry per deduplicated request ID ("tenant:id").  Pending
   coalesces: a retry arriving while the first delivery is still executing
   waits on the server condition instead of re-executing. *)
type replay_state = R_pending | R_done of Protocol.response
type replay_entry = { mutable r_state : replay_state }

type t = {
  config : config;
  lock : Mutex.t;
  cond : Condition.t;
  sessions : (string, session) Hashtbl.t;
  replay : (string, replay_entry) Hashtbl.t;  (* key: "tenant:id" *)
  replay_order : (string, string Queue.t) Hashtbl.t;
      (* per-tenant FIFO of recorded keys, bounding the window *)
  crash_ops : int Atomic.t;  (* journal operations performed so far *)
  crash_fired : bool Atomic.t;
  metrics : Mips_obs.Metrics.t;
  mutable evicted : int;
  mutable stopping : bool;
  mutable closing : bool;
      (* [stopping] begins the drain — billable requests are refused with
         Shutting_down but connections are still answered; [closing] (set
         by [stop] only) ends the accept loop itself *)
  tenants : Tenants.t;
  exec : Admission.t;
  heavy_lock : Mutex.t;  (* serializes soak/report (supervision registry) *)
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable janitor_thread : Thread.t option;
}

(* the in-process stand-in for SIGKILL (see config.test_crash_after_checkpoints) *)
exception Crashed

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let now () = Unix.gettimeofday ()

(* Crash-point hook: every journal operation (write or removal) bumps one
   counter, and [test_crash_at_op = Some n] turns operation [n] into a
   simulated kill {e immediately before} it lands — sweeping n = 1, 2, ...
   enumerates every write boundary the journal has.  The counter runs
   unconditionally so a clean run's total bounds the sweep. *)
let journal_op t =
  let k = Atomic.fetch_and_add t.crash_ops 1 + 1 in
  match t.config.test_crash_at_op with
  | Some n when k = n ->
      Atomic.set t.crash_fired true;
      raise Crashed
  | _ -> ()

let journal_ops t = Atomic.get t.crash_ops
let crash_point_fired t = Atomic.get t.crash_fired

(* --- session journal -------------------------------------------------------- *)

let session_file t id ext =
  match t.config.state_dir with
  | None -> None
  | Some dir -> Some (Filename.concat dir ("session-" ^ id ^ ext))

let write_meta t id req =
  match session_file t id ".meta" with
  | None -> ()
  | Some path ->
      journal_op t;
      Snapshot.write_file path
        (Snapshot.encode
           { Snapshot.kind = "mipsd-meta";
             sections = [ ("request", Protocol.encode_request req) ] })

let read_meta t id =
  match session_file t id ".meta" with
  | None -> None
  | Some path -> (
      if not (Sys.file_exists path) then None
      else
        let open Snapshot in
        match
          let* c = read_file path in
          let* () =
            if String.equal c.kind "mipsd-meta" then Ok ()
            else Error (Corrupt "not a mipsd session meta file")
          in
          let* r = section c "request" in
          match Protocol.decode_request r with
          | Ok req -> Ok req
          | Error e -> Error (Corrupt (Frame.error_to_string e))
        with
        | Ok req -> Some req
        | Error _ -> None)

let write_done t id ~tenant resp =
  match session_file t id ".done" with
  | None -> ()
  | Some path ->
      journal_op t;
      Snapshot.write_file path
        (Snapshot.encode
           { Snapshot.kind = "mipsd-done";
             sections =
               [ ("tenant", tenant);
                 ("response", Protocol.encode_response resp) ] })

let read_done t id =
  match session_file t id ".done" with
  | None -> None
  | Some path -> (
      if not (Sys.file_exists path) then None
      else
        let open Snapshot in
        match
          let* c = read_file path in
          let* () =
            if String.equal c.kind "mipsd-done" then Ok ()
            else Error (Corrupt "not a mipsd session result file")
          in
          let* tenant = section c "tenant" in
          let* r = section c "response" in
          match Protocol.decode_response r with
          | Ok resp -> Ok (tenant, resp)
          | Error e -> Error (Corrupt (Frame.error_to_string e))
        with
        | Ok v -> Some v
        | Error _ -> None)

let remove_session_files t id exts =
  List.iter
    (fun ext ->
      match session_file t id ext with
      | Some path when Sys.file_exists path ->
          journal_op t;
          (try Sys.remove path with Sys_error _ -> ())
      | _ -> ())
    exts

(* --- job bodies ------------------------------------------------------------- *)

let config_of { Protocol.byte; early_out; level = _ } =
  let base =
    if byte then Mips_ir.Config.byte_machine else Mips_ir.Config.default
  in
  if early_out then
    { base with Mips_ir.Config.bool_strategy = Mips_ir.Config.Early_out }
  else base

let level_of = function
  | 0 -> Mips_reorg.Pipeline.Naive
  | 1 -> Mips_reorg.Pipeline.Reorganized
  | 2 -> Mips_reorg.Pipeline.Packed
  | _ -> Mips_reorg.Pipeline.Delay_filled

let compile_job ~source ~cg () =
  let config = config_of cg in
  let p = Mips_artifact.compiled ~config ~level:(level_of cg.Protocol.level) source in
  Protocol.Listing
    (Format.asprintf "%a@.; %d instruction words@." Mips_machine.Program.pp_listing
       p
       (Mips_machine.Program.static_count p))

(* A run request, optionally checkpointed under a session.  The quota
   watchdog rides the checkpoint-slice callback: every
   [config.checkpoint_every] steps the output-size and wall-clock budgets
   are checked, and an overrun raises Supervise.Deadline — the same
   deterministic-budget discipline the supervised pool uses — which lands
   as a typed [Quota] kill. *)
let run_job t ~req ~session ~source ~cg ~input ~fuel ~engine () =
  let quota = Tenants.quota t.tenants in
  let config = config_of cg in
  let level = level_of cg.Protocol.level in
  let program = Mips_artifact.compiled ~config ~level source in
  let cpu =
    Cpu.create ~config:(Mips_codegen.Compile.machine_config config) ()
  in
  Cpu.load_program cpu program;
  let budget = min fuel quota.Tenants.max_fuel in
  let req_digest = Digest.string (Protocol.encode_request req) in
  let ckpt_path = Option.bind session (fun id -> session_file t id ".ckpt") in
  let resume_state =
    match ckpt_path with
    | Some path when Sys.file_exists path -> (
        let open Snapshot in
        match
          let* c = read_file path in
          let* () =
            if String.equal c.kind "mipsd-run" then Ok ()
            else Error (Corrupt "not a mipsd run checkpoint")
          in
          let* m = section c "meta" in
          let* () =
            if String.equal m req_digest then Ok ()
            else Error (Corrupt "checkpoint does not match this session")
          in
          let* h = section c "host" in
          let* h = host_of_string h in
          let* mach = section c "machine" in
          let* () = restore_machine cpu mach in
          Ok h
        with
        | Ok h -> Some h
        | Error _ ->
            (* a damaged checkpoint is not fatal: the run is a pure
               function of its journalled parameters, so start over *)
            None)
    | _ -> None
  in
  let budget =
    match resume_state with
    | Some h -> h.Hosted.h_fuel_left
    | None -> budget
  in
  let started = now () in
  let checkpoints = ref 0 in
  let save (h : Hosted.host_state) =
    if String.length h.Hosted.h_output > quota.Tenants.max_output then
      raise (Supervise.Deadline "memory");
    if now () -. started > quota.Tenants.max_wall_s then
      raise (Supervise.Deadline "deadline");
    (match ckpt_path with
    | None -> ()
    | Some path ->
        journal_op t;
        Snapshot.write_file path
          (Snapshot.encode
             { Snapshot.kind = "mipsd-run";
               sections =
                 [ ("meta", req_digest);
                   ("machine", Snapshot.machine_to_string cpu);
                   ("host", Snapshot.host_to_string h) ] }));
    incr checkpoints;
    match t.config.test_crash_after_checkpoints with
    | Some n when session <> None && !checkpoints >= n -> raise Crashed
    | _ -> ()
  in
  match
    Hosted.run ~fuel:budget ~input ~engine ?resume:resume_state
      ~checkpoint:(t.config.checkpoint_every, save) cpu
  with
  | exception Supervise.Deadline what ->
      Protocol.Err
        ( Protocol.Quota what,
          Printf.sprintf "killed by the %s watchdog" what )
  | res ->
      let stats = Cpu.stats cpu in
      if stats.Mips_machine.Stats.fuel_exhausted && fuel > quota.Tenants.max_fuel
      then
        Protocol.Err
          ( Protocol.Quota "fuel",
            Printf.sprintf "killed after %d steps (fuel quota)" budget )
      else
        Protocol.Ran
          {
            Protocol.output = res.Hosted.output;
            exit_status = res.Hosted.exit_status;
            halted = res.Hosted.halted;
            fault =
              Option.map
                (fun (c, d) ->
                  Printf.sprintf "%s (%d)" (Mips_machine.Cause.name c) d)
                res.Hosted.fault;
            cycles = stats.Mips_machine.Stats.cycles;
            retries = res.Hosted.retries;
          }

(* Same knob settings as `mipsc soak` so a collected response is
   byte-comparable with `mipsc soak --json` at equal parameters. *)
let soak_job t ~session ~seed ~steps ~programs ~segments ~differential
    ~engine () =
  let plan =
    {
      Mips_fault.Plan.seed;
      flip_reg_rate = 0.002;
      flip_data_rate = 0.002;
      irq_rate = 0.002;
      page_drop_rate = 0.002;
      flaky_rate = 0.005;
      max_injections = 0;
    }
  in
  let checkpoint = Option.bind session (fun id -> session_file t id ".soak") in
  let resume =
    match checkpoint with
    | Some path when Sys.file_exists path -> Some path
    | _ -> None
  in
  Mutex.lock t.heavy_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.heavy_lock) @@ fun () ->
  match
    Mips_soak.Soak.run_checkpointed ~programs ~segments ~quantum:500 ~steps
      ~diff_count:differential ~diff_jobs:1 ?checkpoint
      ~checkpoint_every:t.config.checkpoint_every ?resume
      ~before_write:(fun () -> journal_op t)
      ~engine ~plan ~seed ()
  with
  | Ok (Mips_soak.Soak.Complete (s, diffs)) ->
      Protocol.Soaked (Json.to_string (Mips_soak.Soak.result_json s diffs))
  | Ok Mips_soak.Soak.Interrupted ->
      (* only reachable through the in-process crash hook *)
      raise Crashed
  | Error e ->
      Protocol.Err (Protocol.Internal, Snapshot.error_to_string e)

let report_job t () =
  Mutex.lock t.heavy_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.heavy_lock) @@ fun () ->
  let j = Mips_analysis.Report.json_all ~jobs:1 () in
  Protocol.Reported (Format.asprintf "%a@." Json.pp j)

(* --- status ----------------------------------------------------------------- *)

let status_json t =
  let a = Admission.stats t.exec in
  let resident, running, finished =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ s (r, ru, d) ->
            match s.s_state with
            | Running -> (r + 1, ru + 1, d)
            | Finished _ -> (r + 1, ru, d + 1))
          t.sessions (0, 0, 0))
  in
  Json.Obj
    [ ("schema", Json.Str "mipsd-status/1");
      ( "config",
        Json.Obj
          [ ("jobs", Json.Int t.config.jobs);
            ("queue", Json.Int t.config.queue);
            ("max_tenants", Json.Int t.config.max_tenants);
            ("max_fuel", Json.Int t.config.quota.Tenants.max_fuel);
            ("max_output", Json.Int t.config.quota.Tenants.max_output);
            ("max_concurrent", Json.Int t.config.quota.Tenants.max_concurrent);
            ("sessions_enabled", Json.Bool (t.config.state_dir <> None)) ] );
      ( "admission",
        Json.Obj
          [ ("running", Json.Int a.Admission.running);
            ("waiting", Json.Int a.Admission.waiting);
            ("executed", Json.Int a.Admission.executed);
            ("rejected_overloaded", Json.Int a.Admission.rejected) ] );
      ("tenants", Tenants.json t.tenants ~now:(now ()));
      ( "sessions",
        Json.Obj
          [ ("resident", Json.Int resident);
            ("running", Json.Int running);
            ("finished", Json.Int finished);
            ("evicted_total", Json.Int t.evicted) ] );
      ("metrics", locked t (fun () -> Mips_obs.Metrics.to_json t.metrics)) ]

(* --- request handling -------------------------------------------------------- *)

let observe t kind seconds =
  locked t (fun () ->
      Mips_obs.Metrics.incr t.metrics ("daemon.requests." ^ kind);
      Mips_obs.Metrics.observe t.metrics
        ("daemon.latency_seconds." ^ kind)
        seconds)

let count_reject t (reject : Protocol.reject) =
  let name =
    match reject with
    | Protocol.Bad_request -> "bad_request"
    | Protocol.Garbled -> "garbled"
    | Protocol.Overloaded -> "overloaded"
    | Protocol.Quota _ -> "quota"
    | Protocol.Quarantined -> "quarantined"
    | Protocol.Too_many_tenants -> "too_many_tenants"
    | Protocol.Unknown_session -> "unknown_session"
    | Protocol.Shutting_down -> "shutting_down"
    | Protocol.Internal -> "internal"
  in
  locked t (fun () ->
      Mips_obs.Metrics.incr t.metrics ("daemon.rejects." ^ name))

(* a response that counts against the tenant's breaker: its own requests
   failing, not the server refusing work (overload/shutdown) *)
let counts_as_failure = function
  | Protocol.Err ((Protocol.Overloaded | Protocol.Shutting_down), _) -> false
  | Protocol.Err _ -> true
  | _ -> false

let finish_session t id ~tenant resp =
  write_done t id ~tenant resp;
  remove_session_files t id [ ".ckpt"; ".soak"; ".meta" ];
  locked t (fun () ->
      (match Hashtbl.find_opt t.sessions id with
      | Some s ->
          s.s_state <- Finished resp;
          s.s_touched <- now ()
      | None -> ());
      Condition.broadcast t.cond)

let collect t ~tenant id =
  let from_memory () =
    locked t (fun () ->
        let rec go () =
          match Hashtbl.find_opt t.sessions id with
          | None -> `Not_resident
          | Some s when s.s_tenant <> tenant ->
              `Reply
                (Protocol.Err
                   (Protocol.Bad_request, "session belongs to another tenant"))
          | Some ({ s_state = Finished resp; _ } as s) ->
              s.s_touched <- now ();
              `Reply resp
          | Some { s_state = Running; _ } ->
              Condition.wait t.cond t.lock;
              go ()
        in
        go ())
  in
  match from_memory () with
  | `Reply resp -> resp
  | `Not_resident -> (
      match read_done t id with
      | Some (owner, _) when owner <> tenant ->
          Protocol.Err
            (Protocol.Bad_request, "session belongs to another tenant")
      | Some (_, resp) ->
          locked t (fun () ->
              if not (Hashtbl.mem t.sessions id) then
                Hashtbl.add t.sessions id
                  { s_tenant = tenant; s_state = Finished resp;
                    s_touched = now () });
          resp
      | None -> Protocol.Err (Protocol.Unknown_session, id))

(* register a fresh session (meta journalled before any work starts) *)
let register_session t id ~tenant req =
  locked t (fun () ->
      Hashtbl.replace t.sessions id
        { s_tenant = tenant; s_state = Running; s_touched = now () });
  write_meta t id req

let unregister_session t id =
  locked t (fun () -> Hashtbl.remove t.sessions id);
  remove_session_files t id [ ".meta" ]

let session_known t id =
  locked t (fun () -> Hashtbl.mem t.sessions id)
  ||
  match session_file t id ".done" with
  | Some path when Sys.file_exists path -> true
  | _ -> false

let job_of t req =
  match req with
  | Protocol.Compile { source; cg; _ } -> Some (compile_job ~source ~cg)
  | Protocol.Run { session; source; cg; input; fuel; engine; _ } ->
      let engine =
        match Cpu.engine_of_string engine with
        | Some e -> e
        | None -> Cpu.Ref
      in
      Some (run_job t ~req ~session ~source ~cg ~input ~fuel ~engine)
  | Protocol.Soak
      { session; seed; steps; programs; segments; differential; engine; _ } ->
      let engine =
        match Cpu.engine_of_string engine with
        | Some e -> e
        | None -> Cpu.Ref
      in
      Some
        (soak_job t ~session ~seed ~steps ~programs ~segments ~differential
           ~engine)
  | Protocol.Report _ -> Some (report_job t)
  | _ -> None

let validate req =
  let name_ok what = function
    | Some n when not (Protocol.valid_name n) ->
        Some (Printf.sprintf "invalid %s name %S" what n)
    | _ -> None
  in
  let tenant_ok = name_ok "tenant" (Protocol.tenant_of req) in
  let session_ok =
    match req with
    | Protocol.Run { session; _ } | Protocol.Soak { session; _ } ->
        name_ok "session" session
    | Protocol.Collect { session; _ } -> name_ok "session" (Some session)
    | _ -> None
  in
  let bounds =
    match req with
    | Protocol.Run { fuel; engine; _ } ->
        if fuel <= 0 then Some "fuel must be positive"
        else if Cpu.engine_of_string engine = None then
          Some (Printf.sprintf "unknown engine %S" engine)
        else None
    | Protocol.Soak
        { steps; programs; segments; differential; engine; seed = _; _ } ->
        if steps <= 0 || programs <= 0 || segments <= 0 || differential < 0
        then Some "soak parameters must be positive"
        else if Cpu.engine_of_string engine = None then
          Some (Printf.sprintf "unknown engine %S" engine)
        else None
    | _ -> None
  in
  match (tenant_ok, session_ok, bounds) with
  | Some m, _, _ | None, Some m, _ | None, None, Some m -> Some m
  | None, None, None -> None

let session_of = function
  | Protocol.Run { session; _ } | Protocol.Soak { session; _ } -> session
  | _ -> None

(* source size is the request-side memory quota: an oversized program is
   refused before it is ever compiled *)
let oversized t req =
  match req with
  | Protocol.Run { source; _ } | Protocol.Compile { source; _ } ->
      String.length source > t.config.quota.Tenants.max_output
  | _ -> false

(* [handle_inner] executes an (untagged) request.  A [Crashed] escaping a
   connection-thread journal site lands here as the same typed answer the
   admission-worker path produces, so the crash-point harness sees one
   behaviour wherever the op counter fires. *)
let handle_inner t req =
  try
    match req with
    | Protocol.Tagged _ ->
        (* unreachable: [handle] strips one level and the decoder rejects
           nesting — but the compiler cannot know that *)
        Protocol.Err (Protocol.Bad_request, "unexpected request envelope")
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Status -> Protocol.Status_r (Json.to_string (status_json t))
    | Protocol.Shutdown ->
        locked t (fun () ->
            t.stopping <- true;
            Condition.broadcast t.cond);
        Protocol.Bye
    | Protocol.Collect { tenant; session } -> (
        match validate req with
        | Some m -> Protocol.Err (Protocol.Bad_request, m)
        | None -> collect t ~tenant session)
    | Protocol.Compile _ | Protocol.Run _ | Protocol.Soak _ | Protocol.Report _
      -> (
        let tenant = Option.value ~default:"-" (Protocol.tenant_of req) in
        match validate req with
        | Some m -> Protocol.Err (Protocol.Bad_request, m)
        | None ->
            if locked t (fun () -> t.stopping) then
              Protocol.Err
                (Protocol.Shutting_down, "daemon is draining; retry later")
            else if oversized t req then
              Protocol.Err
                ( Protocol.Quota "memory",
                  "source exceeds the tenant memory quota" )
            else if
              (* session idempotency: re-submitting a known session waits
                 for (or replays) its result instead of running it twice *)
              (match session_of req with
              | Some id -> session_known t id
              | None -> false)
            then collect t ~tenant (Option.get (session_of req))
            else (
              match Tenants.admit t.tenants ~now:(now ()) tenant with
              | Error (reject, detail) -> Protocol.Err (reject, detail)
              | Ok () ->
                  let session = session_of req in
                  (match session with
                  | Some id -> register_session t id ~tenant req
                  | None -> ());
                  let job = Option.get (job_of t req) in
                  let resp =
                    match Admission.submit t.exec job with
                    | Error `Overloaded ->
                        Option.iter (unregister_session t) session;
                        Protocol.Err
                          ( Protocol.Overloaded,
                            "admission queue full; load shed" )
                    | Error `Shutting_down ->
                        Option.iter (unregister_session t) session;
                        Protocol.Err
                          (Protocol.Shutting_down, "daemon is draining")
                    | Ok ticket -> (
                        match Admission.wait ticket with
                        | Ok resp ->
                            Option.iter
                              (fun id -> finish_session t id ~tenant resp)
                              session;
                            resp
                        | Error Crashed ->
                            (* test hook: the session stays journalled, as
                               after a real SIGKILL *)
                            Protocol.Err
                              (Protocol.Internal, "simulated crash")
                        | Error e ->
                            Protocol.Err (Protocol.Internal, Printexc.to_string e))
                  in
                  Tenants.release t.tenants ~now:(now ())
                    ~failed:(counts_as_failure resp) tenant;
                  resp))
  with Crashed -> Protocol.Err (Protocol.Internal, "simulated crash")

(* A recorded response must be attributable to the request itself: results
   and the tenant's own rejections (quota kills, bad parameters) replay
   identically, but server-side refusals — shed load, drain, an open
   breaker, an internal fault — describe a moment, not the request, and a
   retry deserves a fresh attempt. *)
let should_record = function
  | Protocol.Err
      ( ( Protocol.Overloaded | Protocol.Shutting_down | Protocol.Quarantined
        | Protocol.Too_many_tenants | Protocol.Internal | Protocol.Garbled ),
        _ ) ->
      false
  | _ -> true

let handle t req =
  let t0 = now () in
  let id, inner = Protocol.untag req in
  let resp =
    match id with
    | Some id when Protocol.mutating inner -> (
        let tenant = Option.value ~default:"-" (Protocol.tenant_of inner) in
        let key = tenant ^ ":" ^ id in
        let claim =
          locked t (fun () ->
              let rec go () =
                match Hashtbl.find_opt t.replay key with
                | Some { r_state = R_done resp } ->
                    Mips_obs.Metrics.incr t.metrics "daemon.replay.hits";
                    `Hit resp
                | Some { r_state = R_pending } ->
                    (* the first delivery is still executing: coalesce *)
                    Condition.wait t.cond t.lock;
                    go ()
                | None ->
                    Hashtbl.replace t.replay key { r_state = R_pending };
                    `Execute
              in
              go ())
        in
        match claim with
        | `Hit resp -> resp
        | `Execute ->
            let resp =
              match handle_inner t inner with
              | resp -> resp
              | exception e ->
                  (* never strand a Pending entry: a coalesced retry must
                     be able to re-execute *)
                  locked t (fun () ->
                      Hashtbl.remove t.replay key;
                      Condition.broadcast t.cond);
                  raise e
            in
            locked t (fun () ->
                (if should_record resp then begin
                   (match Hashtbl.find_opt t.replay key with
                   | Some e -> e.r_state <- R_done resp
                   | None ->
                       Hashtbl.replace t.replay key { r_state = R_done resp });
                   Mips_obs.Metrics.incr t.metrics "daemon.replay.recorded";
                   let q =
                     match Hashtbl.find_opt t.replay_order tenant with
                     | Some q -> q
                     | None ->
                         let q = Queue.create () in
                         Hashtbl.replace t.replay_order tenant q;
                         q
                   in
                   Queue.push key q;
                   while Queue.length q > max 1 t.config.replay_window do
                     Hashtbl.remove t.replay (Queue.pop q);
                     Mips_obs.Metrics.incr t.metrics "daemon.replay.evicted"
                   done
                 end
                 else Hashtbl.remove t.replay key);
                Condition.broadcast t.cond);
            resp)
    | _ -> handle_inner t inner
  in
  observe t (Protocol.request_kind inner) (now () -. t0);
  (match resp with
  | Protocol.Err (reject, _) -> count_reject t reject
  | _ -> ());
  resp

(* --- connections ------------------------------------------------------------ *)

let send fd resp = Frame.write fd (Protocol.encode_response resp)

let connection t fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec loop () =
    match Frame.read ~limit:t.config.max_frame fd with
    | Error (Frame.Closed | Frame.Truncated | Frame.Timed_out
            | Frame.Io_error _) ->
        ()
    | Error ((Frame.Bad_magic | Frame.Bad_version _ | Frame.Oversized _
             | Frame.Corrupt _) as e) ->
        (* typed refusal, then close: frame sync cannot be trusted.
           [Garbled], not [Bad_request] — no request was decoded, so a
           retrying sender knows its (well-formed) frame was damaged in
           flight and may blindly resend *)
        ignore
          (send fd (Protocol.Err (Protocol.Garbled, Frame.error_to_string e)))
    | Ok payload -> (
        match Protocol.decode_request payload with
        | Error e ->
            (* the frame boundary held, so the connection survives *)
            (match
               send fd
                 (Protocol.Err (Protocol.Bad_request, Frame.error_to_string e))
             with
            | Ok () -> loop ()
            | Error _ -> ())
        | Ok req -> (
            let resp = handle t req in
            match send fd resp with
            | Error _ -> ()
            | Ok () -> ( match req with Protocol.Shutdown -> () | _ -> loop ())))
  in
  loop ()

let accept_loop t () =
  let rec loop () =
    if locked t (fun () -> t.closing) then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ -> (
              (* a failed thread spawn must not leak the accepted fd *)
              try ignore (Thread.create (connection t) fd)
              with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* evict finished sessions idle past the deadline — only journalled ones,
   whose results remain collectable from disk — and wake any timed
   waiters *)
let janitor t () =
  let rec loop () =
    if locked t (fun () -> t.stopping) then ()
    else begin
      Thread.delay 0.1;
      if t.config.state_dir <> None then
        locked t (fun () ->
            let cutoff = now () -. t.config.idle_evict_s in
            let stale =
              Hashtbl.fold
                (fun id s acc ->
                  match s.s_state with
                  | Finished _ when s.s_touched < cutoff -> id :: acc
                  | _ -> acc)
                t.sessions []
            in
            List.iter
              (fun id ->
                Hashtbl.remove t.sessions id;
                t.evicted <- t.evicted + 1)
              stale;
            Condition.broadcast t.cond);
      loop ()
    end
  in
  loop ()

(* --- recovery ---------------------------------------------------------------- *)

(* Every journalled session without a recorded result is resubmitted: the
   job resumes from its checkpoint when one survived, and re-runs from its
   journalled parameters when not — both complete bit-identically to an
   uninterrupted run, because every job is a deterministic function of its
   parameters and the checkpoint codec is lossless. *)
let recover t =
  match t.config.state_dir with
  | None -> ()
  | Some dir ->
      Sys.readdir dir |> Array.to_list |> List.sort String.compare
      |> List.iter (fun file ->
             match Filename.chop_suffix_opt ~suffix:".meta" file with
             | None -> ()
             | Some base
               when String.length base > 8
                    && String.sub base 0 8 = "session-" -> (
                 let id = String.sub base 8 (String.length base - 8) in
                 match read_done t id with
                 | Some _ -> remove_session_files t id [ ".meta" ]
                 | None -> (
                     match read_meta t id with
                     | None -> ()
                     | Some req -> (
                         match (Protocol.tenant_of req, job_of t req) with
                         | Some tenant, Some job -> (
                             locked t (fun () ->
                                 Hashtbl.replace t.sessions id
                                   { s_tenant = tenant; s_state = Running;
                                     s_touched = now () });
                             match Admission.submit_unbounded t.exec job with
                             | Error `Shutting_down -> ()
                             | Ok ticket ->
                                 ignore
                                   (Thread.create
                                      (fun () ->
                                        match Admission.wait ticket with
                                        | Ok resp -> (
                                            try finish_session t id ~tenant resp
                                            with Crashed -> ())
                                        | Error _ -> ())
                                      ()))
                         | _ -> ())))
             | Some _ -> ())

(* --- lifecycle ---------------------------------------------------------------- *)

let start config =
  (* the daemon executes --engine=jit requests in-process *)
  Mips_jit.install ();
  (match config.state_dir with
  | Some dir when not (Sys.file_exists dir) -> (
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (e, _, _) ->
        raise
          (Sys_error
             (Printf.sprintf "cannot create state directory %s: %s" dir
                (Unix.error_message e))))
  | _ -> ());
  (* fsck before anything reads the journal: recovery then only ever sees
     a journal whose invariant holds, and a damaged one degrades to a
     smaller journal plus a quarantine/ directory instead of a daemon
     that cannot start *)
  let fsck_report =
    match config.state_dir with
    | Some dir -> ( match Journal.fsck dir with Ok r -> Some r | Error _ -> None)
    | None -> None
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket then Sys.remove config.socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket);
     Unix.listen listen_fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise
       (Sys_error
          (Printf.sprintf "cannot bind %s: %s" config.socket
             (Unix.error_message e))));
  let t =
    {
      config;
      lock = Mutex.create ();
      cond = Condition.create ();
      sessions = Hashtbl.create 32;
      replay = Hashtbl.create 64;
      replay_order = Hashtbl.create 16;
      crash_ops = Atomic.make 0;
      crash_fired = Atomic.make false;
      metrics = Mips_obs.Metrics.create ();
      evicted = 0;
      stopping = false;
      closing = false;
      tenants = Tenants.create ~quota:config.quota ~max_tenants:config.max_tenants ();
      exec = Admission.create ~jobs:config.jobs ~queue:config.queue;
      heavy_lock = Mutex.create ();
      listen_fd;
      accept_thread = None;
      janitor_thread = None;
    }
  in
  (match fsck_report with
  | Some r ->
      Mips_obs.Metrics.set t.metrics "daemon.fsck.repaired" r.Journal.repaired;
      Mips_obs.Metrics.set t.metrics "daemon.fsck.quarantined"
        r.Journal.quarantined
  | None -> ());
  recover t;
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.janitor_thread <- Some (Thread.create (janitor t) ());
  t

let request_stop t =
  locked t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.cond)

let stop_requested t = locked t (fun () -> t.stopping)

let wait_stopped t =
  while not (stop_requested t) do
    Thread.delay 0.1
  done

let stop ?(drain = true) t =
  request_stop t;
  if drain then ignore (Admission.drain t.exec ~deadline_s:t.config.drain_s);
  Admission.shutdown t.exec;
  locked t (fun () -> t.closing <- true);
  Option.iter Thread.join t.accept_thread;
  Option.iter Thread.join t.janitor_thread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists t.config.socket then (
    try Sys.remove t.config.socket with Sys_error _ -> ());
  (* fail any collect waiters still parked on running sessions *)
  locked t (fun () -> Condition.broadcast t.cond)
