(** [fsck] for the [mipsd] session journal.

    The journal's invariant is that every session on disk is one of:
    {ul
    {- {e finished} — a valid [.done] holds the recorded response; any
       leftover [.meta]/[.ckpt]/[.soak] is stale and removable;}
    {- {e recoverable} — a valid [.meta] holds the request, and because
       every job is a deterministic function of its journalled
       parameters, corrupt checkpoints (or a torn [.done]) may simply be
       deleted and recomputed;}
    {- {e unrecoverable} — neither root decodes.  These are moved into
       [quarantine/] so a damaged journal degrades to a smaller journal
       instead of a daemon that refuses to start.}}

    Run by [mipsd fsck] and by {!Server.start} before recovery, so the
    recovery scan only ever sees a journal the invariant holds for.
    Validity checks ride the {!Mips_resilience.Snapshot} container digest:
    truncation and bit damage from a torn write are detected, not just
    unparsable bytes. *)

type verdict =
  | Intact
  | Repaired of string list  (** repair actions taken *)
  | Quarantined of string list  (** files moved into [quarantine/] *)

type report = {
  dir : string;
  scanned : int;  (** sessions examined *)
  intact : int;
  repaired : int;
  quarantined : int;
  tmp_removed : int;  (** leftover atomic-write [.tmp] files deleted *)
  sessions : (string * verdict) list;  (** sorted by session id *)
}

val fsck : string -> (report, string) result
(** Scan and repair [dir] in place.  [Error] only when [dir] is not a
    readable directory — damaged session files are never an error, they
    are what fsck exists to absorb. *)

val report_json : report -> Mips_obs.Json.t
(** Schema ["mipsd-fsck/1"]. *)

val pp_report : Format.formatter -> report -> unit
