(* Payloads are encoded with the Snapshot.Io primitives: a u8 constructor
   tag followed by the fields in declaration order.  Decoders run under
   [total]: Underflow becomes Truncated, a bad tag or flag byte becomes
   Corrupt — the same totality contract the checkpoint codec keeps. *)

module Io = Mips_resilience.Snapshot.Io

type codegen = { byte : bool; early_out : bool; level : int }

let default_codegen = { byte = false; early_out = false; level = 3 }

type request =
  | Ping
  | Compile of { tenant : string; source : string; cg : codegen }
  | Run of {
      tenant : string;
      session : string option;
      source : string;
      cg : codegen;
      input : string;
      fuel : int;
      engine : string;
    }
  | Soak of {
      tenant : string;
      session : string option;
      seed : int;
      steps : int;
      programs : int;
      segments : int;
      differential : int;
      engine : string;
    }
  | Report of { tenant : string }
  | Collect of { tenant : string; session : string }
  | Status
  | Shutdown
  | Tagged of { id : string; req : request }
      (* the idempotency envelope: a client-generated request ID the server
         deduplicates against its per-tenant replay window, so a retried
         mutating request is answered from the recorded first execution
         instead of running twice.  One level only: a Tagged inside a
         Tagged is Corrupt. *)

type run_reply = {
  output : string;
  exit_status : int option;
  halted : bool;
  fault : string option;
  cycles : int;
  retries : int;
}

type reject =
  | Bad_request
  | Garbled
  | Overloaded
  | Quota of string
  | Quarantined
  | Too_many_tenants
  | Unknown_session
  | Shutting_down
  | Internal

let reject_to_string = function
  | Bad_request -> "bad request"
  | Garbled -> "garbled frame"
  | Overloaded -> "overloaded"
  | Quota what -> "quota exceeded: " ^ what
  | Quarantined -> "tenant quarantined"
  | Too_many_tenants -> "too many tenants"
  | Unknown_session -> "unknown session"
  | Shutting_down -> "shutting down"
  | Internal -> "internal error"

type response =
  | Pong
  | Listing of string
  | Ran of run_reply
  | Soaked of string
  | Reported of string
  | Status_r of string
  | Bye
  | Err of reject * string

let rec tenant_of = function
  | Ping | Status | Shutdown -> None
  | Compile { tenant; _ }
  | Run { tenant; _ }
  | Soak { tenant; _ }
  | Report { tenant }
  | Collect { tenant; _ } ->
      Some tenant
  | Tagged { req; _ } -> tenant_of req

let rec request_kind = function
  | Ping -> "ping"
  | Compile _ -> "compile"
  | Run _ -> "run"
  | Soak _ -> "soak"
  | Report _ -> "report"
  | Collect _ -> "collect"
  | Status -> "status"
  | Shutdown -> "shutdown"
  | Tagged { req; _ } -> request_kind req

(* billable requests are the ones worth deduplicating: everything else is
   a cheap idempotent read the retry layer can simply re-issue *)
let mutating = function
  | Compile _ | Run _ | Soak _ | Report _ -> true
  | Ping | Status | Shutdown | Collect _ | Tagged _ -> false

let untag = function Tagged { id; req } -> (Some id, req) | req -> (None, req)

let valid_name s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

(* --- codecs ---------------------------------------------------------------- *)

let w_codegen b { byte; early_out; level } =
  Io.W.bool b byte;
  Io.W.bool b early_out;
  Io.W.u8 b level

let r_codegen r =
  let byte = Io.R.bool r in
  let early_out = Io.R.bool r in
  let level = Io.R.u8 r in
  if level > 3 then
    raise (Mips_resilience.Snapshot.Bad (Printf.sprintf "bad level %d" level));
  { byte; early_out; level }

let rec w_request b req =
  (match req with
  | Ping -> Io.W.u8 b 0
  | Compile { tenant; source; cg } ->
      Io.W.u8 b 1;
      Io.W.str b tenant;
      Io.W.str b source;
      w_codegen b cg
  | Run { tenant; session; source; cg; input; fuel; engine } ->
      Io.W.u8 b 2;
      Io.W.str b tenant;
      Io.W.opt Io.W.str b session;
      Io.W.str b source;
      w_codegen b cg;
      Io.W.str b input;
      Io.W.int b fuel;
      Io.W.str b engine
  | Soak { tenant; session; seed; steps; programs; segments; differential;
           engine } ->
      Io.W.u8 b 3;
      Io.W.str b tenant;
      Io.W.opt Io.W.str b session;
      Io.W.int b seed;
      Io.W.int b steps;
      Io.W.int b programs;
      Io.W.int b segments;
      Io.W.int b differential;
      Io.W.str b engine
  | Report { tenant } ->
      Io.W.u8 b 4;
      Io.W.str b tenant
  | Collect { tenant; session } ->
      Io.W.u8 b 5;
      Io.W.str b tenant;
      Io.W.str b session
  | Status -> Io.W.u8 b 6
  | Shutdown -> Io.W.u8 b 7
  | Tagged { id; req } ->
      Io.W.u8 b 8;
      Io.W.str b id;
      Io.W.str b (encode_request req))

and encode_request req =
  let b = Io.W.create () in
  w_request b req;
  Io.W.contents b

(* run a decoder body under the totality contract; trailing bytes after a
   well-formed value are a framing bug, so they are Corrupt too *)
let total f data =
  let r = Io.R.make data in
  match f r with
  | v ->
      if Io.R.remaining r = 0 then Ok v
      else Error (Frame.Corrupt "trailing bytes after payload")
  | exception Io.R.Underflow -> Error Frame.Truncated
  | exception Mips_resilience.Snapshot.Bad m -> Error (Frame.Corrupt m)

let bad fmt = Printf.ksprintf (fun m -> Mips_resilience.Snapshot.Bad m) fmt

let rec decode_request data =
  total
    (fun r ->
      match Io.R.u8 r with
      | 0 -> Ping
      | 1 ->
          let tenant = Io.R.str r in
          let source = Io.R.str r in
          let cg = r_codegen r in
          Compile { tenant; source; cg }
      | 2 ->
          let tenant = Io.R.str r in
          let session = Io.R.opt Io.R.str r in
          let source = Io.R.str r in
          let cg = r_codegen r in
          let input = Io.R.str r in
          let fuel = Io.R.int r in
          let engine = Io.R.str r in
          Run { tenant; session; source; cg; input; fuel; engine }
      | 3 ->
          let tenant = Io.R.str r in
          let session = Io.R.opt Io.R.str r in
          let seed = Io.R.int r in
          let steps = Io.R.int r in
          let programs = Io.R.int r in
          let segments = Io.R.int r in
          let differential = Io.R.int r in
          let engine = Io.R.str r in
          Soak
            { tenant; session; seed; steps; programs; segments; differential;
              engine }
      | 4 -> Report { tenant = Io.R.str r }
      | 5 ->
          let tenant = Io.R.str r in
          let session = Io.R.str r in
          Collect { tenant; session }
      | 6 -> Status
      | 7 -> Shutdown
      | 8 -> (
          let id = Io.R.str r in
          if not (valid_name id) then raise (bad "invalid request id %S" id);
          match decode_request (Io.R.str r) with
          | Ok (Tagged _) -> raise (bad "nested request id")
          | Ok req -> Tagged { id; req }
          | Error e ->
              (* the envelope's length prefix held, so a broken inner body
                 is corruption of this frame, not outer truncation *)
              raise (bad "inner request: %s" (Frame.error_to_string e)))
      | t -> raise (bad "bad request tag %d" t))
    data

let w_reject b = function
  | Bad_request -> Io.W.u8 b 0
  | Overloaded -> Io.W.u8 b 1
  | Quota what ->
      Io.W.u8 b 2;
      Io.W.str b what
  | Quarantined -> Io.W.u8 b 3
  | Too_many_tenants -> Io.W.u8 b 4
  | Unknown_session -> Io.W.u8 b 5
  | Shutting_down -> Io.W.u8 b 6
  | Internal -> Io.W.u8 b 7
  | Garbled -> Io.W.u8 b 8

let r_reject r =
  match Io.R.u8 r with
  | 0 -> Bad_request
  | 1 -> Overloaded
  | 2 -> Quota (Io.R.str r)
  | 3 -> Quarantined
  | 4 -> Too_many_tenants
  | 5 -> Unknown_session
  | 6 -> Shutting_down
  | 7 -> Internal
  | 8 -> Garbled
  | t -> raise (bad "bad reject tag %d" t)

let encode_response resp =
  let b = Io.W.create () in
  (match resp with
  | Pong -> Io.W.u8 b 0
  | Listing s ->
      Io.W.u8 b 1;
      Io.W.str b s
  | Ran { output; exit_status; halted; fault; cycles; retries } ->
      Io.W.u8 b 2;
      Io.W.str b output;
      Io.W.opt Io.W.int b exit_status;
      Io.W.bool b halted;
      Io.W.opt Io.W.str b fault;
      Io.W.int b cycles;
      Io.W.int b retries
  | Soaked s ->
      Io.W.u8 b 3;
      Io.W.str b s
  | Reported s ->
      Io.W.u8 b 4;
      Io.W.str b s
  | Status_r s ->
      Io.W.u8 b 5;
      Io.W.str b s
  | Bye -> Io.W.u8 b 6
  | Err (reject, detail) ->
      Io.W.u8 b 7;
      w_reject b reject;
      Io.W.str b detail);
  Io.W.contents b

let decode_response data =
  total
    (fun r ->
      match Io.R.u8 r with
      | 0 -> Pong
      | 1 -> Listing (Io.R.str r)
      | 2 ->
          let output = Io.R.str r in
          let exit_status = Io.R.opt Io.R.int r in
          let halted = Io.R.bool r in
          let fault = Io.R.opt Io.R.str r in
          let cycles = Io.R.int r in
          let retries = Io.R.int r in
          Ran { output; exit_status; halted; fault; cycles; retries }
      | 3 -> Soaked (Io.R.str r)
      | 4 -> Reported (Io.R.str r)
      | 5 -> Status_r (Io.R.str r)
      | 6 -> Bye
      | 7 ->
          let reject = r_reject r in
          let detail = Io.R.str r in
          Err (reject, detail)
      | t -> raise (bad "bad response tag %d" t))
    data
