(* The paper's Section 2.3.2 worked example:

       Found := (Rec = Key) OR (I = 13)

   compiled four ways: full evaluation and early-out on a condition-code
   machine (Figure 1), conditional set (Figure 2), and the MIPS
   set-conditionally instruction (Figure 3).

     dune exec examples/boolean_strategies.exe *)

let () =
  Mips_analysis.Report.figures1to3 Format.std_formatter;

  (* the same choice also shapes whole programs: compile a corpus program
     under both MIPS strategies and compare dynamic cycle counts *)
  let entry = Mips_corpus.Corpus.find "queens" in
  Format.printf "@.queens, whole-program effect of the boolean strategy:@.";
  List.iter
    (fun (name, strategy) ->
      let config =
        { Mips_ir.Config.default with Mips_ir.Config.bool_strategy = strategy }
      in
      let res, cpu =
        Mips_codegen.Compile.run_with_machine ~config
          entry.Mips_corpus.Corpus.source
      in
      assert res.Mips_machine.Hosted.halted;
      let s = Mips_machine.Cpu.stats cpu in
      Format.printf "  %-16s %8d cycles, %6d branches taken@." name
        s.Mips_machine.Stats.cycles s.Mips_machine.Stats.branches_taken)
    [ ("set-conditionally", Mips_ir.Config.Setcond);
      ("early-out", Mips_ir.Config.Early_out) ]
