examples/quickstart.ml: Format List Mips_codegen Mips_machine Mips_reorg Printf
