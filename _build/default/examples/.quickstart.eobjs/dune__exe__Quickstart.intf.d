examples/quickstart.mli:
