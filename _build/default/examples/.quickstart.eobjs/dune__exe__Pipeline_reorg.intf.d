examples/pipeline_reorg.mli:
