examples/boolean_strategies.mli:
