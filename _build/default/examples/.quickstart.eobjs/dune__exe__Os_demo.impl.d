examples/os_demo.ml: Format Kernel List Mips_codegen Mips_corpus Mips_ir Mips_os
