examples/boolean_strategies.ml: Format List Mips_analysis Mips_codegen Mips_corpus Mips_ir Mips_machine
