examples/pipeline_reorg.ml: Format List Mips_analysis Mips_codegen Mips_corpus Mips_machine Mips_reorg
