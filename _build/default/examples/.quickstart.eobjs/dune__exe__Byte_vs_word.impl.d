examples/byte_vs_word.ml: Format Mips_analysis Mips_codegen Mips_corpus Mips_ir Mips_machine
