examples/byte_vs_word.mli:
