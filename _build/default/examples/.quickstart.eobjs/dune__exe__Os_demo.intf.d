examples/os_demo.mli:
