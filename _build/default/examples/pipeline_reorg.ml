(* Software-imposed pipeline interlocks (the paper's Section 4.2.1).

   The machine has no interlock hardware: a loaded register is stale for one
   instruction word, and the word after a branch always executes.  The
   reorganizer makes naive code correct by inserting no-ops (level "none"),
   then earns them back by scheduling, packing, and filling branch delay
   slots.

     dune exec examples/pipeline_reorg.exe *)

let () =
  (* Figure 4: before and after, on the paper's fragment shape *)
  Mips_analysis.Report.figure4 Format.std_formatter;

  (* whole-program effect: static words and dynamic cycles per level *)
  let entry = Mips_corpus.Corpus.find "qsort" in
  Format.printf "@.qsort at each postpass level:@.";
  Format.printf "  %-24s %8s %10s %8s@." "level" "words" "cycles" "nops run";
  List.iter
    (fun level ->
      let p = Mips_codegen.Compile.compile ~level entry.Mips_corpus.Corpus.source in
      let cpu = Mips_machine.Cpu.create () in
      let res = Mips_machine.Hosted.run_program_on cpu p in
      assert res.Mips_machine.Hosted.halted;
      let s = Mips_machine.Cpu.stats cpu in
      Format.printf "  %-24s %8d %10d %8d@."
        (Mips_reorg.Pipeline.level_name level)
        (Mips_machine.Program.static_count p)
        s.Mips_machine.Stats.cycles s.Mips_machine.Stats.nops)
    Mips_reorg.Pipeline.all_levels;

  (* the ablation the paper argues for: reorganized code on the
     interlock-free machine vs naive code on a machine with interlock
     hardware (which pays stall cycles instead of no-ops) *)
  let best = Mips_codegen.Compile.compile entry.Mips_corpus.Corpus.source in
  let naive =
    Mips_codegen.Compile.compile ~level:Mips_reorg.Pipeline.Reorganized
      entry.Mips_corpus.Corpus.source
  in
  let cycles config p =
    let cpu = Mips_machine.Cpu.create ~config () in
    let res = Mips_machine.Hosted.run_program_on cpu p in
    assert res.Mips_machine.Hosted.halted;
    (Mips_machine.Cpu.stats cpu).Mips_machine.Stats.cycles
  in
  Format.printf "@.software interlocks vs hardware interlocks (qsort):@.";
  Format.printf "  no-interlock machine, reorganized code: %8d cycles@."
    (cycles Mips_machine.Cpu.default_config best);
  Format.printf "  interlocked machine, unpacked code:     %8d cycles@."
    (cycles Mips_machine.Cpu.interlocked_config naive)
