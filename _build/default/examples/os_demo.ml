(* The systems layer (the paper's Section 3): demand paging over the on-chip
   segmentation + off-chip page map, exception dispatch through the surprise
   register, a single interrupt line driving round-robin preemption, and
   context switches that never touch the page map.

     dune exec examples/os_demo.exe *)

open Mips_os

let () =
  (* user programs put their stacks in the high half of the process address
     space — the paper's split segment *)
  let config =
    { Mips_ir.Config.default with Mips_ir.Config.stack_top = Kernel.user_stack_top }
  in
  let kernel = Kernel.create ~data_frames:6 ~code_frames:6 ~quantum:800 () in
  List.iter
    (fun name ->
      let e = Mips_corpus.Corpus.find name in
      Kernel.spawn kernel ~input:e.Mips_corpus.Corpus.input ~name
        (Mips_codegen.Compile.compile ~config e.Mips_corpus.Corpus.source))
    [ "fib"; "sieve"; "banner"; "expreval" ];
  let report = Kernel.run kernel in
  List.iter
    (fun (p : Kernel.proc_report) ->
      Format.printf "--- %s (exit %s) ---@.%s@." p.Kernel.pname
        (match p.Kernel.exit_status with Some s -> string_of_int s | None -> "?")
        p.Kernel.output)
    report.Kernel.procs;
  Format.printf
    "@.kernel: %d context switches (%d timer interrupts), %d page faults, %d \
     evictions@."
    report.Kernel.switches report.Kernel.interrupts report.Kernel.page_faults
    report.Kernel.evictions;
  Format.printf "page-map changes during context switches: %d@."
    report.Kernel.map_changes_during_switches;
  Format.printf "cycles charged per switch (register save/restore at full \
                 memory bandwidth): %d@."
    report.Kernel.switch_cycle_cost
