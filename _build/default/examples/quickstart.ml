(* Quickstart: compile a Pascal-subset program for the MIPS-like machine,
   run it on the simulator, and look at what the compiler produced.

     dune exec examples/quickstart.exe *)

let source =
  {|
program greatest;
const n = 8;
var a : array [0..7] of integer;
    i, best : integer;

function max(x, y : integer) : integer;
begin
  if x > y then max := x else max := y
end;

begin
  for i := 0 to n - 1 do a[i] := (i * 37 + 11) mod 50;
  best := a[0];
  for i := 1 to n - 1 do best := max(best, a[i]);
  write('greatest of ');
  write(n);
  write(' values: ');
  writeln(best)
end.
|}

let () =
  (* one call: parse, type check, lower, allocate registers, emit,
     reorganize (schedule + pack + fill branch delays), assemble, load, run *)
  let result, cpu = Mips_codegen.Compile.run_with_machine source in
  print_string result.Mips_machine.Hosted.output;
  Printf.printf "exit status: %s\n"
    (match result.Mips_machine.Hosted.exit_status with
    | Some s -> string_of_int s
    | None -> "-");

  (* the simulator kept statistics *)
  let stats = Mips_machine.Cpu.stats cpu in
  Format.printf "@.%a@." Mips_machine.Stats.pp stats;

  (* the same program, at the four postpass levels of the paper's Table 11 *)
  Format.printf "@.static instruction words per optimization level:@.";
  List.iter
    (fun level ->
      let p = Mips_codegen.Compile.compile ~level source in
      Format.printf "  %-24s %4d words@."
        (Mips_reorg.Pipeline.level_name level)
        (Mips_machine.Program.static_count p))
    Mips_reorg.Pipeline.all_levels;

  (* and the final machine code *)
  Format.printf "@.final listing:@.%a@." Mips_machine.Program.pp_listing
    (Mips_codegen.Compile.compile source)
