test/test_machine.ml: Alcotest Alu Array Branch Cause Cond Cpu Hosted List Mem Mips_isa Mips_machine Monitor Note Operand Pagemap Program QCheck2 QCheck_alcotest Reg Segmap Stats Surprise Word
