test/test_main.ml: Alcotest Test_analysis Test_compiler Test_isa Test_machine Test_os Test_reorg
