test/test_analysis.ml: Alcotest Bool_cost Bool_stats Byte_cost Constants Figures List Mips_analysis Mips_cc Refpatterns Snippets Table11
