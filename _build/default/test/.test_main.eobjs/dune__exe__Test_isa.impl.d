test/test_isa.ml: Alcotest Alu Branch Cond Encode Gen Hazard List Mem Mips_isa Operand Piece QCheck2 QCheck_alcotest Reg Word Word32
