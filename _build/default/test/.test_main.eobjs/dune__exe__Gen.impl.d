test/gen.ml: Alu Branch Cond Encode Mem Mips_isa Operand Piece QCheck2 Reg Word Word32
