test/test_compiler.ml: Alcotest Ast Compile Config Ir Irgen Layout Lexer List Mips_codegen Mips_corpus Mips_frontend Mips_ir Mips_machine Mips_reorg Parser Regalloc Semant String Tast Token Types
