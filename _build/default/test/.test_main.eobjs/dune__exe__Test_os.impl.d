test/test_os.ml: Alcotest Alu Branch Cause Hosted Kernel List Mem Mips_codegen Mips_corpus Mips_ir Mips_isa Mips_machine Mips_os Mips_reorg Monitor Operand Piece Printf Reg String
