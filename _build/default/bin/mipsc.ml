(* mipsc — the command-line driver.

   mipsc run FILE            compile and execute on the simulator
   mipsc compile FILE        compile and print the final listing
   mipsc asm FILE            print the symbolic assembly (before the postpass)
   mipsc levels FILE         static counts at each postpass level (Table 11 view)
   mipsc corpus [NAME]       run corpus programs
   mipsc report              regenerate every table and figure of the paper

   FILE may also name a corpus program (e.g. `mipsc run fib`). *)

open Cmdliner

let read_source path =
  if Sys.file_exists path then In_channel.with_open_text path In_channel.input_all
  else
    match Mips_corpus.Corpus.find path with
    | e -> e.Mips_corpus.Corpus.source
    | exception Not_found ->
        Printf.eprintf "mipsc: no such file or corpus program: %s\n" path;
        exit 2

let config_of ~byte ~early_out =
  let base =
    if byte then Mips_ir.Config.byte_machine else Mips_ir.Config.default
  in
  if early_out then
    { base with Mips_ir.Config.bool_strategy = Mips_ir.Config.Early_out }
  else base

let level_of = function
  | 0 -> Mips_reorg.Pipeline.Naive
  | 1 -> Mips_reorg.Pipeline.Reorganized
  | 2 -> Mips_reorg.Pipeline.Packed
  | _ -> Mips_reorg.Pipeline.Delay_filled

(* common flags *)
let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Source file or corpus program name.")

let byte_flag =
  Arg.(value & flag & info [ "byte-addressed" ] ~doc:"Target the byte-addressed comparison machine.")

let early_flag =
  Arg.(value & flag & info [ "early-out" ] ~doc:"Early-out boolean evaluation instead of set-conditionally.")

let level_flag =
  Arg.(value & opt int 3 & info [ "O" ] ~docv:"N" ~doc:"Postpass level 0-3 (none/reorganize/pack/branch-delay).")

let input_flag =
  Arg.(value & opt string "" & info [ "input" ] ~docv:"TEXT" ~doc:"Input stream for the getchar monitor call.")

let stats_flag = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")

let run_cmd =
  let run file byte early_out level input stats =
    let config = config_of ~byte ~early_out in
    let src = read_source file in
    let input =
      if input = "" then
        match Mips_corpus.Corpus.find file with
        | e -> e.Mips_corpus.Corpus.input
        | exception Not_found -> ""
      else input
    in
    let res, cpu =
      Mips_codegen.Compile.run_with_machine ~config ~level:(level_of level)
        ~fuel:500_000_000 ~input src
    in
    print_string res.Mips_machine.Hosted.output;
    (match res.Mips_machine.Hosted.fault with
    | Some (c, d) ->
        Printf.eprintf "fault: %s (%d)\n" (Mips_machine.Cause.show c) d
    | None -> ());
    if stats then Format.eprintf "%a@." Mips_machine.Stats.pp (Mips_machine.Cpu.stats cpu);
    if not res.Mips_machine.Hosted.halted then begin
      prerr_endline "mipsc: out of fuel";
      exit 3
    end;
    exit (Option.value ~default:0 res.Mips_machine.Hosted.exit_status)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a program on the simulator.")
    Term.(const run $ file_arg $ byte_flag $ early_flag $ level_flag $ input_flag $ stats_flag)

let compile_cmd =
  let compile file byte early_out level =
    let config = config_of ~byte ~early_out in
    let p =
      Mips_codegen.Compile.compile ~config ~level:(level_of level)
        (read_source file)
    in
    Format.printf "%a@." Mips_machine.Program.pp_listing p;
    Format.printf "; %d instruction words@." (Mips_machine.Program.static_count p)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile and print the final machine listing.")
    Term.(const compile $ file_arg $ byte_flag $ early_flag $ level_flag)

let asm_cmd =
  let asm file byte early_out =
    let config = config_of ~byte ~early_out in
    let a = Mips_codegen.Compile.to_asm ~config (read_source file) in
    Format.printf "%a@." Mips_reorg.Asm.pp a
  in
  Cmd.v (Cmd.info "asm" ~doc:"Print the symbolic assembly before the reorganizer.")
    Term.(const asm $ file_arg $ byte_flag $ early_flag)

let levels_cmd =
  let levels file byte =
    let config = config_of ~byte ~early_out:false in
    let asm = Mips_codegen.Compile.to_asm ~config (read_source file) in
    List.iter
      (fun level ->
        let p = Mips_reorg.Pipeline.compile ~level asm in
        Format.printf "%-24s %6d words@."
          (Mips_reorg.Pipeline.level_name level)
          (Mips_machine.Program.static_count p))
      Mips_reorg.Pipeline.all_levels
  in
  Cmd.v
    (Cmd.info "levels" ~doc:"Static instruction counts at each postpass level.")
    Term.(const levels $ file_arg $ byte_flag)

let corpus_cmd =
  let corpus name =
    let entries =
      match name with
      | Some n -> [ Mips_corpus.Corpus.find n ]
      | None -> Mips_corpus.Corpus.all
    in
    List.iter
      (fun (e : Mips_corpus.Corpus.entry) ->
        Printf.printf "--- %s: %s\n%!" e.Mips_corpus.Corpus.name
          e.Mips_corpus.Corpus.description;
        let res =
          Mips_codegen.Compile.run ~fuel:500_000_000
            ~input:e.Mips_corpus.Corpus.input e.Mips_corpus.Corpus.source
        in
        print_string res.Mips_machine.Hosted.output)
      entries
  in
  Cmd.v (Cmd.info "corpus" ~doc:"Run corpus programs.")
    Term.(
      const corpus
      $ Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Corpus program (all when omitted)."))

let report_cmd =
  let report with_benchmarks =
    Mips_analysis.Report.print_all ~include_heavy:with_benchmarks
      Format.std_formatter
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate every table and figure of the paper's evaluation.")
    Term.(
      const report
      $ Arg.(
          value & flag
          & info [ "with-benchmarks" ]
              ~doc:
                "Include the Table 11 benchmark trio in the dynamic                  reference-pattern corpus."))

let () =
  let doc = "compiler, reorganizer and simulator for the MIPS tradeoffs reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "mipsc" ~version:"1.0.0" ~doc)
          [ run_cmd; compile_cmd; asm_cmd; levels_cmd; corpus_cmd; report_cmd ]))
