lib/os/kernel.mli: Cause Cpu Mips_machine Program
