lib/os/kernel.ml: Array Buffer Cause Char Cpu Hashtbl Hosted List Mips_isa Mips_machine Monitor Note Pagemap Program Reg Segmap Stats String Surprise Word Word32
