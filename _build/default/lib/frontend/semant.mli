(** Semantic analysis: name resolution, constant folding of declarations,
    and type checking.  Produces the typed AST consumed by the code
    generators.

    Divergences from full Pascal (documented in DESIGN.md): procedures do
    not nest; arrays and records can only be passed as [var] parameters and
    cannot be assigned wholesale; [read] reads a single character;
    [write]/[writeln] accept integer, char and boolean expressions and
    string literals; booleans print as 0/1. *)

exception Error of Loc.t * string

val check : Ast.program -> Tast.program
(** @raise Error on any semantic violation. *)

val check_string : string -> Tast.program
(** Parse and check a source string. *)
