(* Tokens of the Pascal-subset language. *)

type t =
  | Ident of string
  | Num of int
  | CharLit of char
  | StrLit of string
  (* keywords *)
  | Program
  | Const
  | Type
  | Var
  | Procedure
  | Function
  | Begin
  | End
  | If
  | Then
  | Else
  | While
  | Do
  | Repeat
  | Until
  | For
  | To
  | Downto
  | Case
  | Of
  | Array
  | Packed
  | Record
  | Div
  | Mod
  | And
  | Or
  | Not
  | True
  | False
  (* punctuation and operators *)
  | Plus
  | Minus
  | Star
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Assign  (* := *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Colon
  | Semi
  | Dot
  | Dotdot
  | Eof
[@@deriving eq, show]

let keyword_table =
  [ ("program", Program); ("const", Const); ("type", Type); ("var", Var);
    ("procedure", Procedure); ("function", Function); ("begin", Begin);
    ("end", End); ("if", If); ("then", Then); ("else", Else); ("while", While);
    ("do", Do); ("repeat", Repeat); ("until", Until); ("for", For); ("to", To);
    ("downto", Downto); ("case", Case); ("of", Of); ("array", Array);
    ("packed", Packed); ("record", Record); ("div", Div); ("mod", Mod);
    ("and", And); ("or", Or); ("not", Not); ("true", True); ("false", False) ]

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Num n -> Printf.sprintf "number %d" n
  | CharLit c -> Printf.sprintf "character %C" c
  | StrLit s -> Printf.sprintf "string %S" s
  | Eof -> "end of file"
  | t -> (
      match List.find_opt (fun (_, k) -> equal k t) keyword_table with
      | Some (name, _) -> Printf.sprintf "keyword %S" name
      | None -> show t)
