lib/frontend/lexer.pp.ml: Buffer List Loc Printf String Token
