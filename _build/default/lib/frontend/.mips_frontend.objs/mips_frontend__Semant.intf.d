lib/frontend/semant.pp.mli: Ast Loc Tast
