lib/frontend/types.pp.ml: Format List Ppx_deriving_runtime String
