lib/frontend/ast.pp.ml: List Loc Ppx_deriving_runtime
