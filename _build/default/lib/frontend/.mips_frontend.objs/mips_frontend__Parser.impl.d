lib/frontend/parser.pp.ml: Ast Lexer List Loc Printf Token
