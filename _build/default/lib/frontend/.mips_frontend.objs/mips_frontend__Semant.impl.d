lib/frontend/semant.pp.ml: Array Ast Char Format Hashtbl List Loc Option Parser String Tast Types
