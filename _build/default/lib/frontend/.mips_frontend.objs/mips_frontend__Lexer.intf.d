lib/frontend/lexer.pp.mli: Loc Token
