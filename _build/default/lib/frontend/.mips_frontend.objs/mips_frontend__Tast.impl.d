lib/frontend/tast.pp.ml: Array Ast List Ppx_deriving_runtime String Types
