lib/frontend/parser.pp.mli: Ast Loc
