(* Typed abstract syntax — the result of semantic analysis and the input to
   both code generators (MIPS and the condition-code comparison machine). *)

open Types

type var_id = int

type storage =
  | Global
  | Local of int  (* ordinal among the function's locals *)
  | Param of int  (* ordinal among the function's parameters *)
[@@deriving eq, show]

type var_info = {
  vid : var_id;
  vname : string;
  ty : ty;
  storage : storage;
  by_ref : bool;  (* var parameter: the slot holds an address *)
  owner : string option;  (* enclosing function, None for globals *)
}

type relop = Ast.relop = Req | Rne | Rlt | Rle | Rgt | Rge [@@deriving eq, show]
type binop = Ast.binop = Add | Sub | Mul | Div | Mod [@@deriving eq, show]
type logop = Ast.logop = Land | Lor [@@deriving eq, show]

type expr = { e : expr_kind; ty : ty }

and expr_kind =
  | Num of int
  | Chr of char
  | Boolean of bool
  | Lval of lvalue
  | Bin of binop * expr * expr
  | Rel of relop * expr * expr
  | Log of logop * expr * expr
  | Not of expr
  | Neg of expr
  | Call of string * arg list
  | Ord of expr  (* char/bool -> int, a no-op at machine level *)
  | Chr_of of expr  (* int -> char *)

(* An lvalue: a variable plus a path of selections. *)
and lvalue = { base : var_id; path : selector list; lty : ty }

and selector =
  | Index of expr * array_ty  (* the array type being indexed *)
  | Field of string * int * ty  (* name, field ordinal, field type *)

and arg = By_value of expr | By_reference of lvalue

type write_arg = Wexpr of expr | Wstring of string

type stmt =
  | Assign of lvalue * expr
  | Assign_result of expr  (* fname := e inside function fname *)
  | Call_stmt of string * arg list
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Repeat of stmt list * expr
  | For of var_id * expr * bool * expr * stmt list
  | Case of expr * (int list * stmt list) list * stmt list option
  | Write of write_arg list * bool  (* true = writeln *)
  | Read_char of lvalue
  | Halt of expr option

type func = {
  fname : string;
  params : var_id list;
  result : ty option;
  locals : var_id list;
  body : stmt list;
}

type program = {
  prog_name : string;
  vars : var_info array;  (* indexed by var_id *)
  globals : var_id list;
  funcs : func list;
  main : stmt list;
}

let var p vid = p.vars.(vid)

let func p name =
  List.find_opt (fun f -> String.equal f.fname name) p.funcs
