(** Hand-written lexer for the Pascal subset.

    Identifiers and keywords are case-insensitive (folded to lower case).
    Comments are [{ ... }] and [(* ... *)].  Character literals are single
    -character strings ['x']; longer quoted text is a string literal, with
    [''] as the escaped quote. *)

exception Error of Loc.t * string

val tokenize : string -> (Token.t * Loc.t) list
(** The token stream, ending with [Eof].  @raise Error on bad input. *)
