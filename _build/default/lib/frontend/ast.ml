(* Raw (untyped) abstract syntax, as produced by the parser. *)

type binop = Add | Sub | Mul | Div | Mod [@@deriving eq, show]
type relop = Req | Rne | Rlt | Rle | Rgt | Rge [@@deriving eq, show]
type logop = Land | Lor [@@deriving eq, show]

type ty_expr =
  | Tname of string  (* integer, char, boolean, or a declared type *)
  | Tarray of { packed : bool; lo : expr; hi : expr; elem : ty_expr }
  | Trecord of (string list * ty_expr) list
[@@deriving eq, show]

and expr = { e : expr_kind; loc : Loc.t [@equal fun _ _ -> true] }
[@@deriving eq, show]

and expr_kind =
  | Enum of int
  | Echar of char
  | Ebool of bool
  | Estring of string
  | Ename of string  (* variable, constant, or nullary function call *)
  | Eindex of expr * expr
  | Efield of expr * string
  | Ecall of string * expr list
  | Ebin of binop * expr * expr
  | Erel of relop * expr * expr
  | Elog of logop * expr * expr
  | Enot of expr
  | Eneg of expr
[@@deriving eq, show]

type stmt = { s : stmt_kind; sloc : Loc.t [@equal fun _ _ -> true] }
[@@deriving eq, show]

and stmt_kind =
  | Sassign of expr * expr  (* lvalue := expr *)
  | Scall of string * expr list
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Srepeat of stmt list * expr
  | Sfor of string * expr * bool * expr * stmt list  (* true = upward *)
  | Scase of expr * (expr list * stmt list) list * stmt list option
  | Sblock of stmt list
[@@deriving eq, show]

type param = { pnames : string list; pty : ty_expr; by_ref : bool }
[@@deriving eq, show]

type decl =
  | Dconst of string * expr
  | Dtype of string * ty_expr
  | Dvar of string list * ty_expr
  | Dproc of proc
[@@deriving eq, show]

and proc = {
  name : string;
  params : param list;
  result : ty_expr option;  (* None for procedures *)
  decls : decl list;
  body : stmt list;
  ploc : Loc.t; [@equal fun _ _ -> true]
}
[@@deriving eq, show]

type program = { pname : string; decls : decl list; main : stmt list }
[@@deriving eq, show]
