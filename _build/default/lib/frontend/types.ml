(* Resolved types of the Pascal subset. *)

type ty =
  | Int
  | Char
  | Bool
  | Array of array_ty
  | Record of (string * ty) list

and array_ty = { lo : int; hi : int; elem : ty; packed : bool }
[@@deriving eq, show]

let rec pp ppf = function
  | Int -> Format.pp_print_string ppf "integer"
  | Char -> Format.pp_print_string ppf "char"
  | Bool -> Format.pp_print_string ppf "boolean"
  | Array a ->
      Format.fprintf ppf "%sarray [%d..%d] of %a"
        (if a.packed then "packed " else "")
        a.lo a.hi pp a.elem
  | Record fields ->
      Format.fprintf ppf "record ";
      List.iter (fun (n, t) -> Format.fprintf ppf "%s: %a; " n pp t) fields;
      Format.fprintf ppf "end"

let is_scalar = function Int | Char | Bool -> true | Array _ | Record _ -> false

(* Whether elements of a packed array of this type occupy one byte. *)
let byte_packable = function Char | Bool -> true | Int | Array _ | Record _ -> false

let array_length a = a.hi - a.lo + 1

let rec field_type fields name =
  match fields with
  | [] -> None
  | (n, t) :: rest -> if String.equal n name then Some t else field_type rest name
