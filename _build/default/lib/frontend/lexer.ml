exception Error of Loc.t * string

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* position of beginning of current line *)
}

let loc st = { Loc.line = st.line; col = st.pos - st.bol + 1 }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '{' ->
      let start = loc st in
      let rec close () =
        match peek st with
        | None -> raise (Error (start, "unterminated comment"))
        | Some '}' -> advance st
        | Some _ ->
            advance st;
            close ()
      in
      advance st;
      close ();
      skip_ws st
  | Some '(' when peek2 st = Some '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some ')' ->
            advance st;
            advance st
        | None, _ -> raise (Error (start, "unterminated comment"))
        | _ ->
            advance st;
            close ()
      in
      close ();
      skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_alpha c || is_digit c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.lowercase_ascii (String.sub st.src start (st.pos - start))

let lex_number st l =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> raise (Error (l, "number too large: " ^ text))

(* 'x' is a char literal; 'abc' (or '' contents with quotes) is a string *)
let lex_quoted st l =
  advance st;
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | None -> raise (Error (l, "unterminated string literal"))
    | Some '\'' when peek2 st = Some '\'' ->
        advance st;
        advance st;
        Buffer.add_char buf '\'';
        go ()
    | Some '\'' -> advance st
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  let s = Buffer.contents buf in
  if String.length s = 1 then Token.CharLit s.[0] else Token.StrLit s

let symbol st l =
  let two tok =
    advance st;
    advance st;
    tok
  in
  let one tok =
    advance st;
    tok
  in
  match (peek st, peek2 st) with
  | Some ':', Some '=' -> two Token.Assign
  | Some '<', Some '=' -> two Token.Le
  | Some '<', Some '>' -> two Token.Ne
  | Some '>', Some '=' -> two Token.Ge
  | Some '.', Some '.' -> two Token.Dotdot
  | Some '+', _ -> one Token.Plus
  | Some '-', _ -> one Token.Minus
  | Some '*', _ -> one Token.Star
  | Some '=', _ -> one Token.Eq
  | Some '<', _ -> one Token.Lt
  | Some '>', _ -> one Token.Gt
  | Some '(', _ -> one Token.Lparen
  | Some ')', _ -> one Token.Rparen
  | Some '[', _ -> one Token.Lbracket
  | Some ']', _ -> one Token.Rbracket
  | Some ',', _ -> one Token.Comma
  | Some ':', _ -> one Token.Colon
  | Some ';', _ -> one Token.Semi
  | Some '.', _ -> one Token.Dot
  | Some c, _ -> raise (Error (l, Printf.sprintf "unexpected character %C" c))
  | None, _ -> assert false

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let out = ref [] in
  let rec go () =
    skip_ws st;
    let l = loc st in
    match peek st with
    | None -> out := (Token.Eof, l) :: !out
    | Some c when is_alpha c ->
        let id = lex_ident st in
        let tok =
          match List.assoc_opt id Token.keyword_table with
          | Some k -> k
          | None -> Token.Ident id
        in
        out := (tok, l) :: !out;
        go ()
    | Some c when is_digit c ->
        out := (Token.Num (lex_number st l), l) :: !out;
        go ()
    | Some '\'' ->
        out := (lex_quoted st l, l) :: !out;
        go ()
    | Some _ ->
        out := (symbol st l, l) :: !out;
        go ()
  in
  go ();
  List.rev !out
