open Types

exception Error of Loc.t * string

let err loc fmt = Format.kasprintf (fun s -> raise (Error (loc, s))) fmt

type const_value = Cint of int | Cchar of char | Cbool of bool

type func_sig = {
  sig_params : (ty * bool) list;  (* type, by_ref *)
  sig_result : ty option;
}

type env = {
  consts : (string, const_value) Hashtbl.t;
  types : (string, ty) Hashtbl.t;
  funcs : (string, func_sig) Hashtbl.t;
  globals : (string, Tast.var_id) Hashtbl.t;
  mutable scope : (string * Tast.var_id) list;  (* current function's vars *)
  mutable vars : Tast.var_info list;  (* reversed accumulation *)
  mutable next_vid : int;
  mutable current : (string * ty option) option;  (* enclosing function *)
}

let new_env () =
  {
    consts = Hashtbl.create 16;
    types = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    scope = [];
    vars = [];
    next_vid = 0;
    current = None;
  }

let fresh_var env ~name ~ty ~storage ~by_ref ~owner =
  let vid = env.next_vid in
  env.next_vid <- vid + 1;
  env.vars <-
    { Tast.vid; vname = name; ty; storage; by_ref; owner } :: env.vars;
  vid

let lookup_var env loc name =
  match List.assoc_opt name env.scope with
  | Some vid -> Some vid
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some vid -> Some vid
      | None ->
          ignore loc;
          None)

let var_info env vid = List.find (fun v -> v.Tast.vid = vid) env.vars

(* --- constant expressions ------------------------------------------------ *)

let rec const_eval env (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Enum n -> Cint n
  | Ast.Echar c -> Cchar c
  | Ast.Ebool b -> Cbool b
  | Ast.Ename n -> (
      match Hashtbl.find_opt env.consts n with
      | Some v -> v
      | None -> err e.Ast.loc "%s is not a constant" n)
  | Ast.Eneg e' -> (
      match const_eval env e' with
      | Cint n -> Cint (-n)
      | _ -> err e.Ast.loc "cannot negate a non-integer constant")
  | Ast.Ebin (op, a, b) -> (
      match (const_eval env a, const_eval env b) with
      | Cint x, Cint y ->
          let f =
            match op with
            | Ast.Add -> ( + )
            | Ast.Sub -> ( - )
            | Ast.Mul -> ( * )
            | Ast.Div -> ( / )
            | Ast.Mod -> fun a b -> a mod b
          in
          Cint (f x y)
      | _ -> err e.Ast.loc "non-integer constant arithmetic")
  | _ -> err e.Ast.loc "expression is not constant"

let const_int env (e : Ast.expr) =
  match const_eval env e with
  | Cint n -> n
  | Cchar c -> Char.code c
  | Cbool _ -> err e.Ast.loc "expected an integer constant"

(* --- types ---------------------------------------------------------------- *)

let rec resolve_type env loc = function
  | Ast.Tname "integer" -> Int
  | Ast.Tname "char" -> Char
  | Ast.Tname "boolean" -> Bool
  | Ast.Tname n -> (
      match Hashtbl.find_opt env.types n with
      | Some t -> t
      | None -> err loc "unknown type %s" n)
  | Ast.Tarray { packed; lo; hi; elem } ->
      let lo = const_int env lo and hi = const_int env hi in
      if hi < lo then err loc "array bounds [%d..%d] are empty" lo hi;
      let elem = resolve_type env loc elem in
      if packed && not (byte_packable elem) then
        err loc "only char and boolean arrays can be packed";
      Array { lo; hi; elem; packed }
  | Ast.Trecord fields ->
      let resolved =
        List.concat_map
          (fun (names, t) ->
            let t = resolve_type env loc t in
            List.map (fun n -> (n, t)) names)
          fields
      in
      Record resolved

(* --- expressions ----------------------------------------------------------- *)

let tint = { Tast.e = Tast.Num 0; ty = Int }  (* placeholder, never used *)
let _ = tint

let expect_ty loc ~what expected actual =
  if not (equal_ty expected actual) then
    err loc "%s has type %a but %a was expected" what Types.pp actual Types.pp
      expected

let rec check_expr env (e : Ast.expr) : Tast.expr =
  let loc = e.Ast.loc in
  match e.Ast.e with
  | Ast.Enum n -> { Tast.e = Tast.Num n; ty = Int }
  | Ast.Echar c -> { Tast.e = Tast.Chr c; ty = Char }
  | Ast.Ebool b -> { Tast.e = Tast.Boolean b; ty = Bool }
  | Ast.Estring _ -> err loc "string literals may only appear in write/writeln"
  | Ast.Ename n -> check_name env loc n
  | Ast.Eindex _ | Ast.Efield _ ->
      let lv = check_lvalue env e in
      { Tast.e = Tast.Lval lv; ty = lv.Tast.lty }
  | Ast.Ecall ("ord", [ a ]) ->
      let a = check_expr env a in
      (match a.Tast.ty with
      | Char | Bool | Int -> { Tast.e = Tast.Ord a; ty = Int }
      | t -> err loc "ord of %a" Types.pp t)
  | Ast.Ecall ("chr", [ a ]) ->
      let a = check_expr env a in
      expect_ty loc ~what:"chr argument" Int a.Tast.ty;
      { Tast.e = Tast.Chr_of a; ty = Char }
  | Ast.Ecall (f, args) -> check_call env loc f args ~as_expr:true
  | Ast.Ebin (op, a, b) ->
      let a = check_expr env a and b = check_expr env b in
      expect_ty loc ~what:"left operand" Int a.Tast.ty;
      expect_ty loc ~what:"right operand" Int b.Tast.ty;
      { Tast.e = Tast.Bin (op, a, b); ty = Int }
  | Ast.Erel (op, a, b) ->
      let a = check_expr env a and b = check_expr env b in
      if not (equal_ty a.Tast.ty b.Tast.ty) then
        err loc "comparison of %a and %a" Types.pp a.Tast.ty Types.pp b.Tast.ty;
      if not (is_scalar a.Tast.ty) then err loc "comparison of non-scalar values";
      { Tast.e = Tast.Rel (op, a, b); ty = Bool }
  | Ast.Elog (op, a, b) ->
      let a = check_expr env a and b = check_expr env b in
      expect_ty loc ~what:"left operand" Bool a.Tast.ty;
      expect_ty loc ~what:"right operand" Bool b.Tast.ty;
      { Tast.e = Tast.Log (op, a, b); ty = Bool }
  | Ast.Enot a ->
      let a = check_expr env a in
      expect_ty loc ~what:"not operand" Bool a.Tast.ty;
      { Tast.e = Tast.Not a; ty = Bool }
  | Ast.Eneg a ->
      let a = check_expr env a in
      expect_ty loc ~what:"negation operand" Int a.Tast.ty;
      { Tast.e = Tast.Neg a; ty = Int }

and check_name env loc n : Tast.expr =
  match Hashtbl.find_opt env.consts n with
  | Some (Cint v) -> { Tast.e = Tast.Num v; ty = Int }
  | Some (Cchar c) -> { Tast.e = Tast.Chr c; ty = Char }
  | Some (Cbool b) -> { Tast.e = Tast.Boolean b; ty = Bool }
  | None -> (
      match lookup_var env loc n with
      | Some vid ->
          let v = var_info env vid in
          { Tast.e = Tast.Lval { Tast.base = vid; path = []; lty = v.Tast.ty };
            ty = v.Tast.ty }
      | None ->
          if Hashtbl.mem env.funcs n then check_call env loc n [] ~as_expr:true
          else err loc "unknown identifier %s" n)

and check_call env loc f args ~as_expr : Tast.expr =
  match Hashtbl.find_opt env.funcs f with
  | None -> err loc "unknown function or procedure %s" f
  | Some fsig ->
      (if as_expr && fsig.sig_result = None then
         err loc "procedure %s used as a function" f);
      let nformal = List.length fsig.sig_params in
      if List.length args <> nformal then
        err loc "%s expects %d argument(s), got %d" f nformal (List.length args);
      let targs =
        List.map2
          (fun (pty, by_ref) (arg : Ast.expr) ->
            if by_ref then begin
              let lv = check_lvalue env arg in
              expect_ty arg.Ast.loc ~what:"var argument" pty lv.Tast.lty;
              Tast.By_reference lv
            end
            else begin
              let e = check_expr env arg in
              expect_ty arg.Ast.loc ~what:"argument" pty e.Tast.ty;
              Tast.By_value e
            end)
          fsig.sig_params args
      in
      let ty = match fsig.sig_result with Some t -> t | None -> Int in
      { Tast.e = Tast.Call (f, targs); ty }

and check_lvalue env (e : Ast.expr) : Tast.lvalue =
  let loc = e.Ast.loc in
  match e.Ast.e with
  | Ast.Ename n -> (
      match lookup_var env loc n with
      | Some vid ->
          let v = var_info env vid in
          { Tast.base = vid; path = []; lty = v.Tast.ty }
      | None -> err loc "unknown variable %s" n)
  | Ast.Eindex (base, idx) -> (
      let lv = check_lvalue env base in
      let idx = check_expr env idx in
      (match idx.Tast.ty with
      | Int | Char -> ()
      | t -> err loc "array index has type %a" Types.pp t);
      match lv.Tast.lty with
      | Array a ->
          {
            Tast.base = lv.Tast.base;
            path = lv.Tast.path @ [ Tast.Index (idx, a) ];
            lty = a.elem;
          }
      | t -> err loc "indexing a non-array of type %a" Types.pp t)
  | Ast.Efield (base, fname) -> (
      let lv = check_lvalue env base in
      match lv.Tast.lty with
      | Record fields -> (
          let rec ordinal i = function
            | [] -> err loc "record has no field %s" fname
            | (n, t) :: rest ->
                if String.equal n fname then (i, t) else ordinal (i + 1) rest
          in
          match ordinal 0 fields with
          | i, t ->
              {
                Tast.base = lv.Tast.base;
                path = lv.Tast.path @ [ Tast.Field (fname, i, t) ];
                lty = t;
              })
      | t -> err loc "selecting a field of a non-record of type %a" Types.pp t)
  | _ -> err loc "expression is not assignable"

(* --- statements ------------------------------------------------------------ *)

let rec check_stmt env (s : Ast.stmt) : Tast.stmt =
  let loc = s.Ast.sloc in
  match s.Ast.s with
  | Ast.Sblock body ->
      (* flattened by the caller; represent as If(true) to keep one type *)
      Tast.If ({ Tast.e = Tast.Boolean true; ty = Bool }, check_stmts env body, [])
  | Ast.Sassign ({ Ast.e = Ast.Ename n; _ }, rhs)
    when (match env.current with Some (f, Some _) -> String.equal f n | _ -> false)
    ->
      let rty = match env.current with Some (_, Some t) -> t | _ -> assert false in
      let rhs = check_expr env rhs in
      expect_ty loc ~what:"function result" rty rhs.Tast.ty;
      Tast.Assign_result rhs
  | Ast.Sassign (lhs, rhs) ->
      let lv = check_lvalue env lhs in
      if not (is_scalar lv.Tast.lty) then
        err loc "assignment of non-scalar values is not supported";
      let rhs = check_expr env rhs in
      expect_ty loc ~what:"assignment" lv.Tast.lty rhs.Tast.ty;
      Tast.Assign (lv, rhs)
  | Ast.Scall ("write", args) -> Tast.Write (check_write_args env args, false)
  | Ast.Scall ("writeln", args) -> Tast.Write (check_write_args env args, true)
  | Ast.Scall ("read", [ arg ]) ->
      let lv = check_lvalue env arg in
      expect_ty loc ~what:"read argument" Char lv.Tast.lty;
      Tast.Read_char lv
  | Ast.Scall ("halt", []) -> Tast.Halt None
  | Ast.Scall ("halt", [ code ]) ->
      let e = check_expr env code in
      expect_ty loc ~what:"halt code" Int e.Tast.ty;
      Tast.Halt (Some e)
  | Ast.Scall (f, args) -> (
      match check_call env loc f args ~as_expr:false with
      | { Tast.e = Tast.Call (f, targs); _ } -> Tast.Call_stmt (f, targs)
      | _ -> assert false)
  | Ast.Sif (c, then_, else_) ->
      let c = check_expr env c in
      expect_ty loc ~what:"if condition" Bool c.Tast.ty;
      Tast.If (c, check_stmts env then_, check_stmts env else_)
  | Ast.Swhile (c, body) ->
      let c = check_expr env c in
      expect_ty loc ~what:"while condition" Bool c.Tast.ty;
      Tast.While (c, check_stmts env body)
  | Ast.Srepeat (body, c) ->
      let body = check_stmts env body in
      let c = check_expr env c in
      expect_ty loc ~what:"until condition" Bool c.Tast.ty;
      Tast.Repeat (body, c)
  | Ast.Sfor (v, lo, up, hi, body) -> (
      match lookup_var env loc v with
      | None -> err loc "unknown loop variable %s" v
      | Some vid ->
          let vi = var_info env vid in
          if not (equal_ty vi.Tast.ty Int || equal_ty vi.Tast.ty Char) then
            err loc "loop variable must be integer or char";
          if vi.Tast.by_ref then err loc "loop variable may not be a var parameter";
          let lo = check_expr env lo and hi = check_expr env hi in
          expect_ty loc ~what:"for bound" vi.Tast.ty lo.Tast.ty;
          expect_ty loc ~what:"for bound" vi.Tast.ty hi.Tast.ty;
          Tast.For (vid, lo, up, hi, check_stmts env body))
  | Ast.Scase (scrutinee, arms, default) ->
      let scrutinee = check_expr env scrutinee in
      (match scrutinee.Tast.ty with
      | Int | Char -> ()
      | t -> err loc "case selector has type %a" Types.pp t);
      let arms =
        List.map
          (fun (labels, body) ->
            let labels =
              List.map
                (fun l ->
                  match const_eval env l with
                  | Cint n -> n
                  | Cchar c -> Char.code c
                  | Cbool _ -> err loc "boolean case labels are not supported")
                labels
            in
            (labels, check_stmts env body))
          arms
      in
      let default = Option.map (check_stmts env) default in
      Tast.Case (scrutinee, arms, default)

and check_stmts env stmts =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.Ast.s with
      | Ast.Sblock body -> check_stmts env body
      | _ -> [ check_stmt env s ])
    stmts

and check_write_args env args =
  List.map
    (fun (a : Ast.expr) ->
      match a.Ast.e with
      | Ast.Estring s -> Tast.Wstring s
      | _ ->
          let e = check_expr env a in
          (match e.Tast.ty with
          | Int | Char | Bool -> ()
          | t -> err a.Ast.loc "cannot write a value of type %a" Types.pp t);
          Tast.Wexpr e)
    args

(* --- declarations ----------------------------------------------------------- *)

let check_decl_nonproc env ~owner = function
  | Ast.Dconst (n, e) -> Hashtbl.replace env.consts n (const_eval env e)
  | Ast.Dtype (n, t) -> Hashtbl.replace env.types n (resolve_type env Loc.dummy t)
  | Ast.Dvar (names, t) ->
      let ty = resolve_type env Loc.dummy t in
      List.iter
        (fun n ->
          match owner with
          | None ->
              let vid =
                fresh_var env ~name:n ~ty ~storage:Tast.Global ~by_ref:false
                  ~owner:None
              in
              Hashtbl.replace env.globals n vid
          | Some _ ->
              (* local ordinal assigned later *)
              let vid =
                fresh_var env ~name:n ~ty ~storage:(Tast.Local (-1)) ~by_ref:false
                  ~owner
              in
              env.scope <- (n, vid) :: env.scope)
        names
  | Ast.Dproc _ -> ()

let check_proc env (p : Ast.proc) : Tast.func =
  if List.exists (fun d -> match d with Ast.Dproc _ -> true | _ -> false) p.Ast.decls
  then err p.Ast.ploc "nested procedures are not supported";
  let result =
    Option.map (fun t -> resolve_type env p.Ast.ploc t) p.Ast.result
  in
  (match result with
  | Some t when not (is_scalar t) ->
      err p.Ast.ploc "functions must return scalar values"
  | _ -> ());
  env.current <- Some (p.Ast.name, result);
  env.scope <- [];
  (* parameters *)
  let params =
    List.concat_map
      (fun (prm : Ast.param) ->
        let ty = resolve_type env p.Ast.ploc prm.Ast.pty in
        if (not prm.Ast.by_ref) && not (is_scalar ty) then
          err p.Ast.ploc
            "arrays and records must be passed as var parameters (in %s)"
            p.Ast.name;
        List.map
          (fun n ->
            let vid =
              fresh_var env ~name:n ~ty ~storage:(Tast.Param (-1))
                ~by_ref:prm.Ast.by_ref ~owner:(Some p.Ast.name)
            in
            env.scope <- (n, vid) :: env.scope;
            vid)
          prm.Ast.pnames)
      p.Ast.params
  in
  (* local declarations (consts/types share the global tables; acceptable for
     the subset — shadowing across procedures is not supported) *)
  List.iter (check_decl_nonproc env ~owner:(Some p.Ast.name)) p.Ast.decls;
  let locals =
    List.filter_map
      (fun (_, vid) ->
        let v = var_info env vid in
        match v.Tast.storage with Tast.Local _ -> Some vid | _ -> None)
      env.scope
    |> List.rev
  in
  (* assign ordinals *)
  List.iteri
    (fun i vid ->
      env.vars <-
        List.map
          (fun v ->
            if v.Tast.vid = vid then { v with Tast.storage = Tast.Param i } else v)
          env.vars)
    params;
  List.iteri
    (fun i vid ->
      env.vars <-
        List.map
          (fun v ->
            if v.Tast.vid = vid then { v with Tast.storage = Tast.Local i } else v)
          env.vars)
    locals;
  let body = check_stmts env p.Ast.body in
  env.current <- None;
  env.scope <- [];
  { Tast.fname = p.Ast.name; params; result; locals; body }

let register_proc_sig env (p : Ast.proc) =
  let params =
    List.concat_map
      (fun (prm : Ast.param) ->
        let ty = resolve_type env p.Ast.ploc prm.Ast.pty in
        List.map (fun _ -> (ty, prm.Ast.by_ref)) prm.Ast.pnames)
      p.Ast.params
  in
  let result = Option.map (fun t -> resolve_type env p.Ast.ploc t) p.Ast.result in
  Hashtbl.replace env.funcs p.Ast.name { sig_params = params; sig_result = result }

let check (prog : Ast.program) : Tast.program =
  let env = new_env () in
  (* first pass: globals, consts, types, and procedure signatures *)
  List.iter
    (fun d ->
      check_decl_nonproc env ~owner:None d;
      match d with Ast.Dproc p -> register_proc_sig env p | _ -> ())
    prog.Ast.decls;
  (* second pass: procedure bodies *)
  let funcs =
    List.filter_map
      (function Ast.Dproc p -> Some (check_proc env p) | _ -> None)
      prog.Ast.decls
  in
  let main = check_stmts env prog.Ast.main in
  let vars =
    List.sort (fun a b -> compare a.Tast.vid b.Tast.vid) env.vars |> Array.of_list
  in
  let globals =
    Array.to_list vars
    |> List.filter_map (fun v ->
           match v.Tast.storage with Tast.Global -> Some v.Tast.vid | _ -> None)
  in
  { Tast.prog_name = prog.Ast.pname; vars; globals; funcs; main }

let check_string src = check (Parser.parse src)
